package art

import (
	"encoding/binary"
	"fmt"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/tcio"
)

// Library selects the I/O stack a checkpoint goes through — the two
// contenders of the paper's Figs. 9-10.
type Library int

// Available I/O backends.
const (
	// LibTCIO checkpoints through transparent collective I/O.
	LibTCIO Library = iota
	// LibVanilla checkpoints through vanilla MPI-IO: every piece is an
	// independent file system access.
	LibVanilla
)

// String names the library.
func (l Library) String() string {
	switch l {
	case LibTCIO:
		return "TCIO"
	case LibVanilla:
		return "MPI-IO"
	default:
		return fmt.Sprintf("Library(%d)", int(l))
	}
}

// backend is the minimal surface Dump/Restore need; it hides whether reads
// are lazy (TCIO) or immediate (vanilla MPI-IO).
type backend interface {
	WriteAt(off int64, data []byte) error
	ReadAt(off int64, dst []byte) error
	Fetch() error
	Close() error
}

type tcioBackend struct{ f *tcio.File }

func (b tcioBackend) WriteAt(off int64, data []byte) error { return b.f.WriteAt(off, data) }
func (b tcioBackend) ReadAt(off int64, dst []byte) error   { return b.f.ReadAt(off, dst) }
func (b tcioBackend) Fetch() error                         { return b.f.Fetch() }
func (b tcioBackend) Close() error                         { return b.f.Close() }

type vanillaBackend struct{ f *mpiio.File }

func (b vanillaBackend) WriteAt(off int64, data []byte) error { return b.f.WriteAt(off, data) }
func (b vanillaBackend) ReadAt(off int64, dst []byte) error {
	got, err := b.f.ReadAt(off, int64(len(dst)))
	if err != nil {
		return err
	}
	copy(dst, got)
	return nil
}
func (b vanillaBackend) Fetch() error { return nil }
func (b vanillaBackend) Close() error { return b.f.Close() }

// checkpoint file header: magic, tree count, then ntrees+1 record offsets.
const ckptMagic = 0x41525443 // "ARTC"

func ckptHeaderSize(ntrees int) int64 { return 4 + 8 + int64(ntrees+1)*8 }

// segmentsFor sizes a TCIO level-2 configuration to cover total bytes.
func segmentsFor(total, segSize int64, procs int) int {
	perRank := (total + int64(procs)*segSize - 1) / (int64(procs) * segSize)
	if perRank < 1 {
		perRank = 1
	}
	return int(perRank)
}

// Dump writes a checkpoint of the given trees (this rank's share; IDs are
// global indices) through the selected library. ntrees is the global tree
// count; segSize tunes TCIO's level-2 segments (0 = file system stripe).
// Dump is collective.
func Dump(c *mpi.Comm, lib Library, name string, trees []*Tree, ntrees int, segSize int64) error {
	// Establish global record offsets: every rank shares (id, size) pairs.
	blob := make([]byte, 4+16*len(trees))
	binary.LittleEndian.PutUint32(blob, uint32(len(trees)))
	for i, t := range trees {
		if t.ID < 0 || t.ID >= int64(ntrees) {
			return fmt.Errorf("art: tree id %d outside [0,%d)", t.ID, ntrees)
		}
		binary.LittleEndian.PutUint64(blob[4+16*i:], uint64(t.ID))
		binary.LittleEndian.PutUint64(blob[12+16*i:], uint64(t.EncodedSize()))
	}
	all, err := c.AllgatherBytes(blob)
	if err != nil {
		return err
	}
	sizes := make([]int64, ntrees)
	for _, b := range all {
		n := int(binary.LittleEndian.Uint32(b))
		for i := 0; i < n; i++ {
			id := int64(binary.LittleEndian.Uint64(b[4+16*i:]))
			sizes[id] = int64(binary.LittleEndian.Uint64(b[12+16*i:]))
		}
	}
	offsets := make([]int64, ntrees+1)
	offsets[0] = ckptHeaderSize(ntrees)
	for i := 0; i < ntrees; i++ {
		if sizes[i] == 0 {
			return fmt.Errorf("art: no rank owns tree %d", i)
		}
		offsets[i+1] = offsets[i] + sizes[i]
	}
	total := offsets[ntrees]

	be, err := openBackend(c, lib, name, tcio.WriteMode, segSize, total)
	if err != nil {
		return err
	}

	// Rank 0 writes the self-describing index.
	if c.Rank() == 0 {
		hdr := make([]byte, ckptHeaderSize(ntrees))
		binary.LittleEndian.PutUint32(hdr, ckptMagic)
		binary.LittleEndian.PutUint64(hdr[4:], uint64(ntrees))
		for i, off := range offsets {
			binary.LittleEndian.PutUint64(hdr[12+8*i:], uint64(off))
		}
		if err := be.WriteAt(0, hdr); err != nil {
			return err
		}
	}

	// Each rank writes its trees piece by piece — ART's natural I/O shape.
	for _, t := range trees {
		base := offsets[t.ID]
		for _, p := range t.Pieces() {
			if err := be.WriteAt(base+p.Off, p.Data); err != nil {
				return err
			}
		}
	}
	if err := be.Close(); err != nil {
		return err
	}
	// Dump is collective: no rank may proceed (e.g. to a restart) until
	// the checkpoint is complete. TCIO's Close already synchronizes;
	// vanilla MPI-IO needs the explicit barrier.
	return c.Barrier()
}

// Restore reads back this rank's round-robin share of the checkpoint and
// returns the reconstructed trees in ID order. Restore is collective.
func Restore(c *mpi.Comm, lib Library, name string) ([]*Tree, error) {
	size := c.FS().Open(name).Size()
	be, err := openBackend(c, lib, name, tcio.ReadMode, 0, size)
	if err != nil {
		return nil, err
	}

	// Read the index: magic + count first, then the offset table.
	head := make([]byte, 12)
	if err := be.ReadAt(0, head); err != nil {
		return nil, err
	}
	if err := be.Fetch(); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(head) != ckptMagic {
		return nil, fmt.Errorf("art: bad checkpoint magic %#x", binary.LittleEndian.Uint32(head))
	}
	ntrees := int(binary.LittleEndian.Uint64(head[4:]))
	offTable := make([]byte, (ntrees+1)*8)
	if err := be.ReadAt(12, offTable); err != nil {
		return nil, err
	}
	if err := be.Fetch(); err != nil {
		return nil, err
	}
	offsets := make([]int64, ntrees+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(offTable[8*i:]))
	}

	var out []*Tree
	for _, id := range OwnedBy(ntrees, c.Size(), c.Rank()) {
		base := offsets[id]
		rec := make([]byte, offsets[id+1]-base)

		// Header first: the record is self-describing, so the piece
		// layout is known only after parsing it.
		if err := be.ReadAt(base, rec[:headerSize]); err != nil {
			return nil, err
		}
		if err := be.Fetch(); err != nil {
			return nil, err
		}
		_, vars, counts, err := DecodeHeader(rec[:headerSize])
		if err != nil {
			return nil, fmt.Errorf("art: tree %d: %w", id, err)
		}
		// Then each array with its own (lazy) read call.
		off := int64(headerSize)
		for _, n := range counts {
			if err := be.ReadAt(base+off, rec[off:off+int64(n)]); err != nil {
				return nil, err
			}
			off += int64(n)
			for v := 0; v < vars; v++ {
				if err := be.ReadAt(base+off, rec[off:off+int64(8*n)]); err != nil {
					return nil, err
				}
				off += int64(8 * n)
			}
		}
		if err := be.Fetch(); err != nil {
			return nil, err
		}
		t, err := Decode(rec)
		if err != nil {
			return nil, fmt.Errorf("art: tree %d: %w", id, err)
		}
		out = append(out, t)
	}
	if err := be.Close(); err != nil {
		return nil, err
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// openBackend builds the requested I/O stack over the shared file.
func openBackend(c *mpi.Comm, lib Library, name string, mode tcio.Mode, segSize, total int64) (backend, error) {
	switch lib {
	case LibTCIO:
		if segSize == 0 {
			segSize = c.FS().Config().StripeSize
		}
		f, err := tcio.Open(c, name, mode, tcio.Config{
			SegmentSize: segSize,
			NumSegments: segmentsFor(total, segSize, c.Size()),
		})
		if err != nil {
			return nil, err
		}
		return tcioBackend{f}, nil
	case LibVanilla:
		f, err := mpiio.Open(c, name)
		if err != nil {
			return nil, err
		}
		return vanillaBackend{f}, nil
	default:
		return nil, fmt.Errorf("art: unknown library %d", int(lib))
	}
}

// GenerateForRank deterministically builds rank's round-robin share of the
// paper's workload: ntrees trees with Table IV cell counts and `vars`
// variables per cell. All ranks derive the same global plan (the size draw
// is seeded), then materialize only their own trees.
func GenerateForRank(ntrees, vars, procs, rank int, seed int64) []*Tree {
	sizes := SegmentSizes(ntrees, TableIV.Mu, TableIV.Sigma, seed)
	var out []*Tree
	for _, id := range OwnedBy(ntrees, procs, rank) {
		// Per-tree RNG so generation is independent of ownership.
		rng := TreeRNG(seed, int64(id))
		out = append(out, Generate(int64(id), sizes[id], vars, rng))
	}
	return out
}
