// Package art is a miniature of the ART (Adaptive Refinement Tree)
// cosmology code used in the paper's real-application evaluation (§V.C).
//
// ART is a cell-based AMR code: the 3D volume is divided into uniform root
// cells; any cell may be refined into eight finer cells, and refinements
// are organized as octrees represented with a fully threaded tree (FTT).
// Tree structure changes during the run, so trees differ in depth and size,
// and a checkpoint consists of many variable-size records — per-level
// structure arrays and per-variable value arrays — that are adjacent in the
// file. No single MPI derived datatype can describe this layout, which is
// precisely why the paper evaluates TCIO against vanilla MPI-IO here:
// OCIO's file views cannot express it.
//
// The mini-app reproduces the I/O-relevant behaviour faithfully:
//
//   - trees are generated with cell counts drawn from the paper's Table IV
//     distribution (Normal, μ=2048, σ=128, seed=5, 1024 segments dealt
//     round-robin to ranks);
//   - each tree serializes to a self-describing record (header, per-level
//     refinement maps, per-level per-variable value arrays);
//   - checkpoints are written piece by piece, one small access per array.
package art

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Magic identifies a serialized FTT record.
const Magic = 0x46545431 // "FTT1"

// MaxDepth bounds tree depth; refinement stops there.
const MaxDepth = 12

// Tree is one fully threaded refinement tree rooted at a single root cell.
type Tree struct {
	ID   int64
	Vars int
	// Level l holds the cells at refinement depth l. Levels[0] is the
	// root cell. A refined cell contributes 8 children to the next level.
	Levels [][]Cell
}

// Cell is one AMR cell: a refinement flag and its variable values.
type Cell struct {
	Refined bool
	Vals    []float64
}

// NumCells reports the total cell count across all levels.
func (t *Tree) NumCells() int {
	n := 0
	for _, lv := range t.Levels {
		n += len(lv)
	}
	return n
}

// Depth reports the number of levels.
func (t *Tree) Depth() int { return len(t.Levels) }

// Generate builds a tree of roughly targetCells cells by randomly refining
// cells level by level until the budget is met. Generation is deterministic
// for a given rng state.
func Generate(id int64, targetCells, vars int, rng *rand.Rand) *Tree {
	if targetCells < 1 {
		targetCells = 1
	}
	if vars < 1 {
		vars = 1
	}
	t := &Tree{ID: id, Vars: vars}
	mkCell := func(level int) Cell {
		vals := make([]float64, vars)
		for v := range vals {
			vals[v] = float64(id)*1e6 + float64(level)*1e3 + rng.Float64()
		}
		return Cell{Vals: vals}
	}
	t.Levels = [][]Cell{{mkCell(0)}}
	total := 1
	for level := 0; total < targetCells && level < MaxDepth-1; level++ {
		if level >= len(t.Levels) {
			break
		}
		var next []Cell
		for i := range t.Levels[level] {
			if total >= targetCells {
				break
			}
			// Refine with decreasing probability by depth, so trees get
			// the top-heavy shape of AMR hierarchies.
			if rng.Float64() < 0.9 {
				t.Levels[level][i].Refined = true
				for c := 0; c < 8; c++ {
					next = append(next, mkCell(level+1))
				}
				total += 8
			}
		}
		if len(next) == 0 {
			break
		}
		t.Levels = append(t.Levels, next)
	}
	return t
}

// Equal reports whether two trees are structurally and numerically equal.
func (t *Tree) Equal(o *Tree) bool {
	if t.ID != o.ID || t.Vars != o.Vars || len(t.Levels) != len(o.Levels) {
		return false
	}
	for l := range t.Levels {
		if len(t.Levels[l]) != len(o.Levels[l]) {
			return false
		}
		for i := range t.Levels[l] {
			a, b := t.Levels[l][i], o.Levels[l][i]
			if a.Refined != b.Refined || len(a.Vals) != len(b.Vals) {
				return false
			}
			for v := range a.Vals {
				if a.Vals[v] != b.Vals[v] {
					return false
				}
			}
		}
	}
	return true
}

// Piece is one serialized array of a tree record: the unit of I/O the
// application issues. Off is the byte offset within the record.
type Piece struct {
	Name string
	Off  int64
	Data []byte
}

// headerSize is the fixed-size record header: magic, id, vars, depth,
// then MaxDepth level counts (zero-padded).
const headerSize = 4 + 8 + 4 + 4 + 4*MaxDepth

// EncodedSize reports the serialized record length.
func (t *Tree) EncodedSize() int64 {
	n := int64(headerSize)
	for _, lv := range t.Levels {
		n += int64(len(lv))                     // refinement map, one byte per cell
		n += int64(len(lv)) * int64(t.Vars) * 8 // value arrays
	}
	return n
}

// Pieces decomposes the record into its constituent arrays, in file order:
// header, then per level a refinement map and Vars value arrays. This is
// the sequence of individual I/O calls ART issues per tree.
func (t *Tree) Pieces() []Piece {
	pieces := make([]Piece, 0, 1+len(t.Levels)*(1+t.Vars))

	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(t.ID))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(t.Vars))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(t.Levels)))
	for l, lv := range t.Levels {
		binary.LittleEndian.PutUint32(hdr[20+4*l:], uint32(len(lv)))
	}
	pieces = append(pieces, Piece{Name: "header", Off: 0, Data: hdr})

	off := int64(headerSize)
	for l, lv := range t.Levels {
		ref := make([]byte, len(lv))
		for i, cell := range lv {
			if cell.Refined {
				ref[i] = 1
			}
		}
		pieces = append(pieces, Piece{Name: fmt.Sprintf("refine[%d]", l), Off: off, Data: ref})
		off += int64(len(ref))
		for v := 0; v < t.Vars; v++ {
			vals := make([]byte, 8*len(lv))
			for i, cell := range lv {
				binary.LittleEndian.PutUint64(vals[8*i:], uint64FromFloat(cell.Vals[v]))
			}
			pieces = append(pieces, Piece{Name: fmt.Sprintf("var%d[%d]", v, l), Off: off, Data: vals})
			off += int64(len(vals))
		}
	}
	return pieces
}

// Encode serializes the record densely.
func (t *Tree) Encode() []byte {
	out := make([]byte, t.EncodedSize())
	for _, p := range t.Pieces() {
		copy(out[p.Off:], p.Data)
	}
	return out
}

// DecodeHeader parses a record header, returning vars and level counts.
func DecodeHeader(hdr []byte) (id int64, vars int, counts []int, err error) {
	if len(hdr) < headerSize {
		return 0, 0, nil, fmt.Errorf("art: header needs %d bytes, have %d", headerSize, len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return 0, 0, nil, fmt.Errorf("art: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	id = int64(binary.LittleEndian.Uint64(hdr[4:]))
	vars = int(binary.LittleEndian.Uint32(hdr[12:]))
	depth := int(binary.LittleEndian.Uint32(hdr[16:]))
	if depth < 1 || depth > MaxDepth {
		return 0, 0, nil, fmt.Errorf("art: depth %d out of range", depth)
	}
	counts = make([]int, depth)
	for l := 0; l < depth; l++ {
		counts[l] = int(binary.LittleEndian.Uint32(hdr[20+4*l:]))
	}
	return id, vars, counts, nil
}

// Decode reconstructs a tree from its serialized record.
func Decode(rec []byte) (*Tree, error) {
	id, vars, counts, err := DecodeHeader(rec)
	if err != nil {
		return nil, err
	}
	t := &Tree{ID: id, Vars: vars}
	off := int64(headerSize)
	for _, n := range counts {
		need := off + int64(n) + int64(n)*int64(vars)*8
		if need > int64(len(rec)) {
			return nil, fmt.Errorf("art: record truncated at level with %d cells", n)
		}
		cells := make([]Cell, n)
		for i := 0; i < n; i++ {
			cells[i].Refined = rec[off+int64(i)] == 1
		}
		off += int64(n)
		for v := 0; v < vars; v++ {
			for i := 0; i < n; i++ {
				bits := binary.LittleEndian.Uint64(rec[off+int64(8*i):])
				if cells[i].Vals == nil {
					cells[i].Vals = make([]float64, vars)
				}
				cells[i].Vals[v] = floatFromUint64(bits)
			}
			off += int64(8 * n)
		}
		t.Levels = append(t.Levels, cells)
	}
	return t, nil
}

// SegmentSizes draws n segment lengths (cell counts) from the paper's
// Table IV distribution: Normal(mu, sigma) with the given seed. Values are
// clamped to at least 1 cell.
func SegmentSizes(n int, mu, sigma float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		v := int(rng.NormFloat64()*sigma + mu)
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// TableIV holds the paper's segment-generation parameters.
var TableIV = struct {
	Segments int
	Mu       float64
	Sigma    float64
	Seed     int64
}{Segments: 1024, Mu: 2048, Sigma: 128, Seed: 5}

// TreeRNG derives a deterministic per-tree random stream, so a tree's
// contents do not depend on which rank materializes it.
func TreeRNG(seed, id int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + id + 1))
}

// OwnedBy reports the tree indices assigned to rank under round-robin
// dealing of n trees across procs ranks.
func OwnedBy(n, procs, rank int) []int {
	var out []int
	for i := rank; i < n; i += procs {
		out = append(out, i)
	}
	return out
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }

func floatFromUint64(b uint64) float64 { return math.Float64frombits(b) }
