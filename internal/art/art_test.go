package art

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
)

func TestGenerateMeetsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := Generate(7, 500, 2, rng)
	if tr.ID != 7 || tr.Vars != 2 {
		t.Fatalf("ID/Vars = %d/%d", tr.ID, tr.Vars)
	}
	if n := tr.NumCells(); n < 500 {
		t.Fatalf("NumCells = %d, want >= 500", n)
	}
	if tr.Depth() < 2 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	// Structure sanity: children come in multiples of 8 from refinements.
	for l := 1; l < tr.Depth(); l++ {
		refined := 0
		for _, cell := range tr.Levels[l-1] {
			if cell.Refined {
				refined++
			}
		}
		if len(tr.Levels[l]) != refined*8 {
			t.Fatalf("level %d has %d cells for %d refined parents", l, len(tr.Levels[l]), refined)
		}
	}
}

func TestGenerateMinimums(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Generate(0, 0, 0, rng)
	if tr.NumCells() < 1 || tr.Vars != 1 {
		t.Fatalf("degenerate tree: cells=%d vars=%d", tr.NumCells(), tr.Vars)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Generate(42, 300, 3, rng)
	rec := tr.Encode()
	if int64(len(rec)) != tr.EncodedSize() {
		t.Fatalf("Encode len %d != EncodedSize %d", len(rec), tr.EncodedSize())
	}
	back, err := Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back) {
		t.Fatal("decode(encode(tree)) != tree")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64, target uint16, vars uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Generate(seed, int(target%2000), int(vars%4)+1, rng)
		back, err := Decode(tr.Encode())
		return err == nil && tr.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
	rng := rand.New(rand.NewSource(4))
	rec := Generate(1, 100, 2, rng).Encode()
	rec[0] = 0xFF // corrupt magic
	if _, err := Decode(rec); err == nil {
		t.Fatal("bad magic accepted")
	}
	rec2 := Generate(1, 100, 2, rng).Encode()
	if _, err := Decode(rec2[:len(rec2)-5]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestPiecesTileRecordExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := Generate(9, 200, 2, rng)
	pieces := tr.Pieces()
	covered := int64(0)
	expectedNext := int64(0)
	for _, p := range pieces {
		if p.Off != expectedNext {
			t.Fatalf("piece %q at %d, expected %d (gap or overlap)", p.Name, p.Off, expectedNext)
		}
		expectedNext = p.Off + int64(len(p.Data))
		covered += int64(len(p.Data))
	}
	if covered != tr.EncodedSize() {
		t.Fatalf("pieces cover %d of %d bytes", covered, tr.EncodedSize())
	}
	// Piece count: 1 header + depth*(1 refinement + vars values).
	want := 1 + tr.Depth()*(1+tr.Vars)
	if len(pieces) != want {
		t.Fatalf("%d pieces, want %d", len(pieces), want)
	}
}

func TestSegmentSizesTableIV(t *testing.T) {
	sizes := SegmentSizes(TableIV.Segments, TableIV.Mu, TableIV.Sigma, TableIV.Seed)
	if len(sizes) != 1024 {
		t.Fatalf("len = %d", len(sizes))
	}
	// Deterministic for the fixed seed.
	again := SegmentSizes(TableIV.Segments, TableIV.Mu, TableIV.Sigma, TableIV.Seed)
	for i := range sizes {
		if sizes[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	// Statistics roughly match Normal(2048, 128).
	var sum, sq float64
	for _, v := range sizes {
		sum += float64(v)
	}
	mean := sum / float64(len(sizes))
	for _, v := range sizes {
		sq += (float64(v) - mean) * (float64(v) - mean)
	}
	sd := math.Sqrt(sq / float64(len(sizes)))
	if mean < 2000 || mean > 2100 {
		t.Fatalf("mean = %.1f", mean)
	}
	if sd < 100 || sd > 160 {
		t.Fatalf("sd = %.1f", sd)
	}
}

func TestOwnedByPartition(t *testing.T) {
	const n, procs = 100, 7
	seen := make(map[int]int)
	for r := 0; r < procs; r++ {
		for _, id := range OwnedBy(n, procs, r) {
			if id%procs != r {
				t.Fatalf("rank %d owns %d", r, id)
			}
			seen[id]++
		}
	}
	if len(seen) != n {
		t.Fatalf("%d trees covered, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("tree %d owned %d times", id, c)
		}
	}
}

func TestGenerateForRankDeterministicAcrossOwnership(t *testing.T) {
	// The same tree must have identical content regardless of the number
	// of ranks that deal it out.
	a := GenerateForRank(8, 2, 2, 0, 11) // trees 0,2,4,6
	b := GenerateForRank(8, 2, 4, 0, 11) // trees 0,4
	if !a[0].Equal(b[0]) {
		t.Fatal("tree 0 differs between 2-rank and 4-rank decompositions")
	}
	if !a[2].Equal(b[1]) {
		t.Fatal("tree 4 differs between decompositions")
	}
}

func runArt(t *testing.T, procs int, fn func(*mpi.Comm) error) {
	t.Helper()
	if _, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, fn); err != nil {
		t.Fatal(err)
	}
}

func testDumpRestore(t *testing.T, lib Library, procs, ntrees int) {
	t.Helper()
	name := fmt.Sprintf("ckpt-%v-%d", lib, procs)
	runArt(t, procs, func(c *mpi.Comm) error {
		trees := GenerateForRank(ntrees, 2, c.Size(), c.Rank(), 99)
		// Use small trees for tests.
		if err := Dump(c, lib, name, trees, ntrees, 256); err != nil {
			return err
		}
		back, err := Restore(c, lib, name)
		if err != nil {
			return err
		}
		if len(back) != len(trees) {
			return fmt.Errorf("restored %d trees, want %d", len(back), len(trees))
		}
		for i := range trees {
			if !trees[i].Equal(back[i]) {
				return fmt.Errorf("rank %d: tree %d mismatch after restart", c.Rank(), trees[i].ID)
			}
		}
		return nil
	})
}

func TestDumpRestoreTCIO(t *testing.T)    { testDumpRestore(t, LibTCIO, 4, 12) }
func TestDumpRestoreVanilla(t *testing.T) { testDumpRestore(t, LibVanilla, 4, 12) }

func TestDumpRestoreSingleRank(t *testing.T) { testDumpRestore(t, LibTCIO, 1, 5) }

func TestCrossLibraryCompatibility(t *testing.T) {
	// A checkpoint written with TCIO must restore through vanilla MPI-IO
	// and vice versa: the file format is identical.
	const procs, ntrees = 3, 9
	runArt(t, procs, func(c *mpi.Comm) error {
		trees := GenerateForRank(ntrees, 2, c.Size(), c.Rank(), 5)
		if err := Dump(c, LibTCIO, "cross", trees, ntrees, 256); err != nil {
			return err
		}
		back, err := Restore(c, LibVanilla, "cross")
		if err != nil {
			return err
		}
		for i := range trees {
			if !trees[i].Equal(back[i]) {
				return fmt.Errorf("tree %d differs across libraries", trees[i].ID)
			}
		}
		return nil
	})
}

func TestDumpRejectsBadIDs(t *testing.T) {
	runArt(t, 1, func(c *mpi.Comm) error {
		tr := Generate(5, 10, 1, rand.New(rand.NewSource(1)))
		if err := Dump(c, LibTCIO, "bad", []*Tree{tr}, 3, 256); err == nil {
			return fmt.Errorf("tree id 5 with ntrees=3 accepted")
		}
		return nil
	})
}

func TestDumpDetectsMissingTrees(t *testing.T) {
	runArt(t, 1, func(c *mpi.Comm) error {
		tr := Generate(0, 10, 1, rand.New(rand.NewSource(1)))
		if err := Dump(c, LibTCIO, "missing", []*Tree{tr}, 2, 256); err == nil {
			return fmt.Errorf("missing tree 1 not detected")
		}
		return nil
	})
}

func TestRestoreRejectsGarbage(t *testing.T) {
	runArt(t, 1, func(c *mpi.Comm) error {
		pf := c.FS().Open("garbage")
		if _, err := pf.WriteAt(0, 0, make([]byte, 64), 0); err != nil {
			return err
		}
		if _, err := Restore(c, LibVanilla, "garbage"); err == nil {
			return fmt.Errorf("garbage checkpoint accepted")
		}
		return nil
	})
}

func TestLibraryString(t *testing.T) {
	if LibTCIO.String() != "TCIO" || LibVanilla.String() != "MPI-IO" {
		t.Fatal("Library.String wrong")
	}
	if Library(9).String() != "Library(9)" {
		t.Fatal("unknown library string wrong")
	}
}
