// Package faults is the simulator's deterministic fault-injection engine.
//
// Real Lustre deployments lose OST requests, serve them slowly, revoke
// extent locks in storms, drop connection setups, and put transient
// pressure on node memory. The paper's robustness claims (OCIO's OOM
// collapse at 48 GB, the all-to-all incast at P >= 512) are only half the
// story without those failure modes, so every hardware layer of the
// simulator (pfs, netsim, cluster) consults a shared Injector before
// serving a request.
//
// Determinism is the design constraint: chaos runs must replay exactly
// from a seed even though ranks are concurrent goroutines whose real-time
// interleaving varies run to run. The engine therefore never draws from a
// shared sequential RNG. It offers two decision primitives:
//
//   - Roll(site, keys...) hashes (seed, site, keys) into a uniform float.
//     Callers pass stable operation identity — client, offset, length,
//     attempt number — so the decision for a given operation is a pure
//     function of the seed, independent of goroutine scheduling. Retries
//     pass an incremented attempt and get a fresh roll.
//
//   - NextRoll(site, a, b) draws from a per-(site,a,b) counter-indexed
//     stream. Which concurrent operation receives which draw may vary
//     between runs, but the multiset of draws — and therefore every
//     aggregate fault count — is fixed by the seed.
//
// Time is virtual throughout: injected timeouts and retry backoff charge
// simulated nanoseconds, never wall-clock sleeps, so chaos tests run as
// fast as clean ones.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths pay one nil check when chaos is off.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/simtime"
)

// Site names one injection point. Each site has its own rule and its own
// decision streams, so an experiment can, say, fail 5% of OST writes while
// leaving reads clean.
type Site string

// Injection sites known to the simulator's layers.
const (
	// SiteOSTWrite fails an OST write RPC with a transient error.
	SiteOSTWrite Site = "ost.write"
	// SiteOSTRead fails an OST read RPC with a transient error.
	SiteOSTRead Site = "ost.read"
	// SiteOSTSlow multiplies one request's OST service time by Factor.
	SiteOSTSlow Site = "ost.slow"
	// SiteLockStorm turns one extent-lock revocation into a storm costing
	// Factor revocation round trips.
	SiteLockStorm Site = "ost.lockstorm"
	// SiteNetSetup fails a connection setup; the NIC retries after a
	// timeout, charged in virtual time.
	SiteNetSetup Site = "net.setup"
	// SiteNetSlow multiplies one transfer's wire time by Factor.
	SiteNetSlow Site = "net.slow"
	// SiteMemAlloc fails a simulated allocation with transient pressure
	// (batch-system neighbours ballooning, page-cache spikes).
	SiteMemAlloc Site = "mem.alloc"
	// SiteWinPut fails a one-sided put epoch transiently (NIC work-request
	// drop); the I/O library retries with backoff.
	SiteWinPut Site = "win.put"
	// SiteWALTruncate fails the journal-truncate RPC that retires a file's
	// WAL after its final drain settles; the library retries with backoff.
	SiteWALTruncate Site = "wal.truncate"
)

// Rule configures one site.
type Rule struct {
	// Prob is the probability in [0,1] that an operation at the site
	// faults.
	Prob float64
	// Factor scales the site's effect where one applies: the service-time
	// multiplier of SiteOSTSlow/SiteNetSlow, the revocation count of
	// SiteLockStorm. Sites that only fail ignore it.
	Factor float64
	// MaxInjected, when positive, stops the site after that many injected
	// faults — a bounded storm. The cap is checked with an atomic counter,
	// so which concurrent operation crosses it can vary between runs; leave
	// it zero in runs that must replay with identical per-operation
	// outcomes.
	MaxInjected int64
}

// Fault is the typed error carried by every injected failure. It wraps
// ErrInjected so errors.Is recognizes any injected cause through arbitrary
// wrapping.
type Fault struct {
	// Site is the injection point that fired.
	Site Site
	// Detail describes the failed operation (offset, target, ...).
	Detail string
}

// Error formats the fault.
func (f *Fault) Error() string {
	if f.Detail == "" {
		return fmt.Sprintf("injected fault at %s", f.Site)
	}
	return fmt.Sprintf("injected fault at %s (%s)", f.Site, f.Detail)
}

// Unwrap marks the fault as transient.
func (f *Fault) Unwrap() error { return ErrInjected }

// ErrInjected is the sentinel wrapped by every injected transient fault.
var ErrInjected = errors.New("faults: injected transient fault")

// IsTransient reports whether err is (or wraps) an injected transient
// fault — the class a retry policy is allowed to absorb.
func IsTransient(err error) bool { return errors.Is(err, ErrInjected) }

// Injector decides, deterministically from its seed, which operations
// fault. All methods are safe for concurrent use and safe on a nil
// receiver (a nil injector injects nothing).
type Injector struct {
	seed int64

	mu    sync.RWMutex
	rules map[Site]Rule

	cmu      sync.Mutex
	injected map[Site]int64
	streams  map[streamKey]int64
}

type streamKey struct {
	site Site
	a, b int64
}

// New creates an injector for the given seed. Two injectors with the same
// seed and rules make identical decisions.
func New(seed int64) *Injector {
	return &Injector{
		seed:     seed,
		rules:    make(map[Site]Rule),
		injected: make(map[Site]int64),
		streams:  make(map[streamKey]int64),
	}
}

// Seed reports the injector's seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Set installs (or replaces) the rule for a site. A Prob of 0 disables it.
func (in *Injector) Set(site Site, r Rule) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.rules[site] = r
	in.mu.Unlock()
	return in
}

// Rule returns the site's rule (zero value when unset).
func (in *Injector) Rule(site Site) Rule {
	if in == nil {
		return Rule{}
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.rules[site]
}

// Enabled reports whether the site has a non-zero fault probability.
func (in *Injector) Enabled(site Site) bool {
	return in.Rule(site).Prob > 0
}

// splitmix64 is the finalizer of the SplitMix64 generator: a full-avalanche
// 64-bit mixer, the standard way to turn structured keys into uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashSite folds a site name into 64 bits (FNV-1a).
func hashSite(s Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// uniform converts hash state into a float in [0,1).
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// roll hashes the seed, site, and keys into a uniform [0,1) float.
func (in *Injector) roll(site Site, keys []int64) float64 {
	h := splitmix64(uint64(in.seed) ^ hashSite(site))
	for _, k := range keys {
		h = splitmix64(h ^ uint64(k))
	}
	return uniform(h)
}

// Should decides whether the operation identified by keys faults at site.
// The decision is a pure function of (seed, site, keys): callers pass the
// operation's stable identity (client, offset, length, attempt) and get a
// replay-exact answer regardless of scheduling. It also counts the
// injection and enforces the site's MaxInjected cap.
func (in *Injector) Should(site Site, keys ...int64) bool {
	if in == nil {
		return false
	}
	r := in.Rule(site)
	if r.Prob <= 0 || in.roll(site, keys) >= r.Prob {
		return false
	}
	return in.countInjection(site, r)
}

// NextRoll draws the next value of the per-(site,a,b) stream. Aggregate
// outcomes are seed-deterministic even when concurrent callers race for
// draws; see the package comment.
func (in *Injector) NextRoll(site Site, a, b int64) float64 {
	in.cmu.Lock()
	k := streamKey{site: site, a: a, b: b}
	n := in.streams[k] + 1
	in.streams[k] = n
	in.cmu.Unlock()
	return in.roll(site, []int64{a, b, n})
}

// ShouldNext decides a fault from the per-(site,a,b) stream, counting it
// like Should.
func (in *Injector) ShouldNext(site Site, a, b int64) bool {
	if in == nil {
		return false
	}
	r := in.Rule(site)
	if r.Prob <= 0 || in.NextRoll(site, a, b) >= r.Prob {
		return false
	}
	return in.countInjection(site, r)
}

// countInjection records one injected fault, honouring MaxInjected.
func (in *Injector) countInjection(site Site, r Rule) bool {
	in.cmu.Lock()
	defer in.cmu.Unlock()
	if r.MaxInjected > 0 && in.injected[site] >= r.MaxInjected {
		return false
	}
	in.injected[site]++
	return true
}

// Factor returns the site's effect multiplier, defaulting to 1 when the
// rule leaves it unset or nonsensical.
func (in *Injector) Factor(site Site) float64 {
	f := in.Rule(site).Factor
	if f < 1 {
		return 1
	}
	return f
}

// Fault builds the typed error for an injection at site.
func (in *Injector) Fault(site Site, format string, args ...interface{}) error {
	return &Fault{Site: site, Detail: fmt.Sprintf(format, args...)}
}

// Injected reports how many faults the site has injected.
func (in *Injector) Injected(site Site) int64 {
	if in == nil {
		return 0
	}
	in.cmu.Lock()
	defer in.cmu.Unlock()
	return in.injected[site]
}

// Counts returns a snapshot of every site's injection count.
func (in *Injector) Counts() map[Site]int64 {
	out := make(map[Site]int64)
	if in == nil {
		return out
	}
	in.cmu.Lock()
	defer in.cmu.Unlock()
	for s, n := range in.injected {
		out[s] = n
	}
	return out
}

// TotalInjected sums all sites' injection counts.
func (in *Injector) TotalInjected() int64 {
	var total int64
	for _, n := range in.Counts() {
		total += n
	}
	return total
}

// CountsString renders the injection counts in stable site order — the
// reproducibility fingerprint chaos runs print and compare.
func (in *Injector) CountsString() string {
	counts := in.Counts()
	sites := make([]string, 0, len(counts))
	for s := range counts {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	out := ""
	for i, s := range sites {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", s, counts[Site(s)])
	}
	return out
}

// Reset clears injection counts and decision streams (rules and seed are
// kept), so one injector can serve consecutive experiment phases.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.cmu.Lock()
	in.injected = make(map[Site]int64)
	in.streams = make(map[streamKey]int64)
	in.cmu.Unlock()
}

// RetryPolicy bounds how a client absorbs transient faults: a per-request
// retry budget, capped exponential backoff between attempts, and an
// optional virtual-time deadline for the whole request.
type RetryPolicy struct {
	// MaxRetries is the retry budget per request (0 = fail on the first
	// transient fault).
	MaxRetries int
	// BaseDelay is the backoff before the first retry.
	BaseDelay simtime.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay simtime.Duration
	// Multiplier grows the delay per attempt (values < 1 mean 2).
	Multiplier float64
	// Deadline, when positive, fails the request once the virtual time
	// spent on it (including backoff) exceeds this budget, even with
	// retries remaining.
	Deadline simtime.Duration
}

// DefaultRetryPolicy returns the policy the I/O libraries use unless
// overridden: 8 retries, 200 µs growing 2x to a 25 ms cap, 2 s deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 8,
		BaseDelay:  200 * simtime.Microsecond,
		MaxDelay:   25 * simtime.Millisecond,
		Multiplier: 2,
		Deadline:   2 * simtime.Second,
	}
}

// NoRetry returns the zero-budget policy: every transient fault is
// immediately permanent.
func NoRetry() RetryPolicy { return RetryPolicy{} }

// Backoff returns the delay before retry attempt (1-based): capped
// exponential, deterministic. Jitter is deliberately absent — determinism
// outranks thundering-herd smoothing in a simulator, and the virtual-time
// resource queues already spread contending retries.
func (p RetryPolicy) Backoff(attempt int) simtime.Duration {
	if attempt < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return simtime.Duration(d)
}

// Retry drives one operation through the policy's attempt loop in virtual
// time. op is called with the virtual instant at which the attempt departs
// and the zero-based attempt number; it returns the attempt's completion
// time and its error. Transient errors (IsTransient) are absorbed with the
// policy's capped exponential backoff until the operation succeeds, a
// permanent error surfaces, the retry budget is spent, or the policy's
// deadline passes; the count of absorbed faults is returned alongside the
// final completion time.
//
// This is the single retry loop shared by every layer: the file system's
// request retries (pfs), the I/O libraries' one-sided put retries (tcio),
// and the storage backend's extent transfers all delegate here instead of
// keeping near-copies.
func Retry(now simtime.Time, pol RetryPolicy, op func(at simtime.Time, attempt int64) (simtime.Time, error)) (simtime.Time, int64, error) {
	start := now
	var retries int64
	for attempt := 0; ; attempt++ {
		end, err := op(now, int64(attempt))
		if err == nil || !IsTransient(err) {
			return end, retries, err
		}
		if attempt >= pol.MaxRetries {
			return end, retries, Exhausted(attempt, err)
		}
		next := end.Add(pol.Backoff(attempt + 1))
		if pol.Deadline > 0 && next.Sub(start) > pol.Deadline {
			return end, retries, Exhausted(attempt,
				fmt.Errorf("virtual-time deadline %v exceeded: %w", pol.Deadline, err))
		}
		now = next
		retries++
	}
}

// ErrExhaustedRetries is the sentinel wrapped by errors returned when a
// request's retry budget or deadline is spent. The returned error also
// wraps the final injected cause, so callers can errors.Is against either.
var ErrExhaustedRetries = errors.New("faults: retry budget exhausted")

// Exhausted wraps the final cause of a request that ran out of retry
// budget after the given number of retries.
func Exhausted(retries int, cause error) error {
	return fmt.Errorf("%w (%d retries): %w", ErrExhaustedRetries, retries, cause)
}
