package faults

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/tcio/tcio/internal/simtime"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Should(SiteOSTWrite, 1, 2, 3) {
		t.Fatal("nil injector injected")
	}
	if in.ShouldNext(SiteNetSetup, 0, 1) {
		t.Fatal("nil injector injected from stream")
	}
	if in.Enabled(SiteOSTRead) {
		t.Fatal("nil injector enabled")
	}
	if got := in.Factor(SiteOSTSlow); got != 1 {
		t.Fatalf("nil Factor = %v", got)
	}
	if in.TotalInjected() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector has state")
	}
	in.Reset() // must not panic
	if in.Set(SiteOSTWrite, Rule{Prob: 1}) != nil {
		t.Fatal("nil Set returned non-nil")
	}
}

func TestShouldIsDeterministic(t *testing.T) {
	a := New(42).Set(SiteOSTWrite, Rule{Prob: 0.3})
	b := New(42).Set(SiteOSTWrite, Rule{Prob: 0.3})
	for off := int64(0); off < 2000; off++ {
		if a.Should(SiteOSTWrite, 7, off, 64, 0) != b.Should(SiteOSTWrite, 7, off, 64, 0) {
			t.Fatalf("divergent decision at off=%d", off)
		}
	}
	if a.Injected(SiteOSTWrite) != b.Injected(SiteOSTWrite) {
		t.Fatalf("divergent counts: %d vs %d", a.Injected(SiteOSTWrite), b.Injected(SiteOSTWrite))
	}
	if a.Injected(SiteOSTWrite) == 0 {
		t.Fatal("rate 0.3 over 2000 ops injected nothing")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1).Set(SiteOSTWrite, Rule{Prob: 0.5})
	b := New(2).Set(SiteOSTWrite, Rule{Prob: 0.5})
	same := 0
	const n = 1000
	for off := int64(0); off < n; off++ {
		if a.Should(SiteOSTWrite, 0, off, 1, 0) == b.Should(SiteOSTWrite, 0, off, 1, 0) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds made identical decisions")
	}
}

func TestRollRateConverges(t *testing.T) {
	for _, prob := range []float64{0.05, 0.5, 0.9} {
		in := New(7).Set(SiteOSTRead, Rule{Prob: prob})
		const n = 20000
		for off := int64(0); off < n; off++ {
			in.Should(SiteOSTRead, 3, off, 8, 0)
		}
		got := float64(in.Injected(SiteOSTRead)) / n
		if math.Abs(got-prob) > 0.02 {
			t.Fatalf("prob %v: injected rate %v", prob, got)
		}
	}
}

func TestAttemptKeyGivesFreshRolls(t *testing.T) {
	// A faulted operation must be able to succeed on retry: the attempt
	// number is part of the key, so rolls differ across attempts.
	in := New(99).Set(SiteOSTWrite, Rule{Prob: 0.5})
	varies := false
	for off := int64(0); off < 64 && !varies; off++ {
		first := in.Should(SiteOSTWrite, 0, off, 1, 0)
		for attempt := int64(1); attempt < 8; attempt++ {
			if in.Should(SiteOSTWrite, 0, off, 1, attempt) != first {
				varies = true
				break
			}
		}
	}
	if !varies {
		t.Fatal("attempt number does not vary the decision")
	}
}

func TestMaxInjectedBoundsStorm(t *testing.T) {
	in := New(5).Set(SiteLockStorm, Rule{Prob: 1, MaxInjected: 3})
	fired := 0
	for i := int64(0); i < 100; i++ {
		if in.Should(SiteLockStorm, i) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("MaxInjected=3 fired %d times", fired)
	}
}

func TestStreamCountsDeterministicUnderConcurrency(t *testing.T) {
	// Concurrent callers race for draws, but the total injected count is a
	// pure function of the seed and the number of draws.
	count := func() int64 {
		in := New(11).Set(SiteNetSetup, Rule{Prob: 0.2})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					in.ShouldNext(SiteNetSetup, 1, 2)
				}
			}()
		}
		wg.Wait()
		return in.Injected(SiteNetSetup)
	}
	first := count()
	if first == 0 {
		t.Fatal("no faults at 20% over 4000 draws")
	}
	for i := 0; i < 3; i++ {
		if got := count(); got != first {
			t.Fatalf("run %d: %d faults, want %d", i, got, first)
		}
	}
}

func TestFaultErrorTyping(t *testing.T) {
	in := New(0)
	err := in.Fault(SiteOSTWrite, "off=%d", 42)
	if !IsTransient(err) {
		t.Fatal("fault not transient")
	}
	wrapped := fmt.Errorf("pfs: %w", err)
	if !errors.Is(wrapped, ErrInjected) {
		t.Fatal("wrapping lost ErrInjected")
	}
	var f *Fault
	if !errors.As(wrapped, &f) || f.Site != SiteOSTWrite {
		t.Fatalf("errors.As failed: %v", wrapped)
	}
	exhausted := Exhausted(3, wrapped)
	if !errors.Is(exhausted, ErrExhaustedRetries) || !errors.Is(exhausted, ErrInjected) {
		t.Fatalf("Exhausted lost a sentinel: %v", exhausted)
	}
}

func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxRetries: 10, BaseDelay: 100, MaxDelay: 1000, Multiplier: 2}
	want := []simtime.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if p.Backoff(0) != 0 {
		t.Fatal("Backoff(0) != 0")
	}
	if (RetryPolicy{}).Backoff(3) != 0 {
		t.Fatal("zero policy backoff != 0")
	}
	// Default multiplier is 2 when unset.
	q := RetryPolicy{BaseDelay: 100}
	if q.Backoff(3) != 400 {
		t.Fatalf("default multiplier: Backoff(3) = %v", q.Backoff(3))
	}
}

func TestBackoffMonotonic(t *testing.T) {
	p := DefaultRetryPolicy()
	err := quick.Check(func(raw uint8) bool {
		a := int(raw%30) + 1
		return p.Backoff(a+1) >= p.Backoff(a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountsStringStable(t *testing.T) {
	in := New(3).
		Set(SiteOSTWrite, Rule{Prob: 1}).
		Set(SiteNetSetup, Rule{Prob: 1})
	in.Should(SiteOSTWrite, 1)
	in.Should(SiteOSTWrite, 2)
	in.ShouldNext(SiteNetSetup, 0, 0)
	if got, want := in.CountsString(), "net.setup=1 ost.write=2"; got != want {
		t.Fatalf("CountsString = %q, want %q", got, want)
	}
	in.Reset()
	if in.CountsString() != "" || in.TotalInjected() != 0 {
		t.Fatal("Reset left counts")
	}
}
