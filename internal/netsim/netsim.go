// Package netsim models the cluster interconnect in virtual time.
//
// The model is a calibrated alpha-beta cost model with two contention
// mechanisms layered on top:
//
//   - NIC serialization: each node has one egress and one ingress resource;
//     bytes stream through them at NIC bandwidth, so a node cannot send or
//     receive faster than its link.
//   - Incast congestion: when many transfers target the same node's ingress
//     within an overlapping virtual-time window (the classic all-to-all
//     burst), the effective service time of each transfer is inflated. This
//     reproduces the connection-storm collapse that the TCIO paper blames
//     for OCIO's poor write throughput at 512+ processes, while TCIO's
//     paced, one-at-a-time one-sided transfers stay in the uncongested
//     regime.
//
// Message classes distinguish two-sided sends (which pay rendezvous
// matching/setup) from one-sided RDMA puts/gets (cheaper setup, no matching),
// mirroring the paper's §IV discussion of why TCIO uses MPI_Put/MPI_Get.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/simtime"
)

// Class describes the flavour of a transfer, which determines its setup cost.
type Class int

const (
	// TwoSided is a matched send/receive pair (MPI_Isend/MPI_Irecv).
	TwoSided Class = iota
	// OneSided is an RDMA-style put or get (MPI_Put/MPI_Get).
	OneSided
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case TwoSided:
		return "two-sided"
	case OneSided:
		return "one-sided"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config holds the interconnect parameters. The defaults approximate the
// paper's testbed: Mellanox InfiniBand, fat tree, 40 Gbit/s point-to-point.
type Config struct {
	// Latency is the end-to-end propagation latency per message.
	Latency simtime.Duration
	// SetupTwoSided is charged per two-sided message (matching, rendezvous).
	SetupTwoSided simtime.Duration
	// SetupOneSided is charged per one-sided message (RDMA work request).
	SetupOneSided simtime.Duration
	// NICBandwidth is the per-node link bandwidth in bytes/second.
	NICBandwidth float64
	// MemBandwidth is the intra-node copy bandwidth in bytes/second, used
	// when source and destination ranks share a node.
	MemBandwidth float64
	// IncastThreshold is the number of virtual-time-overlapping inbound
	// transfers a node tolerates before congestion sets in.
	IncastThreshold int
	// IncastScale divides the excess overlap before the power law is
	// applied: penalty = 1 + ((overlap-threshold)/scale)^IncastExponent.
	IncastScale float64
	// IncastExponent shapes the collapse. Values above 1 make connection
	// storms degrade superlinearly, which is what produces the paper's
	// large-scale OCIO write falloff.
	IncastExponent float64
	// MaxPenalty caps the congestion multiplier.
	MaxPenalty float64

	// Faults, when non-nil, injects interconnect failures: dropped
	// connection setups (faults.SiteNetSetup), which the NIC retries after
	// SetupRetryDelay, and slowed transfers (SiteNetSlow), whose wire time
	// is multiplied by the rule's Factor.
	Faults *faults.Injector
	// SetupRetryDelay is the virtual time burned per failed connection
	// setup before the NIC retries. 0 means 200 µs.
	SetupRetryDelay simtime.Duration
}

// DefaultConfig returns parameters calibrated against the paper's testbed
// (Lonestar: QDR InfiniBand fat tree, 40 Gbit/s ≈ 5 GB/s links).
func DefaultConfig() Config {
	return Config{
		Latency:         2 * simtime.Microsecond,
		SetupTwoSided:   3 * simtime.Microsecond,
		SetupOneSided:   600 * simtime.Nanosecond,
		NICBandwidth:    5e9,
		MemBandwidth:    20e9,
		IncastThreshold: 1024,
		IncastScale:     640,
		IncastExponent:  2.0,
		MaxPenalty:      1e4,
	}
}

// interval is one inbound transfer's occupancy window at a node's ingress.
type interval struct {
	start, end simtime.Time
}

// flowWindow tracks the transfers that overlap in virtual time at one port
// (a node's egress or ingress). The count of concurrently open windows is
// the port's instantaneous load: k+1 overlapping transfers each proceed at
// 1/(k+1) of the line rate, which keeps the model work-conserving without a
// FIFO queue (a queue ordered by call time would suffer virtual-time
// inversions between concurrently simulated ranks and stall the job).
type flowWindow struct {
	mu     sync.Mutex
	recent []interval
}

// overlapAt counts windows still open at instant t and records the new
// window. Windows that begin after t are counted too: they belong to the
// same burst epoch, and the port's switch state sees their connections.
func (fw *flowWindow) overlapAt(t simtime.Time, win interval) int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	live := fw.recent[:0]
	n := 0
	for _, iv := range fw.recent {
		if iv.end > t {
			live = append(live, iv)
			n++
		}
	}
	fw.recent = append(live, win)
	return n
}

func (fw *flowWindow) reset() {
	fw.mu.Lock()
	fw.recent = nil
	fw.mu.Unlock()
}

// node is the per-node interconnect state.
type node struct {
	egress  flowWindow
	ingress flowWindow
}

// Stats summarizes network activity since construction or the last Reset.
type Stats struct {
	Messages       int64
	Bytes          int64
	LocalMessages  int64
	PeakOverlap    int64
	CongestedMsgs  int64 // messages that paid an incast penalty
	OneSidedMsgs   int64
	TwoSidedMsgs   int64
	SetupTimeTotal simtime.Duration

	// Chaos counters (all zero without an injector).
	SetupRetries  int64 // connection setups dropped and retried by the NIC
	SlowTransfers int64 // transfers served under an injected slowdown
}

// Network is the interconnect shared by all simulated nodes.
type Network struct {
	cfg   Config
	nodes []*node

	messages      atomic.Int64
	bytes         atomic.Int64
	localMessages atomic.Int64
	peakOverlap   atomic.Int64
	congested     atomic.Int64
	oneSided      atomic.Int64
	twoSided      atomic.Int64
	setupTotal    atomic.Int64
	setupRetries  atomic.Int64
	slowTransfers atomic.Int64
}

// New creates a network connecting nodeCount nodes.
func New(nodeCount int, cfg Config) *Network {
	if nodeCount < 1 {
		panic("netsim: need at least one node")
	}
	n := &Network{cfg: cfg, nodes: make([]*node, nodeCount)}
	for i := range n.nodes {
		n.nodes[i] = &node{}
	}
	return n
}

// Config returns the network parameters.
func (n *Network) Config() Config { return n.cfg }

// NodeCount reports the number of nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Transfer moves size bytes from node src to node dst, departing at the
// given virtual instant, and returns the arrival instant. The byte payload
// itself is moved by the caller (the MPI layer); Transfer only accounts for
// time. Transfer is safe for concurrent use.
func (n *Network) Transfer(src, dst int, size int64, depart simtime.Time, class Class) simtime.Time {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: transfer %d->%d outside %d nodes", src, dst, len(n.nodes)))
	}
	if size < 0 {
		size = 0
	}
	n.messages.Add(1)
	n.bytes.Add(size)
	setup := n.cfg.SetupTwoSided
	if class == OneSided {
		setup = n.cfg.SetupOneSided
		n.oneSided.Add(1)
	} else {
		n.twoSided.Add(1)
	}
	n.setupTotal.Add(int64(setup))

	if src == dst {
		// Same node: a memory copy, no NIC involvement.
		n.localMessages.Add(1)
		return depart.Add(setup).Add(simtime.BytesDuration(size, n.cfg.MemBandwidth))
	}

	// Injected connection-setup drops: IB fabrics retry a failed work
	// request in hardware after a timeout, so the failure surfaces only as
	// burned virtual time. Bounded so a probability of 1 cannot spin.
	if inj := n.cfg.Faults; inj.Enabled(faults.SiteNetSetup) {
		retryDelay := n.cfg.SetupRetryDelay
		if retryDelay <= 0 {
			retryDelay = 200 * simtime.Microsecond
		}
		for tries := 0; tries < 8 && inj.ShouldNext(faults.SiteNetSetup, int64(src), int64(dst)); tries++ {
			setup += retryDelay
			n.setupRetries.Add(1)
		}
	}

	ready := depart.Add(setup)
	wire := simtime.BytesDuration(size, n.cfg.NICBandwidth)

	// Injected slow transfer: a degraded link or cable serves this flow at
	// a fraction of line rate.
	if inj := n.cfg.Faults; inj != nil && inj.ShouldNext(faults.SiteNetSlow, int64(src), int64(dst)) {
		wire = simtime.Duration(float64(wire) * inj.Factor(faults.SiteNetSlow))
		n.slowTransfers.Add(1)
	}

	// Source NIC: k concurrent outbound flows share the line rate.
	egOverlap := n.nodes[src].egress.overlapAt(ready, interval{start: ready, end: ready.Add(wire)})
	egressDur := wire * simtime.Duration(egOverlap+1)

	// Destination NIC: concurrent inbound flows share the line rate, and a
	// connection storm beyond the threshold collapses goodput superlinearly
	// (incast).
	inOverlap := n.nodes[dst].ingress.overlapAt(ready, interval{start: ready, end: ready.Add(wire)})
	if int64(inOverlap) > n.peakOverlap.Load() {
		n.peakOverlap.Store(int64(inOverlap))
	}
	penalty := 1.0
	if extra := inOverlap - n.cfg.IncastThreshold; extra > 0 {
		scale := n.cfg.IncastScale
		if scale <= 0 {
			scale = 1
		}
		exp := n.cfg.IncastExponent
		if exp <= 0 {
			exp = 1
		}
		penalty = 1 + math.Pow(float64(extra)/scale, exp)
		if penalty > n.cfg.MaxPenalty {
			penalty = n.cfg.MaxPenalty
		}
		n.congested.Add(1)
	}
	ingressDur := simtime.Duration(float64(wire) * float64(inOverlap+1) * penalty)

	dur := egressDur
	if ingressDur > dur {
		dur = ingressDur
	}
	return ready.Add(dur).Add(n.cfg.Latency)
}

// Stats returns a snapshot of the accumulated counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages:       n.messages.Load(),
		Bytes:          n.bytes.Load(),
		LocalMessages:  n.localMessages.Load(),
		PeakOverlap:    n.peakOverlap.Load(),
		CongestedMsgs:  n.congested.Load(),
		OneSidedMsgs:   n.oneSided.Load(),
		TwoSidedMsgs:   n.twoSided.Load(),
		SetupTimeTotal: simtime.Duration(n.setupTotal.Load()),
		SetupRetries:   n.setupRetries.Load(),
		SlowTransfers:  n.slowTransfers.Load(),
	}
}

// Reset clears all counters and resource queues so the network can be
// reused for another experiment run.
func (n *Network) Reset() {
	n.messages.Store(0)
	n.bytes.Store(0)
	n.localMessages.Store(0)
	n.peakOverlap.Store(0)
	n.congested.Store(0)
	n.oneSided.Store(0)
	n.twoSided.Store(0)
	n.setupTotal.Store(0)
	n.setupRetries.Store(0)
	n.slowTransfers.Store(0)
	for _, nd := range n.nodes {
		nd.egress.reset()
		nd.ingress.reset()
	}
}
