package netsim

import (
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

// Tests of the overlap-sharing port model: concurrent flows divide the line
// rate; temporally separated flows each get the full rate.

func TestConcurrentFlowsShareBandwidth(t *testing.T) {
	cfg := quietConfig()
	net := New(3, cfg)
	const size = 5_000_000 // 1 ms at line rate

	// Two transfers into node 0 at the same virtual instant: the second
	// observes one overlapping flow and takes ~2x the wire time.
	a := net.Transfer(1, 0, size, 0, OneSided)
	b := net.Transfer(2, 0, size, 0, OneSided)
	wire := simtime.Time(simtime.Millisecond)
	if a >= b {
		t.Fatalf("second overlapping transfer (%v) should be slower than first (%v)", b, a)
	}
	if b < wire.Add(simtime.Millisecond) {
		t.Fatalf("overlapped transfer finished at %v, faster than shared-rate bound", b)
	}
}

func TestSeparatedFlowsFullRate(t *testing.T) {
	cfg := quietConfig()
	net := New(3, cfg)
	const size = 5_000_000
	first := net.Transfer(1, 0, size, 0, OneSided)
	// Far in the future: no overlap, full rate again.
	depart := simtime.Time(simtime.Second)
	second := net.Transfer(2, 0, size, depart, OneSided)
	d1 := first.Sub(0)
	d2 := second.Sub(depart)
	if d2 != d1 {
		t.Fatalf("separated transfer cost %v, want %v", d2, d1)
	}
}

func TestEgressSharingIndependentOfIngress(t *testing.T) {
	cfg := quietConfig()
	net := New(4, cfg)
	const size = 5_000_000
	// Two flows out of node 0 to different destinations share the egress.
	a := net.Transfer(0, 1, size, 0, OneSided)
	b := net.Transfer(0, 2, size, 0, OneSided)
	if b <= a {
		t.Fatalf("second egress flow (%v) should be slower (%v)", b, a)
	}
}

func TestZeroByteTransferOnlyLatency(t *testing.T) {
	cfg := quietConfig()
	net := New(2, cfg)
	got := net.Transfer(0, 1, 0, 0, OneSided)
	want := simtime.Time(cfg.SetupOneSided + cfg.Latency)
	if got != want {
		t.Fatalf("zero-byte transfer arrives at %v, want %v", got, want)
	}
}

func TestPeakOverlapTracked(t *testing.T) {
	cfg := quietConfig()
	net := New(5, cfg)
	for src := 1; src < 5; src++ {
		net.Transfer(src, 0, 1_000_000, 0, OneSided)
	}
	if got := net.Stats().PeakOverlap; got < 2 {
		t.Fatalf("PeakOverlap = %d after a 4-flow burst", got)
	}
}

func TestWindowPruning(t *testing.T) {
	cfg := quietConfig()
	net := New(2, cfg)
	// Many temporally separated transfers must not accumulate state that
	// penalizes later ones.
	gap := simtime.Time(0)
	var lastDur simtime.Duration
	for i := 0; i < 100; i++ {
		end := net.Transfer(0, 1, 1_000_000, gap, OneSided)
		lastDur = end.Sub(gap)
		gap = gap.Add(simtime.Second)
	}
	firstNet := New(2, cfg)
	end := firstNet.Transfer(0, 1, 1_000_000, 0, OneSided)
	if lastDur != end.Sub(0) {
		t.Fatalf("100th separated transfer cost %v, first costs %v: stale window state", lastDur, end.Sub(0))
	}
}
