package netsim

import (
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.IncastThreshold = 1 << 30 // effectively disable congestion
	return cfg
}

func TestTransferBasicCost(t *testing.T) {
	cfg := quietConfig()
	net := New(2, cfg)
	const size = 5_000_000 // at 5 GB/s -> 1 ms on the wire
	arrive := net.Transfer(0, 1, size, 0, TwoSided)
	want := simtime.Time(cfg.SetupTwoSided + simtime.Millisecond + cfg.Latency)
	if arrive != want {
		t.Fatalf("arrive = %v, want %v", arrive, want)
	}
}

func TestOneSidedSetupCheaper(t *testing.T) {
	cfg := quietConfig()
	a := New(2, cfg).Transfer(0, 1, 1000, 0, TwoSided)
	b := New(2, cfg).Transfer(0, 1, 1000, 0, OneSided)
	if b >= a {
		t.Fatalf("one-sided arrive %v not cheaper than two-sided %v", b, a)
	}
}

func TestLocalTransferSkipsNIC(t *testing.T) {
	cfg := quietConfig()
	net := New(2, cfg)
	local := net.Transfer(0, 0, 1_000_000, 0, TwoSided)
	remote := New(2, cfg).Transfer(0, 1, 1_000_000, 0, TwoSided)
	if local >= remote {
		t.Fatalf("local transfer %v should beat remote %v", local, remote)
	}
	st := net.Stats()
	if st.LocalMessages != 1 {
		t.Fatalf("LocalMessages = %d, want 1", st.LocalMessages)
	}
}

func TestEgressSerialization(t *testing.T) {
	cfg := quietConfig()
	net := New(3, cfg)
	// Two messages from node 0 departing together must leave back to back.
	a1 := net.Transfer(0, 1, 5_000_000, 0, TwoSided)
	a2 := net.Transfer(0, 2, 5_000_000, 0, TwoSided)
	if a2 < a1.Add(simtime.Millisecond) {
		t.Fatalf("second egress %v should queue behind first %v", a2, a1)
	}
}

func TestIncastPenaltyInflatesBurst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IncastThreshold = 2
	cfg.IncastScale = 1
	cfg.IncastExponent = 1.5

	// Burst: many nodes hit node 0 at the same virtual instant.
	burst := New(33, cfg)
	var last simtime.Time
	for src := 1; src <= 32; src++ {
		if got := burst.Transfer(src, 0, 1_000_000, 0, TwoSided); got > last {
			last = got
		}
	}

	// Paced: same 32 messages arriving far apart in virtual time.
	paced := New(33, cfg)
	var pacedTotal simtime.Duration
	gap := simtime.Time(0)
	for src := 1; src <= 32; src++ {
		end := paced.Transfer(src, 0, 1_000_000, gap, TwoSided)
		pacedTotal += end.Sub(gap)
		gap = gap.Add(10 * simtime.Millisecond)
	}

	burstStats := burst.Stats()
	if burstStats.CongestedMsgs == 0 {
		t.Fatal("burst produced no congested messages")
	}
	if pacedStats := paced.Stats(); pacedStats.CongestedMsgs != 0 {
		t.Fatalf("paced transfers hit congestion: %d msgs", pacedStats.CongestedMsgs)
	}
	// The burst's last arrival must exceed the sum of 32 uncongested
	// service times (1MB at 5GB/s = 200us each -> 6.4ms serialized).
	if last < simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("burst finished suspiciously fast: %v", last)
	}
}

func TestMaxPenaltyCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IncastThreshold = 0
	cfg.IncastScale = 1e-9
	cfg.IncastExponent = 3
	cfg.MaxPenalty = 2
	net := New(3, cfg)
	net.Transfer(1, 0, 1_000_000, 0, TwoSided)
	end := net.Transfer(2, 0, 1_000_000, 0, TwoSided)
	// Second message: queue behind first (200us service, 2x penalty = 400us
	// each). Without the cap this would be astronomically large.
	if end > simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("penalty cap not applied, arrive = %v", end)
	}
}

func TestStatsCounting(t *testing.T) {
	net := New(2, quietConfig())
	net.Transfer(0, 1, 100, 0, TwoSided)
	net.Transfer(0, 1, 200, 0, OneSided)
	net.Transfer(1, 1, 50, 0, OneSided)
	st := net.Stats()
	if st.Messages != 3 || st.Bytes != 350 {
		t.Fatalf("Messages=%d Bytes=%d", st.Messages, st.Bytes)
	}
	if st.OneSidedMsgs != 2 || st.TwoSidedMsgs != 1 {
		t.Fatalf("class counts: one=%d two=%d", st.OneSidedMsgs, st.TwoSidedMsgs)
	}
}

func TestReset(t *testing.T) {
	net := New(2, quietConfig())
	net.Transfer(0, 1, 5_000_000, 0, TwoSided)
	net.Reset()
	if st := net.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	// Queue must also be empty: a fresh transfer behaves like the first.
	arrive := net.Transfer(0, 1, 5_000_000, 0, TwoSided)
	cfg := quietConfig()
	want := simtime.Time(cfg.SetupTwoSided + simtime.Millisecond + cfg.Latency)
	if arrive != want {
		t.Fatalf("post-reset arrive = %v, want %v", arrive, want)
	}
}

func TestConcurrentTransfersSafe(t *testing.T) {
	net := New(8, DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				net.Transfer(g%8, (g+i)%8, int64(i*100), simtime.Time(i), OneSided)
			}
		}(g)
	}
	wg.Wait()
	if st := net.Stats(); st.Messages != 64*50 {
		t.Fatalf("Messages = %d, want %d", st.Messages, 64*50)
	}
}

func TestTransferPanicsOnBadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	New(2, quietConfig()).Transfer(0, 5, 10, 0, TwoSided)
}

func TestClassString(t *testing.T) {
	if TwoSided.String() != "two-sided" || OneSided.String() != "one-sided" {
		t.Fatal("Class.String wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Fatal("unknown class string wrong")
	}
}
