// Package stats provides the small measurement toolkit shared by the
// benchmark harness: throughput math, aggregation over repeated runs, and
// plain-text/CSV table rendering for the paper's figures.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/tcio/tcio/internal/simtime"
)

// ThroughputMBs converts (bytes, duration) into the paper's unit,
// MBytes/sec (decimal MB, as throughput plots conventionally use).
func ThroughputMBs(bytes int64, d simtime.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// Sample aggregates repeated measurements of one quantity.
type Sample struct {
	n    int
	sum  float64
	min  float64
	max  float64
	sumQ float64
}

// Add records one measurement.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumQ += v * v
}

// N reports the number of measurements.
func (s *Sample) N() int { return s.n }

// Mean reports the average (0 with no data).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min reports the smallest measurement.
func (s *Sample) Min() float64 { return s.min }

// Max reports the largest measurement.
func (s *Sample) Max() float64 { return s.max }

// Stddev reports the population standard deviation.
func (s *Sample) Stddev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumQ/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Table is a rendered experiment result: one paper table or one figure's
// data series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (quotes are not handled;
// harness cells never contain commas).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FmtMBs formats a throughput value the way the paper's axes do.
func FmtMBs(v float64) string {
	return fmt.Sprintf("%.1f", v)
}

// FmtBytes formats a byte count with a binary-unit suffix.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
