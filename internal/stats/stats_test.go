package stats

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

func TestThroughputMBs(t *testing.T) {
	// 1e6 bytes in 1 second = 1 MB/s.
	if got := ThroughputMBs(1_000_000, simtime.Second); got != 1.0 {
		t.Fatalf("got %v", got)
	}
	if got := ThroughputMBs(500_000_000, 500*simtime.Millisecond); got != 1000.0 {
		t.Fatalf("got %v", got)
	}
	if ThroughputMBs(100, 0) != 0 {
		t.Fatal("zero duration should yield 0")
	}
}

func TestSample(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.N() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("sample stats: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if sd := s.Stddev(); sd < 1.6 || sd > 1.7 {
		t.Fatalf("stddev = %v", sd)
	}
	var empty Sample
	if empty.Mean() != 0 || empty.Stddev() != 0 {
		t.Fatal("empty sample should be zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Demo", Headers: []string{"a", "long-header"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "a       long-header", "x       1", "longer  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"p", "mbs"}}
	tb.AddRow("64", "123.4")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "p,mbs\n64,123.4\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2 << 10:   "2.0KB",
		768 << 20: "768.0MB",
		48 << 30:  "48.0GB",
		2 << 40:   "2.0TB",
	}
	for n, want := range cases {
		if got := FmtBytes(n); got != want {
			t.Errorf("FmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFmtMBs(t *testing.T) {
	if got := FmtMBs(123.456); got != "123.5" {
		t.Fatalf("got %q", got)
	}
}
