package cluster

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestLonestarMatchesPaper(t *testing.T) {
	m := Lonestar()
	if m.Nodes != 1888 {
		t.Fatalf("Nodes = %d, want 1888", m.Nodes)
	}
	if m.CoresPerNode != 12 {
		t.Fatalf("CoresPerNode = %d, want 12 (two 6-core processors)", m.CoresPerNode)
	}
	if m.MemPerNode != 24<<30 {
		t.Fatalf("MemPerNode = %d, want 24 GiB", m.MemPerNode)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Lonestar invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
		ok   bool
	}{
		{"default", func(m *Machine) {}, true},
		{"no nodes", func(m *Machine) { m.Nodes = 0 }, false},
		{"no cores", func(m *Machine) { m.CoresPerNode = 0 }, false},
		{"negative mem", func(m *Machine) { m.MemPerNode = -1 }, false},
		{"zero scale", func(m *Machine) { m.ByteScale = 0 }, false},
	}
	for _, tc := range cases {
		m := Lonestar()
		tc.mut(&m)
		if err := m.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPlacement(t *testing.T) {
	m := Lonestar()
	if m.NodeOf(0) != 0 || m.NodeOf(11) != 0 {
		t.Fatal("first 12 ranks should share node 0")
	}
	if m.NodeOf(12) != 1 {
		t.Fatalf("NodeOf(12) = %d, want 1", m.NodeOf(12))
	}
	if got := m.NodesFor(1024); got != 86 {
		t.Fatalf("NodesFor(1024) = %d, want 86", got)
	}
	if got := m.NodesFor(12); got != 1 {
		t.Fatalf("NodesFor(12) = %d, want 1", got)
	}
	if got := m.NodesFor(13); got != 2 {
		t.Fatalf("NodesFor(13) = %d, want 2", got)
	}
}

func TestPlacementProperty(t *testing.T) {
	m := Lonestar()
	f := func(rank uint16) bool {
		r := int(rank)
		n := m.NodeOf(r)
		// Every rank's node is within the node count implied by NodesFor.
		return n >= 0 && n < m.NodesFor(r+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	m := Lonestar()
	m.ByteScale = 256
	if got := m.Scale(1000); got != 256000 {
		t.Fatalf("Scale(1000) = %d", got)
	}
}

func TestMemTrackerPerRankShare(t *testing.T) {
	m := Lonestar() // 24 GiB / 12 ranks = 2 GiB per rank
	tr := NewMemTracker(m, 64)
	if got := tr.PerRank(); got != 2<<30 {
		t.Fatalf("PerRank = %d, want 2 GiB", got)
	}
	// Fewer ranks than cores: they share the node evenly.
	tr2 := NewMemTracker(m, 4)
	if got := tr2.PerRank(); got != 6<<30 {
		t.Fatalf("PerRank with 4 ranks = %d, want 6 GiB", got)
	}
}

func TestMemTrackerOOM(t *testing.T) {
	m := Lonestar()
	tr := NewMemTracker(m, 64)
	if err := tr.Alloc(0, 1<<30); err != nil {
		t.Fatalf("1 GiB alloc failed: %v", err)
	}
	err := tr.Alloc(0, 3<<30) // 1+3 GiB > 2 GiB share
	if err == nil {
		t.Fatal("expected OOM")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("error %v does not wrap ErrOutOfMemory", err)
	}
	// The failed allocation must not be charged.
	if got := tr.Used(0); got != 1<<30 {
		t.Fatalf("Used = %d after failed alloc, want 1 GiB", got)
	}
	// Another rank is unaffected.
	if err := tr.Alloc(1, 2<<30); err != nil {
		t.Fatalf("rank 1 alloc failed: %v", err)
	}
}

func TestMemTrackerFreeAndPeak(t *testing.T) {
	m := Lonestar()
	tr := NewMemTracker(m, 64)
	tr.Alloc(3, 100)
	tr.Alloc(3, 200)
	tr.Free(3, 150)
	if got := tr.Used(3); got != 150 {
		t.Fatalf("Used = %d, want 150", got)
	}
	if got := tr.Peak(3); got != 300 {
		t.Fatalf("Peak = %d, want 300", got)
	}
	tr.Free(3, 1000) // over-free clamps
	if got := tr.Used(3); got != 0 {
		t.Fatalf("Used = %d after over-free, want 0", got)
	}
	if got := tr.MaxPeak(); got != 300 {
		t.Fatalf("MaxPeak = %d, want 300", got)
	}
}

func TestMemTrackerDisabled(t *testing.T) {
	tr := Unlimited()
	if err := tr.Alloc(0, 1<<50); err != nil {
		t.Fatalf("unlimited tracker refused: %v", err)
	}
	if tr.PerRank() != 0 {
		t.Fatal("unlimited tracker should report 0 capacity")
	}
	m := Lonestar()
	m.MemPerNode = 0
	tr2 := NewMemTracker(m, 8)
	if err := tr2.Alloc(0, 1<<50); err != nil {
		t.Fatalf("zero-capacity machine should disable enforcement: %v", err)
	}
}

func TestMemTrackerNegativeAlloc(t *testing.T) {
	tr := Unlimited()
	if err := tr.Alloc(0, -1); err == nil {
		t.Fatal("negative alloc should error")
	}
}

func TestMemTrackerConcurrent(t *testing.T) {
	m := Lonestar()
	tr := NewMemTracker(m, 64)
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := tr.Alloc(r, 1<<20); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
			for i := 0; i < 100; i++ {
				tr.Free(r, 1<<20)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 16; r++ {
		if got := tr.Used(r); got != 0 {
			t.Fatalf("rank %d Used = %d, want 0", r, got)
		}
	}
}
