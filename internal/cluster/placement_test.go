package cluster

import "testing"

// TestNodeRankRangePartition checks that the node rank ranges tile the job
// exactly: every rank lands in the range of its own node and no other.
func TestNodeRankRangePartition(t *testing.T) {
	m := Lonestar()
	for _, cores := range []int{1, 2, 3, 5, 12} {
		m.CoresPerNode = cores
		for _, nprocs := range []int{1, 2, cores, cores + 1, 3*cores - 1, 4 * cores} {
			seen := make([]int, nprocs)
			for node := 0; node <= m.NodesFor(nprocs); node++ {
				lo, hi := m.NodeRankRange(node, nprocs)
				if lo > hi || lo < 0 || hi > nprocs {
					t.Fatalf("cores=%d nprocs=%d node %d: range [%d,%d)", cores, nprocs, node, lo, hi)
				}
				for r := lo; r < hi; r++ {
					seen[r]++
					if m.NodeOf(r) != node {
						t.Fatalf("cores=%d: rank %d in node %d's range but NodeOf=%d",
							cores, r, node, m.NodeOf(r))
					}
				}
			}
			for r, n := range seen {
				if n != 1 {
					t.Fatalf("cores=%d nprocs=%d: rank %d covered %d times", cores, nprocs, r, n)
				}
			}
		}
	}
}

// TestNodeLeaderDeterministicInRange checks that the leader election is a
// pure function of placement and key, always lands on the node it serves,
// and spreads distinct keys across the node's ranks.
func TestNodeLeaderDeterministicInRange(t *testing.T) {
	m := Lonestar()
	for _, cores := range []int{1, 2, 4, 12} {
		m.CoresPerNode = cores
		nprocs := 3*cores + 1 // last node partially filled
		for node := 0; node < m.NodesFor(nprocs); node++ {
			lo, hi := m.NodeRankRange(node, nprocs)
			hit := make(map[int]bool)
			for key := int64(-5); key < 40; key++ {
				leader := m.NodeLeader(node, nprocs, key)
				if leader < lo || leader >= hi {
					t.Fatalf("cores=%d node=%d key=%d: leader %d outside [%d,%d)",
						cores, node, key, leader, lo, hi)
				}
				if again := m.NodeLeader(node, nprocs, key); again != leader {
					t.Fatalf("cores=%d node=%d key=%d: leader %d then %d", cores, node, key, leader, again)
				}
				hit[leader] = true
			}
			if hi-lo > 1 && len(hit) != hi-lo {
				t.Fatalf("cores=%d node=%d: keys hit %d of %d ranks", cores, node, len(hit), hi-lo)
			}
		}
	}
}

// TestNodeLeaderSingleCore pins the degenerate machine: with one rank per
// node every rank leads its own node for every key.
func TestNodeLeaderSingleCore(t *testing.T) {
	m := Lonestar()
	m.CoresPerNode = 1
	for rank := 0; rank < 8; rank++ {
		for key := int64(0); key < 10; key++ {
			if got := m.NodeLeader(m.NodeOf(rank), 8, key); got != rank {
				t.Fatalf("rank %d key %d: leader %d", rank, key, got)
			}
		}
	}
}
