// Package cluster describes the simulated machine: node count, cores and
// memory per node, the mapping of MPI ranks onto nodes, and a per-node
// memory accountant that turns over-allocation into the same out-of-memory
// failure the paper observed for OCIO at the 48 GB dataset (Figs. 6-7).
//
// Because experiments at paper scale would not fit in a test process, the
// machine also carries a ByteScale factor: algorithms move real (smaller)
// buffers while time and memory accounting charge realBytes*ByteScale, so
// one code path serves both byte-exact correctness tests and paper-scale
// performance modelling.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/netsim"
)

// Machine describes the simulated cluster.
type Machine struct {
	// Name labels the configuration in reports.
	Name string
	// Nodes is the number of compute nodes available.
	Nodes int
	// CoresPerNode is the number of MPI ranks placed per node.
	CoresPerNode int
	// MemPerNode is the simulated memory capacity of one node, in bytes.
	MemPerNode int64
	// ByteScale multiplies real buffer sizes into simulated sizes for the
	// time and memory models. 1 means "what you allocate is what you pay".
	ByteScale int64
	// Net holds the interconnect parameters.
	Net netsim.Config
}

// Lonestar returns the paper's testbed: TACC Lonestar — 1,888 nodes, two
// 6-core processors per node, 24 GB memory per node, QDR InfiniBand fat
// tree (§V.A).
func Lonestar() Machine {
	return Machine{
		Name:         "lonestar",
		Nodes:        1888,
		CoresPerNode: 12,
		MemPerNode:   24 << 30,
		ByteScale:    1,
		Net:          netsim.DefaultConfig(),
	}
}

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	switch {
	case m.Nodes < 1:
		return fmt.Errorf("cluster: %d nodes", m.Nodes)
	case m.CoresPerNode < 1:
		return fmt.Errorf("cluster: %d cores per node", m.CoresPerNode)
	case m.MemPerNode < 0:
		return fmt.Errorf("cluster: negative memory per node")
	case m.ByteScale < 1:
		return fmt.Errorf("cluster: ByteScale %d < 1", m.ByteScale)
	}
	return nil
}

// Scale converts a real byte count into simulated bytes.
func (m Machine) Scale(realBytes int64) int64 { return realBytes * m.ByteScale }

// PerRankMemory reports the simulated memory share one rank of an
// nprocs-rank job receives — the same even division NewMemTracker enforces
// (0 when the machine has no memory limit). Memory-pressure policies size
// their budgets against it: a spill threshold chosen at or below this share
// keeps a rank's resident segments inside what the accountant will grant.
func (m Machine) PerRankMemory(nprocs int) int64 {
	if m.MemPerNode == 0 {
		return 0
	}
	ranksPerNode := m.CoresPerNode
	if nprocs < ranksPerNode {
		ranksPerNode = nprocs
	}
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	return m.MemPerNode / int64(ranksPerNode)
}

// NodesFor reports how many nodes a job of nprocs ranks occupies under
// block placement (ranks 0..CoresPerNode-1 on node 0, and so on).
func (m Machine) NodesFor(nprocs int) int {
	return (nprocs + m.CoresPerNode - 1) / m.CoresPerNode
}

// NodeOf maps a rank to its node under block placement.
func (m Machine) NodeOf(rank int) int { return rank / m.CoresPerNode }

// NodeRankRange reports the half-open rank interval [lo, hi) placed on node
// for a job of nprocs ranks: the inverse of NodeOf restricted to the job.
// The last node of a job may be partially filled.
func (m Machine) NodeRankRange(node, nprocs int) (lo, hi int) {
	lo = node * m.CoresPerNode
	hi = lo + m.CoresPerNode
	if lo > nprocs {
		lo = nprocs
	}
	if hi > nprocs {
		hi = nprocs
	}
	return lo, hi
}

// NodeLeader elects the rank on node that acts on the node's behalf for the
// entity identified by key (for example a destination segment index). The
// election is a pure function of the placement and the key, so every rank
// computes the same leader without communicating, and spreading keys across
// the node's ranks keeps one rank from serializing all combined traffic.
func (m Machine) NodeLeader(node, nprocs int, key int64) int {
	lo, hi := m.NodeRankRange(node, nprocs)
	n := hi - lo
	if n <= 1 {
		return lo
	}
	return lo + int(((key%int64(n))+int64(n))%int64(n))
}

// SpreadServers picks which ranks of an nprocs-rank job become dedicated
// I/O delegation servers, spreading them across the job's nodes so server
// traffic does not concentrate on one node's link. Server j prefers the
// highest still-unused rank of node j*nodes/servers (the top of a node is
// the rank least likely to lead node-local collectives), falling back to
// the highest unused rank anywhere when that node is exhausted. The result
// is sorted ascending; rank 0 is never chosen while any other rank is
// free, so the job keeps a conventional root. The election is a pure
// function of (placement, counts): every rank computes the same set
// without communicating.
func (m Machine) SpreadServers(nprocs, servers int) []int {
	if servers <= 0 || servers >= nprocs {
		return nil
	}
	nodes := m.NodesFor(nprocs)
	used := make(map[int]bool, servers)
	picks := make([]int, 0, servers)
	for j := 0; j < servers; j++ {
		node := j * nodes / servers
		lo, hi := m.NodeRankRange(node, nprocs)
		pick := -1
		for r := hi - 1; r >= lo; r-- {
			if !used[r] && r != 0 {
				pick = r
				break
			}
		}
		if pick < 0 {
			for r := nprocs - 1; r > 0; r-- {
				if !used[r] {
					pick = r
					break
				}
			}
		}
		used[pick] = true
		picks = append(picks, pick)
	}
	sort.Ints(picks)
	return picks
}

// ErrOutOfMemory is returned (wrapped) when a simulated allocation exceeds a
// node's capacity. Match it with errors.Is.
var ErrOutOfMemory = errors.New("simulated out of memory")

// MemTracker charges simulated allocations against per-node capacity.
// Capacity is divided evenly among the ranks of a node, mirroring how batch
// systems on the paper's testbed partition memory per core. A zero capacity
// disables enforcement (useful in unit tests of other layers).
type MemTracker struct {
	mu       sync.Mutex
	perRank  int64
	used     map[int]int64 // rank -> simulated bytes in use
	peak     map[int]int64
	disabled bool
	faults   *faults.Injector
}

// NewMemTracker builds a tracker for a job of nprocs ranks on machine m.
func NewMemTracker(m Machine, nprocs int) *MemTracker {
	t := &MemTracker{
		used: make(map[int]int64, nprocs),
		peak: make(map[int]int64, nprocs),
	}
	if m.MemPerNode == 0 {
		t.disabled = true
		return t
	}
	ranksPerNode := m.CoresPerNode
	if nprocs < ranksPerNode {
		ranksPerNode = nprocs
	}
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	t.perRank = m.MemPerNode / int64(ranksPerNode)
	return t
}

// Unlimited returns a tracker that never refuses an allocation.
func Unlimited() *MemTracker {
	return &MemTracker{
		used:     make(map[int]int64),
		peak:     make(map[int]int64),
		disabled: true,
	}
}

// PerRank reports the simulated capacity available to each rank
// (0 when enforcement is disabled).
func (t *MemTracker) PerRank() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.disabled {
		return 0
	}
	return t.perRank
}

// SetFaults attaches a fault injector: allocations can then fail with
// transient pressure (faults.SiteMemAlloc) — a neighbour's page-cache
// spike or balloon that clears moments later. Transient failures wrap
// faults.ErrInjected, not ErrOutOfMemory, so retry policies absorb them
// while genuine capacity exhaustion stays permanent.
func (t *MemTracker) SetFaults(in *faults.Injector) { t.faults = in }

// Alloc charges simBytes of simulated memory to rank. It fails with an
// error wrapping ErrOutOfMemory when the rank's share would be exceeded,
// or with a transient injected error under fault injection.
func (t *MemTracker) Alloc(rank int, simBytes int64) error {
	if simBytes < 0 {
		return fmt.Errorf("cluster: negative allocation %d", simBytes)
	}
	if t.faults.ShouldNext(faults.SiteMemAlloc, int64(rank), 0) {
		return fmt.Errorf("rank %d: transient allocation pressure: %w",
			rank, t.faults.Fault(faults.SiteMemAlloc, "rank=%d sim=%dB", rank, simBytes))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next := t.used[rank] + simBytes
	if !t.disabled && next > t.perRank {
		return fmt.Errorf("rank %d: allocating %d B on top of %d B exceeds %d B per-rank capacity: %w",
			rank, simBytes, t.used[rank], t.perRank, ErrOutOfMemory)
	}
	t.used[rank] = next
	if next > t.peak[rank] {
		t.peak[rank] = next
	}
	return nil
}

// Free returns simBytes of simulated memory from rank. Freeing more than is
// in use clamps to zero.
func (t *MemTracker) Free(rank int, simBytes int64) {
	if simBytes < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.used[rank] -= simBytes
	if t.used[rank] < 0 {
		t.used[rank] = 0
	}
}

// Used reports the rank's current simulated allocation.
func (t *MemTracker) Used(rank int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used[rank]
}

// Peak reports the rank's high-water mark.
func (t *MemTracker) Peak(rank int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak[rank]
}

// MaxPeak reports the largest per-rank high-water mark across all ranks.
func (t *MemTracker) MaxPeak() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var m int64
	for _, v := range t.peak {
		if v > m {
			m = v
		}
	}
	return m
}
