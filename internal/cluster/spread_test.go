package cluster

import (
	"sort"
	"testing"
)

func TestSpreadServers(t *testing.T) {
	m := Machine{Nodes: 8, CoresPerNode: 4}
	cases := []struct {
		name            string
		nprocs, servers int
		want            []int
	}{
		{"none", 8, 0, nil},
		{"all-servers degenerates", 4, 4, nil},
		{"one server tops node 0", 8, 1, []int{3}},
		{"two servers two nodes", 8, 2, []int{3, 7}},
		{"four servers four nodes", 16, 4, []int{3, 7, 11, 15}},
		// More servers than nodes: node 0 hosts two, taking its top two ranks.
		{"servers share a node", 4, 2, []int{2, 3}},
		// Single-rank nodes with every non-root rank needed: fallback fills
		// from the highest free rank, never electing rank 0.
		{"fallback spares rank zero", 3, 2, []int{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := m.SpreadServers(tc.nprocs, tc.servers)
			if len(got) != len(tc.want) {
				t.Fatalf("SpreadServers(%d, %d) = %v, want %v", tc.nprocs, tc.servers, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("SpreadServers(%d, %d) = %v, want %v", tc.nprocs, tc.servers, got, tc.want)
				}
			}
		})
	}
}

// TestSpreadServersProperty checks the invariants every placement must
// hold: sorted, unique, in range, rank 0 spared, and node coverage at
// least min(servers, job nodes) so server traffic spreads across links.
func TestSpreadServersProperty(t *testing.T) {
	m := Machine{Nodes: 64, CoresPerNode: 12}
	for nprocs := 2; nprocs <= 96; nprocs += 7 {
		for servers := 1; servers < nprocs; servers++ {
			got := m.SpreadServers(nprocs, servers)
			if len(got) != servers {
				t.Fatalf("nprocs=%d servers=%d: %d picks", nprocs, servers, len(got))
			}
			if !sort.IntsAreSorted(got) {
				t.Fatalf("nprocs=%d servers=%d: unsorted %v", nprocs, servers, got)
			}
			seen := map[int]bool{}
			nodes := map[int]bool{}
			for _, r := range got {
				if r <= 0 || r >= nprocs {
					t.Fatalf("nprocs=%d servers=%d: rank %d out of range", nprocs, servers, r)
				}
				if seen[r] {
					t.Fatalf("nprocs=%d servers=%d: duplicate rank %d", nprocs, servers, r)
				}
				seen[r] = true
				nodes[m.NodeOf(r)] = true
			}
			jobNodes := m.NodesFor(nprocs)
			wantNodes := servers
			if jobNodes < wantNodes {
				wantNodes = jobNodes
			}
			// Sparing rank 0 can fold one server back onto another node.
			if len(nodes) < wantNodes-1 {
				t.Fatalf("nprocs=%d servers=%d: only %d nodes covered, want >=%d (%v)",
					nprocs, servers, len(nodes), wantNodes-1, got)
			}
		}
	}
}
