package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock at %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(Second)
	want := Time(Second + 5*Millisecond)
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(10)
	c.Advance(-100)
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %v after negative advance, want 10", got)
	}
}

func TestClockAdvanceToNeverMovesBackwards(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(100)
	c.AdvanceTo(50)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %v, want 100", got)
	}
}

func TestClockAdvanceToMonotoneProperty(t *testing.T) {
	f := func(steps []int64) bool {
		c := NewClock()
		prev := c.Now()
		for _, s := range steps {
			c.AdvanceTo(Time(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeDurationArithmetic(t *testing.T) {
	t0 := Time(0).Add(3 * Second)
	if t0.Sub(Time(Second)) != 2*Second {
		t.Fatalf("Sub wrong: %v", t0.Sub(Time(Second)))
	}
	if Max(Time(1), Time(2)) != 2 || Max(Time(5), Time(2)) != 5 {
		t.Fatal("Max wrong")
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
}

func TestFromToReal(t *testing.T) {
	d := FromReal(1500 * time.Millisecond)
	if d != 1500*Millisecond {
		t.Fatalf("FromReal = %v", d)
	}
	if d.ToReal() != 1500*time.Millisecond {
		t.Fatalf("ToReal = %v", d.ToReal())
	}
}

func TestBytesDuration(t *testing.T) {
	// 1 GiB/s moving 1 GiB should take 1 second.
	const gib = 1 << 30
	d := BytesDuration(gib, gib)
	if d != Second {
		t.Fatalf("BytesDuration = %v, want 1s", d)
	}
	if BytesDuration(123, 0) != 0 {
		t.Fatal("zero bandwidth should cost nothing")
	}
	if BytesDuration(-5, gib) != 0 {
		t.Fatal("negative sizes should cost nothing")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("ost0")
	// Two requests arriving at the same instant must be served back to back.
	s1, e1 := r.Acquire(0, 10)
	s2, e2 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire [%v,%v]", s1, e1)
	}
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire [%v,%v], want [10,20]", s2, e2)
	}
	// A later arrival after the queue drained starts immediately.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire [%v,%v], want [100,105]", s3, e3)
	}
}

func TestResourceStatsAndReset(t *testing.T) {
	r := NewResource("nic")
	r.Acquire(0, 7)
	r.Acquire(0, 3)
	busy, n := r.Stats()
	if busy != 10 || n != 2 {
		t.Fatalf("Stats = (%v,%v), want (10,2)", busy, n)
	}
	r.Reset()
	busy, n = r.Stats()
	if busy != 0 || n != 0 {
		t.Fatalf("after Reset Stats = (%v,%v)", busy, n)
	}
	if s, _ := r.Acquire(0, 1); s != 0 {
		t.Fatalf("after Reset queue not empty: start=%v", s)
	}
}

func TestResourceConcurrentAcquireNoOverlap(t *testing.T) {
	r := NewResource("shared")
	const workers = 32
	const per = 8
	type iv struct{ s, e Time }
	out := make(chan iv, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s, e := r.Acquire(0, 3)
				out <- iv{s, e}
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := map[Time]bool{}
	for v := range out {
		if v.e-v.s != 3 {
			t.Fatalf("window length %v, want 3", v.e-v.s)
		}
		if seen[v.s] {
			t.Fatalf("two windows start at %v: overlap", v.s)
		}
		seen[v.s] = true
	}
	busy, n := r.Stats()
	if n != workers*per || busy != Duration(3*workers*per) {
		t.Fatalf("Stats = (%v,%v)", busy, n)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Inc() != 1 || g.Inc() != 2 {
		t.Fatal("Inc sequence wrong")
	}
	g.Dec()
	if g.Level() != 1 {
		t.Fatalf("Level = %d, want 1", g.Level())
	}
	if g.Peak() != 2 {
		t.Fatalf("Peak = %d, want 2", g.Peak())
	}
	g.Dec()
	g.Dec() // extra Dec must not go negative
	if g.Level() != 0 {
		t.Fatalf("Level = %d, want 0", g.Level())
	}
	g.Reset()
	if g.Peak() != 0 {
		t.Fatal("Reset did not clear peak")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Inc()
		}()
	}
	wg.Wait()
	if g.Level() != 100 || g.Peak() != 100 {
		t.Fatalf("Level=%d Peak=%d, want 100/100", g.Level(), g.Peak())
	}
}
