// Package simtime provides the virtual-time foundation of the simulator.
//
// Every MPI rank owns a Clock that advances only when the rank performs
// work: computation, communication, or file I/O. Shared hardware (NICs,
// fabric links, storage targets) is modelled as Resource queues: a rank
// asking for service at virtual time t is served no earlier than the moment
// the resource becomes free, which is how contention turns into elapsed
// virtual time. Communication between ranks carries timestamps, so causality
// propagates with the data (LogGOPSim-style conservative simulation).
package simtime

import (
	"fmt"
	"sync"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately a
// distinct type from time.Duration so that real and simulated time cannot be
// mixed by accident; use FromReal/ToReal at the boundary.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromReal converts a time.Duration into a simulated Duration.
func FromReal(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// ToReal converts a simulated Duration into a time.Duration.
func (d Duration) ToReal() time.Duration { return time.Duration(d) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using time.Duration's human-readable form.
func (d Duration) String() string { return time.Duration(d).String() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the instant as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as an offset from simulation start.
func (t Time) String() string { return fmt.Sprintf("+%v", time.Duration(t)) }

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// BytesDuration returns the time needed to move n bytes at bw bytes/second.
// A non-positive bandwidth means "infinitely fast" and costs nothing.
func BytesDuration(n int64, bw float64) Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bw * float64(Second))
}

// Clock is one rank's private virtual clock. Clocks only move forward.
// A Clock is not safe for concurrent use; each rank goroutine owns its own.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the simulation start.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: time never
// runs backwards, and charging a zero-or-negative cost is a no-op.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the clock's future.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Resource is a shared serial server with a FIFO-in-virtual-time queue:
// think of one NIC, one storage target, or one metadata server. Acquire
// reserves the resource for a duration, returning when the work starts and
// ends. Resources are safe for concurrent use by many rank goroutines.
type Resource struct {
	mu       sync.Mutex
	name     string
	nextFree Time
	busy     Duration // total busy time, for utilization reporting
	requests int64
}

// NewResource creates a named serial resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur starting no earlier than now.
// It returns the start and end instants of the reserved service window.
func (r *Resource) Acquire(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = Max(now, r.nextFree)
	end = start.Add(dur)
	r.nextFree = end
	r.busy += dur
	r.requests++
	return start, end
}

// Stats reports the accumulated busy time and request count.
func (r *Resource) Stats() (busy Duration, requests int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.requests
}

// Reset clears the resource queue and statistics, for reuse across runs.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextFree = 0
	r.busy = 0
	r.requests = 0
}

// Gauge counts concurrently active operations (e.g. in-flight network
// flows). It is used to scale contention penalties. Safe for concurrent use.
type Gauge struct {
	mu   sync.Mutex
	cur  int
	peak int
}

// Inc registers one more active operation and returns the new level.
func (g *Gauge) Inc() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur++
	if g.cur > g.peak {
		g.peak = g.cur
	}
	return g.cur
}

// Dec unregisters one active operation.
func (g *Gauge) Dec() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur > 0 {
		g.cur--
	}
}

// Level reports the current number of active operations.
func (g *Gauge) Level() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Peak reports the maximum concurrency seen since the last Reset.
func (g *Gauge) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur = 0
	g.peak = 0
}
