package pfs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/tcio/tcio/internal/simtime"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.StripeSize = 1 << 10 // small stripes so tests cross boundaries
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.OSTCount != 30 {
		t.Fatalf("OSTCount = %d, want 30", cfg.OSTCount)
	}
	if cfg.StripeSize != 1<<20 {
		t.Fatalf("StripeSize = %d, want 1 MiB", cfg.StripeSize)
	}
	if cfg.StripeCount != 1 {
		t.Fatalf("StripeCount = %d, want 1 (paper default: single OST per file)", cfg.StripeCount)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.OSTCount = 0 },
		func(c *Config) { c.StripeSize = 0 },
		func(c *Config) { c.StripeCount = 0 },
		func(c *Config) { c.StripeCount = c.OSTCount + 1 },
		func(c *Config) { c.ByteScale = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("data")
	payload := []byte("hello, lustre world")
	if _, err := f.WriteAt(0, 100, payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(0, 100, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}
	if f.Size() != 100+int64(len(payload)) {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestSparseReadsZeroFill(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("sparse")
	f.WriteAt(0, 10, []byte{1, 2, 3}, 0)
	got := make([]byte, 6)
	f.ReadAt(0, 8, got, 0)
	want := []byte{0, 0, 1, 2, 3, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %v, want %v", got, want)
	}
}

func TestWriteAcrossPageBoundary(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("pages")
	payload := make([]byte, 3*pageSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	off := int64(pageSize - 100)
	f.WriteAt(0, off, payload, 0)
	got := make([]byte, len(payload))
	f.ReadAt(0, off, got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("page-spanning write did not round-trip")
	}
}

func TestSharedOpenSameObject(t *testing.T) {
	fs := New(testConfig())
	a := fs.Open("shared")
	b := fs.Open("shared")
	if a != b {
		t.Fatal("Open returned different objects for the same name")
	}
	a.WriteAt(0, 0, []byte{42}, 0)
	got := make([]byte, 1)
	b.ReadAt(1, 0, got, 0)
	if got[0] != 42 {
		t.Fatal("data written via first handle not visible via second")
	}
}

func TestRemove(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("gone")
	f.WriteAt(0, 0, []byte{1}, 0)
	fs.Remove("gone")
	f2 := fs.Open("gone")
	if f2 == f {
		t.Fatal("Remove did not detach the file")
	}
	if f2.Size() != 0 {
		t.Fatal("recreated file not empty")
	}
}

func TestRequestOverheadCharged(t *testing.T) {
	cfg := testConfig()
	fs := New(cfg)
	f := fs.Open("t")
	end, _ := f.WriteAt(0, 0, []byte{1}, 0)
	if end < simtime.Time(cfg.RequestOverhead) {
		t.Fatalf("1-byte write completed at %v, cheaper than the RPC overhead %v", end, cfg.RequestOverhead)
	}
}

func TestAggregatedWriteCheaperThanPieces(t *testing.T) {
	cfg := testConfig()
	const total = 64 << 10
	// One big request.
	fsA := New(cfg)
	fa := fsA.Open("a")
	endA, _ := fa.WriteAt(0, 0, make([]byte, total), 0)

	// Same bytes in 256-byte pieces, issued back to back by one client.
	fsB := New(cfg)
	fb := fsB.Open("b")
	var now simtime.Time
	for off := int64(0); off < total; off += 256 {
		now, _ = fb.WriteAt(0, off, make([]byte, 256), now)
	}
	if now < 10*endA {
		t.Fatalf("per-piece writes (%v) should be at least 10x the aggregated write (%v)", now, endA)
	}
	if !bytes.Equal(fa.Snapshot(), fb.Snapshot()) {
		t.Fatal("contents differ")
	}
}

func TestLockPingPong(t *testing.T) {
	cfg := testConfig()
	fs := New(cfg)
	f := fs.Open("locks")
	// Two clients alternately writing into the same stripe.
	var now simtime.Time
	for i := 0; i < 10; i++ {
		now, _ = f.WriteAt(i%2, int64(i), []byte{byte(i)}, now)
	}
	if got := fs.Stats().LockConflicts; got != 9 {
		t.Fatalf("LockConflicts = %d, want 9 (every ownership change after the first)", got)
	}

	// Same pattern from a single client: no conflicts.
	fs2 := New(cfg)
	f2 := fs2.Open("locks2")
	now = 0
	for i := 0; i < 10; i++ {
		now, _ = f2.WriteAt(0, int64(i), []byte{byte(i)}, now)
	}
	if got := fs2.Stats().LockConflicts; got != 0 {
		t.Fatalf("single client LockConflicts = %d, want 0", got)
	}
}

func TestAlignedWritersAvoidConflicts(t *testing.T) {
	cfg := testConfig()
	fs := New(cfg)
	f := fs.Open("aligned")
	// Each client owns distinct stripes: no revocations.
	var now simtime.Time
	for c := 0; c < 4; c++ {
		off := int64(c) * cfg.StripeSize
		now, _ = f.WriteAt(c, off, make([]byte, cfg.StripeSize), now)
	}
	if got := fs.Stats().LockConflicts; got != 0 {
		t.Fatalf("stripe-aligned writers conflicted %d times", got)
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("reads")
	f.WriteAt(0, 0, make([]byte, 100), 0)
	for c := 0; c < 5; c++ {
		f.ReadAt(c, 0, make([]byte, 100), 0)
	}
	if got := fs.Stats().LockConflicts; got != 0 {
		t.Fatalf("reads caused %d lock conflicts", got)
	}
}

func TestByteScaleInflatesCost(t *testing.T) {
	cfg := testConfig()
	fs1 := New(cfg)
	end1, _ := fs1.Open("x").WriteAt(0, 0, make([]byte, 1<<10), 0)

	cfg.ByteScale = 1 << 20
	fs2 := New(cfg)
	end2, _ := fs2.Open("x").WriteAt(0, 0, make([]byte, 1<<10), 0)
	if end2 <= end1 {
		t.Fatalf("scaled write (%v) should cost more than unscaled (%v)", end2, end1)
	}
}

func TestStripingSpreadsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.ByteScale = 1 << 20 // make bandwidth, not RPC overhead, dominate
	cfg.StripeCount = 4
	fs := New(cfg)
	f := fs.Open("striped")
	// A request spanning 4 stripes is served by 4 OSTs in parallel, so it
	// finishes faster than on a single OST.
	data := make([]byte, 4*cfg.StripeSize)
	endStriped, _ := f.WriteAt(0, 0, data, 0)

	cfg1 := cfg
	cfg1.StripeCount = 1
	fsB := New(cfg1)
	endSingle, _ := fsB.Open("single").WriteAt(0, 0, data, 0)
	if endStriped >= endSingle {
		t.Fatalf("striped write %v not faster than single-OST %v", endStriped, endSingle)
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("neg")
	if _, err := f.WriteAt(0, -1, []byte{1}, 0); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(0, -1, make([]byte, 1), 0); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestStatsAndReset(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("s")
	f.WriteAt(0, 0, make([]byte, 10), 0)
	f.ReadAt(0, 0, make([]byte, 4), 0)
	st := fs.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 10 || st.BytesRead != 4 {
		t.Fatalf("stats = %+v", st)
	}
	fs.Reset()
	if st := fs.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	// Contents survive a reset.
	got := make([]byte, 10)
	f.ReadAt(0, 0, got, 0)
	if got[0] != 0 && f.Size() != 10 {
		t.Fatal("contents lost on reset")
	}
}

func TestTruncate(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("t")
	f.WriteAt(0, 0, []byte{9, 9}, 0)
	f.Truncate()
	if f.Size() != 0 {
		t.Fatal("size after truncate")
	}
	got := make([]byte, 2)
	f.ReadAt(0, 0, got, 0)
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("contents survive truncate")
	}
	if len(f.LockOwners()) != 0 {
		t.Fatal("locks survive truncate")
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	fs := New(testConfig())
	f := fs.Open("conc")
	const n = 16
	const chunk = 1 << 10
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(c + 1)}, chunk)
			if _, err := f.WriteAt(c, int64(c)*chunk, data, 0); err != nil {
				t.Errorf("writer %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	snap := f.Snapshot()
	if len(snap) != n*chunk {
		t.Fatalf("file size %d, want %d", len(snap), n*chunk)
	}
	for c := 0; c < n; c++ {
		for i := 0; i < chunk; i++ {
			if snap[c*chunk+i] != byte(c+1) {
				t.Fatalf("byte %d of chunk %d = %d", i, c, snap[c*chunk+i])
			}
		}
	}
}

// Property: random disjoint writes then a full read reproduce exactly the
// reference contents maintained in a plain byte slice.
func TestRandomWritesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New(testConfig())
		file := fs.Open("prop")
		const size = 10 << 10
		ref := make([]byte, size)
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(size - 1))
			n := rng.Intn(int(int64(size)-off)) + 1
			data := make([]byte, n)
			rng.Read(data)
			copy(ref[off:], data)
			if _, err := file.WriteAt(rng.Intn(4), off, data, 0); err != nil {
				return false
			}
		}
		got := make([]byte, size)
		file.ReadAt(0, 0, got, 0)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
