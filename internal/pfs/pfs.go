// Package pfs simulates the parallel file system of the paper's testbed:
// Lustre with 30 object storage targets (OSTs), a 1 MB stripe size, and —
// per the paper's §V.A — the default layout where each file lives on a
// single OST.
//
// Two cost mechanisms matter for the experiments:
//
//   - Per-request overhead: every read/write RPC pays a fixed cost before
//     any bytes move. Aggregated 1 MB accesses amortize it; vanilla MPI-IO's
//     tiny per-piece accesses do not — that difference is the ~100× ART gap
//     of Figs. 9-10.
//   - Extent locks: Lustre grants stripe-granular locks to clients. When a
//     stripe's lock moves between clients, a revocation round-trip is
//     charged. Interleaved small writes from many clients ping-pong locks;
//     segment-aligned accesses (TCIO level-2, OCIO file domains) do not.
//
// File contents are held in a real sparse byte store, so every experiment
// remains byte-for-byte verifiable. Service time is charged on simulated
// bytes (real bytes × the machine's ByteScale), letting small test buffers
// stand in for paper-scale datasets.
package pfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/simtime"
)

// Config describes the file system hardware and protocol costs.
type Config struct {
	// OSTCount is the number of object storage targets (paper: 30).
	OSTCount int
	// StripeSize is the stripe and lock granularity in real bytes
	// (paper: 1 MB simulated; divide by ByteScale for scaled runs).
	StripeSize int64
	// StripeCount is the number of OSTs a new file is striped over
	// (paper default: 1).
	StripeCount int
	// WriteBandwidth is one OST's write service rate, simulated bytes/sec.
	WriteBandwidth float64
	// ReadBandwidth is one OST's read service rate, simulated bytes/sec
	// (higher: server-side caching).
	ReadBandwidth float64
	// RequestOverhead is the fixed per-RPC cost paid by the client
	// (round-trip latency, request marshalling).
	RequestOverhead simtime.Duration
	// ServerOverheadWrite is the per-write-request CPU cost on the object
	// server, charged into the OST's service queue: many small requests
	// consume server capacity that large aggregated requests do not.
	ServerOverheadWrite simtime.Duration
	// ServerOverheadRead is the per-read-request server cost. It is much
	// smaller than the write cost: Lustre's server-side readahead and
	// caching make repeated strided reads cheap.
	ServerOverheadRead simtime.Duration
	// LockRevocation is charged when a stripe's extent lock must be
	// revoked from another client.
	LockRevocation simtime.Duration
	// ReadAhead is the client-side readahead window in real bytes
	// (0 disables). A read falling entirely inside the window fetched by
	// the client's previous read on the same file costs only CacheHit —
	// Lustre clients prefetch aggressively on sequential access.
	ReadAhead int64
	// CacheHit is the cost of serving a read from the client cache.
	CacheHit simtime.Duration
	// ByteScale converts real bytes into simulated bytes for costing.
	ByteScale int64

	// Faults, when non-nil, injects OST failures: transient request errors
	// (faults.SiteOSTWrite / SiteOSTRead), slow-service multipliers
	// (SiteOSTSlow), and lock-revocation storms (SiteLockStorm).
	Faults *faults.Injector
	// FaultTimeout is the extra virtual time a request burns before its
	// injected failure is detected (the client's RPC timeout). 0 means
	// 2 ms.
	FaultTimeout simtime.Duration
}

// DefaultConfig returns a configuration calibrated to the paper's Lustre
// deployment (1 PB, 30 OSTs, 1 MB stripes, single-OST files).
func DefaultConfig() Config {
	return Config{
		OSTCount:            30,
		StripeSize:          1 << 20,
		StripeCount:         1,
		WriteBandwidth:      1.1e9,
		ReadBandwidth:       7.5e9,
		RequestOverhead:     400 * simtime.Microsecond,
		ServerOverheadWrite: 600 * simtime.Microsecond,
		ServerOverheadRead:  50 * simtime.Microsecond,
		LockRevocation:      1500 * simtime.Microsecond,
		ReadAhead:           1 << 20,
		CacheHit:            30 * simtime.Microsecond,
		ByteScale:           1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.OSTCount < 1:
		return fmt.Errorf("pfs: OSTCount %d", c.OSTCount)
	case c.StripeSize < 1:
		return fmt.Errorf("pfs: StripeSize %d", c.StripeSize)
	case c.StripeCount < 1 || c.StripeCount > c.OSTCount:
		return fmt.Errorf("pfs: StripeCount %d with %d OSTs", c.StripeCount, c.OSTCount)
	case c.ByteScale < 1:
		return fmt.Errorf("pfs: ByteScale %d", c.ByteScale)
	}
	return nil
}

// Stats aggregates file system activity.
type Stats struct {
	Reads         int64
	Writes        int64
	BytesRead     int64 // real bytes
	BytesWritten  int64 // real bytes
	LockConflicts int64
	CacheHits     int64

	// Chaos counters (all zero without an injector).
	FaultsInjected int64 // requests failed with a transient OST error
	Retries        int64 // request retries performed through the Retry APIs
	SlowServices   int64 // requests served under an injected slowdown
	LockStorms     int64 // revocations amplified into storms
}

// FileSystem is the shared simulated file system.
type FileSystem struct {
	cfg  Config
	osts []*simtime.Resource

	mu      sync.Mutex
	files   map[string]*File
	nextOST int
	// oplog is guarded by mu; oplogOn is its lock-free armed check, so the
	// store hot path pays one atomic load when crash logging is off.
	oplog   *Oplog
	oplogOn atomic.Bool

	reads         atomic.Int64
	writes        atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	lockConflicts atomic.Int64
	cacheHits     atomic.Int64

	faultsInjected atomic.Int64
	retries        atomic.Int64
	slowServices   atomic.Int64
	lockStorms     atomic.Int64
}

// New creates a file system. It panics on an invalid configuration, which
// is always a programming error in experiment setup.
func New(cfg Config) *FileSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fs := &FileSystem{cfg: cfg, files: make(map[string]*File)}
	fs.osts = make([]*simtime.Resource, cfg.OSTCount)
	for i := range fs.osts {
		fs.osts[i] = simtime.NewResource(fmt.Sprintf("ost%d", i))
	}
	return fs
}

// Config returns the file system parameters.
func (fs *FileSystem) Config() Config { return fs.cfg }

// ErrClosed is returned for operations on a closed or deleted file.
var ErrClosed = errors.New("pfs: file closed")

// Open returns the named file, creating it if needed. Files are shared:
// all callers opening the same name operate on the same object, as MPI
// processes opening a shared file do.
func (fs *FileSystem) Open(name string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f
	}
	f := &File{
		fs:        fs,
		name:      name,
		firstOST:  fs.nextOST % fs.cfg.OSTCount,
		pages:     make(map[int64][]byte),
		lockOwner: make(map[int64]int),
		raWindow:  make(map[int]extent.Extent),
	}
	fs.nextOST += fs.cfg.StripeCount
	fs.files[name] = f
	if fs.oplog != nil {
		fs.oplog.append(OpRecord{Kind: OpOpen, Name: name, FirstOST: f.firstOST})
	}
	return f
}

// Remove deletes the named file.
func (fs *FileSystem) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// Stats returns a snapshot of the accumulated counters.
func (fs *FileSystem) Stats() Stats {
	return Stats{
		Reads:          fs.reads.Load(),
		Writes:         fs.writes.Load(),
		BytesRead:      fs.bytesRead.Load(),
		BytesWritten:   fs.bytesWritten.Load(),
		LockConflicts:  fs.lockConflicts.Load(),
		CacheHits:      fs.cacheHits.Load(),
		FaultsInjected: fs.faultsInjected.Load(),
		Retries:        fs.retries.Load(),
		SlowServices:   fs.slowServices.Load(),
		LockStorms:     fs.lockStorms.Load(),
	}
}

// Reset clears counters and OST queues (file contents are kept).
func (fs *FileSystem) Reset() {
	fs.reads.Store(0)
	fs.writes.Store(0)
	fs.bytesRead.Store(0)
	fs.bytesWritten.Store(0)
	fs.lockConflicts.Store(0)
	fs.cacheHits.Store(0)
	fs.faultsInjected.Store(0)
	fs.retries.Store(0)
	fs.slowServices.Store(0)
	fs.lockStorms.Store(0)
	for _, r := range fs.osts {
		r.Reset()
	}
}

// faultTimeout is the configured (or default) injected-failure RPC timeout.
func (fs *FileSystem) faultTimeout() simtime.Duration {
	if fs.cfg.FaultTimeout > 0 {
		return fs.cfg.FaultTimeout
	}
	return 2 * simtime.Millisecond
}

// pageSize is the granularity of the sparse backing store (real bytes).
const pageSize = 64 << 10

// File is one shared file. Methods are safe for concurrent use.
type File struct {
	fs       *FileSystem
	name     string
	firstOST int

	mu        sync.Mutex
	pages     map[int64][]byte
	size      int64
	lockOwner map[int64]int         // stripe index -> client (node) holding its lock
	raWindow  map[int]extent.Extent // reader (process) -> readahead window
}

// Name reports the file's name.
func (f *File) Name() string { return f.name }

// Size reports the file's current length in real bytes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// ostIndex maps a stripe index to the OST serving it.
func (f *File) ostIndex(stripe int64) int {
	return (f.firstOST + int(stripe%int64(f.fs.cfg.StripeCount))) % f.fs.cfg.OSTCount
}

// ostFor maps a stripe index to the OST resource serving it.
func (f *File) ostFor(stripe int64) *simtime.Resource {
	return f.fs.osts[f.ostIndex(stripe)]
}

// OSTOf reports which OST serves the byte at the given offset. The storage
// layer groups requests by this index so independent targets can be driven
// by parallel workers.
func (f *File) OSTOf(off int64) int {
	return f.ostIndex(off / f.fs.cfg.StripeSize)
}

// readAheadHit reports whether the reader's access [off, off+n) is covered
// by its readahead window, and advances the window: a miss prefetches
// [off, off+n+ReadAhead). The window is keyed per reading process (like
// POSIX per-descriptor readahead), not per node: a process's hit pattern
// then depends only on its own sequential access history, which keeps
// every downstream count deterministic no matter how the node's processes
// interleave. Writes invalidate nothing here — the window is a performance
// model, and contents are always served from the authoritative store.
func (f *File) readAheadHit(reader int, off, n int64) bool {
	ra := f.fs.cfg.ReadAhead
	if ra <= 0 || n <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.raWindow[reader]
	if ok && off >= w.Off && off+n <= w.End() {
		return true
	}
	f.raWindow[reader] = extent.Extent{Off: off, Len: n + ra}
	return false
}

// chargeAccess accounts the virtual-time cost of one contiguous request of
// n real bytes at offset off issued by client at instant now. It returns
// the completion time. attempt distinguishes retries of the same request
// for the fault-injection rolls.
func (f *File) chargeAccess(client int, off, n int64, now simtime.Time, write bool, attempt int64) simtime.Time {
	cfg := f.fs.cfg
	end := now.Add(cfg.RequestOverhead)
	if n <= 0 {
		return end
	}
	bw := cfg.ReadBandwidth
	server := cfg.ServerOverheadRead
	if write {
		bw = cfg.WriteBandwidth
		server = cfg.ServerOverheadWrite
	}
	// Injected slow service: one struggling OST serves this request at a
	// fraction of its rate (disk rebuild, RAID scrub, overloaded server).
	slow := simtime.Duration(1)
	if cfg.Faults.Should(faults.SiteOSTSlow, int64(client), off, n, attempt) {
		slow = simtime.Duration(cfg.Faults.Factor(faults.SiteOSTSlow))
		f.fs.slowServices.Add(1)
	}
	serverCharged := false
	for _, chunk := range extent.SplitAt([]extent.Extent{{Off: off, Len: n}}, cfg.StripeSize) {
		s := chunk.Off / cfg.StripeSize
		simBytes := chunk.Len * cfg.ByteScale
		dur := simtime.BytesDuration(simBytes, bw) * slow
		if !serverCharged {
			// The request's server-side CPU cost lands on the OST serving
			// its first stripe, once per request.
			dur += server
			serverCharged = true
		}
		// Extent lock: writes need the stripe lock; a change of owner
		// costs a revocation round trip. Reads on Lustre also take locks,
		// but read locks are shared; only writes ping-pong.
		if write {
			f.mu.Lock()
			owner, held := f.lockOwner[s]
			f.lockOwner[s] = client
			f.mu.Unlock()
			if held && owner != client {
				revocations := simtime.Duration(1)
				// Injected storm: the revocation cascades through the
				// distributed lock manager's dependency chain, costing
				// Factor round trips instead of one.
				if cfg.Faults.Should(faults.SiteLockStorm, int64(client), s, attempt) {
					revocations = simtime.Duration(cfg.Faults.Factor(faults.SiteLockStorm))
					f.fs.lockStorms.Add(1)
				}
				dur += cfg.LockRevocation * revocations
				f.fs.lockConflicts.Add(int64(revocations))
			}
		}
		_, e := f.ostFor(s).Acquire(now, dur)
		if e > end {
			end = e
		}
	}
	return end.Add(cfg.RequestOverhead / 4) // completion acknowledgement
}

// WriteAt stores data at offset off on behalf of the given client (compute
// node), departing at virtual instant now, and returns the completion time.
// With fault injection enabled it can fail with a transient error (wrapping
// faults.ErrInjected); WriteAtRetry absorbs those under a retry policy.
func (f *File) WriteAt(client int, off int64, data []byte, now simtime.Time) (simtime.Time, error) {
	return f.writeAt(client, off, data, now, 0)
}

func (f *File) writeAt(client int, off int64, data []byte, now simtime.Time, attempt int64) (simtime.Time, error) {
	if off < 0 {
		return now, fmt.Errorf("pfs: negative offset %d", off)
	}
	if inj := f.fs.cfg.Faults; inj.Should(faults.SiteOSTWrite, int64(client), off, int64(len(data)), attempt) {
		f.fs.faultsInjected.Add(1)
		// The client burns the round trip plus its RPC timeout before the
		// failure surfaces; no bytes become durable.
		end := now.Add(f.fs.cfg.RequestOverhead + f.fs.faultTimeout())
		return end, fmt.Errorf("pfs: write %s: %w", f.name,
			inj.Fault(faults.SiteOSTWrite, "client=%d off=%d len=%d", client, off, len(data)))
	}
	f.fs.writes.Add(1)
	f.fs.bytesWritten.Add(int64(len(data)))
	end := f.chargeAccess(client, off, int64(len(data)), now, true, attempt)
	f.storeAndLog(off, data, now, end)
	return end, nil
}

// ReadAt fills dst from offset off on behalf of reader — the reading
// process, not its node: reads take only shared locks, so the read path
// needs no node identity, and per-process keying makes readahead hits (and
// hence fault rolls and service counts) independent of how a node's
// processes interleave. Bytes never written read as zero (sparse files).
// It returns the completion time. Like WriteAt, it can fail transiently
// under fault injection.
func (f *File) ReadAt(reader int, off int64, dst []byte, now simtime.Time) (simtime.Time, error) {
	return f.readAt(reader, off, dst, now, 0)
}

func (f *File) readAt(reader int, off int64, dst []byte, now simtime.Time, attempt int64) (simtime.Time, error) {
	if off < 0 {
		return now, fmt.Errorf("pfs: negative offset %d", off)
	}
	if inj := f.fs.cfg.Faults; inj.Should(faults.SiteOSTRead, int64(reader), off, int64(len(dst)), attempt) {
		f.fs.faultsInjected.Add(1)
		end := now.Add(f.fs.cfg.RequestOverhead + f.fs.faultTimeout())
		return end, fmt.Errorf("pfs: read %s: %w", f.name,
			inj.Fault(faults.SiteOSTRead, "reader=%d off=%d len=%d", reader, off, len(dst)))
	}
	f.fs.reads.Add(1)
	f.fs.bytesRead.Add(int64(len(dst)))
	var end simtime.Time
	if f.readAheadHit(reader, off, int64(len(dst))) {
		f.fs.cacheHits.Add(1)
		end = now.Add(f.fs.cfg.CacheHit)
	} else {
		end = f.chargeAccess(reader, off, int64(len(dst)), now, false, attempt)
	}
	f.loadBytes(off, dst)
	return end, nil
}

// WriteAtRetry is WriteAt under a retry policy: transient injected faults
// are absorbed with capped exponential backoff in virtual time until the
// write succeeds, the budget is spent, or the policy's deadline passes. It
// returns the completion time, the number of retries performed, and — on
// exhaustion — an error wrapping both faults.ErrExhaustedRetries and the
// final injected cause.
func (f *File) WriteAtRetry(client int, off int64, data []byte, now simtime.Time, pol faults.RetryPolicy) (simtime.Time, int64, error) {
	return f.retry(now, pol, func(at simtime.Time, attempt int64) (simtime.Time, error) {
		return f.writeAt(client, off, data, at, attempt)
	})
}

// ReadAtRetry is ReadAt under a retry policy; see WriteAtRetry.
func (f *File) ReadAtRetry(reader int, off int64, dst []byte, now simtime.Time, pol faults.RetryPolicy) (simtime.Time, int64, error) {
	return f.retry(now, pol, func(at simtime.Time, attempt int64) (simtime.Time, error) {
		return f.readAt(reader, off, dst, at, attempt)
	})
}

// retry drives one request through the shared faults.Retry loop, folding
// the absorbed faults into the file system's counters.
func (f *File) retry(now simtime.Time, pol faults.RetryPolicy, op func(simtime.Time, int64) (simtime.Time, error)) (simtime.Time, int64, error) {
	end, retries, err := faults.Retry(now, pol, op)
	if retries > 0 {
		f.fs.retries.Add(retries)
	}
	return end, retries, err
}

// storeBytes copies data into the sparse page store.
func (f *File) storeBytes(off int64, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if end := off + int64(len(data)); end > f.size {
		f.size = end
	}
	for len(data) > 0 {
		page := off / pageSize
		in := off % pageSize
		n := int64(len(data))
		if room := pageSize - in; n > room {
			n = room
		}
		p, ok := f.pages[page]
		if !ok {
			p = make([]byte, pageSize)
			f.pages[page] = p
		}
		copy(p[in:in+n], data[:n])
		off += n
		data = data[n:]
	}
}

// loadBytes copies from the sparse page store, zero-filling holes.
func (f *File) loadBytes(off int64, dst []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(dst) > 0 {
		page := off / pageSize
		in := off % pageSize
		n := int64(len(dst))
		if room := pageSize - in; n > room {
			n = room
		}
		if p, ok := f.pages[page]; ok {
			copy(dst[:n], p[in:in+n])
		} else {
			for i := int64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		off += n
		dst = dst[n:]
	}
}

// Snapshot returns the file's full contents as a dense byte slice — test
// and verification helper, not part of the simulated I/O path.
func (f *File) Snapshot() []byte {
	f.mu.Lock()
	size := f.size
	f.mu.Unlock()
	out := make([]byte, size)
	f.loadBytes(0, out)
	return out
}

// Truncate resets the file to empty (contents and lock state).
func (f *File) Truncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = make(map[int64][]byte)
	f.size = 0
	f.lockOwner = make(map[int64]int)
	f.raWindow = make(map[int]extent.Extent)
}

// ---------------------------------------------------------------------------
// Crash simulation support: the operation log.
//
// An Oplog, when attached via SetOplog, records every successful durable
// mutation — file creations, stores, and truncates — together with the
// virtual-time interval the request occupied. "Crash at virtual time T" is
// then a pure post-hoc reconstruction: replay the log into a fresh file
// system, keeping stores that completed by T, discarding stores that had
// not started, and truncating the one in flight to the byte prefix the
// elapsed fraction of its service interval had made durable. One clean run
// yields the disk image of a crash at every possible instant.
//
// Replay determinism requires the single-writer discipline tcio's layout
// already guarantees: any two logged stores touching the same byte are
// issued by the same rank, so they are ordered identically in host append
// order and in virtual time. (Owner-partitioned drains and per-rank WAL
// files both satisfy this.)

// Oplog record kinds.
const (
	OpOpen = iota // file created (Name, FirstOST)
	OpStore       // bytes became durable (Name, Off, Data, Start, End)
	OpTruncate    // file reset to empty (Name, Start, End)
)

// OpRecord is one logged durable mutation.
type OpRecord struct {
	Kind     int
	Name     string
	Off      int64
	Data     []byte // private copy (OpStore only)
	FirstOST int    // OpOpen only
	Start    simtime.Time
	End      simtime.Time
}

// Oplog accumulates OpRecords in host append order. Safe for concurrent use.
type Oplog struct {
	mu   sync.Mutex
	recs []OpRecord
}

// Records returns a snapshot of the logged records.
func (l *Oplog) Records() []OpRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]OpRecord(nil), l.recs...)
}

func (l *Oplog) append(r OpRecord) {
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// SetOplog attaches an operation log recording every subsequent durable
// mutation (nil detaches). Off by default: the log exists for the crash
// conformance class and costs nothing when absent.
func (fs *FileSystem) SetOplog(l *Oplog) {
	fs.mu.Lock()
	fs.oplog = l
	fs.oplogOn.Store(l != nil)
	fs.mu.Unlock()
}

func (fs *FileSystem) getOplog() *Oplog {
	if !fs.oplogOn.Load() {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.oplog
}

// Exists reports whether the named file exists, without creating it.
func (fs *FileSystem) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// OpenPlaced is Open with an explicit first OST for a new file, bypassing
// the round-robin placement cursor. Side files (per-rank WALs) use it so
// their placement is a pure function of the data file's, not of creation
// order — and an existing file is returned unchanged, making concurrent
// placed opens idempotent.
func (fs *FileSystem) OpenPlaced(name string, firstOST int) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f
	}
	f := &File{
		fs:        fs,
		name:      name,
		firstOST:  ((firstOST % fs.cfg.OSTCount) + fs.cfg.OSTCount) % fs.cfg.OSTCount,
		pages:     make(map[int64][]byte),
		lockOwner: make(map[int64]int),
		raWindow:  make(map[int]extent.Extent),
	}
	fs.files[name] = f
	if fs.oplog != nil {
		fs.oplog.append(OpRecord{Kind: OpOpen, Name: name, FirstOST: f.firstOST})
	}
	return f
}

// FirstOST reports the OST serving the file's first stripe.
func (f *File) FirstOST() int { return f.firstOST }

// storeAndLog is storeBytes plus oplog recording of the store's service
// interval. The replay prefix cut divides the written length over
// [start, end), so callers pass the request's true departure and completion.
func (f *File) storeAndLog(off int64, data []byte, start, end simtime.Time) {
	f.storeBytes(off, data)
	if l := f.fs.getOplog(); l != nil {
		l.append(OpRecord{
			Kind: OpStore, Name: f.name, Off: off,
			Data: append([]byte(nil), data...), Start: start, End: end,
		})
	}
}

// StoreDirect stores bytes host-side: no virtual-time charge, no fault
// rolls, no statistics, no oplog. It is the materialization primitive of
// crash replay and recovery verification, not part of the simulated path.
func (f *File) StoreDirect(off int64, data []byte) {
	f.storeBytes(off, data)
}

// TruncateAt resets the file to empty as a simulated client request: it
// pays the request overhead, can fail transiently at faults.SiteWALTruncate,
// and is logged. Unlike writes it does not count toward Stats.Writes — the
// journal-retirement RPC is control traffic, and the conformance write
// ledger stays an exact data identity.
func (f *File) TruncateAt(client int, now simtime.Time) (simtime.Time, error) {
	return f.truncateAt(client, now, 0)
}

func (f *File) truncateAt(client int, now simtime.Time, attempt int64) (simtime.Time, error) {
	if inj := f.fs.cfg.Faults; inj.Should(faults.SiteWALTruncate, int64(client), attempt) {
		f.fs.faultsInjected.Add(1)
		end := now.Add(f.fs.cfg.RequestOverhead + f.fs.faultTimeout())
		return end, fmt.Errorf("pfs: truncate %s: %w", f.name,
			inj.Fault(faults.SiteWALTruncate, "client=%d", client))
	}
	start := now
	end := now.Add(f.fs.cfg.RequestOverhead)
	f.mu.Lock()
	f.pages = make(map[int64][]byte)
	f.size = 0
	f.mu.Unlock()
	if l := f.fs.getOplog(); l != nil {
		l.append(OpRecord{Kind: OpTruncate, Name: f.name, Start: start, End: end})
	}
	return end, nil
}

// TruncateAtRetry is TruncateAt under a retry policy; see WriteAtRetry.
func (f *File) TruncateAtRetry(client int, now simtime.Time, pol faults.RetryPolicy) (simtime.Time, int64, error) {
	return f.retry(now, pol, func(at simtime.Time, attempt int64) (simtime.Time, error) {
		return f.truncateAt(client, at, attempt)
	})
}

// ReplayAt reconstructs the durable state at virtual instant t into dst, a
// fresh file system (same geometry, no injector). Opens replay always (file
// creation is metadata, durable at issue); truncates apply when complete by
// t; stores apply fully when complete, not at all when unstarted, and as a
// deterministic byte prefix — n = len·(t−start)/(end−start), integer
// division, so strictly less than len while t < end — when in flight.
func (l *Oplog) ReplayAt(dst *FileSystem, t simtime.Time) {
	l.mu.Lock()
	recs := l.recs
	defer l.mu.Unlock()
	for _, r := range recs {
		switch r.Kind {
		case OpOpen:
			dst.OpenPlaced(r.Name, r.FirstOST)
		case OpTruncate:
			if r.End <= t {
				f := dst.Open(r.Name)
				f.mu.Lock()
				f.pages = make(map[int64][]byte)
				f.size = 0
				f.mu.Unlock()
			}
		case OpStore:
			if r.Start >= t {
				continue
			}
			data := r.Data
			if r.End > t {
				span := int64(r.End.Sub(r.Start))
				if span <= 0 {
					continue
				}
				n := int64(len(data)) * int64(t.Sub(r.Start)) / span
				data = data[:n]
			}
			if len(data) > 0 {
				dst.Open(r.Name).StoreDirect(r.Off, data)
			}
		}
	}
}

// LockOwners returns the stripes currently owned, in stripe order —
// a test helper for asserting lock behaviour.
func (f *File) LockOwners() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int64, 0, len(f.lockOwner))
	for s := range f.lockOwner {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
