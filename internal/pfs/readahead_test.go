package pfs

import (
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

func raConfig() Config {
	cfg := DefaultConfig()
	cfg.StripeSize = 1 << 10
	cfg.ReadAhead = 1 << 10
	return cfg
}

func TestReadAheadSequentialHits(t *testing.T) {
	fs := New(raConfig())
	f := fs.Open("seq")
	f.WriteAt(0, 0, make([]byte, 4096), 0)

	// First read misses and prefetches; the following reads inside the
	// window hit the client cache.
	var now simtime.Time
	now, _ = f.ReadAt(0, 0, make([]byte, 64), now)
	missEnd := now
	for i := 1; i < 8; i++ {
		prev := now
		now, _ = f.ReadAt(0, int64(i*64), make([]byte, 64), now)
		if got := now.Sub(prev); got != raConfig().CacheHit {
			t.Fatalf("read %d cost %v, want cache hit %v", i, got, raConfig().CacheHit)
		}
	}
	if missEnd <= simtime.Time(raConfig().CacheHit) {
		t.Fatalf("first read was suspiciously cheap: %v", missEnd)
	}
	if got := fs.Stats().CacheHits; got != 7 {
		t.Fatalf("CacheHits = %d, want 7", got)
	}
}

func TestReadAheadMissOutsideWindow(t *testing.T) {
	fs := New(raConfig())
	f := fs.Open("strided")
	f.WriteAt(0, 0, make([]byte, 1<<20), 0)
	// Strided reads 4 KiB apart never land in the 1 KiB window.
	var now simtime.Time
	for i := 0; i < 8; i++ {
		now, _ = f.ReadAt(0, int64(i*4096), make([]byte, 64), now)
	}
	if got := fs.Stats().CacheHits; got != 0 {
		t.Fatalf("strided reads hit cache %d times", got)
	}
}

func TestReadAheadPerClient(t *testing.T) {
	fs := New(raConfig())
	f := fs.Open("percli")
	f.WriteAt(0, 0, make([]byte, 4096), 0)
	// Client 0 warms its window; client 1's first read must still miss.
	f.ReadAt(0, 0, make([]byte, 64), 0)
	before := fs.Stats().CacheHits
	f.ReadAt(1, 64, make([]byte, 64), 0)
	if got := fs.Stats().CacheHits; got != before {
		t.Fatalf("client 1 hit client 0's window")
	}
	// But client 0's next read hits.
	f.ReadAt(0, 64, make([]byte, 64), 0)
	if got := fs.Stats().CacheHits; got != before+1 {
		t.Fatalf("client 0 did not hit its own window")
	}
}

func TestReadAheadDisabled(t *testing.T) {
	cfg := raConfig()
	cfg.ReadAhead = 0
	fs := New(cfg)
	f := fs.Open("off")
	f.WriteAt(0, 0, make([]byte, 4096), 0)
	f.ReadAt(0, 0, make([]byte, 64), 0)
	f.ReadAt(0, 64, make([]byte, 64), 0)
	if got := fs.Stats().CacheHits; got != 0 {
		t.Fatalf("disabled readahead produced %d hits", got)
	}
}

func TestReadAheadContentsStillCorrect(t *testing.T) {
	// Cache hits are a cost model; contents always come from the store,
	// including bytes written after the window was established.
	fs := New(raConfig())
	f := fs.Open("coherent")
	f.WriteAt(0, 0, []byte{1, 1, 1, 1}, 0)
	f.ReadAt(0, 0, make([]byte, 2), 0) // establish window
	f.WriteAt(1, 2, []byte{9}, 0)      // another client overwrites
	got := make([]byte, 4)
	f.ReadAt(0, 0, got, 0) // hit, but must see the new byte
	if got[2] != 9 {
		t.Fatalf("cache hit served stale data: %v", got)
	}
}

func TestTruncateClearsReadAhead(t *testing.T) {
	fs := New(raConfig())
	f := fs.Open("trunc")
	f.WriteAt(0, 0, make([]byte, 128), 0)
	f.ReadAt(0, 0, make([]byte, 64), 0)
	f.Truncate()
	before := fs.Stats().CacheHits
	f.ReadAt(0, 16, make([]byte, 16), 0)
	if fs.Stats().CacheHits != before {
		t.Fatal("readahead window survived Truncate")
	}
}
