package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
)

func TestSharedOnceSingleEvaluation(t *testing.T) {
	var created atomic.Int64
	_, err := Run(testCfg(6), func(c *Comm) error {
		v, err := c.SharedOnce(func() interface{} {
			created.Add(1)
			return map[string]int{"x": 1}
		})
		if err != nil {
			return err
		}
		m, ok := v.(map[string]int)
		if !ok || m["x"] != 1 {
			return fmt.Errorf("got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.Load() != 1 {
		t.Fatalf("create ran %d times", created.Load())
	}
}

func TestSharedOnceIsSameObject(t *testing.T) {
	// Every rank must receive the SAME instance: mutations by one rank are
	// visible to all (that is the point — shared bookkeeping).
	type box struct{ ch chan int }
	_, err := Run(testCfg(4), func(c *Comm) error {
		v, err := c.SharedOnce(func() interface{} { return &box{ch: make(chan int, 4)} })
		if err != nil {
			return err
		}
		b := v.(*box)
		b.ch <- c.Rank()
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 && len(b.ch) != 4 {
			return fmt.Errorf("channel holds %d items, want 4", len(b.ch))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendSizedBillsCustomBytes(t *testing.T) {
	// Two messages with identical payloads but different billed sizes must
	// produce different network byte counts.
	run := func(billed int64) int64 {
		rep, err := Run(testCfg(2), func(c *Comm) error {
			if c.Rank() == 0 {
				r := c.IsendSized(1, 3, make([]byte, 100), billed)
				if _, err := r.Wait(); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 3); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Net.Bytes
	}
	if got := run(7); got != 7 {
		t.Fatalf("billed 7, network saw %d", got)
	}
	if got := run(-1); got != 100 {
		t.Fatalf("default billing, network saw %d, want 100", got)
	}
}

func TestAlltoallvSizedValidation(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if _, err := c.Alltoallv(make([][]byte, 5)); err == nil {
			return errors.New("wrong buffer count accepted")
		}
		if _, err := c.AlltoallvSized(make([][]byte, 2), make([]int64, 1)); err == nil {
			return errors.New("wrong size count accepted")
		}
		// A well-formed call must still complete on both ranks.
		send := [][]byte{[]byte("a"), []byte("b")}
		got, err := c.AlltoallvSized(send, []int64{1, 1})
		if err != nil {
			return err
		}
		if len(got) != 2 {
			return fmt.Errorf("got %d buffers", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvLargePayloadsRoundTrip(t *testing.T) {
	const p = 4
	_, err := Run(testCfg(p), func(c *Comm) error {
		send := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = make([]byte, 1000+dst)
			for i := range send[dst] {
				send[dst][i] = byte(c.Rank()*p + dst)
			}
		}
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			if len(recv[src]) != 1000+c.Rank() {
				return fmt.Errorf("from %d got %d bytes", src, len(recv[src]))
			}
			for i, b := range recv[src] {
				if b != byte(src*p+c.Rank()) {
					return fmt.Errorf("from %d byte %d = %d", src, i, b)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveCollectivesKeepOrder(t *testing.T) {
	// A stress sequence of mixed collectives must stay matched across
	// epochs (the timeBarrier recycles correctly).
	_, err := Run(testCfg(5), func(c *Comm) error {
		for i := 0; i < 50; i++ {
			sum, err := c.AllreduceInt64(OpSum, int64(i))
			if err != nil {
				return err
			}
			if sum != int64(i*5) {
				return fmt.Errorf("round %d: sum %d", i, sum)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			all, err := c.AllgatherInt64(int64(c.Rank() * i))
			if err != nil {
				return err
			}
			for r, v := range all {
				if v != int64(r*i) {
					return fmt.Errorf("round %d: all[%d] = %d", i, r, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCostGrowsWithScale(t *testing.T) {
	makespan := func(p int) int64 {
		rep, err := Run(testCfg(p), func(c *Comm) error { return c.Barrier() })
		if err != nil {
			t.Fatal(err)
		}
		return int64(rep.MaxTime)
	}
	if small, big := makespan(2), makespan(64); big <= small {
		t.Fatalf("barrier at 64 ranks (%d) not dearer than at 2 (%d)", big, small)
	}
}

func TestLocalRanksCommunicateThroughMemory(t *testing.T) {
	// Ranks 0 and 1 share node 0: their traffic must be local.
	rep, err := Run(Config{Procs: 2, Machine: cluster.Lonestar()}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 1000))
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Net.LocalMessages != 1 {
		t.Fatalf("LocalMessages = %d, want 1", rep.Net.LocalMessages)
	}
}
