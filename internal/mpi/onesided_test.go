package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

func TestWinHeld(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		if win.Held(1) {
			return errors.New("Held before Lock")
		}
		if err := win.Lock(1, false); err != nil {
			return err
		}
		if !win.Held(1) {
			return errors.New("not Held after Lock")
		}
		if err := win.Unlock(1); err != nil {
			return err
		}
		if win.Held(1) {
			return errors.New("Held after Unlock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinGetAsyncDataValidAfterComplete(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate([]byte{10, 20, 30, 40})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		if err := win.Lock(1, false); err != nil {
			return err
		}
		h1, err := win.GetSegmentsAsync(1, []datatype.Segment{{Off: 1, Len: 2}})
		if err != nil {
			return err
		}
		h2, err := win.GetSegmentsAsync(1, []datatype.Segment{{Off: 3, Len: 1}})
		if err != nil {
			return err
		}
		if err := win.Unlock(1); err != nil {
			return err
		}
		if got := h1.Complete(); !bytes.Equal(got, []byte{20, 30}) {
			return fmt.Errorf("h1 = %v", got)
		}
		if got := h2.Complete(); !bytes.Equal(got, []byte{40}) {
			return fmt.Errorf("h2 = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinGetAsyncWithoutLockFails(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if _, err := win.GetSegmentsAsync(1, []datatype.Segment{{Off: 0, Len: 1}}); err == nil {
				return errors.New("async get without lock accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinAsyncGetsOverlapInVirtualTime(t *testing.T) {
	// N async gets under one epoch must cost far less than N synchronous
	// gets: the epoch's Unlock waits once for the slowest transfer.
	const n = 64
	segs := make([]datatype.Segment, 1)

	syncTime := runOneSidedTimed(t, func(c *Comm, win *Win) error {
		for i := 0; i < n; i++ {
			segs[0] = datatype.Segment{Off: int64(i), Len: 1}
			if err := win.Lock(1, false); err != nil {
				return err
			}
			if _, err := win.GetSegments(1, segs); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
		}
		return nil
	})
	asyncTime := runOneSidedTimed(t, func(c *Comm, win *Win) error {
		if err := win.Lock(1, false); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			segs[0] = datatype.Segment{Off: int64(i), Len: 1}
			if _, err := win.GetSegmentsAsync(1, segs); err != nil {
				return err
			}
		}
		return win.Unlock(1)
	})
	if asyncTime >= syncTime {
		t.Fatalf("async epoch (%v) not cheaper than %d sync epochs (%v)", asyncTime, n, syncTime)
	}
}

// runOneSidedTimed runs fn on rank 0 against rank 1's 128-byte window and
// returns the makespan.
func runOneSidedTimed(t *testing.T, fn func(*Comm, *Win) error) simtime.Time {
	t.Helper()
	rep, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 128))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := fn(c, win); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.MaxTime
}

func TestWinSetClassChargesTwoSided(t *testing.T) {
	count := func(class netsim.Class) netsim.Stats {
		rep, err := Run(testCfg(2), func(c *Comm) error {
			win, err := c.WinCreate(make([]byte, 8))
			if err != nil {
				return err
			}
			win.SetClass(class)
			if c.Rank() == 0 {
				if err := win.Lock(1, true); err != nil {
					return err
				}
				if err := win.Put(1, 0, []byte{1}); err != nil {
					return err
				}
				if err := win.Unlock(1); err != nil {
					return err
				}
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Net
	}
	one := count(netsim.OneSided)
	two := count(netsim.TwoSided)
	if one.OneSidedMsgs == 0 {
		t.Fatal("default class did not record one-sided traffic")
	}
	if two.TwoSidedMsgs <= one.TwoSidedMsgs {
		t.Fatalf("SetClass(TwoSided) did not shift traffic: %+v vs %+v", two, one)
	}
}

func TestWinFenceSynchronizes(t *testing.T) {
	rep, err := Run(testCfg(3), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			c.Compute(5 * simtime.Millisecond)
		}
		return win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rt := range rep.RankTimes {
		if rt < simtime.Time(5*simtime.Millisecond) {
			t.Fatalf("rank %d left fence at %v", r, rt)
		}
	}
}

func TestSharedLocksDoNotChainVirtualTime(t *testing.T) {
	// Many shared epochs, each holding for 1 ms of compute, must overlap:
	// the makespan stays near one epoch, not the sum.
	rep, err := Run(testCfg(8), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 64))
		if err != nil {
			return err
		}
		if err := win.Lock(7, false); err != nil {
			return err
		}
		c.Compute(simtime.Millisecond)
		if err := win.Put(7, int64(c.Rank()), []byte{1}); err != nil {
			return err
		}
		return win.Unlock(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxTime > simtime.Time(4*simtime.Millisecond) {
		t.Fatalf("shared epochs serialized: makespan %v", rep.MaxTime)
	}
}

func TestExclusiveAfterSharedObservesHandoff(t *testing.T) {
	// An exclusive epoch must not begin (in virtual time) before earlier
	// shared epochs handed off.
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Lock(0, false); err != nil {
				return err
			}
			c.Compute(10 * simtime.Millisecond)
			if err := win.Unlock(0); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := win.Lock(0, true); err != nil {
				return err
			}
			if c.Now() < simtime.Time(10*simtime.Millisecond) {
				return fmt.Errorf("exclusive epoch began at %v, before shared handoff", c.Now())
			}
			return win.Unlock(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
