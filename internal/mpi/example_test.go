package mpi_test

import (
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
)

// Example runs a tiny job: every rank contributes its id to an allreduce
// and rank 0 reports the sum and the job's simulated makespan.
func Example() {
	rep, err := mpi.Run(mpi.Config{Procs: 8, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		sum, err := c.AllreduceInt64(mpi.OpSum, int64(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("sum of ranks 0..7 = %d\n", sum)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished in under a millisecond of virtual time: %v\n", rep.MaxTime < 1_000_000)
	// Output:
	// sum of ranks 0..7 = 28
	// job finished in under a millisecond of virtual time: true
}

// Example_onesided demonstrates passive-target one-sided communication:
// rank 0 deposits a value in rank 1's window without rank 1 participating.
func Example_onesided() {
	_, err := mpi.Run(mpi.Config{Procs: 2, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Lock(1, true); err != nil {
				return err
			}
			if err := win.Put(1, 0, []byte{42}); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			fmt.Printf("rank 1's window holds %d\n", win.Local()[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: rank 1's window holds 42
}
