package mpi

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

// This file implements MPI-2 passive-target one-sided communication:
// windows, MPI_Win_lock / MPI_Win_unlock, MPI_Put / MPI_Get, and the
// indexed-datatype transfers TCIO uses to ship a whole level-1 buffer in a
// single network operation (§IV.A: "We use MPI_Type_indexed to combine
// multiple data blocks as one derived data type instance").
//
// The paper deliberately avoids MPI_Win_fence (a collective that would
// break TCIO's fully independent I/O calls) in favour of the lock-request
// paradigm; this runtime therefore provides per-target shared/exclusive
// window locks as the primary synchronization.

// winLock is one target's window lock. Waiting is abortable so a failed
// rank cannot deadlock the job.
//
// Virtual-time semantics: exclusive epochs serialize against everything;
// shared epochs serialize only against exclusive epochs (readers do not
// chain behind each other). The handoff instant is the end of the holder's
// critical section — the time spent issuing operations — not the wire time
// of its transfers, which the NIC resources account separately; chaining
// wire time here would doubly serialize back-to-back epochs in a way real
// RDMA hardware does not.
type winLock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	excl   bool
	shared int
	// lastExcl / lastShared carry virtual time between epochs: when the
	// most recent exclusive (resp. shared) epoch handed off.
	lastExcl   simtime.Time
	lastShared simtime.Time
}

func newWinLock() *winLock {
	l := &winLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *winLock) acquire(exclusive bool, abortedErr func() error) (simtime.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if err := abortedErr(); err != nil {
			return 0, err
		}
		if exclusive {
			if !l.excl && l.shared == 0 {
				l.excl = true
				return simtime.Max(l.lastExcl, l.lastShared), nil
			}
		} else if !l.excl {
			l.shared++
			return l.lastExcl, nil
		}
		l.cond.Wait()
	}
}

func (l *winLock) release(exclusive bool, at simtime.Time) {
	l.mu.Lock()
	if exclusive {
		l.excl = false
		if at > l.lastExcl {
			l.lastExcl = at
		}
	} else {
		if l.shared > 0 {
			l.shared--
		}
		if at > l.lastShared {
			l.lastShared = at
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *winLock) wake() { l.cond.Broadcast() }

// winGlobal is the world-wide state of one window: every rank's exposed
// memory and per-target locks. datamu serializes the physical (real-time)
// copies into and out of each target's buffer: the virtual-time epoch
// discipline orders transfers logically, but rewrite traffic means two
// goroutines can touch the same bytes at the same wall-clock instant.
type winGlobal struct {
	id     int
	bufs   [][]byte
	datamu []sync.Mutex
	locks  []*winLock
}

// Win is one rank's handle on a window.
type Win struct {
	c     *Comm
	g     *winGlobal
	held  map[int]*heldLock
	class netsim.Class
}

// SetClass overrides the network message class used by this handle's puts
// and gets. The default is OneSided (RDMA); forcing TwoSided charges each
// transfer the send/receive matching costs instead — the ablation isolating
// the paper's claim that one-sided communication is what lets TCIO scale.
func (w *Win) SetClass(class netsim.Class) { w.class = class }

type heldLock struct {
	exclusive  bool
	maxArrival simtime.Time // latest completion among this epoch's puts
}

// perSegmentCPU is the local cost of describing one block in an indexed
// datatype (building the type, driving the scatter/gather engine).
const perSegmentCPU = 60 * simtime.Nanosecond

// WinCreate is collective: every rank contributes local as its exposed
// window memory and receives a handle. Window memory is read and written
// by remote ranks only between Lock and Unlock.
func (c *Comm) WinCreate(local []byte) (*Win, error) {
	res, err := c.collect(local, func(vals []interface{}) interface{} {
		g := &winGlobal{
			bufs:   make([][]byte, len(vals)),
			datamu: make([]sync.Mutex, len(vals)),
			locks:  make([]*winLock, len(vals)),
		}
		for i, raw := range vals {
			g.bufs[i], _ = raw.([]byte)
			g.locks[i] = newWinLock()
		}
		c.w.winMu.Lock()
		g.id = len(c.w.windows)
		c.w.windows = append(c.w.windows, g)
		c.w.winMu.Unlock()
		return g
	}, c.treeCost(16))
	if err != nil {
		return nil, err
	}
	return &Win{c: c, g: res.(*winGlobal), held: make(map[int]*heldLock), class: netsim.OneSided}, nil
}

// Size reports the length of the window memory exposed by target.
func (w *Win) Size(target int) int64 { return int64(len(w.g.bufs[target])) }

// Local returns this rank's own exposed window memory.
func (w *Win) Local() []byte { return w.g.bufs[w.c.rank] }

// SnapshotLocal returns a private copy of [off, off+n) of this rank's own
// window memory, serialized against the physical copies of concurrent
// remote puts. Background lanes that read window memory outside any access
// epoch (tcio's eager write-behind) must use it instead of slicing Local():
// a rewrite put landing mid-read would otherwise be a data race.
func (w *Win) SnapshotLocal(off, n int64) []byte {
	out := make([]byte, n)
	w.SnapshotLocalInto(out, off)
	return out
}

// SnapshotLocalInto is SnapshotLocal copying len(dst) bytes from off into a
// caller-owned buffer, so steady-state background lanes can reuse one
// staging arena instead of allocating per run.
func (w *Win) SnapshotLocalInto(dst []byte, off int64) {
	mu := &w.g.datamu[w.c.rank]
	mu.Lock()
	copy(dst, w.g.bufs[w.c.rank][off:off+int64(len(dst))])
	mu.Unlock()
}

// Lock opens an access epoch on target's window (MPI_Win_lock). exclusive
// corresponds to MPI_LOCK_EXCLUSIVE; otherwise MPI_LOCK_SHARED.
func (w *Win) Lock(target int, exclusive bool) error {
	if target < 0 || target >= len(w.g.bufs) {
		return fmt.Errorf("mpi: Win.Lock target %d of %d", target, len(w.g.bufs))
	}
	if _, dup := w.held[target]; dup {
		return fmt.Errorf("mpi: Win.Lock target %d already locked by rank %d", target, w.c.rank)
	}
	prevRelease, err := w.g.locks[target].acquire(exclusive, w.c.abortedErr)
	if err != nil {
		return err
	}
	// The lock request is a small round trip to the target node, and the
	// epoch cannot begin before the previous exclusive holder released.
	w.c.clock().AdvanceTo(prevRelease)
	net := w.c.w.machine.Net
	w.c.clock().Advance(2*net.Latency + net.SetupOneSided)
	w.held[target] = &heldLock{exclusive: exclusive}
	return nil
}

// Unlock closes the access epoch on target (MPI_Win_unlock). All of the
// epoch's puts and gets are complete, at both origin and target, when
// Unlock returns; the origin's clock advances accordingly. The lock itself
// hands off at the end of the critical section (operations issued), so
// successors queue behind the epoch's bookkeeping, not its wire time.
func (w *Win) Unlock(target int) error {
	h, ok := w.held[target]
	if !ok {
		return fmt.Errorf("mpi: Win.Unlock target %d not locked by rank %d", target, w.c.rank)
	}
	delete(w.held, target)
	net := w.c.w.machine.Net
	handoff := w.c.clock().Now().Add(net.Latency)
	w.c.clock().AdvanceTo(h.maxArrival)
	w.c.clock().Advance(net.Latency) // unlock notification
	w.g.locks[target].release(h.exclusive, handoff)
	return nil
}

// Held reports whether this rank currently holds a lock on target.
func (w *Win) Held(target int) bool {
	_, ok := w.held[target]
	return ok
}

// epoch returns the held-lock record, erroring when the caller skipped Lock.
func (w *Win) epoch(target int, op string) (*heldLock, error) {
	h, ok := w.held[target]
	if !ok {
		return nil, fmt.Errorf("mpi: %s to target %d without holding its window lock", op, target)
	}
	return h, nil
}

// Put copies data into target's window at offset off (MPI_Put). The
// operation is complete only after Unlock.
func (w *Win) Put(target int, off int64, data []byte) error {
	return w.PutSegments(target, []datatype.Segment{{Off: off, Len: int64(len(data))}}, data)
}

// PutSegments scatters data into target's window according to segs — the
// runtime equivalent of a single MPI_Put with an MPI_Type_indexed target
// datatype: one network transfer regardless of the number of blocks.
// data holds the blocks' bytes concatenated in segment order.
func (w *Win) PutSegments(target int, segs []datatype.Segment, data []byte) error {
	_, err := w.PutSegmentsAsync(target, segs, data)
	return err
}

// PutHandle is an in-flight request-based put (MPI_Rput): the origin may
// wait for this one transfer's local completion without closing the access
// epoch it was issued in. Unlock still completes every put of the epoch, so
// dropping a handle is always safe.
type PutHandle struct {
	c       *Comm
	arrival simtime.Time
}

// Complete waits (in virtual time) for the transfer to retire.
func (h *PutHandle) Complete() { h.c.clock().AdvanceTo(h.arrival) }

// Arrival reports when the transfer retires at the target, without
// waiting. Pipelines that record where data will be use it to timestamp
// dependent work — tcio's write-behind stores it with each dirty run so
// the owner never drains bytes before their virtual-time arrival.
func (h *PutHandle) Arrival() simtime.Time { return h.arrival }

// PendingArrival reports the latest completion time among the open epoch's
// transfers to target, without waiting — zero when no epoch is open. It is
// the observational counterpart of FlushLocal: background pipelines use it
// to timestamp work that depends on the epoch's data without dragging the
// origin's clock.
func (w *Win) PendingArrival(target int) simtime.Time {
	if h, ok := w.held[target]; ok {
		return h.maxArrival
	}
	return 0
}

// PutSegmentsAsync is PutSegments returning an Rput-style handle, so a
// pipelined origin can bound its outstanding transfers by retiring the
// oldest handle instead of closing whole epochs.
func (w *Win) PutSegmentsAsync(target int, segs []datatype.Segment, data []byte) (*PutHandle, error) {
	h, err := w.epoch(target, "Put")
	if err != nil {
		return nil, err
	}
	buf := w.g.bufs[target]
	var total int64
	for _, s := range segs {
		if s.Off < 0 || s.Off+s.Len > int64(len(buf)) {
			return nil, fmt.Errorf("mpi: Put segment [%d,%d) outside window of %d bytes", s.Off, s.Off+s.Len, len(buf))
		}
		total += s.Len
	}
	if total != int64(len(data)) {
		return nil, fmt.Errorf("mpi: Put %d bytes for segments totalling %d", len(data), total)
	}
	mu := &w.g.datamu[target]
	mu.Lock()
	pos := int64(0)
	for _, s := range segs {
		copy(buf[s.Off:s.Off+s.Len], data[pos:pos+s.Len])
		pos += s.Len
	}
	mu.Unlock()
	depart := w.c.clock().Advance(sendOverhead + simtime.Duration(len(segs))*perSegmentCPU)
	arrival := w.c.w.net.Transfer(
		w.c.w.machine.NodeOf(w.c.rank), w.c.w.machine.NodeOf(target),
		w.c.w.machine.Scale(total), depart, w.class)
	if arrival > h.maxArrival {
		h.maxArrival = arrival
	}
	return &PutHandle{c: w.c, arrival: arrival}, nil
}

// FlushLocal completes all outstanding operations this rank issued to
// target in the current access epoch, at the origin (MPI_Win_flush_local):
// the caller's clock waits for their transfers without releasing the lock,
// so the epoch can keep pipelining afterwards.
func (w *Win) FlushLocal(target int) error {
	h, err := w.epoch(target, "FlushLocal")
	if err != nil {
		return err
	}
	w.c.clock().AdvanceTo(h.maxArrival)
	return nil
}

// Get copies n bytes from target's window at offset off (MPI_Get).
func (w *Win) Get(target int, off, n int64) ([]byte, error) {
	return w.GetSegments(target, []datatype.Segment{{Off: off, Len: n}})
}

// GetSegments gathers the given window segments of target into one dense
// buffer — a single MPI_Get with an indexed datatype, one network transfer.
// The caller's clock waits for the transfer (the data is needed on return).
func (w *Win) GetSegments(target int, segs []datatype.Segment) ([]byte, error) {
	h, err := w.GetSegmentsAsync(target, segs)
	if err != nil {
		return nil, err
	}
	return h.Complete(), nil
}

// GetHandle is an in-flight asynchronous get. Its data is guaranteed only
// after Complete or after unlocking the access epoch it was issued in.
type GetHandle struct {
	c       *Comm
	data    []byte
	arrival simtime.Time
}

// Complete waits (in virtual time) for the transfer and returns the data.
func (h *GetHandle) Complete() []byte {
	h.c.clock().AdvanceTo(h.arrival)
	return h.data
}

// GetSegmentsAsync issues a get without waiting for its wire time: the
// origin only pays the issue overhead now, and the epoch's Unlock (or the
// handle's Complete) synchronizes with the transfer. This is how an MPI
// program overlaps many gets within one lock epoch before a single
// MPI_Win_unlock.
func (w *Win) GetSegmentsAsync(target int, segs []datatype.Segment) (*GetHandle, error) {
	h, err := w.epoch(target, "Get")
	if err != nil {
		return nil, err
	}
	buf := w.g.bufs[target]
	var total int64
	for _, s := range segs {
		if s.Off < 0 || s.Off+s.Len > int64(len(buf)) {
			return nil, fmt.Errorf("mpi: Get segment [%d,%d) outside window of %d bytes", s.Off, s.Off+s.Len, len(buf))
		}
		total += s.Len
	}
	out := make([]byte, 0, total)
	mu := &w.g.datamu[target]
	mu.Lock()
	for _, s := range segs {
		out = append(out, buf[s.Off:s.Off+s.Len]...)
	}
	mu.Unlock()
	depart := w.c.clock().Advance(sendOverhead + simtime.Duration(len(segs))*perSegmentCPU)
	arrival := w.c.w.net.Transfer(
		w.c.w.machine.NodeOf(target), w.c.w.machine.NodeOf(w.c.rank),
		w.c.w.machine.Scale(total), depart, w.class)
	if arrival > h.maxArrival {
		h.maxArrival = arrival
	}
	return &GetHandle{c: w.c, data: out, arrival: arrival}, nil
}

// Fence is the collective synchronization alternative (MPI_Win_fence).
// TCIO does not use it — the paper rejects fences because they would force
// collective behaviour on independent I/O calls — but it is provided for
// completeness and for the ablation benchmarks.
func (w *Win) Fence() error {
	return w.c.Barrier()
}
