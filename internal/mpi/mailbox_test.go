package mpi

// Mailbox matching semantics: FIFO per (source, tag) with wildcard receives
// taking the globally oldest deposit. The indexed mailbox must be
// indistinguishable from the flat scan-in-deposit-order queue it replaced —
// including under mixed AnySource/AnyTag and exact receives, where a naive
// per-key index would return an arbitrary queue's head instead of the
// oldest compatible deposit.

import (
	"math/rand"
	"testing"
)

func noAbortErr() error { return nil }

func mustTake(t *testing.T, m *mailbox, src, tag int) envelope {
	t.Helper()
	e, err := m.take(src, tag, noAbortErr)
	if err != nil {
		t.Fatalf("take(%d, %d): %v", src, tag, err)
	}
	return e
}

// TestMailboxFIFOPerPair pins non-overtaking order within one (src, tag).
func TestMailboxFIFOPerPair(t *testing.T) {
	m := newMailbox()
	for i := byte(0); i < 3; i++ {
		m.deposit(envelope{src: 1, tag: 5, data: []byte{i}})
	}
	for want := byte(0); want < 3; want++ {
		if got := mustTake(t, m, 1, 5).data[0]; got != want {
			t.Fatalf("exact take %d: got payload %d", want, got)
		}
	}
}

// TestMailboxWildcardGlobalOrder pins that wildcard receives drain deposits
// in global deposit order across (src, tag) pairs, interleaved with exact
// receives that consume out of the middle.
func TestMailboxWildcardGlobalOrder(t *testing.T) {
	m := newMailbox()
	m.deposit(envelope{src: 1, tag: 1, data: []byte{0}}) // a
	m.deposit(envelope{src: 2, tag: 1, data: []byte{1}}) // b
	m.deposit(envelope{src: 1, tag: 1, data: []byte{2}}) // c
	m.deposit(envelope{src: 2, tag: 2, data: []byte{3}}) // d

	if got := mustTake(t, m, 2, 1).data[0]; got != 1 {
		t.Fatalf("exact (2,1): got %d want 1", got)
	}
	// Oldest remaining deposit is a, even though b's queue was touched last.
	if got := mustTake(t, m, AnySource, AnyTag).data[0]; got != 0 {
		t.Fatalf("wildcard: got %d want 0", got)
	}
	// AnySource with an exact tag: c (deposit 2) precedes d (deposit 3).
	if got := mustTake(t, m, AnySource, 1).data[0]; got != 2 {
		t.Fatalf("(AnySource, 1): got %d want 2", got)
	}
	// AnyTag with an exact source.
	if got := mustTake(t, m, 2, AnyTag).data[0]; got != 3 {
		t.Fatalf("(2, AnyTag): got %d want 3", got)
	}
}

// flatTake is the reference semantics: scan a single queue in deposit order
// and remove the first compatible message — exactly the pre-index mailbox.
func flatTake(queue *[]envelope, src, tag int) (envelope, bool) {
	for i, e := range *queue {
		if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
			*queue = append((*queue)[:i], (*queue)[i+1:]...)
			return e, true
		}
	}
	return envelope{}, false
}

// TestMailboxMatchesFlatReference drives the indexed mailbox and the flat
// reference with an identical random deposit/take schedule and requires
// byte-identical matches throughout.
func TestMailboxMatchesFlatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := newMailbox()
		var ref []envelope
		var id byte
		for step := 0; step < 400; step++ {
			if len(ref) == 0 || rng.Intn(2) == 0 {
				e := envelope{src: rng.Intn(4), tag: rng.Intn(4), data: []byte{id}}
				id++
				m.deposit(e)
				ref = append(ref, e)
				continue
			}
			// Pick a pattern guaranteed to match: derive it from a random
			// buffered message, with each side independently wildcarded.
			probe := ref[rng.Intn(len(ref))]
			src, tag := probe.src, probe.tag
			if rng.Intn(2) == 0 {
				src = AnySource
			}
			if rng.Intn(2) == 0 {
				tag = AnyTag
			}
			want, ok := flatTake(&ref, src, tag)
			if !ok {
				t.Fatalf("trial %d step %d: reference found no match", trial, step)
			}
			got := mustTake(t, m, src, tag)
			if got.src != want.src || got.tag != want.tag || got.data[0] != want.data[0] {
				t.Fatalf("trial %d step %d take(%d, %d): got (src=%d tag=%d id=%d) want (src=%d tag=%d id=%d)",
					trial, step, src, tag, got.src, got.tag, got.data[0], want.src, want.tag, want.data[0])
			}
		}
	}
}
