package mpi

// A typed request/reply protocol over the point-to-point path. The I/O
// delegation tier (internal/delegate) speaks it between client ranks and
// dedicated server ranks, but nothing in it is delegation-specific: any
// rank can serve a tag. The wire model bills a fixed header at metadata
// scale plus the payload at the machine's byte scale, so a control-only
// request (flush marker, close) costs a header, not a data transfer.

import (
	"encoding/binary"
	"fmt"

	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

// RPCOp identifies a request's operation.
type RPCOp uint8

const (
	OpOpen RPCOp = iota + 1
	OpWrite
	OpRead
	OpFlush
	OpClose
	// OpShutdown retires one client from a Serve loop; the server exits
	// once every client has sent it.
	OpShutdown
	// OpReadIntent ships one client's read-intent vector for a collective
	// read epoch (Data holds fixed-width off/len run pairs; see
	// internal/delegate). Appended after OpShutdown so existing wire
	// values stay stable.
	OpReadIntent
)

func (op RPCOp) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpFlush:
		return "flush"
	case OpClose:
		return "close"
	case OpShutdown:
		return "shutdown"
	case OpReadIntent:
		return "read-intent"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// RPCRequest is one client->server message. Client is not encoded on the
// wire: the receiver fills it from the envelope source, so a client cannot
// impersonate another rank.
type RPCRequest struct {
	Op     RPCOp
	Client int
	Handle int32 // server-side file handle (collective open ordinal)
	Seq    int64 // per-client sequence number; orders staged writes
	Off    int64 // file offset (write, read)
	Len    int64 // request length (read); len(Data) for writes
	Data   []byte
}

// RPCReply is one server->client message. Code classifies a failure so
// the sender's typed error survives the string flattening across the wire
// (a reply string cannot be errors.Is-matched; the code can).
type RPCReply struct {
	OK   bool
	Code RPCErrCode
	Err  string
	Seq  int64
	Data []byte
}

// RPCErrCode is the wire classification of a failed reply.
type RPCErrCode uint8

const (
	// RPCErrNone is the zero code: no classification (or no error).
	RPCErrNone RPCErrCode = iota
	// RPCErrGeneric marks a failure with no finer class.
	RPCErrGeneric
	// RPCErrExhausted marks a request that ran out of retry budget
	// (faults.ErrExhaustedRetries on the serving side).
	RPCErrExhausted
)

// Wire sizes billed for the fixed portions of each message. Headers ride
// at metadata scale (like two-phase exchange descriptors — see send): a
// scaled run's worth of requests still ships one header each.
const (
	rpcReqHeaderWire = 1 + 4 + 8 + 8 + 8 + 4 // op, handle, seq, off, len, datalen
	rpcRepHeaderWire = 1 + 1 + 8 + 2 + 4     // ok, code, seq, errlen, datalen
	rpcMaxErr        = 1<<16 - 1
)

// encodeRequest stages the request into a pooled buffer; the caller hands
// it to sendStaged, which owns it from then on.
func encodeRequest(r *RPCRequest) []byte {
	buf := getBuf(rpcReqHeaderWire + len(r.Data))
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(buf[1:], uint32(r.Handle))
	binary.LittleEndian.PutUint64(buf[5:], uint64(r.Seq))
	binary.LittleEndian.PutUint64(buf[13:], uint64(r.Off))
	binary.LittleEndian.PutUint64(buf[21:], uint64(r.Len))
	binary.LittleEndian.PutUint32(buf[29:], uint32(len(r.Data)))
	copy(buf[rpcReqHeaderWire:], r.Data)
	return buf
}

func decodeRequest(buf []byte) (*RPCRequest, error) {
	if len(buf) < rpcReqHeaderWire {
		return nil, fmt.Errorf("mpi: rpc request truncated at %d bytes", len(buf))
	}
	r := &RPCRequest{
		Op:     RPCOp(buf[0]),
		Handle: int32(binary.LittleEndian.Uint32(buf[1:])),
		Seq:    int64(binary.LittleEndian.Uint64(buf[5:])),
		Off:    int64(binary.LittleEndian.Uint64(buf[13:])),
		Len:    int64(binary.LittleEndian.Uint64(buf[21:])),
	}
	n := int(binary.LittleEndian.Uint32(buf[29:]))
	if n != len(buf)-rpcReqHeaderWire {
		return nil, fmt.Errorf("mpi: rpc request payload %d bytes, header says %d",
			len(buf)-rpcReqHeaderWire, n)
	}
	if n > 0 {
		r.Data = buf[rpcReqHeaderWire:]
	}
	return r, nil
}

// encodeReply stages the reply into a pooled buffer; see encodeRequest.
func encodeReply(r *RPCReply) []byte {
	errStr := r.Err
	if len(errStr) > rpcMaxErr {
		errStr = errStr[:rpcMaxErr]
	}
	buf := getBuf(rpcRepHeaderWire + len(errStr) + len(r.Data))
	buf[0] = 0 // recycled buffers hold stale bytes; every byte must be set
	if r.OK {
		buf[0] = 1
	}
	buf[1] = byte(r.Code)
	binary.LittleEndian.PutUint64(buf[2:], uint64(r.Seq))
	binary.LittleEndian.PutUint16(buf[10:], uint16(len(errStr)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(r.Data)))
	copy(buf[rpcRepHeaderWire:], errStr)
	copy(buf[rpcRepHeaderWire+len(errStr):], r.Data)
	return buf
}

func decodeReply(buf []byte) (*RPCReply, error) {
	if len(buf) < rpcRepHeaderWire {
		return nil, fmt.Errorf("mpi: rpc reply truncated at %d bytes", len(buf))
	}
	r := &RPCReply{
		OK:   buf[0] != 0,
		Code: RPCErrCode(buf[1]),
		Seq:  int64(binary.LittleEndian.Uint64(buf[2:])),
	}
	errLen := int(binary.LittleEndian.Uint16(buf[10:]))
	dataLen := int(binary.LittleEndian.Uint32(buf[12:]))
	if rpcRepHeaderWire+errLen+dataLen != len(buf) {
		return nil, fmt.Errorf("mpi: rpc reply %d bytes, header says %d+%d",
			len(buf)-rpcRepHeaderWire, errLen, dataLen)
	}
	r.Err = string(buf[rpcRepHeaderWire : rpcRepHeaderWire+errLen])
	if dataLen > 0 {
		r.Data = buf[rpcRepHeaderWire+errLen:]
	}
	return r, nil
}

// SendRequest ships req to rank dst on tag. The header is billed at
// metadata scale and the payload at the machine's byte scale, so bulk
// writes pay for their data while control messages stay cheap.
func (c *Comm) SendRequest(dst, tag int, req *RPCRequest) error {
	sim := int64(rpcReqHeaderWire) + c.w.machine.Scale(int64(len(req.Data)))
	return c.sendStaged(dst, tag, encodeRequest(req), netsim.TwoSided, sim)
}

// RecvRequest blocks for the next request from src (AnySource for any
// client) on tag, advancing the clock to its arrival. Client is filled
// from the envelope source.
func (c *Comm) RecvRequest(src, tag int) (*RPCRequest, error) {
	e, err := c.w.ranks[c.rank].box.take(src, tag, c.abortedErr)
	if err != nil {
		return nil, err
	}
	c.clock().AdvanceTo(e.arrival)
	req, err := decodeRequest(e.data)
	if err != nil {
		return nil, err
	}
	req.Client = e.src
	return req, nil
}

// TryRecvRequest is RecvRequest without blocking: it returns the next
// matching request if one is already buffered, or ok == false immediately.
// A scheduler loop uses it to drain queued work whenever no new request
// has arrived, without ever parking while the queue is non-empty.
func (c *Comm) TryRecvRequest(src, tag int) (*RPCRequest, bool, error) {
	if err := c.abortedErr(); err != nil {
		return nil, false, err
	}
	e, ok := c.w.ranks[c.rank].box.tryTake(src, tag)
	if !ok {
		return nil, false, nil
	}
	c.clock().AdvanceTo(e.arrival)
	req, err := decodeRequest(e.data)
	if err != nil {
		return nil, false, err
	}
	req.Client = e.src
	return req, true, nil
}

// SendReply ships rep to rank dst on tag, billed like SendRequest.
func (c *Comm) SendReply(dst, tag int, rep *RPCReply) error {
	sim := int64(rpcRepHeaderWire) + c.w.machine.Scale(int64(len(rep.Data)))
	return c.sendStaged(dst, tag, encodeReply(rep), netsim.TwoSided, sim)
}

// RecvReply blocks for a reply from src on tag.
func (c *Comm) RecvReply(src, tag int) (*RPCReply, error) {
	buf, err := c.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	return decodeReply(buf)
}

// Serve runs a request loop on tag until all clients shut down: each
// request charges perReq of service time before the handler runs, and an
// OpShutdown retires its sender. Handlers reply themselves (or not — the
// delegation write path is fire-and-forget); a handler error aborts the
// loop and is returned.
func (c *Comm) Serve(tag, clients int, perReq simtime.Duration, handler func(*RPCRequest) error) error {
	for remaining := clients; remaining > 0; {
		req, err := c.RecvRequest(AnySource, tag)
		if err != nil {
			return err
		}
		c.clock().Advance(perReq)
		if req.Op == OpShutdown {
			remaining--
			continue
		}
		if err := handler(req); err != nil {
			return fmt.Errorf("mpi: serve tag %d: %s from rank %d: %w", tag, req.Op, req.Client, err)
		}
	}
	return nil
}
