package mpi

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/tcio/tcio/internal/simtime"
)

// timeBarrier coordinates collective operations. All ranks arrive with a
// value and their current clock; the last arrival combines the values; all
// leave with the combined result and a clock advanced to the latest arrival
// plus the collective's cost. Epochs recycle, so the barrier serves any
// number of consecutive collectives (which, as in MPI, every rank must
// invoke in the same order).
//
// The arrival path is lock-free: each rank deposits its value and clock in
// slots it alone writes, then increments the arrival counter. The counter
// reaching n elects the incrementing rank the combiner; it alone folds the
// clocks, evaluates the reduction, installs the next epoch, and only then
// closes the release channel. With thousands of rank goroutines arriving
// nearly at once, the previous global mutex serialized every arrival; now
// the only shared write is one atomic add per rank.
type timeBarrier struct {
	n   int
	cur atomic.Pointer[collEpoch]
}

type collEpoch struct {
	release chan struct{}
	vals    []interface{}  // rank-owned deposit slots
	times   []simtime.Time // rank-owned arrival clocks
	arrived atomic.Int32
	result  interface{}
	final   simtime.Time
}

func newTimeBarrier(n int) *timeBarrier {
	b := &timeBarrier{n: n}
	b.cur.Store(newCollEpoch(n))
	return b
}

func newCollEpoch(n int) *collEpoch {
	return &collEpoch{
		release: make(chan struct{}),
		vals:    make([]interface{}, n),
		times:   make([]simtime.Time, n),
	}
}

// collect runs one collective. combine (may be nil) is evaluated once, by
// the last-arriving rank; cost is the collective's virtual-time duration
// beyond the synchronization point.
//
// Epoch lifetime: a rank can only reach epoch k+1 after being released from
// epoch k, and the combiner installs k+1 before closing k's release channel,
// so the pointer loaded here is always the epoch this rank's collective
// belongs to. The atomic add orders each rank's slot writes before the
// combiner's reads; the channel close orders the combiner's result/final
// writes before the waiters' reads.
func (c *Comm) collect(val interface{}, combine func([]interface{}) interface{}, cost simtime.Duration) (interface{}, error) {
	if err := c.abortedErr(); err != nil {
		return nil, err
	}
	b := c.w.barrier
	e := b.cur.Load()
	e.vals[c.rank] = val
	e.times[c.rank] = c.clock().Now()

	if int(e.arrived.Add(1)) == b.n {
		maxT := e.times[0]
		for _, t := range e.times[1:] {
			if t > maxT {
				maxT = t
			}
		}
		if combine != nil {
			e.result = combine(e.vals)
		}
		e.final = maxT.Add(cost)
		b.cur.Store(newCollEpoch(b.n))
		close(e.release)
	} else {
		select {
		case <-e.release:
		case <-c.w.aborted:
			return nil, ErrAborted
		}
	}
	c.clock().AdvanceTo(e.final)
	return e.result, nil
}

// treeCost models a binomial-tree collective: log2(P) rounds, each a short
// message of msgBytes simulated bytes.
func (c *Comm) treeCost(msgBytes int64) simtime.Duration {
	p := c.w.nprocs
	if p <= 1 {
		return 0
	}
	rounds := bits.Len(uint(p - 1)) // ceil(log2 p)
	per := c.w.machine.Net.Latency + c.w.machine.Net.SetupTwoSided +
		simtime.BytesDuration(msgBytes, c.w.machine.Net.NICBandwidth)
	return simtime.Duration(rounds) * per
}

// Barrier blocks until every rank reaches it; clocks leave synchronized.
// TCIO's flush and close use this (tcio_flush "invokes MPI_Barrier").
func (c *Comm) Barrier() error {
	_, err := c.collect(nil, nil, c.treeCost(8))
	return err
}

// ReduceOp names a reduction operator.
type ReduceOp int

// Supported reductions.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// AllreduceInt64 combines one int64 per rank with op and returns the result
// to all ranks. OCIO uses Min/Max to establish the aggregate file domain.
func (c *Comm) AllreduceInt64(op ReduceOp, v int64) (int64, error) {
	res, err := c.collect(v, func(vals []interface{}) interface{} {
		acc := vals[0].(int64)
		for _, raw := range vals[1:] {
			x := raw.(int64)
			switch op {
			case OpSum:
				acc += x
			case OpMax:
				if x > acc {
					acc = x
				}
			case OpMin:
				if x < acc {
					acc = x
				}
			}
		}
		return acc
	}, c.treeCost(8)*2) // reduce + broadcast
	if err != nil {
		return 0, err
	}
	return res.(int64), nil
}

// AllgatherInt64 gathers one int64 from every rank, in rank order.
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	res, err := c.collect(v, func(vals []interface{}) interface{} {
		out := make([]int64, len(vals))
		for i, raw := range vals {
			out[i] = raw.(int64)
		}
		return out
	}, c.allgatherCost(8))
	if err != nil {
		return nil, err
	}
	return res.([]int64), nil
}

// ExscanInt64 returns the exclusive prefix sum of v across ranks: rank r
// receives the sum of values from ranks 0..r-1 (0 for rank 0). ART uses it
// to place each rank's records in the shared file.
func (c *Comm) ExscanInt64(v int64) (int64, error) {
	all, err := c.AllgatherInt64(v)
	if err != nil {
		return 0, err
	}
	var sum int64
	for r := 0; r < c.rank; r++ {
		sum += all[r]
	}
	return sum, nil
}

// allgatherCost models a ring allgather of perRankBytes from each rank.
func (c *Comm) allgatherCost(perRankBytes int64) simtime.Duration {
	p := c.w.nprocs
	if p <= 1 {
		return 0
	}
	per := c.w.machine.Net.Latency + c.w.machine.Net.SetupTwoSided +
		simtime.BytesDuration(c.w.machine.Scale(perRankBytes), c.w.machine.Net.NICBandwidth)
	return simtime.Duration(p-1) * per
}

// Bcast distributes root's payload to every rank. Every rank passes its
// local buf (ignored except at root) and receives the broadcast value.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.w.nprocs {
		return nil, fmt.Errorf("mpi: Bcast root %d of %d", root, c.w.nprocs)
	}
	var val interface{}
	if c.rank == root {
		buf := getBuf(len(data))
		copy(buf, data)
		val = buf
	}
	res, err := c.collect(val, func(vals []interface{}) interface{} {
		return vals[root]
	}, c.treeCost(c.w.machine.Scale(int64(len(data)))))
	if err != nil {
		return nil, err
	}
	out, _ := res.([]byte)
	return out, nil
}

// AllgatherBytes gathers each rank's (possibly differently sized) payload
// in rank order.
func (c *Comm) AllgatherBytes(data []byte) ([][]byte, error) {
	buf := getBuf(len(data))
	copy(buf, data)
	res, err := c.collect(buf, func(vals []interface{}) interface{} {
		out := make([][]byte, len(vals))
		for i, raw := range vals {
			out[i] = raw.([]byte)
		}
		return out
	}, c.allgatherCost(int64(len(data))))
	if err != nil {
		return nil, err
	}
	return res.([][]byte), nil
}

// SharedOnce is a collective that returns the same value to every rank;
// create is evaluated exactly once (by the last rank to arrive). I/O layers
// use it to establish shared bookkeeping structures, much as MPI codes hang
// shared state off a window or a communicator attribute.
func (c *Comm) SharedOnce(create func() interface{}) (interface{}, error) {
	return c.collect(nil, func([]interface{}) interface{} { return create() }, c.treeCost(16))
}

// internal tag space (user tags must be >= 0; -1 is AnyTag).
const tagAlltoall = -2

// Alltoallv sends send[i] to rank i and returns the payloads received from
// every rank (recv[i] from rank i). It is implemented exactly as the paper
// describes ROMIO's exchange phase: post all receives, then all sends, then
// wait — the all-at-once burst whose congestion TCIO avoids.
func (c *Comm) Alltoallv(send [][]byte) ([][]byte, error) {
	return c.AlltoallvSized(send, nil)
}

// AlltoallvSized is Alltoallv with per-destination billed simulated sizes
// (nil bills scaled payload lengths). The I/O layers use it to bill their
// exchange messages as payload plus a compact descriptor rather than the
// full in-memory encoding.
func (c *Comm) AlltoallvSized(send [][]byte, simBytes []int64) ([][]byte, error) {
	p := c.w.nprocs
	if len(send) != p {
		return nil, fmt.Errorf("mpi: Alltoallv with %d buffers for %d ranks", len(send), p)
	}
	if simBytes != nil && len(simBytes) != p {
		return nil, fmt.Errorf("mpi: Alltoallv with %d sizes for %d ranks", len(simBytes), p)
	}
	recvReqs := make([]*Request, p)
	for src := 0; src < p; src++ {
		recvReqs[src] = c.Irecv(src, tagAlltoall)
	}
	for dst := 0; dst < p; dst++ {
		billed := int64(-1)
		if simBytes != nil {
			billed = simBytes[dst]
		}
		if r := c.IsendSized(dst, tagAlltoall, send[dst], billed); r.err != nil {
			return nil, r.err
		}
	}
	out := make([][]byte, p)
	for src := 0; src < p; src++ {
		data, err := recvReqs[src].Wait()
		if err != nil {
			return nil, err
		}
		out[src] = data
	}
	return out, nil
}
