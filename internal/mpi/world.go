// Package mpi is an in-process message-passing runtime with MPI semantics,
// built so the TCIO algorithms can run unmodified in a Go simulator.
//
// Ranks are goroutines. The runtime provides blocking and nonblocking
// point-to-point communication, the collectives the paper's I/O stacks
// need (barrier, broadcast, reductions, gathers, all-to-all), and MPI-2
// passive-target one-sided communication (windows with lock/unlock,
// put/get, and indexed-datatype transfers).
//
// Data movement is real: bytes are copied between rank buffers, so tests
// can verify results exactly. Time is virtual: each rank owns a
// simtime.Clock, messages carry timestamps through the netsim network
// model, and shared hardware contention turns into elapsed virtual time.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes one parallel job.
type Config struct {
	// Procs is the number of MPI ranks.
	Procs int
	// Machine is the simulated cluster; the zero value defaults to Lonestar.
	Machine cluster.Machine
	// FS is the shared parallel file system; nil creates one with defaults
	// scaled by the machine's ByteScale.
	FS *pfs.FileSystem
	// EnforceMemory enables the per-node simulated memory accountant.
	// When false, allocations always succeed (most unit tests).
	EnforceMemory bool
	// Faults, when non-nil, arms chaos injection across the job's hardware:
	// it is attached to the memory accountant and — unless Machine.Net
	// already carries its own — to the interconnect. The file system keeps
	// its own pfs.Config.Faults (callers usually share one injector).
	Faults *faults.Injector
	// AllocRetry overrides the retry policy Malloc/Reserve use to absorb
	// transient allocation pressure; nil means faults.DefaultRetryPolicy.
	AllocRetry *faults.RetryPolicy
}

// World is the shared state of one job: the network, the file system, the
// memory accountant, and all rank mailboxes and windows.
type World struct {
	nprocs  int
	machine cluster.Machine
	net     *netsim.Network
	fs      *pfs.FileSystem
	mem     *cluster.MemTracker

	faults       *faults.Injector
	allocRetry   faults.RetryPolicy
	allocRetries atomic.Int64

	ranks []*rankState

	abortOnce sync.Once
	aborted   chan struct{}

	barrier *timeBarrier

	winMu   sync.Mutex
	windows []*winGlobal
}

// rankState is the per-rank runtime state.
type rankState struct {
	rank  int
	clock *simtime.Clock
	box   *mailbox
}

// Comm is rank's handle to the world — the equivalent of
// (MPI_COMM_WORLD, my_rank). All Comm methods must be called only from the
// owning rank's goroutine.
type Comm struct {
	w    *World
	rank int
}

// Report summarizes a completed run.
type Report struct {
	// MaxTime is the latest virtual instant reached by any rank: the
	// job's makespan.
	MaxTime simtime.Time
	// RankTimes holds each rank's final clock.
	RankTimes []simtime.Time
	// Net is the network activity of the run.
	Net netsim.Stats
	// FS is the file system activity of the run.
	FS pfs.Stats
	// PeakMemory is the largest simulated per-rank allocation high-water
	// mark, in simulated bytes.
	PeakMemory int64
	// AllocRetries counts Malloc/Reserve retries that absorbed transient
	// allocation pressure (chaos runs only).
	AllocRetries int64
}

// Run executes fn on every rank of a fresh world and waits for completion.
// The first error (by rank order) is returned; a panicking rank aborts the
// world so blocked peers fail instead of deadlocking.
func Run(cfg Config, fn func(*Comm) error) (Report, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return Report{}, err
	}
	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d panicked: %v\n%s", r, p, debug.Stack())
					w.abort()
				}
			}()
			if err := fn(&Comm{w: w, rank: r}); err != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, err)
				w.abort()
			}
		}(r)
	}
	wg.Wait()

	rep := w.report()
	for _, e := range errs {
		if e != nil {
			return rep, e
		}
	}
	return rep, nil
}

func newWorld(cfg Config) (*World, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpi: Procs = %d", cfg.Procs)
	}
	m := cfg.Machine
	if m.Nodes == 0 {
		m = cluster.Lonestar()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if need := m.NodesFor(cfg.Procs); need > m.Nodes {
		return nil, fmt.Errorf("mpi: %d ranks need %d nodes, machine has %d", cfg.Procs, need, m.Nodes)
	}
	fs := cfg.FS
	if fs == nil {
		fscfg := pfs.DefaultConfig()
		fscfg.ByteScale = m.ByteScale
		fscfg.Faults = cfg.Faults
		fs = pfs.New(fscfg)
	}
	var mem *cluster.MemTracker
	if cfg.EnforceMemory {
		mem = cluster.NewMemTracker(m, cfg.Procs)
	} else {
		mem = cluster.Unlimited()
	}
	mem.SetFaults(cfg.Faults)
	if cfg.Faults != nil && m.Net.Faults == nil {
		m.Net.Faults = cfg.Faults
	}
	allocRetry := faults.DefaultRetryPolicy()
	if cfg.AllocRetry != nil {
		allocRetry = *cfg.AllocRetry
	}
	w := &World{
		nprocs:     cfg.Procs,
		machine:    m,
		net:        netsim.New(m.NodesFor(cfg.Procs), m.Net),
		fs:         fs,
		mem:        mem,
		faults:     cfg.Faults,
		allocRetry: allocRetry,
		aborted:    make(chan struct{}),
		barrier:    newTimeBarrier(cfg.Procs),
	}
	w.ranks = make([]*rankState, cfg.Procs)
	for r := range w.ranks {
		w.ranks[r] = &rankState{
			rank:  r,
			clock: simtime.NewClock(),
			box:   newMailbox(),
		}
	}
	return w, nil
}

// ErrAborted is returned by blocking operations when the world has been
// torn down because some rank failed.
var ErrAborted = errors.New("mpi: world aborted")

func (w *World) abort() {
	w.abortOnce.Do(func() {
		close(w.aborted)
		for _, rs := range w.ranks {
			rs.box.wake()
		}
		w.winMu.Lock()
		for _, g := range w.windows {
			for _, l := range g.locks {
				l.wake()
			}
		}
		w.winMu.Unlock()
	})
}

func (w *World) report() Report {
	rep := Report{
		RankTimes: make([]simtime.Time, w.nprocs),
		Net:       w.net.Stats(),
		FS:        w.fs.Stats(),
	}
	for r, rs := range w.ranks {
		rep.RankTimes[r] = rs.clock.Now()
		if rs.clock.Now() > rep.MaxTime {
			rep.MaxTime = rs.clock.Now()
		}
	}
	rep.PeakMemory = w.mem.MaxPeak()
	rep.AllocRetries = w.allocRetries.Load()
	return rep
}

// Rank reports the calling rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in the world.
func (c *Comm) Size() int { return c.w.nprocs }

// Node reports the compute node hosting this rank.
func (c *Comm) Node() int { return c.w.machine.NodeOf(c.rank) }

// Machine returns the cluster description.
func (c *Comm) Machine() cluster.Machine { return c.w.machine }

// FS returns the shared parallel file system.
func (c *Comm) FS() *pfs.FileSystem { return c.w.fs }

// Faults returns the job's fault injector (nil when chaos is off). I/O
// libraries consult it for sites the hardware layers cannot model
// themselves (e.g. one-sided put drops retried by the library).
func (c *Comm) Faults() *faults.Injector { return c.w.faults }

// Now reports the rank's current virtual time.
func (c *Comm) Now() simtime.Time { return c.clock().Now() }

// Compute charges d of local computation to the rank's clock.
func (c *Comm) Compute(d simtime.Duration) { c.clock().Advance(d) }

// AdvanceTo moves the rank's clock forward to t if t is in the future —
// used by I/O layers that learn completion times from the file system.
func (c *Comm) AdvanceTo(t simtime.Time) { c.clock().AdvanceTo(t) }

func (c *Comm) clock() *simtime.Clock { return c.w.ranks[c.rank].clock }

// Malloc allocates n real bytes, charging n*ByteScale simulated bytes to
// this rank's node memory share. It fails with an error wrapping
// cluster.ErrOutOfMemory when the share is exhausted — the mechanism behind
// the paper's Fig. 6/7 OCIO failure at the 48 GB dataset. Transient
// injected allocation pressure is absorbed by the world's AllocRetry
// policy, backing off in virtual time.
func (c *Comm) Malloc(n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("mpi: Malloc(%d)", n)
	}
	if err := c.alloc(c.w.machine.Scale(n)); err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// Reserve charges simulated memory without allocating real bytes — for
// accounting structures whose real size is deliberately smaller than their
// simulated size (for example an application's scaled-down arrays).
func (c *Comm) Reserve(simBytes int64) error {
	return c.alloc(simBytes)
}

// alloc charges simulated memory, retrying transient injected pressure
// with the world's policy. Permanent failures (genuine OOM) pass through
// untouched.
func (c *Comm) alloc(simBytes int64) error {
	pol := c.w.allocRetry
	for attempt := 0; ; attempt++ {
		err := c.w.mem.Alloc(c.rank, simBytes)
		if err == nil || !faults.IsTransient(err) {
			return err
		}
		if attempt >= pol.MaxRetries {
			return faults.Exhausted(attempt, err)
		}
		c.clock().Advance(pol.Backoff(attempt + 1))
		c.w.allocRetries.Add(1)
	}
}

// Free returns the simulated memory held by buf to this rank's share.
func (c *Comm) Free(buf []byte) {
	c.w.mem.Free(c.rank, c.w.machine.Scale(int64(len(buf))))
}

// Release returns previously Reserved simulated bytes.
func (c *Comm) Release(simBytes int64) {
	c.w.mem.Free(c.rank, simBytes)
}

// MemUsed reports the rank's current simulated memory footprint.
func (c *Comm) MemUsed() int64 { return c.w.mem.Used(c.rank) }

// aborted reports whether the world has been torn down.
func (c *Comm) abortedErr() error {
	select {
	case <-c.w.aborted:
		return ErrAborted
	default:
		return nil
	}
}
