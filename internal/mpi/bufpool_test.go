package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/faults"
)

func TestGetBufSizeClasses(t *testing.T) {
	if got := getBuf(0); got != nil {
		t.Fatalf("getBuf(0) = %v, want nil", got)
	}
	for _, n := range []int{1, 63, 64, 65, 4096, 4097, 1 << 20, (1 << 26) - 1, 1 << 26} {
		b := getBuf(n)
		if len(b) != n {
			t.Fatalf("getBuf(%d): len %d", n, len(b))
		}
		if c := cap(b); c < n || c&(c-1) != 0 || c < 1<<minPoolShift {
			t.Fatalf("getBuf(%d): cap %d not a covering pool class", n, c)
		}
		recycleBuf(b)
	}
	// Above the largest class the heap serves directly; recycling such a
	// buffer (or any odd-capacity caller slice) is a silent no-op.
	big := getBuf(1<<26 + 1)
	if len(big) != 1<<26+1 {
		t.Fatalf("oversize len %d", len(big))
	}
	recycleBuf(big)
	recycleBuf(make([]byte, 100))
}

func TestRecycleReturnsToPool(t *testing.T) {
	b := getBuf(1000)
	for i := range b {
		b[i] = 0xAA
	}
	recycleBuf(b)
	// sync.Pool gives no reuse guarantee, so only check that a subsequent
	// get of the same class is well-formed even if it is the recycled one.
	c := getBuf(700)
	if len(c) != 700 || cap(c) != 1024 {
		t.Fatalf("after recycle: len %d cap %d", len(c), cap(c))
	}
}

// TestRecycledPayloadsStayCorrect hammers send/recv with the receiver
// recycling every delivered payload: reused staging must never leak one
// message's bytes into another.
func TestRecycledPayloadsStayCorrect(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		const rounds = 200
		if c.Rank() == 0 {
			buf := make([]byte, 512)
			for i := 0; i < rounds; i++ {
				for j := range buf {
					buf[j] = byte(i + j)
				}
				if err := c.Send(1, 7, buf[:128+(i%3)*128]); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < rounds; i++ {
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(got) != 128+(i%3)*128 {
				return fmt.Errorf("round %d: len %d", i, len(got))
			}
			for j, v := range got {
				if v != byte(i+j) {
					return fmt.Errorf("round %d byte %d: got %#x want %#x", i, j, v, byte(i+j))
				}
			}
			c.Recycle(got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolingKeepsFaultIdentity runs the same chaos-armed world twice —
// first with cold pools, then with the pools warmed by the first run — and
// checks that injection, retry, and message counts are identical. Staging
// buffers are real memory only: never charged to the simulated-memory
// accountant, never a fault site, so reuse must be invisible to the
// simulation.
func TestPoolingKeepsFaultIdentity(t *testing.T) {
	m := cluster.Lonestar()
	m.CoresPerNode = 1 // force every message across the interconnect
	world := func() (injected, setupRetries, messages int64) {
		inj := faults.New(42).Set(faults.SiteNetSetup, faults.Rule{Prob: 0.1})
		rep, err := Run(Config{Procs: 4, Machine: m, Faults: inj}, func(c *Comm) error {
			payload := bytes.Repeat([]byte{byte(c.Rank())}, 300)
			for i := 0; i < 20; i++ {
				if _, err := c.Bcast(0, payload); err != nil {
					return err
				}
				got, err := c.AllgatherBytes(payload[:100+i])
				if err != nil {
					return err
				}
				_ = got
				dst := (c.Rank() + 1) % c.Size()
				src := (c.Rank() + c.Size() - 1) % c.Size()
				if err := c.Send(dst, i, payload); err != nil {
					return err
				}
				in, err := c.Recv(src, i)
				if err != nil {
					return err
				}
				c.Recycle(in)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj.TotalInjected(), rep.Net.SetupRetries, rep.Net.Messages
	}
	i1, r1, m1 := world()
	i2, r2, m2 := world()
	if i1 != i2 || r1 != r2 || m1 != m2 {
		t.Fatalf("cold pools: injected=%d retries=%d msgs=%d; warm pools: %d/%d/%d",
			i1, r1, m1, i2, r2, m2)
	}
	if i1 == 0 {
		t.Fatal("chaos run injected nothing; the identity check is vacuous")
	}
}

// benchPingPong measures allocations of the p2p staging path; recycle
// toggles whether the receiver returns payloads to the pool.
func benchPingPong(b *testing.B, recycle bool) {
	b.ReportAllocs()
	_, err := Run(testCfg(2), func(c *Comm) error {
		peer := 1 - c.Rank()
		payload := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(peer, 0, payload); err != nil {
					return err
				}
				got, err := c.Recv(peer, 1)
				if err != nil {
					return err
				}
				if recycle {
					c.Recycle(got)
				}
			} else {
				got, err := c.Recv(peer, 0)
				if err != nil {
					return err
				}
				if recycle {
					c.Recycle(got)
				}
				if err := c.Send(peer, 1, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPongRecycle(b *testing.B)   { benchPingPong(b, true) }
func BenchmarkPingPongNoRecycle(b *testing.B) { benchPingPong(b, false) }
