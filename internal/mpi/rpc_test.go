package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/simtime"
)

func TestRPCCodecRoundTrip(t *testing.T) {
	cases := []RPCRequest{
		{Op: OpOpen, Handle: 0, Seq: 0},
		{Op: OpWrite, Handle: 3, Seq: 41, Off: 1 << 30, Len: 5, Data: []byte("hello")},
		{Op: OpRead, Handle: 1, Seq: -1, Off: 7, Len: 4096},
		{Op: OpReadIntent, Handle: 2, Seq: 3, Data: []byte{0, 0, 0, 0, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0, 0, 0}},
		{Op: OpShutdown},
	}
	for _, in := range cases {
		out, err := decodeRequest(encodeRequest(&in))
		if err != nil {
			t.Fatalf("%s: %v", in.Op, err)
		}
		if out.Op != in.Op || out.Handle != in.Handle || out.Seq != in.Seq ||
			out.Off != in.Off || out.Len != in.Len || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("%s round-trip: got %+v want %+v", in.Op, out, in)
		}
	}
	reps := []RPCReply{
		{OK: true, Seq: 9, Data: []byte{1, 2, 3}},
		{OK: false, Err: "pfs: boom", Seq: 2},
		{OK: false, Code: RPCErrExhausted, Err: "retries exhausted", Seq: 4},
		{OK: false, Code: RPCErrGeneric, Err: "other", Seq: 5, Data: []byte{9}},
		{},
	}
	for i, in := range reps {
		out, err := decodeReply(encodeReply(&in))
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if out.OK != in.OK || out.Code != in.Code || out.Err != in.Err ||
			out.Seq != in.Seq || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("reply %d round-trip: got %+v want %+v", i, out, in)
		}
	}
}

func TestRPCCodecRejectsCorrupt(t *testing.T) {
	if _, err := decodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated request decoded")
	}
	buf := encodeRequest(&RPCRequest{Op: OpWrite, Data: []byte("abcd")})
	if _, err := decodeRequest(buf[:len(buf)-1]); err == nil {
		t.Fatal("short payload decoded")
	}
	if _, err := decodeReply([]byte{0}); err == nil {
		t.Fatal("truncated reply decoded")
	}
	rbuf := encodeReply(&RPCReply{Err: "x", Data: []byte("yz")})
	if _, err := decodeReply(rbuf[:len(rbuf)-1]); err == nil {
		t.Fatal("short reply decoded")
	}
}

// TestRPCServe drives a 3-rank world: rank 2 serves, ranks 0-1 each send
// two writes, one synchronous read, and a shutdown. The server must see
// the true envelope source as Client and per-client sequence order must
// survive the any-source loop.
func TestRPCServe(t *testing.T) {
	const tag = 77
	var (
		mu   sync.Mutex
		seen []string
	)
	_, err := Run(Config{Procs: 3, Machine: cluster.Lonestar()}, func(c *Comm) error {
		if c.Rank() == 2 {
			return c.Serve(tag, 2, 500*simtime.Nanosecond, func(req *RPCRequest) error {
				mu.Lock()
				seen = append(seen, fmt.Sprintf("%s c%d seq%d off%d %q",
					req.Op, req.Client, req.Seq, req.Off, req.Data))
				mu.Unlock()
				if req.Op == OpRead {
					return c.SendReply(req.Client, tag+1, &RPCReply{
						OK: true, Seq: req.Seq, Data: []byte{byte(req.Client), byte(req.Off)},
					})
				}
				return nil
			})
		}
		me := c.Rank()
		for s := 0; s < 2; s++ {
			if err := c.SendRequest(2, tag, &RPCRequest{
				Op: OpWrite, Seq: int64(s), Off: int64(me*100 + s),
				Data: []byte{byte(me), byte(s)},
			}); err != nil {
				return err
			}
		}
		if err := c.SendRequest(2, tag, &RPCRequest{Op: OpRead, Seq: 2, Off: int64(me)}); err != nil {
			return err
		}
		rep, err := c.RecvReply(2, tag+1)
		if err != nil {
			return err
		}
		if !rep.OK || rep.Seq != 2 || !bytes.Equal(rep.Data, []byte{byte(me), byte(me)}) {
			return fmt.Errorf("rank %d: bad reply %+v", me, rep)
		}
		return c.SendRequest(2, tag, &RPCRequest{Op: OpShutdown})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("server handled %d requests, want 6: %v", len(seen), seen)
	}
	// Arrival interleaving across clients is scheduler-dependent, but each
	// client's own stream is FIFO: sorting the log restores a canonical view.
	sort.Strings(seen)
	want := []string{
		`read c0 seq2 off0 ""`,
		`read c1 seq2 off1 ""`,
		`write c0 seq0 off0 "\x00\x00"`,
		`write c0 seq1 off1 "\x00\x01"`,
		`write c1 seq0 off100 "\x01\x00"`,
		`write c1 seq1 off101 "\x01\x01"`,
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("request log mismatch at %d:\ngot  %q\nwant %q", i, seen[i], want[i])
		}
	}
}

// TestTryRecvRequest pins the non-blocking receive path a scheduling
// server loop depends on: a miss returns immediately without consuming
// anything, a hit matches FIFO order and fills Client from the envelope
// source exactly like RecvRequest.
func TestTryRecvRequest(t *testing.T) {
	const tag = 88
	_, err := Run(Config{Procs: 2, Machine: cluster.Lonestar()}, func(c *Comm) error {
		if c.Rank() == 0 {
			// Nothing sent yet from rank 1's perspective until the barrier.
			for s := 0; s < 3; s++ {
				if err := c.SendRequest(1, tag, &RPCRequest{Op: OpWrite, Seq: int64(s)}); err != nil {
					return err
				}
			}
			return c.Barrier()
		}
		if req, ok, err := c.TryRecvRequest(AnySource, tag+1); err != nil || ok || req != nil {
			return fmt.Errorf("empty tryTake: req=%v ok=%v err=%v", req, ok, err)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// All three requests are buffered now; TryRecvRequest must drain
		// them in FIFO order and then report a miss.
		for s := 0; s < 3; s++ {
			req, ok, err := c.TryRecvRequest(AnySource, tag)
			if err != nil {
				return err
			}
			if !ok || req.Client != 0 || req.Seq != int64(s) {
				return fmt.Errorf("drain %d: ok=%v req=%+v", s, ok, req)
			}
		}
		if _, ok, err := c.TryRecvRequest(AnySource, tag); err != nil || ok {
			return fmt.Errorf("drained mailbox: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRPCServeHandlerError pins that a handler failure aborts the loop
// with the op and source rank in the error.
func TestRPCServeHandlerError(t *testing.T) {
	boom := errors.New("domain exploded")
	_, err := Run(Config{Procs: 2, Machine: cluster.Lonestar()}, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Serve(5, 1, 0, func(req *RPCRequest) error { return boom })
		}
		return c.SendRequest(1, 5, &RPCRequest{Op: OpFlush})
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped handler error", err)
	}
	if !strings.Contains(err.Error(), "flush from rank 0") {
		t.Fatalf("err %q lacks op/source context", err)
	}
}
