package mpi

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

// This file extends the one-sided layer with the node-aggregation
// primitives: a combined put that carries several origin ranks' run lists
// as one wire message, and the intra-node handoff that gets those run
// lists to the combining rank in the first place.

// PutGroup is one origin rank's contribution to a combined put: the window
// runs it wrote and their bytes concatenated in run order. Origin is pure
// provenance — it does not affect the transfer's cost or placement, but it
// lets callers keep per-rank accounting exact even though the wire sees a
// single message.
type PutGroup struct {
	Origin int
	Segs   []datatype.Segment
	Data   []byte
}

// PutGrouped merges several origins' run lists into one combined put to
// target — the runtime equivalent of a node leader building one
// MPI_Type_indexed datatype over everything its node wrote to a segment
// and issuing a single MPI_Put. Groups are applied in slice order, so on
// overlapping runs the later group wins; callers order groups canonically
// (origin rank ascending) to keep the result schedule-independent. The
// wire is billed one message of the groups' coalesced union: setup once,
// per-block CPU for the merged block list, and the union's byte total
// (overlap between groups is transferred once, as a real derived datatype
// would).
func (w *Win) PutGrouped(target int, groups []PutGroup) error {
	_, err := w.PutGroupedAsync(target, groups)
	return err
}

// PutGroupedAsync is PutGrouped returning an Rput-style handle; see
// PutSegmentsAsync.
func (w *Win) PutGroupedAsync(target int, groups []PutGroup) (*PutHandle, error) {
	h, err := w.epoch(target, "PutGrouped")
	if err != nil {
		return nil, err
	}
	buf := w.g.bufs[target]
	var union []extent.Extent
	for _, g := range groups {
		var total int64
		for _, s := range g.Segs {
			if s.Off < 0 || s.Off+s.Len > int64(len(buf)) {
				return nil, fmt.Errorf("mpi: PutGrouped origin %d segment [%d,%d) outside window of %d bytes",
					g.Origin, s.Off, s.Off+s.Len, len(buf))
			}
			total += s.Len
		}
		if total != int64(len(g.Data)) {
			return nil, fmt.Errorf("mpi: PutGrouped origin %d: %d bytes for segments totalling %d",
				g.Origin, len(g.Data), total)
		}
		union = append(union, g.Segs...)
	}
	mu := &w.g.datamu[target]
	mu.Lock()
	for _, g := range groups {
		pos := int64(0)
		for _, s := range g.Segs {
			copy(buf[s.Off:s.Off+s.Len], g.Data[pos:pos+s.Len])
			pos += s.Len
		}
	}
	mu.Unlock()
	blocks := extent.Coalesce(union)
	depart := w.c.clock().Advance(sendOverhead + simtime.Duration(len(blocks))*perSegmentCPU)
	arrival := w.c.w.net.Transfer(
		w.c.w.machine.NodeOf(w.c.rank), w.c.w.machine.NodeOf(target),
		w.c.w.machine.Scale(extent.Total(blocks)), depart, w.class)
	if arrival > h.maxArrival {
		h.maxArrival = arrival
	}
	return &PutHandle{c: w.c, arrival: arrival}, nil
}

// IntraNodeCopy charges the virtual-time cost of handing realBytes to a
// co-located rank over the node's shared memory — the netsim local path
// (setup plus MemBandwidth), never the NIC — and returns the instant the
// bytes are in place at the peer. The byte movement itself is the caller's
// (the aggregation tier deposits into shared staging directly); this call
// accounts for its time and its appearance in the network's local-message
// counters. It fails when the peer lives on a different node.
func (c *Comm) IntraNodeCopy(peer int, realBytes int64) (simtime.Time, error) {
	if err := c.abortedErr(); err != nil {
		return 0, err
	}
	if peer < 0 || peer >= c.w.nprocs {
		return 0, fmt.Errorf("mpi: IntraNodeCopy to rank %d of %d", peer, c.w.nprocs)
	}
	src := c.w.machine.NodeOf(c.rank)
	if dst := c.w.machine.NodeOf(peer); dst != src {
		return 0, fmt.Errorf("mpi: IntraNodeCopy rank %d (node %d) to rank %d (node %d) crosses nodes",
			c.rank, src, peer, dst)
	}
	depart := c.clock().Advance(sendOverhead)
	return c.w.net.Transfer(src, src, c.w.machine.Scale(realBytes), depart, netsim.OneSided), nil
}
