package mpi

import (
	"math/bits"
	"sync"
)

// The runtime stages a private copy of every message payload (eager
// buffering: the sender may reuse its buffer the instant Send returns).
// Those copies are the hottest real-memory allocation in the simulator —
// one per Send/Bcast/Allgather payload — so they are drawn from per-size
// free lists instead of the heap. Pooling is purely a real-memory
// optimization: staging copies were never charged to the simulated-memory
// accountant and plain allocation is not a fault site, so request and
// fault identity are byte-for-byte unchanged (see BenchmarkPingPong*).
//
// Buffers re-enter the pool only through Comm.Recycle: the runtime cannot
// know when a receiver is done with a delivered payload, so reclamation is
// the application's opt-in.

const (
	// minPoolShift is the smallest pooled size class (64 B); tinier
	// payloads round up to it.
	minPoolShift = 6
	// maxPoolShift is the largest pooled size class (64 MiB); larger
	// payloads fall back to the heap.
	maxPoolShift = 26
)

var msgPools [maxPoolShift - minPoolShift + 1]sync.Pool

// getBuf returns a length-n buffer whose capacity is the power-of-two size
// class covering n. Callers overwrite all n bytes, so recycled contents
// never leak between messages.
func getBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	shift := bits.Len(uint(n - 1))
	if shift < minPoolShift {
		shift = minPoolShift
	}
	if shift > maxPoolShift {
		return make([]byte, n)
	}
	if v := msgPools[shift-minPoolShift].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<shift)
}

// recycleBuf returns a buffer to its size-class pool. Only buffers whose
// capacity is exactly a pool class are accepted — that is every buffer
// getBuf handed out, and excludes arbitrary caller slices.
func recycleBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	msgPools[bits.TrailingZeros(uint(c))-minPoolShift].Put(&b)
}

// GetBuf hands out a length-n buffer from the runtime's size-classed
// staging pools — the same free lists the message path draws from — for
// callers outside the package that stage transient I/O buffers (the
// delegation tier's read and epoch staging). The contents are stale pool
// bytes; callers must overwrite every byte they expose.
func GetBuf(n int) []byte { return getBuf(n) }

// RecycleBuf returns a GetBuf buffer to its pool. The caller must be the
// buffer's sole remaining owner.
func RecycleBuf(b []byte) { recycleBuf(b) }

// Recycle returns a delivered payload to the runtime's staging-buffer pool.
// The caller must be the payload's sole owner: point-to-point payloads
// (Recv, Request.Wait, Alltoallv) are delivered to exactly one rank and are
// safe to recycle once their bytes are consumed; Bcast and AllgatherBytes
// results are shared by every rank and must never be recycled. Recycling
// does not touch the virtual-time or fault models.
func (c *Comm) Recycle(buf []byte) { recycleBuf(buf) }
