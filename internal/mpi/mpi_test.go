package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/simtime"
)

// testCfg builds a small job configuration on the default machine.
func testCfg(procs int) Config {
	return Config{Procs: procs, Machine: cluster.Lonestar()}
}

func TestRunBasics(t *testing.T) {
	var count atomic.Int64
	rep, err := Run(testCfg(8), func(c *Comm) error {
		count.Add(1)
		if c.Size() != 8 {
			return fmt.Errorf("Size = %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			return fmt.Errorf("Rank = %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
	if len(rep.RankTimes) != 8 {
		t.Fatalf("RankTimes len %d", len(rep.RankTimes))
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Procs: 0}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	m := cluster.Lonestar()
	m.Nodes = 1 // 12 cores only
	if _, err := Run(Config{Procs: 64, Machine: m}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("oversubscribed machine accepted")
	}
}

func TestSendRecv(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("ping"))
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "ping" {
			return fmt.Errorf("got %q", data)
		}
		if c.Now() == 0 {
			return errors.New("receive did not advance virtual time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferIsCopied(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return nil
		}
		data, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("message mutated after send: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagAndSourceMatching(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(2, 5, []byte("from0"))
		case 1:
			return c.Send(2, 6, []byte("from1"))
		default:
			// Receive tag 6 first even though tag 5 may already be queued.
			d6, err := c.Recv(AnySource, 6)
			if err != nil {
				return err
			}
			if string(d6) != "from1" {
				return fmt.Errorf("tag 6 got %q", d6)
			}
			d5, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if string(d5) != "from0" {
				return fmt.Errorf("tag 5 got %q", d5)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	const n = 20
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 0, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			d, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if d[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %d", i, d[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	const p = 6
	_, err := Run(testCfg(p), func(c *Comm) error {
		recv := make([]*Request, p)
		for src := 0; src < p; src++ {
			recv[src] = c.Irecv(src, 1)
		}
		var sends []*Request
		for dst := 0; dst < p; dst++ {
			sends = append(sends, c.Isend(dst, 1, []byte{byte(c.Rank())}))
		}
		if err := WaitAll(sends...); err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			d, err := recv[src].Wait()
			if err != nil {
				return err
			}
			if d[0] != byte(src) {
				return fmt.Errorf("from %d got %d", src, d[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				return errors.New("send to rank 5 of 2 accepted")
			}
		}
		return nil
	})
	// Rank 0 reports no error itself; the invalid send must have errored
	// inside, not crashed.
	if err != nil && !strings.Contains(err.Error(), "accepted") {
		t.Fatal(err)
	}
}

func TestRankErrorPropagatesAndUnblocksPeers(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(testCfg(4), func(c *Comm) error {
		if c.Rank() == 3 {
			return boom
		}
		// These ranks block forever unless the abort wakes them.
		_, err := c.Recv(3, 0)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) && !errors.Is(err, ErrAborted) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPanicIsCaptured(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		_, err := c.Recv(1, 0)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") && !errors.Is(err, ErrAborted) {
		t.Fatalf("panic not reported: %v", err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	rep, err := Run(testCfg(5), func(c *Comm) error {
		// Rank 2 is the straggler.
		if c.Rank() == 2 {
			c.Compute(1_000_000)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rt := range rep.RankTimes {
		if rt < 1_000_000 {
			t.Fatalf("rank %d left barrier at %v, before the straggler", r, rt)
		}
	}
}

func TestAllreduce(t *testing.T) {
	_, err := Run(testCfg(7), func(c *Comm) error {
		v := int64(c.Rank() + 1)
		sum, err := c.AllreduceInt64(OpSum, v)
		if err != nil {
			return err
		}
		if sum != 28 {
			return fmt.Errorf("sum = %d", sum)
		}
		max, err := c.AllreduceInt64(OpMax, v)
		if err != nil {
			return err
		}
		if max != 7 {
			return fmt.Errorf("max = %d", max)
		}
		min, err := c.AllreduceInt64(OpMin, v)
		if err != nil {
			return err
		}
		if min != 1 {
			return fmt.Errorf("min = %d", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherInt64(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		got, err := c.AllgatherInt64(int64(c.Rank() * 10))
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != int64(i*10) {
				return fmt.Errorf("got[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	_, err := Run(testCfg(5), func(c *Comm) error {
		got, err := c.ExscanInt64(int64(c.Rank() + 1))
		if err != nil {
			return err
		}
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			return fmt.Errorf("rank %d: exscan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(testCfg(6), func(c *Comm) error {
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("root data")
		}
		got, err := c.Bcast(2, payload)
		if err != nil {
			return err
		}
		if string(got) != "root data" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastBadRoot(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		_, err := c.Bcast(9, nil)
		if err == nil {
			return errors.New("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBytes(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		all, err := c.AllgatherBytes(mine)
		if err != nil {
			return err
		}
		for r, b := range all {
			want := bytes.Repeat([]byte{byte(r)}, r+1)
			if !bytes.Equal(b, want) {
				return fmt.Errorf("from %d got %v", r, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const p = 5
	_, err := Run(testCfg(p), func(c *Comm) error {
		send := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			if recv[src][0] != byte(src) || recv[src][1] != byte(c.Rank()) {
				return fmt.Errorf("recv[%d] = %v", src, recv[src])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowPutGet(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 64))
		if err != nil {
			return err
		}
		// Everyone writes its rank into the next rank's window.
		target := (c.Rank() + 1) % 3
		if err := win.Lock(target, true); err != nil {
			return err
		}
		if err := win.Put(target, int64(c.Rank()), []byte{byte(c.Rank() + 1)}); err != nil {
			return err
		}
		if err := win.Unlock(target); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Read everyone's windows and verify.
		for t := 0; t < 3; t++ {
			writer := (t + 2) % 3
			if err := win.Lock(t, false); err != nil {
				return err
			}
			got, err := win.Get(t, int64(writer), 1)
			if err != nil {
				return err
			}
			if err := win.Unlock(t); err != nil {
				return err
			}
			if got[0] != byte(writer+1) {
				return fmt.Errorf("window %d byte %d = %d", t, writer, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowSegmentsRoundTrip(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 32))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			segs := []datatype.Segment{{Off: 0, Len: 2}, {Off: 10, Len: 3}}
			if err := win.Lock(1, true); err != nil {
				return err
			}
			if err := win.PutSegments(1, segs, []byte{1, 2, 3, 4, 5}); err != nil {
				return err
			}
			got, err := win.GetSegments(1, segs)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
				return fmt.Errorf("GetSegments = %v", got)
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			local := win.Local()
			want := []byte{1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 3, 4, 5}
			if !bytes.Equal(local[:13], want) {
				return fmt.Errorf("local window = %v", local[:13])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowAccessWithoutLockFails(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Put(1, 0, []byte{1}); err == nil {
				return errors.New("Put without lock accepted")
			}
			if _, err := win.Get(1, 0, 1); err == nil {
				return errors.New("Get without lock accepted")
			}
			if err := win.Unlock(1); err == nil {
				return errors.New("Unlock without lock accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowBoundsChecked(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Lock(1, true); err != nil {
				return err
			}
			if err := win.Put(1, 6, []byte{1, 2, 3}); err == nil {
				return errors.New("out-of-bounds put accepted")
			}
			if _, err := win.Get(1, -1, 2); err == nil {
				return errors.New("negative-offset get accepted")
			}
			return win.Unlock(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowExclusiveLockSerializesVirtualTime(t *testing.T) {
	rep, err := Run(testCfg(4), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 16))
		if err != nil {
			return err
		}
		// All ranks write to rank 0's window under exclusive locks.
		if err := win.Lock(0, true); err != nil {
			return err
		}
		c.Compute(1_000_000) // hold the lock for 1ms of virtual time
		if err := win.Put(0, int64(c.Rank()), []byte{1}); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Epochs serialize: the last holder cannot finish before 4 x 1ms.
	if rep.MaxTime < 4_000_000 {
		t.Fatalf("MaxTime = %v, want >= 4ms (serialized epochs)", rep.MaxTime)
	}
}

func TestDoubleLockSameTargetFails(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Lock(1, false); err != nil {
				return err
			}
			if err := win.Lock(1, false); err == nil {
				return errors.New("double lock accepted")
			}
			return win.Unlock(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMallocEnforcement(t *testing.T) {
	cfg := testCfg(12) // one full node: 2 GiB per rank
	cfg.EnforceMemory = true
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Malloc(1 << 20); err != nil {
			return fmt.Errorf("small alloc: %w", err)
		}
		if err := c.Reserve(4 << 30); !errors.Is(err, cluster.ErrOutOfMemory) {
			return fmt.Errorf("4 GiB reserve on 2 GiB share: err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMallocScaledCharging(t *testing.T) {
	m := cluster.Lonestar()
	m.ByteScale = 1 << 20 // 1 MiB simulated per real byte
	cfg := Config{Procs: 12, Machine: m, EnforceMemory: true}
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		// 4 KiB real = 4 GiB simulated > 2 GiB share.
		if _, err := c.Malloc(4 << 10); !errors.Is(err, cluster.ErrOutOfMemory) {
			return fmt.Errorf("scaled alloc should OOM, err = %v", err)
		}
		// 1 KiB real = 1 GiB simulated: fits.
		buf, err := c.Malloc(1 << 10)
		if err != nil {
			return err
		}
		c.Free(buf)
		if got := c.MemUsed(); got != 0 {
			return fmt.Errorf("MemUsed = %d after free", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportTimes(t *testing.T) {
	rep, err := Run(testCfg(3), func(c *Comm) error {
		c.Compute(simtime.Duration(1000 * (c.Rank() + 1)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxTime != rep.RankTimes[2] {
		t.Fatalf("MaxTime %v != slowest rank %v", rep.MaxTime, rep.RankTimes[2])
	}
}

func TestFSSharedAcrossRanks(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		f := c.FS().Open("shared.dat")
		if c.Rank() == 0 {
			if _, err := f.WriteAt(c.Node(), 0, []byte("abc"), c.Now()); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		got := make([]byte, 3)
		if _, err := f.ReadAt(c.Node(), 0, got, c.Now()); err != nil {
			return err
		}
		if string(got) != "abc" {
			return fmt.Errorf("rank %d read %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
