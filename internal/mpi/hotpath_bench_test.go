package mpi

// Host hot-path micro-benchmarks (size-swept per SNIPPETS.md Snippet 2):
// the collective barrier under growing rank counts and mailbox matching
// under growing queue depths. These measure *host* wall-clock cost — the
// virtual-time results are pinned elsewhere and must not change.

import (
	"fmt"
	"testing"
)

// BenchmarkBarrier crosses one collective barrier per op at each rank
// count. Bytes are rank-arrivals, so MB/s reads as arrivals/µs across the
// sweep; allocs/op is the per-collective epoch overhead amortized over all
// ranks.
func BenchmarkBarrier(b *testing.B) {
	for _, procs := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(procs))
			_, err := Run(Config{Procs: procs}, func(c *Comm) error {
				for i := 0; i < b.N; i++ {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce is the combining collective at each rank count: every
// rank contributes a value, one rank folds them.
func BenchmarkAllreduce(b *testing.B) {
	for _, procs := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(procs) * 8)
			_, err := Run(Config{Procs: procs}, func(c *Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := c.AllreduceInt64(OpMax, int64(c.Rank())); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchMailbox builds a mailbox preloaded with depth messages spread over
// distinct (src, tag) classes, with the probed class's message deposited
// last — the worst case for a linear scan, the common case for an index.
func benchMailbox(depth int) (*mailbox, int, int) {
	m := newMailbox()
	for i := 0; i < depth-1; i++ {
		m.deposit(envelope{src: i % 64, tag: i})
	}
	src, tag := 63, depth+1 // a class no filler message occupies
	m.deposit(envelope{src: src, tag: tag})
	return m, src, tag
}

// BenchmarkMailboxMatch measures one exact-match take+redeposit per op at
// each queue depth. The taken message is put back so the depth stays
// constant across iterations.
func BenchmarkMailboxMatch(b *testing.B) {
	noAbort := func() error { return nil }
	for _, depth := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			m, src, tag := benchMailbox(depth)
			b.ReportAllocs()
			b.SetBytes(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := m.take(src, tag, noAbort)
				if err != nil {
					b.Fatal(err)
				}
				m.deposit(e)
			}
		})
	}
}

// BenchmarkMailboxMatchAnySource is the wildcard fallback: an AnySource
// take with an exact tag must still find the globally earliest deposit of
// that tag.
func BenchmarkMailboxMatchAnySource(b *testing.B) {
	noAbort := func() error { return nil }
	for _, depth := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			m, _, tag := benchMailbox(depth)
			b.ReportAllocs()
			b.SetBytes(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := m.take(AnySource, tag, noAbort)
				if err != nil {
					b.Fatal(err)
				}
				m.deposit(e)
			}
		})
	}
}

// BenchmarkRPCEncode measures one request encode+send per op — the
// delegation tier's client hot path. The receiver drains and recycles, so
// the steady state exercises the staging pools, not the heap.
func BenchmarkRPCEncode(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			payload := make([]byte, size)
			_, err := Run(Config{Procs: 2}, func(c *Comm) error {
				if c.Rank() == 0 {
					req := &RPCRequest{Op: OpWrite, Handle: 1, Off: 4096, Len: int64(size), Data: payload}
					for i := 0; i < b.N; i++ {
						req.Seq = int64(i)
						if err := c.SendRequest(1, 7, req); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < b.N; i++ {
					req, err := c.RecvRequest(AnySource, 7)
					if err != nil {
						return err
					}
					c.Recycle(req.Data)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
