package mpi

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

// envelope is one in-flight message.
type envelope struct {
	src     int
	tag     int
	data    []byte
	arrival simtime.Time // virtual instant the last byte reaches the receiver
}

// mailbox holds a rank's unmatched inbound messages. Matching is FIFO per
// (source, tag), as MPI requires.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) deposit(e envelope) {
	m.mu.Lock()
	m.queue = append(m.queue, e)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available, removing
// and returning it. Wildcards AnySource/AnyTag match anything. It returns
// an error when the world aborts while waiting.
func (m *mailbox) take(src, tag int, abortedErr func() error) (envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, e := range m.queue {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return e, nil
			}
		}
		if err := abortedErr(); err != nil {
			return envelope{}, err
		}
		m.cond.Wait()
	}
}

// wake unblocks all waiters so they can observe an abort.
func (m *mailbox) wake() { m.cond.Broadcast() }

// sendOverhead is the local CPU cost of posting one message.
const sendOverhead = 400 * simtime.Nanosecond

// Send delivers data to rank dst with the given tag. The runtime buffers
// eagerly (the send completes locally once the message is handed to the
// network), matching MPI's buffered-send semantics; the network model
// decides when the bytes arrive at dst.
func (c *Comm) Send(dst, tag int, data []byte) error {
	return c.send(dst, tag, data, netsim.TwoSided, -1)
}

// send delivers data; simBytes is the billed simulated size, or -1 to bill
// the scaled payload length. Billing less than the payload models compact
// wire encodings (ROMIO ships datatype descriptors, not expanded offset
// lists, so its exchange metadata must not be charged at payload scale).
func (c *Comm) send(dst, tag int, data []byte, class netsim.Class, simBytes int64) error {
	if err := c.abortedErr(); err != nil {
		return err
	}
	if dst < 0 || dst >= c.w.nprocs {
		return fmt.Errorf("mpi: Send to rank %d of %d", dst, c.w.nprocs)
	}
	if simBytes < 0 {
		simBytes = c.w.machine.Scale(int64(len(data)))
	}
	buf := getBuf(len(data))
	copy(buf, data)
	depart := c.clock().Advance(sendOverhead)
	arrival := c.w.net.Transfer(
		c.w.machine.NodeOf(c.rank), c.w.machine.NodeOf(dst),
		simBytes, depart, class)
	c.w.ranks[dst].box.deposit(envelope{src: c.rank, tag: tag, data: buf, arrival: arrival})
	return nil
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Use AnySource/AnyTag as wildcards. The rank's clock
// advances to the message's arrival instant.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src != AnySource && (src < 0 || src >= c.w.nprocs) {
		return nil, fmt.Errorf("mpi: Recv from rank %d of %d", src, c.w.nprocs)
	}
	e, err := c.w.ranks[c.rank].box.take(src, tag, c.abortedErr)
	if err != nil {
		return nil, err
	}
	c.clock().AdvanceTo(e.arrival)
	return e.data, nil
}

// Request represents an outstanding nonblocking operation.
type Request struct {
	c      *Comm
	isRecv bool
	src    int
	tag    int

	// send-side completion state
	done    bool
	data    []byte
	arrival simtime.Time
	err     error
}

// Isend posts a nonblocking send. With eager buffering the message is
// already on the network when Isend returns; Wait only reconciles clocks.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	err := c.send(dst, tag, data, netsim.TwoSided, -1)
	return &Request{c: c, done: true, err: err}
}

// IsendSized is Isend with an explicit billed simulated size — for
// messages whose wire representation is more compact than the in-memory
// payload (e.g. two-phase exchange descriptors).
func (c *Comm) IsendSized(dst, tag int, data []byte, simBytes int64) *Request {
	err := c.send(dst, tag, data, netsim.TwoSided, simBytes)
	return &Request{c: c, done: true, err: err}
}

// Irecv posts a nonblocking receive. Matching happens at Wait time, which
// is sufficient for the runtime's eager-buffered sends (no rendezvous
// deadlocks are possible).
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, isRecv: true, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received payload
// (nil for sends).
func (r *Request) Wait() ([]byte, error) {
	if r.done {
		return r.data, r.err
	}
	if r.isRecv {
		e, err := r.c.w.ranks[r.c.rank].box.take(r.src, r.tag, r.c.abortedErr)
		if err != nil {
			r.done, r.err = true, err
			return nil, err
		}
		r.done, r.data, r.arrival = true, e.data, e.arrival
		r.c.clock().AdvanceTo(e.arrival)
		return r.data, nil
	}
	r.done = true
	return nil, nil
}

// WaitAll completes all requests, returning the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
