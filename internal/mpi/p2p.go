package mpi

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
)

// envelope is one in-flight message.
type envelope struct {
	src     int
	tag     int
	seq     uint64 // mailbox-wide deposit order, stamped by deposit
	data    []byte
	arrival simtime.Time // virtual instant the last byte reaches the receiver
}

// msgQueue is the FIFO of unmatched messages for one (source, tag) pair —
// a slice with a head index, compacted whenever it drains, so steady-state
// traffic reuses one backing array instead of reallocating per message.
type msgQueue struct {
	head int
	envs []envelope
}

func (q *msgQueue) empty() bool      { return q.head == len(q.envs) }
func (q *msgQueue) front() *envelope { return &q.envs[q.head] }

func (q *msgQueue) push(e envelope) {
	if q.head > 32 && q.head*2 >= len(q.envs) {
		// Reclaim the consumed prefix so a queue that never fully drains
		// cannot grow its backing array without bound.
		n := copy(q.envs, q.envs[q.head:])
		for i := n; i < len(q.envs); i++ {
			q.envs[i] = envelope{}
		}
		q.envs = q.envs[:n]
		q.head = 0
	}
	q.envs = append(q.envs, e)
}

func (q *msgQueue) pop() envelope {
	e := q.envs[q.head]
	q.envs[q.head] = envelope{} // drop the payload reference
	q.head++
	if q.head == len(q.envs) {
		q.head = 0
		q.envs = q.envs[:0]
	}
	return e
}

// srcTag is the mailbox index key.
type srcTag struct{ src, tag int }

// wildEntry records one deposit in a wildcard side-list: which queue it
// went to, and its mailbox-wide sequence number. An entry whose seq no
// longer matches its queue's front was consumed through another path and
// is skipped (and discarded) when encountered — lazy deletion.
type wildEntry struct {
	key srcTag
	seq uint64
}

// keyList is a FIFO of wildEntry with the same head-index compaction as
// msgQueue.
type keyList struct {
	head int
	ents []wildEntry
}

func (l *keyList) empty() bool      { return l.head == len(l.ents) }
func (l *keyList) front() wildEntry { return l.ents[l.head] }

func (l *keyList) push(e wildEntry) {
	if l.head > 32 && l.head*2 >= len(l.ents) {
		n := copy(l.ents, l.ents[l.head:])
		l.ents = l.ents[:n]
		l.head = 0
	}
	l.ents = append(l.ents, e)
}

func (l *keyList) pop() {
	l.head++
	if l.head == len(l.ents) {
		l.head = 0
		l.ents = l.ents[:0]
	}
}

// mailbox holds a rank's unmatched inbound messages, indexed by
// (source, tag). Matching is FIFO per (source, tag), as MPI requires; a
// fully specified receive finds its queue in O(1) instead of scanning every
// buffered message. Wildcard receives (AnySource/AnyTag) pop from
// deposit-ordered side-lists — per tag, per source, and global, one for
// each wildcard shape — whose entries go stale when an exact receive
// consumes the message first; stale entries are discarded lazily at the
// list heads. Every receive shape is amortized O(1), and the sequence
// stamps keep the drain order exactly what a single flat queue would have
// produced: FIFO per pair, deposit order across pairs.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	seq   uint64
	keyed map[srcTag]*msgQueue
	// The side-lists are maintained only once a wildcard receive has been
	// posted (wild): ranks that only ever match exactly — the two-phase
	// exchange hot path — pay nothing for them. The first wildcard take
	// rebuilds them from the buffered queues.
	wild  bool
	byTag map[int]*keyList // for (AnySource, tag) receives
	bySrc map[int]*keyList // for (src, AnyTag) receives
	all   keyList          // for (AnySource, AnyTag) receives
}

func newMailbox() *mailbox {
	m := &mailbox{keyed: make(map[srcTag]*msgQueue)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// trimStale discards consumed entries at the list head. The head entry is
// live exactly when its queue's front carries its seq: per-pair FIFO means
// any smaller seq of that pair was deposited earlier, so a front seq that
// moved past the entry's proves the entry's message is gone.
func (m *mailbox) trimStale(l *keyList) {
	for !l.empty() {
		e := l.front()
		if q := m.keyed[e.key]; q != nil && !q.empty() && q.front().seq == e.seq {
			return
		}
		l.pop()
	}
}

func (m *mailbox) deposit(e envelope) {
	m.mu.Lock()
	e.seq = m.seq
	m.seq++
	key := srcTag{e.src, e.tag}
	q := m.keyed[key]
	if q == nil {
		q = &msgQueue{}
		m.keyed[key] = q
	}
	q.push(e)
	if m.wild {
		m.pushWild(wildEntry{key: key, seq: e.seq})
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// pushWild records a deposit in all three side-lists, trimming each list's
// stale head first so idle lists cannot accumulate consumed entries.
func (m *mailbox) pushWild(ent wildEntry) {
	tl := m.byTag[ent.key.tag]
	if tl == nil {
		tl = &keyList{}
		m.byTag[ent.key.tag] = tl
	}
	m.trimStale(tl)
	tl.push(ent)
	sl := m.bySrc[ent.key.src]
	if sl == nil {
		sl = &keyList{}
		m.bySrc[ent.key.src] = sl
	}
	m.trimStale(sl)
	sl.push(ent)
	m.trimStale(&m.all)
	m.all.push(ent)
}

// activateWild switches the mailbox into wildcard mode, rebuilding the
// side-lists from the currently buffered messages in deposit order. Called
// once, under mu, by the first wildcard take.
func (m *mailbox) activateWild() {
	var ents []wildEntry
	for k, q := range m.keyed {
		for i := q.head; i < len(q.envs); i++ {
			ents = append(ents, wildEntry{key: k, seq: q.envs[i].seq})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
	m.byTag = make(map[int]*keyList)
	m.bySrc = make(map[int]*keyList)
	m.wild = true
	for _, ent := range ents {
		m.pushWild(ent)
	}
}

// take blocks until a message matching (src, tag) is available, removing
// and returning it. Wildcards AnySource/AnyTag match anything. It returns
// an error when the world aborts while waiting.
func (m *mailbox) take(src, tag int, abortedErr func() error) (envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if src != AnySource && tag != AnyTag {
			if q := m.keyed[srcTag{src, tag}]; q != nil && !q.empty() {
				return q.pop(), nil
			}
		} else {
			if !m.wild {
				m.activateWild()
			}
			var l *keyList
			switch {
			case src == AnySource && tag == AnyTag:
				l = &m.all
			case src == AnySource:
				l = m.byTag[tag]
			default:
				l = m.bySrc[src]
			}
			if l != nil {
				m.trimStale(l)
				if !l.empty() {
					// A live head entry is its queue's front, and every
					// entry in this list matches the filter by construction.
					e := l.front()
					l.pop()
					return m.keyed[e.key].pop(), nil
				}
			}
		}
		if err := abortedErr(); err != nil {
			return envelope{}, err
		}
		m.cond.Wait()
	}
}

// tryTake is take without blocking: it removes and returns a matching
// message if one is buffered right now, else reports ok == false. The
// matching rules (FIFO per pair, deposit order across pairs for
// wildcards) are identical to take's.
func (m *mailbox) tryTake(src, tag int) (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src != AnySource && tag != AnyTag {
		if q := m.keyed[srcTag{src, tag}]; q != nil && !q.empty() {
			return q.pop(), true
		}
		return envelope{}, false
	}
	if !m.wild {
		m.activateWild()
	}
	var l *keyList
	switch {
	case src == AnySource && tag == AnyTag:
		l = &m.all
	case src == AnySource:
		l = m.byTag[tag]
	default:
		l = m.bySrc[src]
	}
	if l != nil {
		m.trimStale(l)
		if !l.empty() {
			e := l.front()
			l.pop()
			return m.keyed[e.key].pop(), true
		}
	}
	return envelope{}, false
}

// wake unblocks all waiters so they can observe an abort.
func (m *mailbox) wake() { m.cond.Broadcast() }

// sendOverhead is the local CPU cost of posting one message.
const sendOverhead = 400 * simtime.Nanosecond

// Send delivers data to rank dst with the given tag. The runtime buffers
// eagerly (the send completes locally once the message is handed to the
// network), matching MPI's buffered-send semantics; the network model
// decides when the bytes arrive at dst.
func (c *Comm) Send(dst, tag int, data []byte) error {
	return c.send(dst, tag, data, netsim.TwoSided, -1)
}

// send delivers data; simBytes is the billed simulated size, or -1 to bill
// the scaled payload length. Billing less than the payload models compact
// wire encodings (ROMIO ships datatype descriptors, not expanded offset
// lists, so its exchange metadata must not be charged at payload scale).
func (c *Comm) send(dst, tag int, data []byte, class netsim.Class, simBytes int64) error {
	buf := getBuf(len(data))
	copy(buf, data)
	return c.sendStaged(dst, tag, buf, class, simBytes)
}

// sendStaged delivers an already-staged payload, taking ownership of buf —
// the zero-copy entry for callers that encode their message directly into a
// pooled staging buffer (the RPC layer). buf must not be touched after the
// call; it reaches the receiver and re-enters the pool via Recycle.
func (c *Comm) sendStaged(dst, tag int, buf []byte, class netsim.Class, simBytes int64) error {
	if err := c.abortedErr(); err != nil {
		recycleBuf(buf)
		return err
	}
	if dst < 0 || dst >= c.w.nprocs {
		recycleBuf(buf)
		return fmt.Errorf("mpi: Send to rank %d of %d", dst, c.w.nprocs)
	}
	if simBytes < 0 {
		simBytes = c.w.machine.Scale(int64(len(buf)))
	}
	depart := c.clock().Advance(sendOverhead)
	arrival := c.w.net.Transfer(
		c.w.machine.NodeOf(c.rank), c.w.machine.NodeOf(dst),
		simBytes, depart, class)
	c.w.ranks[dst].box.deposit(envelope{src: c.rank, tag: tag, data: buf, arrival: arrival})
	return nil
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Use AnySource/AnyTag as wildcards. The rank's clock
// advances to the message's arrival instant.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src != AnySource && (src < 0 || src >= c.w.nprocs) {
		return nil, fmt.Errorf("mpi: Recv from rank %d of %d", src, c.w.nprocs)
	}
	e, err := c.w.ranks[c.rank].box.take(src, tag, c.abortedErr)
	if err != nil {
		return nil, err
	}
	c.clock().AdvanceTo(e.arrival)
	return e.data, nil
}

// Request represents an outstanding nonblocking operation.
type Request struct {
	c      *Comm
	isRecv bool
	src    int
	tag    int

	// send-side completion state
	done    bool
	data    []byte
	arrival simtime.Time
	err     error
}

// Isend posts a nonblocking send. With eager buffering the message is
// already on the network when Isend returns; Wait only reconciles clocks.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	err := c.send(dst, tag, data, netsim.TwoSided, -1)
	return &Request{c: c, done: true, err: err}
}

// IsendSized is Isend with an explicit billed simulated size — for
// messages whose wire representation is more compact than the in-memory
// payload (e.g. two-phase exchange descriptors).
func (c *Comm) IsendSized(dst, tag int, data []byte, simBytes int64) *Request {
	err := c.send(dst, tag, data, netsim.TwoSided, simBytes)
	return &Request{c: c, done: true, err: err}
}

// Irecv posts a nonblocking receive. Matching happens at Wait time, which
// is sufficient for the runtime's eager-buffered sends (no rendezvous
// deadlocks are possible).
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, isRecv: true, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received payload
// (nil for sends).
func (r *Request) Wait() ([]byte, error) {
	if r.done {
		return r.data, r.err
	}
	if r.isRecv {
		e, err := r.c.w.ranks[r.c.rank].box.take(r.src, r.tag, r.c.abortedErr)
		if err != nil {
			r.done, r.err = true, err
			return nil, err
		}
		r.done, r.data, r.arrival = true, e.data, e.arrival
		r.c.clock().AdvanceTo(e.arrival)
		return r.data, nil
	}
	r.done = true
	return nil, nil
}

// WaitAll completes all requests, returning the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
