package mpi

// Tests for the Rput-style nonblocking puts: PutSegmentsAsync handles,
// FlushLocal, and the PendingArrival observer the overlap pipelines use.

import (
	"errors"
	"testing"

	"github.com/tcio/tcio/internal/datatype"
)

func TestPutSegmentsAsyncComplete(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 64))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		if err := win.Lock(1, false); err != nil {
			return err
		}
		h, err := win.PutSegmentsAsync(1, []datatype.Segment{{Off: 8, Len: 4}}, []byte{1, 2, 3, 4})
		if err != nil {
			return err
		}
		// PendingArrival observes the in-flight transfer without advancing
		// the origin clock past it.
		pending := win.PendingArrival(1)
		if pending <= c.Now() {
			return errors.New("put arrival not after issue time")
		}
		h.Complete()
		if c.Now() < pending {
			return errors.New("Complete did not wait for the transfer")
		}
		// A second put moves the epoch's horizon; FlushLocal waits for it.
		if _, err := win.PutSegmentsAsync(1, []datatype.Segment{{Off: 16, Len: 4}}, []byte{5, 6, 7, 8}); err != nil {
			return err
		}
		horizon := win.PendingArrival(1)
		if err := win.FlushLocal(1); err != nil {
			return err
		}
		if c.Now() < horizon {
			return errors.New("FlushLocal did not retire the epoch's transfers")
		}
		return win.Unlock(1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushLocalNeedsEpoch(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		if err := win.FlushLocal(1); err == nil {
			return errors.New("FlushLocal without an epoch succeeded")
		}
		if win.PendingArrival(1) != 0 {
			return errors.New("PendingArrival nonzero without an epoch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
