package mpi

import (
	"fmt"
)

// This file completes the standard collective surface beyond what the I/O
// stacks strictly need: gather/scatter, scans, and byte-payload reductions.
// They follow the same timeBarrier mechanics as the core collectives: the
// last-arriving rank combines, everyone leaves at the synchronized instant
// plus the collective's modelled cost.

// GatherInt64 collects one int64 from every rank at root, in rank order.
// Non-root ranks receive nil.
func (c *Comm) GatherInt64(root int, v int64) ([]int64, error) {
	if root < 0 || root >= c.w.nprocs {
		return nil, fmt.Errorf("mpi: Gather root %d of %d", root, c.w.nprocs)
	}
	res, err := c.collect(v, func(vals []interface{}) interface{} {
		out := make([]int64, len(vals))
		for i, raw := range vals {
			out[i] = raw.(int64)
		}
		return out
	}, c.treeCost(8))
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return res.([]int64), nil
}

// ScatterBytes distributes root's per-rank payloads: rank i receives
// parts[i]. Only root's parts argument is consulted.
func (c *Comm) ScatterBytes(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= c.w.nprocs {
		return nil, fmt.Errorf("mpi: Scatter root %d of %d", root, c.w.nprocs)
	}
	var val interface{}
	if c.rank == root {
		if len(parts) != c.w.nprocs {
			return nil, fmt.Errorf("mpi: Scatter with %d parts for %d ranks", len(parts), c.w.nprocs)
		}
		cp := make([][]byte, len(parts))
		var maxLen int64
		for i, p := range parts {
			cp[i] = append([]byte(nil), p...)
			if int64(len(p)) > maxLen {
				maxLen = int64(len(p))
			}
		}
		val = cp
	}
	res, err := c.collect(val, func(vals []interface{}) interface{} {
		return vals[root]
	}, c.treeCost(16))
	if err != nil {
		return nil, err
	}
	all, ok := res.([][]byte)
	if !ok {
		return nil, fmt.Errorf("mpi: Scatter root %d passed no parts", root)
	}
	return all[c.rank], nil
}

// ScanInt64 returns the inclusive prefix reduction of v: rank r receives
// op(v_0, ..., v_r).
func (c *Comm) ScanInt64(op ReduceOp, v int64) (int64, error) {
	all, err := c.AllgatherInt64(v)
	if err != nil {
		return 0, err
	}
	acc := all[0]
	for r := 1; r <= c.rank; r++ {
		switch op {
		case OpSum:
			acc += all[r]
		case OpMax:
			if all[r] > acc {
				acc = all[r]
			}
		case OpMin:
			if all[r] < acc {
				acc = all[r]
			}
		}
	}
	return acc, nil
}

// ReduceInt64 combines one int64 per rank with op at root; non-root ranks
// receive 0.
func (c *Comm) ReduceInt64(root int, op ReduceOp, v int64) (int64, error) {
	if root < 0 || root >= c.w.nprocs {
		return 0, fmt.Errorf("mpi: Reduce root %d of %d", root, c.w.nprocs)
	}
	all, err := c.AllreduceInt64(op, v)
	if err != nil {
		return 0, err
	}
	if c.rank != root {
		return 0, nil
	}
	return all, nil
}

// GatherBytes collects each rank's (possibly differently sized) payload at
// root, in rank order. Non-root ranks receive nil.
func (c *Comm) GatherBytes(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.w.nprocs {
		return nil, fmt.Errorf("mpi: Gather root %d of %d", root, c.w.nprocs)
	}
	all, err := c.AllgatherBytes(data)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return all, nil
}
