package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestGatherInt64(t *testing.T) {
	_, err := Run(testCfg(5), func(c *Comm) error {
		got, err := c.GatherInt64(2, int64(c.Rank()*3))
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root received %v", got)
			}
			return nil
		}
		for i, v := range got {
			if v != int64(i*3) {
				return fmt.Errorf("got[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBadRoot(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if _, err := c.GatherInt64(5, 1); err == nil {
			return errors.New("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterBytes(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			for i := 0; i < 4; i++ {
				parts = append(parts, bytes.Repeat([]byte{byte(i + 1)}, i+1))
			}
		}
		got, err := c.ScatterBytes(1, parts)
		if err != nil {
			return err
		}
		want := bytes.Repeat([]byte{byte(c.Rank() + 1)}, c.Rank()+1)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterRootBufferIsCopied(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{{1}, {2}}
		}
		got, err := c.ScatterBytes(0, parts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			parts[0][0] = 99 // must not affect what was distributed
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if got[0] != byte(c.Rank()+1) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInt64(t *testing.T) {
	_, err := Run(testCfg(6), func(c *Comm) error {
		sum, err := c.ScanInt64(OpSum, int64(c.Rank()+1))
		if err != nil {
			return err
		}
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if sum != want {
			return fmt.Errorf("rank %d: scan sum %d, want %d", c.Rank(), sum, want)
		}
		max, err := c.ScanInt64(OpMax, int64((c.Rank()%3)*10))
		if err != nil {
			return err
		}
		wantMax := int64(0)
		for r := 0; r <= c.Rank(); r++ {
			if v := int64((r % 3) * 10); v > wantMax {
				wantMax = v
			}
		}
		if max != wantMax {
			return fmt.Errorf("rank %d: scan max %d, want %d", c.Rank(), max, wantMax)
		}
		min, err := c.ScanInt64(OpMin, int64(c.Rank()))
		if err != nil {
			return err
		}
		if min != 0 {
			return fmt.Errorf("rank %d: scan min %d", c.Rank(), min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceInt64(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		got, err := c.ReduceInt64(3, OpSum, 5)
		if err != nil {
			return err
		}
		if c.Rank() == 3 && got != 20 {
			return fmt.Errorf("root got %d", got)
		}
		if c.Rank() != 3 && got != 0 {
			return fmt.Errorf("non-root got %d", got)
		}
		if _, err := c.ReduceInt64(-1, OpSum, 1); err == nil {
			return errors.New("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBytesAtRoot(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		got, err := c.GatherBytes(0, []byte{byte(c.Rank() + 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if got != nil {
				return errors.New("non-root received data")
			}
			return nil
		}
		for r, b := range got {
			if len(b) != 1 || b[0] != byte(r+10) {
				return fmt.Errorf("from %d got %v", r, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
