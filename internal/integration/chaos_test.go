package integration

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

// chaosFS builds a small-stripe file system injecting from in.
func chaosFS(in *faults.Injector) *pfs.FileSystem {
	cfg := pfs.DefaultConfig()
	cfg.StripeSize = 1 << 10
	cfg.ReadAhead = 1 << 10
	cfg.Faults = in
	return pfs.New(cfg)
}

// chaosRun is run with fault injection armed across the world's hardware.
func chaosRun(fs *pfs.FileSystem, in *faults.Injector, procs int, fn func(*mpi.Comm) error) error {
	_, err := mpi.Run(mpi.Config{
		Procs:   procs,
		Machine: cluster.Lonestar(),
		FS:      fs,
		Faults:  in,
	}, fn)
	return err
}

// chaosByte is the deterministic payload generator for the chaos tests.
func chaosByte(rank int, i int64) byte { return byte(int64(rank)*167 + i*31 + 5) }

// tcioRoundTrip writes each rank's interleaved pieces through TCIO, reads
// them back, byte-verifies, and returns the sum of Stats.Retries over all
// ranks of both phases.
func tcioRoundTrip(fs *pfs.FileSystem, in *faults.Injector, procs int, perRank int64, retry *faults.RetryPolicy) (int64, error) {
	const piece = 64
	var retries atomic.Int64
	cfg := tcio.Config{SegmentSize: 1 << 10, NumSegments: 16, Retry: retry}
	if err := chaosRun(fs, in, procs, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "chaos-tcio", tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		for off := int64(0); off < perRank; off += piece {
			var buf [piece]byte
			for b := range buf {
				buf[b] = chaosByte(c.Rank(), off+int64(b))
			}
			pos := int64(c.Rank())*piece + off*int64(c.Size())
			if err := f.WriteAt(pos, buf[:]); err != nil {
				return err
			}
		}
		err = f.Close()
		retries.Add(f.Stats().Retries)
		return err
	}); err != nil {
		return retries.Load(), err
	}
	err := chaosRun(fs, in, procs, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "chaos-tcio", tcio.ReadMode, cfg)
		if err != nil {
			return err
		}
		defer func() { retries.Add(f.Stats().Retries) }()
		got := make([][]byte, 0, perRank/piece)
		for off := int64(0); off < perRank; off += piece {
			pos := int64(c.Rank())*piece + off*int64(c.Size())
			dst := make([]byte, piece)
			if err := f.ReadAt(pos, dst); err != nil {
				return err
			}
			got = append(got, dst)
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		for k, dst := range got {
			off := int64(k) * piece
			for b, v := range dst {
				if want := chaosByte(c.Rank(), off+int64(b)); v != want {
					return fmt.Errorf("rank %d off %d byte %d: got %#x want %#x",
						c.Rank(), off, b, v, want)
				}
			}
		}
		return f.Close()
	})
	return retries.Load(), err
}

// TestChaosTCIORoundTrip sweeps seeds and OST transient-error rates up to
// the acceptance bound (5%) plus slow-server and put-drop background noise:
// every round trip must byte-verify, and across the sweep the retry
// machinery must actually fire.
func TestChaosTCIORoundTrip(t *testing.T) {
	var totalRetries, totalInjected int64
	for seed := int64(1); seed <= 3; seed++ {
		for _, rate := range []float64{0.01, 0.05} {
			in := faults.New(seed).
				Set(faults.SiteOSTWrite, faults.Rule{Prob: rate}).
				Set(faults.SiteOSTRead, faults.Rule{Prob: rate}).
				Set(faults.SiteOSTSlow, faults.Rule{Prob: 0.05, Factor: 6}).
				Set(faults.SiteWinPut, faults.Rule{Prob: 0.02})
			retries, err := tcioRoundTrip(chaosFS(in), in, 4, 4<<10, nil)
			if err != nil {
				t.Fatalf("seed %d rate %v: %v", seed, rate, err)
			}
			totalRetries += retries
			totalInjected += in.TotalInjected()
		}
	}
	if totalInjected == 0 {
		t.Fatal("sweep injected no faults")
	}
	if totalRetries == 0 {
		t.Fatal("sweep absorbed no faults through the retry path")
	}
}

// TestChaosTCIOBudgetExhausted pins the typed-error contract: with a zero
// retry budget and a certain fault, the run fails with an error that
// unwraps to both ErrExhaustedRetries and the injected cause.
func TestChaosTCIOBudgetExhausted(t *testing.T) {
	in := faults.New(11).Set(faults.SiteOSTWrite, faults.Rule{Prob: 1})
	noRetry := faults.NoRetry()
	_, err := tcioRoundTrip(chaosFS(in), in, 4, 1<<10, &noRetry)
	if err == nil {
		t.Fatal("round trip succeeded with every OST write failing and no retries")
	}
	if !errors.Is(err, faults.ErrExhaustedRetries) {
		t.Fatalf("error does not unwrap to ErrExhaustedRetries: %v", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not unwrap to the injected cause: %v", err)
	}
}

// TestChaosTCIOBudgetAbsorbs is the control for the budget test: the same
// seed and sites with the default budget completes, because fault rolls are
// fresh per attempt.
func TestChaosTCIOBudgetAbsorbs(t *testing.T) {
	in := faults.New(11).Set(faults.SiteOSTWrite, faults.Rule{Prob: 0.5})
	retries, err := tcioRoundTrip(chaosFS(in), in, 4, 4<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Fatal("no retries at a 50% write-fault rate")
	}
}

// TestChaosOCIORoundTrip drives OCIO's collective write+read under the same
// fault regime: the two-phase I/O phase must retry its aggregator accesses
// and still deliver byte-exact data.
func TestChaosOCIORoundTrip(t *testing.T) {
	const procs, perRank = 4, 4 << 10
	var retries atomic.Int64
	for seed := int64(1); seed <= 3; seed++ {
		in := faults.New(seed).
			Set(faults.SiteOSTWrite, faults.Rule{Prob: 0.15}).
			Set(faults.SiteOSTRead, faults.Rule{Prob: 0.15}).
			Set(faults.SiteNetSetup, faults.Rule{Prob: 0.01}).
			Set(faults.SiteOSTSlow, faults.Rule{Prob: 0.05, Factor: 6})
		fs := chaosFS(in)
		name := fmt.Sprintf("chaos-ocio-%d", seed)
		if err := chaosRun(fs, in, procs, func(c *mpi.Comm) error {
			f, err := mpiio.Open(c, name)
			if err != nil {
				return err
			}
			if err := f.SetView(int64(c.Rank())*perRank, datatype.Byte, datatype.Byte); err != nil {
				return err
			}
			data := make([]byte, perRank)
			for i := range data {
				data[i] = chaosByte(c.Rank(), int64(i))
			}
			if err := f.WriteAll(data); err != nil {
				return err
			}
			retries.Add(f.Retries())
			return f.Close()
		}); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		if err := chaosRun(fs, in, procs, func(c *mpi.Comm) error {
			f, err := mpiio.Open(c, name)
			if err != nil {
				return err
			}
			if err := f.SetView(int64(c.Rank())*perRank, datatype.Byte, datatype.Byte); err != nil {
				return err
			}
			got, err := f.ReadAll(perRank)
			if err != nil {
				return err
			}
			retries.Add(f.Retries())
			for i, v := range got {
				if want := chaosByte(c.Rank(), int64(i)); v != want {
					return fmt.Errorf("rank %d byte %d: got %#x want %#x", c.Rank(), i, v, want)
				}
			}
			return f.Close()
		}); err != nil {
			t.Fatalf("seed %d read: %v", seed, err)
		}
	}
	if retries.Load() == 0 {
		t.Fatal("OCIO absorbed no faults through the retry path")
	}
}

// TestChaosDeterministicCounts runs the same seeded TCIO round trip twice
// and demands identical per-site injection counts — the replay property the
// whole subsystem is built around.
func TestChaosDeterministicCounts(t *testing.T) {
	counts := make([]string, 2)
	for i := range counts {
		in := faults.New(42).
			Set(faults.SiteOSTWrite, faults.Rule{Prob: 0.1}).
			Set(faults.SiteOSTRead, faults.Rule{Prob: 0.1}).
			Set(faults.SiteOSTSlow, faults.Rule{Prob: 0.1, Factor: 4}).
			Set(faults.SiteWinPut, faults.Rule{Prob: 0.05})
		if _, err := tcioRoundTrip(chaosFS(in), in, 4, 2<<10, nil); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		counts[i] = in.CountsString()
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed, different injection counts:\nrun 1: %s\nrun 2: %s", counts[0], counts[1])
	}
	if counts[0] == "" {
		t.Fatal("no faults injected")
	}
}
