package integration

// Crash consistency of the write path under chaos, as a kill-point matrix:
// each case arms exactly one fault site so the injected transients can fire
// only inside one stage of the session — the level-1 flush shipping runs,
// the direct ship of unbuffered writes, the eager write-behind drain, the
// final drain inside Close, or the journal-truncate RPC that retires the
// epoch log. With a zero retry budget the first transient becomes permanent
// and the session must surface the typed faults.ErrExhaustedRetries — never
// success over a silently partial file. Every case is seed-pinned: the same
// seed re-injects the same faults and fails the same ranks across runs, and
// the identical seed and fault rules succeed byte-exactly under the default
// retry policy. The
// journal-truncate case additionally proves the failure contract of the
// epoch log: a Close that fails after its drain settled preserves the
// journal, and tcio.Recover replays it to the same byte-exact image.

import (
	"errors"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

const (
	closeChaosProcs   = 2
	closeChaosPiece   = 64
	closeChaosPerRank = 1 << 10
	closeChaosSeed    = 9
	closeChaosFile    = "close-chaos"
)

// closeChaosConfig is the session configuration of one matrix case.
func closeChaosConfig(retry *faults.RetryPolicy, mod func(*tcio.Config)) tcio.Config {
	cfg := tcio.Config{SegmentSize: 1 << 10, NumSegments: 16, Retry: retry}
	if mod != nil {
		mod(&cfg)
	}
	return cfg
}

// closeChaosWrite runs one seeded write session — every rank writes its
// block-cyclic pieces, flushes once mid-stream, and closes — and returns
// each rank's first session error, the injector, and the file system for
// post-mortem. A mid-stream Flush gives every kill point at least two
// windows (two level-1 flush epochs, two journal epochs, residue for the
// final drain).
func closeChaosWrite(t *testing.T, seed int64, site faults.Site, prob float64,
	retry *faults.RetryPolicy, mod func(*tcio.Config)) (map[int]error, *faults.Injector, *pfs.FileSystem) {
	t.Helper()
	in := faults.New(seed).Set(site, faults.Rule{Prob: prob})
	fs := chaosFS(in)
	cfg := closeChaosConfig(retry, mod)
	var mu sync.Mutex
	sessionErrs := make(map[int]error, closeChaosProcs)
	chaosRun(fs, in, closeChaosProcs, func(c *mpi.Comm) error { //nolint:errcheck // per-rank errors inspected via sessionErrs
		err := func() error {
			f, err := tcio.Open(c, closeChaosFile, tcio.WriteMode, cfg)
			if err != nil {
				return err
			}
			for off := int64(0); off < closeChaosPerRank; off += closeChaosPiece {
				var buf [closeChaosPiece]byte
				for b := range buf {
					buf[b] = chaosByte(c.Rank(), off+int64(b))
				}
				pos := int64(c.Rank())*closeChaosPiece + off*int64(c.Size())
				if err := f.WriteAt(pos, buf[:]); err != nil {
					return err
				}
				if off == closeChaosPerRank/2 {
					if err := f.Flush(); err != nil {
						return err
					}
				}
			}
			return f.Close()
		}()
		mu.Lock()
		sessionErrs[c.Rank()] = err
		mu.Unlock()
		return err
	})
	return sessionErrs, in, fs
}

// verifyCloseChaosImage checks the file holds every rank's pattern.
func verifyCloseChaosImage(t *testing.T, fs *pfs.FileSystem, context string) {
	t.Helper()
	snap := fs.Open(closeChaosFile).Snapshot()
	for rank := 0; rank < closeChaosProcs; rank++ {
		for off := int64(0); off < closeChaosPerRank; off += closeChaosPiece {
			pos := int64(rank)*closeChaosPiece + off*int64(closeChaosProcs)
			for b := int64(0); b < closeChaosPiece; b++ {
				if want, got := chaosByte(rank, off+b), snap[pos+b]; got != want {
					t.Fatalf("%s: rank %d file byte %d: got %#x, want %#x", context, rank, pos+b, got, want)
				}
			}
		}
	}
}

func TestCloseKillPointMatrix(t *testing.T) {
	cases := []struct {
		name string
		site faults.Site
		prob float64
		seed int64 // 0 = closeChaosSeed
		mod  func(*tcio.Config)
	}{
		// Probabilities are tuned to the two regimes each case must serve:
		// hot enough that the zero-retry run faults at least one rank, cool
		// enough that the default 8-retry budget never exhausts on any
		// single request in the control run (p^9 per request).
		//
		// Level-1 flush: buffered pieces ship to remote level-2 on realign
		// and Flush; the put is the only site armed.
		{"flush-level1-ship", faults.SiteWinPut, 0.3, 0, nil},
		// Direct ship: with level-1 disabled every WriteAt is its own
		// one-sided put epoch.
		{"direct-ship", faults.SiteWinPut, 0.3, 0,
			func(c *tcio.Config) { c.DisableLevel1 = true }},
		// Eager drain: write-behind pushes threshold-full segments to the
		// file system mid-stream, on the background lane.
		{"eager-drain", faults.SiteOSTWrite, 0.5, 0,
			func(c *tcio.Config) { c.WriteBehindThreshold = 0.25; c.WriteBehindQueue = 4 }},
		// Final drain: the only OST writes happen inside Close.
		{"final-drain", faults.SiteOSTWrite, 0.5, 0, nil},
		// Journal truncate: the session is clean until the control RPC that
		// retires the epoch log after the final drain settled.
		{"journal-truncate", faults.SiteWALTruncate, 0.6, 7,
			func(c *tcio.Config) { c.Journal = true }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := tc.seed
			if seed == 0 {
				seed = closeChaosSeed
			}
			zero := faults.NoRetry()
			errs, in, fs := closeChaosWrite(t, seed, tc.site, tc.prob, &zero, tc.mod)
			if in.TotalInjected() == 0 {
				t.Fatalf("seed %d injected no fault at %s; the case exercised nothing", seed, tc.site)
			}
			sawTyped := false
			for rank, err := range errs {
				if err == nil {
					continue
				}
				if errors.Is(err, mpi.ErrAborted) {
					// A peer's failure tore this rank out of a collective —
					// the abort is the peer's typed error propagating, not a
					// second fault to classify.
					continue
				}
				sawTyped = true
				if !errors.Is(err, faults.ErrExhaustedRetries) {
					t.Errorf("rank %d error is not typed ErrExhaustedRetries: %v", rank, err)
				}
				if !faults.IsTransient(err) {
					t.Errorf("rank %d error lost the injected-fault cause: %v", rank, err)
				}
			}
			if !sawTyped {
				t.Fatalf("seed %d: %s faulted (%s) yet every rank succeeded — silent partial file",
					seed, tc.site, in.CountsString())
			}

			// Seed-pinned determinism: the same seed re-injects the same
			// faults and fails the same ranks. (When two ranks fault in the
			// same collective epoch, which one surfaces its own typed error
			// and which sees the peer's abort first is a scheduling race, so
			// error strings are not part of the contract.)
			again, in2, _ := closeChaosWrite(t, seed, tc.site, tc.prob, &zero, tc.mod)
			for rank, err := range errs {
				if a, b := err != nil, again[rank] != nil; a != b {
					t.Errorf("rank %d outcome not reproducible: run 1 failed=%v, run 2 failed=%v (run 2: %v)",
						rank, a, b, again[rank])
				}
			}
			if a, b := in.CountsString(), in2.CountsString(); a != b {
				t.Errorf("injection counts not reproducible: %q vs %q", a, b)
			}

			if tc.name == "journal-truncate" {
				// The failed Close must have preserved the journal (a stale
				// journal replays byte-safely; a missing one over a torn
				// drain would not) — and recovery over the already-complete
				// data file must keep it byte-exact.
				preserved := false
				for rank := 0; rank < closeChaosProcs; rank++ {
					wn := tcio.WALFileName(closeChaosFile, rank)
					if fs.Exists(wn) && fs.Open(wn).Size() > 0 {
						preserved = true
					}
				}
				if !preserved {
					t.Fatal("failed Close left no journal behind")
				}
				cfg := closeChaosConfig(nil, tc.mod)
				if _, err := tcio.Recover(fs, closeChaosFile, cfg); err != nil {
					t.Fatalf("recovery over the preserved journal failed: %v", err)
				}
				verifyCloseChaosImage(t, fs, "after recovery")
			}

			// The control: the identical seed and fault rules succeed under
			// the default retry policy, and every byte lands.
			cerrs, cin, cfs := closeChaosWrite(t, seed, tc.site, tc.prob, nil, tc.mod)
			for rank, err := range cerrs {
				if err != nil {
					t.Fatalf("rank %d failed under the default retry policy: %v", rank, err)
				}
			}
			if cin.TotalInjected() == 0 {
				t.Fatal("control run injected nothing; it does not cover the kill point")
			}
			verifyCloseChaosImage(t, cfs, "control run")
		})
	}
}
