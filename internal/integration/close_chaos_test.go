package integration

// Crash consistency of Close under chaos: TCIO writes land in remote
// level-2 buffers, so with only SiteOSTWrite armed the injected faults can
// fire nowhere but the final drain inside Close. With a zero retry budget
// the drain's first transient becomes permanent, and Close must surface the
// typed faults.ErrExhaustedRetries — never return success over a silently
// partial file. Seed-pinned so the failing drain request replays
// identically across runs.

import (
	"errors"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

const (
	closeChaosProcs   = 2
	closeChaosPiece   = 64
	closeChaosPerRank = 1 << 10
	closeChaosSeed    = 9
)

// closeChaosWrite runs one seeded write session and returns each rank's
// Close error, the injector, and the file system for post-mortem.
func closeChaosWrite(t *testing.T, seed int64, retry *faults.RetryPolicy) (map[int]error, *faults.Injector, *pfs.FileSystem) {
	t.Helper()
	in := faults.New(seed).Set(faults.SiteOSTWrite, faults.Rule{Prob: 0.5})
	fs := chaosFS(in)
	cfg := tcio.Config{SegmentSize: 1 << 10, NumSegments: 16, Retry: retry}
	var mu sync.Mutex
	closeErrs := make(map[int]error, closeChaosProcs)
	chaosRun(fs, in, closeChaosProcs, func(c *mpi.Comm) error { //nolint:errcheck // per-rank errors inspected via closeErrs
		f, err := tcio.Open(c, "close-chaos", tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		for off := int64(0); off < closeChaosPerRank; off += closeChaosPiece {
			var buf [closeChaosPiece]byte
			for b := range buf {
				buf[b] = chaosByte(c.Rank(), off+int64(b))
			}
			pos := int64(c.Rank())*closeChaosPiece + off*int64(c.Size())
			if err := f.WriteAt(pos, buf[:]); err != nil {
				return err
			}
		}
		cerr := f.Close()
		mu.Lock()
		closeErrs[c.Rank()] = cerr
		mu.Unlock()
		return cerr
	})
	return closeErrs, in, fs
}

func TestCloseMidChaosSurfacesExhaustedRetries(t *testing.T) {
	zero := faults.NoRetry()
	closeErrs, in, _ := closeChaosWrite(t, closeChaosSeed, &zero)

	if in.TotalInjected() == 0 {
		t.Fatalf("seed %d injected no fault; the test exercised nothing", closeChaosSeed)
	}
	sawTyped := false
	for rank, cerr := range closeErrs {
		if cerr == nil {
			continue
		}
		sawTyped = true
		if !errors.Is(cerr, faults.ErrExhaustedRetries) {
			t.Errorf("rank %d Close error is not typed ErrExhaustedRetries: %v", rank, cerr)
		}
		if !faults.IsTransient(cerr) {
			t.Errorf("rank %d Close error lost the injected-fault cause: %v", rank, cerr)
		}
	}
	if !sawTyped {
		t.Fatalf("seed %d: drain faulted (%s) yet every rank's Close returned nil — silent partial file",
			closeChaosSeed, in.CountsString())
	}

	// Seed-pinned determinism: the same seed must fail identically.
	again, in2, _ := closeChaosWrite(t, closeChaosSeed, &zero)
	for rank, cerr := range closeErrs {
		if a, b := fmtErr(cerr), fmtErr(again[rank]); a != b {
			t.Errorf("rank %d error not reproducible:\n  run 1: %s\n  run 2: %s", rank, a, b)
		}
	}
	if a, b := in.CountsString(), in2.CountsString(); a != b {
		t.Errorf("injection counts not reproducible: %q vs %q", a, b)
	}
}

// TestCloseMidChaosRecoversWithRetry is the control: the identical seed and
// fault rules succeed under the default retry policy, and every byte lands.
func TestCloseMidChaosRecoversWithRetry(t *testing.T) {
	closeErrs, in, fs := closeChaosWrite(t, closeChaosSeed, nil)
	for rank, cerr := range closeErrs {
		if cerr != nil {
			t.Fatalf("rank %d Close failed under the default retry policy: %v", rank, cerr)
		}
	}
	if in.TotalInjected() == 0 {
		t.Fatal("control run injected nothing; it does not cover the drain path")
	}
	snap := fs.Open("close-chaos").Snapshot()
	for rank := 0; rank < closeChaosProcs; rank++ {
		for off := int64(0); off < closeChaosPerRank; off += closeChaosPiece {
			pos := int64(rank)*closeChaosPiece + off*int64(closeChaosProcs)
			for b := int64(0); b < closeChaosPiece; b++ {
				if want, got := chaosByte(rank, off+b), snap[pos+b]; got != want {
					t.Fatalf("rank %d file byte %d: got %#x, want %#x", rank, pos+b, got, want)
				}
			}
		}
	}
}

func fmtErr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
