// Package integration holds cross-stack tests: scenarios that exercise
// TCIO, OCIO, vanilla MPI-IO, the ART application, and the simulated
// machine together, verifying end-to-end agreement byte for byte.
package integration

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/art"
	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

// sharedFS builds a small-stripe file system shared across worlds.
func sharedFS() *pfs.FileSystem {
	cfg := pfs.DefaultConfig()
	cfg.StripeSize = 1 << 10
	cfg.ReadAhead = 1 << 10
	return pfs.New(cfg)
}

func run(t *testing.T, fs *pfs.FileSystem, procs int, fn func(*mpi.Comm) error) {
	t.Helper()
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), FS: fs}, fn)
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteTCIOReadOCIO writes the interleaved pattern through TCIO and
// reads it back through an OCIO collective read with a file view — the
// strongest cross-stack agreement check.
func TestWriteTCIOReadOCIO(t *testing.T) {
	const procs, pairs = 4, 32
	fs := sharedFS()

	run(t, fs, procs, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "cross", tcio.WriteMode, tcio.Config{SegmentSize: 128, NumSegments: 8})
		if err != nil {
			return err
		}
		for i := 0; i < pairs; i++ {
			pos := int64(c.Rank()*12 + i*12*c.Size())
			var buf [12]byte
			binary.LittleEndian.PutUint32(buf[:4], uint32(c.Rank()*100+i))
			binary.LittleEndian.PutUint64(buf[4:], uint64(c.Rank()*900+i))
			if err := f.WriteAt(pos, buf[:]); err != nil {
				return err
			}
		}
		return f.Close()
	})

	run(t, fs, procs, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, "cross")
		if err != nil {
			return err
		}
		etype, err := datatype.Struct([]int{1, 1}, []int64{0, 4}, []datatype.Type{datatype.Int, datatype.Double})
		if err != nil {
			return err
		}
		ft, err := datatype.Vector(pairs, 1, c.Size(), etype)
		if err != nil {
			return err
		}
		ft, err = datatype.Resized(ft, int64(pairs*c.Size())*etype.Extent())
		if err != nil {
			return err
		}
		if err := f.SetView(int64(c.Rank())*12, etype, ft); err != nil {
			return err
		}
		got, err := f.ReadAll(int64(pairs * 12))
		if err != nil {
			return err
		}
		for i := 0; i < pairs; i++ {
			iv := binary.LittleEndian.Uint32(got[i*12:])
			dv := binary.LittleEndian.Uint64(got[i*12+4:])
			if iv != uint32(c.Rank()*100+i) || dv != uint64(c.Rank()*900+i) {
				return fmt.Errorf("rank %d pair %d = (%d,%d)", c.Rank(), i, iv, dv)
			}
		}
		return f.Close()
	})
}

// TestWriteOCIOReadTCIO is the reverse direction.
func TestWriteOCIOReadTCIO(t *testing.T) {
	const procs = 4
	const perRank = 256
	fs := sharedFS()

	run(t, fs, procs, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, "cross2")
		if err != nil {
			return err
		}
		// Contiguous per-rank regions through a view displacement.
		if err := f.SetView(int64(c.Rank()*perRank), datatype.Byte, datatype.Byte); err != nil {
			return err
		}
		data := bytes.Repeat([]byte{byte(c.Rank() + 1)}, perRank)
		return f.WriteAll(data)
	})

	run(t, fs, procs, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "cross2", tcio.ReadMode, tcio.Config{SegmentSize: 128, NumSegments: 4})
		if err != nil {
			return err
		}
		dst := make([]byte, perRank)
		if err := f.ReadAt(int64(c.Rank()*perRank), dst); err != nil {
			return err
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		for i, b := range dst {
			if b != byte(c.Rank()+1) {
				return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, b)
			}
		}
		return f.Close()
	})
}

// TestRestartWithDifferentRankCount checkpoints ART at one scale and
// restarts at another — the round-robin re-dealing must reproduce every
// tree exactly.
func TestRestartWithDifferentRankCount(t *testing.T) {
	const trees = 24
	fs := sharedFS()

	run(t, fs, 4, func(c *mpi.Comm) error {
		mine := art.GenerateForRank(trees, 2, c.Size(), c.Rank(), 42)
		return art.Dump(c, art.LibTCIO, "rescale", mine, trees, 512)
	})

	run(t, fs, 8, func(c *mpi.Comm) error {
		want := art.GenerateForRank(trees, 2, c.Size(), c.Rank(), 42)
		got, err := art.Restore(c, art.LibTCIO, "rescale")
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("rank %d: restored %d trees, want %d", c.Rank(), len(got), len(want))
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				return fmt.Errorf("tree %d differs after rescaled restart", want[i].ID)
			}
		}
		return nil
	})
}

// TestMixedSeekWriteSequences runs randomized sequences of Write, WriteAt
// and Seek through TCIO and checks the resulting file against a plain
// byte-slice reference.
func TestMixedSeekWriteSequences(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		const size = 2048
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, size)
		type op struct {
			seek    bool
			off     int64
			payload []byte
		}
		// Single-rank plan: arbitrary overwrites are order-dependent, so
		// only one rank writes.
		var plan []op
		pos := int64(0)
		for i := 0; i < 60; i++ {
			switch rng.Intn(3) {
			case 0: // Seek
				pos = int64(rng.Intn(size - 64))
				plan = append(plan, op{seek: true, off: pos})
			default: // sequential Write at pos
				n := rng.Intn(48) + 1
				if pos+int64(n) > size {
					pos = 0
					plan = append(plan, op{seek: true, off: 0})
				}
				p := make([]byte, n)
				rng.Read(p)
				copy(ref[pos:], p)
				plan = append(plan, op{off: pos, payload: p})
				pos += int64(n)
			}
		}
		fs := sharedFS()
		name := fmt.Sprintf("mixed%d", seed)
		run(t, fs, 1, func(c *mpi.Comm) error {
			f, err := tcio.Open(c, name, tcio.WriteMode, tcio.Config{SegmentSize: 256, NumSegments: 8})
			if err != nil {
				return err
			}
			for _, o := range plan {
				if o.seek {
					if _, err := f.Seek(o.off, 0); err != nil {
						return err
					}
					continue
				}
				if err := f.Write(o.payload); err != nil {
					return err
				}
			}
			return f.Close()
		})
		snap := fs.Open(name).Snapshot()
		if len(snap) < len(ref) {
			snap = append(snap, make([]byte, len(ref)-len(snap))...)
		}
		if !bytes.Equal(snap, ref) {
			t.Fatalf("seed %d: mixed sequence diverged from reference", seed)
		}
	}
}

// TestOOMAbortsCleanly injects an out-of-memory failure into one rank's
// collective write and checks that the whole world terminates with the
// right error instead of deadlocking.
func TestOOMAbortsCleanly(t *testing.T) {
	m := cluster.Lonestar()
	m.ByteScale = 1 << 20
	fscfg := pfs.DefaultConfig()
	fscfg.ByteScale = m.ByteScale
	fscfg.StripeSize = 1
	_, err := mpi.Run(mpi.Config{Procs: 12, Machine: m, FS: pfs.New(fscfg), EnforceMemory: true},
		func(c *mpi.Comm) error {
			f, err := mpiio.Open(c, "oom")
			if err != nil {
				return err
			}
			if err := f.SeekTo(int64(c.Rank()) * 4096); err != nil {
				return err
			}
			// 4 KiB real = 4 GiB simulated per aggregator domain: boom.
			return f.WriteAll(make([]byte, 4096))
		})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, cluster.ErrOutOfMemory) && !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestConcurrentTCIOAndVanillaFiles runs a TCIO session and independent
// vanilla writes against different files in the same world.
func TestConcurrentTCIOAndVanillaFiles(t *testing.T) {
	fs := sharedFS()
	run(t, fs, 4, func(c *mpi.Comm) error {
		tf, err := tcio.Open(c, "t.dat", tcio.WriteMode, tcio.Config{SegmentSize: 128, NumSegments: 4})
		if err != nil {
			return err
		}
		vf, err := mpiio.Open(c, "v.dat")
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			off := int64(c.Rank()*8 + i)
			if err := tf.WriteAt(off, []byte{byte(c.Rank() + 1)}); err != nil {
				return err
			}
			if err := vf.WriteAt(off, []byte{byte(c.Rank() + 1)}); err != nil {
				return err
			}
		}
		if err := tf.Close(); err != nil {
			return err
		}
		if err := vf.Close(); err != nil {
			return err
		}
		return c.Barrier()
	})
	a := fs.Open("t.dat").Snapshot()
	b := fs.Open("v.dat").Snapshot()
	if !bytes.Equal(a, b) {
		t.Fatalf("TCIO and vanilla files differ:\n%v\n%v", a, b)
	}
}
