package integration

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

// The property: any random plan of interleaved typed writes produces
// byte-identical files whether issued through TCIO (WriteTyped), OCIO
// (collective WriteAll), or the POSIX-style reference (independent
// mpiio.WriteAt) — and TCIO's lazy typed reads return exactly what the
// reference wrote.

const (
	propProcs     = 4
	propBlocks    = 8  // typed records per rank
	propBlockSize = 48 // bytes per record; divisible by every basic width
)

// propOp is one typed record in a rank's plan.
type propOp struct {
	typ  datatype.Type
	data []byte // packed payload, propBlockSize bytes
}

// propPlan derives a deterministic per-rank op list from the seed. Basic
// types have extent == size, so the packed payload doubles as the typed
// memory buffer.
func propPlan(seed int64) [][]propOp {
	rng := rand.New(rand.NewSource(seed))
	basics := []datatype.Type{datatype.Byte, datatype.Short, datatype.Int, datatype.Double}
	plan := make([][]propOp, propProcs)
	for r := range plan {
		plan[r] = make([]propOp, propBlocks)
		for k := range plan[r] {
			data := make([]byte, propBlockSize)
			rng.Read(data)
			plan[r][k] = propOp{typ: basics[rng.Intn(len(basics))], data: data}
		}
	}
	return plan
}

// propExpected assembles the whole-file ground truth of a plan: rank r's
// k-th record lands at block k*P + r.
func propExpected(plan [][]propOp) []byte {
	out := make([]byte, propProcs*propBlocks*propBlockSize)
	for r, ops := range plan {
		for k, op := range ops {
			pos := (k*propProcs + r) * propBlockSize
			copy(out[pos:pos+propBlockSize], op.data)
		}
	}
	return out
}

func propPos(rank, k int) int64 { return int64((k*propProcs + rank) * propBlockSize) }

// writeTCIO runs the plan through TCIO's typed write path.
func writeTCIO(plan [][]propOp) (*mpiiFS, error) {
	fs := newMpiiFS()
	err := fs.run(func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "prop", tcio.WriteMode, tcio.Config{SegmentSize: 256, NumSegments: 8})
		if err != nil {
			return err
		}
		for k, op := range plan[c.Rank()] {
			if _, err := f.Seek(propPos(c.Rank(), k), 0); err != nil {
				return err
			}
			count := propBlockSize / int(op.typ.Size())
			if err := f.WriteTyped(op.data, count, op.typ); err != nil {
				return err
			}
		}
		return f.Close()
	})
	return fs, err
}

// writeOCIO runs the plan through OCIO: one collective write per record
// round, every rank contributing its interleaved block.
func writeOCIO(plan [][]propOp) (*mpiiFS, error) {
	fs := newMpiiFS()
	err := fs.run(func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, "prop")
		if err != nil {
			return err
		}
		for k, op := range plan[c.Rank()] {
			if err := f.SeekTo(propPos(c.Rank(), k)); err != nil {
				return err
			}
			if err := f.WriteAll(op.data); err != nil {
				return err
			}
		}
		return f.Close()
	})
	return fs, err
}

// writePOSIX runs the plan through the independent per-piece reference.
func writePOSIX(plan [][]propOp) (*mpiiFS, error) {
	fs := newMpiiFS()
	err := fs.run(func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, "prop")
		if err != nil {
			return err
		}
		for k, op := range plan[c.Rank()] {
			if err := f.WriteAt(propPos(c.Rank(), k), op.data); err != nil {
				return err
			}
		}
		return f.Close()
	})
	return fs, err
}

// readBackTCIO reads every record of the plan back through ReadTyped and
// checks it against the plan.
func readBackTCIO(fs *mpiiFS, plan [][]propOp) error {
	return fs.run(func(c *mpi.Comm) error {
		f, err := tcio.Open(c, "prop", tcio.ReadMode, tcio.Config{SegmentSize: 256, NumSegments: 8})
		if err != nil {
			return err
		}
		ops := plan[c.Rank()]
		got := make([][]byte, len(ops))
		for k, op := range ops {
			got[k] = make([]byte, propBlockSize)
			if _, err := f.Seek(propPos(c.Rank(), k), 0); err != nil {
				return err
			}
			count := propBlockSize / int(op.typ.Size())
			if err := f.ReadTyped(got[k], count, op.typ); err != nil {
				return err
			}
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		for k, op := range ops {
			if !bytes.Equal(got[k], op.data) {
				return fmt.Errorf("rank %d record %d: typed read mismatch", c.Rank(), k)
			}
		}
		return f.Close()
	})
}

// mpiiFS pairs a fresh shared file system with a 4-rank runner.
type mpiiFS struct {
	fs *pfs.FileSystem
}

func newMpiiFS() *mpiiFS { return &mpiiFS{fs: sharedFS()} }

func (m *mpiiFS) run(fn func(*mpi.Comm) error) error {
	_, err := mpi.Run(mpi.Config{Procs: propProcs, Machine: cluster.Lonestar(), FS: m.fs}, fn)
	return err
}

// snapshot returns the named file's full contents, zero-padded to the
// plan's total size so sparse tails still compare.
func (m *mpiiFS) snapshot(name string) []byte {
	snap := m.fs.Open(name).Snapshot()
	want := propProcs * propBlocks * propBlockSize
	for len(snap) < want {
		snap = append(snap, 0)
	}
	return snap
}

func TestTypedPlansRoundTrip(t *testing.T) {
	var failure error
	prop := func(seed int64) bool {
		plan := propPlan(seed)
		want := propExpected(plan)

		tcioFS, err := writeTCIO(plan)
		if err != nil {
			failure = fmt.Errorf("seed %d: tcio write: %w", seed, err)
			return false
		}
		ocioFS, err := writeOCIO(plan)
		if err != nil {
			failure = fmt.Errorf("seed %d: ocio write: %w", seed, err)
			return false
		}
		posixFS, err := writePOSIX(plan)
		if err != nil {
			failure = fmt.Errorf("seed %d: posix write: %w", seed, err)
			return false
		}

		for name, fs := range map[string]*mpiiFS{"tcio": tcioFS, "ocio": ocioFS, "posix": posixFS} {
			if got := fs.snapshot("prop"); !bytes.Equal(got, want) {
				failure = fmt.Errorf("seed %d: %s file diverges from ground truth", seed, name)
				return false
			}
		}
		if err := readBackTCIO(tcioFS, plan); err != nil {
			failure = fmt.Errorf("seed %d: tcio read-back: %w", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("%v (%v)", err, failure)
	}
}
