package tcio

// Counters and trace hooks shared by all of the library's paths.

import (
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// Stats counts the library's internal activity on one rank — used by the
// ablation benchmarks and tests.
type Stats struct {
	Writes       int64 // application write calls
	Reads        int64 // application read calls
	Level1Flush  int64 // level-1 -> level-2 shipments (one-sided puts)
	Gets         int64 // level-2 -> application transfers (one-sided gets)
	Populations  int64 // segments demand-populated from the file system
	FSWrites     int64 // file system write requests (eager drains + Close/drain)
	BytesWritten int64
	BytesRead    int64
	// Retries counts transient faults this rank absorbed with backoff
	// across all library paths (file system RPCs and one-sided puts).
	Retries int64

	// Write-behind pipeline (Config.WriteBehindThreshold > 0).
	EagerDrains int64 // background drain batches (one covered segment each)
	// EagerWrites counts the file system write requests those batches
	// issued (a gapped segment drains as several requests), so
	// EagerWrites + FlushResidue == FSWrites at any threshold.
	EagerWrites  int64
	FlushResidue int64 // file system write requests left for the final drain
	// OverlapSaved is the background lane's busy time minus the waits the
	// rank actually paid for it (backpressure plus the final drain's
	// synchronization) — the drain work hidden behind the application.
	OverlapSaved simtime.Duration

	// Read prefetch (Config.PrefetchSegments > 0).
	PrefetchIssued int64 // segment reads started on the background lane
	PrefetchHits   int64 // populations served from the prefetch cache
	// PrefetchWasted counts staged segments never consumed: another rank
	// populated the segment first, or the entry was evicted or dropped
	// before its Fetch step arrived. Each is a real file system read the
	// demand path would not have issued (see DESIGN.md §2b).
	PrefetchWasted int64

	// Noncontiguous read engine (Config.SieveBuffer / CollectiveRead).
	// SieveReads counts covering reads issued by the data sieve; each
	// replaces one or more per-run demand reads. SieveWasteBytes counts
	// hole bytes those covers moved without delivering — the price of the
	// request reduction. TwoPhaseExchanges counts the read-intent exchange
	// rounds of the two-phase collective read (one per collective Fetch,
	// including the one inside Close).
	SieveReads        int64
	SieveWasteBytes   int64
	TwoPhaseExchanges int64

	// Node aggregation (Config.NodeAggregation).
	NodeCombines int64 // combined puts this rank issued as a node leader
	// InterNodePutsSaved counts the inter-node one-sided puts the combine
	// avoided: for each combined put to a remote owner, one fewer than the
	// deposits merged (each deposit would have been its own put).
	InterNodePutsSaved int64

	// Journal tier (Config.Journal / SegmentMemoryBudget; DESIGN.md §2f).
	// JournalEpochs counts non-empty epoch batches appended to this rank's
	// journal; JournalAppends the storage write requests they issued
	// (batches plus commit markers — the journal's contribution to the
	// file system request stream); JournalBytes the journal bytes written.
	// JournalCommits counts commit markers: equal to JournalEpochs in a
	// correct writer, and the observable gap of the skip-commit-marker
	// mutant.
	JournalEpochs  int64
	JournalAppends int64
	JournalBytes   int64
	JournalCommits int64
	// Memory-pressure spill (SegmentMemoryBudget > 0). SpillSegments
	// counts dirty segments marked non-resident (their bytes live in the
	// journal until re-faulted); CleanDrops counts evicted segments whose
	// buffered runs were already durable on the data file, so dropping
	// them cost nothing; SpillRefaultBytes counts journal bytes read back
	// when a spilled segment's data was needed again (re-dirty or drain).
	SpillSegments     int64
	CleanDrops        int64
	SpillRefaultBytes int64

	// EpochEvictions counts put epochs closed early because the pipeline
	// window was full — churn the LRU eviction policy is meant to minimize.
	EpochEvictions int64

	// Virtual time spent in the phases of level-1 -> level-2 shipment,
	// for performance diagnosis and the ablation reports.
	LockWait   simtime.Duration
	PutIssue   simtime.Duration
	UnlockWait simtime.Duration
}

// Stats returns this rank's activity counters.
func (f *File) Stats() Stats { return f.stats }

// emit records a trace event when tracing is enabled.
func (f *File) emit(kind trace.Kind, start simtime.Time, bytes int64, detail string) {
	if f.cfg.Trace == nil {
		return
	}
	f.cfg.Trace.Record(trace.Event{
		Rank:   f.c.Rank(),
		Start:  start,
		Dur:    f.c.Now().Sub(start),
		Kind:   kind,
		Bytes:  bytes,
		Detail: detail,
	})
}
