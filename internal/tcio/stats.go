package tcio

// Counters and trace hooks shared by all of the library's paths.

import (
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// Stats counts the library's internal activity on one rank — used by the
// ablation benchmarks and tests.
type Stats struct {
	Writes       int64 // application write calls
	Reads        int64 // application read calls
	Level1Flush  int64 // level-1 -> level-2 shipments (one-sided puts)
	Gets         int64 // level-2 -> application transfers (one-sided gets)
	Populations  int64 // segments demand-populated from the file system
	FSWrites     int64 // file system write requests at Close/drain
	BytesWritten int64
	BytesRead    int64
	// Retries counts transient faults this rank absorbed with backoff
	// across all library paths (file system RPCs and one-sided puts).
	Retries int64

	// Virtual time spent in the phases of level-1 -> level-2 shipment,
	// for performance diagnosis and the ablation reports.
	LockWait   simtime.Duration
	PutIssue   simtime.Duration
	UnlockWait simtime.Duration
}

// Stats returns this rank's activity counters.
func (f *File) Stats() Stats { return f.stats }

// emit records a trace event when tracing is enabled.
func (f *File) emit(kind trace.Kind, start simtime.Time, bytes int64, detail string) {
	if f.cfg.Trace == nil {
		return
	}
	f.cfg.Trace.Record(trace.Event{
		Rank:   f.c.Rank(),
		Start:  start,
		Dur:    f.c.Now().Sub(start),
		Kind:   kind,
		Bytes:  bytes,
		Detail: detail,
	})
}
