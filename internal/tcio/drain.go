package tcio

// The file system side of TCIO: populating level-2 segments from the file
// (reads) and draining dirty runs back to it (writes). All transfers go
// through the storage layer, which batches retry handling, tracing, and
// virtual-time charging — and, with Config.DrainWorkers > 1, overlaps
// requests across distinct OSTs.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
)

// populate loads one whole segment from the file system into its owner's
// window — the aggregated read that makes TCIO's read path collective in
// effect. The caller must hold the owner's exclusive window lock.
func (f *File) populate(seg int64, owner int, slot int64) error {
	base := f.layout.SegStart(seg)
	n := f.segSize
	if size := f.store.File().Size(); base+n > size {
		n = size - base
	}
	if n <= 0 {
		f.meta.setPopulated(seg)
		return nil
	}
	// Reused staging: both the file system read and the window put move
	// their bytes physically before returning, so one segment-sized buffer
	// serves every population this rank performs. Plain memory, like the
	// per-call allocation it replaces: never charged to the simulated-memory
	// accountant (only Malloc/Reserve roll SiteMemAlloc), so the per-rank
	// allocation fault stream is unchanged.
	if f.popBuf == nil {
		f.popBuf = make([]byte, f.segSize)
	}
	buf := f.popBuf[:n]
	res, err := f.store.ReadExtents("tcio: populate", trace.KindPopulate,
		[]storage.Request{{Off: base, Data: buf, Tag: fmt.Sprintf("seg=%d", seg)}})
	f.stats.Retries += res.Retries
	if err != nil {
		return err
	}
	if err := f.win.PutSegments(owner, []extent.Extent{{Off: slot * f.segSize, Len: n}}, buf); err != nil {
		return err
	}
	f.meta.setPopulated(seg)
	f.stats.Populations++
	return nil
}

// preloadAll populates every local slot that overlaps the file — the eager
// ablation. Each rank reads only its own segments, so the file system sees
// P large disjoint requests; one storage batch lets them fan out per OST.
func (f *File) preloadAll() error {
	size := f.store.File().Size()
	local := f.win.Local()
	var reqs []storage.Request
	var segs []int64
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := f.layout.RankSegment(f.c.Rank(), slot)
		base := f.layout.SegStart(seg)
		if base >= size {
			break
		}
		n := f.segSize
		if base+n > size {
			n = size - base
		}
		reqs = append(reqs, storage.Request{
			Off:  base,
			Data: local[slot*f.segSize : slot*f.segSize+n],
			Tag:  fmt.Sprintf("seg=%d (preload)", seg),
		})
		segs = append(segs, seg)
	}
	res, err := f.store.ReadExtents("tcio: preload", trace.KindPopulate, reqs)
	f.stats.Retries += res.Retries
	f.stats.Populations += res.Requests
	if err != nil {
		return err
	}
	for _, seg := range segs {
		f.meta.setPopulated(seg)
	}
	return f.c.Barrier()
}

// drain writes this rank's still-undrained level-2 runs to the file system
// as one storage batch of large aligned requests. With write-behind armed,
// most segments already left on the background lane and only the residue
// remains; the rank then synchronizes with the lane so Close returns with
// every byte on disk.
func (f *File) drain() error {
	// Spilled slots first: their bytes live in the journal, not (in
	// simulated terms) in the window, so the drain pays the read-back
	// before it may write them (journal.go).
	if err := f.refaultSpilled(); err != nil {
		return err
	}
	local := f.win.Local()
	var reqs []storage.Request
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := f.layout.RankSegment(f.c.Rank(), slot)
		runs, arrival := f.meta.takePending(seg)
		if len(runs) == 0 {
			continue
		}
		// The barrier before drain already synchronized every rank past its
		// unlocks, so the recorded put arrivals are in this rank's past;
		// AdvanceTo keeps the causal bound explicit (and free) regardless.
		f.c.AdvanceTo(arrival)
		base := f.layout.SegStart(seg)
		for _, r := range runs {
			reqs = append(reqs, storage.Request{
				Off:  base + r.Off,
				Data: local[slot*f.segSize+r.Off : slot*f.segSize+r.Off+r.Len],
				Tag:  fmt.Sprintf("seg=%d off=%d", seg, base+r.Off),
			})
		}
	}
	res, err := f.store.WriteExtents("tcio: drain", trace.KindDrain, reqs)
	f.stats.Retries += res.Retries
	f.stats.FSWrites += res.Requests
	f.stats.FlushResidue += res.Requests
	f.settleWriteBehind()
	return err
}
