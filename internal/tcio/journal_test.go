package tcio

// Tests of the journal tier: clean-run truncation, crash recovery to a
// byte-exact image, the out-of-core segment budget (spill + re-fault), and
// the disarmed path's zero-overhead guarantee.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
)

// journalPattern writes `blocks` 16-byte blocks per rank, round-robin
// interleaved, flushing after each of `rounds` equal parts. The data byte
// at (rank, block, j) is rank*31 + block*7 + j + 5.
func journalPattern(c *mpi.Comm, f *File, blocks, rounds int) error {
	per := (blocks + rounds - 1) / rounds
	for i := 0; i < blocks; i++ {
		pos := int64((i*c.Size() + c.Rank()) * 16)
		var buf [16]byte
		for j := range buf {
			buf[j] = byte(c.Rank()*31 + i*7 + j + 5)
		}
		if err := f.WriteAt(pos, buf[:]); err != nil {
			return err
		}
		if (i+1)%per == 0 && i+1 < blocks {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// journalExpected is the file image journalPattern produces.
func journalExpected(procs, blocks int) []byte {
	out := make([]byte, procs*blocks*16)
	for r := 0; r < procs; r++ {
		for i := 0; i < blocks; i++ {
			base := (i*procs + r) * 16
			for j := 0; j < 16; j++ {
				out[base+j] = byte(r*31 + i*7 + j + 5)
			}
		}
	}
	return out
}

func TestJournalCleanRunTruncatesAndRecoverIsNoop(t *testing.T) {
	const procs, blocks = 3, 24
	fs := pfs.New(pfs.DefaultConfig())
	cfg := Config{SegmentSize: 64, NumSegments: 48, Journal: true}
	stats := make([]Stats, procs)
	if _, err := mpi.Run(mpi.Config{Procs: procs, FS: fs}, func(c *mpi.Comm) error {
		f, err := Open(c, "clean", WriteMode, cfg)
		if err != nil {
			return err
		}
		if err := journalPattern(c, f, blocks, 3); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		stats[c.Rank()] = f.Stats()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := fs.Open("clean").Snapshot()
	if want := journalExpected(procs, blocks); !bytes.Equal(got, want) {
		t.Fatalf("journaled run diverged: got %d bytes, want %d", len(got), len(want))
	}
	for r := 0; r < procs; r++ {
		s := stats[r]
		if s.JournalEpochs == 0 || s.JournalCommits != s.JournalEpochs {
			t.Fatalf("rank %d: epochs=%d commits=%d", r, s.JournalEpochs, s.JournalCommits)
		}
		wn := WALFileName("clean", r)
		if !fs.Exists(wn) {
			t.Fatalf("rank %d: journal file missing", r)
		}
		if sz := fs.Open(wn).Size(); sz != 0 {
			t.Fatalf("rank %d: journal not truncated after clean Close: %d bytes", r, sz)
		}
	}
	rep, err := Recover(fs, "clean", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesApplied != 0 {
		t.Fatalf("recovery after clean Close replayed %d bytes", rep.BytesApplied)
	}
}

func TestCrashBeforeDrainRecoversByteExact(t *testing.T) {
	const procs, blocks = 4, 32
	fsCfg := pfs.DefaultConfig()
	fs := pfs.New(fsCfg)
	log := &pfs.Oplog{}
	fs.SetOplog(log)
	cfg := Config{SegmentSize: 64, NumSegments: 64, Journal: true}
	if _, err := mpi.Run(mpi.Config{Procs: procs, FS: fs}, func(c *mpi.Comm) error {
		f, err := Open(c, "crash", WriteMode, cfg)
		if err != nil {
			return err
		}
		if err := journalPattern(c, f, blocks, 4); err != nil {
			return err
		}
		return f.Close()
	}); err != nil {
		t.Fatal(err)
	}
	// Crash at the instant the last journal store settled: every epoch is
	// committed, no drain store has started, so recovery must rebuild the
	// complete final image from the journals alone.
	var at simtime.Time
	for _, r := range log.Records() {
		if r.Kind == pfs.OpStore && strings.Contains(r.Name, ".wal.") && r.End > at {
			at = r.End
		}
	}
	if at == 0 {
		t.Fatal("no journal stores logged")
	}
	crashed := pfs.New(fsCfg)
	log.ReplayAt(crashed, at)
	if got := crashed.Open("crash").Snapshot(); len(got) != 0 {
		t.Fatalf("data file has %d bytes before any drain started", len(got))
	}
	rep, err := Recover(crashed, "crash", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := journalExpected(procs, blocks)
	if rep.BytesApplied < int64(len(want)) {
		t.Fatalf("recovery applied %d bytes, want at least %d", rep.BytesApplied, len(want))
	}
	if got := crashed.Open("crash").Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("recovered image diverges (%d vs %d bytes)", len(got), len(want))
	}
}

// TestBudgetSpillsAndStaysByteExact is the out-of-core regression: a
// budget far below the working set must spill (never silently drop) dirty
// segments and still produce the byte-exact file.
func TestBudgetSpillsAndStaysByteExact(t *testing.T) {
	const procs, blocks = 2, 64
	fs := pfs.New(pfs.DefaultConfig())
	// Working set: 2048 bytes = 16 dirty slots of 64 bytes per rank;
	// budget admits 2 resident slots.
	cfg := Config{SegmentSize: 64, NumSegments: 16, SegmentMemoryBudget: 128}
	stats := make([]Stats, procs)
	if _, err := mpi.Run(mpi.Config{Procs: procs, FS: fs}, func(c *mpi.Comm) error {
		f, err := Open(c, "budget", WriteMode, cfg)
		if err != nil {
			return err
		}
		if err := journalPattern(c, f, blocks, 4); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		stats[c.Rank()] = f.Stats()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := fs.Open("budget").Snapshot(), journalExpected(procs, blocks); !bytes.Equal(got, want) {
		t.Fatalf("budgeted run diverged (%d vs %d bytes)", len(got), len(want))
	}
	for r := 0; r < procs; r++ {
		s := stats[r]
		if s.SpillSegments == 0 {
			t.Fatalf("rank %d: budget below working set never spilled", r)
		}
		if s.SpillRefaultBytes == 0 {
			t.Fatalf("rank %d: spilled segments drained without journal read-back", r)
		}
	}
}

// TestBudgetFitsWhereUnbudgetedOOMs pins the out-of-core claim against the
// simulated memory accountant: a machine share too small for the full
// window admits the budgeted session and rejects the unbudgeted one with
// ErrOutOfMemory.
func TestBudgetFitsWhereUnbudgetedOOMs(t *testing.T) {
	const procs, blocks = 2, 64
	machine := cluster.Lonestar()
	machine.CoresPerNode = 2
	// Full window: 16*64 = 1024 B; plus the level-1 segment. Grant 512 B
	// per rank (1024 per 2-core node): the full window cannot fit, a
	// 128-byte budget plus the 64-byte level-1 buffer can.
	machine.MemPerNode = 1024
	for _, tc := range []struct {
		name   string
		budget int64
		ok     bool
	}{
		{"unbudgeted", 0, false},
		{"budgeted", 128, true},
	} {
		fs := pfs.New(pfs.DefaultConfig())
		cfg := Config{SegmentSize: 64, NumSegments: 16, Journal: true, SegmentMemoryBudget: tc.budget}
		_, err := mpi.Run(mpi.Config{Procs: procs, Machine: machine, FS: fs, EnforceMemory: true},
			func(c *mpi.Comm) error {
				f, err := Open(c, "oom-"+tc.name, WriteMode, cfg)
				if err != nil {
					return err
				}
				if err := journalPattern(c, f, blocks, 2); err != nil {
					return err
				}
				return f.Close()
			})
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got, want := fs.Open("oom-"+tc.name).Snapshot(), journalExpected(procs, blocks); !bytes.Equal(got, want) {
				t.Fatalf("%s: diverged", tc.name)
			}
		} else if !errors.Is(err, cluster.ErrOutOfMemory) {
			t.Fatalf("%s: want ErrOutOfMemory, got %v", tc.name, err)
		}
	}
}

// TestDisarmedJournalZeroOverhead runs the same workload with and without
// the journal: the disarmed run must issue exactly the data-file request
// stream of the armed run (the journal adds side-file requests, never
// changes data ones), report zero journal activity, and create no journal
// files.
func TestDisarmedJournalZeroOverhead(t *testing.T) {
	const procs, blocks = 3, 24
	type outcome struct {
		stats []Stats
		image []byte
	}
	runOne := func(journal bool) outcome {
		fs := pfs.New(pfs.DefaultConfig())
		cfg := Config{SegmentSize: 64, NumSegments: 48, Journal: journal}
		out := outcome{stats: make([]Stats, procs)}
		if _, err := mpi.Run(mpi.Config{Procs: procs, FS: fs}, func(c *mpi.Comm) error {
			f, err := Open(c, "zero", WriteMode, cfg)
			if err != nil {
				return err
			}
			if err := journalPattern(c, f, blocks, 3); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			out.stats[c.Rank()] = f.Stats()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if journal {
			for r := 0; r < procs; r++ {
				if !fs.Exists(WALFileName("zero", r)) {
					t.Fatalf("armed run missing journal of rank %d", r)
				}
			}
		} else if fs.Exists(WALFileName("zero", 0)) {
			t.Fatal("disarmed run created a journal file")
		}
		out.image = fs.Open("zero").Snapshot()
		return out
	}
	off, on := runOne(false), runOne(true)
	if !bytes.Equal(off.image, on.image) {
		t.Fatal("journal changed the data file's bytes")
	}
	for r := 0; r < procs; r++ {
		d, a := off.stats[r], on.stats[r]
		if d.JournalEpochs != 0 || d.JournalAppends != 0 || d.JournalBytes != 0 ||
			d.JournalCommits != 0 || d.SpillSegments != 0 || d.CleanDrops != 0 ||
			d.SpillRefaultBytes != 0 {
			t.Fatalf("rank %d: disarmed run counted journal activity: %+v", r, d)
		}
		if d.FSWrites != a.FSWrites || d.BytesWritten != a.BytesWritten {
			t.Fatalf("rank %d: journal changed the data request stream: fsWrites %d vs %d",
				r, d.FSWrites, a.FSWrites)
		}
	}
}

// TestBudgetNormalizeComposition pins how the budget composes with the
// prefetch knobs: a budget implies Journal, is floored at one segment, and
// shrinks the lookahead and its cache to the resident cap.
func TestBudgetNormalizeComposition(t *testing.T) {
	cfg, err := Config{
		SegmentSize:         64,
		NumSegments:         16,
		SegmentMemoryBudget: 200, // 3 segments
		PrefetchSegments:    8,
		MaxCachedSegments:   12,
	}.Normalize(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Journal {
		t.Fatal("budget did not imply Journal")
	}
	if cfg.PrefetchSegments != 3 || cfg.MaxCachedSegments != 3 {
		t.Fatalf("prefetch knobs not clamped to resident cap: prefetch=%d cache=%d",
			cfg.PrefetchSegments, cfg.MaxCachedSegments)
	}
	small, err := Config{SegmentSize: 64, NumSegments: 4, SegmentMemoryBudget: 10}.Normalize(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if small.SegmentMemoryBudget != 64 {
		t.Fatalf("sub-segment budget not floored to one segment: %d", small.SegmentMemoryBudget)
	}
	if _, err := (Config{SegmentMemoryBudget: -1}).Normalize(1 << 20); err == nil {
		t.Fatal("negative budget accepted")
	}
}
