package tcio

// Tests for the overlap pipeline: write-behind correctness and accounting,
// l2meta under concurrent access, epoch LRU eviction, and the prefetch
// cache's refusal to evict dirty segments.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/simtime"
)

func TestOverlapConfigValidation(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		bad := []Config{
			{SegmentSize: 64, NumSegments: 4, WriteBehindThreshold: -0.1},
			{SegmentSize: 64, NumSegments: 4, WriteBehindThreshold: 1.5},
			{SegmentSize: 64, NumSegments: 4, WriteBehindQueue: -2},
			{SegmentSize: 64, NumSegments: 4, PrefetchSegments: -1},
			{SegmentSize: 64, NumSegments: 4, PrefetchSegments: 2, MaxCachedSegments: -1},
		}
		for i, cfg := range bad {
			if _, err := Open(c, fmt.Sprintf("obad%d", i), WriteMode, cfg); err == nil {
				return fmt.Errorf("config %d accepted: %+v", i, cfg)
			}
		}
		return nil
	})
}

// TestWriteBehindBytesIdentical writes the same interleaved data twice —
// synchronously and with the eager write-behind armed — and requires
// byte-identical files and an identical file system write request count.
func TestWriteBehindBytesIdentical(t *testing.T) {
	const procs = 4
	write := func(c *mpi.Comm, name string, threshold float64) (Stats, error) {
		cfg := smallCfg()
		cfg.WriteBehindThreshold = threshold
		f, err := Open(c, name, WriteMode, cfg)
		if err != nil {
			return Stats{}, err
		}
		for i := 0; i < 64; i++ {
			off := int64(i)*16*procs + int64(c.Rank())*16
			var block [16]byte
			for b := range block {
				block[b] = byte(c.Rank()*31 + i + b)
			}
			if err := f.WriteAt(off, block[:]); err != nil {
				return Stats{}, err
			}
		}
		if err := f.Close(); err != nil {
			return Stats{}, err
		}
		return f.Stats(), nil
	}
	run(t, procs, func(c *mpi.Comm) error {
		sync0, err := write(c, "wb-sync", 0)
		if err != nil {
			return err
		}
		eager, err := write(c, "wb-eager", 1)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			a := c.FS().Open("wb-sync").Snapshot()
			b := c.FS().Open("wb-eager").Snapshot()
			if !bytes.Equal(a, b) {
				return fmt.Errorf("write-behind changed file bytes (%d vs %d)", len(a), len(b))
			}
		}
		if sync0.EagerDrains != 0 {
			return fmt.Errorf("threshold 0 ran %d eager drains", sync0.EagerDrains)
		}
		// Accounting must balance: every file system write request is
		// either an eager batch's or the final residue's. (EagerDrains
		// counts batches, not requests — at threshold 1 a covered segment
		// coalesces to one request per batch, so both identities hold here.)
		if eager.EagerWrites+eager.FlushResidue != eager.FSWrites {
			return fmt.Errorf("eager writes %d + residue %d != fs writes %d",
				eager.EagerWrites, eager.FlushResidue, eager.FSWrites)
		}
		if eager.EagerWrites != eager.EagerDrains {
			return fmt.Errorf("threshold 1: eager writes %d != eager drains %d (covered segments must coalesce)",
				eager.EagerWrites, eager.EagerDrains)
		}
		return nil
	})
}

// TestWriteBehindGappedAccounting drives a fractional threshold where each
// eager batch holds two runs separated by a gap, so one EagerDrain issues
// two file system requests: the per-request EagerWrites counter — not the
// batch count — is what balances against FSWrites.
func TestWriteBehindGappedAccounting(t *testing.T) {
	const procs = 4
	write := func(c *mpi.Comm, name string, threshold float64) (Stats, error) {
		cfg := smallCfg() // 64-byte segments: threshold 0.5 needs 32 bytes
		cfg.WriteBehindThreshold = threshold
		f, err := Open(c, name, WriteMode, cfg)
		if err != nil {
			return Stats{}, err
		}
		// Ranks 0 and 2 cover half of every segment with a gap between
		// their runs: bytes [0,16) and [32,48).
		if c.Rank()%2 == 0 {
			for seg := int64(0); seg < 64; seg++ {
				var block [16]byte
				for b := range block {
					block[b] = byte(int64(c.Rank())*31 + seg + int64(b))
				}
				if err := f.WriteAt(seg*64+int64(c.Rank())*16, block[:]); err != nil {
					return Stats{}, err
				}
			}
		}
		if err := f.Flush(); err != nil {
			return Stats{}, err
		}
		// Every rank then ships one byte into its own segment 60+r (into
		// the [48,64) gap), so each rank's write-behind scan provably runs
		// after all the gapped runs above are recorded: every half-covered
		// segment eager-drains.
		if err := f.WriteAt((60+int64(c.Rank()))*64+48, []byte{7}); err != nil {
			return Stats{}, err
		}
		if err := f.Close(); err != nil {
			return Stats{}, err
		}
		return f.Stats(), nil
	}
	run(t, procs, func(c *mpi.Comm) error {
		if _, err := write(c, "wbg-sync", 0); err != nil {
			return err
		}
		eager, err := write(c, "wbg-eager", 0.5)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			a := c.FS().Open("wbg-sync").Snapshot()
			b := c.FS().Open("wbg-eager").Snapshot()
			if !bytes.Equal(a, b) {
				return fmt.Errorf("gapped write-behind changed file bytes (%d vs %d)", len(a), len(b))
			}
		}
		// Each rank owns 16 segments, every one half-covered by two gapped
		// runs: 16 eager batches of 2 requests each. The books must balance
		// on requests; the batch count deliberately does not.
		if eager.EagerDrains != 16 || eager.EagerWrites != 32 {
			return fmt.Errorf("eager drains %d (want 16), eager writes %d (want 32)",
				eager.EagerDrains, eager.EagerWrites)
		}
		if eager.EagerWrites+eager.FlushResidue != eager.FSWrites {
			return fmt.Errorf("eager writes %d + residue %d != fs writes %d",
				eager.EagerWrites, eager.FlushResidue, eager.FSWrites)
		}
		return nil
	})
}

// TestWriteBehindRewriteRace is the -race regression for rewrite traffic
// racing the eager drain: with a low threshold every shipped run can drain
// immediately, while a second pass of writes keeps physically copying into
// the same window regions the drains are snapshotting. Last bytes must win.
func TestWriteBehindRewriteRace(t *testing.T) {
	const procs = 4
	run(t, procs, func(c *mpi.Comm) error {
		cfg := smallCfg()
		cfg.WriteBehindThreshold = 0.25 // each 16-byte run triggers a drain
		f, err := Open(c, "wb-rewrite", WriteMode, cfg)
		if err != nil {
			return err
		}
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 64; i++ {
				off := int64(i)*16*procs + int64(c.Rank())*16
				var block [16]byte
				for b := range block {
					block[b] = byte(pass*101 + c.Rank()*31 + i + b)
				}
				if err := f.WriteAt(off, block[:]); err != nil {
					return err
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			got := c.FS().Open("wb-rewrite").Snapshot()
			for i := 0; i < 64; i++ {
				for r := 0; r < procs; r++ {
					off := int64(i)*16*procs + int64(r)*16
					for b := 0; b < 16; b++ {
						want := byte(101 + r*31 + i + b) // pass-2 values
						if got[off+int64(b)] != want {
							return fmt.Errorf("byte %d: got %d, want %d (rewrite lost)",
								off+int64(b), got[off+int64(b)], want)
						}
					}
				}
			}
		}
		return nil
	})
}

// TestL2MetaConcurrent hammers one l2meta from many goroutines — the shared
// state the write-behind scan reads while remote ships record runs. Run
// under -race this is the regression test for the pending/dirty bookkeeping.
func TestL2MetaConcurrent(t *testing.T) {
	m := newL2Meta(false)
	const (
		workers  = 8
		segs     = 16
		segSize  = 64
		perChunk = segSize / workers
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := int64(0); s < segs; s++ {
				m.addDirty(s, []extent.Extent{{Off: int64(w * perChunk), Len: perChunk}}, simtime.Time(w+1))
				_ = m.dirtyRuns(s)
				_ = m.hasDirty(s)
				if runs, at := m.takeCovered(s, segSize); len(runs) != 0 {
					// Full coverage observed: put the runs back the way a
					// drain error path would not — re-add so others see them.
					m.addDirty(s, runs, at)
				}
				m.setPopulated(s)
				_ = m.isPopulated(s)
			}
		}(w)
	}
	wg.Wait()
	for s := int64(0); s < segs; s++ {
		if got := extent.Total(m.dirtyRuns(s)); got != segSize {
			t.Fatalf("segment %d: dirty total %d, want %d", s, got, segSize)
		}
		if !m.isPopulated(s) {
			t.Fatalf("segment %d lost populated flag", s)
		}
	}
}

// TestEpochEvictionLRU checks that reusing an open epoch protects it from
// eviction: with PipelineDepth 2 and the ship pattern A B A C, the cold
// epoch B is evicted, not the recently reused A.
func TestEpochEvictionLRU(t *testing.T) {
	const procs = 4
	run(t, procs, func(c *mpi.Comm) error {
		cfg := Config{SegmentSize: 16, NumSegments: 16, PipelineDepth: 2}
		f, err := Open(c, "lru", WriteMode, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Segment s is owned by rank s%procs. Each write realigns the
			// level-1 buffer and ships the PREVIOUS segment, so the ship
			// sequence of owners is 1 (A), 2 (B), 1 (A, reused), 3 (C):
			// shipping to C with depth 2 must evict the cold B, not the
			// recently reused A.
			for _, seg := range []int64{1, 2, 17, 3, 5} {
				if err := f.WriteAt(seg*16, []byte{9}); err != nil {
					return err
				}
			}
			if len(f.openOwners) != 2 || f.openOwners[0] != 1 || f.openOwners[1] != 3 {
				return fmt.Errorf("open epochs %v, want [1 3] (LRU kept the reused epoch)", f.openOwners)
			}
			if f.stats.EpochEvictions != 1 {
				return fmt.Errorf("EpochEvictions = %d, want 1", f.stats.EpochEvictions)
			}
		}
		return f.Close()
	})
}

// TestPrefetchEvictRefusesDirty drives the cache bookkeeping directly: an
// entry whose segment still has undrained runs must survive eviction, and
// when every entry is dirty the incoming entry is dropped instead.
func TestPrefetchEvictRefusesDirty(t *testing.T) {
	f := &File{session: session{
		cfg:        Config{MaxCachedSegments: 2},
		meta:       newL2Meta(false),
		prefetched: make(map[int64]*prefetchEntry),
	}}
	f.meta.addDirty(1, []extent.Extent{{Off: 0, Len: 4}}, 0)
	f.insertPrefetched(1, &prefetchEntry{data: []byte{1}})
	f.insertPrefetched(2, &prefetchEntry{data: []byte{2}})
	// Cache full (cap 2): inserting 3 must evict the clean LRU entry 2,
	// not the dirty entry 1 — and the evicted entry's read was wasted.
	f.insertPrefetched(3, &prefetchEntry{data: []byte{3}})
	if _, ok := f.prefetched[1]; !ok {
		t.Fatal("dirty segment 1 was evicted")
	}
	if _, ok := f.prefetched[2]; ok {
		t.Fatal("clean segment 2 survived eviction")
	}
	if _, ok := f.prefetched[3]; !ok {
		t.Fatal("segment 3 was not cached")
	}
	if f.stats.PrefetchWasted != 1 {
		t.Fatalf("PrefetchWasted = %d after evicting unused entry, want 1", f.stats.PrefetchWasted)
	}
	// Make 3 dirty too: now every entry is dirty, so 4 must be dropped —
	// another wasted read.
	f.meta.addDirty(3, []extent.Extent{{Off: 0, Len: 4}}, 0)
	f.insertPrefetched(4, &prefetchEntry{data: []byte{4}})
	if _, ok := f.prefetched[4]; ok {
		t.Fatal("segment 4 cached despite a fully dirty cache")
	}
	if len(f.prefetchLRU) != 2 {
		t.Fatalf("LRU length %d, want 2", len(f.prefetchLRU))
	}
	if f.stats.PrefetchWasted != 2 {
		t.Fatalf("PrefetchWasted = %d after dropping entry, want 2", f.stats.PrefetchWasted)
	}
	// Draining segment 1 (takePending) makes it evictable again.
	f.meta.takePending(1)
	f.insertPrefetched(5, &prefetchEntry{data: []byte{5}})
	if _, ok := f.prefetched[1]; ok {
		t.Fatal("drained segment 1 still cached after eviction pass")
	}
	if _, ok := f.prefetched[5]; !ok {
		t.Fatal("segment 5 was not cached after eviction freed a slot")
	}
}

// TestPrefetchCacheClamp: a cache cap below the lookahead would evict the
// very segments the lookahead just staged (every prefetch a guaranteed
// duplicate read), so Open raises it to PrefetchSegments.
func TestPrefetchCacheClamp(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		cfg := Config{SegmentSize: 64, NumSegments: 4, PrefetchSegments: 4, MaxCachedSegments: 2}
		f, err := Open(c, "pf-clamp", WriteMode, cfg)
		if err != nil {
			return err
		}
		defer f.Close()
		if f.cfg.MaxCachedSegments != 4 {
			return fmt.Errorf("MaxCachedSegments = %d, want clamped to 4", f.cfg.MaxCachedSegments)
		}
		return nil
	})
}
