package tcio

// The journal tier (Config.Journal; DESIGN.md §2f): at every Flush and
// Close each rank appends its own segments' not-yet-journaled dirty runs
// to a per-rank journal file as one checksummed epoch batch sealed by a
// commit marker, through the same charged storage path as data writes.
// The epoch log buys two things:
//
//   - crash consistency: Recover (recover.go) replays committed epochs to
//     a byte-exact file state after a crash at any virtual time;
//
//   - out-of-core operation: once a dirty segment's bytes are journaled,
//     evicting it under Config.SegmentMemoryBudget is free — the slot is
//     marked non-resident and its bytes re-fault from the journal when the
//     drain (or a re-dirtying write) needs them again.
//
// The journal is truncated only after Close's final drain settled, so at
// every instant either the data file or the journal holds each committed
// byte.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/wal"
)

// WALFileName names the journal file of one rank's session on a data file.
func WALFileName(name string, rank int) string {
	return fmt.Sprintf("%s.wal.%d", name, rank)
}

// journalEpoch closes the current flush epoch: it advances the collective
// epoch counter, journals every unlogged run of this rank's segments (the
// owner's window holds the epoch's final bytes — the caller's barrier
// published all puts), and then enforces the segment budget by evicting
// resident slots past it. Collective structure: every armed rank calls it
// at the same point of Flush/Close, so the counter stays identical
// everywhere even on ranks whose epoch is empty.
func (f *File) journalEpoch() error {
	f.epoch++
	if f.jw == nil {
		return nil
	}
	var (
		runs  []wal.Run
		slots []int64
		need  int64
	)
	type slotRuns struct {
		slot int64
		base int64
		runs []extent.Extent
	}
	var collected []slotRuns
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := f.layout.RankSegment(f.c.Rank(), slot)
		un := f.meta.takeUnlogged(seg)
		if len(un) == 0 {
			continue
		}
		if f.nonResident[slot] {
			// A spilled slot was re-dirtied: fault its journaled bytes back
			// in (a charged journal read) before merging the new runs.
			if err := f.refaultSlot(slot); err != nil {
				return err
			}
		}
		collected = append(collected, slotRuns{slot: slot, base: f.layout.SegStart(seg), runs: un})
		need += extent.Total(un)
	}
	if len(collected) > 0 {
		// Snapshot the window bytes into the reused arena: every consumer
		// (the wal encoder) copies before AppendEpoch returns, so one
		// buffer serves all epochs (the wbArena discipline).
		if int64(len(f.jArena)) < need {
			f.jArena = make([]byte, need)
		}
		var pos int64
		for _, sr := range collected {
			for _, r := range sr.runs {
				dst := f.jArena[pos : pos+r.Len]
				f.win.SnapshotLocalInto(dst, sr.slot*f.segSize+r.Off)
				runs = append(runs, wal.Run{
					Extent: extent.Extent{Off: sr.base + r.Off, Len: r.Len},
					Data:   dst,
				})
				slots = append(slots, sr.slot)
				pos += r.Len
			}
		}
		refs, err := f.jw.AppendEpoch(f.epoch, runs)
		if err != nil {
			return fmt.Errorf("tcio: journal epoch %d: %w", f.epoch, err)
		}
		for i, ref := range refs {
			f.spillRefs[slots[i]] = append(f.spillRefs[slots[i]], ref)
		}
		ws := f.jw.Stats()
		f.stats.JournalEpochs = ws.Epochs
		f.stats.JournalAppends = ws.Appends
		f.stats.JournalBytes = ws.Bytes
		f.stats.JournalCommits = ws.Commits
	}
	return f.enforceBudget()
}

// enforceBudget evicts resident slots, in ascending slot order, until at
// most budgetSegs remain. Every dirty byte was journaled by the epoch that
// just closed, so a dirty eviction is a pure spill: mark the slot
// non-resident and leave its pending runs for the drain, which re-faults
// the bytes from the journal. A slot whose buffered runs are already
// durable on the data file (write-behind drained them) drops for free.
func (f *File) enforceBudget() error {
	if f.budgetSegs <= 0 {
		return nil
	}
	resident := 0
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		if f.slotResident(slot) {
			resident++
		}
	}
	for slot := int64(0); slot < int64(f.numSeg) && resident > f.budgetSegs; slot++ {
		if !f.slotResident(slot) {
			continue
		}
		seg := f.layout.RankSegment(f.c.Rank(), slot)
		if f.meta.hasDirty(seg) {
			if mutate.Enabled(mutate.TCIOSpillDropDirty) {
				// Mutant: discard the undrained runs instead of spilling —
				// the drain never writes them and the bytes are lost.
				f.meta.takePending(seg)
				delete(f.spillRefs, slot)
			}
			f.nonResident[slot] = true
			f.stats.SpillSegments++
		} else {
			// Nothing undrained in the slot: its bytes are on the data
			// file, so the journal copies need never be read back.
			f.nonResident[slot] = true
			delete(f.spillRefs, slot)
			f.stats.CleanDrops++
		}
		resident--
	}
	return nil
}

// slotResident reports whether a local slot currently holds buffered data
// that counts against the segment budget.
func (f *File) slotResident(slot int64) bool {
	if f.nonResident[slot] {
		return false
	}
	seg := f.layout.RankSegment(f.c.Rank(), slot)
	return len(f.meta.dirtyRuns(seg)) > 0
}

// refaultSlot reads a spilled slot's journaled bytes back from the journal
// file — the charged read a real out-of-core buffer would pay to page a
// spilled segment in — and marks the slot resident again.
func (f *File) refaultSlot(slot int64) error {
	for _, ref := range f.spillRefs[slot] {
		if int64(len(f.jArena)) < ref.Len {
			f.jArena = make([]byte, ref.Len)
		}
		if err := f.jw.ReadBack(ref, f.jArena[:ref.Len]); err != nil {
			return fmt.Errorf("tcio: re-fault slot %d: %w", slot, err)
		}
		f.stats.SpillRefaultBytes += ref.Len
	}
	delete(f.spillRefs, slot)
	delete(f.nonResident, slot)
	return nil
}

// refaultSpilled pages every still-spilled slot back in; the final drain
// calls it first, so the drain's window reads are honest — a spilled
// segment's bytes are not resident, in simulated terms, until the journal
// read-back completes.
func (f *File) refaultSpilled() error {
	if f.jw == nil {
		return nil
	}
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		if !f.nonResident[slot] {
			continue
		}
		if err := f.refaultSlot(slot); err != nil {
			return err
		}
	}
	return nil
}

// truncateJournal retires the journal after the final drain settled. On
// failure the journal is preserved — recovery replaying a stale journal is
// byte-safe (it rewrites bytes the drain already wrote), while a missing
// journal over a torn drain is not.
func (f *File) truncateJournal() error {
	if f.jw == nil {
		return nil
	}
	if err := f.jw.Truncate(); err != nil {
		return fmt.Errorf("tcio: truncate journal: %w", err)
	}
	return nil
}
