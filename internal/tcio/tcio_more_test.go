package tcio

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		bad := []Config{
			{SegmentSize: -1},
			{SegmentSize: 64, NumSegments: -2},
			{SegmentSize: 64, NumSegments: 4, FetchBatch: -1},
			{SegmentSize: 64, NumSegments: 4, PipelineDepth: -3},
		}
		for i, cfg := range bad {
			if _, err := Open(c, fmt.Sprintf("bad%d", i), WriteMode, cfg); err == nil {
				return fmt.Errorf("config %d accepted: %+v", i, cfg)
			}
		}
		return nil
	})
}

func TestDefaultsFromFileSystem(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "defaults", WriteMode, Config{})
		if err != nil {
			return err
		}
		defer f.Close()
		stripe := c.FS().Config().StripeSize
		if f.segSize != stripe {
			return fmt.Errorf("segment size %d, want stripe %d", f.segSize, stripe)
		}
		if f.numSeg != 64 || f.cfg.FetchBatch != 64 || f.cfg.PipelineDepth != 8 {
			return fmt.Errorf("defaults = %d/%d/%d", f.numSeg, f.cfg.FetchBatch, f.cfg.PipelineDepth)
		}
		if f.Capacity() != stripe*64 {
			return fmt.Errorf("Capacity = %d", f.Capacity())
		}
		return nil
	})
}

func TestPipelineDepthBoundsOpenEpochs(t *testing.T) {
	const procs = 8
	run(t, procs, func(c *mpi.Comm) error {
		cfg := Config{SegmentSize: 16, NumSegments: 64, PipelineDepth: 3}
		f, err := Open(c, "pipe", WriteMode, cfg)
		if err != nil {
			return err
		}
		// Touch many segments owned by distinct ranks.
		for s := 0; s < 32; s++ {
			off := int64(s)*16*int64(procs) + int64(c.Rank())*16
			if err := f.WriteAt(off, []byte{1, 2}); err != nil {
				return err
			}
			if got := len(f.openOwners); got > 3 {
				return fmt.Errorf("after segment %d: %d open epochs, cap 3", s, got)
			}
		}
		return f.Close()
	})
}

func TestEmulateTwoSidedShiftsTraffic(t *testing.T) {
	stats := func(twoSided bool) int64 {
		var twoMsgs int64
		rep, err := mpi.Run(mpi.Config{Procs: 2, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
			cfg := smallCfg()
			cfg.EmulateTwoSided = twoSided
			f, err := Open(c, fmt.Sprintf("class%v", twoSided), WriteMode, cfg)
			if err != nil {
				return err
			}
			if err := f.WriteAt(int64(c.Rank())*64, make([]byte, 64)); err != nil {
				return err
			}
			return f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		twoMsgs = rep.Net.TwoSidedMsgs
		return twoMsgs
	}
	base := stats(false)
	emu := stats(true)
	if emu <= base {
		t.Fatalf("EmulateTwoSided recorded %d two-sided msgs vs baseline %d", emu, base)
	}
}

func TestFetchBatchTriggersImplicitFetch(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		pf := c.FS().Open("batch")
		content := make([]byte, 1024)
		for i := range content {
			content[i] = byte(i)
		}
		if _, err := pf.WriteAt(0, 0, content, 0); err != nil {
			return err
		}
		cfg := Config{SegmentSize: 64, NumSegments: 16, FetchBatch: 4}
		f, err := Open(c, "batch", ReadMode, cfg)
		if err != nil {
			return err
		}
		dsts := make([][]byte, 8)
		for s := 0; s < 8; s++ { // spans 8 segments > batch of 4
			dsts[s] = make([]byte, 4)
			if err := f.ReadAt(int64(s*64), dsts[s]); err != nil {
				return err
			}
		}
		// Crossing the batch threshold must have fetched the early reads.
		if dsts[0][0] != 0 || dsts[0][1] != 1 {
			return errors.New("batch threshold did not trigger a fetch")
		}
		if err := f.Close(); err != nil {
			return err
		}
		for s := 0; s < 8; s++ {
			if dsts[s][0] != byte(s*64) {
				return fmt.Errorf("segment %d read wrong: %v", s, dsts[s])
			}
		}
		return nil
	})
}

func TestReadCapacityExceeded(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "rcap", ReadMode, Config{SegmentSize: 16, NumSegments: 2})
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.ReadAt(32, make([]byte, 1)); !errors.Is(err, ErrCapacity) {
			return fmt.Errorf("out-of-capacity read: %v", err)
		}
		return nil
	})
}

func TestWriteTypedPackError(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "typederr", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		defer f.Close()
		// Source shorter than count*extent must fail cleanly.
		if err := f.WriteTyped(make([]byte, 3), 2, datatype.Int); err == nil {
			return errors.New("short source accepted")
		}
		return nil
	})
}

func TestStatsAccounting(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, "stats", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if err := f.Write(make([]byte, 8)); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := f.Stats()
		if st.Writes != 10 {
			return fmt.Errorf("Writes = %d", st.Writes)
		}
		if st.BytesWritten != 80 {
			return fmt.Errorf("BytesWritten = %d", st.BytesWritten)
		}
		if st.Level1Flush == 0 {
			return fmt.Errorf("no flushes recorded")
		}
		return nil
	})
}

func TestModeString(t *testing.T) {
	if WriteMode.String() != "write" || ReadMode.String() != "read" {
		t.Fatal("mode strings wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestTwoFilesIndependentSessions(t *testing.T) {
	// Two TCIO files open at once: level-2 windows and metadata must not
	// interfere.
	run(t, 2, func(c *mpi.Comm) error {
		fa, err := Open(c, "filea", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		fb, err := Open(c, "fileb", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := fa.WriteAt(0, []byte("AAAA")); err != nil {
				return err
			}
			if err := fb.WriteAt(0, []byte("BBBB")); err != nil {
				return err
			}
		}
		if err := fa.Close(); err != nil {
			return err
		}
		if err := fb.Close(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			a := c.FS().Open("filea").Snapshot()
			b := c.FS().Open("fileb").Snapshot()
			if !bytes.Equal(a, []byte("AAAA")) || !bytes.Equal(b, []byte("BBBB")) {
				return fmt.Errorf("cross-talk: %q %q", a, b)
			}
		}
		return nil
	})
}

func TestWriteModeMemoryChargedAndFreed(t *testing.T) {
	m := cluster.Lonestar()
	_, err := mpi.Run(mpi.Config{Procs: 2, Machine: m, EnforceMemory: true}, func(c *mpi.Comm) error {
		before := c.MemUsed()
		f, err := Open(c, "memfree", WriteMode, Config{SegmentSize: 1 << 10, NumSegments: 4})
		if err != nil {
			return err
		}
		during := c.MemUsed()
		if during != before+4<<10+1<<10 {
			return fmt.Errorf("open charged %d bytes, want level-2 (4 KiB) + level-1 (1 KiB)", during-before)
		}
		if err := f.Close(); err != nil {
			return err
		}
		if got := c.MemUsed(); got != before {
			return fmt.Errorf("Close leaked %d simulated bytes", got-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOneSidedPipelineOverlap(t *testing.T) {
	// A deep pipeline defers transfer completion to the epoch-retire wave;
	// a depth-1 pipeline (the paper's strictly synchronous flush) stalls in
	// the retire path on every flush. Compare the retire-stall time.
	retireStall := func(depth int) simtime.Duration {
		var stall simtime.Duration
		m := cluster.Lonestar()
		m.ByteScale = 1 << 12 // make wire time visible
		_, err := mpi.Run(mpi.Config{Procs: 4, Machine: m}, func(c *mpi.Comm) error {
			cfg := Config{SegmentSize: 16, NumSegments: 64, PipelineDepth: depth}
			f, err := Open(c, fmt.Sprintf("pipe%d", depth), WriteMode, cfg)
			if err != nil {
				return err
			}
			// A contiguous 1 KiB range per rank spans 64 segments whose
			// owners cycle through all ranks, so each flush opens a new
			// remote epoch.
			base := int64(c.Rank()) * 1024
			for s := 0; s < 64; s++ {
				if err := f.WriteAt(base+int64(s*16), make([]byte, 16)); err != nil {
					return err
				}
			}
			if err := f.Close(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				stall = f.Stats().LockWait // includes waits to retire the oldest epoch
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stall
	}
	deep := retireStall(16)
	shallow := retireStall(1)
	if deep >= shallow {
		t.Fatalf("deep pipeline stalled %v, not less than synchronous %v", deep, shallow)
	}
}

func TestReadTypedRoundTrip(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		// File holds 6 ints packed; memory layout wants them padded to 8.
		wf, err := Open(c, "typedrt", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		packed := make([]byte, 24)
		for i := range packed {
			packed[i] = byte(i + 1)
		}
		if err := wf.WriteAt(0, packed); err != nil {
			return err
		}
		if err := wf.Close(); err != nil {
			return err
		}

		rf, err := Open(c, "typedrt", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		ty, err := datatype.Resized(datatype.Int, 8)
		if err != nil {
			return err
		}
		mem := make([]byte, 48)
		if err := rf.ReadTyped(mem, 6, ty); err != nil {
			return err
		}
		// Lazy: memory still zero before Fetch.
		if mem[0] != 0 {
			return errors.New("ReadTyped filled memory before Fetch")
		}
		if err := rf.Fetch(); err != nil {
			return err
		}
		for i := 0; i < 6; i++ {
			for b := 0; b < 4; b++ {
				if mem[i*8+b] != byte(i*4+b+1) {
					return fmt.Errorf("element %d byte %d = %d", i, b, mem[i*8+b])
				}
			}
			if mem[i*8+4] != 0 {
				return fmt.Errorf("padding of element %d written", i)
			}
		}
		return rf.Close()
	})
}

func TestReadTypedShortDestination(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "typedshort", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.ReadTyped(make([]byte, 4), 2, datatype.Int); err == nil {
			return errors.New("short destination accepted")
		}
		return nil
	})
}

func TestTraceRecordsLibraryActivity(t *testing.T) {
	rec := trace.New(0)
	run(t, 2, func(c *mpi.Comm) error {
		cfg := smallCfg()
		cfg.Trace = rec
		f, err := Open(c, "traced", WriteMode, cfg)
		if err != nil {
			return err
		}
		if err := f.WriteAt(int64(c.Rank())*64, make([]byte, 64)); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		rf, err := Open(c, "traced", ReadMode, cfg)
		if err != nil {
			return err
		}
		dst := make([]byte, 16)
		if err := rf.ReadAt(int64(c.Rank())*64, dst); err != nil {
			return err
		}
		if err := rf.Fetch(); err != nil {
			return err
		}
		return rf.Close()
	})
	sum := rec.Summary()
	for _, kind := range []trace.Kind{trace.KindWrite, trace.KindRead, trace.KindFlush, trace.KindFetch, trace.KindDrain, trace.KindPopulate} {
		if sum[kind].Count == 0 {
			t.Fatalf("no %s events recorded; summary: %v", kind, sum)
		}
	}
	var buf bytes.Buffer
	if err := rec.Timeline(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flush") {
		t.Fatal("timeline missing flush events")
	}
}
