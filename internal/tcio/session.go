package tcio

// The per-file session. Until the delegation refactor, tcio.File carried a
// one-file assumption: every piece of engine state — the level-1 buffer,
// the level-2 window and its shared metadata, the write-behind and
// prefetch lanes, the lazy read queue, the stats ledger — lived directly
// on the handle struct, and nothing separated "state of this open file"
// from "state of this handle". session is that separation: one rank may
// hold many concurrently open files, each an independent session with its
// own window memory, shared metadata (SharedOnce hands every collective
// Open a fresh instance), background lanes, and counters. File is now a
// thin handle — a file pointer and a closed flag — over its session.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/wal"
)

// session is the per-file engine state of one open TCIO file on one rank.
// Two sessions on the same rank share nothing but the communicator: their
// windows, drain lanes, prefetch caches, and stats ledgers are fully
// independent, so interleaving I/O on concurrently open files cannot
// cross-contaminate counters or staged data.
type session struct {
	c    *mpi.Comm
	cfg  Config
	mode Mode
	name string

	// layout is the round-robin offset mapping of equations (1)-(3).
	layout   extent.Layout
	segSize  int64
	numSeg   int
	pieceCPU simtime.Duration // per-piece library processing cost
	retry    faults.RetryPolicy

	win  *mpi.Win
	meta *l2meta
	// agg is the node-shared deposit staging of the aggregation tier;
	// aggEnabled arms the tier (NodeAggregation on a multi-core machine —
	// a global predicate, identical on every rank, because Flush/Close
	// insert an extra collective when it holds).
	agg        *aggStaging
	aggEnabled bool
	// store is the file system access path: drain, populate, and preload
	// batches go through it for retry, tracing, virtual-time charging, and
	// the per-OST worker fan-out.
	store *storage.Client

	// Level-1 buffer (write mode).
	l1Seg    int64 // aligned global segment; -1 when empty
	l1Buf    []byte
	l1Blocks []extent.Extent // segment-relative cached runs
	// openOwners lists the targets with an open shared put epoch, in
	// least-recently-used order (front = coldest, evicted first).
	openOwners []int
	// inflight is the window of outstanding Rput handles; PipelineDepth
	// bounds its length, retiring the oldest transfer when full.
	inflight []*mpi.PutHandle
	// shipCount numbers this rank's one-sided shipments; it keys the
	// deterministic fault rolls of the put path.
	shipCount int64
	// Per-handle scratch for the flush/ship hot path. Safe to reuse across
	// calls because every consumer copies synchronously: PutSegmentsAsync
	// copies payload into the window before returning, depositForAggregation
	// makes private copies, and addDirty appends run values.
	payloadScratch []byte
	winRunsScratch []extent.Extent

	// Write-behind lane (WriteBehindThreshold > 0): laneFree is when the
	// background drain lane frees up, outstanding the completion times of
	// enqueued eager batches, busy/waited the accounting behind
	// Stats.OverlapSaved.
	wbLaneFree    simtime.Time
	wbOutstanding []simtime.Time
	wbBusy        simtime.Duration
	wbWaited      simtime.Duration

	// Reused staging buffers (plain memory, outside the simulated-memory
	// accountant — see drain.go): popBuf stages demand populations, wbArena
	// stages one write-behind batch's run snapshots.
	popBuf  []byte
	wbArena []byte

	// Journal tier (Config.Journal, write mode; DESIGN.md §2f). jw appends
	// this rank's flush epochs to its per-file journal; epoch is the
	// collective flush-epoch counter, advanced identically on every rank.
	// nonResident marks local slots whose segment was spilled (dirty,
	// journaled) or dropped (clean) under memory pressure; spillRefs holds
	// the journal-file extents a slot's journaled bytes re-fault from.
	// budgetSegs is the resident-segment cap (0 = unlimited); winReserved
	// is the simulated charge taken for the window under a budget (the
	// budget, not the full window), which release must return in kind.
	// jArena is the reused epoch-snapshot/refault staging buffer (plain
	// memory, outside the simulated accountant, like wbArena).
	jw          *wal.Writer
	epoch       int64
	nonResident map[int64]bool
	spillRefs   map[int64][]extent.Extent
	budgetSegs  int
	winReserved int64
	jArena      []byte

	// Prefetch lane (PrefetchSegments > 0): segment staging buffers read
	// ahead of demand, keyed by global segment, in LRU insertion order.
	prefetched  map[int64]*prefetchEntry
	prefetchLRU []int64
	pfLaneFree  simtime.Time

	// Lazy read queue. pendingSeg is the most recent segment touched;
	// pendingDistinct counts the distinct segments queued, which triggers
	// an implicit Fetch at the FetchBatch threshold.
	pending         []readReq
	pendingSeg      int64
	pendingDistinct int
	// postFetch hooks run after the next completed Fetch — used by typed
	// reads to unpack staged bytes into the caller's layout.
	postFetch []func()

	stats Stats
}

// newSession builds the per-file engine state: window and level-1 memory
// charged to the rank's simulated share, the collective shared metadata,
// and the storage access path. cfg must already be normalized.
func newSession(c *mpi.Comm, name string, mode Mode, cfg Config) (session, error) {
	// Level-2 window memory: NumSegments segments of SegmentSize each.
	// Under a segment budget (write mode) only the budget's worth is
	// charged to the rank's simulated share — the spill tier guarantees at
	// most that many segments stay resident — while the host-side window
	// stays full-size, so spilled slots keep their bytes for the
	// simulation and re-faults are pure accounting.
	winBytes := int64(cfg.NumSegments) * cfg.SegmentSize
	var winBuf []byte
	var winReserved int64
	if cfg.SegmentMemoryBudget > 0 && mode == WriteMode {
		winReserved = c.Machine().Scale(cfg.SegmentMemoryBudget)
		if err := c.Reserve(winReserved); err != nil {
			return session{}, fmt.Errorf("tcio: level-2 buffer: %w", err)
		}
		winBuf = make([]byte, winBytes)
	} else {
		var err error
		winBuf, err = c.Malloc(winBytes)
		if err != nil {
			return session{}, fmt.Errorf("tcio: level-2 buffer: %w", err)
		}
	}
	// Level-1 buffer: exactly one segment (paper §IV.A: "we set them to be
	// equal, and each level-1 buffer is aligned with one level-2 segment").
	l1, err := c.Malloc(cfg.SegmentSize)
	if err != nil {
		if winReserved > 0 {
			c.Release(winReserved)
		} else {
			c.Free(winBuf)
		}
		return session{}, fmt.Errorf("tcio: level-1 buffer: %w", err)
	}
	win, err := c.WinCreate(winBuf)
	if err != nil {
		return session{}, err
	}
	type sharedState struct {
		meta *l2meta
		agg  *aggStaging
	}
	// SharedOnce is a fresh collective per call, so every Open — including
	// a second or third concurrent one on the same communicator — gets its
	// own l2meta and aggregation staging.
	shared, err := c.SharedOnce(func() interface{} {
		return &sharedState{
			meta: newL2Meta(cfg.Journal && mode == WriteMode),
			agg:  newAggStaging(),
		}
	})
	if err != nil {
		return session{}, err
	}
	ss := shared.(*sharedState)
	retry := cfg.retryPolicy()
	store := storage.NewClient(c.FS().Open(name), c.Node(), c.Rank(), c)
	store.SetRetryPolicy(retry)
	store.SetTrace(cfg.Trace)
	store.SetWorkers(cfg.DrainWorkers)
	s := session{
		c:       c,
		cfg:     cfg,
		mode:    mode,
		name:    name,
		layout:  extent.Layout{P: c.Size(), SegSize: cfg.SegmentSize, NumSeg: cfg.NumSegments},
		segSize: cfg.SegmentSize,
		numSeg:  cfg.NumSegments,
		win:     win,
		meta:    ss.meta,
		agg:     ss.agg,
		store:   store,
		retry:   retry,
		l1Seg:   -1,
		l1Buf:   l1,
		// Each POSIX-like call costs library CPU (offset mapping, block
		// bookkeeping, copies). Scaled runs stand for ByteScale times as
		// many pieces, so the charge scales accordingly. Reads are cheaper:
		// lazy recording touches no data until Fetch.
		pieceCPU: simtime.Duration(150) * simtime.Duration(c.Machine().ByteScale),
	}
	s.winReserved = winReserved
	if mode == ReadMode {
		s.pieceCPU = simtime.Duration(60) * simtime.Duration(c.Machine().ByteScale)
	}
	if cfg.Journal && mode == WriteMode {
		// The journal file lands on the OST after the data file's first —
		// offset by rank so P journals spread across the targets instead of
		// queuing behind the data stripes. Every armed rank creates its
		// journal at Open, so Recover can probe rank 0.. by existence.
		wfile := c.FS().OpenPlaced(WALFileName(name, c.Rank()),
			(store.File().FirstOST()+1+c.Rank())%c.FS().Config().OSTCount)
		wstore := storage.NewClient(wfile, c.Node(), c.Rank(), c)
		wstore.SetRetryPolicy(retry)
		wstore.SetTrace(cfg.Trace)
		s.jw = wal.NewWriter(wstore, c.Rank())
		s.nonResident = make(map[int64]bool)
		s.spillRefs = make(map[int64][]extent.Extent)
		if cfg.SegmentMemoryBudget > 0 {
			s.budgetSegs = int(cfg.SegmentMemoryBudget / cfg.SegmentSize)
			if s.budgetSegs < 1 {
				s.budgetSegs = 1
			}
		}
	}
	if cfg.EmulateTwoSided {
		win.SetClass(netsim.TwoSided)
	}
	// The aggregation tier arms only when a node can host more than one
	// rank — a property of the machine, not of any particular rank, so all
	// ranks agree on the collective structure of Flush and Close. With one
	// core per node (or a single rank) the predicate is false and the ship
	// path is today's, bit for bit.
	s.aggEnabled = cfg.NodeAggregation && c.Machine().CoresPerNode > 1 && c.Size() > 1
	if cfg.PrefetchSegments > 0 {
		// Plain staging memory, like populate's: the cache is transient
		// library scratch, deliberately outside the simulated-memory
		// accountant so arming prefetch cannot shift the per-rank
		// allocation fault stream (see DESIGN.md §2b).
		s.prefetched = make(map[int64]*prefetchEntry)
	}
	s.pendingSeg = -1
	return s, nil
}

// release returns the session's accounted memory (Close calls it). Under a
// segment budget the window was charged by Reserve — only the budget, not
// the full host-side buffer — so the same amount is Released; freeing the
// buffer's length would return memory the rank never charged.
func (s *session) release() {
	if s.winReserved > 0 {
		s.c.Release(s.winReserved)
	} else {
		s.c.Free(s.win.Local())
	}
	s.c.Free(s.l1Buf)
}

// Name reports the file name the session is bound to.
func (s *session) Name() string { return s.name }
