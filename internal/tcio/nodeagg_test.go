package tcio

import (
	"bytes"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
)

// aggRun executes the granule-interleaved write workload (writer of byte b
// is rank (b/granule) mod P, so each segment is written by the cores
// co-located ranks of one node) on a machine with the given node width, and
// returns the run report, the per-rank stats, and the file image.
func aggRun(t *testing.T, procs, cores int, aggOn bool) (mpi.Report, []Stats, []byte) {
	t.Helper()
	const segSize, numSeg = 64, 4
	fileBytes := int64(segSize * numSeg * procs)
	granule := int64(segSize / cores)
	m := cluster.Lonestar()
	m.CoresPerNode = cores
	fs := pfs.New(pfs.DefaultConfig())
	stats := make([]Stats, procs)
	cfg := Config{SegmentSize: segSize, NumSegments: numSeg, NodeAggregation: aggOn}
	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: m, FS: fs}, func(c *mpi.Comm) error {
		f, err := Open(c, "agg", WriteMode, cfg)
		if err != nil {
			return err
		}
		buf := make([]byte, granule)
		for k := int64(c.Rank()); k*granule < fileBytes; k += int64(c.Size()) {
			off := k * granule
			for i := range buf {
				buf[i] = byte(off + int64(i)*7)
			}
			if err := f.WriteAt(off, buf); err != nil {
				return err
			}
		}
		err = f.Close()
		stats[c.Rank()] = f.Stats()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, stats, fs.Open("agg").Snapshot()
}

// TestNodeAggregationReducesInterNodePuts pins the tentpole effect on
// 4-core nodes: identical file bytes, the inter-node message count cut by
// the full factor of the node width, and consistent provenance counters.
func TestNodeAggregationReducesInterNodePuts(t *testing.T) {
	const procs, cores = 8, 4
	repOff, _, imgOff := aggRun(t, procs, cores, false)
	repOn, statsOn, imgOn := aggRun(t, procs, cores, true)

	if !bytes.Equal(imgOff, imgOn) {
		t.Fatal("aggregation changed the file bytes")
	}
	interOff := repOff.Net.Messages - repOff.Net.LocalMessages
	interOn := repOn.Net.Messages - repOn.Net.LocalMessages
	// Every segment's cores writers share a node, so their cores puts merge
	// into one: the inter-node count must drop by exactly the node width.
	if interOff != int64(cores)*interOn {
		t.Fatalf("inter-node messages %d -> %d, want exact /%d reduction", interOff, interOn, cores)
	}
	var combines, saved int64
	for _, s := range statsOn {
		combines += s.NodeCombines
		saved += s.InterNodePutsSaved
	}
	if combines == 0 {
		t.Fatal("no combined puts issued")
	}
	// Each inter-node combined put merged cores deposits, saving cores-1.
	if want := interOn * int64(cores-1); saved != want {
		t.Fatalf("InterNodePutsSaved = %d, want %d", saved, want)
	}
}

// TestNodeAggregationSingleCoreDegenerate pins the degenerate machine: with
// one rank per node the aggregation gate stays closed, so the message
// stream, the stats, and the bytes are bit-identical to the plain path.
func TestNodeAggregationSingleCoreDegenerate(t *testing.T) {
	repOff, statsOff, imgOff := aggRun(t, 6, 1, false)
	repOn, statsOn, imgOn := aggRun(t, 6, 1, true)
	if !bytes.Equal(imgOff, imgOn) {
		t.Fatal("file bytes differ")
	}
	if repOff.Net != repOn.Net {
		t.Fatalf("net stats differ: %+v vs %+v", repOff.Net, repOn.Net)
	}
	if repOff.MaxTime != repOn.MaxTime {
		t.Fatalf("virtual time differs: %v vs %v", repOff.MaxTime, repOn.MaxTime)
	}
	for r := range statsOff {
		if statsOff[r] != statsOn[r] {
			t.Fatalf("rank %d stats differ:\noff %+v\non  %+v", r, statsOff[r], statsOn[r])
		}
	}
}

// TestNodeAggregationDisabledCounters checks the provenance counters stay
// zero whenever the gate is closed, whichever way it closes.
func TestNodeAggregationDisabledCounters(t *testing.T) {
	for _, tc := range []struct {
		procs, cores int
		aggOn        bool
	}{
		{8, 4, false}, // knob off
		{6, 1, true},  // single-core nodes
	} {
		_, stats, _ := aggRun(t, tc.procs, tc.cores, tc.aggOn)
		for r, s := range stats {
			if s.NodeCombines != 0 || s.InterNodePutsSaved != 0 {
				t.Fatalf("procs=%d cores=%d agg=%v rank %d: combines=%d saved=%d",
					tc.procs, tc.cores, tc.aggOn, r, s.NodeCombines, s.InterNodePutsSaved)
			}
		}
	}
}
