package tcio

// Property test: the sharded l2meta must be observationally identical to a
// single-lock reference holding the same five maps. A random schedule of
// every metadata operation runs against both; every return value must
// match. Concurrent soundness is separately covered by the -race runs of
// the package's integration tests.

import (
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/simtime"
)

// refL2Meta is the pre-sharding implementation, kept verbatim as the
// semantic oracle.
type refL2Meta struct {
	dirty     map[int64][]extent.Extent
	pending   map[int64][]extent.Extent
	populated map[int64]bool
	popRuns   map[int64][]extent.Extent
	arrival   map[int64]simtime.Time
}

func newRefL2Meta() *refL2Meta {
	return &refL2Meta{
		dirty:     make(map[int64][]extent.Extent),
		pending:   make(map[int64][]extent.Extent),
		populated: make(map[int64]bool),
		popRuns:   make(map[int64][]extent.Extent),
		arrival:   make(map[int64]simtime.Time),
	}
}

func (m *refL2Meta) addDirty(seg int64, runs []extent.Extent, at simtime.Time) {
	m.dirty[seg] = extent.Coalesce(append(m.dirty[seg], runs...))
	m.pending[seg] = extent.Coalesce(append(m.pending[seg], runs...))
	if at > m.arrival[seg] {
		m.arrival[seg] = at
	}
}

func (m *refL2Meta) takePending(seg int64) ([]extent.Extent, simtime.Time) {
	runs, at := m.pending[seg], m.arrival[seg]
	delete(m.pending, seg)
	delete(m.arrival, seg)
	return runs, at
}

func (m *refL2Meta) takeCovered(seg int64, need int64) ([]extent.Extent, simtime.Time) {
	runs := m.pending[seg]
	if extent.Total(runs) < need {
		return nil, 0
	}
	at := m.arrival[seg]
	delete(m.pending, seg)
	delete(m.arrival, seg)
	return runs, at
}

func (m *refL2Meta) setPopulated(seg int64) {
	m.populated[seg] = true
	delete(m.popRuns, seg)
}

func (m *refL2Meta) missingRuns(seg int64, needed []extent.Extent) []extent.Extent {
	if m.populated[seg] {
		return nil
	}
	have := append(append([]extent.Extent(nil), m.popRuns[seg]...), m.dirty[seg]...)
	return extent.Subtract(needed, have)
}

func (m *refL2Meta) addPopRuns(seg int64, runs []extent.Extent, segSize int64) {
	if m.populated[seg] {
		return
	}
	m.popRuns[seg] = extent.Coalesce(append(m.popRuns[seg], runs...))
	if extent.Covers(m.popRuns[seg], 0, segSize) {
		m.populated[seg] = true
		delete(m.popRuns, seg)
	}
}

func extentsEqual(a, b []extent.Extent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestL2MetaShardedMatchesReference(t *testing.T) {
	const segSize = int64(4096)
	rng := rand.New(rand.NewSource(7))
	randRuns := func() []extent.Extent {
		n := 1 + rng.Intn(3)
		runs := make([]extent.Extent, 0, n)
		for i := 0; i < n; i++ {
			off := int64(rng.Intn(int(segSize - 64)))
			ln := int64(1 + rng.Intn(256))
			if off+ln > segSize {
				ln = segSize - off
			}
			runs = append(runs, extent.Extent{Off: off, Len: ln})
		}
		return runs
	}
	for trial := 0; trial < 20; trial++ {
		m := newL2Meta(false)
		ref := newRefL2Meta()
		for step := 0; step < 2000; step++ {
			// Segment range deliberately exceeds the shard count so shards
			// carry several segments each and collisions are exercised.
			seg := int64(rng.Intn(5 * l2Shards))
			switch rng.Intn(8) {
			case 0, 1:
				runs := randRuns()
				at := simtime.Time(rng.Intn(1000))
				m.addDirty(seg, runs, at)
				ref.addDirty(seg, runs, at)
			case 2:
				gr, ga := m.takePending(seg)
				wr, wa := ref.takePending(seg)
				if !extentsEqual(gr, wr) || ga != wa {
					t.Fatalf("trial %d step %d takePending(%d): got (%v, %v) want (%v, %v)",
						trial, step, seg, gr, ga, wr, wa)
				}
			case 3:
				need := int64(rng.Intn(600))
				gr, ga := m.takeCovered(seg, need)
				wr, wa := ref.takeCovered(seg, need)
				if !extentsEqual(gr, wr) || ga != wa {
					t.Fatalf("trial %d step %d takeCovered(%d, %d): got (%v, %v) want (%v, %v)",
						trial, step, seg, need, gr, ga, wr, wa)
				}
			case 4:
				if got, want := m.hasDirty(seg), len(ref.pending[seg]) > 0; got != want {
					t.Fatalf("trial %d step %d hasDirty(%d): got %v want %v", trial, step, seg, got, want)
				}
				if got, want := m.dirtyRuns(seg), ref.dirty[seg]; !extentsEqual(got, want) {
					t.Fatalf("trial %d step %d dirtyRuns(%d): got %v want %v", trial, step, seg, got, want)
				}
			case 5:
				m.setPopulated(seg)
				ref.setPopulated(seg)
			case 6:
				runs := randRuns()
				m.addPopRuns(seg, runs, segSize)
				ref.addPopRuns(seg, runs, segSize)
				if got, want := m.isPopulated(seg), ref.populated[seg]; got != want {
					t.Fatalf("trial %d step %d isPopulated(%d): got %v want %v", trial, step, seg, got, want)
				}
			case 7:
				needed := randRuns()
				got := m.missingRuns(seg, needed)
				want := ref.missingRuns(seg, needed)
				if !extentsEqual(got, want) {
					t.Fatalf("trial %d step %d missingRuns(%d, %v): got %v want %v",
						trial, step, seg, needed, got, want)
				}
			}
		}
	}
}
