package tcio

// The read-prefetch pipeline: when Fetch walks forward-consecutive
// segments in demand-populate mode, the upcoming segment reads are issued
// on a background lane through the storage layer's detached-start path and
// staged in a small LRU cache, so the file system time of segment k+1
// hides behind the window traffic of segment k. Only segments the batch
// already demands are read — never speculative ones — and they are issued
// in the same per-rank order the demand loop would use.
//
// Determinism caveat: when ranks' demand sets are disjoint (each rank
// reads its own region — the case the bench and the CI two-run diff
// validate), the per-rank request stream and every fault roll are
// identical at any PrefetchSegments setting. When ranks contend for the
// same segments, a prefetched read can be wasted — another rank populates
// the segment between the isPopulated check and the Fetch step that would
// consume the staged bytes — and that read is one the demand path would
// never have issued, so request sets and chaos fault rolls may differ
// across prefetch settings. Stats.PrefetchWasted makes the divergence
// visible; DESIGN.md §2b states the full argument.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
)

// prefetchEntry is one staged segment: its bytes and the background-lane
// instant they are complete.
type prefetchEntry struct {
	data  []byte
	ready simtime.Time
}

// maybePrefetch looks ahead from position i of the fetch batch and issues
// background reads for up to PrefetchSegments forward-consecutive
// segments. A break in the sequence stops the lookahead — the pipeline
// only feeds genuinely sequential access.
func (f *File) maybePrefetch(order []int64, i int) error {
	if f.prefetched == nil {
		return nil
	}
	prev := order[i]
	for j := i + 1; j < len(order) && j <= i+f.cfg.PrefetchSegments; j++ {
		seg := order[j]
		if seg != prev+1 {
			return nil
		}
		prev = seg
		if f.meta.isPopulated(seg) {
			continue
		}
		if _, ok := f.prefetched[seg]; ok {
			continue
		}
		if err := f.prefetchSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

// prefetchSegment starts one whole-segment read on the background lane and
// stages the bytes in the cache. The request is byte-for-byte the one
// populate would issue for this segment, from this rank, in this order.
func (f *File) prefetchSegment(seg int64) error {
	base := f.layout.SegStart(seg)
	n := f.segSize
	if size := f.store.File().Size(); base+n > size {
		n = size - base
	}
	if n <= 0 {
		return nil
	}
	// Plain staging memory, like populate's scratch buffer: outside the
	// simulated-memory accountant so the cache cannot shift the per-rank
	// allocation fault stream.
	buf := make([]byte, n)
	start := simtime.Max(f.c.Now(), f.pfLaneFree)
	res, end, err := f.store.ReadExtentsFrom("tcio: prefetch", trace.KindPrefetch,
		[]storage.Request{{Off: base, Data: buf, Tag: fmt.Sprintf("seg=%d (prefetch)", seg)}}, start)
	f.stats.Retries += res.Retries
	if err != nil {
		return err
	}
	f.pfLaneFree = end
	f.insertPrefetched(seg, &prefetchEntry{data: buf, ready: end})
	f.stats.PrefetchIssued++
	return nil
}

// insertPrefetched stages one segment, evicting least-recently-used
// entries past the cache cap. When nothing is evictable (every cached
// segment still has undrained dirty runs) the new entry is dropped rather
// than evicting dirty state; the drop wastes the read that staged it.
func (f *File) insertPrefetched(seg int64, e *prefetchEntry) {
	for len(f.prefetchLRU) >= f.cfg.MaxCachedSegments {
		if !f.evictPrefetched() {
			f.stats.PrefetchWasted++
			return
		}
	}
	f.prefetched[seg] = e
	f.prefetchLRU = append(f.prefetchLRU, seg)
}

// evictPrefetched drops the least-recently-used entry whose segment has no
// undrained dirty runs; it reports false when every entry is dirty. An
// evicted entry was never consumed (takePrefetched removes consumed ones),
// so its background read is counted wasted.
func (f *File) evictPrefetched() bool {
	for i, seg := range f.prefetchLRU {
		if f.meta.hasDirty(seg) {
			continue
		}
		delete(f.prefetched, seg)
		f.prefetchLRU = append(f.prefetchLRU[:i], f.prefetchLRU[i+1:]...)
		f.stats.PrefetchWasted++
		return true
	}
	return false
}

// takePrefetched removes and returns the staged entry for seg, if any.
func (f *File) takePrefetched(seg int64) (*prefetchEntry, bool) {
	e, ok := f.prefetched[seg]
	if !ok {
		return nil, false
	}
	delete(f.prefetched, seg)
	for i, s := range f.prefetchLRU {
		if s == seg {
			f.prefetchLRU = append(f.prefetchLRU[:i], f.prefetchLRU[i+1:]...)
			break
		}
	}
	return e, true
}

// dropWastedPrefetch discards a staged segment another rank populated
// first — the read was real, the staging no longer needed.
func (f *File) dropWastedPrefetch(seg int64) {
	if f.prefetched == nil {
		return
	}
	if _, ok := f.takePrefetched(seg); ok {
		f.stats.PrefetchWasted++
	}
}

// populateFromCache fills the owner's window slot from a staged prefetch
// instead of a synchronous file system read. The caller must hold the
// owner's exclusive window lock. The rank waits only for the part of the
// background read not already hidden behind its other work.
func (f *File) populateFromCache(seg int64, owner int, slot int64, e *prefetchEntry) error {
	f.c.AdvanceTo(e.ready)
	if len(e.data) > 0 && !mutate.Enabled(mutate.TCIOStalePrefetchServe) {
		if err := f.win.PutSegments(owner,
			[]extent.Extent{{Off: slot * f.segSize, Len: int64(len(e.data))}}, e.data); err != nil {
			return err
		}
	}
	f.meta.setPopulated(seg)
	f.stats.Populations++
	f.stats.PrefetchHits++
	return nil
}
