package tcio

// Crash recovery (DESIGN.md §2f): replay the per-rank journals onto the
// data file. Recovery is deliberately independent of the MPI runtime — it
// models the single administrative process that runs after a crash — so it
// works on any *pfs.FileSystem, including one reconstructed by replaying a
// write log to an arbitrary virtual instant (pfs.Oplog.ReplayAt).

import (
	"fmt"

	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
	"github.com/tcio/tcio/internal/wal"
)

// recoverClock is the trivial clock of the recovery process: recovery runs
// alone after the crash, so its virtual time is its own.
type recoverClock struct{ t simtime.Time }

func (c *recoverClock) Now() simtime.Time { return c.t }
func (c *recoverClock) AdvanceTo(t simtime.Time) {
	if t > c.t {
		c.t = t
	}
}

// RecoverRank summarizes what one rank's journal contributed to a recovery.
type RecoverRank struct {
	Rank   int
	Epochs int   // committed epochs replayed
	Runs   int   // dirty runs applied
	Bytes  int64 // bytes applied
	MaxSeq int64 // highest committed epoch sequence number
}

// RecoverReport summarizes a Recover call.
type RecoverReport struct {
	Ranks        []RecoverRank
	BytesApplied int64
}

// Recover replays the committed journal epochs of every rank onto the data
// file, reproducing the byte-exact state the journaled session had made
// durable: bytes after each rank's last commit marker (the torn tail of
// the crash) are discarded, and every committed run is rewritten, which
// also overwrites anything a torn final drain managed to store. A journal
// that was already truncated (Close completed) replays nothing. cfg is
// validated for error hygiene but the replay itself needs no geometry —
// journaled runs carry absolute file offsets, and the round-robin layout
// guarantees each byte appears in exactly one rank's journal.
//
// Structural journal corruption (a checksum mismatch on a complete record,
// an epoch opened over an uncommitted one) surfaces as an error wrapping
// wal.ErrCorrupt; a torn tail does not.
func Recover(fs *pfs.FileSystem, name string, cfg Config) (*RecoverReport, error) {
	if _, err := cfg.Normalize(fs.Config().StripeSize); err != nil {
		return nil, err
	}
	if !fs.Exists(name) {
		return nil, fmt.Errorf("tcio: recover: no file %q", name)
	}
	dst := fs.Open(name)
	clk := &recoverClock{}
	rep := &RecoverReport{}
	for rank := 0; ; rank++ {
		wn := WALFileName(name, rank)
		if !fs.Exists(wn) {
			break
		}
		wf := fs.Open(wn)
		img := make([]byte, wf.Size())
		if len(img) > 0 {
			st := storage.NewClient(wf, 0, rank, clk)
			if _, err := st.ReadExtents("tcio: recover", trace.KindJournal,
				[]storage.Request{{Off: 0, Data: img, Tag: fmt.Sprintf("recover rank=%d", rank)}}); err != nil {
				return rep, fmt.Errorf("tcio: recover: read journal of rank %d: %w", rank, err)
			}
		}
		epochs, err := wal.Decode(img)
		if err != nil {
			return rep, fmt.Errorf("tcio: recover: journal of rank %d: %w", rank, err)
		}
		rr := RecoverRank{Rank: rank}
		for _, ep := range epochs {
			rr.Epochs++
			if ep.Seq > rr.MaxSeq {
				rr.MaxSeq = ep.Seq
			}
			for _, run := range ep.Runs {
				dst.StoreDirect(run.Extent.Off, run.Data)
				rr.Runs++
				rr.Bytes += run.Extent.Len
			}
		}
		rep.BytesApplied += rr.Bytes
		rep.Ranks = append(rep.Ranks, rr)
	}
	return rep, nil
}
