package tcio

// l2meta contention micro-benchmark (size-swept per SNIPPETS.md Snippet 2):
// many goroutines — standing in for many rank goroutines of one file —
// hammer the shared per-file metadata. With one global lock every op
// serializes; sharded by segment, disjoint segments proceed in parallel.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/tcio/tcio/internal/extent"
)

// BenchmarkL2MetaSharded performs one addDirty+takePending round trip per
// op, with parallel goroutines spread over the given number of segments.
// Bytes per op is the recorded run's length, so MB/s tracks bookkeeping
// throughput.
func BenchmarkL2MetaSharded(b *testing.B) {
	const runLen = 512
	for _, segs := range []int64{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			m := newL2Meta(false)
			b.ReportAllocs()
			b.SetBytes(runLen)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				runs := []extent.Extent{{Off: 0, Len: runLen}}
				seg := next.Add(1) % segs
				for pb.Next() {
					m.addDirty(seg, runs, 1)
					if got, _ := m.takePending(seg); len(got) == 0 {
						// A racing goroutine on the same segment took the runs;
						// the op still exercised both lock paths.
						continue
					}
				}
			})
		})
	}
}

// BenchmarkL2MetaMissingRuns measures the read-side query the sieved read
// path issues per fetch: coverage subtraction against dirty and partially
// populated runs.
func BenchmarkL2MetaMissingRuns(b *testing.B) {
	const segSize = 8192
	for _, segs := range []int64{16, 256} {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			m := newL2Meta(false)
			for s := int64(0); s < segs; s++ {
				m.addDirty(s, []extent.Extent{{Off: 128, Len: 256}}, 1)
				m.addPopRuns(s, []extent.Extent{{Off: 1024, Len: 512}}, segSize)
			}
			need := []extent.Extent{{Off: 0, Len: 2048}}
			b.ReportAllocs()
			b.SetBytes(2048)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				seg := next.Add(1) % segs
				for pb.Next() {
					if got := m.missingRuns(seg, need); len(got) == 0 {
						b.Error("missing runs vanished")
						return
					}
				}
			})
		})
	}
}
