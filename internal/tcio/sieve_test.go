package tcio

// Tests for the noncontiguous read engine: the sieved demand-populate
// path, the partial-population bookkeeping, the prefetch/sieve dedupe, the
// two-phase collective read, and the degenerate-config pin that keeps the
// knobs-off path bit-identical to the pre-sieve library.

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/trace"
)

// seedReadFile writes a deterministic pattern so read sessions have bytes
// to fetch; every rank must call it (it ends on a barrier).
func seedReadFile(c *mpi.Comm, name string, size int) error {
	if c.Rank() == 0 {
		content := make([]byte, size)
		for i := range content {
			content[i] = byte(i*7 + i>>8)
		}
		if _, err := c.FS().Open(name).WriteAt(0, 0, content, 0); err != nil {
			return err
		}
	}
	return c.Barrier()
}

func wantReadByte(i int64) byte { return byte(i*7 + i>>8) }

func TestSieveConfigValidation(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		if _, err := Open(c, "sv-bad", ReadMode, Config{SegmentSize: 64, NumSegments: 4, SieveBuffer: -1}); err == nil {
			return fmt.Errorf("negative SieveBuffer accepted")
		}
		return nil
	})
}

// TestL2MetaPopRuns drives the partial-population bookkeeping directly:
// missing runs shrink as popRuns accumulate, dirty runs count as present,
// and full coverage promotes the segment to populated.
func TestL2MetaPopRuns(t *testing.T) {
	m := newL2Meta(false)
	const segSize = 64
	need := []extent.Extent{{Off: 0, Len: 32}, {Off: 48, Len: 16}}
	if got := m.missingRuns(5, need); extent.Total(got) != 48 {
		t.Fatalf("fresh segment: missing %v", got)
	}
	m.addDirty(5, []extent.Extent{{Off: 8, Len: 8}}, 0)
	if got := m.missingRuns(5, need); extent.Total(got) != 40 {
		t.Fatalf("dirty run not excluded: missing %v", got)
	}
	m.addPopRuns(5, []extent.Extent{{Off: 0, Len: 32}}, segSize)
	if m.isPopulated(5) {
		t.Fatal("partial runs promoted too early")
	}
	if got := m.missingRuns(5, need); extent.Total(got) != 16 {
		t.Fatalf("after partial population: missing %v", got)
	}
	m.addPopRuns(5, []extent.Extent{{Off: 32, Len: 32}}, segSize)
	if !m.isPopulated(5) {
		t.Fatal("full coverage did not promote to populated")
	}
	if pr := m.shard(5).popRuns; len(pr) != 0 {
		t.Fatalf("promotion left popRuns %v", pr)
	}
	if got := m.missingRuns(5, need); got != nil {
		t.Fatalf("populated segment: missing %v", got)
	}
}

// TestSievedFetchBytesAndCounters: a hole-y read pattern through the sieve
// delivers the same bytes the file holds, issues covering reads instead of
// whole-segment populations, and accounts the hole traffic as waste.
func TestSievedFetchBytesAndCounters(t *testing.T) {
	const procs = 4
	run(t, procs, func(c *mpi.Comm) error {
		if err := seedReadFile(c, "sv-holes", 4096); err != nil {
			return err
		}
		cfg := smallCfg()
		cfg.DemandPopulate = true
		cfg.SieveBuffer = 64
		f, err := Open(c, "sv-holes", ReadMode, cfg)
		if err != nil {
			return err
		}
		// Rank r reads 8-byte runs every 16 bytes of its own 1024-byte
		// region: 50% holes, runs joinable under the 64-byte budget.
		base := int64(c.Rank()) * 1024
		var dsts [][]byte
		for off := base; off < base+1024; off += 16 {
			dst := make([]byte, 8)
			if err := f.ReadAt(off, dst); err != nil {
				return err
			}
			dsts = append(dsts, dst)
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		for i, dst := range dsts {
			off := base + int64(i)*16
			for b := range dst {
				if dst[b] != wantReadByte(off+int64(b)) {
					return fmt.Errorf("rank %d byte %d: got %d want %d",
						c.Rank(), off+int64(b), dst[b], wantReadByte(off+int64(b)))
				}
			}
		}
		st := f.Stats()
		if st.Populations != 0 {
			return fmt.Errorf("sieved path ran %d whole-segment populations", st.Populations)
		}
		if st.SieveReads == 0 {
			return fmt.Errorf("no sieve covers issued")
		}
		// 16 segments of 4 runs each; the 64-byte budget joins each
		// segment's runs into one cover of 56 bytes delivering 32.
		if st.SieveReads != 16 || st.SieveWasteBytes != 16*24 {
			return fmt.Errorf("SieveReads=%d SieveWasteBytes=%d, want 16 and %d",
				st.SieveReads, st.SieveWasteBytes, 16*24)
		}
		return f.Close()
	})
}

// TestSieveListIOBudgetTooSmall: a budget below the smallest joinable pair
// degenerates to list I/O — one read per needed run, zero waste.
func TestSieveListIOBudgetTooSmall(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		if err := seedReadFile(c, "sv-list", 1024); err != nil {
			return err
		}
		cfg := smallCfg()
		cfg.DemandPopulate = true
		cfg.SieveBuffer = 1
		f, err := Open(c, "sv-list", ReadMode, cfg)
		if err != nil {
			return err
		}
		for off := int64(0); off < 256; off += 32 {
			if err := f.ReadAt(off, make([]byte, 8)); err != nil {
				return err
			}
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		st := f.Stats()
		if st.SieveReads != 8 || st.SieveWasteBytes != 0 {
			return fmt.Errorf("SieveReads=%d SieveWasteBytes=%d, want 8 and 0",
				st.SieveReads, st.SieveWasteBytes)
		}
		return f.Close()
	})
}

// TestSieveDirtyOverlapNotStale is the stale-bytes pin: sieving through a
// segment that holds unflushed (dirty) window data must serve the window's
// fresh bytes, not re-read the file over them.
func TestSieveDirtyOverlapNotStale(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		if err := seedReadFile(c, "sv-dirty", 256); err != nil {
			return err
		}
		cfg := smallCfg()
		cfg.DemandPopulate = true
		cfg.SieveBuffer = 64
		f, err := Open(c, "sv-dirty", ReadMode, cfg)
		if err != nil {
			return err
		}
		// Plant fresh bytes in the window over [16,32) of segment 0 — newer
		// than the file, as a writer's shipped-but-undrained runs would be.
		fresh := bytes.Repeat([]byte{0xAA}, 16)
		if err := f.win.Lock(0, true); err != nil {
			return err
		}
		if err := f.win.PutSegments(0, []extent.Extent{{Off: 16, Len: 16}}, fresh); err != nil {
			return err
		}
		if err := f.win.Unlock(0); err != nil {
			return err
		}
		f.meta.addDirty(0, []extent.Extent{{Off: 16, Len: 16}}, 0)

		dst := make([]byte, 64)
		if err := f.ReadAt(0, dst); err != nil {
			return err
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		for i := 0; i < 64; i++ {
			want := wantReadByte(int64(i))
			if i >= 16 && i < 32 {
				want = 0xAA
			}
			if dst[i] != want {
				return fmt.Errorf("byte %d: got %d want %d (stale file bytes over dirty window data)",
					i, dst[i], want)
			}
		}
		return f.Close()
	})
}

// TestPrefetchSieveDedupe is the double-charge regression: when prefetch
// stages a whole segment and the sieve would stage runs of the same
// segment, the staged prefetch wins — one file system read per segment,
// every prefetch consumed, nothing counted wasted.
func TestPrefetchSieveDedupe(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		if err := seedReadFile(c, "sv-pf", 1024); err != nil {
			return err
		}
		cfg := smallCfg()
		cfg.DemandPopulate = true
		cfg.SieveBuffer = 64
		cfg.PrefetchSegments = 4
		f, err := Open(c, "sv-pf", ReadMode, cfg)
		if err != nil {
			return err
		}
		// Forward-consecutive segments 0..7, hole-y runs in each, one batch.
		for off := int64(0); off < 512; off += 16 {
			if err := f.ReadAt(off, make([]byte, 8)); err != nil {
				return err
			}
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		st := f.Stats()
		if st.PrefetchIssued == 0 {
			return fmt.Errorf("lookahead never ran")
		}
		if st.PrefetchHits != st.PrefetchIssued {
			return fmt.Errorf("prefetch hits %d != issued %d", st.PrefetchHits, st.PrefetchIssued)
		}
		if st.PrefetchWasted != 0 {
			return fmt.Errorf("PrefetchWasted = %d: a staged segment was re-read", st.PrefetchWasted)
		}
		// Only segments the cache missed go through the sieve: segment 0
		// (before any lookahead) and any past the lookahead horizon.
		if st.SieveReads+st.PrefetchIssued < 8 || st.SieveReads >= 8 {
			return fmt.Errorf("SieveReads=%d PrefetchIssued=%d: sieve/prefetch split off", st.SieveReads, st.PrefetchIssued)
		}
		return f.Close()
	})
}

// TestCollectiveReadMatchesIndependent: the same interleaved read workload
// under CollectiveRead delivers byte-identical destination buffers, counts
// one intent exchange per collective Fetch (plus Close's), and stages each
// segment on its owner.
func TestCollectiveReadMatchesIndependent(t *testing.T) {
	const procs = 4
	type result struct {
		sum   []byte
		stats Stats
	}
	readAll := func(name string, collective bool, sieve int64) ([procs]result, error) {
		var out [procs]result
		_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
			if err := seedReadFile(c, name, 2048); err != nil {
				return err
			}
			cfg := smallCfg()
			cfg.DemandPopulate = true
			cfg.CollectiveRead = collective
			cfg.SieveBuffer = sieve
			f, err := Open(c, name, ReadMode, cfg)
			if err != nil {
				return err
			}
			var got []byte
			// Interleaved: 32-byte block b belongs to rank b%procs; two
			// rounds with a phase shift, every rank fetching each round.
			for round := 0; round < 2; round++ {
				var dsts [][]byte
				for b := int64(0); b < 64; b++ {
					if int(b)%procs != (c.Rank()+round)%procs {
						continue
					}
					dst := make([]byte, 32)
					if err := f.ReadAt(b*32, dst); err != nil {
						return err
					}
					dsts = append(dsts, dst)
				}
				if err := f.Fetch(); err != nil {
					return err
				}
				for _, d := range dsts {
					got = append(got, d...)
				}
			}
			if err := f.Close(); err != nil {
				return err
			}
			out[c.Rank()] = result{sum: got, stats: f.Stats()}
			return nil
		})
		return out, err
	}

	indep, err := readAll("cr-indep", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sieve := range []int64{0, 64} {
		coll, err := readAll(fmt.Sprintf("cr-coll%d", sieve), true, sieve)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < procs; r++ {
			if !bytes.Equal(indep[r].sum, coll[r].sum) {
				t.Fatalf("sieve=%d rank %d: collective read bytes differ", sieve, r)
			}
			if got := coll[r].stats.TwoPhaseExchanges; got != 3 {
				t.Fatalf("sieve=%d rank %d: TwoPhaseExchanges = %d, want 3 (2 fetches + close)", sieve, r, got)
			}
			if indep[r].stats.TwoPhaseExchanges != 0 {
				t.Fatalf("rank %d: independent path counted exchanges", r)
			}
		}
	}
}

// TestSieveDegenerateBitIdentical is the acceptance pin: with SieveBuffer=0
// and CollectiveRead=false the demand-populate path is the pre-engine
// library — whole-segment populations only, no sieve covers, no exchanges,
// no KindSieve events — and two chaos runs with one seed see identical
// fault absorption.
func TestSieveDegenerateBitIdentical(t *testing.T) {
	const procs = 4
	type rk struct{ st Stats }
	readRun := func(name string) ([procs]rk, *trace.Recorder, error) {
		var out [procs]rk
		rec := trace.New(1 << 16)
		inj := faults.New(23)
		inj.Set(faults.SiteOSTRead, faults.Rule{Prob: 0.05})
		_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), Faults: inj}, func(c *mpi.Comm) error {
			if err := seedReadFile(c, name, 4096); err != nil {
				return err
			}
			cfg := smallCfg()
			cfg.DemandPopulate = true // knobs off: SieveBuffer=0, CollectiveRead=false
			cfg.Trace = rec
			f, err := Open(c, name, ReadMode, cfg)
			if err != nil {
				return err
			}
			base := int64(c.Rank()) * 1024
			for off := base; off < base+1024; off += 32 {
				if err := f.ReadAt(off, make([]byte, 16)); err != nil {
					return err
				}
			}
			if err := f.Fetch(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			out[c.Rank()] = rk{st: f.Stats()}
			return nil
		})
		return out, rec, err
	}
	a, recA, err := readRun("sv-degen-a")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := readRun("sv-degen-b")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < procs; r++ {
		st := a[r].st
		if st.SieveReads != 0 || st.SieveWasteBytes != 0 || st.TwoPhaseExchanges != 0 {
			t.Fatalf("rank %d: engine counters armed while off: %+v", r, st)
		}
		// Each rank demands its own 16 disjoint segments: exactly 16
		// whole-segment populations, like the pre-engine path.
		if st.Populations != 16 {
			t.Fatalf("rank %d: %d populations, want 16", r, st.Populations)
		}
		if a[r].st != b[r].st {
			t.Fatalf("rank %d: same-seed chaos runs diverge:\n%+v\n%+v", r, a[r].st, b[r].st)
		}
	}
	for _, ev := range recA.Events() {
		if ev.Kind == trace.KindSieve {
			t.Fatalf("KindSieve event emitted with the sieve off: %+v", ev)
		}
	}
}
