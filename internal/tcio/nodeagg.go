package tcio

// The intra-node aggregation tier (Config.NodeAggregation): an extra stage
// between the level-1 flush and the level-2 one-sided ship. Instead of every
// rank putting its own runs over the NIC — up to CoresPerNode inter-node
// messages per destination segment — co-located ranks hand their run lists
// and bytes to a per-segment node leader over the intra-node path (charged
// at MemBandwidth via Comm.IntraNodeCopy, never the NIC), and the leader
// merges everything into one combined indexed put per target segment
// (mpi.Win.PutGrouped). This is the request-merging idea of Kang et al.'s
// intra-node aggregation applied to TCIO's independent ship path.
//
// Determinism. Deposits happen at ship time, but combining happens only at
// collective boundaries: Flush/Close barrier first, so every deposit is
// visible to its leader, then each leader sweeps its segments in ascending
// order and merges each segment's deposits in (origin rank, per-origin
// program order). The combined put's content, its billed block list, and
// the leader's SiteWinPut fault rolls (keyed by the leader's shipCount) are
// therefore independent of goroutine scheduling.
//
// Causality. A depositor only pays the handoff's issue overhead; the
// intra-node copy retires later, so the leader advances to the latest
// deposit arrival before issuing the combined put, and l2meta records the
// combined put's arrival for the runs — the write-behind and drain lanes
// then bound their departures exactly as they do for per-rank puts.
//
// Staging memory. Deposited run lists and payload bytes live in plain Go
// memory, like populate's and prefetch's staging: transient library
// scratch, deliberately outside the simulated-memory accountant so arming
// aggregation cannot shift the per-rank allocation fault stream.

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// aggKey identifies one combine group: all deposits from one node's ranks
// destined for one global segment.
type aggKey struct {
	node int
	seg  int64
}

// aggDeposit is one origin rank's handed-off shipment: segment-relative
// runs, their bytes concatenated in run order, and the virtual instant the
// intra-node copy lands at the leader.
type aggDeposit struct {
	origin  int
	runs    []extent.Extent
	payload []byte
	arrival simtime.Time
}

// aggStaging is the node-shared deposit area, part of the file's shared
// state (SharedOnce). Same-origin deposits keep program order because each
// rank appends from its own goroutine; cross-origin order is arbitrary and
// canonicalized by the leader's stable sort.
type aggStaging struct {
	mu       sync.Mutex
	deposits map[aggKey][]aggDeposit
}

func newAggStaging() *aggStaging {
	return &aggStaging{deposits: make(map[aggKey][]aggDeposit)}
}

func (a *aggStaging) deposit(k aggKey, d aggDeposit) {
	a.mu.Lock()
	a.deposits[k] = append(a.deposits[k], d)
	a.mu.Unlock()
}

// takeLed removes and returns every deposit group of the given node whose
// segment the keep predicate claims, with segments in ascending order.
func (a *aggStaging) takeLed(node int, keep func(seg int64) bool) ([]int64, [][]aggDeposit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var segs []int64
	for k := range a.deposits {
		if k.node == node && keep(k.seg) {
			segs = append(segs, k.seg)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	groups := make([][]aggDeposit, len(segs))
	for i, seg := range segs {
		k := aggKey{node: node, seg: seg}
		groups[i] = a.deposits[k]
		delete(a.deposits, k)
	}
	return segs, groups
}

// depositForAggregation is the aggregated ship path: instead of putting the
// runs over the NIC, hand them to this segment's node leader. The origin
// pays the handoff (intra-node bandwidth) and keeps its per-rank shipment
// accounting — Level1Flush and the flush trace event count deposits exactly
// as they count baseline puts, so per-rank counters are aggregation-blind.
func (f *File) depositForAggregation(seg int64, runs []extent.Extent, payload []byte) error {
	owner, slot := f.segmentOwner(seg)
	if slot >= int64(f.numSeg) {
		return fmt.Errorf("%w: segment %d needs slot %d of %d", ErrCapacity, seg, slot, f.numSeg)
	}
	node := f.c.Node()
	leader := f.c.Machine().NodeLeader(node, f.c.Size(), seg)
	t0 := f.c.Now()
	arrival, err := f.c.IntraNodeCopy(leader, int64(len(payload)))
	if err != nil {
		return err
	}
	// Private copies: the caller reuses its level-1 buffer and run list the
	// moment ship returns, exactly as it would after a baseline put.
	rcopy := append([]extent.Extent(nil), runs...)
	pcopy := make([]byte, len(payload))
	copy(pcopy, payload)
	f.agg.deposit(aggKey{node: node, seg: seg},
		aggDeposit{origin: f.c.Rank(), runs: rcopy, payload: pcopy, arrival: arrival})
	f.stats.Level1Flush++
	f.emit(trace.KindFlush, t0, int64(len(payload)), fmt.Sprintf("seg=%d owner=%d runs=%d", seg, owner, len(runs)))
	return nil
}

// leaderSweep runs after the collective barrier that makes all deposits
// visible: this rank combines, for every segment it leads on its node, the
// node's deposits into one grouped put to the segment owner. Sweep order
// (ascending segment) and merge order (origin ascending, program order
// within an origin) are canonical, so the leader's put stream and fault
// rolls are schedule-independent.
func (f *File) leaderSweep() error {
	if !f.aggEnabled {
		return nil
	}
	node := f.c.Node()
	m := f.c.Machine()
	segs, groups := f.agg.takeLed(node, func(seg int64) bool {
		return m.NodeLeader(node, f.c.Size(), seg) == f.c.Rank()
	})
	for i, seg := range segs {
		deps := groups[i]
		sort.SliceStable(deps, func(a, b int) bool { return deps[a].origin < deps[b].origin })
		if mutate.Enabled(mutate.TCIONodeAggDropDeposit) && deps[0].origin != deps[len(deps)-1].origin {
			// Deliberate bug: lose the highest-origin rank's deposits.
			last := deps[len(deps)-1].origin
			kept := deps[:0]
			for _, d := range deps {
				if d.origin != last {
					kept = append(kept, d)
				}
			}
			deps = kept
		}
		if err := f.combine(seg, deps); err != nil {
			return err
		}
	}
	return nil
}

// combine issues one grouped put carrying every deposit of (node, seg) and
// records the union of their runs as dirty with the combined arrival.
func (f *File) combine(seg int64, deps []aggDeposit) error {
	owner, slot := f.segmentOwner(seg)
	t0 := f.c.Now()
	if err := f.openEpochFor(owner); err != nil {
		return err
	}
	f.reserveInflight()
	groups := make([]mpi.PutGroup, len(deps))
	var union []extent.Extent
	var bytes int64
	var latest simtime.Time
	origins := 0
	for i, d := range deps {
		winRuns := make([]extent.Extent, len(d.runs))
		for j, r := range d.runs {
			winRuns[j] = extent.Extent{Off: slot*f.segSize + r.Off, Len: r.Len}
		}
		groups[i] = mpi.PutGroup{Origin: d.origin, Segs: winRuns, Data: d.payload}
		union = append(union, d.runs...)
		bytes += int64(len(d.payload))
		if d.arrival > latest {
			latest = d.arrival
		}
		if i == 0 || deps[i-1].origin != d.origin {
			origins++
		}
	}
	// The combined put cannot depart before the last handoff physically
	// reached this leader.
	t1 := f.c.Now()
	f.c.AdvanceTo(latest)
	h, err := f.putGroupedRetry(owner, seg, groups)
	if err != nil {
		return err
	}
	f.inflight = append(f.inflight, h)
	t2 := f.c.Now()
	f.stats.LockWait += t1.Sub(t0)
	f.stats.PutIssue += t2.Sub(t1)
	f.meta.addDirty(seg, extent.Coalesce(union), h.Arrival())
	f.stats.NodeCombines++
	if f.c.Machine().NodeOf(owner) != f.c.Node() {
		f.stats.InterNodePutsSaved += int64(len(deps)) - 1
	}
	f.emit(trace.KindCombine, t0, bytes,
		fmt.Sprintf("seg=%d owner=%d origins=%d deposits=%d", seg, owner, origins, len(deps)))
	return nil
}

// putGroupedRetry is putSegmentsRetry for the combined put: same retry
// driver, same SiteWinPut roll keyed by this rank's shipment number, so
// chaos runs replay exactly — a failed roll never issues the put.
func (f *File) putGroupedRetry(owner int, seg int64, groups []mpi.PutGroup) (*mpi.PutHandle, error) {
	inj := f.c.Faults()
	ship := f.shipCount
	f.shipCount++
	start := f.c.Now()
	var handle *mpi.PutHandle
	end, retries, err := faults.Retry(start, f.retry,
		func(at simtime.Time, attempt int64) (simtime.Time, error) {
			f.c.AdvanceTo(at)
			if inj.Should(faults.SiteWinPut, int64(f.c.Rank()), ship, attempt) {
				return f.c.Now(), inj.Fault(faults.SiteWinPut, "rank=%d seg=%d owner=%d (combine)",
					f.c.Rank(), seg, owner)
			}
			var perr error
			handle, perr = f.win.PutGroupedAsync(owner, groups)
			return f.c.Now(), perr
		})
	f.c.AdvanceTo(end)
	if retries > 0 {
		f.stats.Retries += retries
		f.emit(trace.KindRetry, start, 0,
			fmt.Sprintf("combine seg=%d owner=%d retries=%d", seg, owner, retries))
	}
	if err != nil {
		return nil, fmt.Errorf("tcio: combine segment %d to rank %d: %w", seg, owner, err)
	}
	return handle, nil
}
