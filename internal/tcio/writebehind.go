package tcio

// The write-behind pipeline: eager background drains of level-2 segments
// whose undrained runs already cover them (Config.WriteBehindThreshold), so
// Flush/Close only wait for the residue. The queue is virtual: batches are
// issued physically in rank program order through the storage layer's
// detached-start path, charged to background timelines (up to
// WriteBehindQueue in flight, overlapping across OSTs exactly as the
// per-OST worker fan-out does), and synchronized with only at backpressure
// and at the final drain. Request identity (node, offset, length, attempt)
// is exactly what the synchronous drain would issue at threshold 1, so
// chaos counts cannot tell the two apart.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
)

// maybeWriteBehind scans this rank's own segments after each shipment and
// eagerly drains any whose undrained runs reach the coverage threshold.
// Only the owner drains a segment, so the single-writer-per-stripe locking
// discipline of the synchronous drain is preserved.
func (f *File) maybeWriteBehind() error {
	if f.cfg.WriteBehindThreshold <= 0 || f.mode != WriteMode {
		return nil
	}
	need := int64(f.cfg.WriteBehindThreshold * float64(f.segSize))
	if need < 1 {
		need = 1
	}
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := f.layout.RankSegment(f.c.Rank(), slot)
		runs, arrival := f.meta.takeCovered(seg, need)
		if len(runs) == 0 {
			continue
		}
		if err := f.eagerDrain(seg, slot, runs, arrival); err != nil {
			return err
		}
	}
	return nil
}

// eagerDrain enqueues one segment's runs onto the background drain queue:
// up to WriteBehindQueue batches may be in flight at once, each departing
// at the rank's current instant and completing on its own background
// timeline (the per-OST service queues arbitrate genuine contention). The
// caller's clock waits only when the queue is full — backpressure — and at
// the final drain.
func (f *File) eagerDrain(seg, slot int64, runs []extent.Extent, arrival simtime.Time) error {
	// Bounded queue: wait for the earliest in-flight batch when full.
	for len(f.wbOutstanding) >= f.cfg.WriteBehindQueue {
		i := 0
		for j, t := range f.wbOutstanding {
			if t < f.wbOutstanding[i] {
				i = j
			}
		}
		f.wbWait(f.wbOutstanding[i])
		f.wbOutstanding = append(f.wbOutstanding[:i], f.wbOutstanding[i+1:]...)
	}
	base := f.layout.SegStart(seg)
	reqs := make([]storage.Request, 0, len(runs))
	// One segment-sized arena stages the whole batch's snapshots: the
	// detached-start write below moves every byte physically before
	// returning (only its completion time is deferred), so the arena is
	// free again for the next batch. The runs are coalesced within one
	// segment, so they always fit. Plain memory — not a fault site, see
	// populate — so reuse cannot shift any alloc roll.
	if f.wbArena == nil {
		f.wbArena = make([]byte, f.segSize)
	}
	used := int64(0)
	for _, r := range runs {
		// Snapshot the run's bytes under the window's data mutex: remote
		// rewrite puts may be physically copying into this very region.
		// A rewrite's runs re-enter pending and drain again, so whichever
		// version the snapshot catches, the last bytes still win.
		dst := f.wbArena[used : used+r.Len]
		used += r.Len
		f.win.SnapshotLocalInto(dst, slot*f.segSize+r.Off)
		reqs = append(reqs, storage.Request{
			Off:  base + r.Off,
			Data: dst,
			Tag:  fmt.Sprintf("seg=%d off=%d (write-behind)", seg, base+r.Off),
		})
	}
	// The runs being drained were put into this window by their origins
	// (remote ranks and this rank alike), and in virtual time the bytes are
	// not here until those puts retire at the target: depart the batch no
	// earlier than the latest arrival recorded with the runs in l2meta.
	start := simtime.Max(f.c.Now(), arrival)
	res, end, err := f.store.WriteExtentsFrom("tcio: write-behind", trace.KindDrain, reqs, start)
	f.stats.Retries += res.Retries
	f.stats.FSWrites += res.Requests
	if !mutate.Enabled(mutate.TCIOEagerWritesUncounted) {
		f.stats.EagerWrites += res.Requests
	}
	if err != nil {
		return err
	}
	f.wbBusy += end.Sub(start)
	if end > f.wbLaneFree {
		f.wbLaneFree = end
	}
	f.wbOutstanding = append(f.wbOutstanding, end)
	f.stats.EagerDrains++
	return nil
}

// wbWait synchronizes the rank's clock with a background completion time,
// charging only the part not already hidden behind the application.
func (f *File) wbWait(t simtime.Time) {
	if now := f.c.Now(); t > now {
		f.wbWaited += t.Sub(now)
		f.c.AdvanceTo(t)
	}
}

// settleWriteBehind waits out the background lane at the final drain and
// folds the lane's accounting into Stats.OverlapSaved.
func (f *File) settleWriteBehind() {
	f.wbWait(f.wbLaneFree)
	f.wbOutstanding = f.wbOutstanding[:0]
	saved := f.wbBusy - f.wbWaited
	if saved < 0 {
		saved = 0
	}
	f.stats.OverlapSaved = saved
}
