package tcio

// The sieved demand-populate path (DESIGN.md §2d): instead of loading a
// whole level-2 segment on first touch, Fetch stages only the runs its
// queued reads actually need, handing them to the storage layer's
// data-sieving planner (storage.ReadExtentsSieved) so nearby runs collapse
// under covering reads of at most Config.SieveBuffer bytes. Partially
// staged segments are tracked in l2meta.popRuns; later fetches stage only
// what is still missing, and a segment whose runs grow to cover the whole
// window is promoted to fully populated.

import (
	"fmt"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/storage"
)

// sieveArmed reports whether demand populations go through the sieve.
// Without DemandPopulate the preload already reads every byte exactly
// once, so the knob is ignored.
func (f *File) sieveArmed() bool {
	return f.cfg.SieveBuffer > 0 && f.cfg.DemandPopulate
}

// segmentRuns converts one segment's queued reads into coalesced
// segment-relative runs — the byte set the fetch actually needs.
func segmentRuns(reqs []readReq, segSize int64) []extent.Extent {
	runs := make([]extent.Extent, len(reqs))
	for i, r := range reqs {
		runs[i] = extent.Extent{Off: r.off % segSize, Len: int64(len(r.dst))}
	}
	return extent.Coalesce(runs)
}

// sievePopulate stages the needed runs of one segment into the owner's
// window through the data sieve. The caller must hold the owner's
// exclusive window lock. Runs already staged by an earlier sieve, and runs
// freshly written into the window (dirty — newer than the file), are
// skipped; the sieve must never overwrite them with file bytes. It does
// not bump Stats.Populations: that counter means whole-segment loads, and
// the oracle over it becomes an upper bound when sieving is armed.
func (f *File) sievePopulate(seg int64, owner int, slot int64, needed []extent.Extent) error {
	missing := f.meta.missingRuns(seg, needed)
	if len(missing) == 0 {
		return nil
	}
	base := f.layout.SegStart(seg)
	size := f.store.File().Size()
	// Clamp to the file: a run at or past EOF reads nothing — the window
	// bytes are already zero, exactly what the (hole-extended) file holds —
	// but is still recorded below so it is not re-fetched.
	reads := make([]extent.Extent, 0, len(missing))
	for _, r := range missing {
		lo, hi := base+r.Off, base+r.End()
		if lo >= size {
			continue
		}
		if hi > size {
			hi = size
		}
		reads = append(reads, extent.Extent{Off: lo - base, Len: hi - lo})
	}
	if len(reads) > 0 {
		// Reused staging, like populate's: the missing runs of one segment
		// total at most segSize bytes, packed back to back in run order.
		if f.popBuf == nil {
			f.popBuf = make([]byte, f.segSize)
		}
		reqs := make([]storage.Request, len(reads))
		var at int64
		for i, r := range reads {
			reqs[i] = storage.Request{
				Off:  base + r.Off,
				Data: f.popBuf[at : at+r.Len],
				Tag:  fmt.Sprintf("seg=%d off=%d (sieve)", seg, base+r.Off),
			}
			at += r.Len
		}
		res, err := f.store.ReadExtentsSieved("tcio: sieve", reqs, f.cfg.SieveBuffer)
		f.stats.Retries += res.Retries
		f.stats.SieveReads += res.Requests
		f.stats.SieveWasteBytes += res.Waste
		if err != nil {
			return err
		}
		winRuns := make([]extent.Extent, len(reads))
		for i, r := range reads {
			winRuns[i] = extent.Extent{Off: slot*f.segSize + r.Off, Len: r.Len}
		}
		if err := f.win.PutSegments(owner, winRuns, f.popBuf[:at]); err != nil {
			return err
		}
	}
	f.meta.addPopRuns(seg, missing, f.segSize)
	return nil
}
