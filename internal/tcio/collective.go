package tcio

// The two-phase collective read (Config.CollectiveRead, DESIGN.md §2d) —
// OCIO's read-side discipline grafted onto TCIO's window machinery. Phase
// one: the ranks exchange their queued read intents (coalesced
// file-absolute runs) with one allgather, and each rank stages the union
// of all intents falling in its own segments — through the data sieve when
// SieveBuffer > 0, as whole-segment populations otherwise — with local
// window writes under its own lock, so each file-domain extent is fetched
// exactly once, by its owner, with no remote exclusive-lock traffic. A
// barrier publishes the windows. Phase two is the usual overlapped
// one-sided gets (read.go fetchGets), which redistribute every rank's runs
// from the freshly staged windows.

import (
	"encoding/binary"
	"sort"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
)

// fetchCollective is Fetch under Config.CollectiveRead. Unlike the
// independent path it has no empty-queue fast exit: a rank with nothing
// queued must still join the exchange and the barrier, and may still owe
// staging work for other ranks' intents.
func (f *File) fetchCollective() error {
	bySeg, order := f.groupPending()

	// Exchange read intents. Encoding is fixed-width little-endian
	// (offset, length) pairs — identical on every platform, so the blob
	// bytes are part of the deterministic replay surface.
	var mine []extent.Extent
	for _, seg := range order {
		for _, r := range bySeg[seg] {
			mine = append(mine, extent.Extent{Off: r.off, Len: int64(len(r.dst))})
		}
	}
	mine = extent.Coalesce(mine)
	blob := make([]byte, 16*len(mine))
	for i, r := range mine {
		binary.LittleEndian.PutUint64(blob[16*i:], uint64(r.Off))
		binary.LittleEndian.PutUint64(blob[16*i+8:], uint64(r.Len))
	}
	all, err := f.c.AllgatherBytes(blob)
	if err != nil {
		return err
	}
	f.stats.TwoPhaseExchanges++
	if mutate.Enabled(mutate.TCIOTwoPhaseDropIntent) {
		// Planted fault: the exchange silently loses the highest-ranked
		// contributing origin's intents, so the runs it needs from other
		// owners' segments are never staged. Every rank drops the same
		// blob, so the mutant stays deadlock-free — only wrong.
		for i := len(all) - 1; i >= 0; i-- {
			if len(all[i]) > 0 {
				all[i] = nil
				break
			}
		}
	}

	// Stage the union of all intents falling in this rank's own segments.
	// Splitting at segment boundaries and keying by owner assigns every
	// intended byte to exactly one rank's staging loop.
	needBySeg := make(map[int64][]extent.Extent)
	var segOrder []int64
	me := f.c.Rank()
	for _, b := range all {
		for i := 0; i+16 <= len(b); i += 16 {
			run := extent.Extent{
				Off: int64(binary.LittleEndian.Uint64(b[i:])),
				Len: int64(binary.LittleEndian.Uint64(b[i+8:])),
			}
			for run.Len > 0 {
				seg := f.layout.Segment(run.Off)
				segOff := run.Off % f.segSize
				n := f.segSize - segOff
				if n > run.Len {
					n = run.Len
				}
				if owner, _ := f.segmentOwner(seg); owner == me {
					if _, ok := needBySeg[seg]; !ok {
						segOrder = append(segOrder, seg)
					}
					needBySeg[seg] = append(needBySeg[seg], extent.Extent{Off: segOff, Len: n})
				}
				run.Off += n
				run.Len -= n
			}
		}
	}
	sort.Slice(segOrder, func(i, j int) bool { return segOrder[i] < segOrder[j] })
	if len(segOrder) > 0 {
		if err := f.win.Lock(me, true); err != nil {
			return err
		}
		for _, seg := range segOrder {
			if f.meta.isPopulated(seg) {
				f.dropWastedPrefetch(seg)
				continue
			}
			_, slot := f.segmentOwner(seg)
			var perr error
			if e, ok := f.takePrefetched(seg); ok {
				perr = f.populateFromCache(seg, me, slot, e)
			} else if f.sieveArmed() {
				perr = f.sievePopulate(seg, me, slot, extent.Coalesce(needBySeg[seg]))
			} else {
				perr = f.populate(seg, me, slot)
			}
			if perr != nil {
				f.win.Unlock(me)
				return perr
			}
		}
		if err := f.win.Unlock(me); err != nil {
			return err
		}
	}
	// The barrier publishes every owner's freshly staged window before any
	// rank's gets start — the boundary between the two phases.
	if err := f.c.Barrier(); err != nil {
		return err
	}
	return f.fetchGets(order, bySeg)
}
