package tcio

// The lazy read path (paper §IV.B): Read/ReadAt only record destination
// buffers; Fetch performs the real one-sided gets, batched per owner so
// the epochs' transfer waits overlap.

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/trace"
)

// readReq is one recorded lazy read: fill dst from the given file offset.
type readReq struct {
	off int64
	dst []byte
}

// Read records a lazy read of n bytes at the current pointer and returns
// the destination buffer. The buffer's contents are defined only after
// Fetch (or Close) — the paper's lazy-loading contract.
func (f *File) Read(n int64) ([]byte, error) {
	dst := make([]byte, n)
	if err := f.ReadAt(f.pos, dst); err != nil {
		return nil, err
	}
	f.pos += n
	return dst, nil
}

// ReadTyped lazily reads count elements of type t at the current pointer
// and scatters them into mem according to the type's layout — the
// tcio_read(fh, data, count, MPI_Datatype) entry point. Like all TCIO
// reads, mem is defined only after Fetch (or Close).
func (f *File) ReadTyped(mem []byte, count int, t datatype.Type) error {
	need := int64(count) * t.Extent()
	if int64(len(mem)) < need {
		return fmt.Errorf("tcio: ReadTyped needs %d bytes of destination, have %d", need, len(mem))
	}
	staging := make([]byte, int64(count)*t.Size())
	if err := f.ReadAt(f.pos, staging); err != nil {
		return err
	}
	f.pos += int64(len(staging))
	f.postFetch = append(f.postFetch, func() {
		// Unpack cannot fail here: sizes were validated above.
		_ = datatype.Unpack(staging, mem, t, count)
	})
	return nil
}

// ReadAt records a lazy read filling dst from the given file offset
// (tcio_read_at). Data lands in dst at the next Fetch, segment
// realignment, or Close.
func (f *File) ReadAt(off int64, dst []byte) error {
	switch {
	case f.closed:
		return ErrClosed
	case f.mode != ReadMode:
		return fmt.Errorf("%w: read on %s handle", ErrMode, f.mode)
	case off < 0:
		return fmt.Errorf("tcio: negative offset %d", off)
	}
	f.stats.Reads++
	f.stats.BytesRead += int64(len(dst))
	f.emit(trace.KindRead, f.c.Now(), int64(len(dst)), fmt.Sprintf("off=%d", off))
	for len(dst) > 0 {
		seg := f.globalSegment(off)
		segOff := off % f.segSize
		n := f.segSize - segOff
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if !f.layout.InRange(seg) {
			_, slot := f.segmentOwner(seg)
			return fmt.Errorf("%w: offset %d needs slot %d of %d (raise NumSegments)",
				ErrCapacity, off, slot, f.numSeg)
		}
		// Track the span of queued reads; once it exceeds the batch of
		// segments, perform the real data movement (the "file domain of
		// cached reads exceeds the level-1 buffer" rule, batched).
		if f.pendingSeg != seg {
			f.pendingDistinct++
			f.pendingSeg = seg
			if f.pendingDistinct > f.cfg.FetchBatch {
				// Always the independent path, even under CollectiveRead: a
				// rank-local batch overflow cannot be a collective call —
				// peers may be anywhere in their own compute.
				if err := f.fetchIndependent(); err != nil {
					return err
				}
				f.pendingDistinct = 1
				f.pendingSeg = seg
			}
		}
		f.c.Compute(f.pieceCPU)
		f.pending = append(f.pending, readReq{off: off, dst: dst[:n]})
		off += n
		dst = dst[n:]
	}
	return nil
}

// Fetch completes all recorded lazy reads (tcio_fetch). By default it is
// independent: only the calling rank participates. Under
// Config.CollectiveRead it is instead the two-phase collective exchange of
// collective.go — every rank of the read session must call it together.
func (f *File) Fetch() error {
	if f.closed {
		return ErrClosed
	}
	if f.cfg.CollectiveRead && f.mode == ReadMode {
		return f.fetchCollective()
	}
	return f.fetchIndependent()
}

// fetchIndependent is the rank-local fetch: gets for all queued segments
// are issued asynchronously under concurrently held shared window locks —
// one epoch per owner — so their wire times overlap instead of
// serializing.
func (f *File) fetchIndependent() error {
	if len(f.pending) == 0 {
		f.pendingSeg = -1
		f.pendingDistinct = 0
		f.runPostFetch()
		return nil
	}
	bySeg, order := f.groupPending()

	// Phase 1: make sure every needed segment is populated (only possible
	// in demand mode; the default preloads at Open). Population needs the
	// owner's exclusive lock. With prefetch armed, each step serves the
	// current segment (from the cache when it was staged in time), then
	// pushes the background lane ahead over the batch's forward-consecutive
	// successors — after the current segment's read, so the rank's file
	// system request order is exactly the demand loop's. With the sieve
	// armed, only the runs the queued reads need are staged (sieve.go)
	// instead of the whole segment; a staged prefetch still wins — its
	// whole-segment read already happened, so sieving after it would only
	// re-read bytes the cache holds.
	for i, seg := range order {
		if f.meta.isPopulated(seg) {
			f.dropWastedPrefetch(seg)
			continue
		}
		owner, slot := f.segmentOwner(seg)
		if err := f.win.Lock(owner, true); err != nil {
			return err
		}
		if !f.meta.isPopulated(seg) {
			var perr error
			if e, ok := f.takePrefetched(seg); ok {
				perr = f.populateFromCache(seg, owner, slot, e)
			} else if f.sieveArmed() {
				perr = f.sievePopulate(seg, owner, slot, segmentRuns(bySeg[seg], f.segSize))
			} else {
				perr = f.populate(seg, owner, slot)
			}
			if perr == nil {
				perr = f.maybePrefetch(order, i)
			}
			if perr != nil {
				f.win.Unlock(owner)
				return perr
			}
		} else {
			f.dropWastedPrefetch(seg)
		}
		if err := f.win.Unlock(owner); err != nil {
			return err
		}
	}
	return f.fetchGets(order, bySeg)
}

// groupPending groups the queued lazy reads by global segment, in first-
// appearance order (requests may span several segments when a single
// ReadAt crossed a boundary), and resets the queue.
func (f *File) groupPending() (map[int64][]readReq, []int64) {
	bySeg := make(map[int64][]readReq)
	var order []int64
	for _, r := range f.pending {
		seg := f.globalSegment(r.off)
		if _, ok := bySeg[seg]; !ok {
			order = append(order, seg)
		}
		bySeg[seg] = append(bySeg[seg], r)
	}
	f.pending = f.pending[:0]
	f.pendingSeg = -1
	f.pendingDistinct = 0
	return bySeg, order
}

// fetchGets is the data-movement phase shared by the independent and
// collective fetch paths: shared-lock each owner once, issue every
// segment's get asynchronously, then unlock — Unlock synchronizes with the
// epoch's transfers, so the waits overlap across owners and segments.
func (f *File) fetchGets(order []int64, bySeg map[int64][]readReq) error {
	if len(order) == 0 {
		f.runPostFetch()
		return nil
	}
	type pendingGet struct {
		handle *mpi.GetHandle
		reqs   []readReq
	}
	owners := make(map[int]bool)
	var lockOrder []int
	for _, seg := range order {
		owner, _ := f.segmentOwner(seg)
		if !owners[owner] {
			owners[owner] = true
			lockOrder = append(lockOrder, owner)
		}
	}
	for _, owner := range lockOrder {
		if err := f.win.Lock(owner, false); err != nil {
			return err
		}
	}
	gets := make([]pendingGet, 0, len(order))
	var issueErr error
	for _, seg := range order {
		owner, slot := f.segmentOwner(seg)
		reqs := bySeg[seg]
		runs := make([]extent.Extent, len(reqs))
		for i, r := range reqs {
			runs[i] = extent.Extent{Off: slot*f.segSize + r.off%f.segSize, Len: int64(len(r.dst))}
		}
		h, err := f.win.GetSegmentsAsync(owner, runs)
		if err != nil {
			issueErr = err
			break
		}
		f.stats.Gets++
		gets = append(gets, pendingGet{handle: h, reqs: reqs})
	}
	for _, owner := range lockOrder {
		if err := f.win.Unlock(owner); err != nil && issueErr == nil {
			issueErr = err
		}
	}
	if issueErr != nil {
		return issueErr
	}
	// All epochs are closed: every get's data is complete. Scatter it.
	fetchStart := f.c.Now()
	var fetched int64
	for _, g := range gets {
		data := g.handle.Complete()
		at := int64(0)
		for _, r := range g.reqs {
			copy(r.dst, data[at:at+int64(len(r.dst))])
			at += int64(len(r.dst))
		}
	}
	for _, g := range gets {
		for _, r := range g.reqs {
			fetched += int64(len(r.dst))
		}
	}
	f.emit(trace.KindFetch, fetchStart, fetched, fmt.Sprintf("segments=%d", len(gets)))
	f.runPostFetch()
	return nil
}

// runPostFetch fires and clears the typed-read unpack hooks.
func (f *File) runPostFetch() {
	hooks := f.postFetch
	f.postFetch = nil
	for _, h := range hooks {
		h()
	}
}
