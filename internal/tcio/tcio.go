// Package tcio implements Transparent Collective I/O — the contribution of
// the paper. TCIO lets a parallel application issue plain POSIX-like I/O
// calls, one per piece of data, and transparently converts the resulting
// small, interleaved, non-contiguous accesses into large aggregated file
// system requests. No file views, no derived datatypes, no application-level
// combine buffers.
//
// The design follows §IV of the paper:
//
//   - A level-1 buffer per process coalesces small sequential accesses that
//     fall inside one level-2 segment. It is exactly one segment long and is
//     aligned with one segment at a time.
//
//   - Level-2 buffers are exposed through an MPI one-sided window. Each
//     process owns NumSegments segments of SegmentSize bytes, and global
//     file offsets map onto them round-robin via the paper's equations:
//
//     rank(offset)    = (offset / SegmentSize) % P     (1)
//     segment(offset) = (offset / SegmentSize) / P     (2)
//     disp(offset)    =  offset % SegmentSize          (3)
//
//   - All level-1 ↔ level-2 movement uses passive-target one-sided
//     communication (lock / put / get / unlock) carrying the coalesced
//     block list as a single indexed-datatype transfer. No matching pairs
//     are needed, so every rank may issue a different number of I/O calls.
//
//   - Reads are lazy: Read/ReadAt only record destinations; data moves on
//     Fetch, on realignment, or at Close.
//
// SegmentSize defaults to the file system's stripe size — its lock
// granularity — as §IV.A prescribes.
package tcio

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// Mode selects the direction of a TCIO file session.
type Mode int

// Open modes.
const (
	// WriteMode buffers writes in level-1/level-2 and drains them to the
	// file system at Close.
	WriteMode Mode = iota
	// ReadMode serves lazy reads from level-2 segments populated on demand
	// from the file system.
	ReadMode
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case WriteMode:
		return "write"
	case ReadMode:
		return "read"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the library. The zero value is usable: SegmentSize defaults
// to the file system stripe size and NumSegments to 64.
type Config struct {
	// SegmentSize is the level-2 segment length in bytes. The paper sets
	// it to the file system's lock granularity (stripe size); 0 means
	// "use the stripe size".
	SegmentSize int64
	// NumSegments is the number of level-2 segments each process exposes.
	// Together the processes must cover the file: P * NumSegments *
	// SegmentSize >= file size. 0 means 64.
	NumSegments int

	// DisableLevel1 is an ablation switch: every piece is shipped to the
	// level-2 buffer immediately, with its own one-sided operation,
	// instead of being coalesced in the level-1 buffer first.
	DisableLevel1 bool
	// DemandPopulate is an ablation switch for reads. By default, opening
	// in read mode makes every rank load its own level-2 segments from the
	// file system (the paper's aggregators acting "as I/O delegators to
	// move the data from files to their temporary buffers"). With
	// DemandPopulate, segments are instead loaded lazily by the first
	// rank that fetches from them, under the exclusive window lock.
	DemandPopulate bool
	// FetchBatch is the number of distinct segments lazy reads may span
	// before the library fetches them implicitly (the paper's "file domain
	// of cached reads exceeds the level-1 buffer" rule, generalized to a
	// batch so that the one-sided gets of many segments pipeline through
	// one lock epoch per owner). 0 means 64.
	FetchBatch int
	// PipelineDepth bounds the number of put epochs a writer keeps open
	// concurrently. Each level-1 flush leaves its epoch open so transfers
	// overlap; beyond the depth the oldest epoch is closed (waiting for
	// its transfer). This models a bounded NIC queue: TCIO paces its
	// traffic instead of bursting like the two-phase exchange. 0 means 8.
	PipelineDepth int
	// EmulateTwoSided is an ablation switch: level-1 <-> level-2 transfers
	// are charged as two-sided (matched send/receive) messages instead of
	// one-sided RDMA, isolating the paper's claim that one-sided
	// communication is key to TCIO's scalability.
	EmulateTwoSided bool
	// Trace, when non-nil, records the library's operations (writes,
	// flushes, fetches, populations, drains) with virtual timestamps.
	Trace *trace.Recorder
	// Retry bounds how the library absorbs transient injected faults on
	// its file system and one-sided paths (populate, preload, drain,
	// ship). nil means faults.DefaultRetryPolicy(); a zero-budget policy
	// (&faults.RetryPolicy{}) turns the first transient fault permanent.
	Retry *faults.RetryPolicy
}

// Errors returned by the library.
var (
	// ErrMode is returned for writes on a read handle and vice versa.
	ErrMode = errors.New("tcio: operation does not match open mode")
	// ErrCapacity is returned when an access maps past the level-2
	// buffers (offset >= P * NumSegments * SegmentSize).
	ErrCapacity = errors.New("tcio: access beyond level-2 buffer capacity")
	// ErrClosed is returned for operations on a closed handle.
	ErrClosed = errors.New("tcio: file closed")
	// ErrUnfetched is returned by Close in read mode if pending reads
	// could not be completed.
	ErrUnfetched = errors.New("tcio: pending reads not fetched")
)

// Stats counts the library's internal activity on one rank — used by the
// ablation benchmarks and tests.
type Stats struct {
	Writes       int64 // application write calls
	Reads        int64 // application read calls
	Level1Flush  int64 // level-1 -> level-2 shipments (one-sided puts)
	Gets         int64 // level-2 -> application transfers (one-sided gets)
	Populations  int64 // segments demand-populated from the file system
	FSWrites     int64 // file system write requests at Close/drain
	BytesWritten int64
	BytesRead    int64
	// Retries counts transient faults this rank absorbed with backoff
	// across all library paths (file system RPCs and one-sided puts).
	Retries int64

	// Virtual time spent in the phases of level-1 -> level-2 shipment,
	// for performance diagnosis and the ablation reports.
	LockWait   simtime.Duration
	PutIssue   simtime.Duration
	UnlockWait simtime.Duration
}

// l2meta is the bookkeeping shared by all ranks of one TCIO file: which
// parts of each global segment hold buffered data (dirty, writes) and which
// segments have been populated from the file system (reads). Access is
// serialized by the window lock discipline plus an internal mutex.
type l2meta struct {
	mu        sync.Mutex
	dirty     map[int64][]datatype.Segment // global segment -> runs (segment-relative)
	populated map[int64]bool
}

func (m *l2meta) addDirty(seg int64, runs []datatype.Segment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty[seg] = datatype.Coalesce(append(m.dirty[seg], runs...))
}

func (m *l2meta) dirtyRuns(seg int64) []datatype.Segment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirty[seg]
}

func (m *l2meta) isPopulated(seg int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.populated[seg]
}

func (m *l2meta) setPopulated(seg int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.populated[seg] = true
}

// readReq is one recorded lazy read: fill dst from the given file offset.
type readReq struct {
	off int64
	dst []byte
}

// File is one rank's TCIO handle on a shared file.
type File struct {
	c    *mpi.Comm
	cfg  Config
	mode Mode
	name string

	pfName   string
	segSize  int64
	numSeg   int
	pieceCPU simtime.Duration // per-piece library processing cost
	retry    faults.RetryPolicy

	win  *mpi.Win
	meta *l2meta

	pos    int64
	closed bool

	// Level-1 buffer (write mode).
	l1Seg    int64 // aligned global segment; -1 when empty
	l1Buf    []byte
	l1Blocks []datatype.Segment // segment-relative cached runs
	// openOwners lists the targets with an open shared put epoch.
	openOwners []int
	// shipCount numbers this rank's one-sided shipments; it keys the
	// deterministic fault rolls of the put path.
	shipCount int64

	// Lazy read queue. pendingSeg is the most recent segment touched;
	// pendingDistinct counts the distinct segments queued, which triggers
	// an implicit Fetch at the FetchBatch threshold.
	pending         []readReq
	pendingSeg      int64
	pendingDistinct int
	// postFetch hooks run after the next completed Fetch — used by typed
	// reads to unpack staged bytes into the caller's layout.
	postFetch []func()

	stats Stats
}

// Open starts a TCIO session on the named shared file. It is collective:
// every rank must call it with the same name, mode, and configuration.
// Window memory (NumSegments * SegmentSize) plus one level-1 buffer is
// charged against the rank's simulated memory share.
func Open(c *mpi.Comm, name string, mode Mode, cfg Config) (*File, error) {
	if mode != WriteMode && mode != ReadMode {
		return nil, fmt.Errorf("tcio: invalid mode %d", int(mode))
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = c.FS().Config().StripeSize
	}
	if cfg.SegmentSize < 1 {
		return nil, fmt.Errorf("tcio: segment size %d", cfg.SegmentSize)
	}
	if cfg.NumSegments == 0 {
		cfg.NumSegments = 64
	}
	if cfg.NumSegments < 1 {
		return nil, fmt.Errorf("tcio: %d segments", cfg.NumSegments)
	}
	if cfg.FetchBatch == 0 {
		cfg.FetchBatch = 64
	}
	if cfg.FetchBatch < 1 {
		return nil, fmt.Errorf("tcio: fetch batch %d", cfg.FetchBatch)
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 8
	}
	if cfg.PipelineDepth < 1 {
		return nil, fmt.Errorf("tcio: pipeline depth %d", cfg.PipelineDepth)
	}
	retry := faults.DefaultRetryPolicy()
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}

	// Level-2 window memory: NumSegments segments of SegmentSize each.
	winBuf, err := c.Malloc(int64(cfg.NumSegments) * cfg.SegmentSize)
	if err != nil {
		return nil, fmt.Errorf("tcio: level-2 buffer: %w", err)
	}
	// Level-1 buffer: exactly one segment (paper §IV.A: "we set them to be
	// equal, and each level-1 buffer is aligned with one level-2 segment").
	l1, err := c.Malloc(cfg.SegmentSize)
	if err != nil {
		c.Free(winBuf)
		return nil, fmt.Errorf("tcio: level-1 buffer: %w", err)
	}
	win, err := c.WinCreate(winBuf)
	if err != nil {
		return nil, err
	}
	shared, err := c.SharedOnce(func() interface{} {
		return &l2meta{dirty: make(map[int64][]datatype.Segment), populated: make(map[int64]bool)}
	})
	if err != nil {
		return nil, err
	}
	f := &File{
		c:       c,
		cfg:     cfg,
		mode:    mode,
		name:    name,
		segSize: cfg.SegmentSize,
		numSeg:  cfg.NumSegments,
		win:     win,
		meta:    shared.(*l2meta),
		retry:   retry,
		l1Seg:   -1,
		l1Buf:   l1,
		// Each POSIX-like call costs library CPU (offset mapping, block
		// bookkeeping, copies). Scaled runs stand for ByteScale times as
		// many pieces, so the charge scales accordingly. Reads are cheaper:
		// lazy recording touches no data until Fetch.
		pieceCPU: simtime.Duration(150) * simtime.Duration(c.Machine().ByteScale),
	}
	if mode == ReadMode {
		f.pieceCPU = simtime.Duration(60) * simtime.Duration(c.Machine().ByteScale)
	}
	if cfg.EmulateTwoSided {
		win.SetClass(netsim.TwoSided)
	}
	f.pendingSeg = -1
	if mode == ReadMode && !cfg.DemandPopulate {
		if err := f.preloadAll(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Capacity reports the total file range the level-2 buffers can hold.
func (f *File) Capacity() int64 {
	return int64(f.c.Size()) * int64(f.numSeg) * f.segSize
}

// Stats returns this rank's activity counters.
func (f *File) Stats() Stats { return f.stats }

// emit records a trace event when tracing is enabled.
func (f *File) emit(kind trace.Kind, start simtime.Time, bytes int64, detail string) {
	if f.cfg.Trace == nil {
		return
	}
	f.cfg.Trace.Record(trace.Event{
		Rank:   f.c.Rank(),
		Start:  start,
		Dur:    f.c.Now().Sub(start),
		Kind:   kind,
		Bytes:  bytes,
		Detail: detail,
	})
}

// locate applies the paper's equations (1)-(3) to a file offset.
func (f *File) locate(off int64) (rank int, slot int64, disp int64) {
	seg := off / f.segSize
	p := int64(f.c.Size())
	return int(seg % p), seg / p, off % f.segSize
}

// globalSegment returns the global segment index of a file offset.
func (f *File) globalSegment(off int64) int64 { return off / f.segSize }

// segmentOwner returns the owning rank and local slot of a global segment.
func (f *File) segmentOwner(seg int64) (rank int, slot int64) {
	p := int64(f.c.Size())
	return int(seg % p), seg / p
}

// Seek positions the file pointer. whence follows io.Seeker: 0 = absolute,
// 1 = relative to the current position (2, end-relative, is not supported:
// the library does not track a global end-of-file).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var next int64
	switch whence {
	case 0:
		next = offset
	case 1:
		next = f.pos + offset
	default:
		return f.pos, fmt.Errorf("tcio: Seek whence %d not supported", whence)
	}
	if next < 0 {
		return f.pos, fmt.Errorf("tcio: Seek to negative offset %d", next)
	}
	f.pos = next
	return f.pos, nil
}

// Write appends data at the current file pointer (tcio_write).
func (f *File) Write(data []byte) error {
	if err := f.WriteAt(f.pos, data); err != nil {
		return err
	}
	f.pos += int64(len(data))
	return nil
}

// WriteTyped writes count elements of type t, gathered from mem according
// to the type's layout — the tcio_write(fh, data, count, MPI_Datatype)
// entry point of the paper's Program 1.
func (f *File) WriteTyped(mem []byte, count int, t datatype.Type) error {
	packed, err := datatype.Pack(mem, t, count)
	if err != nil {
		return err
	}
	return f.Write(packed)
}

// ReadTyped lazily reads count elements of type t at the current pointer
// and scatters them into mem according to the type's layout — the
// tcio_read(fh, data, count, MPI_Datatype) entry point. Like all TCIO
// reads, mem is defined only after Fetch (or Close).
func (f *File) ReadTyped(mem []byte, count int, t datatype.Type) error {
	need := int64(count) * t.Extent()
	if int64(len(mem)) < need {
		return fmt.Errorf("tcio: ReadTyped needs %d bytes of destination, have %d", need, len(mem))
	}
	staging := make([]byte, int64(count)*t.Size())
	if err := f.ReadAt(f.pos, staging); err != nil {
		return err
	}
	f.pos += int64(len(staging))
	f.postFetch = append(f.postFetch, func() {
		// Unpack cannot fail here: sizes were validated above.
		_ = datatype.Unpack(staging, mem, t, count)
	})
	return nil
}

// WriteAt writes data at the given file offset (tcio_write_at). The call
// is fully independent: no other rank needs to participate.
func (f *File) WriteAt(off int64, data []byte) error {
	switch {
	case f.closed:
		return ErrClosed
	case f.mode != WriteMode:
		return fmt.Errorf("%w: write on %s handle", ErrMode, f.mode)
	case off < 0:
		return fmt.Errorf("tcio: negative offset %d", off)
	}
	f.stats.Writes++
	f.stats.BytesWritten += int64(len(data))
	f.emit(trace.KindWrite, f.c.Now(), int64(len(data)), fmt.Sprintf("off=%d", off))
	// Split at segment boundaries: a block larger than one segment "has to
	// be subdivided and placed in different segments" (§IV.A).
	for len(data) > 0 {
		seg := f.globalSegment(off)
		segOff := off % f.segSize
		n := f.segSize - segOff
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		if _, slot := f.segmentOwner(seg); slot >= int64(f.numSeg) {
			return fmt.Errorf("%w: offset %d needs slot %d of %d (raise NumSegments)",
				ErrCapacity, off, slot, f.numSeg)
		}
		f.c.Compute(f.pieceCPU)
		if err := f.stageWrite(seg, segOff, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	return nil
}

// stageWrite places one within-segment piece into the level-1 buffer,
// flushing and realigning first when the piece belongs to a different
// segment than the buffer is aligned with.
func (f *File) stageWrite(seg, segOff int64, piece []byte) error {
	if f.cfg.DisableLevel1 {
		// Ablation: ship the piece immediately with its own one-sided op.
		return f.ship(seg, []datatype.Segment{{Off: segOff, Len: int64(len(piece))}}, piece)
	}
	if f.l1Seg != seg {
		if err := f.flushLevel1(); err != nil {
			return err
		}
		f.l1Seg = seg
	}
	copy(f.l1Buf[segOff:segOff+int64(len(piece))], piece)
	f.l1Blocks = append(f.l1Blocks, datatype.Segment{Off: segOff, Len: int64(len(piece))})
	return nil
}

// flushLevel1 ships the level-1 buffer's cached blocks to the owning
// level-2 segment as one indexed-datatype one-sided put.
func (f *File) flushLevel1() error {
	if f.l1Seg < 0 || len(f.l1Blocks) == 0 {
		f.l1Seg = -1
		f.l1Blocks = f.l1Blocks[:0]
		return nil
	}
	blocks := datatype.Coalesce(f.l1Blocks)
	payload := make([]byte, 0, f.segSize)
	for _, b := range blocks {
		payload = append(payload, f.l1Buf[b.Off:b.Off+b.Len]...)
	}
	err := f.ship(f.l1Seg, blocks, payload)
	f.l1Seg = -1
	f.l1Blocks = f.l1Blocks[:0]
	return err
}

// ship performs the one-sided transfer of segment-relative runs into the
// owner's window and records them as dirty.
//
// A shared lock suffices: different ranks put into disjoint byte ranges of
// the segment (their own blocks), so concurrent epochs are safe. The epoch
// is left open (recorded in openOwners) so that successive flushes to the
// same owner pipeline; Flush and Close end all open epochs with one wave of
// unlocks whose completion waits overlap.
func (f *File) ship(seg int64, runs []datatype.Segment, payload []byte) error {
	owner, slot := f.segmentOwner(seg)
	if slot >= int64(f.numSeg) {
		return fmt.Errorf("%w: segment %d needs slot %d of %d", ErrCapacity, seg, slot, f.numSeg)
	}
	winRuns := make([]datatype.Segment, len(runs))
	for i, r := range runs {
		winRuns[i] = datatype.Segment{Off: slot*f.segSize + r.Off, Len: r.Len}
	}
	t0 := f.c.Now()
	if !f.win.Held(owner) {
		// Bound the pipeline: retire the oldest epoch once the window of
		// outstanding puts is full.
		for len(f.openOwners) >= f.cfg.PipelineDepth {
			oldest := f.openOwners[0]
			f.openOwners = f.openOwners[1:]
			if err := f.win.Unlock(oldest); err != nil {
				return err
			}
		}
		if err := f.win.Lock(owner, false); err != nil {
			return err
		}
		f.openOwners = append(f.openOwners, owner)
	}
	t1 := f.c.Now()
	if err := f.putSegmentsRetry(owner, seg, winRuns, payload); err != nil {
		return err
	}
	t2 := f.c.Now()
	f.stats.LockWait += t1.Sub(t0)
	f.stats.PutIssue += t2.Sub(t1)
	f.meta.addDirty(seg, runs)
	f.stats.Level1Flush++
	f.emit(trace.KindFlush, t0, int64(len(payload)), fmt.Sprintf("seg=%d owner=%d runs=%d", seg, owner, len(runs)))
	return nil
}

// putSegmentsRetry issues one one-sided put, absorbing injected NIC
// work-request drops (faults.SiteWinPut) with the file's retry policy. The
// fault roll is keyed by this rank's shipment number so chaos runs replay
// exactly; the backoff burns virtual compute time on the origin, as a real
// sender re-posting a dropped work request would.
func (f *File) putSegmentsRetry(owner int, seg int64, runs []datatype.Segment, payload []byte) error {
	inj := f.c.Faults()
	ship := f.shipCount
	f.shipCount++
	for attempt := 0; ; attempt++ {
		if !inj.Should(faults.SiteWinPut, int64(f.c.Rank()), ship, int64(attempt)) {
			return f.win.PutSegments(owner, runs, payload)
		}
		cause := inj.Fault(faults.SiteWinPut, "rank=%d seg=%d owner=%d", f.c.Rank(), seg, owner)
		if attempt >= f.retry.MaxRetries {
			return fmt.Errorf("tcio: ship segment %d to rank %d: %w",
				seg, owner, faults.Exhausted(attempt, cause))
		}
		start := f.c.Now()
		f.c.Compute(f.retry.Backoff(attempt + 1))
		f.stats.Retries++
		f.emit(trace.KindRetry, start, 0,
			fmt.Sprintf("put seg=%d owner=%d attempt=%d", seg, owner, attempt+1))
	}
}

// fsRetried folds one retried file system call into the rank's stats and
// trace, wrapping exhaustion errors with the operation's context.
func (f *File) fsRetried(op string, seg int64, start simtime.Time, retries int64, err error) error {
	if retries > 0 {
		f.stats.Retries += retries
		f.emit(trace.KindRetry, start, 0, fmt.Sprintf("%s seg=%d retries=%d", op, seg, retries))
	}
	if err != nil {
		return fmt.Errorf("tcio: %s segment %d: %w", op, seg, err)
	}
	return nil
}

// closeEpochs unlocks every open put epoch; the unlock completions overlap.
func (f *File) closeEpochs() error {
	t0 := f.c.Now()
	var first error
	for _, owner := range f.openOwners {
		if err := f.win.Unlock(owner); err != nil && first == nil {
			first = err
		}
	}
	f.openOwners = f.openOwners[:0]
	f.stats.UnlockWait += f.c.Now().Sub(t0)
	return first
}

// Flush drains the level-1 buffer to the level-2 buffers on every rank.
// It is collective (the paper's tcio_flush "invokes MPI_Barrier").
func (f *File) Flush() error {
	if f.closed {
		return ErrClosed
	}
	if f.mode == WriteMode {
		if err := f.flushLevel1(); err != nil {
			return err
		}
		if err := f.closeEpochs(); err != nil {
			return err
		}
	}
	return f.c.Barrier()
}

// Read records a lazy read of n bytes at the current pointer and returns
// the destination buffer. The buffer's contents are defined only after
// Fetch (or Close) — the paper's lazy-loading contract.
func (f *File) Read(n int64) ([]byte, error) {
	dst := make([]byte, n)
	if err := f.ReadAt(f.pos, dst); err != nil {
		return nil, err
	}
	f.pos += n
	return dst, nil
}

// ReadAt records a lazy read filling dst from the given file offset
// (tcio_read_at). Data lands in dst at the next Fetch, segment
// realignment, or Close.
func (f *File) ReadAt(off int64, dst []byte) error {
	switch {
	case f.closed:
		return ErrClosed
	case f.mode != ReadMode:
		return fmt.Errorf("%w: read on %s handle", ErrMode, f.mode)
	case off < 0:
		return fmt.Errorf("tcio: negative offset %d", off)
	}
	f.stats.Reads++
	f.stats.BytesRead += int64(len(dst))
	f.emit(trace.KindRead, f.c.Now(), int64(len(dst)), fmt.Sprintf("off=%d", off))
	for len(dst) > 0 {
		seg := f.globalSegment(off)
		segOff := off % f.segSize
		n := f.segSize - segOff
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if _, slot := f.segmentOwner(seg); slot >= int64(f.numSeg) {
			return fmt.Errorf("%w: offset %d needs slot %d of %d (raise NumSegments)",
				ErrCapacity, off, slot, f.numSeg)
		}
		// Track the span of queued reads; once it exceeds the batch of
		// segments, perform the real data movement (the "file domain of
		// cached reads exceeds the level-1 buffer" rule, batched).
		if f.pendingSeg != seg {
			f.pendingDistinct++
			f.pendingSeg = seg
			if f.pendingDistinct > f.cfg.FetchBatch {
				if err := f.Fetch(); err != nil {
					return err
				}
				f.pendingDistinct = 1
				f.pendingSeg = seg
			}
		}
		f.c.Compute(f.pieceCPU)
		f.pending = append(f.pending, readReq{off: off, dst: dst[:n]})
		off += n
		dst = dst[n:]
	}
	return nil
}

// Fetch completes all recorded lazy reads (tcio_fetch). It is independent:
// only the calling rank participates. Gets for all queued segments are
// issued asynchronously under concurrently held shared window locks — one
// epoch per owner — so their wire times overlap instead of serializing.
func (f *File) Fetch() error {
	if f.closed {
		return ErrClosed
	}
	if len(f.pending) == 0 {
		f.pendingSeg = -1
		f.pendingDistinct = 0
		f.runPostFetch()
		return nil
	}
	// Group by segment (requests may span several when a single ReadAt
	// crossed a boundary).
	bySeg := make(map[int64][]readReq)
	var order []int64
	for _, r := range f.pending {
		seg := f.globalSegment(r.off)
		if _, ok := bySeg[seg]; !ok {
			order = append(order, seg)
		}
		bySeg[seg] = append(bySeg[seg], r)
	}
	f.pending = f.pending[:0]
	f.pendingSeg = -1
	f.pendingDistinct = 0

	// Phase 1: make sure every needed segment is populated (only possible
	// in demand mode; the default preloads at Open). Population needs the
	// owner's exclusive lock.
	for _, seg := range order {
		if f.meta.isPopulated(seg) {
			continue
		}
		owner, slot := f.segmentOwner(seg)
		if err := f.win.Lock(owner, true); err != nil {
			return err
		}
		if !f.meta.isPopulated(seg) {
			if err := f.populate(seg, owner, slot); err != nil {
				f.win.Unlock(owner)
				return err
			}
		}
		if err := f.win.Unlock(owner); err != nil {
			return err
		}
	}

	// Phase 2: shared-lock each owner once, issue every segment's get
	// asynchronously, then unlock — Unlock synchronizes with the epoch's
	// transfers, so the waits overlap across owners and segments.
	type pendingGet struct {
		handle *mpi.GetHandle
		reqs   []readReq
	}
	owners := make(map[int]bool)
	var lockOrder []int
	for _, seg := range order {
		owner, _ := f.segmentOwner(seg)
		if !owners[owner] {
			owners[owner] = true
			lockOrder = append(lockOrder, owner)
		}
	}
	for _, owner := range lockOrder {
		if err := f.win.Lock(owner, false); err != nil {
			return err
		}
	}
	gets := make([]pendingGet, 0, len(order))
	var issueErr error
	for _, seg := range order {
		owner, slot := f.segmentOwner(seg)
		reqs := bySeg[seg]
		runs := make([]datatype.Segment, len(reqs))
		for i, r := range reqs {
			runs[i] = datatype.Segment{Off: slot*f.segSize + r.off%f.segSize, Len: int64(len(r.dst))}
		}
		h, err := f.win.GetSegmentsAsync(owner, runs)
		if err != nil {
			issueErr = err
			break
		}
		f.stats.Gets++
		gets = append(gets, pendingGet{handle: h, reqs: reqs})
	}
	for _, owner := range lockOrder {
		if err := f.win.Unlock(owner); err != nil && issueErr == nil {
			issueErr = err
		}
	}
	if issueErr != nil {
		return issueErr
	}
	// All epochs are closed: every get's data is complete. Scatter it.
	fetchStart := f.c.Now()
	var fetched int64
	for _, g := range gets {
		data := g.handle.Complete()
		at := int64(0)
		for _, r := range g.reqs {
			copy(r.dst, data[at:at+int64(len(r.dst))])
			at += int64(len(r.dst))
		}
	}
	for _, g := range gets {
		for _, r := range g.reqs {
			fetched += int64(len(r.dst))
		}
	}
	f.emit(trace.KindFetch, fetchStart, fetched, fmt.Sprintf("segments=%d", len(gets)))
	f.runPostFetch()
	return nil
}

// runPostFetch fires and clears the typed-read unpack hooks.
func (f *File) runPostFetch() {
	hooks := f.postFetch
	f.postFetch = nil
	for _, h := range hooks {
		h()
	}
}

// populate loads one whole segment from the file system into its owner's
// window — the aggregated read that makes TCIO's read path collective in
// effect. The caller must hold the owner's exclusive window lock.
func (f *File) populate(seg int64, owner int, slot int64) error {
	pf := f.c.FS().Open(f.name)
	base := seg * f.segSize
	n := f.segSize
	if size := pf.Size(); base+n > size {
		n = size - base
	}
	if n <= 0 {
		f.meta.setPopulated(seg)
		return nil
	}
	buf := make([]byte, n)
	start := f.c.Now()
	end, retries, err := pf.ReadAtRetry(f.c.Node(), base, buf, start, f.retry)
	f.c.AdvanceTo(end)
	if err := f.fsRetried("populate", seg, start, retries, err); err != nil {
		return err
	}
	if err := f.win.PutSegments(owner, []datatype.Segment{{Off: slot * f.segSize, Len: n}}, buf); err != nil {
		return err
	}
	f.meta.setPopulated(seg)
	f.stats.Populations++
	f.emit(trace.KindPopulate, f.c.Now(), n, fmt.Sprintf("seg=%d", seg))
	return nil
}

// preloadAll populates every local slot that overlaps the file — the eager
// ablation. Each rank reads only its own segments, so the file system sees
// P large disjoint requests.
func (f *File) preloadAll() error {
	pf := f.c.FS().Open(f.name)
	size := pf.Size()
	p := int64(f.c.Size())
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := slot*p + int64(f.c.Rank())
		base := seg * f.segSize
		if base >= size {
			break
		}
		n := f.segSize
		if base+n > size {
			n = size - base
		}
		buf := f.win.Local()[slot*f.segSize : slot*f.segSize+n]
		start := f.c.Now()
		end, retries, err := pf.ReadAtRetry(f.c.Node(), base, buf, start, f.retry)
		f.c.AdvanceTo(end)
		if err := f.fsRetried("preload", seg, start, retries, err); err != nil {
			return err
		}
		f.meta.setPopulated(seg)
		f.stats.Populations++
		f.emit(trace.KindPopulate, start, n, fmt.Sprintf("seg=%d (preload)", seg))
	}
	return f.c.Barrier()
}

// Close ends the session (tcio_close). It is collective: in write mode the
// level-1 buffers are drained, all ranks synchronize, and each rank writes
// its own populated level-2 segments to the file system as large aligned
// requests; in read mode any still-pending lazy reads are fetched first.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	var opErr error
	switch f.mode {
	case WriteMode:
		opErr = f.flushLevel1()
		if err := f.closeEpochs(); err != nil && opErr == nil {
			opErr = err
		}
	case ReadMode:
		opErr = f.Fetch()
	}
	if err := f.c.Barrier(); err != nil {
		return err
	}
	if f.mode == WriteMode && opErr == nil {
		opErr = f.drain()
	}
	// Final synchronization so every rank leaves Close at the same
	// virtual time, as MPI_File_close would.
	if err := f.c.Barrier(); err != nil {
		return err
	}
	f.closed = true
	f.c.Free(f.win.Local())
	f.c.Free(f.l1Buf)
	return opErr
}

// drain writes this rank's dirty level-2 runs to the file system.
func (f *File) drain() error {
	pf := f.c.FS().Open(f.name)
	p := int64(f.c.Size())
	local := f.win.Local()
	for slot := int64(0); slot < int64(f.numSeg); slot++ {
		seg := slot*p + int64(f.c.Rank())
		runs := f.meta.dirtyRuns(seg)
		if len(runs) == 0 {
			continue
		}
		base := seg * f.segSize
		for _, r := range runs {
			data := local[slot*f.segSize+r.Off : slot*f.segSize+r.Off+r.Len]
			start := f.c.Now()
			end, retries, err := pf.WriteAtRetry(f.c.Node(), base+r.Off, data, start, f.retry)
			f.c.AdvanceTo(end)
			if err := f.fsRetried("drain", seg, start, retries, err); err != nil {
				return err
			}
			f.stats.FSWrites++
			f.emit(trace.KindDrain, f.c.Now(), r.Len, fmt.Sprintf("seg=%d off=%d", seg, base+r.Off))
		}
	}
	return nil
}
