// Package tcio implements Transparent Collective I/O — the contribution of
// the paper. TCIO lets a parallel application issue plain POSIX-like I/O
// calls, one per piece of data, and transparently converts the resulting
// small, interleaved, non-contiguous accesses into large aggregated file
// system requests. No file views, no derived datatypes, no application-level
// combine buffers.
//
// The design follows §IV of the paper:
//
//   - A level-1 buffer per process coalesces small sequential accesses that
//     fall inside one level-2 segment. It is exactly one segment long and is
//     aligned with one segment at a time.
//
//   - Level-2 buffers are exposed through an MPI one-sided window. Each
//     process owns NumSegments segments of SegmentSize bytes, and global
//     file offsets map onto them round-robin via the paper's equations:
//
//     rank(offset)    = (offset / SegmentSize) % P     (1)
//     segment(offset) = (offset / SegmentSize) / P     (2)
//     disp(offset)    =  offset % SegmentSize          (3)
//
//     (extent.Layout is the reusable form of this mapping.)
//
//   - All level-1 ↔ level-2 movement uses passive-target one-sided
//     communication (lock / put / get / unlock) carrying the coalesced
//     block list as a single indexed-datatype transfer. No matching pairs
//     are needed, so every rank may issue a different number of I/O calls.
//
//   - Reads are lazy: Read/ReadAt only record destinations; data moves on
//     Fetch, on realignment, or at Close.
//
// SegmentSize defaults to the file system's stripe size — its lock
// granularity — as §IV.A prescribes.
//
// The implementation is split by layer: level1.go is the per-process
// coalescing buffer, level2.go the one-sided window traffic, read.go the
// lazy read queue and Fetch, drain.go the file system transfers (through
// package storage), and stats.go the counters and trace hooks.
package tcio

import (
	"errors"
	"fmt"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/trace"
)

// Mode selects the direction of a TCIO file session.
type Mode int

// Open modes.
const (
	// WriteMode buffers writes in level-1/level-2 and drains them to the
	// file system at Close.
	WriteMode Mode = iota
	// ReadMode serves lazy reads from level-2 segments populated on demand
	// from the file system.
	ReadMode
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case WriteMode:
		return "write"
	case ReadMode:
		return "read"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the library. The zero value is usable: SegmentSize defaults
// to the file system stripe size and NumSegments to 64.
type Config struct {
	// SegmentSize is the level-2 segment length in bytes. The paper sets
	// it to the file system's lock granularity (stripe size); 0 means
	// "use the stripe size".
	SegmentSize int64
	// NumSegments is the number of level-2 segments each process exposes.
	// Together the processes must cover the file: P * NumSegments *
	// SegmentSize >= file size. 0 means 64.
	NumSegments int

	// DrainWorkers bounds the worker goroutines a rank fans its file
	// system batches (drain, populate, preload) out over. Requests are
	// grouped by the OST serving them and the groups are dealt to workers,
	// so transfers overlap only across distinct storage targets and the
	// issued request set stays deterministic. 0 or 1 means serial — the
	// classic one-request-at-a-time loop.
	DrainWorkers int

	// DisableLevel1 is an ablation switch: every piece is shipped to the
	// level-2 buffer immediately, with its own one-sided operation,
	// instead of being coalesced in the level-1 buffer first.
	DisableLevel1 bool
	// DemandPopulate is an ablation switch for reads. By default, opening
	// in read mode makes every rank load its own level-2 segments from the
	// file system (the paper's aggregators acting "as I/O delegators to
	// move the data from files to their temporary buffers"). With
	// DemandPopulate, segments are instead loaded lazily by the first
	// rank that fetches from them, under the exclusive window lock.
	DemandPopulate bool
	// FetchBatch is the number of distinct segments lazy reads may span
	// before the library fetches them implicitly (the paper's "file domain
	// of cached reads exceeds the level-1 buffer" rule, generalized to a
	// batch so that the one-sided gets of many segments pipeline through
	// one lock epoch per owner). 0 means 64.
	FetchBatch int
	// PipelineDepth bounds the number of put epochs a writer keeps open
	// concurrently. Each level-1 flush leaves its epoch open so transfers
	// overlap; beyond the depth the oldest epoch is closed (waiting for
	// its transfer). This models a bounded NIC queue: TCIO paces its
	// traffic instead of bursting like the two-phase exchange. 0 means 8.
	PipelineDepth int
	// WriteBehindThreshold arms the eager background drain: once the
	// not-yet-drained runs of a level-2 segment cover at least this
	// fraction of it, the owning rank drains the segment on a background
	// lane instead of waiting for Close, so the final drain only handles
	// the residue. 1 drains only fully covered segments (which keeps the
	// file system request identity bit-identical to the synchronous
	// drain); 0 disables write-behind (the default).
	WriteBehindThreshold float64
	// WriteBehindQueue bounds the eager drains in flight on the background
	// queue; enqueueing past the bound waits for the earliest in-flight
	// batch (backpressure). 0 means 32, roughly a block layer's request
	// queue; small values throttle the application whenever the OSTs run
	// behind.
	WriteBehindQueue int
	// Journal arms the crash-consistency tier in write mode: every Flush
	// and Close appends the epoch's not-yet-journaled dirty runs to a
	// per-rank journal file (name + ".wal.<rank>") as length-prefixed,
	// checksummed records sealed by a commit marker, through the same
	// charged storage path as data writes. Close truncates the journal
	// only after the final drain settled, so Recover can replay committed
	// epochs to a byte-exact file state after a crash at any virtual
	// time. Off (the default) keeps the write path bit-identical to the
	// unjournaled library, including its fault rolls. See DESIGN.md §2f.
	Journal bool
	// SegmentMemoryBudget bounds the level-2 segments a rank keeps
	// resident in write mode, in bytes (rounded down to whole segments,
	// minimum one). When the segments holding buffered data exceed the
	// budget, the journal tier spills them: clean segments are dropped,
	// dirty segments — whose bytes every epoch already journaled — are
	// marked non-resident and re-faulted from the journal when the drain
	// needs them, so datasets larger than memory complete where a purely
	// in-memory collective buffer would exhaust its share. A non-zero
	// budget implies Journal (the spill tier is meaningless without the
	// epoch log) and shrinks PrefetchSegments/MaxCachedSegments to fit.
	// 0 disables the budget (the default).
	SegmentMemoryBudget int64
	// PrefetchSegments makes the demand-populate read path look ahead:
	// when Fetch walks forward-consecutive segments, up to this many
	// upcoming segment reads are issued on a background lane so the file
	// system time hides behind the window traffic. Only segments the batch
	// already demands are read — never speculative ones — so when ranks
	// read disjoint regions the per-rank request stream is unchanged.
	// When ranks contend for the same segments a prefetched read can be
	// wasted (another rank populates the segment first), which the demand
	// path would not have issued — see Stats.PrefetchWasted and DESIGN.md
	// §2b. 0 disables prefetch (the default).
	PrefetchSegments int
	// MaxCachedSegments caps the prefetch cache (LRU). Eviction refuses
	// segments with undrained dirty runs. 0 means PrefetchSegments; values
	// below PrefetchSegments are raised to it — a smaller cache would
	// evict the very segments the lookahead just staged, turning every
	// prefetch into a wasted duplicate read.
	MaxCachedSegments int
	// SieveBuffer arms data sieving on the demand-populate read path: with
	// DemandPopulate set, Fetch stages only the runs the queued reads
	// actually need instead of whole level-2 segments, grouping nearby runs
	// under covering file system reads of at most SieveBuffer bytes each
	// (ROMIO's data sieving; the covers are what the storage layer issues,
	// so retry/trace/virtual-time handling and chaos fault rolls key on
	// them). A buffer too small to join two runs degenerates to list I/O:
	// one read per needed run. 0 disables sieving (the default): demand
	// population reads whole segments, bit-identical to the path before the
	// knob existed. Ignored without DemandPopulate (preload already reads
	// every byte once). See DESIGN.md §2d.
	SieveBuffer int64
	// CollectiveRead turns explicit Fetch calls into an OCIO-style
	// two-phase collective read: all ranks must call Fetch (and Close)
	// together; they exchange read intents, each rank stages the union of
	// all intents falling in its own segments — through the sieve when
	// SieveBuffer > 0, as whole-segment populations otherwise — with one
	// local window write instead of remote exclusive-lock traffic, and a
	// barrier publishes the windows before the usual overlapped gets
	// redistribute the runs. Implicit fetches (a ReadAt overflowing
	// FetchBatch) stay independent — a rank-local event cannot be
	// collective. Off (the default) keeps today's independent fetch path
	// bit-identical, including its fault rolls — the same discipline as
	// NodeAggregation. See DESIGN.md §2d.
	CollectiveRead bool
	// NodeAggregation inserts an intra-node aggregation tier between the
	// level-1 flush and the level-2 one-sided ship: co-located ranks hand
	// their dirty runs to a deterministic per-segment node leader over the
	// intra-node path (MemBandwidth, not the NIC), and at each collective
	// (Flush/Close) the leader merges a segment's deposits into one
	// combined indexed put — one inter-node message per (node, segment)
	// instead of one per (rank, segment). Off (the default) keeps today's
	// per-rank ship path bit-identical, including its fault rolls; on a
	// machine with one core per node the tier disables itself and the path
	// is likewise unchanged. See DESIGN.md §2c.
	NodeAggregation bool
	// EmulateTwoSided is an ablation switch: level-1 <-> level-2 transfers
	// are charged as two-sided (matched send/receive) messages instead of
	// one-sided RDMA, isolating the paper's claim that one-sided
	// communication is key to TCIO's scalability.
	EmulateTwoSided bool
	// Trace, when non-nil, records the library's operations (writes,
	// flushes, fetches, populations, drains) with virtual timestamps.
	Trace *trace.Recorder
	// Retry bounds how the library absorbs transient injected faults on
	// its file system and one-sided paths (populate, preload, drain,
	// ship). nil means faults.DefaultRetryPolicy(); a zero-budget policy
	// (&faults.RetryPolicy{}) turns the first transient fault permanent.
	Retry *faults.RetryPolicy
}

// Errors returned by the library.
var (
	// ErrMode is returned for writes on a read handle and vice versa.
	ErrMode = errors.New("tcio: operation does not match open mode")
	// ErrCapacity is returned when an access maps past the level-2
	// buffers (offset >= P * NumSegments * SegmentSize).
	ErrCapacity = errors.New("tcio: access beyond level-2 buffer capacity")
	// ErrClosed is returned for operations on a closed handle.
	ErrClosed = errors.New("tcio: file closed")
	// ErrUnfetched is returned by Close in read mode if pending reads
	// could not be completed.
	ErrUnfetched = errors.New("tcio: pending reads not fetched")
)

// File is one rank's TCIO handle on a shared file: a file pointer and a
// closed flag over the per-file session (see session.go). A rank may hold
// any number of concurrently open Files; each one's session — window
// memory, shared level-2 metadata, background lanes, stats — is fully
// independent of the others'.
type File struct {
	session

	pos    int64
	closed bool
}

// Open starts a TCIO session on the named shared file. It is collective:
// every rank must call it with the same name, mode, and configuration —
// and when several files are open concurrently, every rank must issue
// their collective calls (Open, Flush, Fetch, Close) in the same order.
// Window memory (NumSegments * SegmentSize) plus one level-1 buffer is
// charged against the rank's simulated memory share.
func Open(c *mpi.Comm, name string, mode Mode, cfg Config) (*File, error) {
	if mode != WriteMode && mode != ReadMode {
		return nil, fmt.Errorf("tcio: invalid mode %d", int(mode))
	}
	cfg, err := cfg.Normalize(c.FS().Config().StripeSize)
	if err != nil {
		return nil, err
	}
	s, err := newSession(c, name, mode, cfg)
	if err != nil {
		return nil, err
	}
	f := &File{session: s}
	if mode == ReadMode && !cfg.DemandPopulate {
		if err := f.preloadAll(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Capacity reports the total file range the level-2 buffers can hold.
func (f *File) Capacity() int64 { return f.layout.Capacity() }

// Seek positions the file pointer. whence follows io.Seeker: 0 = absolute,
// 1 = relative to the current position (2, end-relative, is not supported:
// the library does not track a global end-of-file).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var next int64
	switch whence {
	case 0:
		next = offset
	case 1:
		next = f.pos + offset
	default:
		return f.pos, fmt.Errorf("tcio: Seek whence %d not supported", whence)
	}
	if next < 0 {
		return f.pos, fmt.Errorf("tcio: Seek to negative offset %d", next)
	}
	f.pos = next
	return f.pos, nil
}

// Flush drains the level-1 buffer to the level-2 buffers on every rank.
// It is collective (the paper's tcio_flush "invokes MPI_Barrier").
func (f *File) Flush() error {
	if f.closed {
		return ErrClosed
	}
	if f.mode == WriteMode {
		if err := f.flushLevel1(); err != nil {
			return err
		}
		if f.aggEnabled {
			// Every rank's deposits must be staged before any leader
			// combines; the leaders then issue the node's merged puts.
			if err := f.c.Barrier(); err != nil {
				return err
			}
			if err := f.leaderSweep(); err != nil {
				return err
			}
		}
		if err := f.closeEpochs(); err != nil {
			return err
		}
	}
	if err := f.c.Barrier(); err != nil {
		return err
	}
	if f.mode == WriteMode && f.jw != nil {
		// The barrier published every rank's puts, so the owner's window
		// holds the epoch's final bytes: journal them, then synchronize
		// again so no rank starts the next epoch's shipments while a peer
		// is still appending this one's records.
		if err := f.journalEpoch(); err != nil {
			return err
		}
		if err := f.c.Barrier(); err != nil {
			return err
		}
	}
	if f.mode == WriteMode && f.aggEnabled {
		// Runs become dirty only at the combine, so the write-behind scan
		// runs here instead of per shipment; the barrier above put every
		// combined arrival in this rank's past.
		return f.maybeWriteBehind()
	}
	return nil
}

// Close ends the session (tcio_close). It is collective: in write mode the
// level-1 buffers are drained, all ranks synchronize, and each rank writes
// its own populated level-2 segments to the file system as large aligned
// requests; in read mode any still-pending lazy reads are fetched first.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	var opErr error
	switch f.mode {
	case WriteMode:
		opErr = f.flushLevel1()
		if f.aggEnabled {
			// Collective even under a local error: peers are already in the
			// barrier, and an aborted world surfaces through it.
			if err := f.c.Barrier(); err != nil {
				return err
			}
			if err := f.leaderSweep(); err != nil && opErr == nil {
				opErr = err
			}
		}
		if err := f.closeEpochs(); err != nil && opErr == nil {
			opErr = err
		}
	case ReadMode:
		opErr = f.Fetch()
	}
	if err := f.c.Barrier(); err != nil {
		return err
	}
	if f.mode == WriteMode && f.jw != nil {
		// Journal the final epoch before any rank drains: after this
		// barrier every committed byte is durable in some journal, so a
		// crash anywhere inside the drain replays to the full final image.
		if err := f.journalEpoch(); err != nil && opErr == nil {
			opErr = err
		}
		if err := f.c.Barrier(); err != nil {
			return err
		}
	}
	if f.mode == WriteMode && opErr == nil {
		opErr = f.drain()
	}
	// Final synchronization so every rank leaves Close at the same
	// virtual time, as MPI_File_close would.
	if err := f.c.Barrier(); err != nil {
		return err
	}
	if f.mode == WriteMode && opErr == nil {
		// The drain settled everywhere (the barrier above), so the journal
		// has done its job; truncating it makes recovery a no-op. Under a
		// local error the journal is deliberately kept — it still holds
		// the committed epochs a recovery would need.
		opErr = f.truncateJournal()
	}
	f.closed = true
	f.release()
	return opErr
}
