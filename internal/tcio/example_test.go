package tcio_test

import (
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/tcio"
)

// Example shows the library's whole lifecycle: four ranks write an
// interleaved pattern with plain POSIX-like calls, close (which drains the
// level-2 buffers to the file system), then read it back lazily.
func Example() {
	_, err := mpi.Run(mpi.Config{Procs: 4, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		cfg := tcio.Config{SegmentSize: 64, NumSegments: 4}

		// Write: block i of rank r lands at file block i*P + r.
		f, err := tcio.Open(c, "example.dat", tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			off := int64((i*c.Size() + c.Rank()) * 16)
			data := make([]byte, 16)
			for b := range data {
				data[b] = byte(c.Rank())
			}
			if err := f.WriteAt(off, data); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}

		// Read back lazily; the destination is valid after Fetch.
		r, err := tcio.Open(c, "example.dat", tcio.ReadMode, cfg)
		if err != nil {
			return err
		}
		dst := make([]byte, 16)
		if err := r.ReadAt(int64(c.Rank()*16), dst); err != nil {
			return err
		}
		if err := r.Fetch(); err != nil {
			return err
		}
		if dst[0] != byte(c.Rank()) {
			return fmt.Errorf("rank %d read %d", c.Rank(), dst[0])
		}
		if err := r.Close(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 wrote %d bytes in %d calls, read its first block back\n",
				f.Stats().BytesWritten, f.Stats().Writes)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: rank 0 wrote 128 bytes in 8 calls, read its first block back
}
