package tcio

import (
	"strings"
	"testing"

	"github.com/tcio/tcio/internal/faults"
)

// TestConfigNormalize walks every Config field through its zero-default
// and its invalid-value rejection, row by row.
func TestConfigNormalize(t *testing.T) {
	const stripe = int64(1 << 20)
	cases := []struct {
		name string
		in   Config
		want func(Config) bool // post-normalization invariant
		err  string            // "" = must succeed
	}{
		{
			name: "zero value defaults every field",
			in:   Config{},
			want: func(c Config) bool {
				return c.SegmentSize == stripe && c.NumSegments == 64 &&
					c.FetchBatch == 64 && c.PipelineDepth == 8 &&
					c.WriteBehindQueue == 32 && c.DrainWorkers == 0 &&
					c.PrefetchSegments == 0 && c.MaxCachedSegments == 0 &&
					c.SieveBuffer == 0 && c.WriteBehindThreshold == 0
			},
		},
		{
			name: "explicit values survive",
			in: Config{SegmentSize: 128, NumSegments: 3, FetchBatch: 2,
				PipelineDepth: 1, WriteBehindQueue: 5, DrainWorkers: 4,
				PrefetchSegments: 2, MaxCachedSegments: 7, SieveBuffer: 64},
			want: func(c Config) bool {
				return c.SegmentSize == 128 && c.NumSegments == 3 &&
					c.FetchBatch == 2 && c.PipelineDepth == 1 &&
					c.WriteBehindQueue == 5 && c.DrainWorkers == 4 &&
					c.PrefetchSegments == 2 && c.MaxCachedSegments == 7 &&
					c.SieveBuffer == 64
			},
		},
		{
			name: "max cached segments defaults to prefetch lookahead",
			in:   Config{PrefetchSegments: 3},
			want: func(c Config) bool { return c.MaxCachedSegments == 3 },
		},
		{
			name: "cache smaller than lookahead is raised to it",
			in:   Config{PrefetchSegments: 4, MaxCachedSegments: 2},
			want: func(c Config) bool { return c.MaxCachedSegments == 4 },
		},
		{
			name: "write-behind threshold bounds pass",
			in:   Config{WriteBehindThreshold: 1},
			want: func(c Config) bool { return c.WriteBehindThreshold == 1 },
		},
		{name: "negative segment size", in: Config{SegmentSize: -1}, err: "segment size"},
		{name: "negative segment count", in: Config{NumSegments: -2}, err: "segment count"},
		{name: "negative drain workers", in: Config{DrainWorkers: -1}, err: "drain workers"},
		{name: "negative fetch batch", in: Config{FetchBatch: -1}, err: "fetch batch"},
		{name: "negative pipeline depth", in: Config{PipelineDepth: -3}, err: "pipeline depth"},
		{name: "negative write-behind queue", in: Config{WriteBehindQueue: -1}, err: "write-behind queue"},
		{name: "negative prefetch segments", in: Config{PrefetchSegments: -1}, err: "prefetch segments"},
		{name: "negative max cached segments", in: Config{MaxCachedSegments: -4}, err: "max cached segments"},
		{name: "negative sieve buffer", in: Config{SieveBuffer: -8}, err: "sieve buffer"},
		{name: "threshold below zero", in: Config{WriteBehindThreshold: -0.1}, err: "write-behind threshold"},
		{name: "threshold above one", in: Config{WriteBehindThreshold: 1.5}, err: "write-behind threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.in.Normalize(stripe)
			if tc.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("Normalize(%+v) err = %v, want mention of %q", tc.in, err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Normalize(%+v): %v", tc.in, err)
			}
			if !tc.want(got) {
				t.Fatalf("Normalize(%+v) = %+v violates invariant", tc.in, got)
			}
		})
	}
}

// TestConfigNormalizeIdempotent pins that normalizing twice is a no-op —
// the property the delegation client relies on when it re-normalizes a
// config the caller may already have normalized.
func TestConfigNormalizeIdempotent(t *testing.T) {
	once, err := Config{PrefetchSegments: 2}.Normalize(512)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.Normalize(512)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Fatalf("second Normalize changed the config:\nonce  %+v\ntwice %+v", once, twice)
	}
}

// TestConfigRetryPolicy covers the Retry knob's nil-default resolution.
func TestConfigRetryPolicy(t *testing.T) {
	var cfg Config
	if got, want := cfg.retryPolicy(), faults.DefaultRetryPolicy(); got != want {
		t.Fatalf("nil Retry resolved to %+v, want default %+v", got, want)
	}
	zero := &faults.RetryPolicy{}
	cfg.Retry = zero
	if got := cfg.retryPolicy(); got != *zero {
		t.Fatalf("explicit zero-budget Retry resolved to %+v", got)
	}
}
