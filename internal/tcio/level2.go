package tcio

// The level-2 layer (paper §IV.A): segments exposed through an MPI
// one-sided window, addressed by the round-robin mapping of equations
// (1)-(3), and fed by passive-target puts whose epochs pipeline up to
// Config.PipelineDepth.

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// l2Shards is the shard count of the shared segment metadata — a power of
// two so the shard of a segment is a mask, sized to keep collisions rare at
// realistic worker counts without bloating small files.
const l2Shards = 16

// l2meta is the bookkeeping shared by all ranks of one TCIO file: which
// parts of each global segment hold buffered data (dirty, writes), which of
// those runs have not reached the file system yet (pending — the write-
// behind lane consumes them), and which segments have been populated from
// the file system (reads).
//
// Every operation touches exactly one segment, so the maps are sharded by
// segment index: with thousands of rank goroutines shipping concurrently, a
// single mutex in front of five maps was a global serialization point. Each
// shard carries its own lock and maps; segments hash to shards by low bits,
// which spreads the round-robin segment ownership evenly.
type l2meta struct {
	shards [l2Shards]l2shard
}

// l2shard holds the metadata of the segments hashing to one shard; see
// l2meta for the field semantics.
type l2shard struct {
	mu        sync.Mutex
	dirty     map[int64][]extent.Extent // global segment -> runs (segment-relative)
	pending   map[int64][]extent.Extent // dirty runs not yet drained
	populated map[int64]bool
	// popRuns tracks partial population (the sieved read path): the
	// segment-relative runs of a not-fully-populated segment whose window
	// bytes are already valid. Fully populated segments have no entry.
	popRuns map[int64][]extent.Extent
	// arrival is, per segment, the latest virtual-time put arrival among
	// its pending runs. The origin records it at issue time (it knows the
	// handle's arrival); whoever drains the runs must not depart before it
	// — the data is not in the owner's window, in virtual time, until then.
	arrival map[int64]simtime.Time
	// unlogged tracks, per segment, the dirty runs the owner's journal has
	// not recorded yet; journalEpoch consumes them at each Flush/Close.
	// nil when the journal tier is disarmed, so the unjournaled write path
	// does zero extra bookkeeping.
	unlogged map[int64][]extent.Extent
}

// newL2Meta builds empty shared metadata for one open file. journal arms
// the unlogged-run bookkeeping the epoch log consumes.
func newL2Meta(journal bool) *l2meta {
	m := &l2meta{}
	for i := range m.shards {
		s := &m.shards[i]
		s.dirty = make(map[int64][]extent.Extent)
		s.pending = make(map[int64][]extent.Extent)
		s.populated = make(map[int64]bool)
		s.popRuns = make(map[int64][]extent.Extent)
		s.arrival = make(map[int64]simtime.Time)
		if journal {
			s.unlogged = make(map[int64][]extent.Extent)
		}
	}
	return m
}

// shard returns the shard owning a global segment.
func (m *l2meta) shard(seg int64) *l2shard {
	return &m.shards[seg&(l2Shards-1)]
}

// addDirty records freshly shipped runs and the virtual time their put
// retires at the target, so a drain consuming them can respect causality.
func (m *l2meta) addDirty(seg int64, runs []extent.Extent, at simtime.Time) {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty[seg] = extent.Coalesce(append(s.dirty[seg], runs...))
	if mutate.Enabled(mutate.TCIOLostPendingRun) {
		s.pending[seg] = extent.Coalesce(append([]extent.Extent(nil), runs...))
	} else {
		s.pending[seg] = extent.Coalesce(append(s.pending[seg], runs...))
	}
	if at > s.arrival[seg] {
		s.arrival[seg] = at
	}
	if s.unlogged != nil {
		s.unlogged[seg] = extent.Coalesce(append(s.unlogged[seg], runs...))
	}
}

// takeUnlogged removes and returns the segment's not-yet-journaled runs
// (segment-relative). The owner consumes them at each journalEpoch.
func (m *l2meta) takeUnlogged(seg int64) []extent.Extent {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	runs := s.unlogged[seg]
	delete(s.unlogged, seg)
	return runs
}

func (m *l2meta) dirtyRuns(seg int64) []extent.Extent {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty[seg]
}

// hasDirty reports whether the segment still has undrained runs — the
// prefetch cache refuses to evict such segments.
func (m *l2meta) hasDirty(seg int64) bool {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending[seg]) > 0
}

// takePending removes and returns the segment's undrained runs and their
// latest put arrival. The final drain uses it directly; runs written after
// an eager drain re-enter pending, so rewrites are drained again and the
// last bytes always win.
func (m *l2meta) takePending(seg int64) ([]extent.Extent, simtime.Time) {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	runs := s.pending[seg]
	at := s.arrival[seg]
	delete(s.pending, seg)
	delete(s.arrival, seg)
	return runs, at
}

// takeCovered is takePending gated on coverage: it removes and returns the
// undrained runs only when they total at least need bytes — the write-
// behind trigger, evaluated and consumed under one lock so two checks can
// never drain the same runs twice.
func (m *l2meta) takeCovered(seg int64, need int64) ([]extent.Extent, simtime.Time) {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	runs := s.pending[seg]
	if extent.Total(runs) < need {
		return nil, 0
	}
	at := s.arrival[seg]
	delete(s.pending, seg)
	delete(s.arrival, seg)
	return runs, at
}

func (m *l2meta) isPopulated(seg int64) bool {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.populated[seg]
}

func (m *l2meta) setPopulated(seg int64) {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.populated[seg] = true
	delete(s.popRuns, seg)
}

// missingRuns returns the segment-relative parts of needed whose window
// bytes are not yet valid. Full population, earlier sieved runs, and dirty
// runs (freshly written — newer than the file, so a sieve must never
// overwrite them with file bytes) all count as present.
func (m *l2meta) missingRuns(seg int64, needed []extent.Extent) []extent.Extent {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.populated[seg] {
		return nil
	}
	have := append(append([]extent.Extent(nil), s.popRuns[seg]...), s.dirty[seg]...)
	return extent.Subtract(needed, have)
}

// addPopRuns records sieved (partial) population; once the recorded runs
// cover the whole segment window it is promoted to fully populated, so
// later fetches take the fast path.
func (m *l2meta) addPopRuns(seg int64, runs []extent.Extent, segSize int64) {
	s := m.shard(seg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.populated[seg] {
		return
	}
	s.popRuns[seg] = extent.Coalesce(append(s.popRuns[seg], runs...))
	if extent.Covers(s.popRuns[seg], 0, segSize) {
		s.populated[seg] = true
		delete(s.popRuns, seg)
	}
}

// locate applies the paper's equations (1)-(3) to a file offset.
func (f *File) locate(off int64) (rank int, slot int64, disp int64) {
	return f.layout.Locate(off)
}

// globalSegment returns the global segment index of a file offset.
func (f *File) globalSegment(off int64) int64 { return f.layout.Segment(off) }

// segmentOwner returns the owning rank and local slot of a global segment.
func (f *File) segmentOwner(seg int64) (rank int, slot int64) {
	return f.layout.Owner(seg)
}

// ship performs the one-sided transfer of segment-relative runs into the
// owner's window and records them as dirty.
//
// A shared lock suffices: different ranks put into disjoint byte ranges of
// the segment (their own blocks), so concurrent epochs are safe. The epoch
// is left open (recorded in openOwners) so that successive flushes to the
// same owner pipeline; Flush and Close end all open epochs with one wave of
// unlocks whose completion waits overlap.
func (f *File) ship(seg int64, runs []extent.Extent, payload []byte) error {
	if f.aggEnabled {
		// Aggregated path: hand the runs to this segment's node leader over
		// the intra-node fabric; the leader puts the node's merged runs at
		// the next collective (nodeagg.go).
		return f.depositForAggregation(seg, runs, payload)
	}
	owner, slot := f.segmentOwner(seg)
	if slot >= int64(f.numSeg) {
		return fmt.Errorf("%w: segment %d needs slot %d of %d", ErrCapacity, seg, slot, f.numSeg)
	}
	winRuns := f.winRunsScratch[:0]
	for _, r := range runs {
		winRuns = append(winRuns, extent.Extent{Off: slot*f.segSize + r.Off, Len: r.Len})
	}
	f.winRunsScratch = winRuns[:0]
	t0 := f.c.Now()
	if err := f.openEpochFor(owner); err != nil {
		return err
	}
	f.reserveInflight()
	t1 := f.c.Now()
	h, err := f.putSegmentsRetry(owner, seg, winRuns, payload)
	if err != nil {
		return err
	}
	f.inflight = append(f.inflight, h)
	t2 := f.c.Now()
	f.stats.LockWait += t1.Sub(t0)
	f.stats.PutIssue += t2.Sub(t1)
	f.meta.addDirty(seg, runs, h.Arrival())
	f.stats.Level1Flush++
	f.emit(trace.KindFlush, t0, int64(len(payload)), fmt.Sprintf("seg=%d owner=%d runs=%d", seg, owner, len(runs)))
	return f.maybeWriteBehind()
}

// openEpochFor ensures a shared put epoch is open on owner, touching the
// LRU order on reuse and evicting the coldest epoch when the pipeline
// window is full.
func (f *File) openEpochFor(owner int) error {
	if f.win.Held(owner) {
		// Reuse marks the epoch hot: move it to the back of the LRU order
		// so eviction hits the coldest target, not the hottest.
		f.touchEpoch(owner)
		return nil
	}
	// Bound the open epochs: evict the least-recently-used one once the
	// window is full.
	for len(f.openOwners) >= f.cfg.PipelineDepth {
		coldest := f.openOwners[0]
		f.openOwners = f.openOwners[1:]
		f.stats.EpochEvictions++
		if err := f.win.Unlock(coldest); err != nil {
			return err
		}
	}
	if err := f.win.Lock(owner, false); err != nil {
		return err
	}
	f.openOwners = append(f.openOwners, owner)
	return nil
}

// reserveInflight bounds the outstanding transfers, independently of the
// epochs: the oldest Rput handle retires when the pipeline window is full.
func (f *File) reserveInflight() {
	for len(f.inflight) >= f.cfg.PipelineDepth {
		f.inflight[0].Complete()
		f.inflight = f.inflight[1:]
	}
}

// touchEpoch moves owner to the most-recently-used end of openOwners.
func (f *File) touchEpoch(owner int) {
	for i, o := range f.openOwners {
		if o == owner {
			copy(f.openOwners[i:], f.openOwners[i+1:])
			f.openOwners[len(f.openOwners)-1] = owner
			return
		}
	}
}

// putSegmentsRetry issues one one-sided put, absorbing injected NIC
// work-request drops (faults.SiteWinPut) under the shared faults.Retry
// driver. The fault roll is keyed by this rank's shipment number so chaos
// runs replay exactly; each backoff burns virtual time on the origin, as a
// real sender re-posting a dropped work request would.
func (f *File) putSegmentsRetry(owner int, seg int64, runs []extent.Extent, payload []byte) (*mpi.PutHandle, error) {
	inj := f.c.Faults()
	ship := f.shipCount
	f.shipCount++
	start := f.c.Now()
	var handle *mpi.PutHandle
	end, retries, err := faults.Retry(start, f.retry,
		func(at simtime.Time, attempt int64) (simtime.Time, error) {
			f.c.AdvanceTo(at) // charge the preceding backoff, if any
			if inj.Should(faults.SiteWinPut, int64(f.c.Rank()), ship, attempt) {
				return f.c.Now(), inj.Fault(faults.SiteWinPut, "rank=%d seg=%d owner=%d",
					f.c.Rank(), seg, owner)
			}
			var perr error
			handle, perr = f.win.PutSegmentsAsync(owner, runs, payload)
			return f.c.Now(), perr
		})
	f.c.AdvanceTo(end)
	if retries > 0 {
		f.stats.Retries += retries
		f.emit(trace.KindRetry, start, 0,
			fmt.Sprintf("put seg=%d owner=%d retries=%d", seg, owner, retries))
	}
	if err != nil {
		return nil, fmt.Errorf("tcio: ship segment %d to rank %d: %w", seg, owner, err)
	}
	return handle, nil
}

// closeEpochs unlocks every open put epoch; the unlock completions overlap.
// All unlock errors are reported, joined — under chaos, a failure on one
// target must not mask failures on the others.
func (f *File) closeEpochs() error {
	t0 := f.c.Now()
	var errs []error
	for _, owner := range f.openOwners {
		if err := f.win.Unlock(owner); err != nil {
			errs = append(errs, err)
		}
	}
	f.openOwners = f.openOwners[:0]
	f.inflight = f.inflight[:0] // unlocks completed every outstanding put
	f.stats.UnlockWait += f.c.Now().Sub(t0)
	return errors.Join(errs...)
}
