package tcio

// The level-1 buffer (paper §IV.A): one segment-sized, segment-aligned
// per-process buffer that coalesces small sequential writes before they
// travel to the level-2 window as a single indexed-datatype put.

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/trace"
)

// Write appends data at the current file pointer (tcio_write).
func (f *File) Write(data []byte) error {
	if err := f.WriteAt(f.pos, data); err != nil {
		return err
	}
	f.pos += int64(len(data))
	return nil
}

// WriteTyped writes count elements of type t, gathered from mem according
// to the type's layout — the tcio_write(fh, data, count, MPI_Datatype)
// entry point of the paper's Program 1.
func (f *File) WriteTyped(mem []byte, count int, t datatype.Type) error {
	packed, err := datatype.Pack(mem, t, count)
	if err != nil {
		return err
	}
	return f.Write(packed)
}

// WriteAt writes data at the given file offset (tcio_write_at). The call
// is fully independent: no other rank needs to participate.
func (f *File) WriteAt(off int64, data []byte) error {
	switch {
	case f.closed:
		return ErrClosed
	case f.mode != WriteMode:
		return fmt.Errorf("%w: write on %s handle", ErrMode, f.mode)
	case off < 0:
		return fmt.Errorf("tcio: negative offset %d", off)
	}
	f.stats.Writes++
	f.stats.BytesWritten += int64(len(data))
	f.emit(trace.KindWrite, f.c.Now(), int64(len(data)), fmt.Sprintf("off=%d", off))
	// Split at segment boundaries: a block larger than one segment "has to
	// be subdivided and placed in different segments" (§IV.A).
	for len(data) > 0 {
		seg := f.globalSegment(off)
		segOff := off % f.segSize
		n := f.segSize - segOff
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		if !f.layout.InRange(seg) {
			_, slot := f.segmentOwner(seg)
			return fmt.Errorf("%w: offset %d needs slot %d of %d (raise NumSegments)",
				ErrCapacity, off, slot, f.numSeg)
		}
		f.c.Compute(f.pieceCPU)
		if err := f.stageWrite(seg, segOff, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	return nil
}

// stageWrite places one within-segment piece into the level-1 buffer,
// flushing and realigning first when the piece belongs to a different
// segment than the buffer is aligned with.
func (f *File) stageWrite(seg, segOff int64, piece []byte) error {
	if f.cfg.DisableLevel1 {
		// Ablation: ship the piece immediately with its own one-sided op.
		return f.ship(seg, []extent.Extent{{Off: segOff, Len: int64(len(piece))}}, piece)
	}
	if f.l1Seg != seg {
		if err := f.flushLevel1(); err != nil {
			return err
		}
		f.l1Seg = seg
	}
	copy(f.l1Buf[segOff:segOff+int64(len(piece))], piece)
	f.l1Blocks = append(f.l1Blocks, extent.Extent{Off: segOff, Len: int64(len(piece))})
	return nil
}

// flushLevel1 ships the level-1 buffer's cached blocks to the owning
// level-2 segment as one indexed-datatype one-sided put.
func (f *File) flushLevel1() error {
	if f.l1Seg < 0 || len(f.l1Blocks) == 0 {
		f.l1Seg = -1
		f.l1Blocks = f.l1Blocks[:0]
		return nil
	}
	blocks := extent.Coalesce(f.l1Blocks)
	if f.payloadScratch == nil {
		f.payloadScratch = make([]byte, 0, f.segSize)
	}
	payload := f.payloadScratch[:0]
	for _, b := range blocks {
		payload = append(payload, f.l1Buf[b.Off:b.Off+b.Len]...)
	}
	f.payloadScratch = payload[:0]
	err := f.ship(f.l1Seg, blocks, payload)
	f.l1Seg = -1
	f.l1Blocks = f.l1Blocks[:0]
	return err
}
