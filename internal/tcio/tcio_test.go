package tcio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
)

func run(t *testing.T, procs int, fn func(*mpi.Comm) error) mpi.Report {
	t.Helper()
	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, fn)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// smallCfg uses tiny segments so tests exercise alignment and flushing.
func smallCfg() Config {
	return Config{SegmentSize: 64, NumSegments: 16}
}

func TestLocateEquations(t *testing.T) {
	// Verify equations (1)-(3) directly against the paper's definitions.
	run(t, 4, func(c *mpi.Comm) error {
		f, err := Open(c, "eq", WriteMode, Config{SegmentSize: 100, NumSegments: 8})
		if err != nil {
			return err
		}
		defer f.Close()
		if c.Rank() != 0 {
			return nil
		}
		cases := []struct {
			off        int64
			rank       int
			slot, disp int64
		}{
			{0, 0, 0, 0},
			{99, 0, 0, 99},
			{100, 1, 0, 0},
			{399, 3, 0, 99},
			{400, 0, 1, 0},
			{1234, 0, 3, 34}, // seg 12: 12%4=0, 12/4=3
		}
		for _, tc := range cases {
			r, s, d := f.locate(tc.off)
			if r != tc.rank || s != tc.slot || d != tc.disp {
				return fmt.Errorf("locate(%d) = (%d,%d,%d), want (%d,%d,%d)",
					tc.off, r, s, d, tc.rank, tc.slot, tc.disp)
			}
		}
		return nil
	})
}

func TestLocateBijectionProperty(t *testing.T) {
	// Equations (1)-(3) must be a bijection: offset -> (rank, slot, disp)
	// and back. Checked over a dense range.
	run(t, 3, func(c *mpi.Comm) error {
		f, err := Open(c, "bij", WriteMode, Config{SegmentSize: 7, NumSegments: 50})
		if err != nil {
			return err
		}
		defer f.Close()
		if c.Rank() != 0 {
			return nil
		}
		for off := int64(0); off < 1000; off++ {
			r, s, d := f.locate(off)
			back := (s*int64(c.Size())+int64(r))*f.segSize + d
			if back != off {
				return fmt.Errorf("offset %d -> (%d,%d,%d) -> %d", off, r, s, d, back)
			}
		}
		return nil
	})
}

// interleavedReference builds the expected file for the paper's Fig. 2/4
// pattern: P processes, `pairs` (int,double) pairs each, round-robin.
func interleavedReference(procs, pairs int) []byte {
	out := make([]byte, procs*pairs*12)
	for p := 0; p < procs; p++ {
		for i := 0; i < pairs; i++ {
			off := (i*procs + p) * 12
			binary.LittleEndian.PutUint32(out[off:], uint32(p*1000+i))
			binary.LittleEndian.PutUint64(out[off+4:], uint64(p*7000+i))
		}
	}
	return out
}

// writeInterleaved performs the Program 3 loop on one rank.
func writeInterleaved(c *mpi.Comm, f *File, pairs int) error {
	const blockSize = 12
	for i := 0; i < pairs; i++ {
		pos := int64(c.Rank()*blockSize + i*blockSize*c.Size())
		var intBuf [4]byte
		binary.LittleEndian.PutUint32(intBuf[:], uint32(c.Rank()*1000+i))
		if err := f.WriteAt(pos, intBuf[:]); err != nil {
			return err
		}
		var dblBuf [8]byte
		binary.LittleEndian.PutUint64(dblBuf[:], uint64(c.Rank()*7000+i))
		if err := f.WriteAt(pos+4, dblBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

func TestProgram3WritePattern(t *testing.T) {
	const procs, pairs = 2, 16
	var snapshot []byte
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "prog3", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if err := writeInterleaved(c, f, pairs); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snapshot = c.FS().Open("prog3").Snapshot()
		}
		return nil
	})
	if !bytes.Equal(snapshot, interleavedReference(procs, pairs)) {
		t.Fatalf("TCIO file does not match reference:\n got %v\nwant %v",
			snapshot[:48], interleavedReference(procs, pairs)[:48])
	}
}

func TestWriteThenLazyReadRoundTrip(t *testing.T) {
	const procs, pairs = 4, 32
	run(t, procs, func(c *mpi.Comm) error {
		wf, err := Open(c, "rt", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if err := writeInterleaved(c, wf, pairs); err != nil {
			return err
		}
		if err := wf.Close(); err != nil {
			return err
		}

		rf, err := Open(c, "rt", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		const blockSize = 12
		dsts := make([][]byte, pairs)
		for i := 0; i < pairs; i++ {
			pos := int64(c.Rank()*blockSize + i*blockSize*c.Size())
			dsts[i] = make([]byte, blockSize)
			if err := rf.ReadAt(pos, dsts[i]); err != nil {
				return err
			}
		}
		if err := rf.Fetch(); err != nil {
			return err
		}
		for i := 0; i < pairs; i++ {
			iv := binary.LittleEndian.Uint32(dsts[i][:4])
			dv := binary.LittleEndian.Uint64(dsts[i][4:])
			if iv != uint32(c.Rank()*1000+i) || dv != uint64(c.Rank()*7000+i) {
				return fmt.Errorf("rank %d pair %d = (%d,%d)", c.Rank(), i, iv, dv)
			}
		}
		return rf.Close()
	})
}

func TestLazyReadNotFilledBeforeFetch(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		pf := c.FS().Open("lazy")
		if _, err := pf.WriteAt(0, 0, bytes.Repeat([]byte{0xAB}, 64), 0); err != nil {
			return err
		}
		f, err := Open(c, "lazy", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		dst := make([]byte, 8)
		if err := f.ReadAt(0, dst); err != nil {
			return err
		}
		// Lazy contract: nothing has been loaded yet.
		if dst[0] != 0 {
			return errors.New("ReadAt filled destination before Fetch")
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		if dst[0] != 0xAB {
			return fmt.Errorf("after Fetch dst[0] = %x", dst[0])
		}
		return f.Close()
	})
}

func TestReadRealignmentTriggersFetch(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		pf := c.FS().Open("realign")
		content := make([]byte, 256)
		for i := range content {
			content[i] = byte(i)
		}
		if _, err := pf.WriteAt(0, 0, content, 0); err != nil {
			return err
		}
		cfg := smallCfg() // 64-byte segments
		cfg.FetchBatch = 1
		f, err := Open(c, "realign", ReadMode, cfg)
		if err != nil {
			return err
		}
		a := make([]byte, 4)
		if err := f.ReadAt(0, a); err != nil {
			return err
		}
		// Reading from a different segment must implicitly fetch `a`.
		b := make([]byte, 4)
		if err := f.ReadAt(200, b); err != nil {
			return err
		}
		if a[0] != 0 || a[1] != 1 {
			return fmt.Errorf("a not auto-fetched on realignment: %v", a)
		}
		if err := f.Fetch(); err != nil {
			return err
		}
		if b[0] != 200 {
			return fmt.Errorf("b = %v", b)
		}
		return f.Close()
	})
}

func TestCloseCompletesPendingReads(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		pf := c.FS().Open("closefetch")
		if _, err := pf.WriteAt(0, 0, []byte{1, 2, 3, 4}, 0); err != nil {
			return err
		}
		f, err := Open(c, "closefetch", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		dst := make([]byte, 4)
		if err := f.ReadAt(0, dst); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
			return fmt.Errorf("Close did not complete pending reads: %v", dst)
		}
		return nil
	})
}

func TestModeEnforcement(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		wf, err := Open(c, "mode", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if err := wf.ReadAt(0, make([]byte, 1)); !errors.Is(err, ErrMode) {
			return fmt.Errorf("read on write handle: %v", err)
		}
		if err := wf.Close(); err != nil {
			return err
		}
		rf, err := Open(c, "mode", ReadMode, smallCfg())
		if err != nil {
			return err
		}
		if err := rf.WriteAt(0, []byte{1}); !errors.Is(err, ErrMode) {
			return fmt.Errorf("write on read handle: %v", err)
		}
		return rf.Close()
	})
}

func TestClosedHandleRejected(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "closed", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte{1}); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("write after close: %v", err)
		}
		if err := f.Flush(); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("flush after close: %v", err)
		}
		if err := f.Close(); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("double close: %v", err)
		}
		return nil
	})
}

func TestCapacityExceeded(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "cap", WriteMode, Config{SegmentSize: 16, NumSegments: 2})
		if err != nil {
			return err
		}
		defer f.Close()
		// Capacity = 1 rank * 2 slots * 16 = 32 bytes.
		if err := f.WriteAt(31, []byte{1}); err != nil {
			return fmt.Errorf("in-capacity write failed: %v", err)
		}
		if err := f.WriteAt(32, []byte{1}); !errors.Is(err, ErrCapacity) {
			return fmt.Errorf("out-of-capacity write: %v", err)
		}
		return nil
	})
}

func TestInvalidArgs(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		if _, err := Open(c, "x", Mode(9), smallCfg()); err == nil {
			return errors.New("bad mode accepted")
		}
		f, err := Open(c, "x", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.WriteAt(-1, []byte{1}); err == nil {
			return errors.New("negative offset accepted")
		}
		if _, err := f.Seek(-5, 0); err == nil {
			return errors.New("negative seek accepted")
		}
		if _, err := f.Seek(0, 2); err == nil {
			return errors.New("whence=2 accepted")
		}
		return nil
	})
}

func TestSeekModes(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "seek", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		defer f.Close()
		if pos, err := f.Seek(10, 0); err != nil || pos != 10 {
			return fmt.Errorf("Seek(10,0) = %d, %v", pos, err)
		}
		if pos, err := f.Seek(5, 1); err != nil || pos != 15 {
			return fmt.Errorf("Seek(5,1) = %d, %v", pos, err)
		}
		return nil
	})
}

func TestLevel1Coalescing(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "coalesce", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		// 16 sequential 4-byte writes inside one 64-byte segment: exactly
		// one level-1 flush when the next segment is touched.
		for i := 0; i < 16; i++ {
			if err := f.Write(bytes.Repeat([]byte{byte(i)}, 4)); err != nil {
				return err
			}
		}
		if got := f.Stats().Level1Flush; got != 0 {
			return fmt.Errorf("flushes before boundary: %d", got)
		}
		if err := f.Write([]byte{99}); err != nil { // crosses into segment 1
			return err
		}
		if got := f.Stats().Level1Flush; got != 1 {
			return fmt.Errorf("flushes after boundary: %d, want 1", got)
		}
		return f.Close()
	})
}

func TestDisableLevel1AblationSameBytesMoreMessages(t *testing.T) {
	const procs, pairs = 2, 8
	for _, disable := range []bool{false, true} {
		name := fmt.Sprintf("abl%v", disable)
		var snapshot []byte
		var flushes int64
		run(t, procs, func(c *mpi.Comm) error {
			cfg := smallCfg()
			cfg.DisableLevel1 = disable
			f, err := Open(c, name, WriteMode, cfg)
			if err != nil {
				return err
			}
			if err := writeInterleaved(c, f, pairs); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				snapshot = c.FS().Open(name).Snapshot()
				flushes = f.Stats().Level1Flush
			}
			return nil
		})
		if !bytes.Equal(snapshot, interleavedReference(procs, pairs)) {
			t.Fatalf("disable=%v: wrong contents", disable)
		}
		if disable && flushes < int64(pairs*2) {
			t.Fatalf("disable=true: %d one-sided ops, want at least one per piece (%d)", flushes, pairs*2)
		}
		if !disable && flushes >= int64(pairs*2) {
			t.Fatalf("disable=false: %d one-sided ops, expected coalescing", flushes)
		}
	}
}

func TestDemandPopulateAblation(t *testing.T) {
	const procs = 2
	for _, demand := range []bool{false, true} {
		name := fmt.Sprintf("pop%v", demand)
		run(t, procs, func(c *mpi.Comm) error {
			pf := c.FS().Open(name)
			if c.Rank() == 0 {
				content := make([]byte, 512)
				for i := range content {
					content[i] = byte(i * 3)
				}
				if _, err := pf.WriteAt(0, 0, content, 0); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			cfg := smallCfg()
			cfg.DemandPopulate = demand
			f, err := Open(c, name, ReadMode, cfg)
			if err != nil {
				return err
			}
			if !demand && f.Stats().Populations == 0 {
				return errors.New("open did not populate owner segments")
			}
			if demand && f.Stats().Populations != 0 {
				return errors.New("demand mode populated at open")
			}
			dst := make([]byte, 16)
			if err := f.ReadAt(int64(c.Rank())*256, dst); err != nil {
				return err
			}
			if err := f.Fetch(); err != nil {
				return err
			}
			for i := range dst {
				want := byte((c.Rank()*256 + i) * 3)
				if dst[i] != want {
					return fmt.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
				}
			}
			return f.Close()
		})
	}
}

func TestWriteTyped(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "typed", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		// Memory holds int32 values with 4 bytes of padding each; write
		// only the values.
		ty, err := datatype.Resized(datatype.Int, 8)
		if err != nil {
			return err
		}
		mem := make([]byte, 24)
		for i := 0; i < 3; i++ {
			binary.LittleEndian.PutUint32(mem[i*8:], uint32(100+i))
		}
		if err := f.WriteTyped(mem, 3, ty); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		snap := c.FS().Open("typed").Snapshot()
		for i := 0; i < 3; i++ {
			if got := binary.LittleEndian.Uint32(snap[i*4:]); got != uint32(100+i) {
				return fmt.Errorf("value %d = %d", i, got)
			}
		}
		return nil
	})
}

func TestSegmentSpanningWrite(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, "span", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// 200 bytes spanning 4 segments (64 each) owned alternately.
			data := make([]byte, 200)
			for i := range data {
				data[i] = byte(i + 1)
			}
			if err := f.WriteAt(10, data); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snap := c.FS().Open("span").Snapshot()
			for i := 0; i < 200; i++ {
				if snap[10+i] != byte(i+1) {
					return fmt.Errorf("byte %d = %d", i, snap[10+i])
				}
			}
		}
		return nil
	})
}

func TestOverlappingRewrites(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "overlap", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte{1, 1, 1, 1}); err != nil {
			return err
		}
		if err := f.WriteAt(2, []byte{2, 2, 2, 2}); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		snap := c.FS().Open("overlap").Snapshot()
		want := []byte{1, 1, 2, 2, 2, 2}
		if !bytes.Equal(snap, want) {
			return fmt.Errorf("snap = %v, want %v", snap, want)
		}
		return nil
	})
}

func TestFlushIsCollective(t *testing.T) {
	rep := run(t, 4, func(c *mpi.Comm) error {
		f, err := Open(c, "coll", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			c.Compute(2_000_000)
		}
		if err := f.Flush(); err != nil {
			return err
		}
		return f.Close()
	})
	for r, rt := range rep.RankTimes {
		if rt < 2_000_000 {
			t.Fatalf("rank %d finished at %v, before the straggler's flush", r, rt)
		}
	}
}

func TestDrainProducesAlignedLargeWrites(t *testing.T) {
	const procs = 2
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "aligned", WriteMode, smallCfg())
		if err != nil {
			return err
		}
		// Fill 4 full segments collaboratively with the interleaved pattern.
		if err := writeInterleaved(c, f, 32); err != nil { // 32*2*12 = 768 bytes = 12 segments
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Each fully dirty segment should drain as ONE file system write.
		st := f.Stats()
		if st.FSWrites == 0 {
			return errors.New("no drain writes")
		}
		fileSegs := int64(768) / 64
		perRank := fileSegs / procs
		if st.FSWrites > perRank {
			return fmt.Errorf("drain used %d writes for %d segments", st.FSWrites, perRank)
		}
		return nil
	})
}

func TestRandomPlansMatchPOSIXReference(t *testing.T) {
	// Property-style test: random non-overlapping per-rank write plans
	// executed through TCIO yield exactly the file a serial POSIX writer
	// would produce.
	for seed := int64(1); seed <= 3; seed++ {
		const procs = 4
		const fileSize = 2048
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, fileSize)
		plans := make([][]datatype.Segment, procs)
		// Partition the file into 32-byte slots dealt round-robin; each
		// rank writes a random subset of its slots, in random order.
		const slot = 32
		for s := 0; s*slot < fileSize; s++ {
			r := s % procs
			if rng.Intn(4) == 0 {
				continue
			}
			plans[r] = append(plans[r], datatype.Segment{Off: int64(s * slot), Len: slot})
		}
		for r := range plans {
			rng.Shuffle(len(plans[r]), func(i, j int) {
				plans[r][i], plans[r][j] = plans[r][j], plans[r][i]
			})
		}
		payload := func(r int, off int64) byte { return byte(int64(r+1)*37 + off) }
		for r, plan := range plans {
			for _, s := range plan {
				for i := int64(0); i < s.Len; i++ {
					ref[s.Off+i] = payload(r, s.Off+i)
				}
			}
		}
		name := fmt.Sprintf("rand%d", seed)
		var snapshot []byte
		run(t, procs, func(c *mpi.Comm) error {
			f, err := Open(c, name, WriteMode, Config{SegmentSize: 128, NumSegments: 8})
			if err != nil {
				return err
			}
			for _, s := range plans[c.Rank()] {
				data := make([]byte, s.Len)
				for i := int64(0); i < s.Len; i++ {
					data[i] = payload(c.Rank(), s.Off+i)
				}
				if err := f.WriteAt(s.Off, data); err != nil {
					return err
				}
			}
			if err := f.Close(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				snapshot = c.FS().Open(name).Snapshot()
			}
			return nil
		})
		if len(snapshot) < len(ref) {
			snapshot = append(snapshot, make([]byte, len(ref)-len(snapshot))...)
		}
		if !bytes.Equal(snapshot, ref) {
			t.Fatalf("seed %d: TCIO file differs from POSIX reference", seed)
		}
	}
}

func TestMemoryFootprintSmallerThanOCIO(t *testing.T) {
	// The paper's Fig. 6 argument: TCIO needs level-2 (data size) plus one
	// segment; OCIO needs combine buffer + aggregator buffer (2x data).
	// With a per-rank share of 2 GiB and 0.75 GiB of data per rank
	// (simulated), TCIO must fit.
	m := cluster.Lonestar()
	m.ByteScale = 1 << 20 // 1 MiB simulated per real byte
	_, err := mpi.Run(mpi.Config{Procs: 12, Machine: m, EnforceMemory: true}, func(c *mpi.Comm) error {
		// 768 real bytes = 768 MiB simulated data per rank.
		// Level-2: NumSegments*SegmentSize = 768 real bytes; level-1: 64.
		f, err := Open(c, "mem", WriteMode, Config{SegmentSize: 64, NumSegments: 12})
		if err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatalf("TCIO should fit in the memory share: %v", err)
	}
}
