package tcio

// Config normalization: the defaulting and bounds rules that used to live
// inline in Open, expressed as a table so every knob's zero-default and
// legal range is declared in one row (and tested row by row). Normalize is
// exported because the delegation tier (internal/delegate) reuses it: a
// delegation client never opens a level-2 window, but servers and clients
// must still agree on the segment geometry the file domains derive from,
// so both layers normalize the same Config the same way.

import (
	"fmt"

	"github.com/tcio/tcio/internal/faults"
)

// normRule is one Config field's normalization row: where the field lives,
// the default applied when it is zero, and the smallest legal value after
// defaulting. Fields whose zero value is meaningful (DrainWorkers,
// PrefetchSegments, SieveBuffer: "feature off") have no default.
type normRule struct {
	name string // label used in error messages
	get  func(*Config) int64
	set  func(*Config, int64)
	// def supplies the value substituted for zero; nil keeps zero. The
	// stripe size is passed through for SegmentSize's "use the file
	// system's lock granularity" default.
	def func(cfg *Config, stripe int64) int64
	min int64 // smallest legal value after defaulting
}

// normTable drives Normalize. Order matters only in that MaxCachedSegments
// defaults from PrefetchSegments, which precedes it.
var normTable = []normRule{
	{
		name: "segment size",
		get:  func(c *Config) int64 { return c.SegmentSize },
		set:  func(c *Config, v int64) { c.SegmentSize = v },
		def:  func(_ *Config, stripe int64) int64 { return stripe },
		min:  1,
	},
	{
		name: "segment count",
		get:  func(c *Config) int64 { return int64(c.NumSegments) },
		set:  func(c *Config, v int64) { c.NumSegments = int(v) },
		def:  func(*Config, int64) int64 { return 64 },
		min:  1,
	},
	{
		name: "drain workers",
		get:  func(c *Config) int64 { return int64(c.DrainWorkers) },
		set:  func(c *Config, v int64) { c.DrainWorkers = int(v) },
		min:  0,
	},
	{
		name: "fetch batch",
		get:  func(c *Config) int64 { return int64(c.FetchBatch) },
		set:  func(c *Config, v int64) { c.FetchBatch = int(v) },
		def:  func(*Config, int64) int64 { return 64 },
		min:  1,
	},
	{
		name: "pipeline depth",
		get:  func(c *Config) int64 { return int64(c.PipelineDepth) },
		set:  func(c *Config, v int64) { c.PipelineDepth = int(v) },
		def:  func(*Config, int64) int64 { return 8 },
		min:  1,
	},
	{
		name: "write-behind queue",
		get:  func(c *Config) int64 { return int64(c.WriteBehindQueue) },
		set:  func(c *Config, v int64) { c.WriteBehindQueue = int(v) },
		def:  func(*Config, int64) int64 { return 32 },
		min:  1,
	},
	{
		name: "prefetch segments",
		get:  func(c *Config) int64 { return int64(c.PrefetchSegments) },
		set:  func(c *Config, v int64) { c.PrefetchSegments = int(v) },
		min:  0,
	},
	{
		name: "max cached segments",
		get:  func(c *Config) int64 { return int64(c.MaxCachedSegments) },
		set:  func(c *Config, v int64) { c.MaxCachedSegments = int(v) },
		def:  func(c *Config, _ int64) int64 { return int64(c.PrefetchSegments) },
		min:  0,
	},
	{
		name: "sieve buffer",
		get:  func(c *Config) int64 { return c.SieveBuffer },
		set:  func(c *Config, v int64) { c.SieveBuffer = v },
		min:  0,
	},
}

// Normalize returns the configuration with every zero field replaced by
// its documented default and every out-of-range field rejected.
// stripeSize supplies SegmentSize's default — the file system's lock
// granularity, as §IV.A prescribes. The receiver is unchanged.
func (cfg Config) Normalize(stripeSize int64) (Config, error) {
	for _, r := range normTable {
		v := r.get(&cfg)
		if v == 0 && r.def != nil {
			v = r.def(&cfg, stripeSize)
			r.set(&cfg, v)
		}
		if v < r.min {
			return cfg, fmt.Errorf("tcio: %s %d", r.name, v)
		}
	}
	if cfg.WriteBehindThreshold < 0 || cfg.WriteBehindThreshold > 1 {
		return cfg, fmt.Errorf("tcio: write-behind threshold %g", cfg.WriteBehindThreshold)
	}
	if cfg.MaxCachedSegments < cfg.PrefetchSegments {
		// A cache smaller than the lookahead would evict the very segments
		// the prefetcher just staged, turning every prefetch into a wasted
		// duplicate read.
		cfg.MaxCachedSegments = cfg.PrefetchSegments
	}
	if cfg.SegmentMemoryBudget < 0 {
		return cfg, fmt.Errorf("tcio: segment memory budget %d", cfg.SegmentMemoryBudget)
	}
	if cfg.SegmentMemoryBudget > 0 {
		// The budget only makes sense over the epoch log: spilling a dirty
		// segment is free exactly because its bytes are already journaled.
		cfg.Journal = true
		if cfg.SegmentMemoryBudget < cfg.SegmentSize {
			cfg.SegmentMemoryBudget = cfg.SegmentSize
		}
		// The prefetch lookahead and its cache must fit the same budget the
		// window does, or arming the budget would move pressure into an
		// unaccounted cache instead of relieving it. Both clamp to the same
		// bound, so MaxCachedSegments >= PrefetchSegments is preserved.
		maxResident := int(cfg.SegmentMemoryBudget / cfg.SegmentSize)
		if cfg.PrefetchSegments > maxResident {
			cfg.PrefetchSegments = maxResident
		}
		if cfg.MaxCachedSegments > maxResident {
			cfg.MaxCachedSegments = maxResident
		}
	}
	return cfg, nil
}

// retryPolicy resolves the Retry knob: nil means the default policy.
func (cfg *Config) retryPolicy() faults.RetryPolicy {
	if cfg.Retry != nil {
		return *cfg.Retry
	}
	return faults.DefaultRetryPolicy()
}
