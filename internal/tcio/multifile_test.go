package tcio

import (
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
)

// Multi-file regression tests for the session refactor: one rank holding
// several concurrently open TCIO files must keep every piece of per-file
// engine state — ledgers, write-behind lanes, prefetch caches — fully
// independent.

func mfByte(file int, off int64) byte { return byte(off*11 + int64(file)*59 + 1) }

// TestMultiFileIndependentLedgers interleaves writes to two concurrently
// open write-behind files and checks each file's image and the per-file
// conservation law EagerWrites + FlushResidue == FSWrites.
func TestMultiFileIndependentLedgers(t *testing.T) {
	const procs = 4
	const segSize, numSeg, granule = int64(64), 4, int64(16)
	sizes := []int64{segSize * numSeg * procs, segSize * numSeg * procs / 2}
	fs := pfs.New(pfs.DefaultConfig())
	cfg := Config{SegmentSize: segSize, NumSegments: numSeg, WriteBehindThreshold: 0.5}
	type pair struct{ a, b Stats }
	ledgers := make([]pair, procs)
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), FS: fs}, func(c *mpi.Comm) error {
		fa, err := Open(c, "mf-a", WriteMode, cfg)
		if err != nil {
			return err
		}
		fb, err := Open(c, "mf-b", WriteMode, cfg)
		if err != nil {
			return err
		}
		buf := make([]byte, granule)
		fill := func(file int, off int64) {
			for i := range buf {
				buf[i] = mfByte(file, off+int64(i))
			}
		}
		// Strict interleaving: alternate files between consecutive writes
		// so any cross-file state bleed (shared level-1 buffer, shared
		// lane clocks, shared ledgers) corrupts bytes or counters.
		for k := int64(c.Rank()); k*granule < sizes[0]; k += int64(c.Size()) {
			off := k * granule
			fill(0, off)
			if err := fa.WriteAt(off, buf); err != nil {
				return err
			}
			if offB := off % sizes[1]; true {
				fill(1, offB)
				if err := fb.WriteAt(offB, buf); err != nil {
					return err
				}
			}
		}
		if err := fa.Close(); err != nil {
			return err
		}
		if err := fb.Close(); err != nil {
			return err
		}
		ledgers[c.Rank()] = pair{a: fa.Stats(), b: fb.Stats()}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	img := fs.Open("mf-a").Snapshot()
	for off := int64(0); off < sizes[0]; off++ {
		if img[off] != mfByte(0, off) {
			t.Fatalf("mf-a byte %d = %d, want %d", off, img[off], mfByte(0, off))
		}
	}
	for r, l := range ledgers {
		for name, s := range map[string]Stats{"mf-a": l.a, "mf-b": l.b} {
			if s.EagerWrites+s.FlushResidue != s.FSWrites {
				t.Fatalf("rank %d %s: EagerWrites %d + FlushResidue %d != FSWrites %d",
					r, name, s.EagerWrites, s.FlushResidue, s.FSWrites)
			}
			if s.Writes == 0 || s.FSWrites == 0 {
				t.Fatalf("rank %d %s: empty ledger %+v", r, name, s)
			}
		}
		// Both files got one write per iteration; pooled ledgers would
		// double one side's counts.
		if l.a.Writes != l.b.Writes {
			t.Fatalf("rank %d: ledger cross-talk: a.Writes=%d b.Writes=%d", r, l.a.Writes, l.b.Writes)
		}
		if l.a.BytesWritten != l.a.Writes*granule || l.b.BytesWritten != l.b.Writes*granule {
			t.Fatalf("rank %d: byte ledgers pooled: a=%+v b=%+v", r, l.a, l.b)
		}
	}
}

// TestMultiFileIndependentPrefetch opens two read-mode files with
// prefetch armed and alternates reads between them: each file's prefetch
// cache must stage and serve its own segments — a shared cache would
// serve file A's bytes for file B.
func TestMultiFileIndependentPrefetch(t *testing.T) {
	const procs = 2
	const segSize, numSeg = int64(64), 4
	fileBytes := segSize * numSeg * procs
	fs := pfs.New(pfs.DefaultConfig())
	// Seed both files directly in the file system.
	for fi, name := range []string{"pf-a", "pf-b"} {
		pf := fs.Open(name)
		buf := make([]byte, fileBytes)
		for off := range buf {
			buf[off] = mfByte(fi, int64(off))
		}
		if _, err := pf.WriteAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		SegmentSize: segSize, NumSegments: numSeg,
		PrefetchSegments: 2, DemandPopulate: true,
	}
	statsCh := make([]([2]Stats), procs)
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), FS: fs}, func(c *mpi.Comm) error {
		fa, err := Open(c, "pf-a", ReadMode, cfg)
		if err != nil {
			return err
		}
		fb, err := Open(c, "pf-b", ReadMode, cfg)
		if err != nil {
			return err
		}
		// Each ReadAt spans two consecutive segments, so every Fetch batch
		// gives the lookahead a forward-sequential run to prefetch into.
		step := 2 * segSize
		n := fileBytes / int64(c.Size())
		base := int64(c.Rank()) * n
		bufA, bufB := make([]byte, step), make([]byte, step)
		for off := base; off+step <= base+n; off += step {
			if err := fa.ReadAt(off, bufA); err != nil {
				return err
			}
			if err := fa.Fetch(); err != nil {
				return err
			}
			if err := fb.ReadAt(off, bufB); err != nil {
				return err
			}
			if err := fb.Fetch(); err != nil {
				return err
			}
			for i := range bufA {
				if bufA[i] != mfByte(0, off+int64(i)) {
					return fmt.Errorf("rank %d: pf-a byte %d = %d, want %d",
						c.Rank(), off+int64(i), bufA[i], mfByte(0, off+int64(i)))
				}
				if bufB[i] != mfByte(1, off+int64(i)) {
					return fmt.Errorf("rank %d: pf-b byte %d = %d, want %d",
						c.Rank(), off+int64(i), bufB[i], mfByte(1, off+int64(i)))
				}
			}
		}
		ea, eb := fa.Close(), fb.Close()
		if ea != nil {
			return ea
		}
		if eb != nil {
			return eb
		}
		statsCh[c.Rank()] = [2]Stats{fa.Stats(), fb.Stats()}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range statsCh {
		for fi := range st {
			if st[fi].PrefetchIssued == 0 {
				t.Fatalf("rank %d file %d: prefetch never armed: %+v", r, fi, st[fi])
			}
		}
	}
}

// TestMultiFileInterleavedRace is the -race interleaving canary: many
// ranks, three files each (two write-mode with background lanes, one
// read-mode), with tightly interleaved operations. It exists to let the
// race detector see concurrent multi-file traffic; correctness of the
// bytes is checked too.
func TestMultiFileInterleavedRace(t *testing.T) {
	const procs = 6
	const segSize, numSeg, granule = int64(64), 4, int64(32)
	fileBytes := segSize * numSeg * procs
	fs := pfs.New(pfs.DefaultConfig())
	// Seed the read-mode file.
	pf := fs.Open("race-r")
	seed := make([]byte, fileBytes)
	for off := range seed {
		seed[off] = mfByte(2, int64(off))
	}
	if _, err := pf.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	wcfg := Config{SegmentSize: segSize, NumSegments: numSeg, WriteBehindThreshold: 0.25}
	rcfg := Config{SegmentSize: segSize, NumSegments: numSeg, PrefetchSegments: 1, DemandPopulate: true}
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), FS: fs}, func(c *mpi.Comm) error {
		fa, err := Open(c, "race-a", WriteMode, wcfg)
		if err != nil {
			return err
		}
		fb, err := Open(c, "race-b", WriteMode, wcfg)
		if err != nil {
			return err
		}
		fr, err := Open(c, "race-r", ReadMode, rcfg)
		if err != nil {
			return err
		}
		buf := make([]byte, granule)
		dst := make([]byte, granule)
		for k := int64(c.Rank()); k*granule < fileBytes; k += int64(c.Size()) {
			off := k * granule
			for i := range buf {
				buf[i] = mfByte(0, off+int64(i))
			}
			if err := fa.WriteAt(off, buf); err != nil {
				return err
			}
			if err := fr.ReadAt(off, dst); err != nil {
				return err
			}
			for i := range buf {
				buf[i] = mfByte(1, off+int64(i))
			}
			if err := fb.WriteAt(off, buf); err != nil {
				return err
			}
			if err := fr.Fetch(); err != nil {
				return err
			}
			for i := range dst {
				if dst[i] != mfByte(2, off+int64(i)) {
					return fmt.Errorf("rank %d: race-r byte %d corrupted", c.Rank(), off+int64(i))
				}
			}
		}
		for _, f := range []*File{fa, fb, fr} {
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for fi, name := range []string{"race-a", "race-b"} {
		img := fs.Open(name).Snapshot()
		for off := int64(0); off < fileBytes; off++ {
			if img[off] != mfByte(fi, off) {
				t.Fatalf("%s byte %d = %d, want %d", name, off, img[off], mfByte(fi, off))
			}
		}
	}
}
