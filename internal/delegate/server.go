package delegate

// The server side of the tier. A server rank never runs application code:
// it sits in an mpi.Serve loop staging client writes into per-handle,
// per-domain-block buffers, and drains one coalesced batch per flush
// epoch. Arrival order at the loop races with goroutine scheduling, so
// nothing order-dependent happens at receive time — records are staged
// with their (client, seq) identity and every epoch is applied in sorted
// order, making the drained batch and the file image deterministic.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// ServerStats is one server rank's final counters.
type ServerStats struct {
	// Rank is the server's rank in the communicator.
	Rank int
	// Requests counts protocol requests served (shutdowns excluded).
	Requests int64
	// StagedWrites and StagedBytes count write records admitted.
	StagedWrites int64
	StagedBytes  int64
	// Epochs counts flush epochs closed.
	Epochs int64
	// BatchedRuns counts the coalesced extent runs drained — each is one
	// file system write request, so comparing it against StagedWrites
	// measures the tier's aggregation factor.
	BatchedRuns int64
	// FSWrites/FSReads/FSBytes are the storage-layer request and byte
	// counts the drains and reads produced; Retries the transient faults
	// absorbed under chaos.
	FSWrites int64
	FSReads  int64
	FSBytes  int64
	Retries  int64
	// ReadReqs counts OpRead requests served (inline or via the DRR
	// scheduler); ReadEpochs collective read epochs closed, and
	// CollectiveBlocks the merged domain blocks those epochs staged.
	ReadReqs         int64
	ReadEpochs       int64
	CollectiveBlocks int64
	// CacheHits/CacheMisses/CacheEvictions count hot-block cache
	// outcomes: every served read request and every collective block is
	// exactly one hit or miss while the cache is armed, and all three
	// stay zero while it is disarmed.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// Collector gathers ServerStats across server ranks (they finish as
// separate goroutines, so the sink is mutex-guarded).
type Collector struct {
	mu      sync.Mutex
	servers []ServerStats
}

func (col *Collector) add(s ServerStats) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.servers = append(col.servers, s)
}

// Servers returns the collected stats sorted by rank.
func (col *Collector) Servers() []ServerStats {
	col.mu.Lock()
	defer col.mu.Unlock()
	out := append([]ServerStats(nil), col.servers...)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// writeRec is one staged client write.
type writeRec struct {
	client int
	seq    int64
	off    int64
	data   []byte
}

// handleFile is a server's state for one open handle.
type handleFile struct {
	name  string
	mode  tcio.Mode
	refs  int // clients currently holding the handle open
	pf    *pfs.File
	drain *storage.Client
	// readers holds one storage client per reading client rank,
	// impersonating that rank so the parallel file system's readahead
	// window and the fault injector's identity keys see the same
	// per-client streams they would without delegation.
	readers map[int]*storage.Client
	staged  []writeRec
	flushed map[int]bool
	epoch   int64
	// intents and intentSeqs hold the current collective read epoch's
	// per-client intent vectors and request sequence numbers; the epoch
	// closes when every client has contributed (the flush quorum rule).
	intents    map[int][]extent.Extent
	intentSeqs map[int]int64
}

type server struct {
	c       *mpi.Comm
	cfg     Config
	tcfg    tcio.Config
	retry   faults.RetryPolicy
	clients int // client-rank count: the flush-epoch quorum
	handles map[int32]*handleFile
	stats   ServerStats
	// cache is the hot-block cache (nil when ServerCacheBlocks == 0) and
	// dirty counts staged-but-undrained writes per (file, block): a block
	// with dirty records bypasses the cache entirely, so a read between a
	// write and its flush epoch never sees bytes the drain hasn't applied.
	cache *blockCache
	dirty map[blockKey]int
	// sched queues reads for deficit-round-robin draining (nil when
	// ReadQuantum == 0, which serves reads inline in arrival order).
	sched *drrSched
}

// serve runs the delegation request loop on a server rank until every
// client has shut down, then deposits the rank's counters in Collect.
func serve(c *mpi.Comm, cfg Config, tcfg tcio.Config, serverRanks []int) error {
	srv := &server{
		c:       c,
		cfg:     cfg,
		tcfg:    tcfg,
		retry:   faults.DefaultRetryPolicy(),
		handles: make(map[int32]*handleFile),
	}
	if tcfg.Retry != nil {
		srv.retry = *tcfg.Retry
	}
	srv.clients = c.Size() - len(serverRanks)
	if cfg.ServerCacheBlocks > 0 {
		srv.cache = newBlockCache(cfg.ServerCacheBlocks)
		srv.dirty = make(map[blockKey]int)
	}
	var err error
	if cfg.ReadQuantum > 0 {
		srv.sched = newDRR(cfg.ReadQuantum)
		err = srv.loop()
	} else {
		err = c.Serve(tagRequest, srv.clients, serverPerReq, srv.handle)
	}
	if cfg.Collect != nil {
		srv.stats.Rank = c.Rank()
		cfg.Collect.add(srv.stats)
	}
	return err
}

func (s *server) handle(req *mpi.RPCRequest) error {
	s.stats.Requests++
	switch req.Op {
	case mpi.OpOpen:
		return s.open(req)
	case mpi.OpWrite:
		return s.write(req)
	case mpi.OpRead:
		return s.read(req)
	case mpi.OpFlush:
		return s.flush(req)
	case mpi.OpReadIntent:
		return s.readIntent(req)
	case mpi.OpClose:
		return s.close(req)
	}
	return fmt.Errorf("delegate: unexpected %s", req.Op)
}

// loop is the scheduling variant of mpi.Serve, used when ReadQuantum > 0:
// reads are queued into the DRR scheduler instead of served inline, and
// drained one round at a time whenever no new request is waiting — that
// is, between writes. A blocking receive happens only with an empty read
// queue, so queued reads cannot be stranded behind it; and a client
// always collects its read replies before it can send OpShutdown, so loop
// exit implies an empty scheduler.
func (s *server) loop() error {
	for remaining := s.clients; remaining > 0; {
		req, ok, err := s.c.TryRecvRequest(mpi.AnySource, tagRequest)
		if err != nil {
			return err
		}
		if !ok {
			if s.sched.pending() > 0 {
				for _, rq := range s.sched.round() {
					if err := s.read(rq); err != nil {
						return fmt.Errorf("delegate: serve tag %d: %s from rank %d: %w",
							tagRequest, rq.Op, rq.Client, err)
					}
				}
				continue
			}
			if req, err = s.c.RecvRequest(mpi.AnySource, tagRequest); err != nil {
				return err
			}
		}
		s.c.AdvanceTo(s.c.Now().Add(serverPerReq))
		if req.Op == mpi.OpShutdown {
			remaining--
			continue
		}
		if req.Op == mpi.OpRead {
			s.stats.Requests++
			s.sched.push(req.Client, req)
			continue
		}
		if err := s.handle(req); err != nil {
			return fmt.Errorf("delegate: serve tag %d: %s from rank %d: %w",
				tagRequest, req.Op, req.Client, err)
		}
	}
	return nil
}

func (s *server) open(req *mpi.RPCRequest) error {
	name, mode := string(req.Data), tcio.Mode(req.Off)
	h := s.handles[req.Handle]
	if h == nil {
		pf := s.c.FS().Open(name)
		drain := storage.NewClient(pf, s.c.Node(), s.c.Rank(), s.c)
		drain.SetRetryPolicy(s.retry)
		drain.SetTrace(s.tcfg.Trace)
		h = &handleFile{
			name:       name,
			mode:       mode,
			pf:         pf,
			drain:      drain,
			readers:    make(map[int]*storage.Client),
			flushed:    make(map[int]bool),
			intents:    make(map[int][]extent.Extent),
			intentSeqs: make(map[int]int64),
		}
		s.handles[req.Handle] = h
	}
	if h.name != name || h.mode != mode {
		return fmt.Errorf("delegate: handle %d reopened as %q/%v, was %q/%v",
			req.Handle, name, mode, h.name, h.mode)
	}
	h.refs++
	return nil
}

func (s *server) lookup(req *mpi.RPCRequest) (*handleFile, error) {
	h := s.handles[req.Handle]
	if h == nil {
		return nil, fmt.Errorf("delegate: %s on unknown handle %d from rank %d",
			req.Op, req.Handle, req.Client)
	}
	return h, nil
}

func (s *server) write(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	h.staged = append(h.staged, writeRec{
		client: req.Client, seq: req.Seq, off: req.Off, data: req.Data,
	})
	s.stats.StagedWrites++
	s.stats.StagedBytes += int64(len(req.Data))
	if s.cache != nil {
		// The block now has a staged-but-undrained write: reads must
		// bypass the cache for it until the flush epoch drains (and
		// writes through) — see closeEpoch.
		s.dirty[blockKey{name: h.name, blk: req.Off / s.cfg.DomainSize}]++
	}
	// Grant the admission credit back now that the record is staged.
	return s.c.Send(req.Client, tagCredit, []byte{1})
}

// reader returns (creating on first use) the storage client that
// impersonates the requesting rank for h, so the parallel file system's
// readahead window and the fault injector's identity keys see the same
// per-client streams they would without delegation.
func (s *server) reader(h *handleFile, client int) *storage.Client {
	rd := h.readers[client]
	if rd == nil {
		rd = storage.NewClient(h.pf, s.c.Node(), client, s.c)
		rd.SetRetryPolicy(s.retry)
		rd.SetTrace(s.tcfg.Trace)
		h.readers[client] = rd
	}
	return rd
}

// errCode classifies a storage-layer error for the reply's wire code, so
// the client can surface a typed error instead of a flattened string.
func errCode(err error) mpi.RPCErrCode {
	if errors.Is(err, faults.ErrExhaustedRetries) {
		return mpi.RPCErrExhausted
	}
	return mpi.RPCErrGeneric
}

// traceCacheServe records one cache hit in the trace stream.
func (s *server) traceCacheServe(bytes, blk int64) {
	if s.tcfg.Trace == nil {
		return
	}
	s.tcfg.Trace.Record(trace.Event{
		Rank: s.c.Rank(), Start: s.c.Now(), Kind: trace.KindCacheServe,
		Bytes: bytes, Detail: fmt.Sprintf("blk=%d", blk),
	})
}

// read serves one OpRead. Requests are split at domain-block boundaries
// by the client, so each lies within a single block. With the cache
// armed, a clean cached block serves from memory; a clean uncached block
// fills whole through the requesting client's reader and is cached; a
// dirty block (staged-but-undrained writes) bypasses the cache with a
// per-request read, exactly the disarmed tier's shape.
func (s *server) read(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	s.stats.ReadReqs++
	ds := s.cfg.DomainSize
	key := blockKey{name: h.name, blk: req.Off / ds}
	if s.cache != nil && s.dirty[key] == 0 {
		if cbuf, ok := s.cache.get(key); ok {
			s.stats.CacheHits++
			s.traceCacheServe(req.Len, key.blk)
			rel := req.Off - key.blk*ds
			// SendReply copies synchronously into its wire staging, so
			// serving a slice of the live entry is safe and zero-copy.
			return s.c.SendReply(req.Client, tagReply, &mpi.RPCReply{
				OK: true, Seq: req.Seq, Data: cbuf[rel : rel+req.Len],
			})
		}
		s.stats.CacheMisses++
		buf := mpi.GetBuf(int(ds))
		var res storage.Result
		if mutate.Enabled(mutate.DelegateCacheStaleServe) {
			// Planted bug: "fill" the block without reading the file
			// system, so this reply and every later hit serve zeros.
			for i := range buf {
				buf[i] = 0
			}
		} else {
			res, err = s.reader(h, req.Client).ReadExtents("delegate-fill", trace.KindFetch, []storage.Request{
				{Off: key.blk * ds, Data: buf, Tag: fmt.Sprintf("c%d", req.Client)},
			})
		}
		s.stats.FSReads += res.Requests
		s.stats.FSBytes += res.Bytes
		s.stats.Retries += res.Retries
		if err != nil {
			mpi.RecycleBuf(buf)
			return s.c.SendReply(req.Client, tagReply, &mpi.RPCReply{
				Code: errCode(err), Err: err.Error(), Seq: req.Seq,
			})
		}
		rel := req.Off - key.blk*ds
		sendErr := s.c.SendReply(req.Client, tagReply, &mpi.RPCReply{
			OK: true, Seq: req.Seq, Data: buf[rel : rel+req.Len],
		})
		if displaced, evicted := s.cache.put(key, buf); displaced != nil {
			mpi.RecycleBuf(displaced)
			if evicted {
				s.stats.CacheEvictions++
			}
		}
		return sendErr
	}
	if s.cache != nil {
		// Dirty block: served, but never from or into the cache.
		s.stats.CacheMisses++
	}
	buf := mpi.GetBuf(int(req.Len))
	res, err := s.reader(h, req.Client).ReadExtents("delegate-read", trace.KindFetch, []storage.Request{
		{Off: req.Off, Data: buf, Tag: fmt.Sprintf("c%d", req.Client)},
	})
	s.stats.FSReads += res.Requests
	s.stats.FSBytes += res.Bytes
	s.stats.Retries += res.Retries
	rep := &mpi.RPCReply{OK: err == nil, Seq: req.Seq, Data: buf}
	if err != nil {
		rep.Code, rep.Err, rep.Data = errCode(err), err.Error(), nil
	}
	sendErr := s.c.SendReply(req.Client, tagReply, rep)
	mpi.RecycleBuf(buf)
	return sendErr
}

func (s *server) flush(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	if h.flushed[req.Client] {
		return fmt.Errorf("delegate: double flush of handle %d from rank %d",
			req.Handle, req.Client)
	}
	h.flushed[req.Client] = true
	// The quorum is the static client count, not the opens seen so far: a
	// fast client's open, writes, and marker can all arrive before a slow
	// client has even opened the file, and closing on a partial quorum
	// would drain an epoch missing the slow clients' writes. Open is
	// collective over the clients, so every client contributes exactly one
	// marker per epoch, and FIFO per client orders marker after writes.
	if len(h.flushed) < s.clients {
		return nil
	}
	return s.closeEpoch(h)
}

// blockStage is one domain block's staging buffer during an epoch close.
type blockStage struct {
	buf  []byte
	runs []extent.Extent // block-relative dirty runs, coalesced
}

// closeEpoch applies the epoch's staged writes in (client, seq) order —
// last write wins, deterministically — coalesces them per domain block,
// drains one batch, and acks the flushed clients in rank order. Drained
// runs write through into live cache entries (and clear the blocks'
// dirty counters), so post-flush reads hit coherent bytes.
func (s *server) closeEpoch(h *handleFile) error {
	if s.cache != nil {
		// Every staged record retires with this epoch; a block goes clean
		// again once its last staged write drains.
		for _, rec := range h.staged {
			key := blockKey{name: h.name, blk: rec.off / s.cfg.DomainSize}
			if n := s.dirty[key]; n <= 1 {
				delete(s.dirty, key)
			} else {
				s.dirty[key] = n - 1
			}
		}
	}
	sort.Slice(h.staged, func(i, j int) bool {
		a, b := h.staged[i], h.staged[j]
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	if mutate.Enabled(mutate.DelegateDropQueuedFlush) && len(h.staged) > 0 {
		h.staged = h.staged[:len(h.staged)-1]
	}
	ds := s.cfg.DomainSize
	blocks := make(map[int64]*blockStage)
	var order []int64
	for _, rec := range h.staged {
		blk := rec.off / ds
		st := blocks[blk]
		if st == nil {
			// Pooled staging memory, outside the simulated-memory
			// accountant: server staging must not perturb the per-rank
			// allocation fault stream (the same rule tcio's populate and
			// prefetch scratch follows). The pool hands back stale bytes,
			// which is safe here: the coalesced runs cover exactly the
			// staged writes' bytes, and only run-covered slices are ever
			// drained or written through.
			st = &blockStage{buf: mpi.GetBuf(int(ds))}
			blocks[blk] = st
			order = append(order, blk)
		}
		rel := rec.off - blk*ds
		copy(st.buf[rel:], rec.data)
		st.runs = extent.Coalesce(append(st.runs, extent.Extent{Off: rel, Len: int64(len(rec.data))}))
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var reqs []storage.Request
	for _, blk := range order {
		st := blocks[blk]
		for _, run := range st.runs {
			reqs = append(reqs, storage.Request{
				Off:  blk*ds + run.Off,
				Data: st.buf[run.Off:run.End()],
				Tag:  fmt.Sprintf("blk=%d", blk),
			})
		}
	}
	var drainErr error
	if len(reqs) > 0 {
		res, err := h.drain.WriteExtents("delegate-drain", trace.KindDrain, reqs)
		drainErr = err
		s.stats.BatchedRuns += int64(len(reqs))
		s.stats.FSWrites += res.Requests
		s.stats.FSBytes += res.Bytes
		s.stats.Retries += res.Retries
	}
	// Write the drained runs through into live cache entries so they stay
	// coherent (a failed drain invalidates instead — the entry's bytes can
	// no longer be trusted to match the file), then retire the pooled
	// staging buffers.
	for _, blk := range order {
		st := blocks[blk]
		if s.cache != nil {
			key := blockKey{name: h.name, blk: blk}
			if drainErr == nil {
				if cbuf, ok := s.cache.peek(key); ok {
					for _, run := range st.runs {
						copy(cbuf[run.Off:run.End()], st.buf[run.Off:run.End()])
					}
				}
			} else if cbuf, ok := s.cache.invalidate(key); ok {
				mpi.RecycleBuf(cbuf)
			}
		}
		mpi.RecycleBuf(st.buf)
	}
	s.stats.Epochs++
	h.epoch++
	acked := make([]int, 0, len(h.flushed))
	for cl := range h.flushed {
		acked = append(acked, cl)
	}
	sort.Ints(acked)
	for _, cl := range acked {
		rep := &mpi.RPCReply{OK: drainErr == nil, Seq: h.epoch}
		if drainErr != nil {
			rep.Code, rep.Err = errCode(drainErr), drainErr.Error()
		}
		if err := s.c.SendReply(cl, tagReply, rep); err != nil {
			return err
		}
	}
	h.staged = nil
	h.flushed = make(map[int]bool)
	return nil
}

func (s *server) close(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	h.refs--
	if h.refs > 0 {
		return nil
	}
	if len(h.staged) > 0 {
		return fmt.Errorf("delegate: handle %d closed with %d staged writes",
			req.Handle, len(h.staged))
	}
	delete(s.handles, req.Handle)
	return nil
}
