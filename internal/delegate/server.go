package delegate

// The server side of the tier. A server rank never runs application code:
// it sits in an mpi.Serve loop staging client writes into per-handle,
// per-domain-block buffers, and drains one coalesced batch per flush
// epoch. Arrival order at the loop races with goroutine scheduling, so
// nothing order-dependent happens at receive time — records are staged
// with their (client, seq) identity and every epoch is applied in sorted
// order, making the drained batch and the file image deterministic.

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// ServerStats is one server rank's final counters.
type ServerStats struct {
	// Rank is the server's rank in the communicator.
	Rank int
	// Requests counts protocol requests served (shutdowns excluded).
	Requests int64
	// StagedWrites and StagedBytes count write records admitted.
	StagedWrites int64
	StagedBytes  int64
	// Epochs counts flush epochs closed.
	Epochs int64
	// BatchedRuns counts the coalesced extent runs drained — each is one
	// file system write request, so comparing it against StagedWrites
	// measures the tier's aggregation factor.
	BatchedRuns int64
	// FSWrites/FSReads/FSBytes are the storage-layer request and byte
	// counts the drains and reads produced; Retries the transient faults
	// absorbed under chaos.
	FSWrites int64
	FSReads  int64
	FSBytes  int64
	Retries  int64
}

// Collector gathers ServerStats across server ranks (they finish as
// separate goroutines, so the sink is mutex-guarded).
type Collector struct {
	mu      sync.Mutex
	servers []ServerStats
}

func (col *Collector) add(s ServerStats) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.servers = append(col.servers, s)
}

// Servers returns the collected stats sorted by rank.
func (col *Collector) Servers() []ServerStats {
	col.mu.Lock()
	defer col.mu.Unlock()
	out := append([]ServerStats(nil), col.servers...)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// writeRec is one staged client write.
type writeRec struct {
	client int
	seq    int64
	off    int64
	data   []byte
}

// handleFile is a server's state for one open handle.
type handleFile struct {
	name  string
	mode  tcio.Mode
	refs  int // clients currently holding the handle open
	pf    *pfs.File
	drain *storage.Client
	// readers holds one storage client per reading client rank,
	// impersonating that rank so the parallel file system's readahead
	// window and the fault injector's identity keys see the same
	// per-client streams they would without delegation.
	readers map[int]*storage.Client
	staged  []writeRec
	flushed map[int]bool
	epoch   int64
}

type server struct {
	c       *mpi.Comm
	cfg     Config
	tcfg    tcio.Config
	retry   faults.RetryPolicy
	clients int // client-rank count: the flush-epoch quorum
	handles map[int32]*handleFile
	stats   ServerStats
}

// serve runs the delegation request loop on a server rank until every
// client has shut down, then deposits the rank's counters in Collect.
func serve(c *mpi.Comm, cfg Config, tcfg tcio.Config, serverRanks []int) error {
	srv := &server{
		c:       c,
		cfg:     cfg,
		tcfg:    tcfg,
		retry:   faults.DefaultRetryPolicy(),
		handles: make(map[int32]*handleFile),
	}
	if tcfg.Retry != nil {
		srv.retry = *tcfg.Retry
	}
	srv.clients = c.Size() - len(serverRanks)
	err := c.Serve(tagRequest, srv.clients, serverPerReq, srv.handle)
	if cfg.Collect != nil {
		srv.stats.Rank = c.Rank()
		cfg.Collect.add(srv.stats)
	}
	return err
}

func (s *server) handle(req *mpi.RPCRequest) error {
	s.stats.Requests++
	switch req.Op {
	case mpi.OpOpen:
		return s.open(req)
	case mpi.OpWrite:
		return s.write(req)
	case mpi.OpRead:
		return s.read(req)
	case mpi.OpFlush:
		return s.flush(req)
	case mpi.OpClose:
		return s.close(req)
	}
	return fmt.Errorf("delegate: unexpected %s", req.Op)
}

func (s *server) open(req *mpi.RPCRequest) error {
	name, mode := string(req.Data), tcio.Mode(req.Off)
	h := s.handles[req.Handle]
	if h == nil {
		pf := s.c.FS().Open(name)
		drain := storage.NewClient(pf, s.c.Node(), s.c.Rank(), s.c)
		drain.SetRetryPolicy(s.retry)
		drain.SetTrace(s.tcfg.Trace)
		h = &handleFile{
			name:    name,
			mode:    mode,
			pf:      pf,
			drain:   drain,
			readers: make(map[int]*storage.Client),
			flushed: make(map[int]bool),
		}
		s.handles[req.Handle] = h
	}
	if h.name != name || h.mode != mode {
		return fmt.Errorf("delegate: handle %d reopened as %q/%v, was %q/%v",
			req.Handle, name, mode, h.name, h.mode)
	}
	h.refs++
	return nil
}

func (s *server) lookup(req *mpi.RPCRequest) (*handleFile, error) {
	h := s.handles[req.Handle]
	if h == nil {
		return nil, fmt.Errorf("delegate: %s on unknown handle %d from rank %d",
			req.Op, req.Handle, req.Client)
	}
	return h, nil
}

func (s *server) write(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	h.staged = append(h.staged, writeRec{
		client: req.Client, seq: req.Seq, off: req.Off, data: req.Data,
	})
	s.stats.StagedWrites++
	s.stats.StagedBytes += int64(len(req.Data))
	// Grant the admission credit back now that the record is staged.
	return s.c.Send(req.Client, tagCredit, []byte{1})
}

func (s *server) read(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	rd := h.readers[req.Client]
	if rd == nil {
		rd = storage.NewClient(h.pf, s.c.Node(), req.Client, s.c)
		rd.SetRetryPolicy(s.retry)
		rd.SetTrace(s.tcfg.Trace)
		h.readers[req.Client] = rd
	}
	buf := make([]byte, req.Len)
	res, err := rd.ReadExtents("delegate-read", trace.KindFetch, []storage.Request{
		{Off: req.Off, Data: buf, Tag: fmt.Sprintf("c%d", req.Client)},
	})
	s.stats.FSReads += res.Requests
	s.stats.FSBytes += res.Bytes
	s.stats.Retries += res.Retries
	rep := &mpi.RPCReply{OK: err == nil, Seq: req.Seq, Data: buf}
	if err != nil {
		rep.Err, rep.Data = err.Error(), nil
	}
	return s.c.SendReply(req.Client, tagReply, rep)
}

func (s *server) flush(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	if h.flushed[req.Client] {
		return fmt.Errorf("delegate: double flush of handle %d from rank %d",
			req.Handle, req.Client)
	}
	h.flushed[req.Client] = true
	// The quorum is the static client count, not the opens seen so far: a
	// fast client's open, writes, and marker can all arrive before a slow
	// client has even opened the file, and closing on a partial quorum
	// would drain an epoch missing the slow clients' writes. Open is
	// collective over the clients, so every client contributes exactly one
	// marker per epoch, and FIFO per client orders marker after writes.
	if len(h.flushed) < s.clients {
		return nil
	}
	return s.closeEpoch(h)
}

// blockStage is one domain block's staging buffer during an epoch close.
type blockStage struct {
	buf  []byte
	runs []extent.Extent // block-relative dirty runs, coalesced
}

// closeEpoch applies the epoch's staged writes in (client, seq) order —
// last write wins, deterministically — coalesces them per domain block,
// drains one batch, and acks the flushed clients in rank order.
func (s *server) closeEpoch(h *handleFile) error {
	sort.Slice(h.staged, func(i, j int) bool {
		a, b := h.staged[i], h.staged[j]
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	if mutate.Enabled(mutate.DelegateDropQueuedFlush) && len(h.staged) > 0 {
		h.staged = h.staged[:len(h.staged)-1]
	}
	ds := s.cfg.DomainSize
	blocks := make(map[int64]*blockStage)
	var order []int64
	for _, rec := range h.staged {
		blk := rec.off / ds
		st := blocks[blk]
		if st == nil {
			// Plain staging memory, outside the simulated-memory
			// accountant: server staging must not perturb the per-rank
			// allocation fault stream (the same rule tcio's populate and
			// prefetch scratch follows).
			st = &blockStage{buf: make([]byte, ds)}
			blocks[blk] = st
			order = append(order, blk)
		}
		rel := rec.off - blk*ds
		copy(st.buf[rel:], rec.data)
		st.runs = extent.Coalesce(append(st.runs, extent.Extent{Off: rel, Len: int64(len(rec.data))}))
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var reqs []storage.Request
	for _, blk := range order {
		st := blocks[blk]
		for _, run := range st.runs {
			reqs = append(reqs, storage.Request{
				Off:  blk*ds + run.Off,
				Data: st.buf[run.Off:run.End()],
				Tag:  fmt.Sprintf("blk=%d", blk),
			})
		}
	}
	var drainErr error
	if len(reqs) > 0 {
		res, err := h.drain.WriteExtents("delegate-drain", trace.KindDrain, reqs)
		drainErr = err
		s.stats.BatchedRuns += int64(len(reqs))
		s.stats.FSWrites += res.Requests
		s.stats.FSBytes += res.Bytes
		s.stats.Retries += res.Retries
	}
	s.stats.Epochs++
	h.epoch++
	acked := make([]int, 0, len(h.flushed))
	for cl := range h.flushed {
		acked = append(acked, cl)
	}
	sort.Ints(acked)
	for _, cl := range acked {
		rep := &mpi.RPCReply{OK: drainErr == nil, Seq: h.epoch}
		if drainErr != nil {
			rep.Err = drainErr.Error()
		}
		if err := s.c.SendReply(cl, tagReply, rep); err != nil {
			return err
		}
	}
	h.staged = nil
	h.flushed = make(map[int]bool)
	return nil
}

func (s *server) close(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	h.refs--
	if h.refs > 0 {
		return nil
	}
	if len(h.staged) > 0 {
		return fmt.Errorf("delegate: handle %d closed with %d staged writes",
			req.Handle, len(h.staged))
	}
	delete(s.handles, req.Handle)
	return nil
}
