package delegate

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

// expectByte is the deterministic content of offset off in the test files
// (per-file variation via the file index).
func expectByte(file int, off int64) byte { return byte(off*7 + int64(file)*131 + 3) }

// delegateRun executes a granule-interleaved write-then-read workload
// through the tier and returns the run report, the file image, the
// per-client stats, and the server collector.
func delegateRun(t *testing.T, procs, serverRanks, queueDepth int, granule, fileBytes int64) (mpi.Report, []byte, []Stats, *Collector) {
	t.Helper()
	m := cluster.Lonestar()
	m.CoresPerNode = 4
	fs := pfs.New(pfs.DefaultConfig())
	col := &Collector{}
	cfg := Config{
		ServerRanks: serverRanks,
		QueueDepth:  queueDepth,
		TCIO:        tcio.Config{SegmentSize: 64, NumSegments: 8},
		Collect:     col,
	}
	stats := make([]Stats, procs)
	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: m, FS: fs}, func(c *mpi.Comm) error {
		return Run(c, cfg, func(tr *Tier) error {
			f, err := tr.Open("del", tcio.WriteMode)
			if err != nil {
				return err
			}
			buf := make([]byte, granule)
			for k := int64(tr.ClientIndex()); k*granule < fileBytes; k += int64(tr.NumClients()) {
				off := k * granule
				for i := range buf {
					buf[i] = expectByte(0, off+int64(i))
				}
				if err := f.WriteAt(off, buf); err != nil {
					return err
				}
			}
			if err := f.Flush(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			// Read phase: every client reads a shifted slice and verifies.
			r, err := tr.Open("del", tcio.ReadMode)
			if err != nil {
				return err
			}
			n := fileBytes / int64(tr.NumClients())
			off := (int64(tr.ClientIndex()+1) * n) % fileBytes
			if off+n > fileBytes {
				n = fileBytes - off
			}
			dst := make([]byte, n)
			if err := r.ReadAt(off, dst); err != nil {
				return err
			}
			if err := r.Fetch(); err != nil {
				return err
			}
			for i := range dst {
				if dst[i] != expectByte(0, off+int64(i)) {
					return fmt.Errorf("client %d: byte %d = %d, want %d",
						tr.ClientIndex(), off+int64(i), dst[i], expectByte(0, off+int64(i)))
				}
			}
			stats[tr.Comm().Rank()] = f.Stats()
			return r.Close()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	img := fs.Open("del").Snapshot()
	if int64(len(img)) > fileBytes {
		img = img[:fileBytes]
	}
	return rep, img, stats, col
}

func TestDelegateWriteReadRoundTrip(t *testing.T) {
	const procs, servers = 8, 2
	const granule, fileBytes = int64(32), int64(32 * 96)
	rep, img, stats, col := delegateRun(t, procs, servers, 0, granule, fileBytes)

	for off := int64(0); off < fileBytes; off++ {
		if img[off] != expectByte(0, off) {
			t.Fatalf("file byte %d = %d, want %d", off, img[off], expectByte(0, off))
		}
	}
	ss := col.Servers()
	if len(ss) != servers {
		t.Fatalf("collected %d server stats, want %d", len(ss), servers)
	}
	var staged, runs, fsWrites int64
	for _, s := range ss {
		if s.Epochs == 0 || s.StagedWrites == 0 {
			t.Fatalf("server %d served no epochs/writes: %+v", s.Rank, s)
		}
		staged += s.StagedWrites
		runs += s.BatchedRuns
		fsWrites += s.FSWrites
	}
	// Aggregation: interleaved granules coalesce inside domain blocks, so
	// the drained runs must be far fewer than the staged records.
	if runs >= staged/2 {
		t.Fatalf("no aggregation: %d runs from %d staged writes", runs, staged)
	}
	if runs != fsWrites {
		t.Fatalf("batched runs %d != fs write requests %d (no chaos)", runs, fsWrites)
	}
	if rep.FS.Writes != fsWrites {
		t.Fatalf("file system saw %d writes, servers issued %d — a non-server rank wrote",
			rep.FS.Writes, fsWrites)
	}
	// Every client wrote and stalled zero or more times; server ranks have
	// zero client stats.
	serverSet := map[int]bool{}
	for _, s := range ss {
		serverSet[s.Rank] = true
	}
	for r, st := range stats {
		if serverSet[r] {
			if st.Writes != 0 {
				t.Fatalf("server rank %d has client stats %+v", r, st)
			}
			continue
		}
		if st.Writes == 0 || st.WriteReqs == 0 || st.Flushes != 2 {
			t.Fatalf("client rank %d stats %+v", r, st)
		}
	}
}

// TestDelegateLastWriteWins pins deterministic conflict resolution: every
// client writes the same extent, and the survivor must be the one the
// epoch sort puts last — the highest client rank — no matter how arrivals
// interleave.
func TestDelegateLastWriteWins(t *testing.T) {
	const procs = 6
	m := cluster.Lonestar()
	m.CoresPerNode = 3
	for round := 0; round < 3; round++ {
		fs := pfs.New(pfs.DefaultConfig())
		cfg := Config{
			ServerRanks: 2,
			TCIO:        tcio.Config{SegmentSize: 64, NumSegments: 4},
		}
		var lastIdx int
		rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: m, FS: fs}, func(c *mpi.Comm) error {
			return Run(c, cfg, func(tr *Tier) error {
				f, err := tr.Open("lww", tcio.WriteMode)
				if err != nil {
					return err
				}
				if tr.ClientIndex() == tr.NumClients()-1 {
					lastIdx = tr.Comm().Rank()
				}
				buf := make([]byte, 512)
				for i := range buf {
					buf[i] = byte(tr.Comm().Rank()*13 + i)
				}
				if err := f.WriteAt(0, buf); err != nil {
					return err
				}
				return f.Close()
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = rep
		img := fs.Open("lww").Snapshot()[:512]
		for i := range img {
			if img[i] != byte(lastIdx*13+i) {
				t.Fatalf("round %d: byte %d = %d, want highest client rank %d's %d",
					round, i, img[i], lastIdx, byte(lastIdx*13+i))
			}
		}
	}
}

// TestDelegateBackpressure pins the admission window: with QueueDepth 1
// a client must stall on credits, and the bytes still land intact.
func TestDelegateBackpressure(t *testing.T) {
	const procs, servers = 4, 1
	const granule, fileBytes = int64(16), int64(16 * 64)
	_, img, stats, _ := delegateRun(t, procs, servers, 1, granule, fileBytes)
	for off := int64(0); off < fileBytes; off++ {
		if img[off] != expectByte(0, off) {
			t.Fatalf("file byte %d corrupted under backpressure", off)
		}
	}
	var stalls int64
	for _, st := range stats {
		stalls += st.CreditStalls
	}
	if stalls == 0 {
		t.Fatal("queue depth 1 never stalled a writer")
	}
}

// TestDelegateDeterministicImage runs the same seed twice and demands
// byte-identical images and identical server counters: arrival races must
// not leak into anything observable.
func TestDelegateDeterministicImage(t *testing.T) {
	const procs, servers = 8, 3
	const granule, fileBytes = int64(24), int64(24 * 80)
	_, img1, _, col1 := delegateRun(t, procs, servers, 2, granule, fileBytes)
	_, img2, _, col2 := delegateRun(t, procs, servers, 2, granule, fileBytes)
	if !bytes.Equal(img1, img2) {
		t.Fatal("same workload produced different file images")
	}
	s1, s2 := col1.Servers(), col2.Servers()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("server %d counters differ across runs:\n%+v\n%+v", s1[i].Rank, s1[i], s2[i])
		}
	}
}

// TestDelegateMultiFile holds two write-mode files open concurrently on
// every client, interleaves their writes, and checks both images and the
// independence of the per-file ledgers.
func TestDelegateMultiFile(t *testing.T) {
	const procs, servers = 6, 2
	const granule = int64(32)
	sizes := []int64{32 * 48, 32 * 24}
	m := cluster.Lonestar()
	m.CoresPerNode = 3
	fs := pfs.New(pfs.DefaultConfig())
	col := &Collector{}
	cfg := Config{
		ServerRanks: servers,
		TCIO:        tcio.Config{SegmentSize: 64, NumSegments: 8},
		Collect:     col,
	}
	type ledger struct{ a, b Stats }
	ledgers := make([]ledger, procs)
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: m, FS: fs}, func(c *mpi.Comm) error {
		return Run(c, cfg, func(tr *Tier) error {
			fa, err := tr.Open("multi-a", tcio.WriteMode)
			if err != nil {
				return err
			}
			fb, err := tr.Open("multi-b", tcio.WriteMode)
			if err != nil {
				return err
			}
			files := []*File{fa, fb}
			buf := make([]byte, granule)
			for fi, f := range files {
				for k := int64(tr.ClientIndex()); k*granule < sizes[fi]; k += int64(tr.NumClients()) {
					off := k * granule
					for i := range buf {
						buf[i] = expectByte(fi, off+int64(i))
					}
					// Interleave: write to the other file between writes.
					if err := f.WriteAt(off, buf); err != nil {
						return err
					}
				}
			}
			if err := fa.Flush(); err != nil {
				return err
			}
			if err := fb.Flush(); err != nil {
				return err
			}
			if err := fa.Close(); err != nil {
				return err
			}
			if err := fb.Close(); err != nil {
				return err
			}
			ledgers[c.Rank()] = ledger{a: fa.Stats(), b: fb.Stats()}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for fi, name := range []string{"multi-a", "multi-b"} {
		img := fs.Open(name).Snapshot()
		for off := int64(0); off < sizes[fi]; off++ {
			if img[off] != expectByte(fi, off) {
				t.Fatalf("%s byte %d = %d, want %d", name, off, img[off], expectByte(fi, off))
			}
		}
	}
	for r, l := range ledgers {
		if l.a.Writes == 0 {
			continue // server rank
		}
		if l.a.WriteBytes <= l.b.WriteBytes {
			t.Fatalf("rank %d: file-a ledger (%d bytes) not independent of file-b (%d bytes)",
				r, l.a.WriteBytes, l.b.WriteBytes)
		}
	}
}

// TestDelegateConfigValidation covers Run's rejection paths.
func TestDelegateConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"servers eat all ranks", Config{ServerRanks: 4}},
		{"negative servers", Config{ServerRanks: -1}},
		{"negative queue", Config{ServerRanks: 1, QueueDepth: -2}},
		{"negative domain", Config{ServerRanks: 1, DomainSize: -64}},
		{"bad tcio config", Config{ServerRanks: 1, TCIO: tcio.Config{SegmentSize: -1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := mpi.Run(mpi.Config{Procs: 4, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
				return Run(c, tc.cfg, func(*Tier) error { return nil })
			})
			if err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
