package delegate

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// readRunOpts parameterizes readWorkload.
type readRunOpts struct {
	procs      int
	servers    int
	domain     int64 // DomainSize (0 = 256)
	cacheBlks  int
	quantum    int64
	collective bool
	rounds     int   // read passes over the pattern (0 = 1)
	fileBlocks int64 // file size in domain blocks
	shared     bool  // true: every client reads every block; false: block-disjoint slices
	inject     *faults.Injector
	retry      *faults.RetryPolicy
	trace      *trace.Recorder
}

// readRunOut is one readWorkload execution's observables.
type readRunOut struct {
	rep     mpi.Report
	img     []byte
	stats   []Stats
	servers []ServerStats
	readErr error // first read error any rank observed (world still completed)
}

// readWorkload writes a file through the tier (fault-free writes), then
// runs `rounds` read passes with the configured read engine and verifies
// every byte. Reads are block-aligned: with shared=false client i reads
// exactly the blocks ≡ i (mod clients), so per-client fill identities
// never race; with shared=true every client reads every block — the
// cross-client overlap case. A read error in non-collective mode is
// recorded (not fatal) so the world shuts down cleanly and the test can
// assert on the error's type.
func readWorkload(t *testing.T, o readRunOpts) readRunOut {
	t.Helper()
	if o.domain == 0 {
		o.domain = 256
	}
	if o.rounds == 0 {
		o.rounds = 1
	}
	m := cluster.Lonestar()
	m.CoresPerNode = 4
	fscfg := pfs.DefaultConfig()
	fscfg.Faults = o.inject
	fs := pfs.New(fscfg)
	col := &Collector{}
	cfg := Config{
		ServerRanks:       o.servers,
		DomainSize:        o.domain,
		ServerCacheBlocks: o.cacheBlks,
		ReadQuantum:       o.quantum,
		TCIO: tcio.Config{
			SegmentSize: 64, NumSegments: 8,
			CollectiveRead: o.collective,
			Retry:          o.retry,
			Trace:          o.trace,
		},
		Collect: col,
	}
	out := readRunOut{stats: make([]Stats, o.procs)}
	readErrs := make([]error, o.procs)
	fileBytes := o.fileBlocks * o.domain
	rep, err := mpi.Run(mpi.Config{Procs: o.procs, Machine: m, FS: fs, Faults: o.inject}, func(c *mpi.Comm) error {
		return Run(c, cfg, func(tr *Tier) error {
			w, err := tr.Open("rd", tcio.WriteMode)
			if err != nil {
				return err
			}
			buf := make([]byte, o.domain)
			for blk := int64(tr.ClientIndex()); blk < o.fileBlocks; blk += int64(tr.NumClients()) {
				off := blk * o.domain
				for i := range buf {
					buf[i] = expectByte(0, off+int64(i))
				}
				if err := w.WriteAt(off, buf); err != nil {
					return err
				}
			}
			if err := w.Close(); err != nil {
				return err
			}
			r, err := tr.Open("rd", tcio.ReadMode)
			if err != nil {
				return err
			}
			// fail records a read error and shuts the rank down cleanly so
			// the world (and its stats) still completes; collective failures
			// propagate instead — a half-failed epoch has no clean exit.
			fail := func(err error) error {
				if o.collective {
					return err
				}
				readErrs[c.Rank()] = err
				out.stats[c.Rank()] = r.Stats()
				return r.Close()
			}
			type piece struct {
				off int64
				dst []byte
			}
			verify := func(round int, p piece) error {
				for i, got := range p.dst {
					if want := expectByte(0, p.off+int64(i)); got != want {
						return fmt.Errorf("client %d round %d byte %d: got %d want %d",
							tr.ClientIndex(), round, p.off+int64(i), got, want)
					}
				}
				return nil
			}
			for round := 0; round < o.rounds; round++ {
				var pieces []piece
				for blk := int64(0); blk < o.fileBlocks; blk++ {
					if !o.shared && blk%int64(tr.NumClients()) != int64(tr.ClientIndex()) {
						continue
					}
					p := piece{off: blk * o.domain, dst: make([]byte, o.domain)}
					if err := r.ReadAt(p.off, p.dst); err != nil {
						return fail(err)
					}
					if !o.collective {
						if err := verify(round, p); err != nil {
							return err
						}
						continue
					}
					pieces = append(pieces, p)
				}
				if err := r.Fetch(); err != nil {
					return fail(err)
				}
				for _, p := range pieces {
					if err := verify(round, p); err != nil {
						return err
					}
				}
			}
			out.stats[c.Rank()] = r.Stats()
			return r.Close()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	out.rep = rep
	out.img = fs.Open("rd").Snapshot()
	if int64(len(out.img)) > fileBytes {
		out.img = out.img[:fileBytes]
	}
	out.servers = col.Servers()
	for _, e := range readErrs {
		if e != nil {
			out.readErr = e
			break
		}
	}
	if out.readErr == nil {
		for off := int64(0); off < int64(len(out.img)); off++ {
			if out.img[off] != expectByte(0, off) {
				t.Fatalf("file byte %d = %d, want %d", off, out.img[off], expectByte(0, off))
			}
		}
	}
	return out
}

// TestDelegateReadPathDisarmed is the degenerate pin for the read engine:
// with ServerCacheBlocks == 0 and ReadQuantum == 0 the tier must keep the
// uncached per-request identity — every client read piece is exactly one
// file system read of exactly its length, all cache/epoch counters stay
// zero, no cache-serve events reach the trace, and two runs agree on
// every counter.
func TestDelegateReadPathDisarmed(t *testing.T) {
	run := func() (readRunOut, map[trace.Kind]trace.KindStats) {
		rec := &trace.Recorder{}
		o := readWorkload(t, readRunOpts{
			procs: 6, servers: 2, fileBlocks: 12, rounds: 2, trace: rec,
		})
		return o, rec.Summary()
	}
	o1, sum1 := run()
	o2, _ := run()

	var fsReads, pieces, pieceBytes int64
	for _, s := range o1.servers {
		if s.CacheHits+s.CacheMisses+s.CacheEvictions != 0 {
			t.Fatalf("server %d: disarmed cache counted %+v", s.Rank, s)
		}
		if s.ReadEpochs != 0 || s.CollectiveBlocks != 0 {
			t.Fatalf("server %d: disarmed collective counted %+v", s.Rank, s)
		}
		fsReads += s.FSReads
	}
	for _, st := range o1.stats {
		pieces += st.ReadReqs
		pieceBytes += st.ReadBytes
	}
	if fsReads != pieces || pieces == 0 {
		t.Fatalf("per-request identity broken: %d fs reads for %d client pieces", fsReads, pieces)
	}
	if o1.rep.FS.Reads != fsReads {
		t.Fatalf("file system saw %d reads, servers issued %d", o1.rep.FS.Reads, fsReads)
	}
	if o1.rep.FS.BytesRead != pieceBytes {
		t.Fatalf("file system read %d bytes, clients asked for %d", o1.rep.FS.BytesRead, pieceBytes)
	}
	if _, ok := sum1[trace.KindCacheServe]; ok {
		t.Fatal("disarmed run emitted cache-serve trace events")
	}
	if !bytes.Equal(o1.img, o2.img) {
		t.Fatal("two disarmed runs differ in file bytes")
	}
	for i := range o1.servers {
		if o1.servers[i] != o2.servers[i] {
			t.Fatalf("server %d counters differ across runs:\n%+v\n%+v",
				o1.servers[i].Rank, o1.servers[i], o2.servers[i])
		}
	}
}

// TestDelegateQuantumSchedulingIdentity pins that ReadQuantum changes
// only scheduling: the full server counter set, the file image, and the
// network totals must match the quantum-0 run exactly — the DRR loop may
// reorder service across clients but must not change what is served.
func TestDelegateQuantumSchedulingIdentity(t *testing.T) {
	base := readWorkload(t, readRunOpts{procs: 6, servers: 2, fileBlocks: 12, rounds: 2})
	drr := readWorkload(t, readRunOpts{procs: 6, servers: 2, fileBlocks: 12, rounds: 2, quantum: 128})
	if !bytes.Equal(base.img, drr.img) {
		t.Fatal("read quantum changed the file bytes")
	}
	// PeakOverlap and CongestedMsgs are concurrency gauges — how many
	// transfers happen to be in flight at once is exactly the scheduling
	// DRR is allowed to change — so the identity covers the counts only.
	bn, dn := base.rep.Net, drr.rep.Net
	bn.PeakOverlap, dn.PeakOverlap = 0, 0
	bn.CongestedMsgs, dn.CongestedMsgs = 0, 0
	if bn != dn {
		t.Fatalf("read quantum changed network totals:\nq=0 %+v\nq>0 %+v", bn, dn)
	}
	for i := range base.servers {
		if base.servers[i] != drr.servers[i] {
			t.Fatalf("server %d counters differ under DRR:\nq=0 %+v\nq>0 %+v",
				base.servers[i].Rank, base.servers[i], drr.servers[i])
		}
	}
}

// TestDelegateCacheCoherence drives the coherence protocol end to end on
// one server: a read fills the cache; a repeat read hits byte-exactly; a
// staged-but-undrained write forces the block to bypass the cache (the
// read still sees the pre-flush file bytes); the flush epoch writes the
// drained runs through; and the next read hits the updated entry.
func TestDelegateCacheCoherence(t *testing.T) {
	const ds = int64(256)
	m := cluster.Lonestar()
	m.CoresPerNode = 2
	fs := pfs.New(pfs.DefaultConfig())
	col := &Collector{}
	cfg := Config{
		ServerRanks: 1, DomainSize: ds, ServerCacheBlocks: 4,
		TCIO:    tcio.Config{SegmentSize: 64, NumSegments: 8},
		Collect: col,
	}
	mk := func(v byte) []byte {
		b := make([]byte, ds)
		for i := range b {
			b[i] = v + byte(i)
		}
		return b
	}
	_, err := mpi.Run(mpi.Config{Procs: 2, Machine: m, FS: fs}, func(c *mpi.Comm) error {
		return Run(c, cfg, func(tr *Tier) error {
			// Seed block 0 with version A and flush it to the file system.
			w, err := tr.Open("coh", tcio.WriteMode)
			if err != nil {
				return err
			}
			if err := w.WriteAt(0, mk(1)); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			r, err := tr.Open("coh", tcio.ReadMode)
			if err != nil {
				return err
			}
			dst := make([]byte, ds)
			expect := func(step string, want []byte) error {
				if err := r.ReadAt(0, dst); err != nil {
					return fmt.Errorf("%s: %w", step, err)
				}
				if !bytes.Equal(dst, want) {
					return fmt.Errorf("%s: read bytes diverge from expected image", step)
				}
				return nil
			}
			if err := expect("miss+fill", mk(1)); err != nil {
				return err
			}
			if err := expect("hit", mk(1)); err != nil {
				return err
			}
			// Stage version B without flushing: the block is dirty, so the
			// read must bypass the cache and still see A — the drain has not
			// run, and a stale cache serve of a half-applied state would be
			// the bug the dirty counter exists to prevent.
			if err := w.WriteAt(0, mk(2)); err != nil {
				return err
			}
			if err := expect("dirty bypass", mk(1)); err != nil {
				return err
			}
			if err := w.Flush(); err != nil { // drain + write-through
				return err
			}
			if err := expect("write-through hit", mk(2)); err != nil {
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			return r.Close()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := col.Servers()
	if len(ss) != 1 {
		t.Fatalf("collected %d servers, want 1", len(ss))
	}
	s := ss[0]
	// miss+fill, hit, dirty-bypass miss, write-through hit.
	if s.CacheHits != 2 || s.CacheMisses != 2 || s.CacheEvictions != 0 {
		t.Fatalf("cache counters hits=%d misses=%d evictions=%d, want 2/2/0",
			s.CacheHits, s.CacheMisses, s.CacheEvictions)
	}
	if s.ReadReqs != 4 || s.CacheHits+s.CacheMisses != s.ReadReqs {
		t.Fatalf("hits+misses != reads served: %+v", s)
	}
	// One whole-block fill plus one dirty-bypass per-request read.
	if s.FSReads != 2 {
		t.Fatalf("fs reads = %d, want 2 (one fill, one dirty bypass)", s.FSReads)
	}
}

// TestDelegateCacheHotReread pins the win the cache exists for: with the
// cache armed and every client re-reading the same blocks, the file
// system sees each block exactly once; disarmed, it sees every request.
func TestDelegateCacheHotReread(t *testing.T) {
	const blocks = 6
	cold := readWorkload(t, readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 3, shared: true})
	hot := readWorkload(t, readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 3, shared: true, cacheBlks: blocks})

	var coldReads, hotReads, hits, misses int64
	for _, s := range cold.servers {
		coldReads += s.FSReads
	}
	for _, s := range hot.servers {
		hotReads += s.FSReads
		hits += s.CacheHits
		misses += s.CacheMisses
	}
	const served = 4 * 3 * blocks // 4 clients × 3 rounds × blocks
	if coldReads != served {
		t.Fatalf("cold tier issued %d fs reads, want %d", coldReads, served)
	}
	if hotReads != blocks {
		t.Fatalf("hot cache issued %d fs reads, want one fill per block (%d)", hotReads, blocks)
	}
	if misses != blocks || hits != served-blocks {
		t.Fatalf("hits=%d misses=%d for %d served reads", hits, misses, int64(served))
	}
	if !bytes.Equal(cold.img, hot.img) {
		t.Fatal("cache changed file bytes")
	}
}

// TestDelegateCollectiveRead pins the delegated two-phase read: intents
// merge across clients, each requested block is fetched once per epoch in
// one coalesced batch, and with the cache armed later epochs are served
// from memory entirely.
func TestDelegateCollectiveRead(t *testing.T) {
	const blocks = int64(8)
	o := readWorkload(t, readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2, shared: true, collective: true})
	s := o.servers[0]
	if s.ReadReqs != 0 {
		t.Fatalf("collective mode served %d inline reads", s.ReadReqs)
	}
	// Two Fetch rounds stage the blocks; Close's final epoch is empty.
	if s.ReadEpochs != 3 {
		t.Fatalf("read epochs = %d, want 3 (2 rounds + close)", s.ReadEpochs)
	}
	if s.CollectiveBlocks != 2*blocks {
		t.Fatalf("collective blocks = %d, want %d", s.CollectiveBlocks, 2*blocks)
	}
	// Uncached: each epoch fetches the union once — 4 clients sharing the
	// pattern collapse to one fetch per block per epoch, not 4.
	if s.FSReads != 2*blocks {
		t.Fatalf("fs reads = %d, want %d (union per epoch)", s.FSReads, 2*blocks)
	}
	var clientPieces int64
	for _, st := range o.stats {
		clientPieces += st.ReadReqs
	}
	if clientPieces != 4*2*blocks {
		t.Fatalf("clients queued %d pieces, want %d", clientPieces, 4*2*blocks)
	}

	cached := readWorkload(t, readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2, shared: true, collective: true, cacheBlks: int(blocks)})
	cs := cached.servers[0]
	if cs.FSReads != blocks {
		t.Fatalf("cached collective fs reads = %d, want %d (round 2 all hits)", cs.FSReads, blocks)
	}
	if cs.CacheMisses != blocks || cs.CacheHits != blocks {
		t.Fatalf("cached collective hits=%d misses=%d, want %d each", cs.CacheHits, cs.CacheMisses, blocks)
	}
	if cs.CacheHits+cs.CacheMisses != cs.CollectiveBlocks {
		t.Fatalf("hits+misses != collective blocks: %+v", cs)
	}
}

// TestDelegateReadChaos is the read-path chaos suite: with OST read
// faults armed, fault and retry counts must be seed-deterministic across
// runs with the cache disarmed, armed, under DRR, and in collective mode.
// Non-shared patterns are block-disjoint per client and the cache never
// evicts, so fill identities cannot race.
func TestDelegateReadChaos(t *testing.T) {
	const blocks = 12
	cases := []struct {
		name string
		o    readRunOpts
	}{
		{"disarmed", readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2}},
		{"cached", readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2, cacheBlks: blocks}},
		{"cached-drr", readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2, cacheBlks: blocks, quantum: 64}},
		{"collective", readRunOpts{procs: 5, servers: 1, fileBlocks: blocks, rounds: 2, shared: true, collective: true, cacheBlks: blocks}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (readRunOut, int64) {
				inj := faults.New(1234)
				inj.Set(faults.SiteOSTRead, faults.Rule{Prob: 0.25})
				o := tc.o
				o.inject = inj
				out := readWorkload(t, o)
				if out.readErr != nil {
					t.Fatalf("read failed under the default retry policy: %v", out.readErr)
				}
				return out, inj.Injected(faults.SiteOSTRead)
			}
			o1, inj1 := run()
			o2, inj2 := run()
			if inj1 == 0 {
				t.Fatal("chaos run injected nothing")
			}
			if inj1 != inj2 {
				t.Fatalf("injected counts differ across runs: %d vs %d", inj1, inj2)
			}
			var retries int64
			for i := range o1.servers {
				if o1.servers[i] != o2.servers[i] {
					t.Fatalf("server %d counters differ across chaos runs:\n%+v\n%+v",
						o1.servers[i].Rank, o1.servers[i], o2.servers[i])
				}
				retries += o1.servers[i].Retries
			}
			if retries == 0 {
				t.Fatal("no retries absorbed despite injected faults")
			}
			if !bytes.Equal(o1.img, o2.img) {
				t.Fatal("chaos runs differ in file bytes")
			}
		})
	}
}

// TestDelegateReadExhaustedTyped pins the typed error path: with a
// zero-retry budget and a certain read fault, the client must surface
// faults.ErrExhaustedRetries through errors.Is — across the wire, where
// only the reply's code field can carry the class. Both the per-request
// path (cache disarmed) and the whole-block fill path (cache armed) must
// round-trip it.
func TestDelegateReadExhaustedTyped(t *testing.T) {
	for _, cacheBlks := range []int{0, 4} {
		t.Run(fmt.Sprintf("cache=%d", cacheBlks), func(t *testing.T) {
			pol := faults.NoRetry()
			inj := faults.New(7)
			inj.Set(faults.SiteOSTRead, faults.Rule{Prob: 1})
			o := readWorkload(t, readRunOpts{
				procs: 3, servers: 1, fileBlocks: 4,
				cacheBlks: cacheBlks, inject: inj, retry: &pol,
			})
			if o.readErr == nil {
				t.Fatal("certain fault with zero retries did not fail the read")
			}
			if !errors.Is(o.readErr, faults.ErrExhaustedRetries) {
				t.Fatalf("read error %v is not typed ErrExhaustedRetries", o.readErr)
			}
		})
	}
}
