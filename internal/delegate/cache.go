package delegate

// The server-side hot-block cache: an LRU of whole domain-block buffers,
// keyed by (file name, block), shared across every handle a server holds.
// A hit serves a repeat or cross-client read from server memory; a miss
// fills the whole block through the file system and caches it. Coherence
// is the server's job, not the cache's: blocks with staged-but-undrained
// writes are bypassed (the dirty counters in server.go), and closeEpoch
// writes drained runs through into live entries, so a read after a flush
// epoch never sees stale bytes.
//
// Buffers are drawn from the mpi size-classed pools; put and invalidate
// return the displaced buffer instead of recycling it, because the caller
// may still be serving replies out of it — the caller recycles once no
// reference remains.

import "container/list"

// blockKey names one domain block of one file.
type blockKey struct {
	name string
	blk  int64
}

type cacheEntry struct {
	key blockKey
	buf []byte
}

// blockCache is an LRU over domain-block buffers. Zero capacity means
// disabled; callers guard on that and never construct one.
type blockCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[blockKey]*list.Element
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[blockKey]*list.Element),
	}
}

// get returns the cached buffer for key and promotes it to most recently
// used.
func (c *blockCache) get(key blockKey) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).buf, true
}

// peek returns the cached buffer without touching recency — the
// write-through path updates bytes but must not let writes distort the
// read-driven LRU order.
func (c *blockCache) peek(key blockKey) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).buf, true
}

// put inserts buf for key as most recently used and returns any displaced
// buffer — the LRU victim when the cache is over capacity, or the key's
// previous buffer on replacement — for the caller to recycle once it
// holds no other reference. evicted reports whether the displacement was
// a capacity eviction (replacements are not).
func (c *blockCache) put(key blockKey, buf []byte) (displaced []byte, evicted bool) {
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		old := ent.buf
		ent.buf = buf
		c.order.MoveToFront(el)
		return old, false
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, buf: buf})
	if c.order.Len() <= c.cap {
		return nil, false
	}
	victim := c.order.Back()
	ent := victim.Value.(*cacheEntry)
	c.order.Remove(victim)
	delete(c.entries, ent.key)
	return ent.buf, true
}

// invalidate removes key, returning its buffer for the caller to recycle.
func (c *blockCache) invalidate(key blockKey) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, ent.key)
	return ent.buf, true
}

func (c *blockCache) len() int { return c.order.Len() }
