package delegate

import (
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

// benchTier runs body on a 2-rank world (one client, one server) and
// reports its allocations — the B/op meter for the server staging paths
// the size-classed pools exist to flatten.
func benchTier(b *testing.B, cacheBlks int, body func(tr *Tier) error) {
	b.Helper()
	b.ReportAllocs()
	m := cluster.Lonestar()
	m.CoresPerNode = 2
	cfg := Config{
		ServerRanks: 1, DomainSize: 4096, ServerCacheBlocks: cacheBlks,
		TCIO: tcio.Config{SegmentSize: 64, NumSegments: 8},
	}
	_, err := mpi.Run(mpi.Config{Procs: 2, Machine: m, FS: pfs.New(pfs.DefaultConfig())}, func(c *mpi.Comm) error {
		return Run(c, cfg, body)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDelegateReadStaging measures per-read allocations on the
// server's uncached per-request path: the reply staging buffer comes from
// the mpi pool, so steady state should allocate nothing per iteration
// beyond the protocol envelopes.
func BenchmarkDelegateReadStaging(b *testing.B) {
	benchTier(b, 0, func(tr *Tier) error {
		f, err := tr.Open("bench", tcio.ReadMode)
		if err != nil {
			return err
		}
		dst := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			// Cycle a few blocks; unwritten offsets zero-fill, which is all
			// the staging path needs to exercise its buffers.
			if err := f.ReadAt(int64(i%4)*4096, dst); err != nil {
				return err
			}
		}
		return f.Close()
	})
}

// BenchmarkDelegateCachedReadStaging is the hot-cache variant: after the
// first four fills every read serves zero-copy from a live cache entry.
func BenchmarkDelegateCachedReadStaging(b *testing.B) {
	benchTier(b, 4, func(tr *Tier) error {
		f, err := tr.Open("bench", tcio.ReadMode)
		if err != nil {
			return err
		}
		dst := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			if err := f.ReadAt(int64(i%4)*4096, dst); err != nil {
				return err
			}
		}
		return f.Close()
	})
}

// BenchmarkDelegateEpochStaging measures per-epoch allocations of the
// flush path: closeEpoch's per-block staging buffers are pooled, so the
// write→flush cycle should not grow with the block size.
func BenchmarkDelegateEpochStaging(b *testing.B) {
	benchTier(b, 0, func(tr *Tier) error {
		f, err := tr.Open("bench", tcio.WriteMode)
		if err != nil {
			return err
		}
		buf := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			if err := f.WriteAt(int64(i%4)*4096, buf); err != nil {
				return err
			}
			if err := f.Flush(); err != nil {
				return err
			}
		}
		return f.Close()
	})
}
