package delegate

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// degenerateRun executes a strided write+read workload either through
// delegate.Run with ServerRanks == 0 or directly through tcio, returning
// the report, file image, per-rank tcio stats, and the trace summary.
// overlap arms write-behind and prefetch on top of the base config.
func degenerateRun(t *testing.T, viaTier, overlap bool) (mpi.Report, []byte, []tcio.Stats, map[trace.Kind]trace.KindStats) {
	t.Helper()
	const procs = 6
	const segSize, numSeg, granule = int64(64), 4, int64(16)
	fileBytes := segSize * numSeg * procs
	m := cluster.Lonestar()
	m.CoresPerNode = 3
	fs := pfs.New(pfs.DefaultConfig())
	rec := &trace.Recorder{}
	tcfg := tcio.Config{
		SegmentSize: segSize, NumSegments: numSeg,
		Trace: rec,
	}
	if overlap {
		tcfg.WriteBehindThreshold = 0.5
		tcfg.PrefetchSegments = 2
	}
	stats := make([]tcio.Stats, procs)

	workload := func(c *mpi.Comm, open func(string, tcio.Mode) (*File, error)) error {
		f, err := open("degen", tcio.WriteMode)
		if err != nil {
			return err
		}
		buf := make([]byte, granule)
		for k := int64(c.Rank()); k*granule < fileBytes; k += int64(c.Size()) {
			off := k * granule
			for i := range buf {
				buf[i] = expectByte(0, off+int64(i))
			}
			if err := f.WriteAt(off, buf); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		r, err := open("degen", tcio.ReadMode)
		if err != nil {
			return err
		}
		n := fileBytes / int64(c.Size())
		dst := make([]byte, n)
		if err := r.ReadAt(int64(c.Rank())*n, dst); err != nil {
			return err
		}
		if err := r.Fetch(); err != nil {
			return err
		}
		for i := range dst {
			if want := expectByte(0, int64(c.Rank())*n+int64(i)); dst[i] != want {
				t.Errorf("rank %d read byte %d: got %d want %d", c.Rank(), i, dst[i], want)
				break
			}
		}
		stats[c.Rank()] = f.TCIO().Stats()
		return r.Close()
	}

	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: m, FS: fs}, func(c *mpi.Comm) error {
		if viaTier {
			return Run(c, Config{ServerRanks: 0, TCIO: tcfg}, func(tr *Tier) error {
				return workload(c, tr.Open)
			})
		}
		// Direct tcio, wrapped in the same File shape so workload and the
		// stats capture are byte-for-byte the same code path shape.
		open := func(name string, mode tcio.Mode) (*File, error) {
			df, err := tcio.Open(c, name, mode, tcfg)
			if err != nil {
				return nil, err
			}
			return &File{direct: df, name: name, mode: mode, handle: -1}, nil
		}
		return workload(c, open)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, fs.Open("degen").Snapshot(), stats, rec.Summary()
}

// dropDurations zeroes a ledger's virtual-duration aggregates, leaving
// the scheduling-independent counters.
func dropDurations(s tcio.Stats) tcio.Stats {
	s.LockWait, s.PutIssue, s.UnlockWait, s.OverlapSaved = 0, 0, 0, 0
	return s
}

// dropFSConflicts zeroes the file system's lock-conflict counter —
// whether two ranks' lock windows overlap is a queueing observation,
// not part of the request identity.
func dropFSConflicts(s pfs.Stats) pfs.Stats {
	s.LockConflicts = 0
	return s
}

// dropTraceDurations does the same for a trace summary.
func dropTraceDurations(sum map[trace.Kind]trace.KindStats) map[trace.Kind]trace.KindStats {
	out := make(map[trace.Kind]trace.KindStats, len(sum))
	for k, s := range sum {
		s.Dur = 0
		out[k] = s
	}
	return out
}

// TestDelegateDegeneratePassThrough pins the off switch: ServerRanks == 0
// must be bit-identical to not using the package. Bit-identical means the
// scheduling-independent request identity — file bytes, network totals,
// file system activity, per-rank tcio ledgers, trace profile — not
// virtual completion times: even two *direct* runs order same-time queue
// arrivals differently, so makespans are scheduling facts (the
// conformance summary excludes them for the same reason). With fractional
// write-behind armed (the overlap config) the eager-drain count is itself
// a scheduling fact, so only the byte totals, the read counts, and the
// EagerWrites + FlushResidue == FSWrites identity are pinned there.
func TestDelegateDegeneratePassThrough(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		name := "synchronous"
		if overlap {
			name = "overlap"
		}
		t.Run(name, func(t *testing.T) {
			repDirect, imgDirect, statsDirect, sumDirect := degenerateRun(t, false, overlap)
			repTier, imgTier, statsTier, sumTier := degenerateRun(t, true, overlap)

			if !bytes.Equal(imgDirect, imgTier) {
				t.Fatal("pass-through changed the file bytes")
			}
			if repDirect.Net != repTier.Net {
				t.Fatalf("pass-through changed network totals:\ndirect %+v\ntier   %+v", repDirect.Net, repTier.Net)
			}
			if overlap {
				d, ti := repDirect.FS, repTier.FS
				if d.Reads != ti.Reads || d.BytesRead != ti.BytesRead || d.BytesWritten != ti.BytesWritten {
					t.Fatalf("pass-through changed file system bytes:\ndirect %+v\ntier   %+v", d, ti)
				}
				for r, s := range statsTier {
					if s.EagerWrites+s.FlushResidue != s.FSWrites {
						t.Fatalf("rank %d tier ledger broken: EagerWrites %d + FlushResidue %d != FSWrites %d",
							r, s.EagerWrites, s.FlushResidue, s.FSWrites)
					}
				}
				return
			}
			if dropFSConflicts(repDirect.FS) != dropFSConflicts(repTier.FS) {
				t.Fatalf("pass-through changed file system activity:\ndirect %+v\ntier   %+v", repDirect.FS, repTier.FS)
			}
			for r := range statsDirect {
				// The duration aggregates (LockWait etc.) are queue-wait
				// sums, scheduling facts like the makespan; the counters
				// are the request identity.
				d, ti := dropDurations(statsDirect[r]), dropDurations(statsTier[r])
				if d != ti {
					t.Fatalf("rank %d ledger differs:\ndirect %+v\ntier   %+v", r, d, ti)
				}
			}
			if !reflect.DeepEqual(dropTraceDurations(sumDirect), dropTraceDurations(sumTier)) {
				t.Fatalf("trace profile differs:\ndirect %+v\ntier   %+v", sumDirect, sumTier)
			}
		})
	}
}
