package delegate

import (
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/mpi"
)

// refDRR is an independent deficit-round-robin oracle: the textbook
// formulation over a list of per-client queues, written without the
// incremental bookkeeping the production scheduler uses. Both must emit
// identical service orders for identical arrivals.
type refDRR struct {
	quantum int64
	ranks   []int
	queues  map[int][]*mpi.RPCRequest
	deficit map[int]int64
	n       int
}

func newRefDRR(quantum int64) *refDRR {
	return &refDRR{quantum: quantum, queues: make(map[int][]*mpi.RPCRequest), deficit: make(map[int]int64)}
}

func (d *refDRR) push(rank int, req *mpi.RPCRequest) {
	if _, ok := d.queues[rank]; !ok {
		d.ranks = append(d.ranks, rank)
		for i := len(d.ranks) - 1; i > 0 && d.ranks[i-1] > d.ranks[i]; i-- {
			d.ranks[i-1], d.ranks[i] = d.ranks[i], d.ranks[i-1]
		}
	}
	d.queues[rank] = append(d.queues[rank], req)
	d.n++
}

func (d *refDRR) round() []*mpi.RPCRequest {
	var out []*mpi.RPCRequest
	for d.n > 0 && len(out) == 0 {
		for _, r := range d.ranks {
			q := d.queues[r]
			if len(q) == 0 {
				continue
			}
			d.deficit[r] += d.quantum
			for len(q) > 0 && q[0].Len <= d.deficit[r] {
				d.deficit[r] -= q[0].Len
				out = append(out, q[0])
				q = q[1:]
				d.n--
			}
			d.queues[r] = q
			if len(q) == 0 {
				d.deficit[r] = 0
			}
		}
	}
	return out
}

// TestDRRMatchesOracle feeds identical randomized arrival patterns to the
// production scheduler and the reference oracle, interleaving pushes and
// rounds, and demands identical service orders throughout.
func TestDRRMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		quantum := int64(1 + rng.Intn(4096))
		got, want := newDRR(quantum), newRefDRR(quantum)
		clients := 1 + rng.Intn(6)
		for step := 0; step < 200; step++ {
			if rng.Intn(3) > 0 || got.pending() == 0 {
				rank := rng.Intn(clients) * 2 // sparse ranks
				req := &mpi.RPCRequest{Client: rank, Seq: int64(step), Len: int64(1 + rng.Intn(8192))}
				got.push(rank, req)
				want.push(rank, req)
				continue
			}
			g, w := got.round(), want.round()
			if len(g) != len(w) {
				t.Fatalf("seed %d step %d: round served %d, oracle %d", seed, step, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("seed %d step %d: service order diverges at %d: got (c%d seq%d), oracle (c%d seq%d)",
						seed, step, i, g[i].Client, g[i].Seq, w[i].Client, w[i].Seq)
				}
			}
		}
		for got.pending() > 0 {
			g, w := got.round(), want.round()
			if len(g) != len(w) {
				t.Fatalf("seed %d drain: served %d, oracle %d", seed, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("seed %d drain diverges", seed)
				}
			}
		}
		if want.n != 0 {
			t.Fatalf("seed %d: oracle still holds %d requests", seed, want.n)
		}
	}
}

// TestDRRFairnessAndOrder pins the two contracts the server relies on:
// per-client FIFO is preserved, and a client issuing small reads is
// served every round even while another client's large reads drain.
func TestDRRFairnessAndOrder(t *testing.T) {
	const quantum = 1024
	d := newDRR(quantum)
	// Client 0: four large reads; client 1: four small reads.
	for i := 0; i < 4; i++ {
		d.push(0, &mpi.RPCRequest{Client: 0, Seq: int64(i), Len: 4096})
		d.push(1, &mpi.RPCRequest{Client: 1, Seq: int64(i), Len: 64})
	}
	var order []*mpi.RPCRequest
	rounds := 0
	for d.pending() > 0 {
		batch := d.round()
		if len(batch) == 0 {
			t.Fatal("non-empty scheduler served nothing")
		}
		order = append(order, batch...)
		rounds++
	}
	// All of client 1's small reads must complete before client 0's first
	// large read has earned its 4 quanta of deficit.
	lastSmall, firstLarge := -1, len(order)
	seq := map[int]int64{}
	for i, req := range order {
		if want := seq[req.Client]; req.Seq != want {
			t.Fatalf("client %d served seq %d before %d", req.Client, req.Seq, want)
		}
		seq[req.Client]++
		if req.Client == 1 {
			lastSmall = i
		} else if i < firstLarge {
			firstLarge = i
		}
	}
	if lastSmall > firstLarge {
		t.Fatalf("small reads starved: last small at %d, first large at %d", lastSmall, firstLarge)
	}
	if rounds < 4 {
		t.Fatalf("large reads served in %d rounds; quantum not enforced", rounds)
	}
}
