package delegate

// The client side of the tier: a Tier handle per client rank, and a File
// per open file. A client never touches the file system in delegation
// mode — every byte rides the request protocol to the owning server.
// One rank may hold many files open at once; handles are the ordinal of
// the collective Open call, so all clients agree on them without an
// extra collective, and each File keeps its own position, counters, and
// protocol state.

import (
	"fmt"
	"io"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/tcio"
)

// Tier is one client rank's view of the delegation tier.
type Tier struct {
	c       *mpi.Comm
	cfg     Config
	tcfg    tcio.Config
	servers []int // nil => pass-through

	// clientIdx is this rank's index among the client ranks; clients is
	// their count. In pass-through mode these are just Rank and Size.
	clientIdx int
	clients   int

	// seqs numbers this client's requests per server; the server sorts an
	// epoch's staged writes by (client, seq), so the pair must be unique
	// and monotone per (client, server) stream.
	seqs []int64
	// credits is the remaining admission window per server. A write
	// consumes one; the server grants it back once the record is staged.
	credits []int

	nextHandle int32
}

// Comm returns the communicator the tier runs on.
func (t *Tier) Comm() *mpi.Comm { return t.c }

// ClientIndex is this rank's dense index among the client ranks, and
// NumClients their count — the pair applications decompose work over, so
// withdrawing ranks to serve does not leave holes in the work mapping.
func (t *Tier) ClientIndex() int { return t.clientIdx }
func (t *Tier) NumClients() int  { return t.clients }

// Stats counts one client file's activity. In delegation mode the
// request counters describe protocol traffic; in pass-through mode only
// the call counters are populated (the tcio ledger lives on TCIO()).
type Stats struct {
	// Writes and WriteBytes count application write calls and their bytes.
	Writes, WriteBytes int64
	// Reads and ReadBytes count application read calls and their bytes.
	Reads, ReadBytes int64
	// WriteReqs and ReadReqs count protocol requests sent (domain pieces).
	WriteReqs, ReadReqs int64
	// CreditStalls counts writes that blocked on an exhausted admission
	// window before they could be sent — the backpressure events.
	CreditStalls int64
	// Flushes counts flush epochs this file participated in.
	Flushes int64
}

// File is one open file on one client rank.
type File struct {
	t      *Tier
	direct *tcio.File // pass-through engine; nil in delegation mode

	handle int32
	name   string
	mode   tcio.Mode
	pos    int64
	closed bool
	stats  Stats

	// colReads queues read pieces per server index between collective
	// points when collectiveRead is armed; Fetch ships them as intents
	// and scatters the replies.
	colReads [][]colRead
}

// colRead is one queued collective read piece (within one domain block).
type colRead struct {
	off int64
	dst []byte
}

// Open opens name on every server (or directly through tcio in
// pass-through mode). Open is collective over the client ranks: all
// clients must open the same files in the same order, which is what
// makes the handle — the call ordinal — agree everywhere for free.
func (t *Tier) Open(name string, mode tcio.Mode) (*File, error) {
	if mode != tcio.WriteMode && mode != tcio.ReadMode {
		return nil, fmt.Errorf("delegate: open %q: bad mode %v", name, mode)
	}
	if t.servers == nil {
		df, err := tcio.Open(t.c, name, mode, t.cfg.TCIO)
		if err != nil {
			return nil, err
		}
		return &File{t: t, direct: df, name: name, mode: mode, handle: -1}, nil
	}
	h := t.nextHandle
	t.nextHandle++
	for si := range t.servers {
		if err := t.request(si, &mpi.RPCRequest{
			Op: mpi.OpOpen, Handle: h, Off: int64(mode), Data: []byte(name),
		}); err != nil {
			return nil, err
		}
	}
	return &File{t: t, handle: h, name: name, mode: mode}, nil
}

// request sends one protocol message to server si, consuming a sequence
// number (opens and flushes are ordered in the same per-server stream as
// writes, which is what lets the server trust FIFO delivery instead of
// acknowledging opens).
func (t *Tier) request(si int, req *mpi.RPCRequest) error {
	req.Seq = t.seqs[si]
	t.seqs[si]++
	return t.c.SendRequest(t.servers[si], tagRequest, req)
}

// owner maps a file offset to the index (into t.servers) of the server
// whose domain holds it.
func (t *Tier) owner(off int64) int {
	return int((off / t.cfg.DomainSize) % int64(len(t.servers)))
}

// collectiveRead reports whether delegated reads run collectively: the
// tier is delegated and the tcio CollectiveRead knob is armed, which
// moves the two-phase intent exchange server-side (see readepoch.go).
func (t *Tier) collectiveRead() bool {
	return t.servers != nil && t.tcfg.CollectiveRead
}

// replyErr turns a failed reply into a client error, resurrecting the
// typed exhausted-retries class from the wire code so callers keep their
// errors.Is(err, faults.ErrExhaustedRetries) checks across the protocol.
func replyErr(op, name string, rep *mpi.RPCReply) error {
	if rep.Code == mpi.RPCErrExhausted {
		return fmt.Errorf("delegate: %s %q: %w (server: %s)",
			op, name, faults.ErrExhaustedRetries, rep.Err)
	}
	return fmt.Errorf("delegate: %s %q: %s", op, name, rep.Err)
}

// Name reports the file name. Handle reports the protocol handle (-1 in
// pass-through mode).
func (f *File) Name() string  { return f.name }
func (f *File) Handle() int32 { return f.handle }

// TCIO exposes the pass-through engine, nil in delegation mode — callers
// that want the tcio ledger (EagerWrites + FlushResidue == FSWrites and
// friends) read it here.
func (f *File) TCIO() *tcio.File { return f.direct }

// Stats returns the client-side counters.
func (f *File) Stats() Stats { return f.stats }

// Seek repositions the file pointer, as io.Seeker does.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.direct != nil {
		pos, err := f.direct.Seek(offset, whence)
		f.pos = pos
		return pos, err
	}
	switch whence {
	case io.SeekStart:
		// offset stands alone
	case io.SeekCurrent:
		offset += f.pos
	default:
		return f.pos, fmt.Errorf("delegate: seek whence %d", whence)
	}
	if offset < 0 {
		return f.pos, fmt.Errorf("delegate: seek to %d", offset)
	}
	f.pos = offset
	return f.pos, nil
}

// Write stores data at the file pointer and advances it. In delegation
// mode the data is split at domain-block boundaries and each piece ships
// to its owning server, blocking only when the admission window to that
// server is exhausted.
func (f *File) Write(data []byte) error {
	err := f.WriteAt(f.pos, data)
	if err == nil {
		f.pos += int64(len(data))
	}
	return err
}

// WriteAt stores data at an explicit offset without moving the pointer.
func (f *File) WriteAt(off int64, data []byte) error {
	if f.direct != nil {
		f.stats.Writes++
		f.stats.WriteBytes += int64(len(data))
		return f.direct.WriteAt(off, data)
	}
	if f.closed {
		return fmt.Errorf("delegate: write to closed %q", f.name)
	}
	if f.mode != tcio.WriteMode {
		return fmt.Errorf("delegate: write to read-mode %q", f.name)
	}
	f.stats.Writes++
	f.stats.WriteBytes += int64(len(data))
	t := f.t
	ds := t.cfg.DomainSize
	for len(data) > 0 {
		n := (off/ds+1)*ds - off // bytes left in this domain block
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		si := t.owner(off)
		for t.credits[si] == 0 {
			// Window exhausted: block for one grant from this server.
			if _, err := t.c.Recv(t.servers[si], tagCredit); err != nil {
				return err
			}
			t.credits[si]++
			f.stats.CreditStalls++
		}
		t.credits[si]--
		if err := t.request(si, &mpi.RPCRequest{
			Op: mpi.OpWrite, Handle: f.handle, Off: off, Len: n, Data: data[:n],
		}); err != nil {
			return err
		}
		f.stats.WriteReqs++
		off += n
		data = data[n:]
	}
	return nil
}

// Read returns n bytes from the file pointer and advances it. Delegated
// reads are synchronous — the returned buffer is already filled — unless
// collective reads are armed (delegation + CollectiveRead), which makes
// them lazy like tcio's read queue: call Fetch before relying on the
// bytes. (Pass-through keeps tcio's lazy semantics throughout.)
func (f *File) Read(n int64) ([]byte, error) {
	if f.direct != nil {
		f.stats.Reads++
		f.stats.ReadBytes += n
		buf, err := f.direct.Read(n)
		f.pos += n
		return buf, err
	}
	buf := make([]byte, n)
	if err := f.ReadAt(f.pos, buf); err != nil {
		return nil, err
	}
	f.pos += n
	return buf, nil
}

// ReadAt fills dst from an explicit offset without moving the pointer.
func (f *File) ReadAt(off int64, dst []byte) error {
	if f.direct != nil {
		f.stats.Reads++
		f.stats.ReadBytes += int64(len(dst))
		return f.direct.ReadAt(off, dst)
	}
	if f.closed {
		return fmt.Errorf("delegate: read from closed %q", f.name)
	}
	if f.mode != tcio.ReadMode {
		return fmt.Errorf("delegate: read from write-mode %q", f.name)
	}
	f.stats.Reads++
	f.stats.ReadBytes += int64(len(dst))
	t := f.t
	ds := t.cfg.DomainSize
	if t.collectiveRead() {
		// Collective mode: queue the pieces; Fetch is the collective
		// point that ships them as read intents.
		if f.colReads == nil {
			f.colReads = make([][]colRead, len(t.servers))
		}
		for len(dst) > 0 {
			n := (off/ds+1)*ds - off
			if n > int64(len(dst)) {
				n = int64(len(dst))
			}
			si := t.owner(off)
			f.colReads[si] = append(f.colReads[si], colRead{off: off, dst: dst[:n]})
			f.stats.ReadReqs++
			off += n
			dst = dst[n:]
		}
		return nil
	}
	// Ship every piece before collecting: per-(client, server) FIFO in
	// both directions means replies come back in request order, so the
	// pieces pipeline across servers instead of round-tripping one by one.
	type pending struct {
		si  int
		seq int64
		dst []byte
	}
	var reqs []pending
	for len(dst) > 0 {
		n := (off/ds+1)*ds - off
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		si := t.owner(off)
		seq := t.seqs[si]
		if err := t.request(si, &mpi.RPCRequest{
			Op: mpi.OpRead, Handle: f.handle, Off: off, Len: n,
		}); err != nil {
			return err
		}
		f.stats.ReadReqs++
		reqs = append(reqs, pending{si: si, seq: seq, dst: dst[:n]})
		off += n
		dst = dst[n:]
	}
	for _, p := range reqs {
		rep, err := t.c.RecvReply(t.servers[p.si], tagReply)
		if err != nil {
			return err
		}
		if !rep.OK {
			return replyErr("read", f.name, rep)
		}
		if rep.Seq != p.seq || len(rep.Data) != len(p.dst) {
			return fmt.Errorf("delegate: read %q: reply seq %d len %d, want seq %d len %d",
				f.name, rep.Seq, len(rep.Data), p.seq, len(p.dst))
		}
		copy(p.dst, rep.Data)
	}
	return nil
}

// Fetch materializes queued lazy reads. In pass-through mode it defers
// to tcio; with collective reads armed it is the collective point that
// runs one delegated read epoch (every client of the file must call it,
// even with nothing queued — the server's epoch quorum is all clients);
// otherwise delegated reads are synchronous and it is a no-op.
func (f *File) Fetch() error {
	if f.direct != nil {
		return f.direct.Fetch()
	}
	if f.t.collectiveRead() && f.mode == tcio.ReadMode {
		return f.fetchCollective()
	}
	return nil
}

// fetchCollective runs one collective read epoch: one intent per server
// (empty ones included, completing the quorum), then replies collected in
// server order and scattered back into the queued pieces' buffers.
func (f *File) fetchCollective() error {
	t := f.t
	if f.colReads == nil {
		f.colReads = make([][]colRead, len(t.servers))
	}
	seqs := make([]int64, len(t.servers))
	for si := range t.servers {
		runs := make([]extent.Extent, len(f.colReads[si]))
		for i, p := range f.colReads[si] {
			runs[i] = extent.Extent{Off: p.off, Len: int64(len(p.dst))}
		}
		seqs[si] = t.seqs[si]
		if err := t.request(si, &mpi.RPCRequest{
			Op: mpi.OpReadIntent, Handle: f.handle, Data: encodeIntent(runs),
		}); err != nil {
			return err
		}
	}
	for si := range t.servers {
		rep, err := t.c.RecvReply(t.servers[si], tagReply)
		if err != nil {
			return err
		}
		if !rep.OK {
			return replyErr("read", f.name, rep)
		}
		var want int
		for _, p := range f.colReads[si] {
			want += len(p.dst)
		}
		if rep.Seq != seqs[si] || len(rep.Data) != want {
			return fmt.Errorf("delegate: read %q: intent reply seq %d len %d, want seq %d len %d",
				f.name, rep.Seq, len(rep.Data), seqs[si], want)
		}
		pos := 0
		for _, p := range f.colReads[si] {
			pos += copy(p.dst, rep.Data[pos:pos+len(p.dst)])
		}
		f.colReads[si] = f.colReads[si][:0]
	}
	return nil
}

// Flush closes a write epoch: the client drains its admission windows,
// sends a flush marker to every server, and waits for each server's ack,
// which the server sends only after the epoch's sorted writes hit the
// file system. Flush is collective over the clients that opened the file
// — a server closes the epoch when it holds markers from all of them.
func (f *File) Flush() error {
	if f.direct != nil {
		return f.direct.Flush()
	}
	if f.closed {
		return fmt.Errorf("delegate: flush of closed %q", f.name)
	}
	if f.mode != tcio.WriteMode {
		return nil
	}
	t := f.t
	for si := range t.servers {
		// Reclaim outstanding grants so the window is full again; the
		// marker follows the last write in the same FIFO stream, so no
		// separate write-completion handshake is needed.
		for t.credits[si] < t.cfg.QueueDepth {
			if _, err := t.c.Recv(t.servers[si], tagCredit); err != nil {
				return err
			}
			t.credits[si]++
		}
		if err := t.request(si, &mpi.RPCRequest{Op: mpi.OpFlush, Handle: f.handle}); err != nil {
			return err
		}
	}
	for si := range t.servers {
		rep, err := t.c.RecvReply(t.servers[si], tagReply)
		if err != nil {
			return err
		}
		if !rep.OK {
			return replyErr("flush", f.name, rep)
		}
	}
	f.stats.Flushes++
	return nil
}

// Close flushes (write mode) and releases the handle on every server.
func (f *File) Close() error {
	if f.direct != nil {
		return f.direct.Close()
	}
	if f.closed {
		return fmt.Errorf("delegate: double close of %q", f.name)
	}
	if f.mode == tcio.WriteMode {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	t := f.t
	if f.mode == tcio.ReadMode && t.collectiveRead() {
		// One final collective epoch materializes any still-queued reads
		// and keeps every server's quorum complete — Close is collective
		// over the clients, like Open.
		if err := f.fetchCollective(); err != nil {
			return err
		}
	}
	for si := range t.servers {
		if err := t.request(si, &mpi.RPCRequest{Op: mpi.OpClose, Handle: f.handle}); err != nil {
			return err
		}
	}
	f.closed = true
	return nil
}

// shutdown retires this client from every server's request loop.
func (t *Tier) shutdown() error {
	for si := range t.servers {
		if err := t.request(si, &mpi.RPCRequest{Op: mpi.OpShutdown}); err != nil {
			return err
		}
	}
	return nil
}
