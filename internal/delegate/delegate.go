// Package delegate adds an I/O delegation tier in front of tcio: a
// configurable number of ranks leave the application and become dedicated
// I/O servers, each owning a block-cyclic slice of every open file's
// offset space (its file domains). Client ranks ship writes to the owning
// server over a typed request/reply protocol (mpi.RPCRequest); servers
// stage them per domain block and drain one coalesced batch per flush
// epoch, so many small strided client writes reach the file system as few
// long runs — the delegation counterpart of the paper's two-level
// buffering, with the aggregation moved off the compute ranks entirely.
//
// Determinism. Request arrival order at a server races (clients run as
// goroutines), so the server never applies writes in arrival order: it
// stages them and, when a flush closes the epoch, sorts the staged
// records by (client rank, per-client sequence) before applying
// last-write-wins into the domain blocks. The drained batch and the final
// file image are therefore pure functions of the program, independent of
// scheduling. Flow control is a per-(client, server) credit window of
// QueueDepth outstanding writes — admission control that bounds server
// staging without timestamps.
//
// With ServerRanks == 0 the tier is a pass-through: Open returns a handle
// backed directly by tcio.Open with the caller's Config, every rank is a
// client, and the run is bit-identical to not using the package at all
// (pinned by TestDelegateDegeneratePassThrough).
package delegate

import (
	"fmt"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/tcio"
)

// Message tags of the delegation protocol, in the user tag space but high
// enough not to collide with application tags.
const (
	tagRequest = 1<<20 + iota // client -> server requests
	tagCredit                 // server -> client write-window grants
	tagReply                  // server -> client flush acks and read data
)

// serverPerReq is the service time a server charges per request before
// handling it — the cost of the admission queue's bookkeeping.
const serverPerReq = 1 * simtime.Microsecond

// Config parameterizes the tier.
type Config struct {
	// ServerRanks is the number of ranks withdrawn from the application
	// to run as dedicated I/O servers. 0 disables the tier entirely.
	ServerRanks int
	// QueueDepth bounds the outstanding unacknowledged writes each client
	// may have at each server (the admission window). 0 means 8.
	QueueDepth int
	// DomainSize is the block-cyclic file-domain granularity: the server
	// owning offset off is servers[(off/DomainSize) % len(servers)].
	// 0 means four tcio segments, so one domain block spans several
	// segment drains' worth of coalescing opportunity.
	DomainSize int64
	// ServerCacheBlocks is each server's hot-block cache capacity in
	// domain blocks: repeat and cross-client reads of a cached block are
	// served from server memory instead of the file system. 0 disables
	// the cache, leaving the read path's request identity bit-identical
	// to the uncached tier (pinned by TestDelegateReadPathDisarmed).
	ServerCacheBlocks int
	// ReadQuantum is the deficit-round-robin quantum, in bytes, for fair
	// read scheduling across client ranks: servers queue read requests
	// and drain them between writes, granting each client quantum bytes
	// of deficit per round, so one client's large sieved reads cannot
	// starve another's small reads. 0 serves each read inline in arrival
	// order, exactly as before.
	ReadQuantum int64
	// TCIO configures the pass-through engine (ServerRanks == 0) and
	// supplies the segment geometry DomainSize defaults from.
	TCIO tcio.Config
	// Collect, when non-nil, receives every server's final counters.
	Collect *Collector
}

// Run executes body on every client rank of c, with cfg.ServerRanks ranks
// (chosen by cluster.SpreadServers) serving the delegation protocol
// instead. All ranks of the communicator must call Run collectively. When
// body returns on a client, the client releases its servers; Run returns
// on servers once every client has done so. With ServerRanks == 0 every
// rank is a client and body runs everywhere.
func Run(c *mpi.Comm, cfg Config, body func(*Tier) error) error {
	if cfg.ServerRanks < 0 || cfg.ServerRanks >= c.Size() {
		return fmt.Errorf("delegate: %d server ranks of %d", cfg.ServerRanks, c.Size())
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("delegate: queue depth %d", cfg.QueueDepth)
	}
	if cfg.DomainSize < 0 {
		return fmt.Errorf("delegate: domain size %d", cfg.DomainSize)
	}
	if cfg.ServerCacheBlocks < 0 {
		return fmt.Errorf("delegate: server cache blocks %d", cfg.ServerCacheBlocks)
	}
	if cfg.ReadQuantum < 0 {
		return fmt.Errorf("delegate: read quantum %d", cfg.ReadQuantum)
	}
	if cfg.ServerRanks == 0 {
		// Pass-through: no protocol, no placement, no extra collectives —
		// the degenerate configuration must stay bit-identical to direct
		// tcio use.
		return body(&Tier{c: c, cfg: cfg, clientIdx: c.Rank(), clients: c.Size()})
	}
	tcfg, err := cfg.TCIO.Normalize(c.FS().Config().StripeSize)
	if err != nil {
		return err
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	if cfg.DomainSize == 0 {
		cfg.DomainSize = 4 * tcfg.SegmentSize
	}
	servers := c.Machine().SpreadServers(c.Size(), cfg.ServerRanks)
	for _, s := range servers {
		if s == c.Rank() {
			return serve(c, cfg, tcfg, servers)
		}
	}
	// My index among the client ranks (the ranks not serving), so work
	// decomposition over clients needs no communication.
	idx := c.Rank()
	for _, s := range servers {
		if s < c.Rank() {
			idx--
		}
	}
	t := &Tier{
		c:         c,
		cfg:       cfg,
		tcfg:      tcfg,
		servers:   servers,
		clientIdx: idx,
		clients:   c.Size() - len(servers),
		seqs:      make([]int64, len(servers)),
		credits:   make([]int, len(servers)),
	}
	for i := range t.credits {
		t.credits[i] = cfg.QueueDepth
	}
	if err := body(t); err != nil {
		return err
	}
	return t.shutdown()
}

// IsDelegated reports whether the tier runs the delegation protocol
// (false in ServerRanks == 0 pass-through).
func (t *Tier) IsDelegated() bool { return len(t.servers) > 0 }

// Servers returns the server rank set (nil in pass-through).
func (t *Tier) Servers() []int { return append([]int(nil), t.servers...) }
