package delegate

import "testing"

func ck(blk int64) blockKey { return blockKey{name: "f", blk: blk} }

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(2)
	if _, ok := c.get(ck(0)); ok {
		t.Fatal("empty cache hit")
	}
	b0, b1, b2 := []byte{0}, []byte{1}, []byte{2}
	if d, ev := c.put(ck(0), b0); d != nil || ev {
		t.Fatal("insert under capacity displaced")
	}
	if d, ev := c.put(ck(1), b1); d != nil || ev {
		t.Fatal("insert at capacity displaced")
	}
	// Touch 0 so 1 becomes the LRU victim.
	if got, ok := c.get(ck(0)); !ok || &got[0] != &b0[0] {
		t.Fatal("get(0) missed or returned wrong buffer")
	}
	d, ev := c.put(ck(2), b2)
	if !ev || &d[0] != &b1[0] {
		t.Fatalf("expected eviction of LRU buffer 1, got evicted=%v", ev)
	}
	if _, ok := c.get(ck(1)); ok {
		t.Fatal("evicted key still resident")
	}
	for _, blk := range []int64{0, 2} {
		if _, ok := c.get(ck(blk)); !ok {
			t.Fatalf("block %d should be resident", blk)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestBlockCacheReplaceAndInvalidate(t *testing.T) {
	c := newBlockCache(2)
	b0, b0v2 := []byte{0}, []byte{10}
	c.put(ck(0), b0)
	// Replacement displaces the old buffer without counting as eviction.
	d, ev := c.put(ck(0), b0v2)
	if ev || &d[0] != &b0[0] {
		t.Fatalf("replace: evicted=%v, displaced wrong buffer", ev)
	}
	if got, _ := c.get(ck(0)); &got[0] != &b0v2[0] {
		t.Fatal("replace did not install the new buffer")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after replace, want 1", c.len())
	}
	// peek must not promote: after peeking 0, inserting two more evicts 0
	// first if 0 stayed least-recent... fill to capacity, peek the LRU,
	// insert: the peeked entry must still be the victim.
	b1, b2 := []byte{1}, []byte{2}
	c.put(ck(1), b1)
	c.get(ck(1)) // 0 is LRU
	if _, ok := c.peek(ck(0)); !ok {
		t.Fatal("peek missed")
	}
	if d, ev := c.put(ck(2), b2); !ev || &d[0] != &b0v2[0] {
		t.Fatal("peek promoted the LRU entry")
	}
	buf, ok := c.invalidate(ck(1))
	if !ok || &buf[0] != &b1[0] {
		t.Fatal("invalidate returned wrong buffer")
	}
	if _, ok := c.get(ck(1)); ok {
		t.Fatal("invalidated key still resident")
	}
	if _, ok := c.invalidate(ck(1)); ok {
		t.Fatal("double invalidate succeeded")
	}
}
