package delegate

// Delegated collective reads: the server-side half of tcio's two-phase
// read exchange. When the tier is delegated and the tcio CollectiveRead
// knob is armed, clients stop shipping one OpRead per domain piece and
// instead queue pieces locally; Fetch becomes the collective point where
// every client ships its read-intent vector (fixed-width off/len runs)
// to every server in one OpReadIntent. A server holds the intents until
// all clients have contributed — the same static quorum flush epochs use
// — then closes the read epoch: it merges the union of requested blocks
// across clients, stages each block once through the hot-block cache,
// fetches the missing blocks in one coalesced ReadExtents batch
// (mirroring closeEpoch's write shape), and replies to each client in
// sorted rank order. N clients re-reading the same blocks cost one file
// system fetch, not N.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
)

// intentRunWire is the wire width of one read-intent run: off and len,
// both int64 little-endian.
const intentRunWire = 16

// encodeIntent packs runs into an OpReadIntent payload. Runs are already
// split at domain-block boundaries by the client, so each decodes back to
// a single-block extent.
func encodeIntent(runs []extent.Extent) []byte {
	buf := make([]byte, len(runs)*intentRunWire)
	for i, r := range runs {
		binary.LittleEndian.PutUint64(buf[i*intentRunWire:], uint64(r.Off))
		binary.LittleEndian.PutUint64(buf[i*intentRunWire+8:], uint64(r.Len))
	}
	return buf
}

func decodeIntent(data []byte) ([]extent.Extent, error) {
	if len(data)%intentRunWire != 0 {
		return nil, fmt.Errorf("delegate: read intent of %d bytes", len(data))
	}
	runs := make([]extent.Extent, len(data)/intentRunWire)
	for i := range runs {
		runs[i] = extent.Extent{
			Off: int64(binary.LittleEndian.Uint64(data[i*intentRunWire:])),
			Len: int64(binary.LittleEndian.Uint64(data[i*intentRunWire+8:])),
		}
	}
	return runs, nil
}

// readIntent stages one client's intent vector and closes the read epoch
// once every client has contributed. Like flush markers, intents ride the
// same per-client FIFO stream as data requests, so the quorum needs no
// extra handshake.
func (s *server) readIntent(req *mpi.RPCRequest) error {
	h, err := s.lookup(req)
	if err != nil {
		return err
	}
	if _, dup := h.intents[req.Client]; dup {
		return fmt.Errorf("delegate: double read intent for handle %d from rank %d",
			req.Handle, req.Client)
	}
	runs, err := decodeIntent(req.Data)
	if err != nil {
		return err
	}
	h.intents[req.Client] = runs
	h.intentSeqs[req.Client] = req.Seq
	if len(h.intents) < s.clients {
		return nil
	}
	return s.closeReadEpoch(h)
}

// closeReadEpoch merges the epoch's intents, stages each requested block
// once through the cache, fetches the rest in one coalesced batch, and
// scatters per-client replies in sorted rank order. The union fetch is
// the server's own doing — no single client asked for it — so it runs on
// the server's drain client and carries the server's fault identity,
// which also makes the fetch deterministic regardless of intent arrival
// order.
func (s *server) closeReadEpoch(h *handleFile) error {
	ds := s.cfg.DomainSize
	need := make(map[int64]bool)
	for _, runs := range h.intents {
		for _, r := range runs {
			need[r.Off/ds] = true
		}
	}
	blks := make([]int64, 0, len(need))
	for blk := range need {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })

	// Stage every block: cache hits serve in place, everything else — misses,
	// dirty-bypassed blocks, the disarmed tier — joins one fetch batch.
	blkBuf := make(map[int64][]byte, len(blks))
	var fetched []int64
	var reqs []storage.Request
	for _, blk := range blks {
		s.stats.CollectiveBlocks++
		key := blockKey{name: h.name, blk: blk}
		if s.cache != nil && s.dirty[key] == 0 {
			if buf, ok := s.cache.get(key); ok {
				s.stats.CacheHits++
				s.traceCacheServe(ds, blk)
				blkBuf[blk] = buf
				continue
			}
		}
		if s.cache != nil {
			s.stats.CacheMisses++
		}
		buf := mpi.GetBuf(int(ds))
		blkBuf[blk] = buf
		fetched = append(fetched, blk)
		reqs = append(reqs, storage.Request{
			Off: blk * ds, Data: buf, Tag: fmt.Sprintf("blk=%d", blk),
		})
	}
	var fillErr error
	if len(reqs) > 0 {
		if mutate.Enabled(mutate.DelegateCacheStaleServe) && s.cache != nil {
			// Planted bug: "fill" the missing blocks without ever reading
			// the file system, so replies and later hits serve zeros.
			for _, r := range reqs {
				for i := range r.Data {
					r.Data[i] = 0
				}
			}
		} else {
			res, err := h.drain.ReadExtents("delegate-colread", trace.KindFetch, reqs)
			fillErr = err
			s.stats.FSReads += res.Requests
			s.stats.FSBytes += res.Bytes
			s.stats.Retries += res.Retries
		}
	}
	s.stats.ReadEpochs++

	clients := make([]int, 0, len(h.intents))
	for cl := range h.intents {
		clients = append(clients, cl)
	}
	sort.Ints(clients)
	for _, cl := range clients {
		rep := &mpi.RPCReply{Seq: h.intentSeqs[cl]}
		var data []byte
		if fillErr != nil {
			rep.Code, rep.Err = errCode(fillErr), fillErr.Error()
		} else {
			var total int64
			for _, r := range h.intents[cl] {
				total += r.Len
			}
			data = mpi.GetBuf(int(total))
			var pos int64
			for _, r := range h.intents[cl] {
				blk := r.Off / ds
				rel := r.Off - blk*ds
				pos += int64(copy(data[pos:], blkBuf[blk][rel:rel+r.Len]))
			}
			rep.OK, rep.Data = true, data
		}
		err := s.c.SendReply(cl, tagReply, rep)
		if data != nil {
			mpi.RecycleBuf(data)
		}
		if err != nil {
			return err
		}
	}
	// Retire the fetched buffers only now that no reply references any
	// block buffer: inserting earlier could evict — and recycle — a
	// hit-path buffer a later client's reply still reads from.
	for _, blk := range fetched {
		buf := blkBuf[blk]
		key := blockKey{name: h.name, blk: blk}
		if s.cache != nil && fillErr == nil && s.dirty[key] == 0 {
			if displaced, evicted := s.cache.put(key, buf); displaced != nil {
				mpi.RecycleBuf(displaced)
				if evicted {
					s.stats.CacheEvictions++
				}
			}
			continue
		}
		mpi.RecycleBuf(buf)
	}
	for cl := range h.intents {
		delete(h.intents, cl)
		delete(h.intentSeqs, cl)
	}
	return nil
}
