package delegate

// Deficit-round-robin read scheduling. With Config.ReadQuantum > 0 a
// server no longer serves reads inline in arrival order: it queues them
// per client rank and drains them between writes one DRR round at a time.
// Each round visits the active clients in ascending rank order, grants
// each a quantum of byte deficit, and serves that client's queued reads
// FIFO while the head request fits the accumulated deficit — so a client
// issuing large sieved reads earns them over several rounds while other
// clients' small reads keep flowing every round. Per-client FIFO order is
// preserved (the reply-matching invariant the client relies on); only the
// cross-client interleaving changes, which is the point.

import (
	"sort"

	"github.com/tcio/tcio/internal/mpi"
)

// drrClient is one client rank's pending-read state.
type drrClient struct {
	deficit int64
	head    int
	q       []*mpi.RPCRequest
}

func (cl *drrClient) empty() bool { return cl.head == len(cl.q) }

func (cl *drrClient) push(req *mpi.RPCRequest) {
	if cl.head > 32 && cl.head*2 >= len(cl.q) {
		n := copy(cl.q, cl.q[cl.head:])
		for i := n; i < len(cl.q); i++ {
			cl.q[i] = nil
		}
		cl.q = cl.q[:n]
		cl.head = 0
	}
	cl.q = append(cl.q, req)
}

func (cl *drrClient) pop() *mpi.RPCRequest {
	req := cl.q[cl.head]
	cl.q[cl.head] = nil
	cl.head++
	if cl.head == len(cl.q) {
		cl.head = 0
		cl.q = cl.q[:0]
	}
	return req
}

// drrSched holds the queued read requests of every client.
type drrSched struct {
	quantum int64
	clients map[int]*drrClient
	ranks   []int // sorted; fixes the round's visit order
	n       int
}

func newDRR(quantum int64) *drrSched {
	return &drrSched{quantum: quantum, clients: make(map[int]*drrClient)}
}

// push queues one read request from rank.
func (d *drrSched) push(rank int, req *mpi.RPCRequest) {
	cl := d.clients[rank]
	if cl == nil {
		cl = &drrClient{}
		d.clients[rank] = cl
		i := sort.SearchInts(d.ranks, rank)
		d.ranks = append(d.ranks, 0)
		copy(d.ranks[i+1:], d.ranks[i:])
		d.ranks[i] = rank
	}
	cl.push(req)
	d.n++
}

// pending reports the number of queued requests.
func (d *drrSched) pending() int { return d.n }

// round runs DRR rounds until at least one request is served (so a tiny
// quantum still makes progress against a large head request) and returns
// the served requests in service order. Empty scheduler returns nil.
func (d *drrSched) round() []*mpi.RPCRequest {
	var out []*mpi.RPCRequest
	for d.n > 0 && len(out) == 0 {
		for _, r := range d.ranks {
			cl := d.clients[r]
			if cl.empty() {
				continue
			}
			cl.deficit += d.quantum
			for !cl.empty() && cl.q[cl.head].Len <= cl.deficit {
				req := cl.pop()
				cl.deficit -= req.Len
				out = append(out, req)
				d.n--
			}
			if cl.empty() {
				// An idle client must not bank deficit: fairness is
				// relative to clients with work queued right now.
				cl.deficit = 0
			}
		}
	}
	return out
}
