package extent

// Data-sieving cover planning (Thakur, Gropp, Lusk: "Optimizing
// Noncontiguous Accesses in MPI-IO"). Given the noncontiguous runs a
// reader actually needs, SievePlan groups nearby runs under covering
// extents: each cover is read from the file system as one contiguous
// request and the wanted runs are scattered out of it, trading wasted
// bytes inside the holes for a reduction in request count. The budget is
// the sieve buffer size — the largest contiguous read the caller is
// willing to stage. A budget too small to join two runs degenerates to
// list I/O: one cover per run, no waste.

import "sort"

// SieveGroup is one planned covering read: Cover is the contiguous extent
// to read, Index the positions (into the run list given to SievePlan, in
// ascending offset order) of the runs the cover serves.
type SieveGroup struct {
	Cover Extent
	Index []int
}

// SievePlan partitions runs into covering groups. Runs are considered in
// ascending offset order (ties keep input order); a run joins the current
// group while the group's cover — from the group's first byte to the run's
// last — stays within budget bytes. budget <= 0, or any budget smaller
// than the gap-joined span of two runs, yields one cover per run. Covers
// never extend past the runs they serve: Cover is exactly the span of the
// group's members, so every group satisfies Cover ⊇ each member and
// Cover.Off/Cover.End() coincide with member bytes. Zero-length runs are
// skipped entirely. Overlapping runs are legal; each still receives its
// own bytes at scatter time.
func SievePlan(runs []Extent, budget int64) []SieveGroup {
	idx := make([]int, 0, len(runs))
	for i, r := range runs {
		if r.Len > 0 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return runs[idx[a]].Off < runs[idx[b]].Off })

	var groups []SieveGroup
	for _, i := range idx {
		r := runs[i]
		if n := len(groups); n > 0 {
			g := &groups[n-1]
			end := r.End()
			if gEnd := g.Cover.End(); gEnd > end {
				end = gEnd
			}
			if end-g.Cover.Off <= budget {
				g.Index = append(g.Index, i)
				g.Cover.Len = end - g.Cover.Off
				continue
			}
		}
		groups = append(groups, SieveGroup{Cover: r, Index: []int{i}})
	}
	return groups
}

// Waste reports the bytes of the cover not claimed by any member run —
// the hole bytes a sieved read moves without delivering. runs must be the
// list the plan was computed from.
func (g SieveGroup) Waste(runs []Extent) int64 {
	members := make([]Extent, 0, len(g.Index))
	for _, i := range g.Index {
		members = append(members, runs[i])
	}
	return g.Cover.Len - Total(Coalesce(members))
}
