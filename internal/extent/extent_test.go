package extent

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// universe is the byte universe of the bitmap cross-checks: small enough to
// enumerate, large enough to exercise merging, holes, and boundaries.
const universe = 512

// quickCfg returns a deterministic testing/quick configuration (seedcheck
// rule: no package-level math/rand).
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(seed))}
}

// randList decodes raw fuzz values into a run list inside the universe.
func randList(raw []uint16) []Extent {
	out := make([]Extent, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		off := int64(raw[i] % universe)
		length := int64(raw[i+1] % 64)
		out = append(out, Extent{Off: off, Len: length})
	}
	return out
}

// bitmap marks every byte covered by the list.
func bitmap(list []Extent) [universe + 64]bool {
	var m [universe + 64]bool
	for _, e := range list {
		for b := e.Off; b < e.End(); b++ {
			m[b] = true
		}
	}
	return m
}

// wellFormed checks the canonical-form invariants of a coalesced list:
// sorted, strictly separated (no adjacency), no empty runs.
func wellFormed(list []Extent) bool {
	for i, e := range list {
		if e.Len <= 0 {
			return false
		}
		if i > 0 && list[i-1].End() >= e.Off {
			return false
		}
	}
	return true
}

func TestCoalesceMatchesBitmap(t *testing.T) {
	prop := func(raw []uint16) bool {
		list := randList(raw)
		want := bitmap(list)
		got := Coalesce(list)
		return wellFormed(got) && bitmap(got) == want
	}
	if err := quick.Check(prop, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceIdempotent(t *testing.T) {
	prop := func(raw []uint16) bool {
		once := Coalesce(randList(raw))
		twice := Coalesce(append([]Extent(nil), once...))
		if len(once) == 0 {
			return len(twice) == 0
		}
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(prop, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectSubtractPartition pins the partition invariant: for every
// byte of a, it lands in exactly one of Intersect(a,b) and Subtract(a,b),
// decided by membership in b; no byte outside a appears in either.
func TestIntersectSubtractPartition(t *testing.T) {
	prop := func(rawA, rawB []uint16) bool {
		a, b := randList(rawA), randList(rawB)
		ma, mb := bitmap(a), bitmap(b)
		inter, sub := Intersect(a, b), Subtract(a, b)
		if !wellFormed(inter) || !wellFormed(sub) {
			return false
		}
		mi, ms := bitmap(inter), bitmap(sub)
		for x := range ma {
			wantI := ma[x] && mb[x]
			wantS := ma[x] && !mb[x]
			if mi[x] != wantI || ms[x] != wantS {
				return false
			}
		}
		// Lengths partition Coalesce(a) exactly.
		return Total(inter)+Total(sub) == Total(Coalesce(append([]Extent(nil), a...)))
	}
	if err := quick.Check(prop, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAtPreservesCoverageAndBoundaries(t *testing.T) {
	prop := func(raw []uint16, g uint8) bool {
		gran := int64(g%32) + 1
		list := randList(raw)
		want := bitmap(list)
		split := SplitAt(list, gran)
		for _, e := range split {
			if e.Len <= 0 || e.Off/gran != (e.End()-1)/gran {
				return false // crosses a granularity boundary
			}
		}
		return bitmap(split) == want
	}
	if err := quick.Check(prop, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutRoundTrip checks that equations (1)-(3) and their inverse agree
// for random offsets: Locate distributes segments round-robin and Offset
// reconstructs the original offset.
func TestLayoutRoundTrip(t *testing.T) {
	prop := func(rawOff uint32, rawP, rawSeg uint8) bool {
		l := Layout{
			P:       int(rawP%64) + 1,
			SegSize: int64(rawSeg%128) + 1,
			NumSeg:  64,
		}
		off := int64(rawOff)
		rank, slot, disp := l.Locate(off)
		// Equations (1)-(3) verbatim.
		seg := off / l.SegSize
		if rank != int(seg%int64(l.P)) || slot != seg/int64(l.P) || disp != off%l.SegSize {
			return false
		}
		// Owner agrees with Locate; Offset inverts it.
		or, os := l.Owner(seg)
		if or != rank || os != slot || l.Segment(off) != seg {
			return false
		}
		return l.Offset(rank, slot, disp) == off
	}
	if err := quick.Check(prop, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutTilesCapacity walks every offset of a small layout and checks
// the mapping is a bijection onto (rank, slot, disp) triples.
func TestLayoutTilesCapacity(t *testing.T) {
	l := Layout{P: 3, SegSize: 8, NumSeg: 4}
	seen := make(map[[3]int64]bool)
	for off := int64(0); off < l.Capacity(); off++ {
		rank, slot, disp := l.Locate(off)
		if !l.InRange(l.Segment(off)) {
			t.Fatalf("offset %d out of range", off)
		}
		key := [3]int64{int64(rank), slot, disp}
		if seen[key] {
			t.Fatalf("offset %d collides at %v", off, key)
		}
		seen[key] = true
	}
	if len(seen) != int(l.Capacity()) {
		t.Fatalf("mapped %d of %d offsets", len(seen), l.Capacity())
	}
	if l.InRange(l.Segment(l.Capacity())) {
		t.Fatal("capacity boundary mapped in range")
	}
	if seg := l.RankSegment(2, 3); seg != 11 {
		t.Fatalf("RankSegment(2,3) = %d", seg)
	}
}

func TestPartitionDomainsTile(t *testing.T) {
	prop := func(rawLo uint16, rawSpan uint16, rawN uint8) bool {
		lo := int64(rawLo)
		hi := lo + int64(rawSpan)
		n := int(rawN%8) + 1
		p := NewPartition(lo, hi, n)
		doms := p.Domains()
		// Domains are contiguous, ordered, and exactly tile [lo, hi).
		cur := lo
		for _, d := range doms {
			if d.Len < 0 || (d.Len > 0 && d.Off != cur) {
				return false
			}
			cur = max64(cur, d.End())
		}
		if hi > lo && cur != hi {
			return false
		}
		// Every byte's Find result owns it.
		for off := lo; off < hi; off++ {
			d := p.Domain(p.Find(off))
			if off < d.Off || off >= d.End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(6)); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSplitPreservesRuns(t *testing.T) {
	prop := func(raw []uint16, rawN uint8) bool {
		n := int(rawN%6) + 1
		runs := Coalesce(randList(raw))
		lo, hi := Span(runs)
		p := NewPartition(lo, hi, n)
		parts := p.Split(runs)
		var flat []Extent
		for k, part := range parts {
			d := p.Domain(k)
			for _, e := range part {
				if e.Off < d.Off || e.End() > d.End() {
					return false // piece escaped its domain
				}
			}
			flat = append(flat, part...)
		}
		return bitmap(flat) == bitmap(runs) && Total(flat) == Total(runs)
	}
	if err := quick.Check(prop, quickCfg(7)); err != nil {
		t.Fatal(err)
	}
}

func TestCoversSpanSubtractEdges(t *testing.T) {
	if !Covers(nil, 5, 5) {
		t.Fatal("empty interval not covered")
	}
	if Covers(nil, 0, 1) {
		t.Fatal("nil list covers bytes")
	}
	if !Covers([]Extent{{0, 4}, {4, 4}}, 1, 7) {
		t.Fatal("adjacent runs do not cover")
	}
	if lo, hi := Span(nil); lo != 0 || hi != 0 {
		t.Fatalf("Span(nil) = %d,%d", lo, hi)
	}
	if got := Subtract([]Extent{{0, 10}}, nil); !reflect.DeepEqual(got, []Extent{{0, 10}}) {
		t.Fatalf("Subtract identity = %v", got)
	}
	if got := Intersect([]Extent{{0, 10}}, nil); got != nil {
		t.Fatalf("Intersect with empty = %v", got)
	}
	if got := SplitAt([]Extent{{3, 10}}, 4); !reflect.DeepEqual(got, []Extent{{3, 1}, {4, 4}, {8, 4}, {12, 1}}) {
		t.Fatalf("SplitAt = %v", got)
	}
}
