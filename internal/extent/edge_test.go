package extent

// Edge-case pins for the interval algebra: zero-length runs, runs that
// touch exactly at a boundary, and empty inputs. The property tests in
// extent_test.go draw these shapes only occasionally; here each is a
// named, deterministic case.

import (
	"reflect"
	"testing"
)

func eq(t *testing.T, got, want []Extent, label string) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s = %v, want %v", label, got, want)
	}
}

func TestCoalesceEdges(t *testing.T) {
	// Zero-length and negative-length runs vanish, even between touching
	// neighbours they would otherwise appear to bridge.
	eq(t, Coalesce([]Extent{{0, 0}, {5, 0}, {9, -3}}), nil, "all-degenerate")
	eq(t, Coalesce(nil), nil, "nil")
	eq(t, Coalesce([]Extent{{0, 4}, {2, 0}, {4, 4}}),
		[]Extent{{0, 8}}, "zero-length between touching runs")
	// Adjacent-at-boundary runs merge; a one-byte gap does not.
	eq(t, Coalesce([]Extent{{8, 8}, {0, 8}}), []Extent{{0, 16}}, "touching")
	eq(t, Coalesce([]Extent{{0, 8}, {9, 8}}), []Extent{{0, 8}, {9, 8}}, "gap of one")
	// A run contained in its neighbour must not shrink the merged run.
	eq(t, Coalesce([]Extent{{0, 16}, {4, 4}}), []Extent{{0, 16}}, "contained")
}

func TestIntersectEdges(t *testing.T) {
	eq(t, Intersect(nil, nil), nil, "nil/nil")
	eq(t, Intersect([]Extent{{0, 8}}, nil), nil, "a/nil")
	eq(t, Intersect(nil, []Extent{{0, 8}}), nil, "nil/b")
	eq(t, Intersect([]Extent{{0, 0}}, []Extent{{0, 8}}), nil, "zero-length a")
	// Runs touching exactly at a boundary share no bytes.
	eq(t, Intersect([]Extent{{0, 8}}, []Extent{{8, 8}}), nil, "touching")
	// One shared byte at the boundary.
	eq(t, Intersect([]Extent{{0, 9}}, []Extent{{8, 8}}), []Extent{{8, 1}}, "one byte")
	// Equal ends on both sides must advance without losing the next run.
	eq(t, Intersect([]Extent{{0, 8}, {8, 4}}, []Extent{{4, 4}, {8, 2}}),
		[]Extent{{4, 6}}, "equal ends")
}

func TestSubtractEdges(t *testing.T) {
	eq(t, Subtract(nil, nil), nil, "nil/nil")
	eq(t, Subtract(nil, []Extent{{0, 8}}), nil, "nil minuend")
	eq(t, Subtract([]Extent{{0, 8}}, nil), []Extent{{0, 8}}, "nil subtrahend")
	eq(t, Subtract([]Extent{{0, 0}}, nil), nil, "zero-length minuend")
	eq(t, Subtract([]Extent{{0, 8}}, []Extent{{3, 0}}), []Extent{{0, 8}},
		"zero-length subtrahend inside")
	// Subtracting a touching neighbour changes nothing.
	eq(t, Subtract([]Extent{{0, 8}}, []Extent{{8, 8}}), []Extent{{0, 8}}, "touching right")
	eq(t, Subtract([]Extent{{8, 8}}, []Extent{{0, 8}}), []Extent{{8, 8}}, "touching left")
	// Exact cover leaves nothing; a hole splits the run cleanly.
	eq(t, Subtract([]Extent{{0, 8}}, []Extent{{0, 8}}), nil, "exact")
	eq(t, Subtract([]Extent{{0, 12}}, []Extent{{4, 4}}),
		[]Extent{{0, 4}, {8, 4}}, "hole")
	// Subtrahend boundary exactly at minuend start.
	eq(t, Subtract([]Extent{{4, 8}}, []Extent{{0, 4}}), []Extent{{4, 8}}, "ends at start")
}

func TestSplitAtEdges(t *testing.T) {
	eq(t, SplitAt(nil, 8), nil, "nil")
	eq(t, SplitAt([]Extent{{0, 0}, {5, 0}}, 8), nil, "zero-length only")
	// Runs already ending exactly on a boundary split into whole cells.
	eq(t, SplitAt([]Extent{{0, 16}}, 8), []Extent{{0, 8}, {8, 8}}, "aligned")
	// A run starting at a boundary and ending one byte past the next.
	eq(t, SplitAt([]Extent{{8, 9}}, 8), []Extent{{8, 8}, {16, 1}}, "one past")
	// A run strictly inside one cell is untouched.
	eq(t, SplitAt([]Extent{{9, 3}}, 8), []Extent{{9, 3}}, "interior")
	// Non-positive granularity only filters degenerates.
	eq(t, SplitAt([]Extent{{3, 5}, {9, 0}}, 0), []Extent{{3, 5}}, "gran 0")
	eq(t, SplitAt([]Extent{{3, 5}}, -4), []Extent{{3, 5}}, "gran negative")
}

func TestCoversEdges(t *testing.T) {
	if !Covers(nil, 5, 5) {
		t.Error("empty interval not covered by empty list")
	}
	if Covers(nil, 0, 1) {
		t.Error("empty list covers a byte")
	}
	if !Covers([]Extent{{0, 4}, {4, 4}}, 0, 8) {
		t.Error("touching runs do not cover their union")
	}
	if Covers([]Extent{{0, 4}, {5, 4}}, 0, 9) {
		t.Error("gapped runs cover across the gap")
	}
	// Zero-length run at the probe boundary must not count as coverage.
	if Covers([]Extent{{0, 4}, {4, 0}}, 0, 5) {
		t.Error("zero-length run extended coverage")
	}
}

// TestSpanTotalEdges pins the degenerate-input behavior of the two
// accounting helpers.
func TestSpanTotalEdges(t *testing.T) {
	if lo, hi := Span(nil); lo != 0 || hi != 0 {
		t.Errorf("Span(nil) = [%d,%d)", lo, hi)
	}
	if lo, hi := Span([]Extent{{7, 0}, {3, 0}}); lo != 0 || hi != 0 {
		t.Errorf("Span(degenerate) = [%d,%d)", lo, hi)
	}
	if lo, hi := Span([]Extent{{8, 8}, {0, 4}}); lo != 0 || hi != 16 {
		t.Errorf("Span = [%d,%d), want [0,16)", lo, hi)
	}
	if n := Total([]Extent{{0, 4}, {9, -2}, {5, 0}}); n != 4 {
		t.Errorf("Total = %d, want 4", n)
	}
}
