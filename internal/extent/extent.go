// Package extent is the repository's shared interval algebra over file
// byte ranges. Every I/O layer of the simulator reasons about the same
// object — sorted lists of contiguous (offset, length) runs: TCIO's
// level-1 block lists and level-2 segments, OCIO's flattened file views
// and aggregator domains, and the parallel file system's stripes and
// readahead windows. Thakur et al.'s list-I/O work (PAPERS.md) showed the
// performance of noncontiguous access optimizations comes from one
// first-class run-list representation with one optimized code path; this
// package is that path, so the higher layers compose instead of each
// reimplementing interval arithmetic.
//
// The operations are:
//
//   - Coalesce: sort and merge adjacent/overlapping runs (the level-1
//     combine step, OCIO's request flattening).
//   - Intersect / Subtract: run-list set algebra (hole detection,
//     read-modify-write prereads, cache accounting).
//   - SplitAt: cut runs at multiples of a granularity (segment and stripe
//     boundaries).
//   - Layout (layout.go): the paper's equations (1)-(3) round-robin
//     offset -> (rank, segment, displacement) mapping.
//   - Partition (partition.go): OCIO's equal contiguous file domains.
//
// All functions treat a nil list as empty and never return zero-length
// runs.
package extent

import (
	"sort"

	"github.com/tcio/tcio/internal/mutate"
)

// Extent is one contiguous run of bytes: the half-open interval
// [Off, Off+Len). datatype.Segment is an alias of this type, so run lists
// flow between the layers without conversion.
type Extent struct {
	Off int64 // byte offset
	Len int64 // run length in bytes
}

// End returns the exclusive upper bound of the run.
func (e Extent) End() int64 { return e.Off + e.Len }

// Empty reports whether the run covers no bytes.
func (e Extent) Empty() bool { return e.Len <= 0 }

// Coalesce sorts runs by offset and merges adjacent or overlapping ones.
// Zero-length runs are dropped. The input slice may be reordered and its
// storage reused for the result.
func Coalesce(list []Extent) []Extent {
	out := list[:0]
	for _, e := range list {
		if e.Len > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 && merged[n-1].End() >= e.Off {
			if end := e.End(); end > merged[n-1].End() &&
				!mutate.Enabled(mutate.ExtentDroppedCoalesce) {
				merged[n-1].Len = end - merged[n-1].Off
			}
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// Total sums the lengths of all runs (overlaps counted once only if the
// list is coalesced).
func Total(list []Extent) int64 {
	var n int64
	for _, e := range list {
		if e.Len > 0 {
			n += e.Len
		}
	}
	return n
}

// Span returns the smallest half-open interval [lo, hi) containing every
// run, or (0, 0) for an empty list.
func Span(list []Extent) (lo, hi int64) {
	first := true
	for _, e := range list {
		if e.Len <= 0 {
			continue
		}
		if first || e.Off < lo {
			lo = e.Off
		}
		if first || e.End() > hi {
			hi = e.End()
		}
		first = false
	}
	if first {
		return 0, 0
	}
	return lo, hi
}

// Covers reports whether the union of the runs covers [lo, hi) completely.
// An empty interval is trivially covered.
func Covers(list []Extent, lo, hi int64) bool {
	if hi <= lo {
		return true
	}
	merged := Coalesce(append([]Extent(nil), list...))
	for _, e := range merged {
		if e.Off <= lo && e.End() >= hi {
			return true
		}
	}
	return false
}

// Intersect returns the coalesced runs present in both a and b.
func Intersect(a, b []Extent) []Extent {
	as := Coalesce(append([]Extent(nil), a...))
	bs := Coalesce(append([]Extent(nil), b...))
	var out []Extent
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		lo := max64(as[i].Off, bs[j].Off)
		hi := min64(as[i].End(), bs[j].End())
		if hi > lo {
			out = append(out, Extent{Off: lo, Len: hi - lo})
		}
		if as[i].End() < bs[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the coalesced runs of a not covered by b — the partition
// complement of Intersect: Intersect(a, b) and Subtract(a, b) are disjoint
// and together cover exactly Coalesce(a).
func Subtract(a, b []Extent) []Extent {
	as := Coalesce(append([]Extent(nil), a...))
	bs := Coalesce(append([]Extent(nil), b...))
	var out []Extent
	j := 0
	for _, e := range as {
		cur := e.Off
		for j < len(bs) && bs[j].End() <= cur {
			j++
		}
		k := j
		for cur < e.End() {
			if k >= len(bs) || bs[k].Off >= e.End() {
				out = append(out, Extent{Off: cur, Len: e.End() - cur})
				break
			}
			if bs[k].Off > cur {
				out = append(out, Extent{Off: cur, Len: bs[k].Off - cur})
			}
			if bs[k].End() > cur {
				cur = bs[k].End()
			}
			k++
		}
	}
	return out
}

// SplitAt cuts every run at multiples of the granularity, so no returned
// run crosses a boundary — the subdivision rule shared by TCIO's
// segment-aligned staging (§IV.A: an access larger than one segment "has to
// be subdivided and placed in different segments") and the file system's
// stripe-by-stripe cost accounting. Run order and coverage are preserved;
// gran < 1 returns the non-empty runs unchanged.
func SplitAt(list []Extent, gran int64) []Extent {
	out := make([]Extent, 0, len(list))
	for _, e := range list {
		if e.Len <= 0 {
			continue
		}
		if gran < 1 {
			out = append(out, e)
			continue
		}
		for e.Len > 0 {
			n := gran - e.Off%gran
			if n > e.Len {
				n = e.Len
			}
			out = append(out, Extent{Off: e.Off, Len: n})
			e.Off += n
			e.Len -= n
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
