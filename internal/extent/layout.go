package extent

import "github.com/tcio/tcio/internal/mutate"

// Layout is the paper's round-robin mapping of global file offsets onto the
// level-2 buffers of P processes (§IV.A, equations (1)-(3)):
//
//	rank(offset)    = (offset / SegSize) % P     (1)
//	segment(offset) = (offset / SegSize) / P     (2)
//	disp(offset)    =  offset % SegSize          (3)
//
// The file is viewed as consecutive segments of SegSize bytes; segment g is
// owned by rank g % P and lives in that rank's local slot g / P. NumSeg
// bounds the slots each rank exposes, so P * NumSeg * SegSize bytes of file
// are addressable.
type Layout struct {
	// P is the number of processes sharing the file.
	P int
	// SegSize is the segment length in bytes (the file system's lock
	// granularity in the paper's configuration).
	SegSize int64
	// NumSeg is the number of segments each process exposes.
	NumSeg int
}

// Locate applies equations (1)-(3) to a file offset.
func (l Layout) Locate(off int64) (rank int, slot, disp int64) {
	seg := off / l.SegSize
	return int(seg % int64(l.P)), seg / int64(l.P), off % l.SegSize
}

// Segment returns the global segment index containing the offset.
func (l Layout) Segment(off int64) int64 { return off / l.SegSize }

// Owner returns the owning rank and its local slot for a global segment.
func (l Layout) Owner(seg int64) (rank int, slot int64) {
	r := seg % int64(l.P)
	if mutate.Enabled(mutate.ExtentLayoutOwnerSkew) {
		r = (seg + 1) % int64(l.P)
	}
	return int(r), seg / int64(l.P)
}

// Offset inverts Locate: the file offset of displacement disp inside the
// slot-th segment owned by rank.
func (l Layout) Offset(rank int, slot, disp int64) int64 {
	return (slot*int64(l.P)+int64(rank))*l.SegSize + disp
}

// SegStart returns the file offset where a global segment begins.
func (l Layout) SegStart(seg int64) int64 { return seg * l.SegSize }

// Capacity reports the total file range the layout can address.
func (l Layout) Capacity() int64 {
	return int64(l.P) * int64(l.NumSeg) * l.SegSize
}

// InRange reports whether a global segment maps inside the exposed slots.
func (l Layout) InRange(seg int64) bool {
	_, slot := l.Owner(seg)
	return slot < int64(l.NumSeg)
}

// RankSegment returns the global segment index of the given rank's slot —
// the iteration the drain and preload paths walk (each rank visits its own
// slots; the segments it touches are slot*P + rank).
func (l Layout) RankSegment(rank int, slot int64) int64 {
	return slot*int64(l.P) + int64(rank)
}
