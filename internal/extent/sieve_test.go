package extent

import (
	"math/rand"
	"testing"
)

// genRuns draws a random run list: mixed lengths including zero-length
// runs, overlaps, and runs touching multiples of gran (segment
// boundaries), over a file of the given size.
func genRuns(rng *rand.Rand, fileSize, gran int64) []Extent {
	n := rng.Intn(12)
	runs := make([]Extent, 0, n)
	for i := 0; i < n; i++ {
		off := rng.Int63n(fileSize)
		switch rng.Intn(5) {
		case 0: // zero-length
			runs = append(runs, Extent{Off: off})
			continue
		case 1: // snapped to a boundary
			off -= off % gran
		case 2: // ending exactly on a boundary
			off -= off % gran
			if off >= gran {
				off -= gran
			}
			runs = append(runs, Extent{Off: off, Len: gran})
			continue
		}
		maxLen := fileSize - off
		if maxLen > 3*gran {
			maxLen = 3 * gran
		}
		runs = append(runs, Extent{Off: off, Len: 1 + rng.Int63n(maxLen)})
	}
	return runs
}

// TestSievePlanCoverContainsRuns: every planned cover contains each of its
// member runs, every non-empty input run is assigned to exactly one group,
// and no cover exceeds the budget unless it serves a single run larger
// than the budget.
func TestSievePlanCoverContainsRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 500; trial++ {
		fileSize := int64(64 + rng.Intn(4096))
		gran := int64(16 << rng.Intn(4))
		runs := genRuns(rng, fileSize, gran)
		budget := []int64{0, 1, 7, gran, 2 * gran, fileSize}[rng.Intn(6)]
		groups := SievePlan(runs, budget)

		seen := make(map[int]bool)
		for _, g := range groups {
			if len(g.Index) == 0 {
				t.Fatalf("trial %d: empty group %+v", trial, g)
			}
			for _, i := range g.Index {
				if seen[i] {
					t.Fatalf("trial %d: run %d in two groups", trial, i)
				}
				seen[i] = true
				r := runs[i]
				if r.Off < g.Cover.Off || r.End() > g.Cover.End() {
					t.Fatalf("trial %d: cover %+v does not contain run %+v", trial, g.Cover, r)
				}
			}
			if g.Cover.Len > budget && len(g.Index) > 1 {
				t.Fatalf("trial %d: multi-run cover %+v exceeds budget %d", trial, g.Cover, budget)
			}
			if w := g.Waste(runs); w < 0 || w >= g.Cover.Len {
				t.Fatalf("trial %d: waste %d out of range for cover %+v", trial, w, g.Cover)
			}
		}
		for i, r := range runs {
			if r.Len > 0 && !seen[i] {
				t.Fatalf("trial %d: non-empty run %d (%+v) not planned", trial, i, r)
			}
			if r.Len <= 0 && seen[i] {
				t.Fatalf("trial %d: zero-length run %d planned", trial, i)
			}
		}
	}
}

// TestSieveScatterMatchesNaive: reading each cover once and scattering its
// member runs reproduces, byte for byte, a naive per-run read — including
// zero-length runs (nothing delivered) and runs abutting segment
// boundaries.
func TestSieveScatterMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 500; trial++ {
		fileSize := int64(64 + rng.Intn(2048))
		file := make([]byte, fileSize)
		for i := range file {
			file[i] = byte(rng.Intn(256))
		}
		gran := int64(16 << rng.Intn(3))
		runs := genRuns(rng, fileSize, gran)
		budget := []int64{0, 1, gran, 3 * gran, fileSize}[rng.Intn(5)]

		// Naive: one read per run.
		naive := make([][]byte, len(runs))
		for i, r := range runs {
			naive[i] = append([]byte(nil), file[r.Off:r.End()]...)
		}

		// Sieved: one read per cover, then scatter.
		sieved := make([][]byte, len(runs))
		for i, r := range runs {
			sieved[i] = make([]byte, r.Len)
		}
		for _, g := range SievePlan(runs, budget) {
			stage := file[g.Cover.Off:g.Cover.End()] // the one covering read
			for _, i := range g.Index {
				r := runs[i]
				copy(sieved[i], stage[r.Off-g.Cover.Off:])
			}
		}

		for i := range runs {
			if string(naive[i]) != string(sieved[i]) {
				t.Fatalf("trial %d budget %d: run %d (%+v) sieved bytes differ from naive read",
					trial, budget, i, runs[i])
			}
		}
	}
}

// TestSievePlanBudgetMonotonic: with an unbounded budget all runs share
// one cover spanning their union; with budget <= 0 every run is its own
// cover with zero waste.
func TestSievePlanBudgetMonotonic(t *testing.T) {
	runs := []Extent{{Off: 100, Len: 10}, {Off: 130, Len: 5}, {Off: 200, Len: 20}, {Off: 0, Len: 3}}
	one := SievePlan(runs, 1<<40)
	if len(one) != 1 {
		t.Fatalf("unbounded budget: %d covers, want 1", len(one))
	}
	lo, hi := Span(runs)
	if one[0].Cover.Off != lo || one[0].Cover.End() != hi {
		t.Fatalf("unbounded cover %+v, want [%d,%d)", one[0].Cover, lo, hi)
	}
	each := SievePlan(runs, 0)
	if len(each) != len(runs) {
		t.Fatalf("zero budget: %d covers, want %d", len(each), len(runs))
	}
	for _, g := range each {
		if w := g.Waste(runs); w != 0 {
			t.Fatalf("zero budget: cover %+v has waste %d", g.Cover, w)
		}
	}
}
