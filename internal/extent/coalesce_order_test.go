package extent

import (
	"reflect"
	"testing"
)

// TestCoalesceAdjacentUnsorted feeds Coalesce runs that are adjacent but
// arrive out of offset order — the shape the write-behind pending lists
// produce when ranks ship their interleaved pieces in arbitrary order. The
// merge must not depend on arrival order.
func TestCoalesceAdjacentUnsorted(t *testing.T) {
	cases := []struct {
		name string
		in   []Extent
		want []Extent
	}{
		{
			name: "two adjacent reversed",
			in:   []Extent{{Off: 4, Len: 4}, {Off: 0, Len: 4}},
			want: []Extent{{Off: 0, Len: 8}},
		},
		{
			name: "interleaved ranks out of order",
			in:   []Extent{{Off: 24, Len: 8}, {Off: 0, Len: 8}, {Off: 16, Len: 8}, {Off: 8, Len: 8}},
			want: []Extent{{Off: 0, Len: 32}},
		},
		{
			name: "adjacent pair plus gap, shuffled",
			in:   []Extent{{Off: 40, Len: 8}, {Off: 8, Len: 8}, {Off: 0, Len: 8}},
			want: []Extent{{Off: 0, Len: 16}, {Off: 40, Len: 8}},
		},
		{
			name: "duplicate and contained runs reversed",
			in:   []Extent{{Off: 8, Len: 2}, {Off: 0, Len: 16}, {Off: 8, Len: 2}},
			want: []Extent{{Off: 0, Len: 16}},
		},
	}
	for _, tc := range cases {
		got := Coalesce(append([]Extent(nil), tc.in...))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Coalesce(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}
