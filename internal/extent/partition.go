package extent

// Partition splits the half-open interval [Lo, Hi) into N equal contiguous
// domains — OCIO's aggregator file domains (paper §III.A): domain k is
// [Lo + k*size, Lo + (k+1)*size) clipped to Hi, with size = ceil((Hi-Lo)/N).
// The zero value is an empty partition.
type Partition struct {
	Lo, Hi int64
	N      int
	size   int64
}

// NewPartition builds the equal-size partition of [lo, hi) into n domains.
// n < 1 yields an empty partition; hi <= lo yields n empty domains.
func NewPartition(lo, hi int64, n int) Partition {
	p := Partition{Lo: lo, Hi: hi, N: n}
	if n > 0 && hi > lo {
		p.size = (hi - lo + int64(n) - 1) / int64(n)
	}
	return p
}

// Size reports the nominal domain length (the last domain may be shorter).
func (p Partition) Size() int64 { return p.size }

// Domain returns the k-th domain as an extent (possibly empty).
func (p Partition) Domain(k int) Extent {
	if p.size == 0 {
		return Extent{Off: p.Hi}
	}
	lo := p.Lo + int64(k)*p.size
	hi := lo + p.size
	if lo > p.Hi {
		lo = p.Hi
	}
	if hi > p.Hi {
		hi = p.Hi
	}
	return Extent{Off: lo, Len: hi - lo}
}

// Domains materializes all N domains in order.
func (p Partition) Domains() []Extent {
	out := make([]Extent, p.N)
	for k := range out {
		out[k] = p.Domain(k)
	}
	return out
}

// Find returns the index of the domain owning byte off, clamped to [0, N-1].
func (p Partition) Find(off int64) int {
	k := 0
	if p.size > 0 {
		k = int((off - p.Lo) / p.size)
	}
	if k < 0 {
		k = 0
	}
	if k >= p.N {
		k = p.N - 1
	}
	return k
}

// Clip locates the domain owning byte off and clips [off, end) to that
// domain's upper bound, returning the domain index and the clipped end.
func (p Partition) Clip(off, end int64) (int, int64) {
	k := p.Find(off)
	if hi := p.Domain(k).End(); end > hi && hi > off {
		end = hi
	}
	return k, end
}

// Split cuts runs at domain boundaries and deals the pieces to their owning
// domains, preserving order within each domain.
func (p Partition) Split(runs []Extent) [][]Extent {
	out := make([][]Extent, p.N)
	if p.N == 0 {
		return out
	}
	for _, r := range runs {
		for r.Len > 0 {
			k, end := p.Clip(r.Off, r.End())
			piece := Extent{Off: r.Off, Len: end - r.Off}
			out[k] = append(out[k], piece)
			r.Off += piece.Len
			r.Len -= piece.Len
		}
	}
	return out
}
