package datatype

// Round-trip pins for the derived-type pack/unpack machinery against a
// naive bitmap copier, including block lists whose target regions overlap.
// The package canonicalizes layouts by coalescing (Size counts every
// covered byte exactly once — see the Hindexed doc comment), so the naive
// model is: mark the covered bytes of one instance, gather them in
// ascending offset order.

import (
	"bytes"
	"testing"
)

// naiveCovered returns the covered-byte bitmap of one instance of t.
func naiveCovered(t Type) []bool {
	covered := make([]bool, t.Extent())
	for _, s := range t.Segments() {
		for i := s.Off; i < s.End(); i++ {
			covered[i] = true
		}
	}
	return covered
}

// naivePack gathers count instances byte-by-byte through the bitmap.
func naivePack(src []byte, t Type, count int) []byte {
	covered := naiveCovered(t)
	var out []byte
	for i := 0; i < count; i++ {
		base := int64(i) * t.Extent()
		for off, c := range covered {
			if c {
				out = append(out, src[base+int64(off)])
			}
		}
	}
	return out
}

// naiveUnpack scatters dense data byte-by-byte through the bitmap.
func naiveUnpack(data, dst []byte, t Type, count int) {
	covered := naiveCovered(t)
	pos := 0
	for i := 0; i < count; i++ {
		base := int64(i) * t.Extent()
		for off, c := range covered {
			if c {
				dst[base+int64(off)] = data[pos]
				pos++
			}
		}
	}
}

func checkAgainstNaive(t *testing.T, typ Type, count int) {
	t.Helper()
	covered := naiveCovered(typ)
	var want int64
	for _, c := range covered {
		if c {
			want++
		}
	}
	if typ.Size() != want {
		t.Fatalf("%s: Size %d, bitmap covers %d bytes", typ, typ.Size(), want)
	}

	src := make([]byte, int64(count)*typ.Extent())
	for i := range src {
		src[i] = byte(37*i + 11)
	}
	packed, err := Pack(src, typ, count)
	if err != nil {
		t.Fatalf("%s: Pack: %v", typ, err)
	}
	if int64(len(packed)) != int64(count)*typ.Size() {
		t.Fatalf("%s: Pack produced %d bytes, Size*count = %d", typ, len(packed), int64(count)*typ.Size())
	}
	if naive := naivePack(src, typ, count); !bytes.Equal(packed, naive) {
		t.Fatalf("%s: Pack %v, naive copier %v", typ, packed, naive)
	}

	// Unpack into a poisoned destination: covered bytes must round-trip,
	// holes must keep their poison.
	dst := make([]byte, len(src))
	for i := range dst {
		dst[i] = 0xEE
	}
	if err := Unpack(packed, dst, typ, count); err != nil {
		t.Fatalf("%s: Unpack: %v", typ, err)
	}
	naiveDst := make([]byte, len(src))
	for i := range naiveDst {
		naiveDst[i] = 0xEE
	}
	naiveUnpack(packed, naiveDst, typ, count)
	if !bytes.Equal(dst, naiveDst) {
		t.Fatalf("%s: Unpack %v, naive copier %v", typ, dst, naiveDst)
	}
	for i := 0; i < count; i++ {
		base := int64(i) * typ.Extent()
		for off, c := range covered {
			got := dst[base+int64(off)]
			if c && got != src[base+int64(off)] {
				t.Fatalf("%s: covered byte %d did not round-trip", typ, base+int64(off))
			}
			if !c && got != 0xEE {
				t.Fatalf("%s: hole byte %d overwritten", typ, base+int64(off))
			}
		}
	}
}

func TestIndexedRoundTripVsNaive(t *testing.T) {
	cases := []struct {
		name      string
		blocklens []int
		displs    []int
		base      Type
	}{
		{"disjoint", []int{2, 3, 1}, []int{0, 4, 9}, Int},
		{"adjacent", []int{2, 2}, []int{0, 2}, Short},
		{"overlapping", []int{2, 3}, []int{0, 1}, Int},
		{"contained", []int{6, 2}, []int{0, 2}, Char},
		{"unordered-overlap", []int{3, 4, 2}, []int{5, 0, 3}, Short},
		{"zero-length-block", []int{2, 0, 2}, []int{0, 3, 5}, Int},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			typ, err := Indexed(tc.blocklens, tc.displs, tc.base)
			if err != nil {
				t.Fatal(err)
			}
			for _, count := range []int{1, 3} {
				checkAgainstNaive(t, typ, count)
			}
		})
	}
}

func TestHindexedOverlapSizeConsistency(t *testing.T) {
	// Two blocks sharing 4 bytes: the covered set is [0,12), so Size must
	// be 12 — not 16 — and Pack/Segments/Unpack must all describe it.
	typ, err := Hindexed([]int64{8, 8}, []int64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if typ.Size() != 12 {
		t.Fatalf("Size = %d, want 12 (overlapping bytes counted once)", typ.Size())
	}
	if segs := typ.Segments(); len(segs) != 1 || segs[0] != (Segment{Off: 0, Len: 12}) {
		t.Fatalf("Segments = %v, want one coalesced run [0,12)", segs)
	}
	checkAgainstNaive(t, typ, 2)
}

func TestStructOverlapRoundTrip(t *testing.T) {
	// A struct whose second field's region overlaps the first's tail.
	typ, err := Struct([]int{2, 2}, []int64{0, 6}, []Type{Int, Int})
	if err != nil {
		t.Fatal(err)
	}
	if typ.Size() != 14 { // [0,8) and [6,14) coalesce to [0,14)
		t.Fatalf("Size = %d, want 14", typ.Size())
	}
	checkAgainstNaive(t, typ, 2)
}
