package datatype

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicTypes(t *testing.T) {
	cases := []struct {
		t    Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Short, 2}, {Int, 4}, {Float, 4}, {Double, 8}, {Long, 8},
	}
	for _, c := range cases {
		if c.t.Size() != c.size || c.t.Extent() != c.size {
			t.Errorf("%s: size/extent = %d/%d, want %d", c.t, c.t.Size(), c.t.Extent(), c.size)
		}
		segs := c.t.Segments()
		if len(segs) != 1 || segs[0] != (Segment{Off: 0, Len: c.size}) {
			t.Errorf("%s: segments = %v", c.t, segs)
		}
	}
}

func TestByName(t *testing.T) {
	for code, want := range map[string]Type{
		"c": Char, "s": Short, "i": Int, "f": Float, "d": Double, "b": Byte, "l": Long,
	} {
		got, err := ByName(code)
		if err != nil || got != want {
			t.Errorf("ByName(%q) = %v, %v", code, got, err)
		}
	}
	if _, err := ByName("x"); err == nil {
		t.Fatal("ByName(x) should fail")
	}
	if got, err := ByName(" i "); err != nil || got != Int {
		t.Fatal("ByName should trim spaces")
	}
}

func TestContiguous(t *testing.T) {
	ct, err := Contiguous(3, Int)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 12 || ct.Extent() != 12 {
		t.Fatalf("size/extent = %d/%d", ct.Size(), ct.Extent())
	}
	// Adjacent ints coalesce into one run.
	if segs := ct.Segments(); !reflect.DeepEqual(segs, []Segment{{Off: 0, Len: 12}}) {
		t.Fatalf("segments = %v", segs)
	}
	if _, err := Contiguous(-1, Int); err == nil {
		t.Fatal("negative count should fail")
	}
}

func TestVectorMatchesPaperExample(t *testing.T) {
	// The paper's file view (§III.B): etype = one int + one double (12 B),
	// filetype = vector with stride num_procs etypes. With 2 processes:
	// blocks at 0 and 24.
	etype, err := Struct([]int{1, 1}, []int64{0, 4}, []Type{Int, Double})
	if err != nil {
		t.Fatal(err)
	}
	if etype.Size() != 12 || etype.Extent() != 12 {
		t.Fatalf("etype size/extent = %d/%d, want 12/12", etype.Size(), etype.Extent())
	}
	ft, err := Vector(3, 1, 2, etype)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{Off: 0, Len: 12}, {Off: 24, Len: 12}, {Off: 48, Len: 12}}
	if !reflect.DeepEqual(ft.Segments(), want) {
		t.Fatalf("segments = %v, want %v", ft.Segments(), want)
	}
	if ft.Size() != 36 {
		t.Fatalf("size = %d, want 36", ft.Size())
	}
	if ft.Extent() != 60 { // (3-1)*2*12 + 1*12
		t.Fatalf("extent = %d, want 60", ft.Extent())
	}
}

func TestVectorErrors(t *testing.T) {
	if _, err := Vector(-1, 1, 2, Int); err == nil {
		t.Fatal("negative count")
	}
	if _, err := Vector(2, 3, 2, Int); err == nil {
		t.Fatal("blocklen > stride with count > 1 must fail")
	}
	// Single block may exceed stride (stride unused).
	if _, err := Vector(1, 3, 2, Int); err != nil {
		t.Fatalf("count=1 should allow blocklen>stride: %v", err)
	}
	// Empty vector is legal.
	v, err := Vector(0, 1, 2, Int)
	if err != nil || v.Size() != 0 || v.Extent() != 0 {
		t.Fatalf("empty vector: %v size=%d", err, v.Size())
	}
}

func TestIndexed(t *testing.T) {
	it, err := Indexed([]int{2, 1}, []int{0, 4}, Int)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{Off: 0, Len: 8}, {Off: 16, Len: 4}}
	if !reflect.DeepEqual(it.Segments(), want) {
		t.Fatalf("segments = %v, want %v", it.Segments(), want)
	}
	if it.Size() != 12 {
		t.Fatalf("size = %d", it.Size())
	}
	if _, err := Indexed([]int{1}, []int{0, 1}, Int); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := Indexed([]int{-1}, []int{0}, Int); err == nil {
		t.Fatal("negative blocklen should fail")
	}
}

func TestHindexed(t *testing.T) {
	ht, err := Hindexed([]int64{5, 3, 0}, []int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{Off: 10, Len: 5}, {Off: 20, Len: 3}}
	if !reflect.DeepEqual(ht.Segments(), want) {
		t.Fatalf("segments = %v, want %v", ht.Segments(), want)
	}
	if ht.Size() != 8 || ht.Extent() != 23 {
		t.Fatalf("size/extent = %d/%d, want 8/23", ht.Size(), ht.Extent())
	}
	if _, err := Hindexed([]int64{1}, []int64{-1}); err == nil {
		t.Fatal("negative displacement should fail")
	}
}

func TestHindexedMergesAdjacent(t *testing.T) {
	ht, err := Hindexed([]int64{4, 4}, []int64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if segs := ht.Segments(); !reflect.DeepEqual(segs, []Segment{{Off: 0, Len: 8}}) {
		t.Fatalf("adjacent blocks not merged: %v", segs)
	}
}

func TestStruct(t *testing.T) {
	st, err := Struct([]int{1, 2}, []int64{0, 8}, []Type{Double, Int})
	if err != nil {
		t.Fatal(err)
	}
	// double at [0,8), two ints at [8,16) -> one merged run.
	if segs := st.Segments(); !reflect.DeepEqual(segs, []Segment{{Off: 0, Len: 16}}) {
		t.Fatalf("segments = %v", segs)
	}
	if st.Size() != 16 || st.Extent() != 16 {
		t.Fatalf("size/extent = %d/%d", st.Size(), st.Extent())
	}
	if _, err := Struct([]int{1}, []int64{0, 1}, []Type{Int, Int}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestResized(t *testing.T) {
	rt, err := Resized(Int, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Extent() != 16 || rt.Size() != 4 {
		t.Fatalf("size/extent = %d/%d", rt.Size(), rt.Extent())
	}
	segs := Flatten(rt, 2, 0)
	want := []Segment{{Off: 0, Len: 4}, {Off: 16, Len: 4}}
	if !reflect.DeepEqual(segs, want) {
		t.Fatalf("flatten = %v, want %v", segs, want)
	}
	if _, err := Resized(Int, -1); err == nil {
		t.Fatal("negative extent should fail")
	}
}

func TestCoalesce(t *testing.T) {
	in := []Segment{{Off: 10, Len: 5}, {Off: 0, Len: 5}, {Off: 5, Len: 5}, {Off: 30, Len: 0}, {Off: 20, Len: 3}, {Off: 21, Len: 1}}
	got := Coalesce(in)
	want := []Segment{{Off: 0, Len: 15}, {Off: 20, Len: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
}

func TestFlattenBaseOffset(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int)
	got := Flatten(v, 2, 100)
	// instance extent = (2-1)*2*4+4 = 12; blocks at 100,108, 112,120.
	want := []Segment{{Off: 100, Len: 4}, {Off: 108, Len: 8}, {Off: 120, Len: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	etype, _ := Struct([]int{1, 1}, []int64{0, 4}, []Type{Int, Double})
	v, _ := Vector(4, 1, 3, etype)
	const count = 2
	src := make([]byte, count*int(v.Extent()))
	for i := range src {
		src[i] = byte(i)
	}
	packed, err := Pack(src, v, count)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(packed)) != count*v.Size() {
		t.Fatalf("packed %d bytes, want %d", len(packed), count*v.Size())
	}
	dst := make([]byte, len(src))
	if err := Unpack(packed, dst, v, count); err != nil {
		t.Fatal(err)
	}
	// Every byte covered by the layout must round-trip.
	for _, s := range Flatten(v, count, 0) {
		if !bytes.Equal(dst[s.Off:s.Off+s.Len], src[s.Off:s.Off+s.Len]) {
			t.Fatalf("segment %+v did not round-trip", s)
		}
	}
}

func TestPackUnpackErrors(t *testing.T) {
	if _, err := Pack(make([]byte, 3), Int, 1); err == nil {
		t.Fatal("short source should fail")
	}
	if err := Unpack(make([]byte, 3), make([]byte, 8), Int, 1); err == nil {
		t.Fatal("wrong data length should fail")
	}
	if err := Unpack(make([]byte, 4), make([]byte, 2), Int, 1); err == nil {
		t.Fatal("short destination should fail")
	}
}

// Property: for random hindexed layouts, Flatten segments are sorted,
// non-overlapping, and their total length equals Size().
func TestHindexedFlattenInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		lens := make([]int64, n)
		displs := make([]int64, n)
		pos := int64(0)
		for i := 0; i < n; i++ {
			pos += int64(rng.Intn(50))
			displs[i] = pos
			lens[i] = int64(rng.Intn(30))
			pos += lens[i]
		}
		ht, err := Hindexed(lens, displs)
		if err != nil {
			return false
		}
		var total int64
		prevEnd := int64(-1)
		for _, s := range ht.Segments() {
			if s.Off <= prevEnd {
				return false // overlap or not sorted-with-gap
			}
			prevEnd = s.Off + s.Len
			total += s.Len
		}
		return total == ht.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pack then Unpack restores exactly the bytes the layout touches.
func TestPackUnpackProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := int(count%4) + 1
		blocks := rng.Intn(6) + 1
		lens := make([]int, blocks)
		displs := make([]int, blocks)
		pos := 0
		for i := 0; i < blocks; i++ {
			pos += rng.Intn(4)
			displs[i] = pos
			lens[i] = rng.Intn(5)
			pos += lens[i]
		}
		ty, err := Indexed(lens, displs, Int)
		if err != nil {
			return false
		}
		if ty.Extent() == 0 {
			return true
		}
		src := make([]byte, int64(c)*ty.Extent())
		rng.Read(src)
		packed, err := Pack(src, ty, c)
		if err != nil {
			return false
		}
		dst := make([]byte, len(src))
		if err := Unpack(packed, dst, ty, c); err != nil {
			return false
		}
		for _, s := range Flatten(ty, c, 0) {
			if !bytes.Equal(dst[s.Off:s.Off+s.Len], src[s.Off:s.Off+s.Len]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
