package datatype

import "fmt"

// Subarray builds MPI_Type_create_subarray: the type selecting an
// n-dimensional sub-block out of an n-dimensional array stored in row-major
// (C) order. This is the datatype behind the paper's motivating examples —
// SCEC's slice-per-core and S3D/Pixie3D's cube-per-core decompositions of a
// 3D computing volume mapped onto a 1D file (§I, Fig. 1).
//
// sizes are the full array's extents per dimension, subsizes the sub-block's
// extents, and starts the sub-block's origin, all in elements of base.
func Subarray(sizes, subsizes, starts []int, base Type) (Type, error) {
	n := len(sizes)
	if n == 0 {
		return nil, fmt.Errorf("datatype: Subarray with no dimensions")
	}
	if len(subsizes) != n || len(starts) != n {
		return nil, fmt.Errorf("datatype: Subarray arity mismatch %d/%d/%d",
			len(sizes), len(subsizes), len(starts))
	}
	total := int64(1)
	sub := int64(1)
	for d := 0; d < n; d++ {
		switch {
		case sizes[d] < 1:
			return nil, fmt.Errorf("datatype: Subarray sizes[%d] = %d", d, sizes[d])
		case subsizes[d] < 1 || subsizes[d] > sizes[d]:
			return nil, fmt.Errorf("datatype: Subarray subsizes[%d] = %d of %d", d, subsizes[d], sizes[d])
		case starts[d] < 0 || starts[d]+subsizes[d] > sizes[d]:
			return nil, fmt.Errorf("datatype: Subarray starts[%d] = %d with subsize %d of %d",
				d, starts[d], subsizes[d], sizes[d])
		}
		total *= int64(sizes[d])
		sub *= int64(subsizes[d])
	}

	// Row-major strides in elements.
	stride := make([]int64, n)
	stride[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * int64(sizes[d+1])
	}

	// Enumerate the sub-block's contiguous runs: the innermost dimension is
	// contiguous, every combination of the outer indices contributes one run.
	esz := base.Size()
	if esz != base.Extent() {
		return nil, fmt.Errorf("datatype: Subarray requires a dense base type (size == extent)")
	}
	runLen := int64(subsizes[n-1]) * esz
	idx := make([]int, n-1)
	segs := make([]Segment, 0, sub/int64(subsizes[n-1]))
	for {
		off := int64(starts[n-1])
		for d := 0; d < n-1; d++ {
			off += int64(starts[d]+idx[d]) * stride[d]
		}
		segs = append(segs, Segment{Off: off * esz, Len: runLen})
		// Odometer increment over the outer dimensions.
		d := n - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}

	return &derived{
		name:   fmt.Sprintf("subarray(%dd,%s)", n, base),
		size:   sub * esz,
		extent: total * esz,
		segs:   Coalesce(segs),
	}, nil
}
