package datatype

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSubarray2D(t *testing.T) {
	// 4x6 array of ints, 2x3 block at (1,2).
	st, err := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, Int)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 2*3*4 {
		t.Fatalf("size = %d", st.Size())
	}
	if st.Extent() != 4*6*4 {
		t.Fatalf("extent = %d", st.Extent())
	}
	// Rows 1 and 2, columns 2..4: element offsets 8..10 and 14..16.
	want := []Segment{{Off: 8 * 4, Len: 12}, {Off: 14 * 4, Len: 12}}
	if !reflect.DeepEqual(st.Segments(), want) {
		t.Fatalf("segments = %v, want %v", st.Segments(), want)
	}
}

func TestSubarray1D(t *testing.T) {
	st, err := Subarray([]int{10}, []int{4}, []int{3}, Double)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{Off: 24, Len: 32}}
	if !reflect.DeepEqual(st.Segments(), want) {
		t.Fatalf("segments = %v", st.Segments())
	}
}

func TestSubarray3DRunCount(t *testing.T) {
	// A 3D cube-per-core decomposition: the innermost dimension stays
	// contiguous, so runs = product of the outer subsizes.
	st, err := Subarray([]int{8, 8, 8}, []int{2, 3, 4}, []int{4, 2, 0}, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Segments()); got != 2*3 {
		t.Fatalf("runs = %d, want 6", got)
	}
	if st.Size() != 2*3*4 {
		t.Fatalf("size = %d", st.Size())
	}
}

func TestSubarrayWholeArrayCoalesces(t *testing.T) {
	st, err := Subarray([]int{3, 5}, []int{3, 5}, []int{0, 0}, Int)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Segments(); !reflect.DeepEqual(got, []Segment{{Off: 0, Len: 60}}) {
		t.Fatalf("whole-array subarray not one run: %v", got)
	}
}

func TestSubarrayErrors(t *testing.T) {
	cases := []struct {
		sizes, subsizes, starts []int
	}{
		{nil, nil, nil},
		{[]int{4}, []int{2, 2}, []int{0}},
		{[]int{0}, []int{1}, []int{0}},
		{[]int{4}, []int{0}, []int{0}},
		{[]int{4}, []int{5}, []int{0}},
		{[]int{4}, []int{2}, []int{-1}},
		{[]int{4}, []int{2}, []int{3}},
	}
	for i, c := range cases {
		if _, err := Subarray(c.sizes, c.subsizes, c.starts, Int); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Non-dense base types are rejected.
	rt, _ := Resized(Int, 16)
	if _, err := Subarray([]int{4}, []int{2}, []int{0}, rt); err == nil {
		t.Error("padded base accepted")
	}
}

// Property: packing a sub-block out of a filled array yields exactly the
// elements a straightforward triple loop would select.
func TestSubarrayPackMatchesLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(3) + 1
		sizes := make([]int, dims)
		subs := make([]int, dims)
		starts := make([]int, dims)
		total := 1
		for d := 0; d < dims; d++ {
			sizes[d] = rng.Intn(5) + 1
			subs[d] = rng.Intn(sizes[d]) + 1
			starts[d] = rng.Intn(sizes[d] - subs[d] + 1)
			total *= sizes[d]
		}
		st, err := Subarray(sizes, subs, starts, Byte)
		if err != nil {
			return false
		}
		src := make([]byte, total)
		for i := range src {
			src[i] = byte(i + 1)
		}
		packed, err := Pack(src, st, 1)
		if err != nil {
			return false
		}
		// Reference: iterate the sub-block in row-major order.
		var ref []byte
		var walk func(d, off int)
		walk = func(d, off int) {
			if d == dims {
				ref = append(ref, src[off])
				return
			}
			stride := 1
			for k := d + 1; k < dims; k++ {
				stride *= sizes[k]
			}
			for i := 0; i < subs[d]; i++ {
				walk(d+1, off+(starts[d]+i)*stride)
			}
		}
		walk(0, 0)
		return bytes.Equal(packed, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
