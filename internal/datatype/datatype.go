// Package datatype implements MPI derived datatypes: typed descriptions of
// possibly non-contiguous memory or file layouts. OCIO's file views are
// built from these (MPI_Type_contiguous / vector / indexed / struct), and
// TCIO combines the blocks of a level-1 buffer into one indexed type so a
// whole flush travels in a single one-sided operation (§IV.A of the paper).
//
// A datatype describes a byte layout as a list of (offset, length) segments
// relative to the start of one type instance, plus an extent — the stride
// between consecutive instances. Flatten expands count instances into a
// single segment list; Pack and Unpack gather and scatter bytes through a
// layout.
package datatype

import (
	"fmt"
	"strings"

	"github.com/tcio/tcio/internal/extent"
)

// Segment is one contiguous run of bytes within a datatype's layout. It is
// an alias of extent.Extent — the repository-wide run representation — so
// flattened layouts flow into the extent algebra and the storage layer
// without conversion.
type Segment = extent.Extent

// Type describes a (possibly non-contiguous) byte layout.
type Type interface {
	// Size is the number of data bytes in one instance (holes excluded).
	Size() int64
	// Extent is the span of one instance including holes: instance i of a
	// flattened sequence begins at i*Extent().
	Extent() int64
	// Segments returns the contiguous runs of one instance in layout order.
	// Callers must not modify the returned slice.
	Segments() []Segment
	// String names the type for diagnostics.
	String() string
}

// basic is a named elementary type of fixed width.
type basic struct {
	name  string
	width int64
}

func (b basic) Size() int64         { return b.width }
func (b basic) Extent() int64       { return b.width }
func (b basic) Segments() []Segment { return []Segment{{Off: 0, Len: b.width}} }
func (b basic) String() string      { return b.name }

// Elementary MPI types used by the paper's benchmark (Table I: c, s, i, f, d).
var (
	Byte   Type = basic{"MPI_BYTE", 1}
	Char   Type = basic{"MPI_CHAR", 1}
	Short  Type = basic{"MPI_SHORT", 2}
	Int    Type = basic{"MPI_INT", 4}
	Float  Type = basic{"MPI_FLOAT", 4}
	Double Type = basic{"MPI_DOUBLE", 8}
	Long   Type = basic{"MPI_LONG", 8}
)

// ByName resolves the single-letter type codes of the paper's Table I
// ("c: char; s: short; i: integer; f: float; d: double").
func ByName(code string) (Type, error) {
	switch strings.TrimSpace(code) {
	case "c":
		return Char, nil
	case "s":
		return Short, nil
	case "i":
		return Int, nil
	case "f":
		return Float, nil
	case "d":
		return Double, nil
	case "b":
		return Byte, nil
	case "l":
		return Long, nil
	default:
		return nil, fmt.Errorf("datatype: unknown type code %q", code)
	}
}

// derived is the common representation of all constructed types.
type derived struct {
	name   string
	size   int64
	extent int64
	segs   []Segment
}

func (d *derived) Size() int64         { return d.size }
func (d *derived) Extent() int64       { return d.extent }
func (d *derived) Segments() []Segment { return d.segs }
func (d *derived) String() string      { return d.name }

// expand appends count instances of t, each shifted by i*t.Extent()+base.
func expand(dst []Segment, t Type, count int, base int64) []Segment {
	ext := t.Extent()
	for i := 0; i < count; i++ {
		off := base + int64(i)*ext
		for _, s := range t.Segments() {
			dst = append(dst, Segment{Off: off + s.Off, Len: s.Len})
		}
	}
	return dst
}

// Contiguous builds MPI_Type_contiguous: count repetitions of base laid
// end to end.
func Contiguous(count int, base Type) (Type, error) {
	if count < 0 {
		return nil, fmt.Errorf("datatype: Contiguous count %d < 0", count)
	}
	d := &derived{
		name:   fmt.Sprintf("contig(%d,%s)", count, base),
		size:   int64(count) * base.Size(),
		extent: int64(count) * base.Extent(),
	}
	d.segs = Coalesce(expand(nil, base, count, 0))
	return d, nil
}

// Vector builds MPI_Type_vector: count blocks of blocklen base elements,
// with a stride (in base elements) between block starts.
func Vector(count, blocklen, stride int, base Type) (Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("datatype: Vector count=%d blocklen=%d", count, blocklen)
	}
	if count > 0 && blocklen > stride && count > 1 {
		return nil, fmt.Errorf("datatype: Vector blocklen %d exceeds stride %d", blocklen, stride)
	}
	ext := int64(0)
	if count > 0 {
		ext = int64(count-1)*int64(stride)*base.Extent() + int64(blocklen)*base.Extent()
	}
	d := &derived{
		name:   fmt.Sprintf("vector(%d,%d,%d,%s)", count, blocklen, stride, base),
		size:   int64(count) * int64(blocklen) * base.Size(),
		extent: ext,
	}
	var segs []Segment
	for i := 0; i < count; i++ {
		segs = expand(segs, base, blocklen, int64(i)*int64(stride)*base.Extent())
	}
	d.segs = Coalesce(segs)
	return d, nil
}

// Indexed builds MPI_Type_indexed: len(blocklens) blocks, block i holding
// blocklens[i] base elements at element displacement displs[i].
func Indexed(blocklens, displs []int, base Type) (Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: Indexed %d blocklens vs %d displs", len(blocklens), len(displs))
	}
	hb := make([]int64, len(blocklens))
	hd := make([]int64, len(displs))
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: Indexed blocklen[%d] = %d", i, blocklens[i])
		}
		hb[i] = int64(blocklens[i]) * base.Size()
		hd[i] = int64(displs[i]) * base.Extent()
	}
	t, err := Hindexed(hb, hd)
	if err != nil {
		return nil, err
	}
	t.(*derived).name = fmt.Sprintf("indexed(%d,%s)", len(blocklens), base)
	return t, nil
}

// Hindexed builds MPI_Type_create_hindexed with byte-granular blocks:
// block i spans [displs[i], displs[i]+blocklens[i]) bytes. This is the form
// TCIO uses to combine a level-1 buffer's cached blocks into one transfer.
//
// The layout is canonicalized by coalescing, so bytes covered by several
// overlapping blocks appear — and are counted by Size — exactly once. (MPI
// proper would pack such bytes repeatedly; here Size, Segments, Pack, and
// Unpack must describe the same byte set or view flattening and round
// trips break, so overlap deduplicates.)
func Hindexed(blocklens, displs []int64) (Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: Hindexed %d blocklens vs %d displs", len(blocklens), len(displs))
	}
	var ext int64
	segs := make([]Segment, 0, len(blocklens))
	for i := range blocklens {
		if blocklens[i] < 0 || displs[i] < 0 {
			return nil, fmt.Errorf("datatype: Hindexed block %d = (%d,%d)", i, displs[i], blocklens[i])
		}
		if blocklens[i] == 0 {
			continue
		}
		segs = append(segs, Segment{Off: displs[i], Len: blocklens[i]})
		if end := displs[i] + blocklens[i]; end > ext {
			ext = end
		}
	}
	merged := Coalesce(segs)
	var size int64
	for _, s := range merged {
		size += s.Len
	}
	return &derived{
		name:   fmt.Sprintf("hindexed(%d)", len(blocklens)),
		size:   size,
		extent: ext,
		segs:   merged,
	}, nil
}

// Struct builds MPI_Type_create_struct: for each i, blocklens[i] elements of
// types[i] at byte displacement displs[i]. The extent spans to the end of
// the last byte touched, which is what the paper's FTT layouts need. Like
// Hindexed, the layout is canonicalized by coalescing and Size counts each
// covered byte once even when fields overlap.
func Struct(blocklens []int, displs []int64, types []Type) (Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(types) {
		return nil, fmt.Errorf("datatype: Struct arity mismatch %d/%d/%d",
			len(blocklens), len(displs), len(types))
	}
	var ext int64
	var segs []Segment
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: Struct blocklen[%d] = %d", i, blocklens[i])
		}
		segs = expand(segs, types[i], blocklens[i], displs[i])
		end := displs[i] + int64(blocklens[i])*types[i].Extent()
		if end > ext {
			ext = end
		}
	}
	merged := Coalesce(segs)
	var size int64
	for _, s := range merged {
		size += s.Len
	}
	return &derived{
		name:   fmt.Sprintf("struct(%d)", len(types)),
		size:   size,
		extent: ext,
		segs:   merged,
	}, nil
}

// Resized returns a copy of t with a new extent (MPI_Type_create_resized),
// used to pad or shrink the stride between flattened instances.
func Resized(t Type, extent int64) (Type, error) {
	if extent < 0 {
		return nil, fmt.Errorf("datatype: Resized extent %d < 0", extent)
	}
	return &derived{
		name:   fmt.Sprintf("resized(%s,%d)", t, extent),
		size:   t.Size(),
		extent: extent,
		segs:   t.Segments(),
	}, nil
}

// Coalesce sorts segments by offset and merges adjacent or overlapping runs.
// Zero-length runs are dropped. The input slice may be reordered. It is
// extent.Coalesce under the Segment alias.
func Coalesce(segs []Segment) []Segment { return extent.Coalesce(segs) }

// Flatten expands count consecutive instances of t, starting at byte base,
// into an absolute, coalesced segment list.
func Flatten(t Type, count int, base int64) []Segment {
	return Coalesce(expand(nil, t, count, base))
}

// Pack gathers count instances of t from src into a dense byte slice.
// src must cover count*t.Extent() bytes.
func Pack(src []byte, t Type, count int) ([]byte, error) {
	need := int64(count) * t.Extent()
	if int64(len(src)) < need {
		return nil, fmt.Errorf("datatype: Pack needs %d bytes of source, have %d", need, len(src))
	}
	dst := make([]byte, 0, int64(count)*t.Size())
	ext := t.Extent()
	for i := 0; i < count; i++ {
		off := int64(i) * ext
		for _, s := range t.Segments() {
			dst = append(dst, src[off+s.Off:off+s.Off+s.Len]...)
		}
	}
	return dst, nil
}

// Unpack scatters a dense byte slice into count instances of t inside dst.
// data must hold exactly count*t.Size() bytes and dst must cover
// count*t.Extent() bytes.
func Unpack(data, dst []byte, t Type, count int) error {
	if int64(len(data)) != int64(count)*t.Size() {
		return fmt.Errorf("datatype: Unpack data %d bytes, want %d", len(data), int64(count)*t.Size())
	}
	need := int64(count) * t.Extent()
	if int64(len(dst)) < need {
		return fmt.Errorf("datatype: Unpack needs %d bytes of destination, have %d", need, len(dst))
	}
	ext := t.Extent()
	pos := int64(0)
	for i := 0; i < count; i++ {
		off := int64(i) * ext
		for _, s := range t.Segments() {
			copy(dst[off+s.Off:off+s.Off+s.Len], data[pos:pos+s.Len])
			pos += s.Len
		}
	}
	return nil
}
