package datatype_test

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
)

// Example builds the paper's Fig. 2 file view: an etype of one int plus one
// double, strided so that two processes interleave blocks round-robin.
func Example() {
	etype, _ := datatype.Struct([]int{1, 1}, []int64{0, 4},
		[]datatype.Type{datatype.Int, datatype.Double})
	filetype, _ := datatype.Vector(3, 1, 2, etype) // 3 blocks, stride = 2 procs
	fmt.Println("etype size:", etype.Size())
	fmt.Println("filetype runs:", filetype.Segments())
	// Output:
	// etype size: 12
	// filetype runs: [{0 12} {24 12} {48 12}]
}

// ExampleSubarray selects one process's 2x2 sub-block out of a 4x4 array —
// the building block of the intro's 3D-volume decompositions.
func ExampleSubarray() {
	st, _ := datatype.Subarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, datatype.Byte)
	fmt.Println("selected runs:", st.Segments())
	fmt.Println("bytes selected:", st.Size(), "of", st.Extent())
	// Output:
	// selected runs: [{5 2} {9 2}]
	// bytes selected: 4 of 16
}

// ExamplePack gathers strided elements into a dense buffer and back.
func ExamplePack() {
	ty, _ := datatype.Vector(2, 1, 2, datatype.Byte) // bytes 0 and 2
	src := []byte{'a', 'x', 'b'}
	packed, _ := datatype.Pack(src, ty, 1)
	fmt.Printf("%s\n", packed)
	// Output: ab
}
