package bench

// This file is the Go rendition of the paper's Program 2: the synthetic
// benchmark written against OCIO. It exists verbatim — combine buffer,
// derived datatypes, file view, single collective call — so that
// cmd/loccount can compare its length against Program 3 (program3.go), the
// TCIO version of the same workload, reproducing the paper's programming-
// effort comparison.

import (
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
)

// Program2Write writes the interleaved workload with OCIO, following the
// paper's Program 2 step by step.
func Program2Write(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	// BEGIN PROGRAM 2 WRITE
	blockSize := cfg.blockSize()
	iters := cfg.iters()
	// 1. Create an application level buffer.
	buffer, err := c.Malloc(blockSize * int64(iters))
	if err != nil {
		return err
	}
	// 2. Combine data in the buffer by two for loops.
	at := 0
	for i := 0; i < iters; i++ {
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			at += copy(buffer[at:], arrays[j][lo:hi])
		}
	}
	chargePieces(c, iters*len(arrays))
	// 3. Open file.
	handle, err := mpiio.Open(c, cfg.FileName)
	if err != nil {
		return err
	}
	// BEGIN EXTENSION (not part of the paper's Program 2; excluded from LoC)
	if cfg.OCIOAggregators > 0 {
		if err := handle.SetAggregators(cfg.OCIOAggregators); err != nil {
			return err
		}
	}
	// END EXTENSION
	// 4.-7. Set out the file view: etype describes one combined block...
	eType, err := datatype.Contiguous(int(blockSize), datatype.Byte)
	if err != nil {
		return err
	}
	// 8.-9. ...and filetype strides one block every num_procs blocks.
	fileType, err := datatype.Vector(iters, 1, c.Size(), eType)
	if err != nil {
		return err
	}
	fileType, err = datatype.Resized(fileType, int64(iters*c.Size())*eType.Extent())
	if err != nil {
		return err
	}
	// 5. disp <- my_rank * block_size
	disp := int64(c.Rank()) * blockSize
	// 10. MPI_File_set_view.
	if err := handle.SetView(disp, eType, fileType); err != nil {
		return err
	}
	// 11. One collective write call outputs the whole buffer.
	if err := handle.WriteAll(buffer); err != nil {
		return err
	}
	// 12. Close.
	if err := handle.Close(); err != nil {
		return err
	}
	// 13. Release the buffer.
	c.Free(buffer)
	return nil
	// END PROGRAM 2 WRITE
}

// Program2Read reads the interleaved workload back with OCIO: the same file
// view, one collective read, then scattering the combine buffer into the
// application arrays.
func Program2Read(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	// BEGIN PROGRAM 2 READ
	blockSize := cfg.blockSize()
	iters := cfg.iters()
	handle, err := mpiio.Open(c, cfg.FileName)
	if err != nil {
		return err
	}
	// BEGIN EXTENSION (not part of the paper's Program 2; excluded from LoC)
	if cfg.OCIOAggregators > 0 {
		if err := handle.SetAggregators(cfg.OCIOAggregators); err != nil {
			return err
		}
	}
	// END EXTENSION
	eType, err := datatype.Contiguous(int(blockSize), datatype.Byte)
	if err != nil {
		return err
	}
	fileType, err := datatype.Vector(iters, 1, c.Size(), eType)
	if err != nil {
		return err
	}
	fileType, err = datatype.Resized(fileType, int64(iters*c.Size())*eType.Extent())
	if err != nil {
		return err
	}
	if err := handle.SetView(int64(c.Rank())*blockSize, eType, fileType); err != nil {
		return err
	}
	// The collective read returns the application-level combine buffer,
	// which counts against the process's memory budget.
	if err := c.Reserve(c.Machine().Scale(blockSize * int64(iters))); err != nil {
		return err
	}
	defer c.Release(c.Machine().Scale(blockSize * int64(iters)))
	buffer, err := handle.ReadAll(blockSize * int64(iters))
	if err != nil {
		return err
	}
	if err := handle.Close(); err != nil {
		return err
	}
	// Scatter the combine buffer back into the application arrays.
	at := 0
	for i := 0; i < iters; i++ {
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			at += copy(arrays[j][lo:hi], buffer[at:])
		}
	}
	chargePieces(c, iters*len(arrays))
	return nil
	// END PROGRAM 2 READ
}
