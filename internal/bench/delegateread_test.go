package bench

import (
	"reflect"
	"testing"
)

// smallDelegateReadOpts shrinks the read sweep to test scale: 4 clients,
// 2 KiB file, 64 B requests, 1 KiB domain blocks (so 2 blocks).
func smallDelegateReadOpts() DelegateReadOptions {
	return DelegateReadOptions{
		Clients:       4,
		SegSize:       256,
		SegsPerClient: 2,
		Servers:       1,
		CacheBlocks:   []int{0, 8},
		Patterns:      []string{PatternPrivate, PatternShared},
		Collective:    []bool{false, true},
		ReadQuantum:   128,
		ReqSize:       64,
		Scale:         4,
		Verify:        true,
	}
}

func TestDelegateReadSweepSmall(t *testing.T) {
	opts := smallDelegateReadOpts()
	_, points, err := DelegateRead(opts)
	if err != nil {
		t.Fatalf("DelegateRead: %v", err)
	}
	fileBytes := delegateReadFileBytes(opts)
	pieces := fileBytes / opts.ReqSize            // 32
	blocks := fileBytes / (4 * opts.SegSize)      // domain = 4 segments
	perPass := map[string]int64{PatternPrivate: pieces, PatternShared: pieces * int64(opts.Clients)}
	type key struct {
		pattern string
		cache   int
		coll    bool
	}
	byKey := map[key]DelegateReadPoint{}
	for _, p := range points {
		if p.Result != "ok" {
			t.Fatalf("point %+v: result %q", p, p.Result)
		}
		byKey[key{p.Pattern, p.CacheBlocks, p.Collective}] = p
	}
	for _, pattern := range opts.Patterns {
		reqs := 2 * perPass[pattern] // two passes
		for _, coll := range opts.Collective {
			dis := byKey[key{pattern, 0, coll}]
			arm := byKey[key{pattern, 8, coll}]
			for _, p := range []DelegateReadPoint{dis, arm} {
				if p.ReadReqs != reqs {
					t.Errorf("%s coll=%v cache=%d: %d read reqs, want %d",
						pattern, coll, p.CacheBlocks, p.ReadReqs, reqs)
				}
			}
			// Disarmed: no cache counters, and the hot pass repeats the cold
			// pass's file system requests exactly.
			if dis.CacheHits != 0 || dis.CacheMisses != 0 {
				t.Errorf("%s coll=%v disarmed: cache counters %d/%d", pattern, coll, dis.CacheHits, dis.CacheMisses)
			}
			if dis.FSReadsHot != dis.FSReadsCold {
				t.Errorf("%s coll=%v disarmed: hot pass %d fs reads, cold %d",
					pattern, coll, dis.FSReadsHot, dis.FSReadsCold)
			}
			wantCold := perPass[pattern]
			if coll {
				// Collective epochs stage the merged union once per block.
				wantCold = blocks
			}
			if dis.FSReadsCold != wantCold {
				t.Errorf("%s coll=%v disarmed: cold pass %d fs reads, want %d",
					pattern, coll, dis.FSReadsCold, wantCold)
			}
			// Armed: the cold pass fills each block once, the hot pass never
			// reaches the file system, and every request or collective block
			// is a hit or a miss.
			if arm.FSReadsCold != blocks || arm.FSReadsHot != 0 {
				t.Errorf("%s coll=%v armed: fs reads %d/%d, want %d/0",
					pattern, coll, arm.FSReadsCold, arm.FSReadsHot, blocks)
			}
			if arm.CacheMisses != blocks {
				t.Errorf("%s coll=%v armed: %d misses, want %d", pattern, coll, arm.CacheMisses, blocks)
			}
			served := reqs
			if coll {
				served = 2 * blocks // one staging per block per epoch
			}
			if arm.CacheHits+arm.CacheMisses != served {
				t.Errorf("%s coll=%v armed: hits+misses %d, want %d",
					pattern, coll, arm.CacheHits+arm.CacheMisses, served)
			}
			// The armed hot re-read must beat its cold pass.
			if arm.HotNs >= arm.ColdNs {
				t.Errorf("%s coll=%v armed: hot pass %dns not faster than cold %dns",
					pattern, coll, arm.HotNs, arm.ColdNs)
			}
		}
		// Collective reads collapse overlapping requests before the file
		// system: the shared pattern's per-request cold pass must cost at
		// least Clients times the collective cold pass.
		dis := byKey[key{PatternShared, 0, false}]
		col := byKey[key{PatternShared, 0, true}]
		if dis.FSReadsCold < int64(opts.Clients)*col.FSReadsCold {
			t.Errorf("shared: per-request cold pass %d fs reads, collective %d — overlap not collapsed",
				dis.FSReadsCold, col.FSReadsCold)
		}
	}
}

// TestDelegateReadDeterministicColumns re-runs the sweep and requires the
// count columns (everything but the virtual times) to be identical — the
// property CI's double-run diff rests on.
func TestDelegateReadDeterministicColumns(t *testing.T) {
	opts := smallDelegateReadOpts()
	strip := func(points []DelegateReadPoint) []DelegateReadPoint {
		out := append([]DelegateReadPoint(nil), points...)
		for i := range out {
			out[i].ColdNs, out[i].HotNs, out[i].Speedup = 0, 0, 0
		}
		return out
	}
	_, a, err := DelegateRead(opts)
	if err != nil {
		t.Fatalf("DelegateRead: %v", err)
	}
	_, b, err := DelegateRead(opts)
	if err != nil {
		t.Fatalf("DelegateRead: %v", err)
	}
	if !reflect.DeepEqual(strip(a), strip(b)) {
		t.Errorf("deterministic columns differ:\n%+v\n---\n%+v", strip(a), strip(b))
	}
}

func TestDelegateReadValidate(t *testing.T) {
	opts := smallDelegateReadOpts()
	opts.Servers = 0
	if _, _, err := DelegateRead(opts); err == nil {
		t.Errorf("serverless read sweep accepted")
	}
	opts = smallDelegateReadOpts()
	opts.ReqSize = 96 // 2048 / (96*4) does not divide
	if _, _, err := DelegateRead(opts); err == nil {
		t.Errorf("misaligned request size accepted")
	}
	opts = smallDelegateReadOpts()
	opts.Patterns = []string{"zigzag"}
	if _, _, err := DelegateRead(opts); err == nil {
		t.Errorf("unknown pattern accepted")
	}
}
