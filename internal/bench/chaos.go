package bench

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/stats"
)

// This file implements the chaos ablation: the synthetic benchmark run
// under deterministic fault injection, sweeping the OST transient-error
// rate while the interconnect, the memory accountant, and the one-sided
// put path misbehave at fixed background rates. Every injection decision
// derives from the seed, so two runs with the same seed produce identical
// injection and retry counts — the property the chaos tests pin down.

// ChaosOptions configures the chaos sweep.
type ChaosOptions struct {
	// Seed drives every injection decision.
	Seed int64
	// Procs is the process count of each run.
	Procs int
	// Rates lists the OST transient-error probabilities to sweep (applied
	// to both reads and writes).
	Rates []float64
	// SlowProb/SlowFactor inject slow OST services: with probability
	// SlowProb a request's service time is multiplied by SlowFactor.
	SlowProb   float64
	SlowFactor float64
	// NetSetupProb drops interconnect connection setups (NIC-retried).
	NetSetupProb float64
	// MemProb injects transient allocation pressure.
	MemProb float64
	// PutDropProb drops TCIO's one-sided put work requests
	// (library-retried).
	PutDropProb float64
	// DrainWorkers is TCIO's per-OST drain fan-out for the sweep's runs
	// (0 or 1 = serial). Counts stay seed-deterministic at any setting:
	// the fan-out reorders requests across OSTs but never changes which
	// requests are issued or how their fault rolls are keyed.
	DrainWorkers int
	// StripeCount overrides the file stripe width in OSTs (0 keeps the
	// paper's single-OST striping). A multi-OST stripe gives DrainWorkers
	// real fan-out to reorder requests across.
	StripeCount int
	// LenSim and LenReal size the workload like SweepOptions.
	LenSim  int
	LenReal int
	// Verify makes readers check every byte against the generator.
	Verify bool
	// Progress receives one line per completed run.
	Progress func(string)
}

// DefaultChaos returns the sweep reported in EXPERIMENTS.md: 64 processes,
// OST error rates 0 / 1% / 5%, with background interconnect, memory, and
// put-path faults.
func DefaultChaos() ChaosOptions {
	return ChaosOptions{
		Seed:         1,
		Procs:        64,
		Rates:        []float64{0, 0.01, 0.05},
		SlowProb:     0.02,
		SlowFactor:   8,
		NetSetupProb: 0.01,
		MemProb:      0.005,
		PutDropProb:  0.01,
		LenSim:       4 << 20,
		LenReal:      4 << 10,
		Verify:       true,
	}
}

// ChaosInjector builds the sweep's injector for one OST error rate: the
// rate applies to OST reads and writes, the remaining sites run at the
// sweep's background probabilities.
func (o ChaosOptions) ChaosInjector(rate float64) *faults.Injector {
	return faults.New(o.Seed).
		Set(faults.SiteOSTWrite, faults.Rule{Prob: rate}).
		Set(faults.SiteOSTRead, faults.Rule{Prob: rate}).
		Set(faults.SiteOSTSlow, faults.Rule{Prob: o.SlowProb, Factor: o.SlowFactor}).
		Set(faults.SiteNetSetup, faults.Rule{Prob: o.NetSetupProb}).
		Set(faults.SiteMemAlloc, faults.Rule{Prob: o.MemProb}).
		Set(faults.SiteWinPut, faults.Rule{Prob: o.PutDropProb})
}

// NewChaosEnv builds a benchmark environment whose file system, network,
// and memory accountant all inject from the given fault injector.
func NewChaosEnv(scale int64, inj *faults.Injector) (*Env, error) {
	env, err := NewEnv(scale)
	if err != nil {
		return nil, err
	}
	fscfg := env.FS.Config()
	fscfg.Faults = inj
	env.FS = pfs.New(fscfg)
	env.Faults = inj
	return env, nil
}

// Chaos runs TCIO and OCIO write+read under each OST error rate and
// tabulates injection and retry counts. Only deterministic quantities are
// reported (counts, not virtual times), so two sweeps with the same seed
// emit byte-identical tables.
func Chaos(opts ChaosOptions) (stats.Table, error) {
	if len(opts.Rates) == 0 {
		opts.Rates = DefaultChaos().Rates
	}
	t := stats.Table{
		Title: fmt.Sprintf("Chaos sweep: %d processes, seed %d (counts are seed-deterministic)",
			opts.Procs, opts.Seed),
		Headers: []string{"ost-rate", "method", "phase", "drain-workers", "injected", "fs-retries",
			"setup-retries", "slow-svc", "lock-storms", "alloc-retries", "result"},
	}
	types := []datatype.Type{datatype.Int, datatype.Double}
	for _, rate := range opts.Rates {
		for _, method := range []Method{MethodTCIO, MethodOCIO} {
			inj := opts.ChaosInjector(rate)
			scale := int64(opts.LenSim / opts.LenReal)
			env, err := NewChaosEnv(scale, inj)
			if err != nil {
				return t, err
			}
			if opts.StripeCount > 1 {
				fscfg := env.FS.Config()
				fscfg.StripeCount = opts.StripeCount
				env.FS = pfs.New(fscfg)
			}
			cfg := SyntheticConfig{
				Method:       method,
				Procs:        opts.Procs,
				TypeArray:    types,
				LenArray:     opts.LenReal,
				SizeAccess:   1,
				Verify:       opts.Verify,
				FileName:     fmt.Sprintf("chaos-%v-%d", method, int(rate*1000)),
				DrainWorkers: opts.DrainWorkers,
			}
			workers := opts.DrainWorkers
			if workers < 1 {
				workers = 1
			}
			for _, write := range []bool{true, false} {
				phase := "read"
				if write {
					phase = "write"
				}
				before := inj.TotalInjected()
				pr := runPhase(env, cfg, write)
				result := "ok"
				if pr.Failed {
					result = pr.FailReason
				}
				t.AddRow(
					fmt.Sprintf("%.2f", rate),
					method.String(),
					phase,
					fmt.Sprintf("%d", workers),
					fmt.Sprintf("%d", inj.TotalInjected()-before),
					fmt.Sprintf("%d", pr.FS.Retries),
					fmt.Sprintf("%d", pr.Net.SetupRetries),
					fmt.Sprintf("%d", pr.FS.SlowServices),
					fmt.Sprintf("%d", pr.FS.LockStorms),
					fmt.Sprintf("%d", pr.AllocRetries),
					result,
				)
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("chaos rate=%.2f %v %s: %s (injected %d)",
						rate, method, phase, result, inj.TotalInjected()-before))
				}
				if pr.Failed && write {
					break // nothing on disk to read back
				}
			}
		}
	}
	return t, nil
}
