// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§V) on the simulated cluster.
//
// The synthetic benchmark reproduces the paper's workload (Table I): each
// of P processes holds NUMarray in-memory arrays of LENarray elements and
// writes them to a shared file interleaved round-robin — process p's k-th
// block of SIZEaccess elements per array lands at file block k*P + p. Three
// methods are compared (Table I's `method` parameter): OCIO (ROMIO two-
// phase collective I/O, Program 2), TCIO (Program 3), and vanilla MPI-IO.
//
// Paper-scale datasets are mapped onto test-scale buffers with the
// machine's ByteScale: algorithms move realBytes = simBytes/scale, while
// the network, file system, and memory models charge simulated bytes. The
// stripe size shrinks by the same factor, so message and request counts —
// the drivers of the performance shapes — match paper scale exactly.
package bench

import (
	"errors"
	"fmt"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/netsim"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/stats"
)

// Method is Table I's `method` parameter.
type Method int

// Benchmark methods.
const (
	// MethodOCIO is the original collective I/O (ROMIO two-phase).
	MethodOCIO Method = iota
	// MethodTCIO is transparent collective I/O.
	MethodTCIO
	// MethodVanilla is vanilla MPI-IO: independent per-piece accesses.
	MethodVanilla
)

// String names the method as the paper does.
func (m Method) String() string {
	switch m {
	case MethodOCIO:
		return "OCIO"
	case MethodTCIO:
		return "TCIO"
	case MethodVanilla:
		return "MPI-IO"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SyntheticConfig mirrors the paper's Table I configuration parameters.
type SyntheticConfig struct {
	// Method selects the I/O implementation under test.
	Method Method
	// Procs is NUMproc.
	Procs int
	// TypeArray lists the per-array element types (Table I: "i,d" means
	// one int array and one double array). Its length is NUMarray.
	TypeArray []datatype.Type
	// LenArray is LENarray: elements per array per process, in real
	// elements (multiply by the machine's ByteScale for simulated size).
	LenArray int
	// SizeAccess is SIZEaccess: array elements per I/O access.
	SizeAccess int
	// Verify makes readers check every byte against the generator.
	Verify bool
	// FileName is the shared file's name.
	FileName string

	// TCIO ablation knobs (effective with MethodTCIO only; see the
	// corresponding tcio.Config switches).
	Level1Disabled        bool
	DemandPopulate        bool
	EmulateTwoSided       bool
	SegmentSizeMultiplier float64 // level-2 segment size relative to the stripe (0 = 1)
	// DrainWorkers bounds TCIO's per-OST worker fan-out for file system
	// batches (drain, populate, preload). 0 or 1 means serial.
	DrainWorkers int

	// OCIOAggregators enables ROMIO-style collective buffering for
	// MethodOCIO: only this many ranks aggregate (0 = all ranks, the
	// paper's setting).
	OCIOAggregators int
}

// blockSize is one process's bytes per iteration: all arrays' SIZEaccess
// elements.
func (c SyntheticConfig) blockSize() int64 {
	var n int64
	for _, t := range c.TypeArray {
		n += t.Size() * int64(c.SizeAccess)
	}
	return n
}

func (c SyntheticConfig) iters() int { return c.LenArray / c.SizeAccess }

// FileBytes is the shared file's size in real bytes.
func (c SyntheticConfig) FileBytes() int64 {
	return c.blockSize() * int64(c.iters()) * int64(c.Procs)
}

func (c SyntheticConfig) validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("bench: %d procs", c.Procs)
	}
	if len(c.TypeArray) == 0 {
		return errors.New("bench: no arrays")
	}
	if c.SizeAccess < 1 || c.LenArray < 1 || c.LenArray%c.SizeAccess != 0 {
		return fmt.Errorf("bench: LenArray=%d SizeAccess=%d", c.LenArray, c.SizeAccess)
	}
	if c.FileName == "" {
		return errors.New("bench: no file name")
	}
	return nil
}

// ParseTypes resolves Table I's TYPEarray string ("i,d") to element types.
func ParseTypes(spec string) ([]datatype.Type, error) {
	var out []datatype.Type
	start := 0
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == ',' {
			t, err := datatype.ByName(spec[start:i])
			if err != nil {
				return nil, err
			}
			out = append(out, t)
			start = i + 1
		}
	}
	return out, nil
}

// chargePieces charges the application-level cost of touching n pieces
// (e.g. Program 2's combine/scatter loops), scaled like all per-item costs.
func chargePieces(c *mpi.Comm, n int) {
	c.Compute(simtime.Duration(150) * simtime.Duration(n) * simtime.Duration(c.Machine().ByteScale))
}

// element generates the deterministic byte at position b of element e of
// array j on the given rank — the ground truth readers verify against.
func element(rank, j, e, b int) byte {
	return byte(rank*131 + j*67 + e*29 + b*11 + 7)
}

// makeArray materializes one rank's array j, charging it to the rank's
// memory share (the application's own data counts toward the paper's
// memory budget analysis).
func makeArray(c *mpi.Comm, cfg SyntheticConfig, j int) ([]byte, error) {
	width := int(cfg.TypeArray[j].Size())
	buf, err := c.Malloc(int64(cfg.LenArray) * int64(width))
	if err != nil {
		return nil, fmt.Errorf("application array %d: %w", j, err)
	}
	for e := 0; e < cfg.LenArray; e++ {
		for b := 0; b < width; b++ {
			buf[e*width+b] = element(c.Rank(), j, e, b)
		}
	}
	return buf, nil
}

// verifyArrays checks read-back arrays against the generator.
func verifyArrays(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	for j, arr := range arrays {
		width := int(cfg.TypeArray[j].Size())
		for e := 0; e < cfg.LenArray; e++ {
			for b := 0; b < width; b++ {
				if got, want := arr[e*width+b], element(c.Rank(), j, e, b); got != want {
					return fmt.Errorf("rank %d array %d element %d byte %d: got %#x want %#x",
						c.Rank(), j, e, b, got, want)
				}
			}
		}
	}
	return nil
}

// Env is a simulated environment scaled so that paper-sized datasets fit a
// test process: real sizes are simulated sizes divided by Scale.
type Env struct {
	Machine cluster.Machine
	FS      *pfs.FileSystem
	Scale   int64
	// Faults, when non-nil, arms chaos injection across the environment's
	// hardware for every run (see NewChaosEnv).
	Faults *faults.Injector
}

// NewEnv builds a Lonestar-like environment with the given byte scale.
// The file system stripe (and hence TCIO's default segment size) shrinks by
// the same factor, preserving message and request counts.
func NewEnv(scale int64) (*Env, error) {
	if scale < 1 || (1<<20)%scale != 0 {
		return nil, fmt.Errorf("bench: scale %d must divide 1 MiB", scale)
	}
	m := cluster.Lonestar()
	m.ByteScale = scale
	fscfg := pfs.DefaultConfig()
	fscfg.ByteScale = scale
	fscfg.StripeSize = (1 << 20) / scale
	fscfg.ReadAhead = fscfg.StripeSize
	return &Env{Machine: m, FS: pfs.New(fscfg), Scale: scale}, nil
}

// PhaseResult captures one phase (write or read) of a benchmark run.
type PhaseResult struct {
	Method     Method
	Procs      int
	SimBytes   int64 // data moved, in simulated bytes
	Time       simtime.Duration
	MBs        float64 // aggregate throughput, MBytes/sec (simulated)
	Failed     bool
	FailReason string
	Net        netsim.Stats
	FS         pfs.Stats
	PeakMemory int64 // simulated bytes, max over ranks
	// AllocRetries counts transient allocation pressure absorbed by the
	// runtime's backoff (chaos runs only).
	AllocRetries int64
}

// Result is a full write+read benchmark run.
type Result struct {
	Write PhaseResult
	Read  PhaseResult
}

// RunSynthetic executes the write phase and then the read phase of the
// synthetic benchmark in the given environment, with memory enforcement on
// (the paper's Fig. 6/7 failure mode depends on it).
func RunSynthetic(env *Env, cfg SyntheticConfig) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var res Result
	res.Write = runPhase(env, cfg, true)
	if res.Write.Failed {
		// The paper still reads the dataset written by a working run when
		// the writer fails; here reads require a written file, so mark the
		// read phase failed for the same reason.
		res.Read = res.Write
		return res, nil
	}
	res.Read = runPhase(env, cfg, false)
	return res, nil
}

// runPhase runs one direction of the benchmark in a fresh world that
// shares the environment's file system.
func runPhase(env *Env, cfg SyntheticConfig, write bool) PhaseResult {
	env.FS.Reset()
	pr := PhaseResult{
		Method:   cfg.Method,
		Procs:    cfg.Procs,
		SimBytes: cfg.FileBytes() * env.Scale,
	}
	rep, err := mpi.Run(mpi.Config{
		Procs:         cfg.Procs,
		Machine:       env.Machine,
		FS:            env.FS,
		EnforceMemory: true,
		Faults:        env.Faults,
	}, func(c *mpi.Comm) error {
		if write {
			return writeWorkload(c, cfg)
		}
		return readWorkload(c, cfg)
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.PeakMemory = rep.PeakMemory
	pr.AllocRetries = rep.AllocRetries
	return pr
}

func failReason(err error) string {
	if errors.Is(err, cluster.ErrOutOfMemory) {
		return "out of memory"
	}
	if errors.Is(err, faults.ErrExhaustedRetries) {
		return "retries exhausted"
	}
	if errors.Is(err, mpi.ErrAborted) {
		return "aborted"
	}
	return err.Error()
}

// writeWorkload dispatches to the method's writer.
func writeWorkload(c *mpi.Comm, cfg SyntheticConfig) error {
	arrays := make([][]byte, len(cfg.TypeArray))
	for j := range arrays {
		a, err := makeArray(c, cfg, j)
		if err != nil {
			return err
		}
		arrays[j] = a
	}
	defer func() {
		for _, a := range arrays {
			c.Free(a)
		}
	}()
	switch cfg.Method {
	case MethodOCIO:
		return Program2Write(c, cfg, arrays)
	case MethodTCIO:
		return Program3Write(c, cfg, arrays)
	case MethodVanilla:
		return VanillaWrite(c, cfg, arrays)
	default:
		return fmt.Errorf("bench: unknown method %v", cfg.Method)
	}
}

// readWorkload dispatches to the method's reader and verifies if asked.
func readWorkload(c *mpi.Comm, cfg SyntheticConfig) error {
	arrays := make([][]byte, len(cfg.TypeArray))
	for j := range arrays {
		width := cfg.TypeArray[j].Size()
		a, err := c.Malloc(int64(cfg.LenArray) * width)
		if err != nil {
			return fmt.Errorf("application array %d: %w", j, err)
		}
		arrays[j] = a
	}
	defer func() {
		for _, a := range arrays {
			c.Free(a)
		}
	}()
	var err error
	switch cfg.Method {
	case MethodOCIO:
		err = Program2Read(c, cfg, arrays)
	case MethodTCIO:
		err = Program3Read(c, cfg, arrays)
	case MethodVanilla:
		err = VanillaRead(c, cfg, arrays)
	default:
		err = fmt.Errorf("bench: unknown method %v", cfg.Method)
	}
	if err != nil {
		return err
	}
	if cfg.Verify {
		return verifyArrays(c, cfg, arrays)
	}
	return nil
}
