package bench

// This file is the Go rendition of the paper's Program 3: the same
// interleaved workload as Program 2 (program2.go), but written against
// TCIO. No combine buffer, no derived datatypes, no file view — the
// application just seeks and writes each piece of data where it belongs.
// cmd/loccount compares the two files to reproduce the paper's
// programming-effort result.

import (
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/tcio"
)

// tcioConfigFor sizes the level-2 buffers to cover the benchmark's file:
// the paper's "a user needs to specify the segment size and the number of
// segments per process".
func tcioConfigFor(c *mpi.Comm, cfg SyntheticConfig) tcio.Config {
	segSize := c.FS().Config().StripeSize
	if cfg.SegmentSizeMultiplier > 0 {
		segSize = int64(float64(segSize) * cfg.SegmentSizeMultiplier)
		if segSize < 1 {
			segSize = 1
		}
	}
	perRank := (cfg.FileBytes() + int64(c.Size())*segSize - 1) / (int64(c.Size()) * segSize)
	if perRank < 1 {
		perRank = 1
	}
	return tcio.Config{
		SegmentSize:     segSize,
		NumSegments:     int(perRank),
		DrainWorkers:    cfg.DrainWorkers,
		DisableLevel1:   cfg.Level1Disabled,
		DemandPopulate:  cfg.DemandPopulate,
		EmulateTwoSided: cfg.EmulateTwoSided,
	}
}

// Program3Write writes the interleaved workload with TCIO, following the
// paper's Program 3 step by step.
func Program3Write(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	// BEGIN PROGRAM 3 WRITE
	// 1. block_size <- (sizeof(int)+sizeof(double)) * SIZEaccess
	blockSize := cfg.blockSize()
	// 2. handle <- tcio_open(file_name, mode)
	handle, err := tcio.Open(c, cfg.FileName, tcio.WriteMode, tcioConfigFor(c, cfg))
	if err != nil {
		return err
	}
	// 3. Output each piece of data where it belongs, in POSIX fashion.
	for i := 0; i < cfg.iters(); i++ {
		pos := int64(c.Rank())*blockSize + int64(i)*blockSize*int64(c.Size())
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			if err := handle.WriteAt(pos, arrays[j][lo:hi]); err != nil {
				return err
			}
			pos += int64(cfg.SizeAccess * width)
		}
	}
	// 4. tcio_close(handle)
	return handle.Close()
	// END PROGRAM 3 WRITE
}

// Program3Read reads the workload back with TCIO: the same POSIX-style
// loop issuing lazy reads straight into the application arrays.
func Program3Read(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	// BEGIN PROGRAM 3 READ
	blockSize := cfg.blockSize()
	handle, err := tcio.Open(c, cfg.FileName, tcio.ReadMode, tcioConfigFor(c, cfg))
	if err != nil {
		return err
	}
	for i := 0; i < cfg.iters(); i++ {
		pos := int64(c.Rank())*blockSize + int64(i)*blockSize*int64(c.Size())
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			if err := handle.ReadAt(pos, arrays[j][lo:hi]); err != nil {
				return err
			}
			pos += int64(cfg.SizeAccess * width)
		}
	}
	// tcio_close fetches any still-pending lazy reads before returning.
	return handle.Close()
	// END PROGRAM 3 READ
}
