package bench

import (
	"testing"

	"github.com/tcio/tcio/internal/conformance"
	"github.com/tcio/tcio/internal/datatype"
)

// TestConformanceBridge ties the two independent workload models together:
// the bench package's interleaved-placement formula (process p's i-th
// block of each array lands at file block i*P + p) and the conformance
// harness's dense ground-truth cover model. The synthetic workload is
// translated into a conformance Program, the per-byte cover map must
// reproduce the placement formula exactly, and the translated program must
// conform across all three engines.
func TestConformanceBridge(t *testing.T) {
	cfg := SyntheticConfig{
		Method:     MethodTCIO,
		Procs:      4,
		TypeArray:  []datatype.Type{datatype.Int, datatype.Double},
		LenArray:   32,
		SizeAccess: 1,
		FileName:   "bridge",
	}
	blockSize := cfg.blockSize()
	iters := cfg.iters()

	prog := &conformance.Program{
		Seed:        42,
		Procs:       cfg.Procs,
		SegmentSize: blockSize,
		NumSegments: iters,
		FileBytes:   cfg.FileBytes(),
		StripeSize:  64,
		StripeCount: 2,
	}
	var writes conformance.Round
	id := int64(1)
	for p := 0; p < cfg.Procs; p++ {
		for i := 0; i < iters; i++ {
			writes.Ops = append(writes.Ops, conformance.Op{
				Rank: p,
				Off:  (int64(i)*int64(cfg.Procs) + int64(p)) * blockSize,
				Len:  blockSize,
				ID:   id,
			})
			id++
		}
	}
	prog.WriteRounds = []conformance.Round{writes}
	var reads conformance.Round
	for p := 0; p < cfg.Procs; p++ {
		// Each rank reads back a strided sample of its own blocks.
		for i := p; i < iters; i += cfg.Procs {
			reads.Ops = append(reads.Ops, conformance.Op{
				Rank: p,
				Off:  (int64(i)*int64(cfg.Procs) + int64(p)) * blockSize,
				Len:  blockSize,
			})
		}
	}
	prog.ReadRounds = []conformance.Round{reads}

	if err := prog.Validate(); err != nil {
		t.Fatalf("translated workload invalid: %v", err)
	}

	// The cover map must agree byte-for-byte with the placement formula.
	cover := prog.CoverIDs()
	if int64(len(cover)) != cfg.FileBytes() {
		t.Fatalf("cover map is %d bytes, workload defines %d", len(cover), cfg.FileBytes())
	}
	for off := int64(0); off < cfg.FileBytes(); off++ {
		block := off / blockSize
		p := block % int64(cfg.Procs)
		i := block / int64(cfg.Procs)
		wantID := p*int64(iters) + i + 1
		if cover[off] != wantID {
			t.Fatalf("byte %d covered by op %d, placement formula says %d", off, cover[off], wantID)
		}
	}

	out := conformance.Check(prog)
	t.Log(out.Summary)
	for _, d := range out.Divergences {
		t.Errorf("%s", d)
	}
}
