package bench

// Vanilla MPI-IO baseline: the same POSIX-style loop as Program 3, but
// every piece is an independent MPI-IO access — no buffering, no
// aggregation, no coordination. This is the baseline the ART application
// compares TCIO against in the paper's Figs. 9-10.

import (
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
)

// VanillaWrite writes the interleaved workload with independent MPI-IO.
func VanillaWrite(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	blockSize := cfg.blockSize()
	handle, err := mpiio.Open(c, cfg.FileName)
	if err != nil {
		return err
	}
	for i := 0; i < cfg.iters(); i++ {
		pos := int64(c.Rank())*blockSize + int64(i)*blockSize*int64(c.Size())
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			if err := handle.WriteAt(pos, arrays[j][lo:hi]); err != nil {
				return err
			}
			pos += int64(cfg.SizeAccess * width)
		}
	}
	return handle.Close()
}

// VanillaRead reads the workload back with independent MPI-IO.
func VanillaRead(c *mpi.Comm, cfg SyntheticConfig, arrays [][]byte) error {
	blockSize := cfg.blockSize()
	handle, err := mpiio.Open(c, cfg.FileName)
	if err != nil {
		return err
	}
	for i := 0; i < cfg.iters(); i++ {
		pos := int64(c.Rank())*blockSize + int64(i)*blockSize*int64(c.Size())
		for j := range arrays {
			width := int(cfg.TypeArray[j].Size())
			lo := i * cfg.SizeAccess * width
			hi := lo + cfg.SizeAccess*width
			got, err := handle.ReadAt(pos, int64(cfg.SizeAccess*width))
			if err != nil {
				return err
			}
			copy(arrays[j][lo:hi], got)
			pos += int64(cfg.SizeAccess * width)
		}
	}
	return handle.Close()
}
