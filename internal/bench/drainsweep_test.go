package bench

import (
	"testing"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/pfs"
)

// drainRun executes the TCIO write phase on a file striped over seven OSTs
// at the given drain fan-out and returns the phase result. The stripe
// width is coprime to the process count so each rank's segments spread
// over every OST (see DrainSweepOptions.StripeCount).
func drainRun(t *testing.T, workers int) PhaseResult {
	t.Helper()
	env, err := NewEnv(256)
	if err != nil {
		t.Fatal(err)
	}
	fscfg := env.FS.Config()
	fscfg.StripeCount = 7
	env.FS = pfs.New(fscfg)
	cfg := SyntheticConfig{
		Method:       MethodTCIO,
		Procs:        8,
		TypeArray:    []datatype.Type{datatype.Int, datatype.Double},
		LenArray:     4 << 10,
		SizeAccess:   1,
		Verify:       true,
		FileName:     "drainsweep-test",
		DrainWorkers: workers,
	}
	pr := runPhase(env, cfg, true)
	if pr.Failed {
		t.Fatalf("workers=%d write failed: %s", workers, pr.FailReason)
	}
	return pr
}

// TestDrainWorkersCutWriteTime pins the headline claim of the drain
// fan-out: on a multi-OST stripe, draining with several workers finishes
// in less virtual time than the serial drain, while issuing exactly the
// same file system requests.
func TestDrainWorkersCutWriteTime(t *testing.T) {
	serial := drainRun(t, 1)
	parallel := drainRun(t, 4)
	if parallel.Time >= serial.Time {
		t.Fatalf("workers=4 write time %v not below workers=1 %v", parallel.Time, serial.Time)
	}
	if parallel.FS.Writes != serial.FS.Writes {
		t.Fatalf("fan-out changed the request stream: %d writes vs %d",
			parallel.FS.Writes, serial.FS.Writes)
	}
	if parallel.SimBytes != serial.SimBytes {
		t.Fatalf("fan-out changed the byte count: %d vs %d", parallel.SimBytes, serial.SimBytes)
	}
}

// TestDrainSweepTable runs the sweep end to end and checks every row
// verified clean.
func TestDrainSweepTable(t *testing.T) {
	opts := DefaultDrainSweep()
	opts.Procs = 8
	opts.Workers = []int{1, 4}
	opts.LenSim = 1 << 20
	opts.LenReal = 4 << 10
	tbl, err := DrainSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(opts.Workers) {
		t.Fatalf("%d rows for %d worker settings", len(tbl.Rows), len(opts.Workers))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v did not verify", row)
		}
	}
}
