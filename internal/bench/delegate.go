package bench

// This file implements the I/O delegation sweep: a strided small-write
// workload run through internal/delegate while the server count, the
// number of concurrently open files, and the request size vary.
//
// The workload deals request-size blocks of each file round-robin to the
// client ranks, so every client's stream is maximally strided — the
// pattern the delegation tier exists for. Each cell runs the same
// application work (same clients, same bytes) and only moves where the
// aggregation happens:
//
//   - servers = 0 is the pass-through baseline: the tier dissolves and
//     every rank writes through tcio directly, so the file system sees
//     tcio's per-owner segment drains.
//
//   - servers > 0 withdraws that many extra ranks as dedicated I/O
//     servers. Clients ship domain-sized pieces over the request
//     protocol; each server stages them and drains one coalesced batch
//     per flush epoch. The staged/runs columns are the aggregation
//     factor: thousands of staged client writes reaching the file system
//     as a handful of long extent runs.
//
// Bytes are verified on read-back through the same tier configuration at
// every setting; delegation may not change a single byte.

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/delegate"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
)

// DelegateOptions configures the delegation sweep.
type DelegateOptions struct {
	// Clients is the application rank count of every cell; delegated
	// cells run Clients+servers ranks total.
	Clients int
	// SegSize is the real tcio segment size in bytes.
	SegSize int64
	// SegsPerClient is the per-client segment count; each file is exactly
	// Clients x SegsPerClient segments.
	SegsPerClient int
	// Servers lists the server-rank counts swept (0 = pass-through).
	Servers []int
	// Files lists the concurrently-open file counts swept.
	Files []int
	// ReqSizes lists the real client request sizes swept.
	ReqSizes []int64
	// QueueDepth is the per-(client, server) admission window (0 = 8).
	QueueDepth int
	// Scale is the environment byte scale (simulated bytes per real byte).
	Scale int64
	// Verify reads every file back through the same tier configuration
	// and checks each byte against the generator.
	Verify bool
	// Progress receives one line per completed cell.
	Progress func(string)
}

// DefaultDelegate sweeps 0/1/2 servers against 1 and 2 open files and
// 256 B / 2 KiB (real) requests, over 8 client ranks and 16 KiB (real)
// segments.
func DefaultDelegate() DelegateOptions {
	return DelegateOptions{
		Clients:       8,
		SegSize:       16 << 10,
		SegsPerClient: 4,
		Servers:       []int{0, 1, 2},
		Files:         []int{1, 2},
		ReqSizes:      []int64{256, 2 << 10},
		QueueDepth:    8,
		Scale:         16,
		Verify:        true,
	}
}

// DelegatePoint is one cell's result. Sizes are simulated bytes.
type DelegatePoint struct {
	Servers       int     `json:"servers"`
	Files         int     `json:"files"`
	ReqSize       int64   `json:"req_size"`
	Procs         int     `json:"procs"`
	VirtualTimeNs int64   `json:"virtual_time_ns"`
	MBs           float64 `json:"mbs"`
	WriteReqs     int64   `json:"write_reqs"`
	CreditStalls  int64   `json:"credit_stalls"`
	Staged        int64   `json:"staged_writes"`
	BatchedRuns   int64   `json:"batched_runs"`
	FSWrites      int64   `json:"fs_writes"`
	Result        string  `json:"result"`
}

// DelegateReport is the machine-readable result of one sweep
// (tciobench -delegate -json).
type DelegateReport struct {
	Clients       int             `json:"clients"`
	SegsPerClient int             `json:"segs_per_client"`
	SegSize       int64           `json:"seg_size"` // simulated bytes
	QueueDepth    int             `json:"queue_depth"`
	Scale         int64           `json:"scale"`
	Points        []DelegatePoint `json:"points"`
	// ReadPoints holds the delegated read sweep's cells (DelegateRead);
	// nil when only the write sweep ran.
	ReadPoints []DelegateReadPoint `json:"read_points,omitempty"`
}

// delegateByte is the workload's deterministic content generator; the
// file index is mixed in so cross-file bleed cannot verify.
func delegateByte(fi int, off int64) byte {
	x := uint64(off)*0x9E3779B97F4A7C15 + uint64(fi+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return byte(x * 0xD1342543DE82EF95 >> 56)
}

// delegateFileBytes is the per-file size: every client owns its share of
// every segment, dealt in request-size blocks.
func delegateFileBytes(opts DelegateOptions) int64 {
	return opts.SegSize * int64(opts.SegsPerClient) * int64(opts.Clients)
}

func delegateFileName(fi int) string { return fmt.Sprintf("delegate-%d.dat", fi) }

// delegateConfig builds the tier configuration for one cell.
func delegateConfig(opts DelegateOptions, servers int) delegate.Config {
	return delegate.Config{
		ServerRanks: servers,
		QueueDepth:  opts.QueueDepth,
		TCIO: tcio.Config{
			SegmentSize:    opts.SegSize,
			NumSegments:    opts.SegsPerClient,
			DemandPopulate: true,
		},
	}
}

// delegateAgg is the cell's aggregated protocol and server counters.
type delegateAgg struct {
	writeReqs    int64 // protocol write requests (pass-through: write calls)
	creditStalls int64
	staged       int64 // server-side; zero in pass-through
	batchedRuns  int64
	retries      int64
}

// delegateWrite runs one cell's write phase: every client writes its
// round-robin blocks of every file, flushes, and closes.
func delegateWrite(opts DelegateOptions, env *Env, servers, files int,
	reqSize int64) (PhaseResult, delegateAgg) {
	env.FS.Reset()
	procs := opts.Clients + servers
	fileBytes := delegateFileBytes(opts)
	pr := PhaseResult{
		Method:   MethodTCIO,
		Procs:    procs,
		SimBytes: fileBytes * int64(files) * opts.Scale,
	}
	var agg delegateAgg
	var mu sync.Mutex
	cfg := delegateConfig(opts, servers)
	col := &delegate.Collector{}
	cfg.Collect = col
	rep, err := mpi.Run(mpi.Config{
		Procs:   procs,
		Machine: env.Machine,
		FS:      env.FS,
		Faults:  env.Faults,
	}, func(c *mpi.Comm) error {
		return delegate.Run(c, cfg, func(tr *delegate.Tier) error {
			handles := make([]*delegate.File, files)
			for fi := range handles {
				f, err := tr.Open(delegateFileName(fi), tcio.WriteMode)
				if err != nil {
					return err
				}
				handles[fi] = f
			}
			buf := make([]byte, reqSize)
			stride := reqSize * int64(opts.Clients)
			for fi, f := range handles {
				for off := int64(tr.ClientIndex()) * reqSize; off < fileBytes; off += stride {
					for i := range buf {
						buf[i] = delegateByte(fi, off+int64(i))
					}
					if err := f.WriteAt(off, buf); err != nil {
						return err
					}
				}
			}
			for _, f := range handles {
				if err := f.Flush(); err != nil {
					return err
				}
			}
			for _, f := range handles {
				if err := f.Close(); err != nil {
					return err
				}
				st := f.Stats()
				mu.Lock()
				if tr.IsDelegated() {
					agg.writeReqs += st.WriteReqs
					agg.creditStalls += st.CreditStalls
				} else {
					// Application calls are the request-count baseline the
					// protocol's domain pieces compare against.
					agg.writeReqs += st.Writes
					agg.retries += f.TCIO().Stats().Retries
				}
				mu.Unlock()
			}
			return nil
		})
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr, agg
	}
	for _, s := range col.Servers() {
		agg.staged += s.StagedWrites
		agg.batchedRuns += s.BatchedRuns
		agg.retries += s.Retries
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.AllocRetries = rep.AllocRetries
	return pr, agg
}

// delegateVerify reads every file back through the same tier
// configuration and checks each byte each client wrote.
func delegateVerify(opts DelegateOptions, env *Env, servers, files int,
	reqSize int64) error {
	env.FS.Reset()
	fileBytes := delegateFileBytes(opts)
	cfg := delegateConfig(opts, servers)
	_, err := mpi.Run(mpi.Config{
		Procs:   opts.Clients + servers,
		Machine: env.Machine,
		FS:      env.FS,
		Faults:  env.Faults,
	}, func(c *mpi.Comm) error {
		return delegate.Run(c, cfg, func(tr *delegate.Tier) error {
			handles := make([]*delegate.File, files)
			for fi := range handles {
				f, err := tr.Open(delegateFileName(fi), tcio.ReadMode)
				if err != nil {
					return err
				}
				handles[fi] = f
			}
			// Issue every read first: pass-through reads are lazy until
			// Fetch, delegation reads fill synchronously either way.
			type block struct {
				fi  int
				off int64
				dst []byte
			}
			var blocks []block
			stride := reqSize * int64(opts.Clients)
			for fi, f := range handles {
				for off := int64(tr.ClientIndex()) * reqSize; off < fileBytes; off += stride {
					dst := make([]byte, reqSize)
					if err := f.ReadAt(off, dst); err != nil {
						return err
					}
					blocks = append(blocks, block{fi, off, dst})
				}
			}
			for _, f := range handles {
				if err := f.Fetch(); err != nil {
					return err
				}
			}
			for _, f := range handles {
				if err := f.Close(); err != nil {
					return err
				}
			}
			for _, b := range blocks {
				for i, got := range b.dst {
					if want := delegateByte(b.fi, b.off+int64(i)); got != want {
						return fmt.Errorf("file %d offset %d: got %#x want %#x",
							b.fi, b.off+int64(i), got, want)
					}
				}
			}
			return nil
		})
	})
	return err
}

// validateDelegate checks the sweep's alignment preconditions.
func validateDelegate(opts DelegateOptions) error {
	if opts.Clients < 1 || opts.SegsPerClient < 1 {
		return fmt.Errorf("bench: %d clients, %d segments per client", opts.Clients, opts.SegsPerClient)
	}
	for _, s := range opts.Servers {
		if s < 0 {
			return fmt.Errorf("bench: %d server ranks", s)
		}
	}
	for _, n := range opts.Files {
		if n < 1 {
			return fmt.Errorf("bench: %d files", n)
		}
	}
	fileBytes := delegateFileBytes(opts)
	for _, r := range opts.ReqSizes {
		if r < 1 || fileBytes%(r*int64(opts.Clients)) != 0 {
			return fmt.Errorf("bench: file size %d not dealt evenly by %d clients x %d B requests",
				fileBytes, opts.Clients, r)
		}
	}
	return nil
}

// Delegate runs the full sweep: every (servers, files, request size)
// cell in a fresh environment, write phase plus verified read-back.
func Delegate(opts DelegateOptions) (stats.Table, *DelegateReport, error) {
	if err := validateDelegate(opts); err != nil {
		return stats.Table{}, nil, err
	}
	report := &DelegateReport{
		Clients:       opts.Clients,
		SegsPerClient: opts.SegsPerClient,
		SegSize:       opts.SegSize * opts.Scale,
		QueueDepth:    opts.QueueDepth,
		Scale:         opts.Scale,
	}
	t := stats.Table{
		Title: fmt.Sprintf("I/O delegation: strided writes, %d clients, %d B simulated segments",
			opts.Clients, opts.SegSize*opts.Scale),
		Headers: []string{"servers", "files", "req-size", "time", "MB/s",
			"write-reqs", "staged", "runs", "fs-writes", "stalls", "result"},
	}
	for _, servers := range opts.Servers {
		for _, files := range opts.Files {
			for _, reqSize := range opts.ReqSizes {
				env, err := NewEnv(opts.Scale)
				if err != nil {
					return t, report, err
				}
				pr, agg := delegateWrite(opts, env, servers, files, reqSize)
				result := "ok"
				if pr.Failed {
					result = pr.FailReason
				} else if opts.Verify {
					if err := delegateVerify(opts, env, servers, files, reqSize); err != nil {
						result = fmt.Sprintf("verify: %v", err)
					}
				}
				staged, runs := fmt.Sprintf("%d", agg.staged), fmt.Sprintf("%d", agg.batchedRuns)
				if servers == 0 {
					staged, runs = "-", "-"
				}
				t.AddRow(
					fmt.Sprintf("%d", servers),
					fmt.Sprintf("%d", files),
					fmt.Sprintf("%d", reqSize*opts.Scale),
					pr.Time.String(),
					fmt.Sprintf("%.1f", pr.MBs),
					fmt.Sprintf("%d", agg.writeReqs),
					staged,
					runs,
					fmt.Sprintf("%d", pr.FS.Writes),
					fmt.Sprintf("%d", agg.creditStalls),
					result,
				)
				report.Points = append(report.Points, DelegatePoint{
					Servers:       servers,
					Files:         files,
					ReqSize:       reqSize * opts.Scale,
					Procs:         opts.Clients + servers,
					VirtualTimeNs: int64(pr.Time),
					MBs:           pr.MBs,
					WriteReqs:     agg.writeReqs,
					CreditStalls:  agg.creditStalls,
					Staged:        agg.staged,
					BatchedRuns:   agg.batchedRuns,
					FSWrites:      pr.FS.Writes,
					Result:        result,
				})
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("delegate srv=%d files=%d req=%d: %v fs-writes=%d (%s)",
						servers, files, reqSize*opts.Scale, pr.Time, pr.FS.Writes, result))
				}
			}
		}
	}
	return t, report, nil
}

// DelegateChaos runs a reduced sweep under deterministic fault injection
// and tabulates only seed-deterministic counts, so two runs with the same
// seed emit byte-identical tables — the CI reproducibility check for the
// delegation path. Request arrival order at a server races, but the
// staged-record set, the sorted epoch drain, and hence every fault roll
// the drain keys are pure functions of the program; credit stalls are
// deliberately absent (whether a grant beats the next write is a
// scheduling fact).
func DelegateChaos(opts DelegateOptions, seed int64) (stats.Table, error) {
	if err := validateDelegate(opts); err != nil {
		return stats.Table{}, err
	}
	t := stats.Table{
		Title: fmt.Sprintf("I/O delegation chaos: %d clients, seed %d (counts are seed-deterministic)",
			opts.Clients, seed),
		Headers: []string{"servers", "files", "injected", "retries",
			"write-reqs", "staged", "runs", "fs-writes", "result"},
	}
	chaosBase := DefaultChaos()
	chaosBase.Seed = seed
	reqSize := opts.ReqSizes[0]
	cells := []struct{ servers, files int }{{0, 1}, {1, 1}, {2, 2}}
	for _, c := range cells {
		inj := chaosBase.ChaosInjector(0.01)
		env, err := NewChaosEnv(opts.Scale, inj)
		if err != nil {
			return t, err
		}
		pr, agg := delegateWrite(opts, env, c.servers, c.files, reqSize)
		// Snapshot before the verifying read-back: pass-through clients
		// demand-populate shared segments, so which rank populates what —
		// and hence the read phase's fault rolls — is a scheduling fact.
		// The write path's rolls are operation-keyed.
		injected := inj.TotalInjected()
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		} else if opts.Verify {
			if err := delegateVerify(opts, env, c.servers, c.files, reqSize); err != nil {
				result = fmt.Sprintf("verify: %v", err)
			}
		}
		staged, runs := fmt.Sprintf("%d", agg.staged), fmt.Sprintf("%d", agg.batchedRuns)
		if c.servers == 0 {
			staged, runs = "-", "-"
		}
		t.AddRow(
			fmt.Sprintf("%d", c.servers),
			fmt.Sprintf("%d", c.files),
			fmt.Sprintf("%d", injected),
			fmt.Sprintf("%d", agg.retries),
			fmt.Sprintf("%d", agg.writeReqs),
			staged,
			runs,
			fmt.Sprintf("%d", pr.FS.Writes),
			result,
		)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("delegate chaos srv=%d files=%d: %s", c.servers, c.files, result))
		}
	}
	return t, nil
}
