package bench

import (
	"reflect"
	"testing"
)

func testChaosOptions() ChaosOptions {
	return ChaosOptions{
		Seed:         3,
		Procs:        8,
		Rates:        []float64{0.2},
		SlowProb:     0.05,
		SlowFactor:   4,
		NetSetupProb: 0.02,
		MemProb:      0.01,
		PutDropProb:  0.02,
		LenSim:       64 << 10,
		LenReal:      256,
		Verify:       true,
	}
}

// TestChaosDeterministic pins the acceptance property of the chaos sweep:
// same seed, same injection and retry counts, down to the last cell.
func TestChaosDeterministic(t *testing.T) {
	a, err := Chaos(testChaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(testChaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("chaos sweep not reproducible:\nrun 1: %v\nrun 2: %v", a.Rows, b.Rows)
	}
	if len(a.Rows) != 4 { // TCIO/OCIO x write/read at one rate
		t.Fatalf("rows = %d, want 4", len(a.Rows))
	}
	for _, row := range a.Rows {
		if got := row[len(row)-1]; got != "ok" {
			t.Fatalf("run %v did not survive 20%% transient faults: %s", row[:3], got)
		}
	}
}

// TestChaosCountsWorkerInvariant pins the determinism contract of the
// drain fan-out: on a multi-OST stripe, every injection and retry count in
// the chaos table is identical whether TCIO drains serially or over four
// workers — only the reported drain-workers column may differ. Fault rolls
// key on request identity, so reordering requests across OST lanes cannot
// change them.
func TestChaosCountsWorkerInvariant(t *testing.T) {
	run := func(workers int) [][]string {
		opts := testChaosOptions()
		opts.StripeCount = 7 // coprime with 8 procs: segments spread over OSTs
		opts.DrainWorkers = workers
		tbl, err := Chaos(opts)
		if err != nil {
			t.Fatal(err)
		}
		const workersCol = 3
		rows := make([][]string, len(tbl.Rows))
		for i, row := range tbl.Rows {
			rows[i] = append(append([]string(nil), row[:workersCol]...), row[workersCol+1:]...)
		}
		return rows
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("drain fan-out changed chaos counts:\nworkers=1: %v\nworkers=4: %v",
			serial, parallel)
	}
}

// TestChaosSeedMatters checks that a different seed draws a different fault
// pattern (the sweep is seeded, not hard-wired).
func TestChaosSeedMatters(t *testing.T) {
	a, err := Chaos(testChaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := testChaosOptions()
	opts.Seed = 4
	b, err := Chaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("seeds 3 and 4 produced identical chaos tables")
	}
}
