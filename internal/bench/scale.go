package bench

// The wall-clock scale harness: where every other sweep in this package
// measures *virtual* time (what the simulated machine would take), this one
// measures what the *host* takes to simulate it — the N-clients regime of
// "Design and Evaluation of a Collective IO Model for Loosely Coupled
// Petascale Programming" (PAPERS.md) mapped onto thousands of rank
// goroutines. It drives a fixed strided-write+read program at N ranks for
// each GOMAXPROCS setting and reports wall-clock, ns/op, and B/op next to
// the seed-deterministic virtual-time columns, so CI can diff the
// deterministic columns while the timing columns document host scalability.
//
// The program is deliberately hot-path-heavy: every piece crosses the
// level-1/level-2 ship (window locks + l2meta), every phase boundary is a
// collective (timeBarrier), ring exchanges cross the mailbox (exact and
// AnySource), and a trace recorder rides along so its append path is on the
// clock too.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// ScaleOptions configures the wall-clock scale sweep.
type ScaleOptions struct {
	// Procs lists the simulated rank counts to drive.
	Procs []int
	// GoMaxProcs lists the runtime.GOMAXPROCS settings to sweep.
	GoMaxProcs []int
	// PiecesPerRank is the number of strided pieces each rank writes (and
	// the granularity it reads back in).
	PiecesPerRank int
	// PieceBytes is the real size of one piece.
	PieceBytes int64
	// Verify cross-checks every read-back byte against the generator.
	Verify bool
	// Profiles captures mutex/block profile top entries per point (host
	// timing facts; excluded from deterministic comparisons).
	Profiles bool
	// Progress receives one line per completed point.
	Progress func(string)
}

// DefaultScale sweeps N in {64, 256, 1024, 4096} at GOMAXPROCS in
// {1, 2, 4, 8} — the acceptance grid of the host-scalability work. The
// piece geometry fills exactly one level-2 segment per rank: a rank's
// drain (and preload) is then a single file-system request departing at
// the common post-barrier instant, so the shared OST queue sees symmetric
// customers and its makespan is host-order-independent. Two or more
// segments per rank would chain the second request off the first's
// queue-position-dependent completion and wobble the virtual time.
func DefaultScale() ScaleOptions {
	return ScaleOptions{
		Procs:         []int{64, 256, 1024, 4096},
		GoMaxProcs:    []int{1, 2, 4, 8},
		PiecesPerRank: 32,
		PieceBytes:    scaleSegSize / 32,
		Verify:        true,
		Profiles:      true,
	}
}

// ScalePoint is one (procs, GOMAXPROCS) cell. Wall-clock, per-op, and
// profile fields are host-timing facts and vary run to run; the virtual
// time, request counts, and trace length are seed-deterministic.
type ScalePoint struct {
	Procs      int `json:"procs"`
	GoMaxProcs int `json:"gomaxprocs"`

	// Host timing (nondeterministic).
	WallNs      int64    `json:"wall_ns"`
	NsPerOp     int64    `json:"ns_per_op"`
	BytesPerOp  int64    `json:"b_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	MutexTop    []string `json:"mutex_top,omitempty"`
	BlockTop    []string `json:"block_top,omitempty"`

	// Deterministic (diffed by the CI scale-smoke job).
	VirtualNs   int64  `json:"virtual_ns"`
	FSWrites    int64  `json:"fs_writes"`
	FSReads     int64  `json:"fs_reads"`
	TraceEvents int64  `json:"trace_events"`
	Result      string `json:"result"`
}

// ScaleReport is the machine-readable result of one scale sweep
// (results/BENCH_pr8.json).
type ScaleReport struct {
	PiecesPerRank int          `json:"pieces_per_rank"`
	PieceBytes    int64        `json:"piece_bytes"`
	Points        []ScalePoint `json:"points"`
}

// scaleByte is the ground truth for piece i, byte b of rank r.
func scaleByte(r int, i int, b int64) byte {
	return byte(r*131 + i*29 + int(b)*11 + 7)
}

// scaleOff is the file offset of piece i of rank r: rank r writes the
// segments owned by rank (r+1) mod P, block-cyclically (block = one
// segment, stride = P segments), filling each block with consecutive
// pieces. Every level-1 ship is then a genuine cross-rank one-sided put,
// but each owner's window lock has exactly one customer — the discipline
// that keeps virtual time deterministic under host concurrency (see
// DESIGN.md: shared-resource customers must stay symmetric between
// barriers).
func scaleOff(r, i, p int, pieceBytes int64) int64 {
	perSeg := int(scaleSegSize / pieceBytes)
	block := i / perSeg
	piece := i % perSeg
	seg := int64((r+1)%p) + int64(block)*int64(p)
	return seg*scaleSegSize + int64(piece)*pieceBytes
}

// scaleWant inverts scaleOff: the expected byte at file offset fo.
func scaleWant(fo int64, p int, pieceBytes int64) byte {
	perSeg := int(scaleSegSize / pieceBytes)
	seg := fo / scaleSegSize
	owner := int(seg % int64(p))
	r := (owner - 1 + p) % p
	i := int(seg/int64(p))*perSeg + int(fo%scaleSegSize)/int(pieceBytes)
	return scaleByte(r, i, fo%pieceBytes)
}

// scalePhases is the number of barrier-separated phases of the write loop.
const scalePhases = 4

// scaleSegSize is the level-2 segment size of the scale program: small, so
// thousands of ranks fit real memory while every piece still crosses the
// ship path.
const scaleSegSize = 8192

// runScalePoint executes the strided write + contiguous read program once
// at the given rank count and returns the deterministic columns.
func runScalePoint(opts ScaleOptions, procs int) (ScalePoint, error) {
	pt := ScalePoint{Procs: procs}
	env, err := NewEnv(256)
	if err != nil {
		return pt, err
	}
	fileBytes := opts.PieceBytes * int64(opts.PiecesPerRank) * int64(procs)
	numSeg := int((fileBytes + int64(procs)*scaleSegSize - 1) / (int64(procs) * scaleSegSize))
	rec := trace.New(0)
	tc := tcio.Config{
		SegmentSize:  scaleSegSize,
		NumSegments:  numSeg,
		DrainWorkers: 2,
		Trace:        rec,
	}
	const name = "scale"
	run := func(fn func(*mpi.Comm) error) (mpi.Report, error) {
		return mpi.Run(mpi.Config{
			Procs:   procs,
			Machine: env.Machine,
			FS:      env.FS,
		}, fn)
	}

	// Write phase: each rank writes its strided pieces, with a collective
	// barrier between phases and one ring exchange per phase boundary (the
	// first exact-source, later ones AnySource — both mailbox paths stay
	// hot).
	wrep, err := run(func(c *mpi.Comm) error {
		h, err := tcio.Open(c, name, tcio.WriteMode, tc)
		if err != nil {
			return err
		}
		p := c.Size()
		buf := make([]byte, opts.PieceBytes)
		phase := opts.PiecesPerRank / scalePhases
		if phase < 1 {
			phase = 1
		}
		for i := 0; i < opts.PiecesPerRank; i++ {
			if i > 0 && i%phase == 0 {
				// Ring first, barrier second: the receive arrivals are
				// host-order-assigned within a deterministic multiset, and
				// the barrier's max collapses them before any rank touches a
				// shared NIC port again.
				if err := scaleRing(c, i/phase); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			off := scaleOff(c.Rank(), i, p, opts.PieceBytes)
			for b := range buf {
				buf[b] = scaleByte(c.Rank(), i, int64(b))
			}
			if err := h.WriteAt(off, buf); err != nil {
				return err
			}
		}
		return h.Close()
	})
	if err != nil {
		pt.Result = failReason(err)
		return pt, nil
	}

	// Read phase: each rank scans its contiguous 1/P of the file back.
	// Reads are lazy — destinations are recorded piece by piece and the
	// bytes land on Fetch — so each piece targets its own slice of one
	// chunk-sized buffer and verification runs after the fetch.
	rrep, err := run(func(c *mpi.Comm) error {
		h, err := tcio.Open(c, name, tcio.ReadMode, tc)
		if err != nil {
			return err
		}
		// Open's preload leaves each rank at a host-order-assigned point of
		// the FS completion multiset; synchronize before the fetch traffic
		// shares NIC ports so the gets depart symmetrically.
		if err := c.Barrier(); err != nil {
			return err
		}
		chunk := fileBytes / int64(c.Size())
		base := int64(c.Rank()) * chunk
		buf := make([]byte, chunk)
		for off := int64(0); off < chunk; off += opts.PieceBytes {
			if err := h.ReadAt(base+off, buf[off:off+opts.PieceBytes]); err != nil {
				return err
			}
		}
		if err := h.Fetch(); err != nil {
			return err
		}
		if opts.Verify {
			for b, got := range buf {
				fo := base + int64(b)
				if want := scaleWant(fo, c.Size(), opts.PieceBytes); got != want {
					return fmt.Errorf("rank %d offset %d: got %#x want %#x",
						c.Rank(), fo, got, want)
				}
			}
		}
		return h.Close()
	})
	if err != nil {
		pt.Result = failReason(err)
		return pt, nil
	}

	pt.VirtualNs = int64(wrep.MaxTime) + int64(rrep.MaxTime)
	// FS stats accumulate across both worlds of the point; the read phase's
	// report carries the final totals.
	pt.FSWrites = rrep.FS.Writes
	pt.FSReads = rrep.FS.Reads
	pt.TraceEvents = int64(rec.Len())
	pt.Result = "ok"
	return pt, nil
}

// scaleRing is the per-phase mailbox workout: the first round receives
// with an exact source, later rounds with AnySource (exactly one sender
// targets each rank per round, so the wildcard match is deterministic).
func scaleRing(c *mpi.Comm, round int) error {
	p := c.Size()
	if p < 2 {
		return nil
	}
	payload := []byte{byte(c.Rank()), byte(round)}
	if err := c.Send((c.Rank()+1)%p, round, payload); err != nil {
		return err
	}
	src := (c.Rank() - 1 + p) % p
	if round > 1 {
		src = mpi.AnySource
	}
	data, err := c.Recv(src, round)
	if err != nil {
		return err
	}
	c.Recycle(data)
	return nil
}

// Scale runs the full sweep and tabulates it. Points run sequentially;
// GOMAXPROCS is restored afterwards.
func Scale(opts ScaleOptions) (stats.Table, *ScaleReport, error) {
	if len(opts.Procs) == 0 {
		opts.Procs = DefaultScale().Procs
	}
	if len(opts.GoMaxProcs) == 0 {
		opts.GoMaxProcs = DefaultScale().GoMaxProcs
	}
	if opts.PiecesPerRank == 0 {
		opts.PiecesPerRank = DefaultScale().PiecesPerRank
	}
	if opts.PieceBytes == 0 {
		opts.PieceBytes = DefaultScale().PieceBytes
	}
	// Exactly one segment per rank: fewer pieces would leave holes inside
	// the contiguous region the read phase verifies; more would split a
	// rank's drain into serially chained file-system requests whose
	// later departures depend on host-order queue positions, breaking the
	// determinism of the virtual-time columns (see DefaultScale).
	if perSeg := int(scaleSegSize / opts.PieceBytes); opts.PiecesPerRank != perSeg {
		opts.PiecesPerRank = perSeg
	}
	t := stats.Table{
		Title: fmt.Sprintf("Host scale: strided write+read, %d pieces x %d B per rank (wall-clock columns are host facts; virtual/count columns are deterministic)",
			opts.PiecesPerRank, opts.PieceBytes),
		Headers: []string{"procs", "gomaxprocs", "wall", "ns/op", "B/op", "allocs/op",
			"virtual-time", "fs-writes", "fs-reads", "trace-events", "result"},
	}
	report := &ScaleReport{PiecesPerRank: opts.PiecesPerRank, PieceBytes: opts.PieceBytes}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var prof *profileDelta
	if opts.Profiles {
		prof = newProfileDelta()
		defer prof.stop()
	}

	for _, procs := range opts.Procs {
		for _, g := range opts.GoMaxProcs {
			runtime.GOMAXPROCS(g)
			if prof != nil {
				prof.mark()
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			pt, err := runScalePoint(opts, procs)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return t, report, err
			}
			pt.GoMaxProcs = g
			pt.WallNs = wall.Nanoseconds()
			ops := int64(procs) * int64(opts.PiecesPerRank) * 2 // write + read pieces
			pt.NsPerOp = pt.WallNs / ops
			pt.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / ops
			pt.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / ops
			if prof != nil {
				pt.MutexTop, pt.BlockTop = prof.top(3)
			}
			report.Points = append(report.Points, pt)
			t.AddRow(
				fmt.Sprintf("%d", pt.Procs),
				fmt.Sprintf("%d", pt.GoMaxProcs),
				wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", pt.NsPerOp),
				fmt.Sprintf("%d", pt.BytesPerOp),
				fmt.Sprintf("%d", pt.AllocsPerOp),
				fmt.Sprintf("%d", pt.VirtualNs),
				fmt.Sprintf("%d", pt.FSWrites),
				fmt.Sprintf("%d", pt.FSReads),
				fmt.Sprintf("%d", pt.TraceEvents),
				pt.Result,
			)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("scale procs=%d gomaxprocs=%d: wall=%v ns/op=%d (%s)",
					pt.Procs, g, wall.Round(time.Millisecond), pt.NsPerOp, pt.Result))
			}
		}
	}
	return t, report, nil
}

// profileDelta captures per-point mutex/block contention: profiles
// accumulate process-wide, so each point subtracts the cycles already
// attributed at its start.
type profileDelta struct {
	prevMutex map[string]int64
	prevBlock map[string]int64
	curMutex  map[string]int64
	curBlock  map[string]int64
}

func newProfileDelta() *profileDelta {
	runtime.SetMutexProfileFraction(1)
	runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	return &profileDelta{}
}

func (p *profileDelta) stop() {
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
}

// mark snapshots the cumulative profiles at a point's start.
func (p *profileDelta) mark() {
	p.prevMutex = collectProfile(runtime.MutexProfile)
	p.prevBlock = collectProfile(runtime.BlockProfile)
}

// top returns the n hottest sites of each profile since the last mark.
func (p *profileDelta) top(n int) (mutexTop, blockTop []string) {
	p.curMutex = collectProfile(runtime.MutexProfile)
	p.curBlock = collectProfile(runtime.BlockProfile)
	return topSites(p.curMutex, p.prevMutex, n), topSites(p.curBlock, p.prevBlock, n)
}

// collectProfile aggregates a runtime profile's cycles by contention site.
func collectProfile(get func([]runtime.BlockProfileRecord) (int, bool)) map[string]int64 {
	records := make([]runtime.BlockProfileRecord, 64)
	for {
		n, ok := get(records)
		if ok {
			records = records[:n]
			break
		}
		records = make([]runtime.BlockProfileRecord, len(records)*2)
	}
	out := make(map[string]int64)
	for _, r := range records {
		out[siteOf(r.Stack())] += r.Cycles
	}
	return out
}

// siteOf names a contention record by its first frame outside the runtime
// and sync packages — the project function that held or waited on the lock.
func siteOf(stk []uintptr) string {
	frames := runtime.CallersFrames(stk)
	fallback := ""
	for {
		f, more := frames.Next()
		if f.Function == "" {
			break
		}
		if fallback == "" {
			fallback = f.Function
		}
		if !strings.HasPrefix(f.Function, "runtime.") && !strings.HasPrefix(f.Function, "sync.") {
			return f.Function
		}
		if !more {
			break
		}
	}
	if fallback == "" {
		return "unknown"
	}
	return fallback
}

// topSites returns the n sites with the largest cycle delta, formatted as
// "site cycles".
func topSites(cur, prev map[string]int64, n int) []string {
	type kv struct {
		site   string
		cycles int64
	}
	var all []kv
	for site, c := range cur {
		if d := c - prev[site]; d > 0 {
			all = append(all, kv{site, d})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cycles != all[j].cycles {
			return all[i].cycles > all[j].cycles
		}
		return all[i].site < all[j].site
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = fmt.Sprintf("%s %d", e.site, e.cycles)
	}
	return out
}
