package bench

// This file implements the overlap sweep: the TCIO workload run on a
// multi-OST stripe while the write-behind and read-prefetch pipelines vary.
// The write side is the paper's interleaved workload with
// tcio.Config.WriteBehindThreshold swept against the synchronous baseline;
// the read side is a contiguous-partition sequential read (each rank scans
// its own 1/P of the file, so every segment is demand-populated by exactly
// one, deterministic, rank) with Config.PrefetchSegments swept. Byte
// contents are cross-checked against the workload's ground truth at every
// setting; only the virtual timing is allowed to change.

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
)

// OverlapOptions configures the overlap sweep.
type OverlapOptions struct {
	// Procs is the process count of each run.
	Procs int
	// StripeCount is the file's stripe width in OSTs (like
	// DrainSweepOptions, pick one coprime to Procs).
	StripeCount int
	// Workers is TCIO's per-OST drain fan-out for every run.
	Workers int
	// Thresholds lists the WriteBehindThreshold settings to sweep
	// (0 = synchronous baseline).
	Thresholds []float64
	// Prefetch lists the PrefetchSegments settings to sweep (0 = off).
	Prefetch []int
	// LenSim and LenReal size the workload like SweepOptions.
	LenSim  int
	LenReal int
	// Verify cross-checks file bytes (writes) and read-back bytes (reads)
	// against the workload's generator.
	Verify bool
	// Progress receives one line per completed run.
	Progress func(string)
}

// DefaultOverlap sweeps write-behind thresholds 0/0.5/1 and prefetch
// windows 0/2/8 over a 7-way striped file with 16 processes and a 4-lane
// drain fan-out.
func DefaultOverlap() OverlapOptions {
	return OverlapOptions{
		Procs:       16,
		StripeCount: 7,
		Workers:     4,
		Thresholds:  []float64{0, 0.5, 1},
		Prefetch:    []int{0, 2, 8},
		LenSim:      4 << 20,
		LenReal:     4 << 10,
		Verify:      true,
	}
}

// OverlapWritePoint is one write-behind setting's result, for the JSON
// perf-trajectory artifact.
type OverlapWritePoint struct {
	Threshold      float64 `json:"write_behind_threshold"`
	VirtualTimeNs  int64   `json:"virtual_time_ns"`
	MBs            float64 `json:"mbs"`
	EagerDrains    int64   `json:"eager_drains"`
	EagerWrites    int64   `json:"eager_write_requests"`
	FlushResidue   int64   `json:"flush_residue_requests"`
	OverlapSavedNs int64   `json:"overlap_saved_ns"`
	FSWrites       int64   `json:"fs_writes"`
	Retries        int64   `json:"fs_retries"`
	Result         string  `json:"result"`
}

// OverlapReadPoint is one prefetch setting's result.
type OverlapReadPoint struct {
	Prefetch      int     `json:"prefetch_segments"`
	VirtualTimeNs int64   `json:"virtual_time_ns"`
	MBs           float64 `json:"mbs"`
	Populations   int64   `json:"populations"`
	PrefetchHits  int64   `json:"prefetch_hits"`
	FSReads       int64   `json:"fs_reads"`
	Retries       int64   `json:"fs_retries"`
	Result        string  `json:"result"`
}

// OverlapReport is the machine-readable result of one overlap sweep
// (tciobench -json).
type OverlapReport struct {
	Procs       int                 `json:"procs"`
	StripeCount int                 `json:"stripe_count"`
	Workers     int                 `json:"drain_workers"`
	LenSim      int                 `json:"len_sim"`
	LenReal     int                 `json:"len_real"`
	Write       []OverlapWritePoint `json:"write"`
	Read        []OverlapReadPoint  `json:"read"`
}

// overlapPhases is the number of barrier-separated phases of the write
// workload's timestep loop.
const overlapPhases = 8

// overlapCfg is the sweep's fixed workload shape.
func overlapCfg(opts OverlapOptions, name string) SyntheticConfig {
	return SyntheticConfig{
		Method:       MethodTCIO,
		Procs:        opts.Procs,
		TypeArray:    []datatype.Type{datatype.Int, datatype.Double},
		LenArray:     opts.LenReal,
		SizeAccess:   1,
		FileName:     name,
		DrainWorkers: opts.Workers,
	}
}

// overlapEnv builds the sweep's striped environment.
func overlapEnv(opts OverlapOptions) (*Env, error) {
	scale := int64(opts.LenSim / opts.LenReal)
	env, err := NewEnv(scale)
	if err != nil {
		return nil, err
	}
	if opts.StripeCount > 1 {
		fscfg := env.FS.Config()
		fscfg.StripeCount = opts.StripeCount
		env.FS = pfs.New(fscfg)
	}
	return env, nil
}

// fileByte computes the expected byte at a file offset straight from the
// workload definition — the ground truth the sequential readers verify
// against (block k*P+p belongs to process p's k-th iteration).
func fileByte(cfg SyntheticConfig, off int64) byte {
	blockSize := cfg.blockSize()
	block := off / blockSize
	p := int(block % int64(cfg.Procs))
	iter := int(block / int64(cfg.Procs))
	rem := off % blockSize
	for j, typ := range cfg.TypeArray {
		width := typ.Size()
		span := width * int64(cfg.SizeAccess)
		if rem < span {
			e := iter*cfg.SizeAccess + int(rem/width)
			return element(p, j, e, int(rem%width))
		}
		rem -= span
	}
	panic("bench: offset outside block") // unreachable: rem < blockSize
}

// expectedImage renders the whole expected file image from fileByte.
func expectedImage(cfg SyntheticConfig) []byte {
	img := make([]byte, cfg.FileBytes())
	for off := range img {
		img[off] = fileByte(cfg, int64(off))
	}
	return img
}

// overlapStats aggregates tcio's per-rank counters over a run: counts sum,
// the overlap saving is the maximum over ranks (comparable to the
// makespan, which is also a maximum).
type overlapStats struct {
	mu  sync.Mutex
	sum tcio.Stats
}

func (a *overlapStats) add(st tcio.Stats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum.EagerDrains += st.EagerDrains
	a.sum.EagerWrites += st.EagerWrites
	a.sum.FlushResidue += st.FlushResidue
	a.sum.Populations += st.Populations
	a.sum.PrefetchIssued += st.PrefetchIssued
	a.sum.PrefetchHits += st.PrefetchHits
	a.sum.PrefetchWasted += st.PrefetchWasted
	a.sum.EpochEvictions += st.EpochEvictions
	a.sum.Retries += st.Retries
	a.sum.FSWrites += st.FSWrites
	if st.OverlapSaved > a.sum.OverlapSaved {
		a.sum.OverlapSaved = st.OverlapSaved
	}
}

// overlapWrite runs the interleaved write workload at one write-behind
// threshold and cross-checks the file image against the ground truth.
func overlapWrite(env *Env, opts OverlapOptions, cfg SyntheticConfig, threshold float64) (PhaseResult, tcio.Stats) {
	env.FS.Reset()
	pr := PhaseResult{Method: MethodTCIO, Procs: cfg.Procs, SimBytes: cfg.FileBytes() * env.Scale}
	var agg overlapStats
	rep, err := mpi.Run(mpi.Config{
		Procs:         cfg.Procs,
		Machine:       env.Machine,
		FS:            env.FS,
		EnforceMemory: true,
		Faults:        env.Faults,
	}, func(c *mpi.Comm) error {
		arrays := make([][]byte, len(cfg.TypeArray))
		for j := range arrays {
			a, err := makeArray(c, cfg, j)
			if err != nil {
				return err
			}
			arrays[j] = a
		}
		defer func() {
			for _, a := range arrays {
				c.Free(a)
			}
		}()
		tc := tcioConfigFor(c, cfg)
		tc.WriteBehindThreshold = threshold
		handle, err := tcio.Open(c, cfg.FileName, tcio.WriteMode, tc)
		if err != nil {
			return err
		}
		// Timestep loop: the interleaved write pattern of Program 3, split
		// into phases separated by barriers, like a computational code
		// writing results as it goes. The synchronization points are where
		// write-behind earns its keep — segments finished in earlier phases
		// drain in the background while later phases still compute.
		blockSize := cfg.blockSize()
		phase := cfg.iters() / overlapPhases
		if phase < 1 {
			phase = 1
		}
		for i := 0; i < cfg.iters(); i++ {
			if i > 0 && i%phase == 0 {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			pos := int64(c.Rank())*blockSize + int64(i)*blockSize*int64(c.Size())
			for j := range arrays {
				width := int(cfg.TypeArray[j].Size())
				lo := i * cfg.SizeAccess * width
				hi := lo + cfg.SizeAccess*width
				if err := handle.WriteAt(pos, arrays[j][lo:hi]); err != nil {
					return err
				}
				pos += int64(cfg.SizeAccess * width)
			}
		}
		cerr := handle.Close()
		agg.add(handle.Stats())
		return cerr
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr, agg.sum
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.AllocRetries = rep.AllocRetries
	if opts.Verify {
		want := expectedImage(cfg)
		got := env.FS.Open(cfg.FileName).Snapshot()
		if int64(len(got)) < int64(len(want)) || !bytes.Equal(got[:len(want)], want) {
			pr.Failed = true
			pr.FailReason = "ground-truth mismatch"
		}
	}
	return pr, agg.sum
}

// overlapRead runs the contiguous-partition sequential read at one
// prefetch setting against the already-written file.
func overlapRead(env *Env, opts OverlapOptions, cfg SyntheticConfig, prefetch int) (PhaseResult, tcio.Stats) {
	env.FS.Reset()
	pr := PhaseResult{Method: MethodTCIO, Procs: cfg.Procs, SimBytes: cfg.FileBytes() * env.Scale}
	var agg overlapStats
	rep, err := mpi.Run(mpi.Config{
		Procs:         cfg.Procs,
		Machine:       env.Machine,
		FS:            env.FS,
		EnforceMemory: true,
		Faults:        env.Faults,
	}, func(c *mpi.Comm) error {
		tc := tcioConfigFor(c, cfg)
		tc.DemandPopulate = true
		tc.PrefetchSegments = prefetch
		handle, err := tcio.Open(c, cfg.FileName, tcio.ReadMode, tc)
		if err != nil {
			return err
		}
		chunk := cfg.FileBytes() / int64(c.Size())
		base := int64(c.Rank()) * chunk
		buf, err := c.Malloc(chunk)
		if err != nil {
			return err
		}
		defer c.Free(buf)
		piece := cfg.blockSize()
		for off := int64(0); off < chunk; off += piece {
			n := piece
			if off+n > chunk {
				n = chunk - off
			}
			if err := handle.ReadAt(base+off, buf[off:off+n]); err != nil {
				return err
			}
		}
		if err := handle.Close(); err != nil {
			return err
		}
		agg.add(handle.Stats())
		if opts.Verify {
			for off := int64(0); off < chunk; off++ {
				if got, want := buf[off], fileByte(cfg, base+off); got != want {
					return fmt.Errorf("rank %d offset %d: got %#x want %#x",
						c.Rank(), base+off, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr, agg.sum
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.AllocRetries = rep.AllocRetries
	return pr, agg.sum
}

// Overlap runs the full sweep and tabulates both sides. The write table
// compares write-behind thresholds against the synchronous baseline; the
// read table compares prefetch windows against pure demand population.
func Overlap(opts OverlapOptions) (stats.Table, stats.Table, *OverlapReport, error) {
	if len(opts.Thresholds) == 0 {
		opts.Thresholds = DefaultOverlap().Thresholds
	}
	if len(opts.Prefetch) == 0 {
		opts.Prefetch = DefaultOverlap().Prefetch
	}
	wt := stats.Table{
		Title: fmt.Sprintf("Overlap: eager write-behind, %d processes, stripe over %d OSTs, %d drain workers",
			opts.Procs, opts.StripeCount, opts.Workers),
		Headers: []string{"wb-threshold", "write-time", "write-MB/s", "eager-drains",
			"eager-writes", "residue-reqs", "overlap-saved", "fs-writes", "result"},
	}
	rt := stats.Table{
		Title: fmt.Sprintf("Overlap: sequential read prefetch, %d processes, stripe over %d OSTs, %d drain workers",
			opts.Procs, opts.StripeCount, opts.Workers),
		Headers: []string{"prefetch-segs", "read-time", "read-MB/s", "populations",
			"prefetch-hits", "fs-reads", "result"},
	}
	report := &OverlapReport{
		Procs:       opts.Procs,
		StripeCount: opts.StripeCount,
		Workers:     opts.Workers,
		LenSim:      opts.LenSim,
		LenReal:     opts.LenReal,
	}

	for _, th := range opts.Thresholds {
		env, err := overlapEnv(opts)
		if err != nil {
			return wt, rt, report, err
		}
		cfg := overlapCfg(opts, fmt.Sprintf("overlap-wb-%d", int(th*100)))
		pr, st := overlapWrite(env, opts, cfg, th)
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		}
		wt.AddRow(
			fmt.Sprintf("%.2f", th),
			pr.Time.String(),
			fmt.Sprintf("%.1f", pr.MBs),
			fmt.Sprintf("%d", st.EagerDrains),
			fmt.Sprintf("%d", st.EagerWrites),
			fmt.Sprintf("%d", st.FlushResidue),
			st.OverlapSaved.String(),
			fmt.Sprintf("%d", pr.FS.Writes),
			result,
		)
		report.Write = append(report.Write, OverlapWritePoint{
			Threshold:      th,
			VirtualTimeNs:  int64(pr.Time),
			MBs:            pr.MBs,
			EagerDrains:    st.EagerDrains,
			EagerWrites:    st.EagerWrites,
			FlushResidue:   st.FlushResidue,
			OverlapSavedNs: int64(st.OverlapSaved),
			FSWrites:       pr.FS.Writes,
			Retries:        pr.FS.Retries,
			Result:         result,
		})
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("overlap write threshold=%.2f: %v eager=%d residue=%d (%s)",
				th, pr.Time, st.EagerDrains, st.FlushResidue, result))
		}
	}

	// One file for the read side, written with the synchronous baseline.
	env, err := overlapEnv(opts)
	if err != nil {
		return wt, rt, report, err
	}
	cfg := overlapCfg(opts, "overlap-read")
	if pr, _ := overlapWrite(env, opts, cfg, 0); pr.Failed {
		return wt, rt, report, fmt.Errorf("bench: overlap read-side write failed: %s", pr.FailReason)
	}
	for _, pf := range opts.Prefetch {
		pr, st := overlapRead(env, opts, cfg, pf)
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		}
		rt.AddRow(
			fmt.Sprintf("%d", pf),
			pr.Time.String(),
			fmt.Sprintf("%.1f", pr.MBs),
			fmt.Sprintf("%d", st.Populations),
			fmt.Sprintf("%d", st.PrefetchHits),
			fmt.Sprintf("%d", pr.FS.Reads),
			result,
		)
		report.Read = append(report.Read, OverlapReadPoint{
			Prefetch:      pf,
			VirtualTimeNs: int64(pr.Time),
			MBs:           pr.MBs,
			Populations:   st.Populations,
			PrefetchHits:  st.PrefetchHits,
			FSReads:       pr.FS.Reads,
			Retries:       pr.FS.Retries,
			Result:        result,
		})
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("overlap read prefetch=%d: %v hits=%d (%s)",
				pf, pr.Time, st.PrefetchHits, result))
		}
	}
	return wt, rt, report, nil
}

// OverlapChaos runs the overlap settings under deterministic fault
// injection and tabulates only seed-deterministic counts, so two runs with
// the same seed emit byte-identical tables — the CI reproducibility check.
// Virtual times, eager-drain tallies, and overlap savings are deliberately
// absent: they depend on scheduler interleaving; the request stream's
// identity (and hence every count below) does not. The write side pins
// thresholds 0 and 1 — the two settings whose file system request identity
// is provably bit-identical.
func OverlapChaos(opts OverlapOptions, seed int64) (stats.Table, error) {
	t := stats.Table{
		Title: fmt.Sprintf("Overlap chaos: %d processes, seed %d (counts are seed-deterministic)",
			opts.Procs, seed),
		Headers: []string{"phase", "setting", "injected", "fs-retries", "fs-writes",
			"fs-reads", "populations", "prefetch-hits", "alloc-retries", "result"},
	}
	chaosBase := DefaultChaos()
	chaosBase.Seed = seed
	newEnv := func() (*Env, *OverlapOptions, error) {
		o := opts
		env, err := overlapEnv(o)
		if err != nil {
			return nil, nil, err
		}
		inj := chaosBase.ChaosInjector(0.01)
		fscfg := env.FS.Config()
		fscfg.Faults = inj
		env.FS = pfs.New(fscfg)
		env.Faults = inj
		return env, &o, nil
	}

	for _, th := range []float64{0, 1} {
		env, o, err := newEnv()
		if err != nil {
			return t, err
		}
		cfg := overlapCfg(*o, fmt.Sprintf("overlap-chaos-wb-%d", int(th)))
		before := env.Faults.TotalInjected()
		pr, st := overlapWrite(env, *o, cfg, th)
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		}
		t.AddRow(
			"write",
			fmt.Sprintf("wb-threshold=%.0f", th),
			fmt.Sprintf("%d", env.Faults.TotalInjected()-before),
			fmt.Sprintf("%d", pr.FS.Retries),
			fmt.Sprintf("%d", pr.FS.Writes),
			fmt.Sprintf("%d", pr.FS.Reads),
			fmt.Sprintf("%d", st.Populations),
			fmt.Sprintf("%d", st.PrefetchHits),
			fmt.Sprintf("%d", pr.AllocRetries),
			result,
		)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("overlap chaos write threshold=%.0f: %s", th, result))
		}
	}

	for _, pf := range []int{0, 8} {
		env, o, err := newEnv()
		if err != nil {
			return t, err
		}
		cfg := overlapCfg(*o, fmt.Sprintf("overlap-chaos-pf-%d", pf))
		if pr, _ := overlapWrite(env, *o, cfg, 0); pr.Failed {
			return t, fmt.Errorf("bench: overlap chaos read-side write failed: %s", pr.FailReason)
		}
		before := env.Faults.TotalInjected()
		pr, st := overlapRead(env, *o, cfg, pf)
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		}
		t.AddRow(
			"read",
			fmt.Sprintf("prefetch=%d", pf),
			fmt.Sprintf("%d", env.Faults.TotalInjected()-before),
			fmt.Sprintf("%d", pr.FS.Retries),
			fmt.Sprintf("%d", pr.FS.Writes),
			fmt.Sprintf("%d", pr.FS.Reads),
			fmt.Sprintf("%d", st.Populations),
			fmt.Sprintf("%d", st.PrefetchHits),
			fmt.Sprintf("%d", pr.AllocRetries),
			result,
		)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("overlap chaos read prefetch=%d: %s", pf, result))
		}
	}
	return t, nil
}
