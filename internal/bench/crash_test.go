package bench

import (
	"reflect"
	"strings"
	"testing"
)

func testCrashOptions() CrashOptions {
	o := DefaultCrash()
	o.Kills = 4
	return o
}

// TestCrashSweepOutcomes pins the headline claims of the -crash sweep: the
// unbudgeted out-of-core point OOMs with the typed error, every budgeted
// point completes byte-exactly with the tightest budget actually spilling,
// and every crash point survives all of its kill-replay-recover cycles.
func TestCrashSweepOutcomes(t *testing.T) {
	_, rep, err := Crash(testCrashOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // 3 budgets x 2 experiments
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		switch {
		case row.Experiment == "out-of-core" && row.BudgetSegs == 0:
			if !strings.HasPrefix(row.Result, "OOM") {
				t.Errorf("unbudgeted out-of-core point: got %q, want OOM", row.Result)
			}
		case row.Experiment == "out-of-core":
			if row.Result != "ok" {
				t.Errorf("budget %d out-of-core point: %s", row.BudgetSegs, row.Result)
			}
			if row.BudgetSegs == 2 && row.Spills == 0 {
				t.Errorf("tightest budget never spilled; the demo shows nothing")
			}
		case row.Experiment == "crash":
			if row.Result != "ok" || row.KillsOK != row.Kills {
				t.Errorf("crash point budget %d: %s (%d/%d kills ok)",
					row.BudgetSegs, row.Result, row.KillsOK, row.Kills)
			}
			if row.Commits != row.Epochs {
				t.Errorf("crash point budget %d: %d commits for %d epochs",
					row.BudgetSegs, row.Commits, row.Epochs)
			}
		}
	}
}

// TestCrashSweepDeterministic pins the CI contract: two sweeps with the
// same options produce identical rows, peak-memory and kill verdicts
// included.
func TestCrashSweepDeterministic(t *testing.T) {
	ta, ra, err := Crash(testCrashOptions())
	if err != nil {
		t.Fatal(err)
	}
	tb, rb, err := Crash(testCrashOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra.Rows, rb.Rows) {
		t.Fatalf("crash sweep not reproducible:\nrun 1: %+v\nrun 2: %+v", ra.Rows, rb.Rows)
	}
	if !reflect.DeepEqual(ta.Rows, tb.Rows) {
		t.Fatalf("crash tables differ between runs")
	}
}
