package bench

// This file implements the delegated read sweep: the same strided
// workload as the delegation write sweep, read back through the tier
// while the server hot-block cache, the access pattern, and collective
// reads vary.
//
// Each cell writes the file once and then reads it twice — a cold pass
// and a hot re-read — and reports the two passes' virtual times
// separately. Virtual time is not additive across separate simulations,
// so the per-pass times come from run differencing: three runs per cell
// (write only; write + one pass; write + two passes), each in a fresh
// environment, give cold = T1 - T0 and hot = T2 - T1. The pass
// decomposition:
//
//   - pattern = private: client i reads the pieces it wrote (block-
//     disjoint streams). pattern = shared: every client reads the whole
//     file, the N-to-1 analysis-input pattern where requests overlap
//     completely across ranks.
//
//   - cache = 0 is the disarmed baseline: every read request reaches the
//     file system, and the hot pass repeats the cold pass's requests.
//     cache > 0 arms the server LRU: the cold pass fills whole domain
//     blocks once, the hot pass is served from server memory without a
//     single file system read.
//
//   - collective off ships one protocol request per piece; collective on
//     batches each pass into one read-intent epoch per client, and the
//     server stages the merged union once per domain block — overlapping
//     requests across clients collapse before the file system sees them.
//
// Bytes are verified on the final pass against the write generator.

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/delegate"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
)

// Read-sweep access patterns.
const (
	PatternPrivate = "private"
	PatternShared  = "shared"
)

// DelegateReadOptions configures the delegated read sweep.
type DelegateReadOptions struct {
	// Clients is the application rank count; every cell runs
	// Clients+Servers ranks total.
	Clients int
	// SegSize is the real tcio segment size in bytes; the file-domain
	// block is four segments.
	SegSize int64
	// SegsPerClient is the per-client segment count; the file is exactly
	// Clients x SegsPerClient segments.
	SegsPerClient int
	// Servers is the dedicated server-rank count (at least 1 — the
	// pass-through read path is the sieve sweep's subject, not this one's).
	Servers int
	// CacheBlocks lists the server cache capacities swept (0 = disarmed).
	CacheBlocks []int
	// Patterns lists the access patterns swept (PatternPrivate, PatternShared).
	Patterns []string
	// Collective lists the collective-read settings swept.
	Collective []bool
	// ReadQuantum is the DRR fairness quantum in real bytes (0 = inline
	// arrival order); it may reorder service but never counts, so it is a
	// fixed option rather than an axis.
	ReadQuantum int64
	// ReqSize is the real per-piece request size.
	ReqSize int64
	// Scale is the environment byte scale (simulated bytes per real byte).
	Scale int64
	// Verify checks every byte of the final pass against the generator.
	Verify bool
	// Progress receives one line per completed cell.
	Progress func(string)
}

// DefaultDelegateRead sweeps disarmed vs armed cache, private vs shared
// patterns, and independent vs collective reads over 8 clients and one
// server, with a DRR quantum armed so the artifact exercises the fair
// scheduler.
func DefaultDelegateRead() DelegateReadOptions {
	return DelegateReadOptions{
		Clients:       8,
		SegSize:       16 << 10,
		SegsPerClient: 4,
		Servers:       1,
		CacheBlocks:   []int{0, 16},
		Patterns:      []string{PatternPrivate, PatternShared},
		Collective:    []bool{false, true},
		ReadQuantum:   4 << 10,
		ReqSize:       2 << 10,
		Scale:         16,
		Verify:        true,
	}
}

// DelegateReadPoint is one cell's result. Sizes are simulated bytes;
// the Ns columns are virtual nanoseconds and, being scheduling-
// sensitive at the margin, are excluded from CI's determinism diff.
type DelegateReadPoint struct {
	Pattern     string  `json:"pattern"`
	CacheBlocks int     `json:"cache_blocks"`
	Collective  bool    `json:"collective"`
	ColdNs      int64   `json:"cold_ns"`
	HotNs       int64   `json:"hot_ns"`
	Speedup     float64 `json:"speedup"`
	ReadReqs    int64   `json:"read_reqs"`
	FSReadsCold int64   `json:"fs_reads_cold"`
	FSReadsHot  int64   `json:"fs_reads_hot"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Result      string  `json:"result"`
}

func delegateReadFileBytes(opts DelegateReadOptions) int64 {
	return opts.SegSize * int64(opts.SegsPerClient) * int64(opts.Clients)
}

// validateDelegateRead checks the sweep's alignment preconditions.
func validateDelegateRead(opts DelegateReadOptions) error {
	if opts.Clients < 1 || opts.SegsPerClient < 1 {
		return fmt.Errorf("bench: %d clients, %d segments per client", opts.Clients, opts.SegsPerClient)
	}
	if opts.Servers < 1 {
		return fmt.Errorf("bench: read sweep needs a server rank, got %d", opts.Servers)
	}
	for _, c := range opts.CacheBlocks {
		if c < 0 {
			return fmt.Errorf("bench: %d cache blocks", c)
		}
	}
	for _, p := range opts.Patterns {
		if p != PatternPrivate && p != PatternShared {
			return fmt.Errorf("bench: unknown read pattern %q", p)
		}
	}
	fileBytes := delegateReadFileBytes(opts)
	if opts.ReqSize < 1 || fileBytes%(opts.ReqSize*int64(opts.Clients)) != 0 {
		return fmt.Errorf("bench: file size %d not dealt evenly by %d clients x %d B requests",
			fileBytes, opts.Clients, opts.ReqSize)
	}
	return nil
}

// dreadRun is one simulation's outcome: the write phase plus `passes`
// full read passes of the configured pattern.
type dreadRun struct {
	timeNs   int64
	fsReads  int64 // server-side read-path FS requests
	readReqs int64 // client-side protocol read requests
	hits     int64
	misses   int64
	err      error
}

// delegateReadRun executes write + passes read passes in a fresh
// environment and returns the totals.
func delegateReadRun(opts DelegateReadOptions, pattern string, cacheBlks int,
	collective bool, passes int) dreadRun {
	var out dreadRun
	env, err := NewEnv(opts.Scale)
	if err != nil {
		out.err = err
		return out
	}
	fileBytes := delegateReadFileBytes(opts)
	pieces := fileBytes / opts.ReqSize
	cfg := delegate.Config{
		ServerRanks:       opts.Servers,
		ServerCacheBlocks: cacheBlks,
		ReadQuantum:       opts.ReadQuantum,
		TCIO: tcio.Config{
			SegmentSize:    opts.SegSize,
			NumSegments:    opts.SegsPerClient,
			DemandPopulate: true,
			CollectiveRead: collective,
		},
	}
	col := &delegate.Collector{}
	cfg.Collect = col
	var mu sync.Mutex
	rep, err := mpi.Run(mpi.Config{
		Procs:   opts.Clients + opts.Servers,
		Machine: env.Machine,
		FS:      env.FS,
	}, func(c *mpi.Comm) error {
		return delegate.Run(c, cfg, func(tr *delegate.Tier) error {
			w, err := tr.Open("delegate-read.dat", tcio.WriteMode)
			if err != nil {
				return err
			}
			buf := make([]byte, opts.ReqSize)
			for p := int64(0); p < pieces; p++ {
				if p%int64(opts.Clients) != int64(tr.ClientIndex()) {
					continue
				}
				off := p * opts.ReqSize
				for i := range buf {
					buf[i] = delegateByte(0, off+int64(i))
				}
				if err := w.WriteAt(off, buf); err != nil {
					return err
				}
			}
			if err := w.Flush(); err != nil {
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			r, err := tr.Open("delegate-read.dat", tcio.ReadMode)
			if err != nil {
				return err
			}
			for pass := 0; pass < passes; pass++ {
				type piece struct {
					off int64
					dst []byte
				}
				var read []piece
				for p := int64(0); p < pieces; p++ {
					if pattern == PatternPrivate && p%int64(opts.Clients) != int64(tr.ClientIndex()) {
						continue
					}
					pc := piece{off: p * opts.ReqSize, dst: make([]byte, opts.ReqSize)}
					if err := r.ReadAt(pc.off, pc.dst); err != nil {
						return err
					}
					read = append(read, pc)
				}
				// One Fetch per pass: collective cells close one read-intent
				// epoch here; independent cells already read synchronously.
				if err := r.Fetch(); err != nil {
					return err
				}
				if opts.Verify && pass == passes-1 {
					for _, pc := range read {
						for i, got := range pc.dst {
							if want := delegateByte(0, pc.off+int64(i)); got != want {
								return fmt.Errorf("offset %d: got %#x want %#x", pc.off+int64(i), got, want)
							}
						}
					}
				}
			}
			if err := r.Close(); err != nil {
				return err
			}
			st := r.Stats()
			mu.Lock()
			out.readReqs += st.ReadReqs
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		out.err = err
		return out
	}
	out.timeNs = int64(rep.MaxTime.Sub(0))
	for _, s := range col.Servers() {
		out.fsReads += s.FSReads
		out.hits += s.CacheHits
		out.misses += s.CacheMisses
	}
	return out
}

// DelegateRead runs the full read sweep: every (pattern, cache,
// collective) cell, three runs each for the cold/hot time split.
func DelegateRead(opts DelegateReadOptions) (stats.Table, []DelegateReadPoint, error) {
	if err := validateDelegateRead(opts); err != nil {
		return stats.Table{}, nil, err
	}
	t := stats.Table{
		Title: fmt.Sprintf("Delegated reads: %d clients, %d server(s), %d B simulated requests, DRR quantum %d B",
			opts.Clients, opts.Servers, opts.ReqSize*opts.Scale, opts.ReadQuantum*opts.Scale),
		Headers: []string{"pattern", "cache", "coll", "cold", "hot", "speedup",
			"read-reqs", "fs-cold", "fs-hot", "hits", "misses", "result"},
	}
	var points []DelegateReadPoint
	for _, pattern := range opts.Patterns {
		for _, cacheBlks := range opts.CacheBlocks {
			for _, collective := range opts.Collective {
				base := delegateReadRun(opts, pattern, cacheBlks, collective, 0)
				cold := delegateReadRun(opts, pattern, cacheBlks, collective, 1)
				hot := delegateReadRun(opts, pattern, cacheBlks, collective, 2)
				pt := DelegateReadPoint{
					Pattern:     pattern,
					CacheBlocks: cacheBlks,
					Collective:  collective,
					Result:      "ok",
				}
				switch {
				case base.err != nil:
					pt.Result = failReason(base.err)
				case cold.err != nil:
					pt.Result = failReason(cold.err)
				case hot.err != nil:
					pt.Result = failReason(hot.err)
				default:
					pt.ColdNs = cold.timeNs - base.timeNs
					pt.HotNs = hot.timeNs - cold.timeNs
					if pt.HotNs > 0 {
						pt.Speedup = float64(pt.ColdNs) / float64(pt.HotNs)
					}
					pt.ReadReqs = hot.readReqs
					pt.FSReadsCold = cold.fsReads
					pt.FSReadsHot = hot.fsReads - cold.fsReads
					pt.CacheHits = hot.hits
					pt.CacheMisses = hot.misses
				}
				t.AddRow(
					pt.Pattern,
					fmt.Sprintf("%d", pt.CacheBlocks),
					fmt.Sprintf("%v", pt.Collective),
					fmtNs(pt.ColdNs),
					fmtNs(pt.HotNs),
					fmt.Sprintf("%.1fx", pt.Speedup),
					fmt.Sprintf("%d", pt.ReadReqs),
					fmt.Sprintf("%d", pt.FSReadsCold),
					fmt.Sprintf("%d", pt.FSReadsHot),
					fmt.Sprintf("%d", pt.CacheHits),
					fmt.Sprintf("%d", pt.CacheMisses),
					pt.Result,
				)
				points = append(points, pt)
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("delegate-read pat=%s cache=%d coll=%v: cold=%s hot=%s (%.1fx) fs=%d/%d (%s)",
						pattern, cacheBlks, collective, fmtNs(pt.ColdNs), fmtNs(pt.HotNs),
						pt.Speedup, pt.FSReadsCold, pt.FSReadsHot, pt.Result))
				}
			}
		}
	}
	return t, points, nil
}

// fmtNs renders a virtual-nanosecond count compactly.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
