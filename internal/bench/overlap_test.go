package bench

// Tests for the overlap sweep: the write-behind win and byte verification,
// chaos reproducibility (the CI run-twice-diff contract), and count
// invariance across worker fan-out and pipeline settings.

import (
	"reflect"
	"testing"
)

func overlapTestOpts() OverlapOptions {
	opts := DefaultOverlap()
	opts.LenReal = 256
	opts.Thresholds = []float64{0, 1}
	opts.Prefetch = []int{0, 4}
	return opts
}

func TestOverlapSweep(t *testing.T) {
	opts := overlapTestOpts()
	_, _, report, err := Overlap(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Write) != 2 || len(report.Read) != 2 {
		t.Fatalf("report has %d write / %d read points", len(report.Write), len(report.Read))
	}
	for _, p := range report.Write {
		if p.Result != "ok" {
			t.Fatalf("write threshold %v: %s", p.Threshold, p.Result)
		}
	}
	for _, p := range report.Read {
		if p.Result != "ok" {
			t.Fatalf("read prefetch %d: %s", p.Prefetch, p.Result)
		}
	}
	sync, eager := report.Write[0], report.Write[1]
	// Threshold 1 coalesces each segment exactly as the final drain would,
	// so the request count must match the synchronous baseline...
	if sync.FSWrites != eager.FSWrites {
		t.Fatalf("fs writes differ: sync %d, eager %d", sync.FSWrites, eager.FSWrites)
	}
	// ...and overlapping most of them with the timestep loop must win
	// end-to-end. Eager coverage detection is guaranteed by the loop's
	// barriers (contributions from earlier phases are always visible), so
	// this holds deterministically, not just on a lucky schedule.
	if eager.VirtualTimeNs >= sync.VirtualTimeNs {
		t.Fatalf("write-behind did not reduce write time: sync %d ns, eager %d ns (eager drains %d)",
			sync.VirtualTimeNs, eager.VirtualTimeNs, eager.EagerDrains)
	}
	if eager.EagerDrains == 0 {
		t.Fatal("threshold 1 triggered no eager drains")
	}
	demand, prefetch := report.Read[0], report.Read[1]
	if demand.FSReads != prefetch.FSReads {
		t.Fatalf("fs reads differ: demand %d, prefetch %d", demand.FSReads, prefetch.FSReads)
	}
	if demand.Populations != prefetch.Populations {
		t.Fatalf("populations differ: demand %d, prefetch %d", demand.Populations, prefetch.Populations)
	}
	if prefetch.PrefetchHits == 0 {
		t.Fatal("prefetch window 4 scored no hits")
	}
	if prefetch.VirtualTimeNs > demand.VirtualTimeNs {
		t.Fatalf("prefetch slowed the sequential read: demand %d ns, prefetch %d ns",
			demand.VirtualTimeNs, prefetch.VirtualTimeNs)
	}
}

// TestOverlapChaosReproducible is the CI contract: two runs with the same
// seed must emit byte-identical tables, because the table only carries
// seed-deterministic counts.
func TestOverlapChaosReproducible(t *testing.T) {
	opts := overlapTestOpts()
	a, err := OverlapChaos(opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OverlapChaos(opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos tables differ between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestOverlapChaosWorkerInvariant re-runs the chaos table with a different
// drain fan-out: the worker count reorders request completion times but
// must not change a single counted column.
func TestOverlapChaosWorkerInvariant(t *testing.T) {
	serial := overlapTestOpts()
	serial.Workers = 1
	fanned := overlapTestOpts()
	fanned.Workers = 4
	a, err := OverlapChaos(serial, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OverlapChaos(fanned, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("chaos counts changed with drain workers:\n%v\n%v", a.Rows, b.Rows)
	}
}

// TestOverlapChaosSettingInvariant reads the invariance off a single table:
// the write rows (thresholds 0 and 1) and the read rows (prefetch 0 and 8)
// must agree on every fault and request count — write-behind and prefetch
// change when requests happen, never which requests happen.
func TestOverlapChaosSettingInvariant(t *testing.T) {
	tbl, err := OverlapChaos(overlapTestOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("chaos table has %d rows, want 4", len(tbl.Rows))
	}
	// Columns: phase, setting, injected, fs-retries, fs-writes, fs-reads,
	// populations, prefetch-hits, alloc-retries, result. Compare the fault
	// and request counts (indices 2-6) plus alloc-retries (8).
	invariant := []int{2, 3, 4, 5, 6, 8}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		for _, col := range invariant {
			// prefetch-hits (7) legitimately differs between prefetch 0
			// and 8; populations (6) must not.
			if a, b := tbl.Rows[pair[0]][col], tbl.Rows[pair[1]][col]; a != b {
				t.Errorf("rows %d/%d column %d differ: %q vs %q (%s)",
					pair[0], pair[1], col, a, b, tbl.Headers[col])
			}
		}
	}
}
