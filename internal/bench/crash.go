package bench

// The crash/out-of-core sweep (-crash): two experiments over the journaled
// level-2 tier, both fully seed-deterministic so CI can diff two runs.
//
// The out-of-core experiment runs a strided write workload on a machine
// whose enforced per-node memory cannot hold the level-2 windows: the
// unbudgeted configuration must die with the typed out-of-memory error,
// while every budgeted configuration completes byte-exactly by spilling
// journaled segments and re-faulting them at drain time — the workload OCIO
// (which must buffer entire windows) cannot run at this memory point.
//
// The crash experiment runs the same workload cleanly under a pfs operation
// log, then replays the log at several seed-drawn virtual kill instants,
// runs tcio.Recover over each reconstructed disk, and verifies the result
// against the committed-prefix expectation (a byte appears iff its owner's
// journal committed the byte's flush epoch by the kill instant, or the
// owner's journal was already durably truncated).

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/wal"
)

// CrashOptions configures the crash/out-of-core sweep.
type CrashOptions struct {
	// Seed drives the kill-instant draws.
	Seed int64
	// Procs is the rank count of every run.
	Procs int
	// Kills is the number of crash instants replayed per configuration.
	Kills int
	// SegmentSize and NumSegments shape the level-2 windows.
	SegmentSize int64
	NumSegments int
	// Blocks is the number of 16-byte blocks each rank writes, round-robin
	// interleaved across ranks; Rounds splits them into flush epochs.
	Blocks int
	Rounds int
	// Budgets lists the resident-segment budgets to sweep. 0 means
	// unbudgeted: expected to OOM in the out-of-core experiment, and run
	// journal-only (no spill) in the crash experiment.
	Budgets []int64
	// MemPerNode and CoresPerNode define the constrained machine of the
	// out-of-core experiment.
	MemPerNode   int64
	CoresPerNode int
	// Verify makes every completing run check its bytes.
	Verify bool
	// Progress receives one line per completed configuration.
	Progress func(string) `json:"-"`
}

// DefaultCrash returns the sweep reported in EXPERIMENTS.md: 8 ranks two to
// a node, 16 KiB of level-2 window per rank against 32 KiB nodes, budgets
// of 0 / 2 / 8 segments, six kills per configuration.
func DefaultCrash() CrashOptions {
	return CrashOptions{
		Seed:         1,
		Procs:        8,
		Kills:        6,
		SegmentSize:  256,
		NumSegments:  64,
		Blocks:       192,
		Rounds:       4,
		Budgets:      []int64{0, 2, 8},
		MemPerNode:   32 << 10,
		CoresPerNode: 2,
		Verify:       true,
	}
}

// CrashRow is one configuration's outcome.
type CrashRow struct {
	Experiment   string `json:"experiment"` // "out-of-core" or "crash"
	BudgetSegs   int64  `json:"budget_segs"`
	Result       string `json:"result"`
	PeakMemory   int64  `json:"peak_memory"`
	Spills       int64  `json:"spills"`
	CleanDrops   int64  `json:"clean_drops"`
	RefaultBytes int64  `json:"refault_bytes"`
	JournalBytes int64  `json:"journal_bytes"`
	Epochs       int64  `json:"epochs"`
	Commits      int64  `json:"commits"`
	Kills        int    `json:"kills"`
	KillsOK      int    `json:"kills_ok"`
}

// CrashReport is the machine-readable result of the sweep.
type CrashReport struct {
	Options CrashOptions `json:"options"`
	Rows    []CrashRow   `json:"rows"`
}

const crashFile = "crash.dat"

// crashByte is the deterministic payload generator of the sweep's workload.
func crashByte(rank, block, j int) byte { return byte(rank*31 + block*7 + j + 5) }

// crashImage is the complete file image the workload produces.
func crashImage(procs, blocks int) []byte {
	out := make([]byte, procs*blocks*16)
	for r := 0; r < procs; r++ {
		for i := 0; i < blocks; i++ {
			base := (i*procs + r) * 16
			for j := 0; j < 16; j++ {
				out[base+j] = crashByte(r, i, j)
			}
		}
	}
	return out
}

// crashWorkload writes each rank's blocks round-robin interleaved, flushing
// between the workload's rounds (the final round's runs journal at Close).
func crashWorkload(c *mpi.Comm, f *tcio.File, blocks, rounds int) error {
	per := (blocks + rounds - 1) / rounds
	for i := 0; i < blocks; i++ {
		pos := int64((i*c.Size() + c.Rank()) * 16)
		var buf [16]byte
		for j := range buf {
			buf[j] = crashByte(c.Rank(), i, j)
		}
		if err := f.WriteAt(pos, buf[:]); err != nil {
			return err
		}
		if (i+1)%per == 0 && i+1 < blocks {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Crash runs the sweep and tabulates both experiments. Every reported
// quantity is a pure function of the options (virtual-time kill draws
// included), so two sweeps with the same options emit identical tables.
func Crash(opts CrashOptions) (stats.Table, *CrashReport, error) {
	if opts.Kills < 1 {
		opts.Kills = 1
	}
	t := stats.Table{
		Title: fmt.Sprintf("Crash/out-of-core sweep: %d ranks, %d kills, seed %d (all columns seed-deterministic)",
			opts.Procs, opts.Kills, opts.Seed),
		Headers: []string{"experiment", "budget-segs", "result", "peak-mem",
			"spills", "clean-drops", "refault-B", "journal-B", "epochs", "commits", "kills", "kills-ok"},
	}
	rep := &CrashReport{Options: opts}
	add := func(row CrashRow) {
		rep.Rows = append(rep.Rows, row)
		t.AddRow(row.Experiment, fmt.Sprintf("%d", row.BudgetSegs), row.Result,
			fmt.Sprintf("%d", row.PeakMemory), fmt.Sprintf("%d", row.Spills),
			fmt.Sprintf("%d", row.CleanDrops), fmt.Sprintf("%d", row.RefaultBytes),
			fmt.Sprintf("%d", row.JournalBytes), fmt.Sprintf("%d", row.Epochs),
			fmt.Sprintf("%d", row.Commits), fmt.Sprintf("%d", row.Kills), fmt.Sprintf("%d", row.KillsOK))
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("crash %s budget=%d: %s", row.Experiment, row.BudgetSegs, row.Result))
		}
	}
	for _, budget := range opts.Budgets {
		add(crashOOMPoint(opts, budget))
	}
	for _, budget := range opts.Budgets {
		add(crashKillPoint(opts, budget))
	}
	return t, rep, nil
}

// crashOOMPoint runs one out-of-core configuration on the constrained
// machine with memory enforcement armed.
func crashOOMPoint(opts CrashOptions, budgetSegs int64) CrashRow {
	row := CrashRow{Experiment: "out-of-core", BudgetSegs: budgetSegs}
	m := cluster.Lonestar()
	m.CoresPerNode = opts.CoresPerNode
	m.MemPerNode = opts.MemPerNode
	fs := pfs.New(pfs.DefaultConfig())
	cfg := tcio.Config{SegmentSize: opts.SegmentSize, NumSegments: opts.NumSegments}
	if budgetSegs > 0 {
		cfg.SegmentMemoryBudget = budgetSegs * opts.SegmentSize
	}
	sts := make([]tcio.Stats, opts.Procs)
	mrep, err := mpi.Run(mpi.Config{Procs: opts.Procs, Machine: m, FS: fs, EnforceMemory: true},
		func(c *mpi.Comm) error {
			f, err := tcio.Open(c, crashFile, tcio.WriteMode, cfg)
			if err != nil {
				return err
			}
			if err := crashWorkload(c, f, opts.Blocks, opts.Rounds); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			sts[c.Rank()] = f.Stats()
			return nil
		})
	row.PeakMemory = mrep.PeakMemory
	for _, s := range sts {
		row.Spills += s.SpillSegments
		row.CleanDrops += s.CleanDrops
		row.RefaultBytes += s.SpillRefaultBytes
		row.JournalBytes += s.JournalBytes
		row.Epochs += s.JournalEpochs
		row.Commits += s.JournalCommits
	}
	switch {
	case budgetSegs == 0 && errors.Is(err, cluster.ErrOutOfMemory):
		row.Result = "OOM (windows exceed node memory)"
	case budgetSegs == 0:
		row.Result = fmt.Sprintf("UNEXPECTED: wanted OOM, got %v", err)
	case err != nil:
		row.Result = fmt.Sprintf("FAILED: %v", err)
	case opts.Verify && !bytes.Equal(fs.Open(crashFile).Snapshot(), crashImage(opts.Procs, opts.Blocks)):
		row.Result = "CORRUPT: image diverged"
	default:
		row.Result = "ok"
	}
	return row
}

// crashKillPoint runs one crash configuration: a clean logged run, then
// Kills replay-recover-verify cycles.
func crashKillPoint(opts CrashOptions, budgetSegs int64) CrashRow {
	row := CrashRow{Experiment: "crash", BudgetSegs: budgetSegs, Kills: opts.Kills}
	fs := pfs.New(pfs.DefaultConfig())
	log := &pfs.Oplog{}
	fs.SetOplog(log)
	cfg := tcio.Config{
		SegmentSize: opts.SegmentSize, NumSegments: opts.NumSegments, Journal: true,
	}
	if budgetSegs > 0 {
		cfg.SegmentMemoryBudget = budgetSegs * opts.SegmentSize
	}
	sts := make([]tcio.Stats, opts.Procs)
	mrep, err := mpi.Run(mpi.Config{Procs: opts.Procs, FS: fs}, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, crashFile, tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		if err := crashWorkload(c, f, opts.Blocks, opts.Rounds); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sts[c.Rank()] = f.Stats()
		return nil
	})
	if err != nil {
		row.Result = fmt.Sprintf("FAILED: %v", err)
		return row
	}
	for _, s := range sts {
		row.Spills += s.SpillSegments
		row.CleanDrops += s.CleanDrops
		row.RefaultBytes += s.SpillRefaultBytes
		row.JournalBytes += s.JournalBytes
		row.Epochs += s.JournalEpochs
		row.Commits += s.JournalCommits
	}

	rng := rand.New(rand.NewSource(opts.Seed*1664525 + 1013904223 + budgetSegs))
	m := int64(mrep.MaxTime)
	lo := 3 * m / 10
	span := m - lo + m/20 + 1
	for k := 0; k < opts.Kills; k++ {
		at := simtime.Time(lo + rng.Int63n(span))
		if err := crashVerifyKill(opts, cfg, log, at); err != nil {
			row.Result = fmt.Sprintf("KILL at %v: %v", at, err)
			return row
		}
		row.KillsOK++
	}
	row.Result = "ok"
	return row
}

// crashVerifyKill reconstructs the crash at one instant, recovers, and
// checks the committed-prefix expectation.
func crashVerifyKill(opts CrashOptions, cfg tcio.Config, log *pfs.Oplog, at simtime.Time) error {
	crashed := pfs.New(pfs.DefaultConfig())
	log.ReplayAt(crashed, at)

	// Committed epochs per rank from the crashed journals; a durable
	// truncate means the rank fully drained before the kill.
	committed := make([]map[int64]bool, opts.Procs)
	for rank := 0; rank < opts.Procs; rank++ {
		committed[rank] = make(map[int64]bool)
		wn := tcio.WALFileName(crashFile, rank)
		if !crashed.Exists(wn) {
			continue
		}
		epochs, err := wal.Decode(crashed.Open(wn).Snapshot())
		if err != nil {
			return fmt.Errorf("rank %d journal: %w", rank, err)
		}
		for _, ep := range epochs {
			committed[rank][ep.Seq] = true
		}
	}
	for _, r := range log.Records() {
		if r.Kind != pfs.OpTruncate || r.End > at {
			continue
		}
		for rank := 0; rank < opts.Procs; rank++ {
			if r.Name == tcio.WALFileName(crashFile, rank) {
				for seq := int64(1); seq <= int64(opts.Rounds); seq++ {
					committed[rank][seq] = true
				}
			}
		}
	}

	if _, err := tcio.Recover(crashed, crashFile, cfg); err != nil {
		return fmt.Errorf("recover: %w", err)
	}

	per := (opts.Blocks + opts.Rounds - 1) / opts.Rounds
	expected := make([]byte, opts.Procs*opts.Blocks*16)
	for r := 0; r < opts.Procs; r++ {
		for i := 0; i < opts.Blocks; i++ {
			seq := int64(i/per) + 1
			for j := 0; j < 16; j++ {
				b := int64((i*opts.Procs+r)*16 + j)
				owner := int((b / opts.SegmentSize) % int64(opts.Procs))
				if committed[owner][seq] {
					expected[b] = crashByte(r, i, j)
				}
			}
		}
	}
	got := crashed.Open(crashFile).Snapshot()
	n := int64(len(expected))
	if int64(len(got)) > n {
		n = int64(len(got))
	}
	for i := int64(0); i < n; i++ {
		var g, w byte
		if i < int64(len(got)) {
			g = got[i]
		}
		if i < int64(len(expected)) {
			w = expected[i]
		}
		if g != w {
			return fmt.Errorf("recovered byte %d = %#x, committed-prefix model %#x", i, g, w)
		}
	}
	return nil
}
