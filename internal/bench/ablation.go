package bench

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/stats"
)

// AblationOptions parameterizes the design-choice ablation sweep
// (DESIGN.md §5): each variant runs the synthetic workload with one TCIO
// mechanism altered.
type AblationOptions struct {
	// Procs is the process count (kept moderate: ablations isolate
	// mechanisms, not scale).
	Procs int
	// LenSim / LenReal as in SweepOptions.
	LenSim, LenReal int
	// Progress, if non-nil, receives one line per completed variant.
	Progress func(string)
}

// DefaultAblation returns a workstation-scale ablation configuration.
func DefaultAblation() AblationOptions {
	return AblationOptions{Procs: 64, LenSim: 1 << 20, LenReal: 4 << 10}
}

// ablationVariant is one row of the ablation table.
type ablationVariant struct {
	name   string
	detail string
	mutate func(*SyntheticConfig)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"baseline", "paper configuration", nil},
		{"no level-1 buffer", "one one-sided op per piece",
			func(c *SyntheticConfig) { c.Level1Disabled = true }},
		{"segment = stripe/4", "level-2 segments below the lock granularity",
			func(c *SyntheticConfig) { c.SegmentSizeMultiplier = 0.25 }},
		{"segment = 4 stripes", "level-2 segments above the lock granularity",
			func(c *SyntheticConfig) { c.SegmentSizeMultiplier = 4 }},
		{"demand populate", "reads load segments under the exclusive lock",
			func(c *SyntheticConfig) { c.DemandPopulate = true }},
		{"two-sided transfers", "exchange charged as matched send/recv",
			func(c *SyntheticConfig) { c.EmulateTwoSided = true }},
	}
}

// AggregatorSweep measures OCIO with different collective-buffering
// aggregator counts (ROMIO's cb_nodes; the paper ran with the feature
// disabled, i.e. every rank aggregating). It needs a direct workload run
// because SyntheticConfig has no OCIO knobs — the sweep reuses the
// Program 2 writer with SetAggregators applied through a wrapper file.
func AggregatorSweep(opts AblationOptions, counts []int) (stats.Table, error) {
	t := stats.Table{
		Title:   fmt.Sprintf("OCIO collective buffering: aggregator count sweep (%d processes)", opts.Procs),
		Headers: []string{"aggregators", "write MB/s", "read MB/s"},
	}
	scale := int64(opts.LenSim / opts.LenReal)
	for _, n := range counts {
		env, err := NewEnv(scale)
		if err != nil {
			return t, err
		}
		cfg := SyntheticConfig{
			Method:          MethodOCIO,
			Procs:           opts.Procs,
			TypeArray:       []datatype.Type{datatype.Int, datatype.Double},
			LenArray:        opts.LenReal,
			SizeAccess:      1,
			Verify:          true,
			FileName:        fmt.Sprintf("aggsweep%d", n),
			OCIOAggregators: n,
		}
		res, err := RunSynthetic(env, cfg)
		if err != nil {
			return t, err
		}
		label := fmt.Sprint(n)
		if n == 0 {
			label = fmt.Sprintf("%d (all ranks, paper setting)", opts.Procs)
		}
		t.AddRow(label, phaseCell(res.Write), phaseCell(res.Read))
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("aggregators=%-4s write=%s read=%s",
				label, phaseCell(res.Write), phaseCell(res.Read)))
		}
	}
	return t, nil
}

// Ablations runs every variant and returns the comparison table.
func Ablations(opts AblationOptions) (stats.Table, error) {
	t := stats.Table{
		Title:   fmt.Sprintf("TCIO design ablations (%d processes)", opts.Procs),
		Headers: []string{"variant", "write MB/s", "read MB/s", "notes"},
	}
	scale := int64(opts.LenSim / opts.LenReal)
	for _, v := range ablationVariants() {
		env, err := NewEnv(scale)
		if err != nil {
			return t, err
		}
		cfg := SyntheticConfig{
			Method:     MethodTCIO,
			Procs:      opts.Procs,
			TypeArray:  []datatype.Type{datatype.Int, datatype.Double},
			LenArray:   opts.LenReal,
			SizeAccess: 1,
			Verify:     true,
			FileName:   "ablation",
		}
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		res, err := RunSynthetic(env, cfg)
		if err != nil {
			return t, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		t.AddRow(v.name, phaseCell(res.Write), phaseCell(res.Read), v.detail)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("ablation %-22s write=%s read=%s",
				v.name, phaseCell(res.Write), phaseCell(res.Read)))
		}
	}
	return t, nil
}
