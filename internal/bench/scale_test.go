package bench

// The scale harness's deterministic columns must be exactly that:
// identical run to run and across GOMAXPROCS. This is the in-repo
// counterpart of the CI scale-smoke diff, at a size small enough for
// every `go test` run.

import "testing"

func smallScale() ScaleOptions {
	opts := DefaultScale()
	opts.Procs = []int{8, 16}
	opts.GoMaxProcs = []int{1, 2}
	opts.Profiles = false
	opts.Progress = nil
	return opts
}

func TestScaleDeterministicColumns(t *testing.T) {
	_, first, err := Scale(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Across GOMAXPROCS: each rank count's deterministic cells agree.
	byProcs := make(map[int]ScalePoint)
	for _, pt := range first.Points {
		if pt.Result != "ok" {
			t.Fatalf("procs=%d gomaxprocs=%d: %s", pt.Procs, pt.GoMaxProcs, pt.Result)
		}
		ref, seen := byProcs[pt.Procs]
		if !seen {
			byProcs[pt.Procs] = pt
			continue
		}
		if pt.VirtualNs != ref.VirtualNs || pt.FSWrites != ref.FSWrites ||
			pt.FSReads != ref.FSReads || pt.TraceEvents != ref.TraceEvents {
			t.Errorf("procs=%d: gomaxprocs=%d deterministic columns (%d %d %d %d) differ from gomaxprocs=%d (%d %d %d %d)",
				pt.Procs, pt.GoMaxProcs, pt.VirtualNs, pt.FSWrites, pt.FSReads, pt.TraceEvents,
				ref.GoMaxProcs, ref.VirtualNs, ref.FSWrites, ref.FSReads, ref.TraceEvents)
		}
	}
	// Across runs: a second sweep reproduces every deterministic cell.
	_, second, err := Scale(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range second.Points {
		ref := first.Points[i]
		if pt.VirtualNs != ref.VirtualNs || pt.FSWrites != ref.FSWrites ||
			pt.FSReads != ref.FSReads || pt.TraceEvents != ref.TraceEvents || pt.Result != ref.Result {
			t.Errorf("rerun procs=%d gomaxprocs=%d: deterministic columns changed: (%d %d %d %d %s) vs (%d %d %d %d %s)",
				pt.Procs, pt.GoMaxProcs, pt.VirtualNs, pt.FSWrites, pt.FSReads, pt.TraceEvents, pt.Result,
				ref.VirtualNs, ref.FSWrites, ref.FSReads, ref.TraceEvents, ref.Result)
		}
	}
}

// TestScaleGeometryNormalized pins the one-segment-per-rank invariant:
// whatever pieces-per-rank a caller asks for, the harness reshapes the
// geometry so each rank fills exactly one segment (see DefaultScale).
func TestScaleGeometryNormalized(t *testing.T) {
	opts := smallScale()
	opts.Procs = []int{4}
	opts.GoMaxProcs = []int{1}
	opts.PiecesPerRank = 7 // not a divisor of the segment size
	_, rep, err := Scale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rep.PiecesPerRank)*rep.PieceBytes != scaleSegSize {
		t.Fatalf("normalized geometry %d x %d B does not fill one %d B segment",
			rep.PiecesPerRank, rep.PieceBytes, scaleSegSize)
	}
	for _, pt := range rep.Points {
		if pt.Result != "ok" {
			t.Fatalf("procs=%d: %s", pt.Procs, pt.Result)
		}
	}
}
