package bench

import (
	"bytes"
	"testing"

	"github.com/tcio/tcio/internal/pfs"
)

// groundTruth computes the expected file image straight from the workload
// definition, independently of every I/O path under test: process p's i-th
// block of SIZEaccess elements per array lands at file block i*P + p, arrays
// in declaration order within the block, bytes from the element generator.
func groundTruth(cfg SyntheticConfig) []byte {
	img := make([]byte, cfg.FileBytes())
	blockSize := cfg.blockSize()
	for p := 0; p < cfg.Procs; p++ {
		for i := 0; i < cfg.iters(); i++ {
			pos := int64(p)*blockSize + int64(i)*blockSize*int64(cfg.Procs)
			for j, typ := range cfg.TypeArray {
				width := int(typ.Size())
				for k := 0; k < cfg.SizeAccess; k++ {
					e := i*cfg.SizeAccess + k
					for b := 0; b < width; b++ {
						img[pos] = element(p, j, e, b)
						pos++
					}
				}
			}
		}
	}
	return img
}

// TestWritersMatchGroundTruth cross-checks every writer — TCIO with a
// serial and a parallel drain on a multi-OST stripe, OCIO's two-phase
// aggregation, and vanilla MPI-IO's POSIX-style independent writes —
// against the independently computed file image. A shared-algebra bug that
// shifted every extent consistently would pass round-trip verification;
// it cannot pass this.
func TestWritersMatchGroundTruth(t *testing.T) {
	cases := []struct {
		name    string
		method  Method
		workers int
		stripes int
	}{
		{"tcio-serial-drain", MethodTCIO, 1, 1},
		{"tcio-parallel-drain", MethodTCIO, 4, 7},
		{"ocio", MethodOCIO, 0, 1},
		{"vanilla", MethodVanilla, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, err := NewEnv(64)
			if err != nil {
				t.Fatal(err)
			}
			if tc.stripes > 1 {
				fscfg := env.FS.Config()
				fscfg.StripeCount = tc.stripes
				env.FS = pfs.New(fscfg)
			}
			cfg := smallSweepCfg(tc.method, 4, "truth-"+tc.name)
			cfg.DrainWorkers = tc.workers
			res, err := RunSynthetic(env, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Write.Failed || res.Read.Failed {
				t.Fatalf("run failed: %+v / %+v", res.Write, res.Read)
			}
			want := groundTruth(cfg)
			got := env.FS.Open(cfg.FileName).Snapshot()
			if int64(len(got)) < int64(len(want)) {
				t.Fatalf("file is %d bytes, workload defines %d", len(got), len(want))
			}
			if !bytes.Equal(got[:len(want)], want) {
				for off := range want {
					if got[off] != want[off] {
						t.Fatalf("first mismatch at offset %d: got %#x want %#x",
							off, got[off], want[off])
					}
				}
			}
		})
	}
}
