package bench

import (
	"fmt"

	"github.com/tcio/tcio/internal/art"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/stats"
)

// This file regenerates the paper's tables and figures. Each function
// returns stats.Table values whose rows correspond to the points of the
// original plot; EXPERIMENTS.md records the measured outputs next to the
// paper's reported shapes.

// SweepOptions parameterizes the synthetic sweeps (Figs. 5-7).
type SweepOptions struct {
	// Procs are the x-axis process counts (paper: 64..1024).
	Procs []int
	// LenSim is the paper-scale LENarray in elements (paper: 4M).
	LenSim int
	// LenReal is the real element count the run materializes; the byte
	// scale is LenSim/LenReal.
	LenReal int
	// SizeAccess is SIZEaccess (paper: 1).
	SizeAccess int
	// Types is TYPEarray (paper: int, double).
	Types []datatype.Type
	// Verify turns on full byte verification during read-back.
	Verify bool
	// Progress, if non-nil, receives one line per completed point.
	Progress func(string)
}

// DefaultSweep returns the paper's Table II configuration at a reduced
// real-element count suitable for a workstation run.
func DefaultSweep() SweepOptions {
	return SweepOptions{
		Procs:      []int{64, 128, 256, 512, 1024},
		LenSim:     4 << 20,
		LenReal:    4 << 10,
		SizeAccess: 1,
		Types:      []datatype.Type{datatype.Int, datatype.Double},
		Verify:     true,
	}
}

func (o SweepOptions) scale() int64 { return int64(o.LenSim / o.LenReal) }

func (o SweepOptions) report(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// phaseCell formats one throughput cell, or the failure it stands for.
func phaseCell(pr PhaseResult) string {
	if pr.Failed {
		return "FAIL (" + pr.FailReason + ")"
	}
	return stats.FmtMBs(pr.MBs)
}

// Fig5 regenerates Figure 5: synthetic write and read throughput as a
// function of the number of processes, TCIO vs OCIO.
func Fig5(opts SweepOptions) (write, read stats.Table, results []Result, err error) {
	write = stats.Table{
		Title:   "Figure 5 (left): write throughput vs processes (MBytes/sec)",
		Headers: []string{"procs", "TCIO", "OCIO"},
	}
	read = stats.Table{
		Title:   "Figure 5 (right): read throughput vs processes (MBytes/sec)",
		Headers: []string{"procs", "TCIO", "OCIO"},
	}
	for _, p := range opts.Procs {
		row := map[Method]Result{}
		for _, m := range []Method{MethodTCIO, MethodOCIO} {
			env, e := NewEnv(opts.scale())
			if e != nil {
				return write, read, results, e
			}
			cfg := SyntheticConfig{
				Method:     m,
				Procs:      p,
				TypeArray:  opts.Types,
				LenArray:   opts.LenReal,
				SizeAccess: opts.SizeAccess,
				Verify:     opts.Verify,
				FileName:   fmt.Sprintf("fig5-%v-%d", m, p),
			}
			res, e := RunSynthetic(env, cfg)
			if e != nil {
				return write, read, results, e
			}
			row[m] = res
			results = append(results, res)
			opts.report("fig5 %v procs=%d write=%s read=%s", m, p,
				phaseCell(res.Write), phaseCell(res.Read))
		}
		write.AddRow(fmt.Sprint(p), phaseCell(row[MethodTCIO].Write), phaseCell(row[MethodOCIO].Write))
		read.AddRow(fmt.Sprint(p), phaseCell(row[MethodTCIO].Read), phaseCell(row[MethodOCIO].Read))
	}
	return write, read, results, nil
}

// FileSizeSweepOptions parameterizes Figs. 6-7: fixed process count,
// varying dataset size.
type FileSizeSweepOptions struct {
	// Procs is fixed at 64 in the paper.
	Procs int
	// LenSims are the paper-scale LENarray values (1M..64M, i.e. file
	// sizes 768 MB..48 GB).
	LenSims []int
	// LenReal is the real element count per run.
	LenReal int
	// SizeAccess, Types, Verify, Progress: as in SweepOptions.
	SizeAccess int
	Types      []datatype.Type
	Verify     bool
	Progress   func(string)
}

// DefaultFileSizeSweep returns the paper's Fig. 6/7 configuration.
func DefaultFileSizeSweep() FileSizeSweepOptions {
	return FileSizeSweepOptions{
		Procs:      64,
		LenSims:    []int{1 << 20, 4 << 20, 16 << 20, 64 << 20},
		LenReal:    4 << 10,
		SizeAccess: 1,
		Types:      []datatype.Type{datatype.Int, datatype.Double},
		Verify:     true,
	}
}

// Fig6And7 regenerates Figures 6 and 7: write and read throughput vs file
// size at 64 processes. The 48 GB point reproduces the paper's headline
// failure: OCIO runs out of memory while TCIO completes.
func Fig6And7(opts FileSizeSweepOptions) (write, read stats.Table, results []Result, err error) {
	write = stats.Table{
		Title:   "Figure 6: write throughput vs file size, 64 processes (MBytes/sec)",
		Headers: []string{"file size", "TCIO", "OCIO"},
	}
	read = stats.Table{
		Title:   "Figure 7: read throughput vs file size, 64 processes (MBytes/sec)",
		Headers: []string{"file size", "TCIO", "OCIO"},
	}
	for _, lenSim := range opts.LenSims {
		row := map[Method]Result{}
		var fileSim int64
		for _, m := range []Method{MethodTCIO, MethodOCIO} {
			scale := int64(lenSim / opts.LenReal)
			env, e := NewEnv(scale)
			if e != nil {
				return write, read, results, e
			}
			cfg := SyntheticConfig{
				Method:     m,
				Procs:      opts.Procs,
				TypeArray:  opts.Types,
				LenArray:   opts.LenReal,
				SizeAccess: opts.SizeAccess,
				Verify:     opts.Verify,
				FileName:   fmt.Sprintf("fig67-%v-%d", m, lenSim),
			}
			fileSim = cfg.FileBytes() * scale
			res, e := RunSynthetic(env, cfg)
			if e != nil {
				return write, read, results, e
			}
			row[m] = res
			results = append(results, res)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("fig6/7 %v size=%s write=%s read=%s",
					m, stats.FmtBytes(fileSim), phaseCell(res.Write), phaseCell(res.Read)))
			}
		}
		label := stats.FmtBytes(fileSim)
		write.AddRow(label, phaseCell(row[MethodTCIO].Write), phaseCell(row[MethodOCIO].Write))
		read.AddRow(label, phaseCell(row[MethodTCIO].Read), phaseCell(row[MethodOCIO].Read))
	}
	return write, read, results, nil
}

// ARTOptions parameterizes the cosmology-application experiment
// (Figs. 9-10).
type ARTOptions struct {
	// Procs are the x-axis process counts.
	Procs []int
	// Trees is the number of FTT segments (paper Table IV: 1024).
	Trees int
	// Vars is the number of per-cell variables.
	Vars int
	// MuCells, SigmaCells, Seed define the Table IV size distribution.
	MuCells, SigmaCells float64
	Seed                int64
	// Scale is the environment byte scale.
	Scale int64
	// VanillaCutoff is the paper's ">90 minutes" rule: vanilla MPI-IO
	// points whose simulated runtime exceeds it are reported as such.
	VanillaCutoff simtime.Duration
	// Progress, if non-nil, receives one line per completed point.
	Progress func(string)
}

// DefaultART returns the paper's §V.C configuration at workstation scale.
func DefaultART() ARTOptions {
	return ARTOptions{
		Procs:      []int{64, 128, 256, 512, 1024},
		Trees:      art.TableIV.Segments,
		Vars:       2,
		MuCells:    art.TableIV.Mu,
		SigmaCells: art.TableIV.Sigma,
		Seed:       art.TableIV.Seed,
		// ART records are materialized at full size (a 2048-cell tree with
		// two variables is ~35 KB), so no byte scaling is needed — and
		// scaling would distort the piece-size distribution that drives
		// the vanilla-MPI-IO penalty.
		Scale:         1,
		VanillaCutoff: simtime.Duration(90) * 60 * simtime.Second,
	}
}

// ARTResult is one (library, procs) point of Figs. 9-10.
type ARTResult struct {
	Library    art.Library
	Procs      int
	SimBytes   int64
	WriteTime  simtime.Duration
	ReadTime   simtime.Duration
	WriteMBs   float64
	ReadMBs    float64
	Failed     bool
	FailReason string
}

// runART measures one checkpoint dump + restart.
func runART(opts ARTOptions, lib art.Library, procs int) (ARTResult, error) {
	res := ARTResult{Library: lib, Procs: procs}
	env, err := NewEnv(opts.Scale)
	if err != nil {
		return res, err
	}
	name := fmt.Sprintf("art-%v-%d", lib, procs)
	mkTrees := func(c *mpi.Comm) []*art.Tree {
		sizes := art.SegmentSizes(opts.Trees, opts.MuCells, opts.SigmaCells, opts.Seed)
		var out []*art.Tree
		for _, id := range art.OwnedBy(opts.Trees, c.Size(), c.Rank()) {
			rng := art.TreeRNG(opts.Seed, int64(id))
			out = append(out, art.Generate(int64(id), sizes[id], opts.Vars, rng))
		}
		return out
	}

	// Dump phase.
	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: env.Machine, FS: env.FS}, func(c *mpi.Comm) error {
		return art.Dump(c, lib, name, mkTrees(c), opts.Trees, 0)
	})
	if err != nil {
		res.Failed, res.FailReason = true, failReason(err)
		return res, nil
	}
	res.WriteTime = rep.MaxTime.Sub(0)
	res.SimBytes = env.FS.Open(name).Size() * opts.Scale
	res.WriteMBs = stats.ThroughputMBs(res.SimBytes, res.WriteTime)

	// Restart phase: read back and verify every tree.
	env.FS.Reset()
	rep, err = mpi.Run(mpi.Config{Procs: procs, Machine: env.Machine, FS: env.FS}, func(c *mpi.Comm) error {
		want := mkTrees(c)
		got, err := art.Restore(c, lib, name)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("restored %d trees, want %d", len(got), len(want))
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				return fmt.Errorf("tree %d corrupted across dump/restart", want[i].ID)
			}
		}
		return nil
	})
	if err != nil {
		res.Failed, res.FailReason = true, failReason(err)
		return res, nil
	}
	res.ReadTime = rep.MaxTime.Sub(0)
	res.ReadMBs = stats.ThroughputMBs(res.SimBytes, res.ReadTime)
	return res, nil
}

// artCell formats one Fig. 9/10 cell, honouring the paper's 90-minute rule.
func artCell(r ARTResult, t simtime.Duration, mbs float64, cutoff simtime.Duration) string {
	if r.Failed {
		return "FAIL (" + r.FailReason + ")"
	}
	if cutoff > 0 && t > cutoff {
		return fmt.Sprintf("omitted (>%v)", cutoff)
	}
	return stats.FmtMBs(mbs)
}

// Fig9And10 regenerates Figures 9 and 10: ART checkpoint write and restart
// read throughput, TCIO vs vanilla MPI-IO.
func Fig9And10(opts ARTOptions) (write, read stats.Table, results []ARTResult, err error) {
	write = stats.Table{
		Title:   "Figure 9: ART write throughput vs processes (MBytes/sec)",
		Headers: []string{"procs", "TCIO", "MPI-IO"},
	}
	read = stats.Table{
		Title:   "Figure 10: ART read throughput vs processes (MBytes/sec)",
		Headers: []string{"procs", "TCIO", "MPI-IO"},
	}
	for _, p := range opts.Procs {
		row := map[art.Library]ARTResult{}
		for _, lib := range []art.Library{art.LibTCIO, art.LibVanilla} {
			r, e := runART(opts, lib, p)
			if e != nil {
				return write, read, results, e
			}
			row[lib] = r
			results = append(results, r)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("fig9/10 %v procs=%d write=%.1f MB/s read=%.1f MB/s",
					lib, p, r.WriteMBs, r.ReadMBs))
			}
		}
		write.AddRow(fmt.Sprint(p),
			artCell(row[art.LibTCIO], row[art.LibTCIO].WriteTime, row[art.LibTCIO].WriteMBs, 0),
			artCell(row[art.LibVanilla], row[art.LibVanilla].WriteTime, row[art.LibVanilla].WriteMBs, opts.VanillaCutoff))
		read.AddRow(fmt.Sprint(p),
			artCell(row[art.LibTCIO], row[art.LibTCIO].ReadTime, row[art.LibTCIO].ReadMBs, 0),
			artCell(row[art.LibVanilla], row[art.LibVanilla].ReadTime, row[art.LibVanilla].ReadMBs, opts.VanillaCutoff))
	}
	return write, read, results, nil
}

// Table1 renders the paper's Table I: the benchmark's configuration
// parameters.
func Table1() stats.Table {
	t := stats.Table{
		Title:   "Table I: configuration parameters",
		Headers: []string{"symbol", "description"},
	}
	t.AddRow("method", "0: OCIO; 1: TCIO; 2: MPI-IO")
	t.AddRow("NUMarray", "number of arrays within each process")
	t.AddRow("TYPEarray", "array element types, comma separated (c,s,i,f,d)")
	t.AddRow("LENarray", "length of arrays")
	t.AddRow("SIZEaccess", "array elements per I/O access")
	return t
}

// Table2 renders the paper's Table II: the Fig. 5 experiment configuration.
func Table2(opts SweepOptions) stats.Table {
	t := stats.Table{
		Title:   "Table II: experiment configuration",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("NUMarray", fmt.Sprint(len(opts.Types)))
	names := ""
	for i, ty := range opts.Types {
		if i > 0 {
			names += ","
		}
		names += ty.String()
	}
	t.AddRow("TYPEarray", names)
	t.AddRow("LENarray", fmt.Sprintf("%d (simulated; %d materialized)", opts.LenSim, opts.LenReal))
	t.AddRow("SIZEaccess", fmt.Sprint(opts.SizeAccess))
	t.AddRow("NUMproc", fmt.Sprint(opts.Procs))
	return t
}

// Table3 renders the paper's Table III: the qualitative OCIO/TCIO
// comparison, with the lines-of-code row measured from the actual
// Program 2/3 sources.
func Table3() stats.Table {
	t := stats.Table{
		Title:   "Table III: comparison between OCIO and TCIO",
		Headers: []string{"aspect", "original collective I/O", "transparent collective I/O"},
	}
	loc2, loc3 := ProgramLines()
	t.AddRow("application-level buffer", "yes", "no")
	t.AddRow("file view", "yes", "no")
	t.AddRow("lines of code (write path)", fmt.Sprintf("many (%d)", loc2), fmt.Sprintf("few (%d)", loc3))
	t.AddRow("memory efficiency", "poor (~2x data size)", "high (data size + one segment)")
	t.AddRow("restriction", "patterns expressible as derived datatypes", "any POSIX-like access pattern")
	return t
}

// Table4 renders the paper's Table IV: the ART segment-size distribution.
func Table4() stats.Table {
	t := stats.Table{
		Title:   "Table IV: segments generation",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("distribution", "Normal")
	t.AddRow("mu", fmt.Sprint(art.TableIV.Mu))
	t.AddRow("sigma", fmt.Sprint(art.TableIV.Sigma))
	t.AddRow("seed", fmt.Sprint(art.TableIV.Seed))
	t.AddRow("segments", fmt.Sprint(art.TableIV.Segments))
	sizes := art.SegmentSizes(art.TableIV.Segments, art.TableIV.Mu, art.TableIV.Sigma, art.TableIV.Seed)
	var s stats.Sample
	for _, v := range sizes {
		s.Add(float64(v))
	}
	t.AddRow("measured mean", fmt.Sprintf("%.1f cells", s.Mean()))
	t.AddRow("measured stddev", fmt.Sprintf("%.1f cells", s.Stddev()))
	return t
}
