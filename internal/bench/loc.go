package bench

import (
	_ "embed"
	"strings"
)

// The paper's programming-effort comparison counts the code a developer
// must write for the same workload under each library. The sources of the
// two implementations are embedded so the count always reflects the code
// that actually runs.

//go:embed program2.go
var program2Source string

//go:embed program3.go
var program3Source string

// countRegion counts the effective source lines (non-blank, non-comment)
// between "// BEGIN <marker>" and "// END <marker>" in src.
func countRegion(src, marker string) int {
	lines := strings.Split(src, "\n")
	in := false
	skip := false
	n := 0
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "// BEGIN "+marker:
			in = true
		case trimmed == "// END "+marker:
			in = false
		case strings.HasPrefix(trimmed, "// BEGIN EXTENSION"):
			skip = true
		case strings.HasPrefix(trimmed, "// END EXTENSION"):
			skip = false
		case in && !skip && trimmed != "" && !strings.HasPrefix(trimmed, "//"):
			n++
		}
	}
	return n
}

// ProgramLines reports the effective lines of the write paths of Program 2
// (OCIO) and Program 3 (TCIO) — the paper's Table III "lines of code" row.
func ProgramLines() (ocio, tcio int) {
	return countRegion(program2Source, "PROGRAM 2 WRITE"),
		countRegion(program3Source, "PROGRAM 3 WRITE")
}

// ProgramReadLines reports the same comparison for the read paths.
func ProgramReadLines() (ocio, tcio int) {
	return countRegion(program2Source, "PROGRAM 2 READ"),
		countRegion(program3Source, "PROGRAM 3 READ")
}

// ProgramSources returns the embedded sources for display by cmd/loccount.
func ProgramSources() (program2, program3 string) {
	return program2Source, program3Source
}
