package bench

// This file implements the noncontiguous-read sweep: hole-y read workloads
// run through the data-sieving read engine (tcio.Config.SieveBuffer) and the
// two-phase collective read (tcio.Config.CollectiveRead) while the sieve
// budget, the hole density, and the interleave granule vary.
//
// Two workloads bracket the engine's trade-offs:
//
//   - "holes": every rank reads granule-sized runs from its own contiguous,
//     segment-aligned quarter of the file, skipping a density-controlled
//     subset of granules. Each level-2 segment is demanded by exactly one
//     rank, so per-segment populate work — and every fault roll it keys —
//     is a pure function of the pattern. The sweep pits per-run list I/O
//     (SieveBuffer=1) against covering sieve reads at growing budgets: the
//     covering read saves (runs-1) request setups per segment and pays for
//     the holes it drags in, so sieving wins while hole bytes stay cheaper
//     than the saved setups.
//
//   - "interleave": granule g deals every block of the file to rank
//     (block mod P), so all ranks demand every segment. Independently, each
//     rank sieves only its own runs — up to P partial populates per segment
//     under the owner's lock. The two-phase collective read instead merges
//     all ranks' intents in one allgather; each owner then populates its
//     segments' union in one pass. The finer the granule, the more
//     redundant per-rank covering reads the exchange replaces.
//
// Bytes are verified against the generator at every setting; neither
// sieving nor the collective exchange may change a single byte read.

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
)

// SieveOptions configures the noncontiguous-read sweep.
type SieveOptions struct {
	// Procs is the process count of each run.
	Procs int
	// SegSize is the real level-2 segment size in bytes.
	SegSize int64
	// SegsPerRank is the number of level-2 segments per process; the file
	// is exactly Procs x SegsPerRank segments.
	SegsPerRank int
	// HoleGranule is the real block size of the holes workload.
	HoleGranule int64
	// Densities lists hole percentages for the holes workload.
	Densities []int
	// Budgets lists the real SieveBuffer settings swept by the holes
	// workload (0 = whole-segment populate, 1 = per-run list I/O).
	Budgets []int64
	// Granules lists the real interleave block sizes for the collective
	// comparison.
	Granules []int64
	// Scale is the environment byte scale (simulated bytes per real byte).
	Scale int64
	// Verify makes every rank check each byte it read against the
	// generator.
	Verify bool
	// Progress receives one line per completed run.
	Progress func(string)
}

// DefaultSieve sweeps hole densities 25/50/75% against four sieve budgets
// and interleave granules of 4/16/64 KiB (simulated) against the two-phase
// collective read, over 8 processes and 256 KiB (simulated) segments.
func DefaultSieve() SieveOptions {
	return SieveOptions{
		Procs:       8,
		SegSize:     16 << 10,
		SegsPerRank: 4,
		HoleGranule: 256,
		Densities:   []int{25, 50, 75},
		Budgets:     []int64{0, 1, 4 << 10, 16 << 10},
		Granules:    []int64{256, 1 << 10, 4 << 10},
		Scale:       16,
		Verify:      true,
	}
}

// SievePoint is one setting's result. Sizes are simulated bytes.
type SievePoint struct {
	Workload      string  `json:"workload"` // "holes" or "interleave"
	HolePct       int     `json:"hole_pct,omitempty"`
	Granule       int64   `json:"granule,omitempty"`
	SieveBuffer   int64   `json:"sieve_buffer"`
	Collective    bool    `json:"collective_read"`
	VirtualTimeNs int64   `json:"virtual_time_ns"`
	MBs           float64 `json:"mbs"`
	FSReads       int64   `json:"fs_reads"`
	SieveReads    int64   `json:"sieve_reads"`
	SieveWaste    int64   `json:"sieve_waste_bytes"`
	Exchanges     int64   `json:"two_phase_exchanges"`
	Populations   int64   `json:"populations"`
	Result        string  `json:"result"`
}

// SieveReport is the machine-readable result of one sweep
// (tciobench -sieve -json).
type SieveReport struct {
	Procs       int          `json:"procs"`
	SegsPerRank int          `json:"segs_per_rank"`
	SegSize     int64        `json:"seg_size"` // simulated bytes
	Scale       int64        `json:"scale"`
	Points      []SievePoint `json:"points"`
}

// sieveByte is the workload's deterministic content generator.
func sieveByte(off int64) byte {
	x := uint64(off)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 31
	return byte(x * 0x9E3779B97F4A7C15 >> 56)
}

// sieveHole decides, as a pure function of the block index and the density,
// whether the holes workload skips a granule.
func sieveHole(block int64, pct int) bool {
	x := uint64(block+1) * 0xD1342543DE82EF95
	x ^= x >> 32
	x *= 0x2545F4914F6CDD1D
	return int(x>>33%100) < pct
}

// sieveRun is one contiguous read of the workload's access pattern.
type sieveRun struct{ off, n int64 }

// holeRuns builds one rank's coalesced runs for the holes workload: granule
// blocks of the rank's contiguous quarter, minus the density-selected holes.
func holeRuns(opts SieveOptions, rank, pct int) []sieveRun {
	perRank := opts.SegSize * int64(opts.SegsPerRank)
	lo, hi := int64(rank)*perRank, int64(rank+1)*perRank
	var runs []sieveRun
	for off := lo; off < hi; off += opts.HoleGranule {
		if sieveHole(off/opts.HoleGranule, pct) {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].off+runs[n-1].n == off {
			runs[n-1].n += opts.HoleGranule
			continue
		}
		runs = append(runs, sieveRun{off, opts.HoleGranule})
	}
	return runs
}

// interleaveRuns builds one rank's runs for the interleave workload: every
// granule block dealt round-robin to the rank.
func interleaveRuns(opts SieveOptions, rank int, granule int64) []sieveRun {
	fileBytes := opts.SegSize * int64(opts.SegsPerRank) * int64(opts.Procs)
	var runs []sieveRun
	for off := int64(rank) * granule; off < fileBytes; off += granule * int64(opts.Procs) {
		runs = append(runs, sieveRun{off, granule})
	}
	return runs
}

// sieveSeed writes the ground-truth file image through the library once per
// environment: rank r writes its contiguous quarter in segment-size pieces.
func sieveSeed(opts SieveOptions, env *Env, name string) error {
	cfg := tcio.Config{SegmentSize: opts.SegSize, NumSegments: opts.SegsPerRank}
	_, err := mpi.Run(mpi.Config{
		Procs:   opts.Procs,
		Machine: env.Machine,
		FS:      env.FS,
		Faults:  env.Faults,
	}, func(c *mpi.Comm) error {
		handle, err := tcio.Open(c, name, tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		perRank := opts.SegSize * int64(opts.SegsPerRank)
		base := int64(c.Rank()) * perRank
		buf := make([]byte, opts.SegSize)
		for off := int64(0); off < perRank; off += opts.SegSize {
			for i := range buf {
				buf[i] = sieveByte(base + off + int64(i))
			}
			if err := handle.WriteAt(base+off, buf); err != nil {
				return err
			}
		}
		return handle.Close()
	})
	return err
}

// sieveRead runs one read setting against the seeded file: every rank
// issues its runs lazily, fetches once (a collective call when the
// two-phase exchange is on), closes, and verifies the bytes it read.
func sieveRead(opts SieveOptions, env *Env, name string, runsFor func(rank int) []sieveRun,
	budget int64, collective bool) (PhaseResult, tcio.Stats) {
	env.FS.Reset()
	var readBytes int64
	for r := 0; r < opts.Procs; r++ {
		for _, run := range runsFor(r) {
			readBytes += run.n
		}
	}
	pr := PhaseResult{Method: MethodTCIO, Procs: opts.Procs, SimBytes: readBytes * opts.Scale}
	cfg := tcio.Config{
		SegmentSize:    opts.SegSize,
		NumSegments:    opts.SegsPerRank,
		DemandPopulate: true,
		SieveBuffer:    budget,
		CollectiveRead: collective,
	}
	var mu sync.Mutex
	var agg tcio.Stats
	rep, err := mpi.Run(mpi.Config{
		Procs:   opts.Procs,
		Machine: env.Machine,
		FS:      env.FS,
		Faults:  env.Faults,
	}, func(c *mpi.Comm) error {
		handle, err := tcio.Open(c, name, tcio.ReadMode, cfg)
		if err != nil {
			return err
		}
		runs := runsFor(c.Rank())
		var total int64
		for _, run := range runs {
			total += run.n
		}
		buf := make([]byte, total)
		at := int64(0)
		for _, run := range runs {
			if err := handle.ReadAt(run.off, buf[at:at+run.n]); err != nil {
				return err
			}
			at += run.n
		}
		if err := handle.Fetch(); err != nil {
			return err
		}
		if err := handle.Close(); err != nil {
			return err
		}
		st := handle.Stats()
		mu.Lock()
		agg.SieveReads += st.SieveReads
		agg.SieveWasteBytes += st.SieveWasteBytes
		agg.TwoPhaseExchanges += st.TwoPhaseExchanges
		agg.Populations += st.Populations
		agg.Retries += st.Retries
		mu.Unlock()
		if opts.Verify {
			at = 0
			for _, run := range runs {
				for i := int64(0); i < run.n; i++ {
					if got, want := buf[at+i], sieveByte(run.off+i); got != want {
						return fmt.Errorf("rank %d offset %d: got %#x want %#x",
							c.Rank(), run.off+i, got, want)
					}
				}
				at += run.n
			}
		}
		return nil
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr, agg
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.AllocRetries = rep.AllocRetries
	return pr, agg
}

// validateSieve checks the sweep's alignment preconditions.
func validateSieve(opts SieveOptions) error {
	if opts.Procs < 1 || opts.SegsPerRank < 1 {
		return fmt.Errorf("bench: %d procs, %d segments per rank", opts.Procs, opts.SegsPerRank)
	}
	if opts.HoleGranule < 1 || opts.SegSize%opts.HoleGranule != 0 {
		return fmt.Errorf("bench: segment size %d not a multiple of hole granule %d",
			opts.SegSize, opts.HoleGranule)
	}
	fileBytes := opts.SegSize * int64(opts.SegsPerRank) * int64(opts.Procs)
	for _, g := range opts.Granules {
		if g < 1 || fileBytes%g != 0 {
			return fmt.Errorf("bench: file size %d not a multiple of granule %d", fileBytes, g)
		}
	}
	for _, b := range opts.Budgets {
		if b < 0 {
			return fmt.Errorf("bench: sieve budget %d", b)
		}
	}
	return nil
}

// sieveBudgetLabel renders a budget for the table: simulated bytes, with
// the two degenerate settings named.
func sieveBudgetLabel(opts SieveOptions, budget int64) string {
	switch budget {
	case 0:
		return "off(segment)"
	case 1:
		return "1(list-I/O)"
	}
	return fmt.Sprintf("%d", budget*opts.Scale)
}

// Sieve runs the full sweep: the holes workload over every (density,
// budget) cell, then the interleave workload over every granule with the
// two-phase collective read off and on.
func Sieve(opts SieveOptions) (stats.Table, stats.Table, *SieveReport, error) {
	if err := validateSieve(opts); err != nil {
		return stats.Table{}, stats.Table{}, nil, err
	}
	report := &SieveReport{
		Procs:       opts.Procs,
		SegsPerRank: opts.SegsPerRank,
		SegSize:     opts.SegSize * opts.Scale,
		Scale:       opts.Scale,
	}
	holes := stats.Table{
		Title: fmt.Sprintf("Data sieving: hole-y reads, %d processes, %d B simulated segments",
			opts.Procs, opts.SegSize*opts.Scale),
		Headers: []string{"holes%", "sieve-buf", "time", "MB/s", "fs-reads",
			"sieve-reads", "waste-bytes", "populations", "result"},
	}
	for _, pct := range opts.Densities {
		pct := pct
		runsFor := func(rank int) []sieveRun { return holeRuns(opts, rank, pct) }
		for _, budget := range opts.Budgets {
			env, err := NewEnv(opts.Scale)
			if err != nil {
				return holes, stats.Table{}, report, err
			}
			if err := sieveSeed(opts, env, "sieve.dat"); err != nil {
				return holes, stats.Table{}, report, err
			}
			pr, st := sieveRead(opts, env, "sieve.dat", runsFor, budget, false)
			result := "ok"
			if pr.Failed {
				result = pr.FailReason
			}
			holes.AddRow(
				fmt.Sprintf("%d", pct),
				sieveBudgetLabel(opts, budget),
				pr.Time.String(),
				fmt.Sprintf("%.1f", pr.MBs),
				fmt.Sprintf("%d", pr.FS.Reads),
				fmt.Sprintf("%d", st.SieveReads),
				fmt.Sprintf("%d", st.SieveWasteBytes*opts.Scale),
				fmt.Sprintf("%d", st.Populations),
				result,
			)
			report.Points = append(report.Points, SievePoint{
				Workload:      "holes",
				HolePct:       pct,
				SieveBuffer:   budget * opts.Scale,
				VirtualTimeNs: int64(pr.Time),
				MBs:           pr.MBs,
				FSReads:       pr.FS.Reads,
				SieveReads:    st.SieveReads,
				SieveWaste:    st.SieveWasteBytes * opts.Scale,
				Exchanges:     st.TwoPhaseExchanges,
				Populations:   st.Populations,
				Result:        result,
			})
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("sieve holes=%d%% buf=%s: %v fs-reads=%d (%s)",
					pct, sieveBudgetLabel(opts, budget), pr.Time, pr.FS.Reads, result))
			}
		}
	}
	inter := stats.Table{
		Title: fmt.Sprintf("Two-phase collective read: granule-interleaved reads, %d processes",
			opts.Procs),
		Headers: []string{"granule", "mode", "time", "MB/s", "fs-reads",
			"sieve-reads", "waste-bytes", "exchanges", "result"},
	}
	for _, granule := range opts.Granules {
		granule := granule
		runsFor := func(rank int) []sieveRun { return interleaveRuns(opts, rank, granule) }
		for _, collective := range []bool{false, true} {
			env, err := NewEnv(opts.Scale)
			if err != nil {
				return holes, inter, report, err
			}
			if err := sieveSeed(opts, env, "sieve.dat"); err != nil {
				return holes, inter, report, err
			}
			pr, st := sieveRead(opts, env, "sieve.dat", runsFor, opts.SegSize, collective)
			result := "ok"
			if pr.Failed {
				result = pr.FailReason
			}
			mode := "independent"
			if collective {
				mode = "collective"
			}
			inter.AddRow(
				fmt.Sprintf("%d", granule*opts.Scale),
				mode,
				pr.Time.String(),
				fmt.Sprintf("%.1f", pr.MBs),
				fmt.Sprintf("%d", pr.FS.Reads),
				fmt.Sprintf("%d", st.SieveReads),
				fmt.Sprintf("%d", st.SieveWasteBytes*opts.Scale),
				fmt.Sprintf("%d", st.TwoPhaseExchanges),
				result,
			)
			report.Points = append(report.Points, SievePoint{
				Workload:      "interleave",
				Granule:       granule * opts.Scale,
				SieveBuffer:   opts.SegSize * opts.Scale,
				Collective:    collective,
				VirtualTimeNs: int64(pr.Time),
				MBs:           pr.MBs,
				FSReads:       pr.FS.Reads,
				SieveReads:    st.SieveReads,
				SieveWaste:    st.SieveWasteBytes * opts.Scale,
				Exchanges:     st.TwoPhaseExchanges,
				Populations:   st.Populations,
				Result:        result,
			})
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("sieve interleave granule=%d %s: %v fs-reads=%d (%s)",
					granule*opts.Scale, mode, pr.Time, pr.FS.Reads, result))
			}
		}
	}
	return holes, inter, report, nil
}

// SieveChaos runs a reduced sweep under deterministic fault injection and
// tabulates only seed-deterministic counts, so two runs with the same seed
// emit byte-identical tables — the CI reproducibility check for the sieved
// read path. The settings are chosen so every FS read is a pure function of
// the pattern: in the holes workload each segment is demanded by exactly
// one rank, and the collective interleave's owners populate their segments'
// merged intents. (The independent interleave is deliberately absent — which
// rank populates which part of a shared segment is scheduling-dependent.)
func SieveChaos(opts SieveOptions, seed int64) (stats.Table, error) {
	if err := validateSieve(opts); err != nil {
		return stats.Table{}, err
	}
	t := stats.Table{
		Title: fmt.Sprintf("Noncontiguous-read chaos: %d processes, seed %d (counts are seed-deterministic)",
			opts.Procs, seed),
		Headers: []string{"workload", "setting", "sieve-buf", "injected", "retries",
			"fs-reads", "sieve-reads", "waste-bytes", "exchanges", "result"},
	}
	chaosBase := DefaultChaos()
	chaosBase.Seed = seed
	type cell struct {
		workload   string
		setting    string
		budget     int64
		collective bool
		runsFor    func(rank int) []sieveRun
	}
	pct := 50
	granule := opts.Granules[0]
	cells := []cell{
		{"holes", "50%", 1, false,
			func(rank int) []sieveRun { return holeRuns(opts, rank, pct) }},
		{"holes", "50%", opts.SegSize, false,
			func(rank int) []sieveRun { return holeRuns(opts, rank, pct) }},
		{"interleave", fmt.Sprintf("%dB", granule*opts.Scale), opts.SegSize, true,
			func(rank int) []sieveRun { return interleaveRuns(opts, rank, granule) }},
	}
	for _, c := range cells {
		inj := chaosBase.ChaosInjector(0.01)
		env, err := NewChaosEnv(opts.Scale, inj)
		if err != nil {
			return t, err
		}
		if err := sieveSeed(opts, env, "sieve.dat"); err != nil {
			return t, err
		}
		pr, st := sieveRead(opts, env, "sieve.dat", c.runsFor, c.budget, c.collective)
		result := "ok"
		if pr.Failed {
			result = pr.FailReason
		}
		t.AddRow(
			c.workload,
			c.setting,
			sieveBudgetLabel(opts, c.budget),
			fmt.Sprintf("%d", inj.TotalInjected()),
			fmt.Sprintf("%d", st.Retries),
			fmt.Sprintf("%d", pr.FS.Reads),
			fmt.Sprintf("%d", st.SieveReads),
			fmt.Sprintf("%d", st.SieveWasteBytes*opts.Scale),
			fmt.Sprintf("%d", st.TwoPhaseExchanges),
			result,
		)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("sieve chaos %s %s buf=%s: %s",
				c.workload, c.setting, sieveBudgetLabel(opts, c.budget), result))
		}
	}
	return t, nil
}
