package bench

import (
	"bytes"
	"testing"
)

// smallSieveOpts shrinks the sweep to test scale: 4 processes, 2 KiB of
// file, granule 64.
func smallSieveOpts() SieveOptions {
	return SieveOptions{
		Procs:       4,
		SegSize:     256,
		SegsPerRank: 2,
		HoleGranule: 64,
		Densities:   []int{25, 50},
		Budgets:     []int64{0, 1, 256},
		Granules:    []int64{64, 256},
		Scale:       4,
		Verify:      true,
	}
}

func TestSieveSweepSmall(t *testing.T) {
	opts := smallSieveOpts()
	_, _, report, err := Sieve(opts)
	if err != nil {
		t.Fatalf("Sieve: %v", err)
	}
	byKey := map[string]SievePoint{}
	for _, p := range report.Points {
		if p.Result != "ok" {
			t.Errorf("point %+v: result %q", p, p.Result)
		}
		key := p.Workload
		if p.Workload == "holes" {
			key += string(rune('0'+p.HolePct/25)) + sieveBudgetLabel(opts, p.SieveBuffer/opts.Scale)
		} else {
			key += string(rune('0' + p.Granule/opts.Scale/64))
			if p.Collective {
				key += "c"
			}
		}
		byKey[key] = p
	}
	// The covering sieve must issue fewer FS reads than per-run list I/O
	// and pay for it in waste bytes.
	for _, d := range []string{"1", "2"} {
		list, sieve := byKey["holes"+d+"1(list-I/O)"], byKey["holes"+d+"1024"]
		if list.FSReads <= sieve.FSReads {
			t.Errorf("density %s: list I/O %d reads <= sieved %d", d, list.FSReads, sieve.FSReads)
		}
		if sieve.SieveWaste == 0 {
			t.Errorf("density %s: sieved cover reported no waste", d)
		}
		if list.SieveWaste != 0 {
			t.Errorf("density %s: list I/O reported waste %d", d, list.SieveWaste)
		}
	}
	// The two-phase exchange must collapse the per-rank covering reads of
	// the fine-granule interleave and be absent independently.
	indep, coll := byKey["interleave1"], byKey["interleave1c"]
	if coll.FSReads >= indep.FSReads {
		t.Errorf("interleave: collective %d reads >= independent %d", coll.FSReads, indep.FSReads)
	}
	if indep.Exchanges != 0 {
		t.Errorf("independent read reported %d exchanges", indep.Exchanges)
	}
	if coll.Exchanges == 0 {
		t.Errorf("collective read reported no exchanges")
	}
	if coll.VirtualTimeNs >= indep.VirtualTimeNs {
		t.Errorf("interleave granule 64: collective %dns not faster than independent %dns",
			coll.VirtualTimeNs, indep.VirtualTimeNs)
	}
}

func TestSieveChaosDeterministic(t *testing.T) {
	opts := smallSieveOpts()
	var out [2]bytes.Buffer
	for i := range out {
		table, err := SieveChaos(opts, 7)
		if err != nil {
			t.Fatalf("SieveChaos: %v", err)
		}
		if err := table.Render(&out[i]); err != nil {
			t.Fatalf("render: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("chaos tables differ between same-seed runs:\n%s\n---\n%s", out[0].String(), out[1].String())
	}
}

func TestSieveValidate(t *testing.T) {
	opts := smallSieveOpts()
	opts.HoleGranule = 48 // does not divide SegSize
	if _, _, _, err := Sieve(opts); err == nil {
		t.Errorf("misaligned hole granule accepted")
	}
	opts = smallSieveOpts()
	opts.Granules = []int64{96}
	if _, _, _, err := Sieve(opts); err == nil {
		t.Errorf("misaligned interleave granule accepted")
	}
}
