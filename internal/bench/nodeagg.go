package bench

// This file implements the node-aggregation sweep: a granule-interleaved
// write workload in which every level-2 segment is written by exactly the
// ranks of one node, run with and without tcio.Config.NodeAggregation while
// the node width (CoresPerNode) and the segment size vary. The workload is
// built so the arithmetic is exact: with granule g = segSize/cores and the
// writer of byte b being rank (b/g) mod P, the cores co-located ranks of one
// node write each segment, so aggregation must replace their cores separate
// inter-node puts with one combined put — an inter-node message reduction of
// exactly (cores-1)/cores. Bytes are verified against the generator at every
// setting; aggregation may only change the message stream, never the file.

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
	"github.com/tcio/tcio/internal/tcio"
)

// NodeAggOptions configures the node-aggregation sweep.
type NodeAggOptions struct {
	// Procs is the process count of each run. It must be a multiple of
	// every entry of Cores so node blocks tile the rank space exactly.
	Procs int
	// Cores lists the CoresPerNode settings to sweep (1 = every rank on
	// its own node, the degenerate case aggregation must not change).
	Cores []int
	// SegSizes lists the real segment sizes to sweep; each must be a
	// multiple of every Cores entry.
	SegSizes []int64
	// SegsPerRank is the number of level-2 segments per process.
	SegsPerRank int
	// Scale is the environment byte scale (simulated bytes per real byte).
	Scale int64
	// Verify cross-checks the final file bytes against the generator.
	Verify bool
	// Progress receives one line per completed run.
	Progress func(string)
}

// DefaultNodeAgg sweeps node widths 1/2/4/8 and two segment sizes over 16
// processes. The simulated segments (16 KiB and 64 KiB) sit in the
// message-overhead-dominated regime where collapsing per-rank puts pays:
// one merged put saves (cores-1) x (setup + latency) per segment against an
// intra-node staging cost of segSize/MemBandwidth, and the former dominates
// below roughly (cores-1) x 50 KiB.
func DefaultNodeAgg() NodeAggOptions {
	return NodeAggOptions{
		Procs:       16,
		Cores:       []int{1, 2, 4, 8},
		SegSizes:    []int64{1 << 10, 4 << 10},
		SegsPerRank: 6,
		Scale:       16,
		Verify:      true,
	}
}

// NodeAggPoint is one (cores, segment size, aggregation) setting's result.
type NodeAggPoint struct {
	CoresPerNode  int     `json:"cores_per_node"`
	SegSize       int64   `json:"seg_size"` // simulated bytes
	Aggregation   bool    `json:"node_aggregation"`
	VirtualTimeNs int64   `json:"virtual_time_ns"`
	MBs           float64 `json:"mbs"`
	Messages      int64   `json:"messages"`
	LocalMsgs     int64   `json:"local_messages"`
	InterNodeMsgs int64   `json:"inter_node_messages"`
	NodeCombines  int64   `json:"node_combines"`
	PutsSaved     int64   `json:"inter_node_puts_saved"`
	FSWrites      int64   `json:"fs_writes"`
	Result        string  `json:"result"`
}

// NodeAggReport is the machine-readable result of one sweep
// (tciobench -nodeagg -json).
type NodeAggReport struct {
	Procs       int            `json:"procs"`
	SegsPerRank int            `json:"segs_per_rank"`
	Scale       int64          `json:"scale"`
	Points      []NodeAggPoint `json:"points"`
}

// nodeAggByte is the workload's deterministic content generator.
func nodeAggByte(off int64) byte {
	x := uint64(off)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	x ^= x >> 29
	return byte(x * 0xBF58476D1CE4E5B9 >> 56)
}

// nodeAggWrite runs the granule-interleaved write at one setting in the
// given environment. Rank r writes every granule k with k mod P == r, so
// segment s (granules s*cores .. s*cores+cores-1) is written by the full
// node block (s mod (P/cores)) — the aligned pattern aggregation collapses
// exactly.
func nodeAggWrite(opts NodeAggOptions, env *Env, cores int, segSize int64, aggOn bool) (PhaseResult, tcio.Stats) {
	fileBytes := segSize * int64(opts.SegsPerRank) * int64(opts.Procs)
	granule := segSize / int64(cores)
	pr := PhaseResult{Method: MethodTCIO, Procs: opts.Procs, SimBytes: fileBytes * opts.Scale}
	env.Machine.CoresPerNode = cores
	cfg := tcio.Config{
		SegmentSize:     segSize,
		NumSegments:     opts.SegsPerRank,
		NodeAggregation: aggOn,
	}
	var mu sync.Mutex
	var agg tcio.Stats
	rep, err := mpi.Run(mpi.Config{
		Procs:   opts.Procs,
		Machine: env.Machine,
		FS:      env.FS,
		Faults:  env.Faults,
	}, func(c *mpi.Comm) error {
		handle, err := tcio.Open(c, "nodeagg.dat", tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		buf := make([]byte, granule)
		for k := int64(c.Rank()); k*granule < fileBytes; k += int64(c.Size()) {
			off := k * granule
			for i := range buf {
				buf[i] = nodeAggByte(off + int64(i))
			}
			if err := handle.WriteAt(off, buf); err != nil {
				return err
			}
		}
		cerr := handle.Close()
		st := handle.Stats()
		mu.Lock()
		agg.NodeCombines += st.NodeCombines
		agg.InterNodePutsSaved += st.InterNodePutsSaved
		agg.Retries += st.Retries
		agg.FSWrites += st.FSWrites
		mu.Unlock()
		return cerr
	})
	if err != nil {
		pr.Failed = true
		pr.FailReason = failReason(err)
		return pr, agg
	}
	pr.Time = rep.MaxTime.Sub(0)
	pr.MBs = stats.ThroughputMBs(pr.SimBytes, pr.Time)
	pr.Net = rep.Net
	pr.FS = rep.FS
	pr.AllocRetries = rep.AllocRetries
	if opts.Verify {
		got := env.FS.Open("nodeagg.dat").Snapshot()
		want := make([]byte, fileBytes)
		for off := range want {
			want[off] = nodeAggByte(int64(off))
		}
		if int64(len(got)) < fileBytes || !bytes.Equal(got[:fileBytes], want) {
			pr.Failed = true
			pr.FailReason = "ground-truth mismatch"
		}
	}
	return pr, agg
}

// validateNodeAgg checks the sweep's tiling preconditions.
func validateNodeAgg(opts NodeAggOptions) error {
	for _, cores := range opts.Cores {
		if cores < 1 || opts.Procs%cores != 0 {
			return fmt.Errorf("bench: %d procs not a multiple of %d cores/node", opts.Procs, cores)
		}
		for _, segSize := range opts.SegSizes {
			if segSize%int64(cores) != 0 {
				return fmt.Errorf("bench: segment size %d not a multiple of %d cores/node", segSize, cores)
			}
		}
	}
	if opts.SegsPerRank < 1 {
		return fmt.Errorf("bench: %d segments per rank", opts.SegsPerRank)
	}
	return nil
}

// NodeAgg runs the full sweep: every (cores, segment size) cell with
// aggregation off and on, tabulating inter-node message counts and the
// end-to-end virtual time side by side.
func NodeAgg(opts NodeAggOptions) (stats.Table, *NodeAggReport, error) {
	if err := validateNodeAgg(opts); err != nil {
		return stats.Table{}, nil, err
	}
	t := stats.Table{
		Title: fmt.Sprintf("Node aggregation: granule-interleaved write, %d processes, %d segments/rank",
			opts.Procs, opts.SegsPerRank),
		Headers: []string{"cores/node", "seg-size", "nodeagg", "time", "MB/s",
			"inter-node-msgs", "local-msgs", "combines", "puts-saved", "result"},
	}
	report := &NodeAggReport{Procs: opts.Procs, SegsPerRank: opts.SegsPerRank, Scale: opts.Scale}
	for _, cores := range opts.Cores {
		for _, segSize := range opts.SegSizes {
			for _, aggOn := range []bool{false, true} {
				env, err := NewEnv(opts.Scale)
				if err != nil {
					return t, report, err
				}
				pr, st := nodeAggWrite(opts, env, cores, segSize, aggOn)
				result := "ok"
				if pr.Failed {
					result = pr.FailReason
				}
				inter := pr.Net.Messages - pr.Net.LocalMessages
				t.AddRow(
					fmt.Sprintf("%d", cores),
					fmt.Sprintf("%d", segSize*opts.Scale),
					fmt.Sprintf("%v", aggOn),
					pr.Time.String(),
					fmt.Sprintf("%.1f", pr.MBs),
					fmt.Sprintf("%d", inter),
					fmt.Sprintf("%d", pr.Net.LocalMessages),
					fmt.Sprintf("%d", st.NodeCombines),
					fmt.Sprintf("%d", st.InterNodePutsSaved),
					result,
				)
				report.Points = append(report.Points, NodeAggPoint{
					CoresPerNode:  cores,
					SegSize:       segSize * opts.Scale,
					Aggregation:   aggOn,
					VirtualTimeNs: int64(pr.Time),
					MBs:           pr.MBs,
					Messages:      pr.Net.Messages,
					LocalMsgs:     pr.Net.LocalMessages,
					InterNodeMsgs: inter,
					NodeCombines:  st.NodeCombines,
					PutsSaved:     st.InterNodePutsSaved,
					FSWrites:      pr.FS.Writes,
					Result:        result,
				})
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("nodeagg cores=%d seg=%d agg=%v: %v inter-node=%d (%s)",
						cores, segSize*opts.Scale, aggOn, pr.Time, inter, result))
				}
			}
		}
	}
	return t, report, nil
}

// NodeAggChaos runs a reduced sweep under deterministic fault injection and
// tabulates only seed-deterministic counts, so two runs with the same seed
// emit byte-identical tables — the CI reproducibility check for the
// aggregated put path. Virtual times are deliberately absent (they depend on
// scheduler interleaving); the message stream's identity, the combine
// bookkeeping, and every fault roll do not: deposits never roll, and a
// leader's combined puts roll SiteWinPut keyed by its own deterministic
// shipment order.
func NodeAggChaos(opts NodeAggOptions, seed int64) (stats.Table, error) {
	if err := validateNodeAgg(opts); err != nil {
		return stats.Table{}, err
	}
	t := stats.Table{
		Title: fmt.Sprintf("Node aggregation chaos: %d processes, seed %d (counts are seed-deterministic)",
			opts.Procs, seed),
		Headers: []string{"cores/node", "nodeagg", "injected", "retries", "fs-writes",
			"msgs", "local-msgs", "combines", "puts-saved", "result"},
	}
	chaosBase := DefaultChaos()
	chaosBase.Seed = seed
	segSize := opts.SegSizes[0]
	for _, cores := range []int{1, opts.Cores[len(opts.Cores)-1]} {
		for _, aggOn := range []bool{false, true} {
			inj := chaosBase.ChaosInjector(0.01)
			env, err := NewChaosEnv(opts.Scale, inj)
			if err != nil {
				return t, err
			}
			pr, st := nodeAggWrite(opts, env, cores, segSize, aggOn)
			result := "ok"
			if pr.Failed {
				result = pr.FailReason
			}
			t.AddRow(
				fmt.Sprintf("%d", cores),
				fmt.Sprintf("%v", aggOn),
				fmt.Sprintf("%d", inj.TotalInjected()),
				fmt.Sprintf("%d", st.Retries),
				fmt.Sprintf("%d", pr.FS.Writes),
				fmt.Sprintf("%d", pr.Net.Messages),
				fmt.Sprintf("%d", pr.Net.LocalMessages),
				fmt.Sprintf("%d", st.NodeCombines),
				fmt.Sprintf("%d", st.InterNodePutsSaved),
				result,
			)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("nodeagg chaos cores=%d agg=%v: %s", cores, aggOn, result))
			}
		}
	}
	return t, nil
}
