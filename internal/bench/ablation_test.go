package bench

import (
	"strings"
	"testing"
)

func TestAblationsRunAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	opts := AblationOptions{Procs: 8, LenSim: 64 << 10, LenReal: 512}
	table, err := Ablations(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(ablationVariants()) {
		t.Fatalf("%d rows, want %d", len(table.Rows), len(ablationVariants()))
	}
	for _, row := range table.Rows {
		if strings.Contains(strings.Join(row, " "), "FAIL") {
			t.Fatalf("ablation variant failed: %v", row)
		}
	}
	// Row 0 is the baseline; all variants must be present by name.
	if table.Rows[0][0] != "baseline" {
		t.Fatalf("first row = %v", table.Rows[0])
	}
}

func TestAggregatorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	opts := AblationOptions{Procs: 8, LenSim: 64 << 10, LenReal: 512}
	table, err := AggregatorSweep(opts, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	if !strings.Contains(table.Rows[0][0], "all ranks") {
		t.Fatalf("row 0 not labelled as the paper setting: %v", table.Rows[0])
	}
	for _, row := range table.Rows {
		if strings.Contains(strings.Join(row, " "), "FAIL") {
			t.Fatalf("aggregator variant failed: %v", row)
		}
	}
}

func TestDefaultConfigs(t *testing.T) {
	s := DefaultSweep()
	if s.LenSim != 4<<20 || s.SizeAccess != 1 || len(s.Types) != 2 {
		t.Fatalf("DefaultSweep = %+v", s)
	}
	fsw := DefaultFileSizeSweep()
	if fsw.Procs != 64 || len(fsw.LenSims) != 4 {
		t.Fatalf("DefaultFileSizeSweep = %+v", fsw)
	}
	a := DefaultART()
	if a.Trees != 1024 || a.Seed != 5 {
		t.Fatalf("DefaultART = %+v", a)
	}
	ab := DefaultAblation()
	if ab.Procs != 64 {
		t.Fatalf("DefaultAblation = %+v", ab)
	}
}

func TestPhaseCellFormatting(t *testing.T) {
	ok := PhaseResult{MBs: 123.45}
	if got := phaseCell(ok); got != "123.5" {
		t.Fatalf("phaseCell = %q", got)
	}
	bad := PhaseResult{Failed: true, FailReason: "out of memory"}
	if got := phaseCell(bad); got != "FAIL (out of memory)" {
		t.Fatalf("phaseCell = %q", got)
	}
}

func TestMethodString(t *testing.T) {
	if MethodOCIO.String() != "OCIO" || MethodTCIO.String() != "TCIO" || MethodVanilla.String() != "MPI-IO" {
		t.Fatal("method strings wrong")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("unknown method string wrong")
	}
}

func TestCountRegionSkipsExtensions(t *testing.T) {
	src := `
// BEGIN X
a
// BEGIN EXTENSION (excluded)
b
c
// END EXTENSION
d
// END X
e
`
	if got := countRegion(src, "X"); got != 2 {
		t.Fatalf("countRegion = %d, want 2 (a and d)", got)
	}
}

func TestOCIOAggregatorsProduceSameFile(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	var snaps [][]byte
	for _, aggs := range []int{0, 2} {
		env, err := NewEnv(64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallSweepCfg(MethodOCIO, 8, "aggfile")
		cfg.OCIOAggregators = aggs
		res, err := RunSynthetic(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Write.Failed || res.Read.Failed {
			t.Fatalf("aggs=%d failed: %+v", aggs, res)
		}
		snaps = append(snaps, env.FS.Open("aggfile").Snapshot())
	}
	if string(snaps[0]) != string(snaps[1]) {
		t.Fatal("aggregator sub-selection changed file contents")
	}
}
