package bench

import (
	"strings"
	"testing"

	"github.com/tcio/tcio/internal/datatype"
)

func smallSweepCfg(m Method, procs int, name string) SyntheticConfig {
	return SyntheticConfig{
		Method:     m,
		Procs:      procs,
		TypeArray:  []datatype.Type{datatype.Int, datatype.Double},
		LenArray:   256,
		SizeAccess: 1,
		Verify:     true,
		FileName:   name,
	}
}

func TestParseTypes(t *testing.T) {
	types, err := ParseTypes("i,d")
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != datatype.Int || types[1] != datatype.Double {
		t.Fatalf("ParseTypes = %v", types)
	}
	if _, err := ParseTypes("i,x"); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestSyntheticConfigDerived(t *testing.T) {
	cfg := smallSweepCfg(MethodTCIO, 4, "x")
	if cfg.blockSize() != 12 {
		t.Fatalf("blockSize = %d", cfg.blockSize())
	}
	if cfg.iters() != 256 {
		t.Fatalf("iters = %d", cfg.iters())
	}
	if cfg.FileBytes() != 12*256*4 {
		t.Fatalf("FileBytes = %d", cfg.FileBytes())
	}
}

func TestSyntheticValidate(t *testing.T) {
	bad := smallSweepCfg(MethodTCIO, 0, "x")
	if err := bad.validate(); err == nil {
		t.Fatal("0 procs accepted")
	}
	bad = smallSweepCfg(MethodTCIO, 2, "x")
	bad.SizeAccess = 3 // does not divide LenArray=256
	if err := bad.validate(); err == nil {
		t.Fatal("non-dividing SizeAccess accepted")
	}
	bad = smallSweepCfg(MethodTCIO, 2, "")
	if err := bad.validate(); err == nil {
		t.Fatal("empty file name accepted")
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := NewEnv(3); err == nil {
		t.Fatal("non-divisor scale accepted")
	}
	env, err := NewEnv(256)
	if err != nil {
		t.Fatal(err)
	}
	if env.FS.Config().StripeSize != (1<<20)/256 {
		t.Fatalf("stripe = %d", env.FS.Config().StripeSize)
	}
}

// All three methods must produce identical file bytes and verified reads.
func TestAllMethodsRoundTripAndAgree(t *testing.T) {
	var snapshots [][]byte
	for _, m := range []Method{MethodTCIO, MethodOCIO, MethodVanilla} {
		env, err := NewEnv(64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallSweepCfg(m, 4, "agree")
		res, err := RunSynthetic(env, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Write.Failed {
			t.Fatalf("%v write failed: %s", m, res.Write.FailReason)
		}
		if res.Read.Failed {
			t.Fatalf("%v read failed: %s", m, res.Read.FailReason)
		}
		if res.Write.MBs <= 0 || res.Read.MBs <= 0 {
			t.Fatalf("%v: non-positive throughput %v/%v", m, res.Write.MBs, res.Read.MBs)
		}
		snapshots = append(snapshots, env.FS.Open("agree").Snapshot())
	}
	for i := 1; i < len(snapshots); i++ {
		if string(snapshots[i]) != string(snapshots[0]) {
			t.Fatalf("method %d produced different file contents", i)
		}
	}
}

func TestVerificationCatchesCorruption(t *testing.T) {
	env, err := NewEnv(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSweepCfg(MethodVanilla, 2, "corrupt")
	// Write correctly...
	res := runPhase(env, cfg, true)
	if res.Failed {
		t.Fatalf("write failed: %s", res.FailReason)
	}
	// ...then corrupt a byte behind the library's back.
	env.FS.Open("corrupt").WriteAt(0, 5, []byte{0xFF}, 0)
	read := runPhase(env, cfg, false)
	if !read.Failed {
		t.Fatal("corrupted file passed verification")
	}
}

func TestSizeAccessLargerThanOne(t *testing.T) {
	env, err := NewEnv(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSweepCfg(MethodTCIO, 2, "sa4")
	cfg.SizeAccess = 4
	res, err := RunSynthetic(env, cfg)
	if err != nil || res.Write.Failed || res.Read.Failed {
		t.Fatalf("SizeAccess=4 run: %v %+v", err, res)
	}
}

func TestProgramLinesComparison(t *testing.T) {
	loc2, loc3 := ProgramLines()
	if loc2 == 0 || loc3 == 0 {
		t.Fatalf("LoC = %d/%d; markers missing?", loc2, loc3)
	}
	// The paper's Table III: OCIO requires substantially more code.
	if loc3 >= loc2 {
		t.Fatalf("TCIO program (%d lines) not shorter than OCIO (%d lines)", loc3, loc2)
	}
	r2, r3 := ProgramReadLines()
	if r3 >= r2 {
		t.Fatalf("TCIO read program (%d) not shorter than OCIO (%d)", r3, r2)
	}
}

func TestTables(t *testing.T) {
	for _, tb := range []struct {
		name string
		rows int
	}{
		{"t1", len(Table1().Rows)},
		{"t3", len(Table3().Rows)},
		{"t4", len(Table4().Rows)},
	} {
		if tb.rows == 0 {
			t.Fatalf("%s: empty table", tb.name)
		}
	}
	t2 := Table2(DefaultSweep())
	found := false
	for _, row := range t2.Rows {
		if row[0] == "SIZEaccess" && row[1] == "1" {
			found = true
		}
	}
	if !found {
		t.Fatal("Table2 missing SIZEaccess=1")
	}
}

func TestFig5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := SweepOptions{
		Procs:      []int{4, 8},
		LenSim:     64 << 10,
		LenReal:    256,
		SizeAccess: 1,
		Types:      []datatype.Type{datatype.Int, datatype.Double},
		Verify:     true,
	}
	write, read, results, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(write.Rows) != 2 || len(read.Rows) != 2 {
		t.Fatalf("rows: %d/%d", len(write.Rows), len(read.Rows))
	}
	if len(results) != 4 {
		t.Fatalf("results: %d", len(results))
	}
	for _, r := range results {
		if r.Write.Failed || r.Read.Failed {
			t.Fatalf("point failed: %+v", r)
		}
	}
}

func TestFig6OOMReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	// Miniature of the paper's Fig. 6 48 GB point: per-rank simulated data
	// that OCIO's double buffering cannot fit but TCIO can.
	opts := FileSizeSweepOptions{
		Procs:      12, // one full node: 2 GiB per rank
		LenSims:    []int{64 << 20},
		LenReal:    1 << 10,
		SizeAccess: 1,
		Types:      []datatype.Type{datatype.Int, datatype.Double},
		Verify:     true,
	}
	write, _, results, err := Fig6And7(opts)
	if err != nil {
		t.Fatal(err)
	}
	var tcioOK, ocioFailed bool
	for _, r := range results {
		switch r.Write.Method {
		case MethodTCIO:
			tcioOK = !r.Write.Failed
		case MethodOCIO:
			ocioFailed = r.Write.Failed && r.Write.FailReason == "out of memory"
		}
	}
	if !tcioOK {
		t.Fatalf("TCIO failed the large-dataset point: %v", write.Rows)
	}
	if !ocioFailed {
		t.Fatalf("OCIO did not fail with OOM at the large-dataset point: %v", write.Rows)
	}
	// The rendered table must show the failure, as the paper's text does.
	joined := strings.Join(write.Rows[0], " ")
	if !strings.Contains(joined, "FAIL") {
		t.Fatalf("table does not show the failure: %q", joined)
	}
}

func TestARTSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := ARTOptions{
		Procs:      []int{4},
		Trees:      16,
		Vars:       2,
		MuCells:    128,
		SigmaCells: 16,
		Seed:       5,
		Scale:      32,
	}
	write, read, results, err := Fig9And10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(write.Rows) != 1 || len(read.Rows) != 1 {
		t.Fatal("missing rows")
	}
	var tcioW, vanW float64
	for _, r := range results {
		if r.Failed {
			t.Fatalf("%v failed: %s", r.Library, r.FailReason)
		}
		if r.Library.String() == "TCIO" {
			tcioW = r.WriteMBs
		} else {
			vanW = r.WriteMBs
		}
	}
	if tcioW <= vanW {
		t.Fatalf("TCIO (%.1f MB/s) not faster than vanilla MPI-IO (%.1f MB/s) on ART", tcioW, vanW)
	}
}
