package bench

import (
	"bytes"
	"testing"
)

// smallDelegateOpts shrinks the sweep to test scale: 4 clients, 2 KiB
// files, 64 B requests.
func smallDelegateOpts() DelegateOptions {
	return DelegateOptions{
		Clients:       4,
		SegSize:       256,
		SegsPerClient: 2,
		Servers:       []int{0, 1, 2},
		Files:         []int{1, 2},
		ReqSizes:      []int64{64, 256},
		Scale:         4,
		Verify:        true,
	}
}

func TestDelegateSweepSmall(t *testing.T) {
	opts := smallDelegateOpts()
	_, report, err := Delegate(opts)
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}
	type key struct {
		servers, files int
		req            int64
	}
	byKey := map[key]DelegatePoint{}
	for _, p := range report.Points {
		if p.Result != "ok" {
			t.Errorf("point %+v: result %q", p, p.Result)
		}
		byKey[key{p.Servers, p.Files, p.ReqSize}] = p
	}
	fileBytes := delegateFileBytes(opts)
	for _, files := range opts.Files {
		for _, req := range opts.ReqSizes {
			reqs := fileBytes / req * int64(files)
			base := byKey[key{0, files, req * opts.Scale}]
			if base.WriteReqs != reqs {
				t.Errorf("pass-through files=%d req=%d: %d write calls, want %d",
					files, req, base.WriteReqs, reqs)
			}
			if base.Staged != 0 || base.BatchedRuns != 0 {
				t.Errorf("pass-through files=%d req=%d reported server counters %d/%d",
					files, req, base.Staged, base.BatchedRuns)
			}
			for _, servers := range opts.Servers[1:] {
				p := byKey[key{servers, files, req * opts.Scale}]
				// Requests never straddle a domain block here, so one
				// protocol request per write call, all staged.
				if p.WriteReqs != reqs || p.Staged != reqs {
					t.Errorf("srv=%d files=%d req=%d: %d reqs / %d staged, want %d",
						servers, files, req, p.WriteReqs, p.Staged, reqs)
				}
				// The whole point: the coalesced epoch drain reaches the
				// file system in far fewer, longer requests than tcio's
				// per-owner segment drains.
				if p.FSWrites >= base.FSWrites {
					t.Errorf("srv=%d files=%d req=%d: %d fs-writes, pass-through %d",
						servers, files, req, p.FSWrites, base.FSWrites)
				}
				if p.BatchedRuns != p.FSWrites {
					t.Errorf("srv=%d files=%d req=%d: %d batched runs vs %d fs-writes",
						servers, files, req, p.BatchedRuns, p.FSWrites)
				}
			}
		}
	}
}

func TestDelegateChaosDeterministic(t *testing.T) {
	opts := smallDelegateOpts()
	var out [2]bytes.Buffer
	for i := range out {
		table, err := DelegateChaos(opts, 7)
		if err != nil {
			t.Fatalf("DelegateChaos: %v", err)
		}
		if err := table.Render(&out[i]); err != nil {
			t.Fatalf("render: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("chaos tables differ between same-seed runs:\n%s\n---\n%s", out[0].String(), out[1].String())
	}
}

func TestDelegateValidate(t *testing.T) {
	opts := smallDelegateOpts()
	opts.ReqSizes = []int64{96} // 2048/ (96*4) does not divide
	if _, _, err := Delegate(opts); err == nil {
		t.Errorf("misaligned request size accepted")
	}
	opts = smallDelegateOpts()
	opts.Servers = []int{-1}
	if _, _, err := Delegate(opts); err == nil {
		t.Errorf("negative server count accepted")
	}
}
