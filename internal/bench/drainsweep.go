package bench

// This file implements the drain-parallelism sweep: the TCIO workload run
// on a multi-OST file while Config.DrainWorkers varies. The paper's
// environment stripes each file over one OST (Table II), which serializes
// the drain no matter how it is issued; with a wider stripe the per-OST
// worker fan-out of the storage layer overlaps a rank's drain and preload
// requests across object servers, and this sweep measures the effect.

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/stats"
)

// DrainSweepOptions configures the drain-parallelism sweep.
type DrainSweepOptions struct {
	// Procs is the process count of each run.
	Procs int
	// Workers lists the DrainWorkers settings to sweep.
	Workers []int
	// StripeCount is the file's stripe width in OSTs (the knob that gives
	// the fan-out independent targets; 1 reproduces the paper's layout).
	// Pick a width that does not divide Procs: segments are dealt
	// round-robin over ranks with the segment size equal to the stripe
	// size, so when Procs is a multiple of StripeCount every segment of a
	// rank lands on one OST and the fan-out has nothing to overlap.
	StripeCount int
	// LenSim and LenReal size the workload like SweepOptions.
	LenSim  int
	LenReal int
	// Verify makes readers check every byte against the generator.
	Verify bool
	// Progress receives one line per completed run.
	Progress func(string)
}

// DefaultDrainSweep sweeps 1/2/4/8 workers over a 7-way striped file with
// 16 processes (16 and 7 are coprime, so each rank's segments cycle
// through all seven OSTs).
func DefaultDrainSweep() DrainSweepOptions {
	return DrainSweepOptions{
		Procs:       16,
		Workers:     []int{1, 2, 4, 8},
		StripeCount: 7,
		LenSim:      4 << 20,
		LenReal:     4 << 10,
		Verify:      true,
	}
}

// DrainSweep runs the TCIO write+read workload at each worker count and
// tabulates the phase times. Byte contents are identical at every setting
// (Verify pins this); only the virtual timing changes.
func DrainSweep(opts DrainSweepOptions) (stats.Table, error) {
	if len(opts.Workers) == 0 {
		opts.Workers = DefaultDrainSweep().Workers
	}
	if opts.StripeCount < 1 {
		opts.StripeCount = 1
	}
	t := stats.Table{
		Title: fmt.Sprintf("Drain parallelism: %d processes, stripe over %d OSTs (TCIO)",
			opts.Procs, opts.StripeCount),
		Headers: []string{"drain-workers", "write-time", "write-MB/s", "read-time",
			"read-MB/s", "fs-writes", "result"},
	}
	types := []datatype.Type{datatype.Int, datatype.Double}
	for _, workers := range opts.Workers {
		scale := int64(opts.LenSim / opts.LenReal)
		env, err := NewEnv(scale)
		if err != nil {
			return t, err
		}
		fscfg := env.FS.Config()
		fscfg.StripeCount = opts.StripeCount
		env.FS = pfs.New(fscfg)
		cfg := SyntheticConfig{
			Method:       MethodTCIO,
			Procs:        opts.Procs,
			TypeArray:    types,
			LenArray:     opts.LenReal,
			SizeAccess:   1,
			Verify:       opts.Verify,
			FileName:     fmt.Sprintf("drainsweep-%d", workers),
			DrainWorkers: workers,
		}
		res, err := RunSynthetic(env, cfg)
		if err != nil {
			return t, err
		}
		result := "ok"
		if res.Write.Failed {
			result = res.Write.FailReason
		} else if res.Read.Failed {
			result = res.Read.FailReason
		}
		t.AddRow(
			fmt.Sprintf("%d", workers),
			res.Write.Time.String(),
			fmt.Sprintf("%.1f", res.Write.MBs),
			res.Read.Time.String(),
			fmt.Sprintf("%.1f", res.Read.MBs),
			fmt.Sprintf("%d", res.Write.FS.Writes),
			result,
		)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("drainsweep workers=%d: write %v read %v (%s)",
				workers, res.Write.Time, res.Read.Time, result))
		}
	}
	return t, nil
}
