//go:build conformance_mutants

package mutate

import "sync/atomic"

// Built reports whether this binary carries the mutant hooks live.
const Built = true

// active holds the armed mutant id ("" = none). Atomic so the simulated
// ranks (goroutines) may consult it while the gate test arms mutants
// between runs.
var active atomic.Value

// Set arms the named mutant (and disarms any other).
func Set(id string) { active.Store(id) }

// Clear disarms all mutants.
func Clear() { active.Store("") }

// Enabled reports whether the named mutant is armed.
func Enabled(id string) bool {
	v, _ := active.Load().(string)
	return v != "" && v == id
}
