// Package mutate is the registry behind the conformance harness's mutation
// smoke gate: a small set of deliberate, named bugs compiled into the I/O
// libraries only under the `conformance_mutants` build tag, so the harness
// can prove its oracles have teeth (every mutant must be detected within a
// bounded budget — see internal/conformance and DESIGN.md §5e).
//
// In normal builds Enabled is a constant-false function, so every hook of
// the form `if mutate.Enabled(mutate.X) { ... }` is dead code the compiler
// removes; the production binaries are unchanged. Under the tag, exactly
// one mutant is armed at a time via Set, and the gate test walks All.
package mutate

// Mutant identifiers. Each names one deliberate bug wired into a library
// at the site the comment describes.
const (
	// ExtentDroppedCoalesce makes extent.Coalesce keep only the first
	// run's length when merging adjacent or overlapping runs, losing the
	// extension — level-1 flushes ship short payloads.
	ExtentDroppedCoalesce = "extent.dropped-coalesce"
	// ExtentLayoutOwnerSkew offsets equation (1)'s owner rank by one in
	// Layout.Owner only, making it inconsistent with Locate/RankSegment.
	ExtentLayoutOwnerSkew = "extent.layout-owner-skew"
	// TCIOStalePrefetchServe makes populateFromCache mark a segment
	// populated without copying the staged bytes into the window.
	TCIOStalePrefetchServe = "tcio.stale-prefetch-serve"
	// TCIOLostPendingRun makes l2meta.addDirty overwrite a segment's
	// pending runs instead of appending, losing earlier undrained data.
	TCIOLostPendingRun = "tcio.lost-pending-run"
	// TCIOEagerWritesUncounted drops the EagerWrites accounting of the
	// write-behind lane, breaking EagerWrites + FlushResidue == FSWrites.
	TCIOEagerWritesUncounted = "tcio.eager-writes-uncounted"
	// MPIIOFlattenDropRun makes mpiio's view flattening drop the first
	// run of every multi-run request.
	MPIIOFlattenDropRun = "mpiio.flatten-drop-run"
	// StorageDropLastRequest makes the storage layer's serial path drop
	// the last request of every multi-request batch.
	StorageDropLastRequest = "storage.drop-last-request"
	// TCIONodeAggDropDeposit makes the node-aggregation merge drop the
	// last co-located origin's deposited runs when combining a segment's
	// traffic into one put — that rank's bytes never reach the owner.
	TCIONodeAggDropDeposit = "tcio.nodeagg-drop-deposit"
	// StorageSieveScatterOffby makes the data-sieving scatter copy a run
	// out of its covering read one byte late whenever the cover has room —
	// the classic off-by-one a hand-rolled sieve buffer invites.
	StorageSieveScatterOffby = "storage.sieve-scatter-offby"
	// TCIOTwoPhaseDropIntent makes the two-phase collective read drop the
	// highest-ranked origin's read intents from the exchange, so
	// aggregators never stage the runs only that rank asked for.
	TCIOTwoPhaseDropIntent = "tcio.twophase-drop-intent"
	// DelegateDropQueuedFlush makes a delegation server forget the last
	// queued write record when a flush closes the epoch — the bytes a
	// client believes acknowledged never reach the file system.
	DelegateDropQueuedFlush = "delegate.drop-queued-flush"
	// WALSkipCommitMarker makes the WAL writer skip the commit-marker
	// append that seals an epoch: records land but no epoch ever commits,
	// so recovery after a crash silently discards every journaled byte.
	WALSkipCommitMarker = "wal.skip-commit-marker"
	// TCIOSpillDropDirty makes the memory-pressure spill policy evict a
	// dirty level-2 segment without journaling its unlogged runs first —
	// the exact bug SegmentMemoryBudget's "spill, never drop" rule exists
	// to prevent.
	TCIOSpillDropDirty = "tcio.spill-drop-dirty"
	// DelegateCacheStaleServe makes a delegation server's hot-block cache
	// fill skip the file system read, caching (and serving) zeroed blocks
	// — the stale-serve bug the cache's coherence rules exist to prevent.
	DelegateCacheStaleServe = "delegate.cache-stale-serve"
)

// All lists every mutant the gate must catch.
func All() []string {
	return []string{
		ExtentDroppedCoalesce,
		ExtentLayoutOwnerSkew,
		TCIOStalePrefetchServe,
		TCIOLostPendingRun,
		TCIOEagerWritesUncounted,
		MPIIOFlattenDropRun,
		StorageDropLastRequest,
		TCIONodeAggDropDeposit,
		StorageSieveScatterOffby,
		TCIOTwoPhaseDropIntent,
		DelegateDropQueuedFlush,
		WALSkipCommitMarker,
		TCIOSpillDropDirty,
		DelegateCacheStaleServe,
	}
}
