//go:build !conformance_mutants

package mutate

// Built reports whether this binary carries the mutant hooks live.
const Built = false

// Enabled reports whether the named mutant is armed. In normal builds it
// is constant false, so hook sites compile to nothing.
func Enabled(string) bool { return false }
