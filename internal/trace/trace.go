// Package trace records I/O-library events on a virtual-time timeline.
//
// A Recorder is attached to a TCIO session (tcio.Config.Trace) to capture
// what the library did on behalf of the application — writes staged,
// level-1 flushes shipped, segments populated, gets fetched, buffers
// drained — with per-rank virtual timestamps. Timelines are the raw
// material for the kind of I/O analysis the paper performs by hand.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/tcio/tcio/internal/simtime"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the I/O layers.
const (
	KindWrite    Kind = "write"    // application write call staged
	KindRead     Kind = "read"     // application read call queued
	KindFlush    Kind = "flush"    // level-1 -> level-2 shipment
	KindFetch    Kind = "fetch"    // batched gets completed
	KindPopulate Kind = "populate" // segment loaded from the file system
	KindDrain    Kind = "drain"    // level-2 -> file system write
	KindRetry    Kind = "retry"    // transient fault absorbed by backoff
	KindPrefetch Kind = "prefetch" // segment read ahead on the background lane
	KindCombine  Kind = "combine"  // node leader merged co-located ranks' runs into one put
	KindSieve    Kind = "sieve"    // covering read of a data-sieving group
)

// Event is one recorded operation.
type Event struct {
	Rank   int
	Start  simtime.Time
	Dur    simtime.Duration
	Kind   Kind
	Bytes  int64
	Detail string
}

// Recorder collects events from many ranks. It is safe for concurrent use.
// A bounded capacity (0 = unbounded) drops the newest events once full, so
// tracing a huge run cannot exhaust memory.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int64
}

// New creates a recorder holding at most capacity events (0 = unbounded).
func New(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// Record appends one event.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped reports how many events the capacity bound discarded.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the retained events sorted by (Start, Rank).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// KindStats aggregates one event kind.
type KindStats struct {
	Count int64
	Bytes int64
	Dur   simtime.Duration
}

// Summary aggregates events by kind.
func (r *Recorder) Summary() map[Kind]KindStats {
	out := make(map[Kind]KindStats)
	for _, ev := range r.Events() {
		s := out[ev.Kind]
		s.Count++
		s.Bytes += ev.Bytes
		s.Dur += ev.Dur
		out[ev.Kind] = s
	}
	return out
}

// Timeline writes a human-readable event log sorted by virtual time.
func (r *Recorder) Timeline(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12v rank %-4d %-9s %8dB  %s\n",
			ev.Start, ev.Rank, ev.Kind, ev.Bytes, ev.Detail); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped by capacity bound)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards all events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.dropped = 0
	r.mu.Unlock()
}
