// Package trace records I/O-library events on a virtual-time timeline.
//
// A Recorder is attached to a TCIO session (tcio.Config.Trace) to capture
// what the library did on behalf of the application — writes staged,
// level-1 flushes shipped, segments populated, gets fetched, buffers
// drained — with per-rank virtual timestamps. Timelines are the raw
// material for the kind of I/O analysis the paper performs by hand.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tcio/tcio/internal/simtime"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the I/O layers.
const (
	KindWrite    Kind = "write"    // application write call staged
	KindRead     Kind = "read"     // application read call queued
	KindFlush    Kind = "flush"    // level-1 -> level-2 shipment
	KindFetch    Kind = "fetch"    // batched gets completed
	KindPopulate Kind = "populate" // segment loaded from the file system
	KindDrain    Kind = "drain"    // level-2 -> file system write
	KindRetry    Kind = "retry"    // transient fault absorbed by backoff
	KindPrefetch Kind = "prefetch" // segment read ahead on the background lane
	KindCombine  Kind = "combine"  // node leader merged co-located ranks' runs into one put
	KindSieve    Kind = "sieve"    // covering read of a data-sieving group
	KindJournal  Kind = "journal"  // epoch record batch appended to the WAL tier
	// KindCacheServe marks a delegation-server read served from the
	// hot-block cache instead of the file system.
	KindCacheServe Kind = "cache-serve"
)

// Event is one recorded operation.
type Event struct {
	Rank   int
	Start  simtime.Time
	Dur    simtime.Duration
	Kind   Kind
	Bytes  int64
	Detail string
}

// traceShards is the number of append buffers a Recorder spreads ranks
// over — a power of two so the shard of a rank is a mask.
const traceShards = 64

// seqEvent is an event plus its position in the recording rank's own event
// stream, the tiebreaker that makes the collection-time merge deterministic.
type seqEvent struct {
	Event
	seq uint64
}

// traceShard buffers the events of the ranks hashing to it.
type traceShard struct {
	mu   sync.Mutex
	next map[int]uint64 // rank -> next per-rank sequence number
	evs  []seqEvent
}

// Recorder collects events from many ranks. It is safe for concurrent use.
// A bounded capacity (0 = unbounded) drops the newest events once full, so
// tracing a huge run cannot exhaust memory.
//
// Events land in per-shard append buffers (ranks spread over shards), so
// thousands of recording rank goroutines no longer serialize on one
// recorder mutex. Collection merges the shards sorted by (Start, Rank,
// per-rank sequence); each rank's events carry their position in that
// rank's own stream, so the merged order is a pure function of what the
// ranks recorded — equal (Start, Rank) ties resolve to program order
// rather than host arrival order.
type Recorder struct {
	cap     int64
	total   atomic.Int64
	dropped atomic.Int64
	shards  [traceShards]traceShard
}

// New creates a recorder holding at most capacity events (0 = unbounded).
func New(capacity int) *Recorder {
	return &Recorder{cap: int64(capacity)}
}

// shard returns the buffer recording the given rank's events.
func (r *Recorder) shard(rank int) *traceShard {
	return &r.shards[uint(rank)%traceShards]
}

// Record appends one event.
func (r *Recorder) Record(ev Event) {
	if r.cap > 0 && r.total.Add(1) > r.cap {
		r.total.Add(-1)
		r.dropped.Add(1)
		return
	}
	if r.cap <= 0 {
		r.total.Add(1)
	}
	s := r.shard(ev.Rank)
	s.mu.Lock()
	if s.next == nil {
		s.next = make(map[int]uint64)
	}
	seq := s.next[ev.Rank]
	s.next[ev.Rank] = seq + 1
	s.evs = append(s.evs, seqEvent{Event: ev, seq: seq})
	s.mu.Unlock()
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	return int(r.total.Load())
}

// Dropped reports how many events the capacity bound discarded.
func (r *Recorder) Dropped() int64 {
	return r.dropped.Load()
}

// Events returns a copy of the retained events merged across the shard
// buffers in (Start, Rank, per-rank record order).
func (r *Recorder) Events() []Event {
	merged := make([]seqEvent, 0, r.Len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		merged = append(merged, s.evs...)
		s.mu.Unlock()
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Start != merged[j].Start {
			return merged[i].Start < merged[j].Start
		}
		if merged[i].Rank != merged[j].Rank {
			return merged[i].Rank < merged[j].Rank
		}
		return merged[i].seq < merged[j].seq
	})
	out := make([]Event, len(merged))
	for i, e := range merged {
		out[i] = e.Event
	}
	return out
}

// KindStats aggregates one event kind.
type KindStats struct {
	Count int64
	Bytes int64
	Dur   simtime.Duration
}

// Summary aggregates events by kind.
func (r *Recorder) Summary() map[Kind]KindStats {
	out := make(map[Kind]KindStats)
	for _, ev := range r.Events() {
		s := out[ev.Kind]
		s.Count++
		s.Bytes += ev.Bytes
		s.Dur += ev.Dur
		out[ev.Kind] = s
	}
	return out
}

// Timeline writes a human-readable event log sorted by virtual time.
func (r *Recorder) Timeline(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12v rank %-4d %-9s %8dB  %s\n",
			ev.Start, ev.Rank, ev.Kind, ev.Bytes, ev.Detail); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped by capacity bound)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards all events.
func (r *Recorder) Reset() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.evs = nil
		s.next = nil
		s.mu.Unlock()
	}
	r.total.Store(0)
	r.dropped.Store(0)
}
