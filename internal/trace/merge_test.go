package trace

// The collection-time merge must be a pure function of what each rank
// recorded: any host interleaving of the same per-rank event streams
// yields byte-identical Events() output — including equal (Start, Rank)
// ties, which resolve to per-rank record order.

import (
	"reflect"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

// rankStream builds rank r's deterministic event stream, with deliberate
// Start-time ties within the rank and across ranks.
func rankStream(r, n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Rank:   r,
			Start:  simtime.Time(1000 + (i/4)*10), // runs of 4 events share a Start
			Kind:   KindWrite,
			Bytes:  int64(i),
			Detail: "tie",
		}
	}
	return evs
}

// recordConcurrently plays every rank's stream from its own goroutine,
// racing the deposits so the host interleaving differs run to run.
func recordConcurrently(ranks, perRank int) *Recorder {
	rec := New(0)
	var start, done sync.WaitGroup
	start.Add(1)
	for r := 0; r < ranks; r++ {
		done.Add(1)
		go func(r int) {
			defer done.Done()
			start.Wait()
			for _, ev := range rankStream(r, perRank) {
				rec.Record(ev)
			}
		}(r)
	}
	start.Done()
	done.Wait()
	return rec
}

func TestMergeDeterministicUnderInterleaving(t *testing.T) {
	const ranks, perRank = 97, 64 // more ranks than shards: collisions exercised
	want := recordConcurrently(ranks, perRank).Events()
	if len(want) != ranks*perRank {
		t.Fatalf("retained %d of %d events", len(want), ranks*perRank)
	}
	for round := 0; round < 5; round++ {
		got := recordConcurrently(ranks, perRank).Events()
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d: first divergence at %d: got %+v want %+v",
						round, i, got[i], want[i])
				}
			}
			t.Fatalf("round %d: lengths differ: %d vs %d", round, len(got), len(want))
		}
	}
}

// TestMergeTiesFollowRecordOrder pins the tiebreaker directly: one rank's
// events sharing a Start must come back in the order they were recorded.
func TestMergeTiesFollowRecordOrder(t *testing.T) {
	rec := New(0)
	for i := 0; i < 8; i++ {
		rec.Record(Event{Rank: 3, Start: simtime.Time(500), Bytes: int64(i)})
	}
	evs := rec.Events()
	for i, ev := range evs {
		if ev.Bytes != int64(i) {
			t.Fatalf("tie order broken: position %d holds Bytes=%d", i, ev.Bytes)
		}
	}
}

// TestCapacityBound pins the bounded recorder's deterministic counts: at
// most cap events retained, the rest counted as dropped.
func TestCapacityBound(t *testing.T) {
	const cap = 100
	rec := New(cap)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec.Record(Event{Rank: r, Start: simtime.Time(i)})
			}
		}(r)
	}
	wg.Wait()
	if rec.Len() != cap {
		t.Fatalf("retained %d events, want %d", rec.Len(), cap)
	}
	if got := rec.Dropped(); got != 8*50-cap {
		t.Fatalf("dropped %d events, want %d", got, 8*50-cap)
	}
	if got := len(rec.Events()); got != cap {
		t.Fatalf("Events() returned %d, want %d", got, cap)
	}
}
