package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/tcio/tcio/internal/simtime"
)

func TestRecordAndEventsSorted(t *testing.T) {
	r := New(0)
	r.Record(Event{Rank: 1, Start: 100, Kind: KindFlush, Bytes: 10})
	r.Record(Event{Rank: 0, Start: 50, Kind: KindWrite, Bytes: 4})
	r.Record(Event{Rank: 0, Start: 100, Kind: KindWrite, Bytes: 4})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Start != 50 {
		t.Fatalf("not sorted by time: %+v", evs[0])
	}
	if evs[1].Rank != 0 || evs[2].Rank != 1 {
		t.Fatalf("ties not broken by rank: %+v %+v", evs[1], evs[2])
	}
}

func TestCapacityBoundDrops(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Rank: i})
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d", r.Dropped())
	}
}

func TestSummary(t *testing.T) {
	r := New(0)
	r.Record(Event{Kind: KindWrite, Bytes: 10, Dur: 5})
	r.Record(Event{Kind: KindWrite, Bytes: 20, Dur: 7})
	r.Record(Event{Kind: KindDrain, Bytes: 30, Dur: 1})
	s := r.Summary()
	if w := s[KindWrite]; w.Count != 2 || w.Bytes != 30 || w.Dur != 12 {
		t.Fatalf("write stats = %+v", w)
	}
	if d := s[KindDrain]; d.Count != 1 || d.Bytes != 30 {
		t.Fatalf("drain stats = %+v", d)
	}
}

func TestTimelineOutput(t *testing.T) {
	r := New(1)
	r.Record(Event{Rank: 3, Start: simtime.Time(simtime.Millisecond), Kind: KindPopulate, Bytes: 512, Detail: "seg 7"})
	r.Record(Event{Rank: 0}) // dropped
	var buf bytes.Buffer
	if err := r.Timeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rank 3", "populate", "512B", "seg 7", "1 events dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	r := New(1)
	r.Record(Event{})
	r.Record(Event{}) // dropped
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Rank: g, Start: simtime.Time(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 1600 {
		t.Fatalf("Len = %d", r.Len())
	}
}
