package trace

// Recorder append-path micro-benchmark: every event in the system funnels
// through Record, so its contention profile bounds host scalability.

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkTraceRecord appends one event per op from parallel goroutines
// standing in for rank goroutines.
func BenchmarkTraceRecord(b *testing.B) {
	for _, ranks := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			r := New(0)
			b.ReportAllocs()
			b.SetBytes(1)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				rank := int(next.Add(1)) % ranks
				ev := Event{Rank: rank, Kind: KindWrite, Bytes: 1}
				for pb.Next() {
					ev.Start++
					r.Record(ev)
				}
			})
		})
	}
}
