package conformance

// The crash-consistency checker (knob class 7). One clean tcio run executes
// under a pfs.Oplog, which records every durable mutation with its
// virtual-time service interval; "crash at T" is then a pure post-hoc
// reconstruction (pfs.Oplog.ReplayAt). The checker draws several kill
// instants spanning the run, reconstructs the crashed disk at each, runs
// tcio.Recover over it, and diffs the recovered data file byte-for-byte
// against the committed-prefix model:
//
//	a byte written in round r and owned (equation (1)) by rank o appears
//	iff o's journal holds a commit marker for epoch r+1 that was durable
//	by T — otherwise the byte holds the latest earlier committed round's
//	value (or zero).
//
// The model is sound because the journal tier orders every epoch commit
// before any data-file drain of the session (journalEpoch + barrier precede
// drain; Validate rejects write-behind and delegation with kills), and a
// durable journal truncate implies the rank's final drain had settled.
//
// Independently of the kills, the checker audits the full journal images
// with its own record decoder — reimplemented here from the format
// specification, so a mutant inside package wal cannot blind the oracle
// that is supposed to catch it. The audit requires every epoch batch to be
// sealed by exactly one commit marker (the invariant the skip-commit-marker
// mutant breaks even when no kill lands inside the torn window).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"

	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/tcio"
)

// crashRun is the outcome of the logged clean run plus its kill replays.
type crashRun struct {
	err     string // clean-run failure ("" = ok)
	maxTime simtime.Time
	wStats  []tcio.Stats
	log     *pfs.Oplog
	walFull [][]byte // per-rank journal image rebuilt from the log (pre-truncate)
	kills   []simtime.Time
	okKills int // kills whose recovery matched the model byte-exactly
}

// runCrash executes the program's write phase once more on its own file
// system with the operation log attached, then rebuilds the full journal
// images and draws the kill instants. The run duplicates runTCIO's write
// phase exactly (same knobs, same fault stream) so its virtual-time log is
// the one the main run would have produced.
func runCrash(p *Program) *crashRun {
	out := &crashRun{log: &pfs.Oplog{}}
	inj := p.newInjector()
	fs := p.newFS(inj)
	fs.SetOplog(out.log)
	cfg := p.tcioConfig(nil)

	out.wStats = make([]tcio.Stats, p.Procs)
	var mu sync.Mutex
	rep, err := mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, confFile, tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		var opErr error
		for _, round := range p.WriteRounds {
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				if opErr = f.WriteAt(op.Off, p.Payload(op)); opErr != nil {
					break
				}
			}
			if opErr != nil {
				break
			}
			if opErr = f.Flush(); opErr != nil {
				break
			}
		}
		var closeErr error
		if opErr == nil {
			closeErr = f.Close()
		}
		mu.Lock()
		out.wStats[c.Rank()] = f.Stats()
		mu.Unlock()
		if opErr != nil {
			return opErr
		}
		return closeErr
	})
	if err != nil {
		out.err = err.Error()
		return out
	}
	out.maxTime = rep.MaxTime

	// Rebuild each rank's full journal image from the log's store records —
	// the clean run truncated the files, but the log keeps what was written.
	out.walFull = make([][]byte, p.Procs)
	for _, r := range out.log.Records() {
		if r.Kind != pfs.OpStore {
			continue
		}
		for rank := 0; rank < p.Procs; rank++ {
			if r.Name != tcio.WALFileName(confFile, rank) {
				continue
			}
			img := out.walFull[rank]
			if need := r.Off + int64(len(r.Data)); int64(len(img)) < need {
				img = append(img, make([]byte, need-int64(len(img)))...)
			}
			copy(img[r.Off:], r.Data)
			out.walFull[rank] = img
			break
		}
	}

	// Kill instants: seed-deterministic draws over roughly the later 70% of
	// the run (the early tail is all setup; epochs and drains live late),
	// extending slightly past the end so the post-completion no-op recovery
	// stays in rotation. Integer arithmetic only — the draw must reproduce
	// bit-identically across runs (CI diffs the summary lines).
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D))
	m := int64(out.maxTime)
	lo := 3 * m / 10
	span := m - lo + m/20 + 1
	for k := 0; k < p.Knobs.CrashKills; k++ {
		out.kills = append(out.kills, simtime.Time(lo+rng.Int63n(span)))
	}
	return out
}

// walEpochMark is one epoch parsed by the checker's own journal decoder:
// its sequence number and whether (and where) its commit marker sealed it.
type walEpochMark struct {
	seq    int64
	sealed bool
}

// decodeWALIndex walks a journal image with the checker's independent
// implementation of the record framing ([4B len][4B CRC-32][payload],
// payload[0] = type 1 header / 2 run / 3 commit). A torn tail stops the
// walk cleanly; a structurally complete but invalid record is an error.
// Returns the epochs seen (sealed or not), and the bytes consumed by
// fully-parsed records.
func decodeWALIndex(img []byte) (marks []walEpochMark, consumed int64, err error) {
	open := -1 // index into marks of the unsealed epoch, -1 when none
	pos := 0
	for pos < len(img) {
		if len(img)-pos < 8 {
			break // torn length prefix
		}
		n := int(binary.LittleEndian.Uint32(img[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(img[pos+4 : pos+8])
		if len(img)-pos-8 < n {
			break // torn record body
		}
		payload := img[pos+8 : pos+8+n]
		if n == 0 || crc32.ChecksumIEEE(payload) != sum {
			return marks, int64(pos), fmt.Errorf("checksum mismatch at byte %d", pos)
		}
		switch payload[0] {
		case 1: // epoch header
			if n != 13 {
				return marks, int64(pos), fmt.Errorf("header of %d bytes at %d", n, pos)
			}
			if open >= 0 {
				return marks, int64(pos), fmt.Errorf("header inside unsealed epoch %d at byte %d",
					marks[open].seq, pos)
			}
			marks = append(marks, walEpochMark{seq: int64(binary.LittleEndian.Uint64(payload[5:13]))})
			open = len(marks) - 1
		case 2: // dirty run
			if n < 17 {
				return marks, int64(pos), fmt.Errorf("run record of %d bytes at %d", n, pos)
			}
			if open < 0 {
				return marks, int64(pos), fmt.Errorf("run outside any epoch at byte %d", pos)
			}
			if seq := int64(binary.LittleEndian.Uint64(payload[1:9])); seq != marks[open].seq {
				return marks, int64(pos), fmt.Errorf("run for epoch %d inside epoch %d at byte %d",
					seq, marks[open].seq, pos)
			}
		case 3: // commit marker
			if n != 9 {
				return marks, int64(pos), fmt.Errorf("commit marker of %d bytes at %d", n, pos)
			}
			if open < 0 {
				return marks, int64(pos), fmt.Errorf("commit outside any epoch at byte %d", pos)
			}
			if seq := int64(binary.LittleEndian.Uint64(payload[1:9])); seq != marks[open].seq {
				return marks, int64(pos), fmt.Errorf("commit for epoch %d sealing epoch %d at byte %d",
					seq, marks[open].seq, pos)
			}
			marks[open].sealed = true
			open = -1
		default:
			return marks, int64(pos), fmt.Errorf("unknown record type %d at byte %d", payload[0], pos)
		}
		pos += 8 + n
	}
	return marks, int64(pos), nil
}

// checkCrash applies the crash oracles: the structural journal audit on the
// full images, then one replay-recover-diff cycle per kill instant.
func (o *Outcome) checkCrash(p *Program, cr *crashRun) {
	if cr.err != "" {
		o.diverge("tcio", "crash-run", "logged run failed: %s", cr.err)
		return
	}

	// Structural audit of the complete journals: every record well-formed,
	// every epoch sealed by exactly one commit marker, no trailing garbage,
	// and the totals agree with the library's own counters.
	var auditEpochs, auditCommits int64
	for rank, img := range cr.walFull {
		marks, consumed, err := decodeWALIndex(img)
		if err != nil {
			o.diverge("tcio", "journal-audit", "rank %d journal: %v", rank, err)
			return
		}
		if consumed != int64(len(img)) {
			o.diverge("tcio", "journal-audit", "rank %d journal: %d trailing bytes after last record",
				rank, int64(len(img))-consumed)
			return
		}
		for _, mk := range marks {
			auditEpochs++
			if mk.sealed {
				auditCommits++
			} else {
				o.diverge("tcio", "journal-audit", "rank %d epoch %d never sealed by a commit marker",
					rank, mk.seq)
				return
			}
		}
	}
	var statEpochs, statCommits int64
	for _, s := range cr.wStats {
		statEpochs += s.JournalEpochs
		statCommits += s.JournalCommits
	}
	if auditEpochs != statEpochs || auditCommits != statCommits {
		o.diverge("tcio", "journal-audit", "journals hold %d epochs/%d commits, counters say %d/%d",
			auditEpochs, auditCommits, statEpochs, statCommits)
	}

	for _, t := range cr.kills {
		if ok := o.checkOneKill(p, cr, t); ok {
			cr.okKills++
		} else {
			return // the first failed kill carries the diagnosis
		}
	}
}

// checkOneKill reconstructs the crash at instant t, recovers, and diffs the
// data file against the committed-prefix model.
func (o *Outcome) checkOneKill(p *Program, cr *crashRun, t simtime.Time) bool {
	crashed := p.newFS(nil)
	cr.log.ReplayAt(crashed, t)

	// Committed epochs per rank, read off the crashed journals with the
	// independent decoder. A durable truncate means the rank's Close fully
	// settled — every round of its bytes is durable on the data file.
	committed := make([]map[int64]bool, p.Procs)
	for rank := 0; rank < p.Procs; rank++ {
		committed[rank] = make(map[int64]bool)
		wn := tcio.WALFileName(confFile, rank)
		if !crashed.Exists(wn) {
			continue
		}
		marks, _, err := decodeWALIndex(crashed.Open(wn).Snapshot())
		if err != nil {
			o.diverge("tcio", "crash-replay", "kill at %v: rank %d crashed journal: %v", t, rank, err)
			return false
		}
		for _, mk := range marks {
			if mk.sealed {
				committed[rank][mk.seq] = true
			}
		}
	}
	for _, r := range cr.log.Records() {
		if r.Kind != pfs.OpTruncate || r.End > t {
			continue
		}
		for rank := 0; rank < p.Procs; rank++ {
			if r.Name == tcio.WALFileName(confFile, rank) {
				for seq := int64(1); seq <= int64(len(p.WriteRounds))+1; seq++ {
					committed[rank][seq] = true
				}
			}
		}
	}

	// The committed-prefix model: apply write rounds in order, keeping a
	// byte iff its owner committed that round's epoch (flush r seals epoch
	// r+1). Ownership is equation (1), reimplemented dense per byte.
	expected := make([]byte, p.FileBytes)
	for ri, round := range p.WriteRounds {
		seq := int64(ri + 1)
		for _, op := range round.Ops {
			for i := int64(0); i < op.Len; i++ {
				b := op.Off + i
				owner := int((b / p.SegmentSize) % int64(p.Procs))
				if committed[owner][seq] {
					expected[b] = payloadByte(p.Seed, op.ID, i)
				}
			}
		}
	}

	rep, err := tcio.Recover(crashed, confFile, p.tcioConfig(nil))
	if err != nil {
		o.diverge("tcio", "crash-recover", "kill at %v: %v", t, err)
		return false
	}
	got := crashed.Open(confFile).Snapshot()
	n := int64(len(expected))
	if int64(len(got)) > n {
		n = int64(len(got))
	}
	for i := int64(0); i < n; i++ {
		var g, w byte
		if i < int64(len(got)) {
			g = got[i]
		}
		if i < int64(len(expected)) {
			w = expected[i]
		}
		if g != w {
			o.diverge("tcio", "crash-replay",
				"kill at %v: recovered byte %d = %#x, committed-prefix model %#x (replayed %dB from %d journal ranks)",
				t, i, g, w, rep.BytesApplied, len(rep.Ranks))
			return false
		}
	}
	return true
}
