package conformance

// RunSweep is the engine behind `tciobench -conform`: generate and check
// a window of seeded programs, print one deterministic summary line per
// program (CI runs the sweep twice and diffs the output), and on
// divergence shrink to a minimal repro — saving it to the corpus
// directory when one is configured.

import (
	"fmt"
	"io"
)

// shrinkBudget bounds predicate evaluations per divergence; each
// evaluation is three engine runs, so this caps the worst-case cost of a
// failing sweep.
const shrinkBudget = 150

// RunSweep checks programs for seeds [baseSeed, baseSeed+progs) and
// reports the number of divergent programs. corpusDir, when non-empty,
// receives the shrunk repro of every divergence.
func RunSweep(w io.Writer, baseSeed int64, progs int, corpusDir string) (int, error) {
	failures := 0
	for i := 0; i < progs; i++ {
		seed := baseSeed + int64(i)
		out := Check(Generate(seed))
		fmt.Fprintln(w, out.Summary)
		if !out.Failed() {
			continue
		}
		failures++
		for _, d := range out.Divergences {
			fmt.Fprintf(w, "  divergence: %s\n", d)
		}
		small, stats := Shrink(out.Program, func(cand *Program) bool {
			return Check(cand).Failed()
		}, shrinkBudget)
		wops, rops := small.Ops()
		fmt.Fprintf(w, "  shrunk to %d write ops / %d read ops / %d ranks (%d evals)\n",
			wops, rops, small.Procs, stats.Evals)
		if corpusDir != "" {
			path, err := Save(corpusDir, small)
			if err != nil {
				return failures, fmt.Errorf("saving repro: %w", err)
			}
			fmt.Fprintf(w, "  repro saved: %s\n", path)
		}
	}
	fmt.Fprintf(w, "conform: %d programs, %d divergent\n", progs, failures)
	return failures, nil
}
