package conformance

import (
	"strings"
	"testing"
)

// TestCrashClassRecoversAcrossSeeds is the crash-conformance acceptance
// sweep: 24 class-7 seeds, each replayed at every generated kill instant
// and required to recover byte-exactly against the committed-prefix model.
// The sweep also requires the generator to keep the out-of-core rotation
// honest — a healthy fraction of the programs must arm a segment budget
// and actually spill.
func TestCrashClassRecoversAcrossSeeds(t *testing.T) {
	const n = 24
	budgeted, spilled := 0, 0
	for k := 0; k < n; k++ {
		seed := int64(7 + 8*k) // every 8th seed lands in class 7
		p := Generate(seed)
		if p.Knobs.CrashKills == 0 || !p.Knobs.Journal {
			t.Fatalf("seed %d: expected class-7 knobs, got %+v", seed, p.Knobs)
		}
		if p.Knobs.SegmentMemoryBudget > 0 {
			budgeted++
		}
		out := Check(p)
		for _, d := range out.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if !strings.Contains(out.Summary, " crash[") {
			t.Errorf("seed %d summary lacks the crash block: %s", seed, out.Summary)
		}
		if strings.Contains(out.Summary, "refault=0B") == false {
			spilled++
		}
	}
	if budgeted < n/4 {
		t.Errorf("only %d/%d class-7 programs armed a segment budget", budgeted, n)
	}
	if spilled == 0 {
		t.Errorf("no class-7 program spilled and re-faulted under its budget")
	}
}

// TestCrashSummaryDeterministic re-runs class-7 seeds and requires
// byte-identical summary lines — kill instants derive from the virtual-time
// log, so the ok-count is part of the diffable fingerprint CI compares.
func TestCrashSummaryDeterministic(t *testing.T) {
	for _, seed := range []int64{7, 15, 23} {
		a := Check(Generate(seed))
		b := Check(Generate(seed))
		if a.Summary != b.Summary {
			t.Errorf("seed %d summaries differ:\n  %s\n  %s", seed, a.Summary, b.Summary)
		}
	}
}

// TestDecodeWALIndexTornAndCorrupt pins the checker's own journal decoder
// against the format rules: torn tails stop cleanly, structural damage is
// an error — independent of package wal's decoder, which it cross-checks.
func TestDecodeWALIndexTornAndCorrupt(t *testing.T) {
	p := Generate(7)
	cr := runCrash(p)
	if cr.err != "" {
		t.Fatalf("crash run failed: %s", cr.err)
	}
	var img []byte
	for _, w := range cr.walFull {
		if len(w) > 0 {
			img = w
			break
		}
	}
	if img == nil {
		t.Fatal("no journal image produced")
	}
	marks, consumed, err := decodeWALIndex(img)
	if err != nil || consumed != int64(len(img)) || len(marks) == 0 {
		t.Fatalf("full image: marks=%d consumed=%d/%d err=%v", len(marks), consumed, len(img), err)
	}
	for _, mk := range marks {
		if !mk.sealed {
			t.Fatalf("epoch %d unsealed in a clean journal", mk.seq)
		}
	}
	// Torn anywhere: never an error, sealed epochs only shrink.
	for cut := 0; cut < len(img); cut++ {
		tm, tc, err := decodeWALIndex(img[:cut])
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if tc > int64(cut) {
			t.Fatalf("cut at %d: consumed %d past the cut", cut, tc)
		}
		if len(tm) > len(marks) {
			t.Fatalf("cut at %d: more epochs than the full image", cut)
		}
	}
	// Flip one payload byte of the first record: complete-but-wrong is an
	// error, not a tear.
	bad := append([]byte(nil), img...)
	bad[8] ^= 0xFF
	if _, _, err := decodeWALIndex(bad); err == nil {
		t.Fatal("corrupted first record decoded cleanly")
	}
}
