// Package conformance is the randomized differential testing harness for
// the repository's three I/O engines. The paper's claim is transparency:
// any sequence of POSIX-like per-piece accesses through TCIO must produce
// bytes identical to independent MPI-IO and to OCIO's two-phase collective
// path. This package generates seed-deterministic workload programs —
// random rank counts, geometries, interleaved/strided/rewriting read and
// write patterns, and random library knobs including write-behind, prefetch
// and chaos fault rules — executes each program through all three engines
// plus an in-memory ground-truth model, and diffs final file bytes,
// read-back bytes, stats-accounting identities, and trace invariants. On
// divergence the failing program is shrunk by delta debugging to a minimal
// repro and serialized to testdata/corpus/ as a replayable golden case.
// A mutation smoke gate (internal/mutate, `conformance_mutants` build tag)
// proves the oracles have teeth. See DESIGN.md §5e.
//
// The harness deliberately avoids the extent algebra and the engines' own
// helpers for its model and oracles: programs are small, so ground truth is
// a dense byte image and validation uses dense per-byte ownership maps.
// A mutant armed inside package extent therefore cannot corrupt the oracle
// that is supposed to catch it.
package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Op is one application I/O call: rank writes (or reads) Len bytes at file
// offset Off. For writes, ID keys the deterministic payload generator, so
// every write op carries globally distinguishable bytes and rewrites are
// detectable byte-for-byte. For reads, ID is unused.
type Op struct {
	Rank int   `json:"rank"`
	Off  int64 `json:"off"`
	Len  int64 `json:"len"`
	ID   int64 `json:"id,omitempty"`
}

// End returns the exclusive upper bound of the op's byte range.
func (o Op) End() int64 { return o.Off + o.Len }

// Round is one synchronization epoch of a program: the ops inside a round
// are issued in slice order (which preserves each rank's program order),
// and a collective boundary — tcio Flush, one OCIO WriteAll/ReadAll —
// separates consecutive rounds.
type Round struct {
	Ops []Op `json:"ops"`
}

// Knobs is the library configuration a program runs under, spanning all
// three engines plus the chaos rules.
type Knobs struct {
	// TCIO configuration (see tcio.Config).
	DrainWorkers         int     `json:"drain_workers,omitempty"`
	DisableLevel1        bool    `json:"disable_level1,omitempty"`
	DemandPopulate       bool    `json:"demand_populate,omitempty"`
	FetchBatch           int     `json:"fetch_batch,omitempty"`
	PipelineDepth        int     `json:"pipeline_depth,omitempty"`
	WriteBehindThreshold float64 `json:"write_behind_threshold,omitempty"`
	WriteBehindQueue     int     `json:"write_behind_queue,omitempty"`
	PrefetchSegments     int     `json:"prefetch_segments,omitempty"`
	MaxCachedSegments    int     `json:"max_cached_segments,omitempty"`
	SieveBuffer          int64   `json:"sieve_buffer,omitempty"`
	CollectiveRead       bool    `json:"collective_read,omitempty"`
	EmulateTwoSided      bool    `json:"emulate_two_sided,omitempty"`
	NodeAggregation      bool    `json:"node_aggregation,omitempty"`
	// CoresPerNode overrides the simulated machine's rank placement
	// (0 = the default testbed). Class 4 draws small values so several
	// ranks share a node and the intra-node aggregation path is exercised.
	CoresPerNode int `json:"cores_per_node,omitempty"`

	// Delegation tier (class 6). Files > 0 additionally routes the program
	// through internal/delegate with that many concurrently open files;
	// ServerRanks carves that many dedicated server ranks out of Procs
	// (0 = pass-through), and QueueDepth is the per-(client, server)
	// admission window.
	ServerRanks int `json:"server_ranks,omitempty"`
	Files       int `json:"files,omitempty"`
	QueueDepth  int `json:"queue_depth,omitempty"`
	// ServerCacheBlocks arms each delegation server's hot-block read
	// cache (0 = disarmed, the bit-identical pass-through); ReadQuantum
	// arms deficit-round-robin read scheduling on the servers (0 = inline
	// arrival order). CollectiveRead above additionally switches delegated
	// reads to server-merged intent epochs when ServerRanks > 0.
	ServerCacheBlocks int   `json:"server_cache_blocks,omitempty"`
	ReadQuantum       int64 `json:"read_quantum,omitempty"`

	// Crash class (class 7). Journal arms tcio's journaled-epoch tier;
	// SegmentMemoryBudget bounds the resident level-2 segments (the spill
	// tier — implies Journal inside tcio); CrashKills is the number of
	// simulated crash instants the checker replays and recovers per
	// program. CrashKills requires Journal, no delegation servers, and no
	// write-behind: the committed-prefix crash model assumes every epoch
	// commits before any data-file drain starts.
	Journal             bool  `json:"journal,omitempty"`
	SegmentMemoryBudget int64 `json:"segment_memory_budget,omitempty"`
	CrashKills          int   `json:"crash_kills,omitempty"`

	// OCIO / vanilla MPI-IO configuration.
	Aggregators int  `json:"aggregators,omitempty"` // 0 = every rank
	Sieving     bool `json:"sieving,omitempty"`     // vanilla read data sieving

	// Chaos rules: ChaosSeed == 0 disarms injection entirely. Probabilities
	// apply to the OST read/write RPC and one-sided put sites.
	ChaosSeed    int64   `json:"chaos_seed,omitempty"`
	OSTWriteProb float64 `json:"ost_write_prob,omitempty"`
	OSTReadProb  float64 `json:"ost_read_prob,omitempty"`
	WinPutProb   float64 `json:"win_put_prob,omitempty"`
}

// Program is one generated workload: the geometry of the file and the
// level-2 buffers, the library knobs, and the write and read rounds every
// engine executes. Programs are plain data — JSON round-trippable — so
// shrunk repros replay from testdata/corpus/.
type Program struct {
	Seed        int64 `json:"seed"`
	Procs       int   `json:"procs"`
	SegmentSize int64 `json:"segment_size"`
	NumSegments int   `json:"num_segments"`
	FileBytes   int64 `json:"file_bytes"`
	StripeSize  int64 `json:"stripe_size"`
	StripeCount int   `json:"stripe_count"`
	Knobs       Knobs `json:"knobs"`

	WriteRounds []Round `json:"write_rounds"`
	ReadRounds  []Round `json:"read_rounds"`
}

// Capacity is the level-2 address bound: P * NumSegments * SegmentSize.
func (p *Program) Capacity() int64 {
	return int64(p.Procs) * int64(p.NumSegments) * p.SegmentSize
}

// Clients is the number of application ranks: Procs minus the delegation
// servers withdrawn from the communicator. Every op rank must fall below
// it — server ranks never run application code.
func (p *Program) Clients() int { return p.Procs - p.Knobs.ServerRanks }

// splitmix64 is the payload byte mixer (same construction the fault
// injector uses for its rolls; reimplemented here so the oracle does not
// depend on code under test).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// payloadByte is the deterministic content generator: byte i of write op id
// under program seed. Distinct (seed, id, i) give effectively independent
// bytes, so a lost rewrite, a swapped run, or a one-byte shift all change
// the image.
func payloadByte(seed, id, i int64) byte {
	return byte(splitmix64(uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(id)<<20 ^ uint64(i)))
}

// Payload materializes a write op's bytes.
func (p *Program) Payload(op Op) []byte {
	buf := make([]byte, op.Len)
	for i := range buf {
		buf[i] = payloadByte(p.Seed, op.ID, int64(i))
	}
	return buf
}

// Truth computes the ground-truth file image by applying every write round
// in order to a dense byte array. Within a round, ops apply in slice order;
// because cross-rank write sets are disjoint (Validate enforces it), only
// each rank's own program order matters, and slice order preserves it.
func (p *Program) Truth() []byte {
	img := make([]byte, p.FileBytes)
	for _, round := range p.WriteRounds {
		for _, op := range round.Ops {
			for i := int64(0); i < op.Len; i++ {
				img[op.Off+i] = payloadByte(p.Seed, op.ID, i)
			}
		}
	}
	return img
}

// CoverIDs maps every file byte to the ID of the write op whose bytes land
// there in the ground truth (-1 for never-written bytes) — the placement
// view of Truth, used to cross-check the model against independently
// derived workload formulas.
func (p *Program) CoverIDs() []int64 {
	ids := make([]int64, p.FileBytes)
	for i := range ids {
		ids[i] = -1
	}
	for _, round := range p.WriteRounds {
		for _, op := range round.Ops {
			for i := int64(0); i < op.Len; i++ {
				ids[op.Off+i] = op.ID
			}
		}
	}
	return ids
}

// TruthSHA is the hex SHA-256 of the ground-truth image.
func (p *Program) TruthSHA() string {
	sum := sha256.Sum256(p.Truth())
	return hex.EncodeToString(sum[:])
}

// maxOSTs mirrors pfs.DefaultConfig's OST count, bounding StripeCount.
const maxOSTs = 30

// Validate checks that the program is well-formed and — critically — that
// no two ranks ever write the same byte. Cross-rank overlapping writes have
// no defined winner in any of the engines (there is no global order between
// ranks), so such a program would be nondeterministic by construction; the
// generator only emits disjoint write sets and every shrinking step must
// preserve the property. The check is a dense per-byte ownership map,
// independent of the (mutable-under-mutation) extent algebra.
func (p *Program) Validate() error {
	switch {
	case p.Procs < 1:
		return fmt.Errorf("conformance: %d procs", p.Procs)
	case p.SegmentSize < 1:
		return fmt.Errorf("conformance: segment size %d", p.SegmentSize)
	case p.NumSegments < 1:
		return fmt.Errorf("conformance: %d segments", p.NumSegments)
	case p.FileBytes < 0:
		return fmt.Errorf("conformance: file bytes %d", p.FileBytes)
	case p.FileBytes > p.Capacity():
		return fmt.Errorf("conformance: file bytes %d exceed capacity %d", p.FileBytes, p.Capacity())
	case p.StripeSize < 1:
		return fmt.Errorf("conformance: stripe size %d", p.StripeSize)
	case p.StripeCount < 1 || p.StripeCount > maxOSTs:
		return fmt.Errorf("conformance: stripe count %d", p.StripeCount)
	case p.Knobs.WriteBehindThreshold < 0 || p.Knobs.WriteBehindThreshold > 1:
		return fmt.Errorf("conformance: write-behind threshold %g", p.Knobs.WriteBehindThreshold)
	case p.Knobs.DrainWorkers < 0 || p.Knobs.FetchBatch < 0 || p.Knobs.PipelineDepth < 0 ||
		p.Knobs.WriteBehindQueue < 0 || p.Knobs.PrefetchSegments < 0 || p.Knobs.MaxCachedSegments < 0 ||
		p.Knobs.SieveBuffer < 0 || p.Knobs.CoresPerNode < 0:
		return fmt.Errorf("conformance: negative tcio knob: %+v", p.Knobs)
	case p.Knobs.Aggregators < 0 || p.Knobs.Aggregators > p.Procs:
		return fmt.Errorf("conformance: %d aggregators with %d procs", p.Knobs.Aggregators, p.Procs)
	case p.Knobs.ServerRanks < 0 || p.Knobs.ServerRanks >= p.Procs:
		return fmt.Errorf("conformance: %d server ranks with %d procs", p.Knobs.ServerRanks, p.Procs)
	case p.Knobs.Files < 0 || p.Knobs.QueueDepth < 0 ||
		p.Knobs.ServerCacheBlocks < 0 || p.Knobs.ReadQuantum < 0:
		return fmt.Errorf("conformance: negative delegation knob: %+v", p.Knobs)
	case p.Knobs.SegmentMemoryBudget < 0 || p.Knobs.CrashKills < 0:
		return fmt.Errorf("conformance: negative crash knob: %+v", p.Knobs)
	case p.Knobs.CrashKills > 0 && !p.Knobs.Journal:
		return fmt.Errorf("conformance: %d crash kills without journal", p.Knobs.CrashKills)
	case p.Knobs.CrashKills > 0 && (p.Knobs.ServerRanks > 0 || p.Knobs.WriteBehindThreshold > 0):
		// The committed-prefix crash model assumes no data-file store starts
		// before every journal epoch commits: delegation re-times stores and
		// write-behind drains eagerly, so both are out of scope for kills.
		return fmt.Errorf("conformance: crash kills with delegation or write-behind: %+v", p.Knobs)
	}
	owner := make([]int8, p.FileBytes) // 0 = unwritten, else rank+1
	for ri, round := range p.WriteRounds {
		for oi, op := range round.Ops {
			if err := p.checkOp("write", ri, oi, op); err != nil {
				return err
			}
			for i := op.Off; i < op.End(); i++ {
				if owner[i] != 0 && owner[i] != int8(op.Rank+1) {
					return fmt.Errorf("conformance: byte %d written by both rank %d and rank %d",
						i, owner[i]-1, op.Rank)
				}
				owner[i] = int8(op.Rank + 1)
			}
		}
	}
	for ri, round := range p.ReadRounds {
		for oi, op := range round.Ops {
			if err := p.checkOp("read", ri, oi, op); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) checkOp(kind string, ri, oi int, op Op) error {
	switch {
	case op.Rank < 0 || op.Rank >= p.Procs:
		return fmt.Errorf("conformance: %s round %d op %d: rank %d of %d", kind, ri, oi, op.Rank, p.Procs)
	case op.Rank >= p.Clients():
		return fmt.Errorf("conformance: %s round %d op %d: rank %d is a server rank (%d clients)",
			kind, ri, oi, op.Rank, p.Clients())
	case op.Off < 0 || op.Len < 0 || op.End() > p.FileBytes:
		return fmt.Errorf("conformance: %s round %d op %d: [%d,%d) outside file of %d",
			kind, ri, oi, op.Off, op.End(), p.FileBytes)
	}
	return nil
}

// Counts reports the number and total bytes of a rank's ops in the given
// rounds — the expectations behind the per-rank stats oracles.
func countOps(rounds []Round, rank int) (n, bytes int64) {
	for _, round := range rounds {
		for _, op := range round.Ops {
			if op.Rank == rank {
				n++
				bytes += op.Len
			}
		}
	}
	return n, bytes
}

// Ops reports the total write and read op counts of the program.
func (p *Program) Ops() (writes, reads int) {
	for _, r := range p.WriteRounds {
		writes += len(r.Ops)
	}
	for _, r := range p.ReadRounds {
		reads += len(r.Ops)
	}
	return writes, reads
}

// Marshal renders the program as indented JSON (the corpus format).
func (p *Program) Marshal() ([]byte, error) {
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Unmarshal parses a corpus JSON program.
func Unmarshal(blob []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("conformance: corpus JSON: %w", err)
	}
	return &p, nil
}

// Digest is a short stable fingerprint of the program's canonical JSON,
// used to label corpus files and summary lines.
func (p *Program) Digest() string {
	blob, err := json.Marshal(p)
	if err != nil {
		return "invalid"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:6])
}

// Clone deep-copies the program (shrinking mutates candidates in place).
func (p *Program) Clone() *Program {
	q := *p
	q.WriteRounds = cloneRounds(p.WriteRounds)
	q.ReadRounds = cloneRounds(p.ReadRounds)
	return &q
}

func cloneRounds(rounds []Round) []Round {
	out := make([]Round, len(rounds))
	for i, r := range rounds {
		out[i].Ops = append([]Op(nil), r.Ops...)
	}
	return out
}
