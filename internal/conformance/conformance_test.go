package conformance

import (
	"bytes"
	"reflect"
	"testing"
)

// TestGeneratedProgramsConform is the tier-1 sweep: three seeds per knob
// class, every engine diffed against the ground truth.
func TestGeneratedProgramsConform(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		out := Check(Generate(seed))
		t.Log(out.Summary)
		for _, d := range out.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}

// TestSummaryDeterministic re-runs the same seeds and requires
// byte-identical summary lines: the fingerprint must only contain
// scheduling-independent quantities.
func TestSummaryDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a := Check(Generate(seed))
		b := Check(Generate(seed))
		if a.Summary != b.Summary {
			t.Errorf("seed %d summaries differ:\n  %s\n  %s", seed, a.Summary, b.Summary)
		}
	}
}

// TestGenerateDeterministic pins that one seed always yields the
// identical program (the property the corpus and CI diffs rest on).
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different programs", seed)
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("seed %d digests differ", seed)
		}
	}
}

// TestProgramJSONRoundTrip serializes a generated program and requires
// the round trip to be lossless.
func TestProgramJSONRoundTrip(t *testing.T) {
	for _, seed := range []int64{2, 3, 5} { // one per non-baseline class
		p := Generate(seed)
		blob, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		q, err := Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("seed %d: round trip changed the program", seed)
		}
		if p.Digest() != q.Digest() {
			t.Fatalf("seed %d: digest changed across round trip", seed)
		}
	}
}

// TestValidateRejectsOverlap requires the validator to reject cross-rank
// write overlap — the one program shape whose file contents are
// engine-schedule-dependent and therefore unverifiable.
func TestValidateRejectsOverlap(t *testing.T) {
	p := &Program{
		Seed: 1, Procs: 2, SegmentSize: 16, NumSegments: 2,
		FileBytes: 64, StripeSize: 16, StripeCount: 1,
		WriteRounds: []Round{{Ops: []Op{
			{Rank: 0, Off: 0, Len: 10, ID: 1},
			{Rank: 1, Off: 8, Len: 10, ID: 2},
		}}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("cross-rank overlapping writes validated")
	}
	// Same bytes on one rank are fine (rewrites are program-ordered).
	p.WriteRounds[0].Ops[1].Rank = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("same-rank rewrite rejected: %v", err)
	}
}

// TestTruthSemantics pins the ground-truth model: later writes win,
// zero-length ops are inert, unwritten bytes read zero.
func TestTruthSemantics(t *testing.T) {
	p := &Program{
		Seed: 7, Procs: 1, SegmentSize: 16, NumSegments: 2,
		FileBytes: 32, StripeSize: 16, StripeCount: 1,
		WriteRounds: []Round{
			{Ops: []Op{{Rank: 0, Off: 4, Len: 8, ID: 1}}},
			{Ops: []Op{
				{Rank: 0, Off: 6, Len: 4, ID: 2},
				{Rank: 0, Off: 20, Len: 0, ID: 3},
			}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	truth := p.Truth()
	if len(truth) != 32 {
		t.Fatalf("truth is %d bytes, want 32", len(truth))
	}
	for i := int64(0); i < 32; i++ {
		var want byte
		switch {
		case i >= 6 && i < 10:
			want = payloadByte(p.Seed, 2, i-6)
		case i >= 4 && i < 12:
			want = payloadByte(p.Seed, 1, i-4)
		}
		if truth[i] != want {
			t.Fatalf("truth[%d] = %#x, want %#x", i, truth[i], want)
		}
	}
	if ids := p.CoverIDs(); ids[7] != 2 || ids[5] != 1 || ids[20] != -1 {
		t.Fatalf("CoverIDs wrong: %v", ids[:24])
	}
}

// TestShrinkMechanics drives the shrinker with a synthetic predicate —
// "the program still contains write op ID k" — and requires convergence
// to (almost) just that op, with every candidate validated.
func TestShrinkMechanics(t *testing.T) {
	p := Generate(2) // class 2: several rounds, many ops
	var target int64
	for _, r := range p.WriteRounds {
		for _, op := range r.Ops {
			if op.Len > 1 {
				target = op.ID
			}
		}
	}
	if target == 0 {
		t.Fatal("no target op found")
	}
	contains := func(c *Program) bool {
		for _, r := range c.WriteRounds {
			for _, op := range r.Ops {
				if op.ID == target {
					return true
				}
			}
		}
		return false
	}
	small, stats := Shrink(p, contains, 500)
	if !contains(small) {
		t.Fatal("shrunk program no longer fails the predicate")
	}
	if err := small.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	wops, rops := small.Ops()
	if wops > 1 || rops > 0 {
		t.Errorf("shrunk to %d write / %d read ops, want 1 / 0", wops, rops)
	}
	if small.Procs != 1 {
		t.Errorf("shrunk program keeps %d ranks, want 1", small.Procs)
	}
	if stats.Improvements == 0 {
		t.Error("shrinker accepted no reductions")
	}
	t.Logf("shrunk seed 2 to %d/%d ops, %d ranks in %d evals", wops, rops, small.Procs, stats.Evals)
}

// TestCorpusReplay replays every shrunk repro in testdata/corpus — each
// once diverged under a mutant of the smoke gate, and must stay green on
// the clean build.
func TestCorpusReplay(t *testing.T) {
	cases, err := LoadDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 3 {
		t.Fatalf("corpus holds %d cases, want at least 3", len(cases))
	}
	for name, p := range cases {
		name, p := name, p
		t.Run(name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("corpus case invalid: %v", err)
			}
			out := Check(p)
			t.Log(out.Summary)
			for _, d := range out.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestRunSweepDeterministic runs the CLI sweep twice and diffs the full
// output — the exact check CI performs via tciobench -conform.
func TestRunSweepDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := RunSweep(&a, 1, 8, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(&b, 1, 8, ""); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sweep output differs between runs:\n%s\n---\n%s", a.String(), b.String())
	}
}

// FuzzConformance lets `go test -fuzz` explore the seed space; any
// divergence found this way crashes with the seed, which Generate turns
// back into the full failing program.
func FuzzConformance(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		out := Check(Generate(seed))
		for _, d := range out.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}
