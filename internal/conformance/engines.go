package conformance

// Engine drivers: execute one Program through tcio, OCIO, and vanilla
// MPI-IO, each against its own fresh simulated file system (and, for
// chaos programs, its own injector replaying the same seed). Each driver
// returns an engineRun capturing everything the oracles in check.go need:
// the final file image, per-rank library counters, read-back mismatches,
// trace events, and fault-injection totals.

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"

	"github.com/tcio/tcio/internal/datatype"
)

// confFile is the shared file name every engine run uses.
const confFile = "conform.dat"

// engineRun is one engine's observable outcome on one program.
type engineRun struct {
	name string

	writeErr string // write-phase failure ("" = clean)
	readErr  string // read-phase failure, incl. read-back mismatches

	image    []byte // file bytes after the write phase (dense, Size long)
	fileSize int64
	fsWrites int64  // file system write-request count after the write phase
	retries  int64  // transient faults absorbed, both phases
	injected string // injector CountsString after both phases ("" = none)

	// tcio only.
	wStats []tcio.Stats
	rStats []tcio.Stats
	events []trace.Event
}

// newInjector builds the program's fault injector, or nil when the knob
// class left chaos disarmed. Each engine gets its own instance so the
// three engines see identical fault streams instead of racing for rolls.
func (p *Program) newInjector() *faults.Injector {
	k := p.Knobs
	if k.ChaosSeed == 0 {
		return nil
	}
	inj := faults.New(k.ChaosSeed)
	if k.OSTWriteProb > 0 {
		inj.Set(faults.SiteOSTWrite, faults.Rule{Prob: k.OSTWriteProb})
	}
	if k.OSTReadProb > 0 {
		inj.Set(faults.SiteOSTRead, faults.Rule{Prob: k.OSTReadProb})
	}
	if k.WinPutProb > 0 {
		inj.Set(faults.SiteWinPut, faults.Rule{Prob: k.WinPutProb})
	}
	return inj
}

// newFS builds the program's file system with its stripe geometry.
func (p *Program) newFS(inj *faults.Injector) *pfs.FileSystem {
	cfg := pfs.DefaultConfig()
	cfg.StripeSize = p.StripeSize
	cfg.StripeCount = p.StripeCount
	cfg.Faults = inj
	return pfs.New(cfg)
}

// aggregators clamps the Aggregators knob to the rank count (the knob is
// drawn before Procs is known to be large enough).
func (p *Program) aggregators() int {
	n := p.Knobs.Aggregators
	if n > p.Procs {
		n = p.Procs
	}
	return n
}

// machine builds the program's simulated machine: the default testbed,
// with the rank placement overridden when the CoresPerNode knob is set.
// Every engine runs on the same machine so the placement cannot itself
// cause a divergence.
func (p *Program) machine() cluster.Machine {
	m := cluster.Lonestar()
	if p.Knobs.CoresPerNode > 0 {
		m.CoresPerNode = p.Knobs.CoresPerNode
	}
	return m
}

// tcioConfig maps the program's knobs onto a tcio.Config.
func (p *Program) tcioConfig(rec *trace.Recorder) tcio.Config {
	k := p.Knobs
	return tcio.Config{
		SegmentSize:          p.SegmentSize,
		NumSegments:          p.NumSegments,
		DrainWorkers:         k.DrainWorkers,
		DisableLevel1:        k.DisableLevel1,
		DemandPopulate:       k.DemandPopulate,
		FetchBatch:           k.FetchBatch,
		PipelineDepth:        k.PipelineDepth,
		WriteBehindThreshold: k.WriteBehindThreshold,
		WriteBehindQueue:     k.WriteBehindQueue,
		PrefetchSegments:     k.PrefetchSegments,
		MaxCachedSegments:    k.MaxCachedSegments,
		SieveBuffer:          k.SieveBuffer,
		CollectiveRead:       k.CollectiveRead,
		EmulateTwoSided:      k.EmulateTwoSided,
		NodeAggregation:      k.NodeAggregation,
		Journal:              k.Journal,
		SegmentMemoryBudget:  k.SegmentMemoryBudget,
		Trace:                rec,
	}
}

// snapshotWritePhase captures the post-write file state shared by all
// three drivers.
func (r *engineRun) snapshotWritePhase(fs *pfs.FileSystem) {
	pf := fs.Open(confFile)
	r.fileSize = pf.Size()
	r.image = pf.Snapshot()
	r.fsWrites = fs.Stats().Writes
}

// finish records the injector totals after both phases.
func (r *engineRun) finish(inj *faults.Injector) {
	if inj != nil {
		r.injected = inj.CountsString()
	}
}

// verifyReads compares captured read-back bytes against the ground truth
// and returns a description of the first mismatch.
type readCapture struct {
	op  Op
	got []byte
}

func verifyCaptures(truth []byte, caps []readCapture) error {
	for _, c := range caps {
		for i := int64(0); i < c.op.Len; i++ {
			var want byte
			if c.op.Off+i < int64(len(truth)) {
				want = truth[c.op.Off+i]
			}
			if c.got[i] != want {
				return fmt.Errorf("read-back mismatch: rank %d op off=%d len=%d: byte %d got %#x want %#x",
					c.op.Rank, c.op.Off, c.op.Len, i, c.got[i], want)
			}
		}
	}
	return nil
}

// runTCIO executes the program through the tcio engine.
func runTCIO(p *Program, truth []byte) *engineRun {
	out := &engineRun{name: "tcio"}
	inj := p.newInjector()
	fs := p.newFS(inj)
	rec := trace.New(0)
	cfg := p.tcioConfig(rec)

	out.wStats = make([]tcio.Stats, p.Procs)
	var mu sync.Mutex
	_, err := mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, confFile, tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		var opErr error
		for _, round := range p.WriteRounds {
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				if opErr = f.WriteAt(op.Off, p.Payload(op)); opErr != nil {
					break
				}
			}
			if opErr != nil {
				break
			}
			if opErr = f.Flush(); opErr != nil {
				break
			}
		}
		var closeErr error
		if opErr == nil {
			closeErr = f.Close()
		}
		mu.Lock()
		out.wStats[c.Rank()] = f.Stats()
		mu.Unlock()
		if opErr != nil {
			return opErr
		}
		return closeErr
	})
	out.events = rec.Events()
	if err != nil {
		out.writeErr = err.Error()
		out.finish(inj)
		return out
	}
	out.snapshotWritePhase(fs)

	out.rStats = make([]tcio.Stats, p.Procs)
	_, err = mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := tcio.Open(c, confFile, tcio.ReadMode, cfg)
		if err != nil {
			return err
		}
		var caps []readCapture
		var opErr error
		for _, round := range p.ReadRounds {
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				dst := make([]byte, op.Len)
				if opErr = f.ReadAt(op.Off, dst); opErr != nil {
					break
				}
				caps = append(caps, readCapture{op: op, got: dst})
			}
			if opErr != nil {
				break
			}
			if opErr = f.Fetch(); opErr != nil {
				break
			}
		}
		var closeErr error
		if opErr == nil {
			closeErr = f.Close()
		}
		mu.Lock()
		out.rStats[c.Rank()] = f.Stats()
		mu.Unlock()
		if opErr != nil {
			return opErr
		}
		if closeErr != nil {
			return closeErr
		}
		return verifyCaptures(truth, caps)
	})
	if err != nil {
		out.readErr = err.Error()
	}
	for i := range out.wStats {
		out.retries += out.wStats[i].Retries
	}
	for i := range out.rStats {
		out.retries += out.rStats[i].Retries
	}
	out.finish(inj)
	return out
}

// runVanilla executes the program through independent MPI-IO: one file
// system request per piece, no aggregation.
func runVanilla(p *Program, truth []byte) *engineRun {
	out := &engineRun{name: "vanilla"}
	inj := p.newInjector()
	fs := p.newFS(inj)

	var mu sync.Mutex
	_, err := mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, confFile)
		if err != nil {
			return err
		}
		f.SetSieving(p.Knobs.Sieving)
		var opErr error
		for _, round := range p.WriteRounds {
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				if opErr = f.WriteAt(op.Off, p.Payload(op)); opErr != nil {
					break
				}
			}
			if opErr != nil {
				break
			}
			if opErr = c.Barrier(); opErr != nil {
				break
			}
		}
		mu.Lock()
		out.retries += f.Retries()
		mu.Unlock()
		return opErr
	})
	if err != nil {
		out.writeErr = err.Error()
		out.finish(inj)
		return out
	}
	out.snapshotWritePhase(fs)

	_, err = mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, confFile)
		if err != nil {
			return err
		}
		f.SetSieving(p.Knobs.Sieving)
		var caps []readCapture
		for _, round := range p.ReadRounds {
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				got, err := f.ReadAt(op.Off, op.Len)
				if err != nil {
					return err
				}
				caps = append(caps, readCapture{op: op, got: got})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		mu.Lock()
		out.retries += f.Retries()
		mu.Unlock()
		return verifyCaptures(truth, caps)
	})
	if err != nil {
		out.readErr = err.Error()
	}
	out.finish(inj)
	return out
}

// rankRoundWrite reduces one rank's ops in one round to its effective
// coalesced runs and last-wins payload: a dense overlay over the ops'
// span, applied in program order. This is the translation an application
// migrating from piecewise writes to collective WriteAll calls performs,
// and it keeps the OCIO round semantically identical to the piecewise
// rounds of the other engines (within a round only same-rank ops may
// overlap, and later ops win either way).
func rankRoundWrite(p *Program, round Round, rank int) (offs, lens []int64, payload []byte) {
	lo, hi := int64(-1), int64(-1)
	for _, op := range round.Ops {
		if op.Rank != rank || op.Len == 0 {
			continue
		}
		if lo < 0 || op.Off < lo {
			lo = op.Off
		}
		if op.End() > hi {
			hi = op.End()
		}
	}
	if lo < 0 {
		return nil, nil, nil
	}
	buf := make([]byte, hi-lo)
	covered := make([]bool, hi-lo)
	for _, op := range round.Ops {
		if op.Rank != rank || op.Len == 0 {
			continue
		}
		copy(buf[op.Off-lo:op.End()-lo], p.Payload(op))
		for i := op.Off - lo; i < op.End()-lo; i++ {
			covered[i] = true
		}
	}
	for i := int64(0); i < int64(len(covered)); {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < int64(len(covered)) && covered[j] {
			j++
		}
		offs = append(offs, lo+i)
		lens = append(lens, j-i)
		payload = append(payload, buf[i:j]...)
		i = j
	}
	return offs, lens, payload
}

// rankRoundRead reduces one rank's read ops in one round to the coalesced
// union of their ranges (collective reads fetch each byte once; the
// oracle checks every op against the truth afterwards).
func rankRoundRead(round Round, rank int) (offs, lens []int64) {
	lo, hi := int64(-1), int64(-1)
	for _, op := range round.Ops {
		if op.Rank != rank || op.Len == 0 {
			continue
		}
		if lo < 0 || op.Off < lo {
			lo = op.Off
		}
		if op.End() > hi {
			hi = op.End()
		}
	}
	if lo < 0 {
		return nil, nil
	}
	covered := make([]bool, hi-lo)
	for _, op := range round.Ops {
		if op.Rank != rank || op.Len == 0 {
			continue
		}
		for i := op.Off - lo; i < op.End()-lo; i++ {
			covered[i] = true
		}
	}
	for i := int64(0); i < int64(len(covered)); {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < int64(len(covered)) && covered[j] {
			j++
		}
		offs = append(offs, lo+i)
		lens = append(lens, j-i)
		i = j
	}
	return offs, lens
}

// setRoundView installs the Hindexed view for one round's runs, or the
// trivial byte view when the rank contributes nothing (it must still join
// the collective call).
func setRoundView(f *mpiio.File, offs, lens []int64) error {
	if len(offs) == 0 {
		if err := f.SetView(0, datatype.Byte, datatype.Byte); err != nil {
			return err
		}
		return f.SeekTo(0)
	}
	ft, err := datatype.Hindexed(lens, offs)
	if err != nil {
		return err
	}
	if err := f.SetView(0, datatype.Byte, ft); err != nil {
		return err
	}
	return f.SeekTo(0)
}

// runOCIO executes the program through ROMIO-style two-phase collective
// I/O: each round becomes one WriteAll/ReadAll under a per-round
// Hindexed file view.
func runOCIO(p *Program, truth []byte) *engineRun {
	out := &engineRun{name: "ocio"}
	inj := p.newInjector()
	fs := p.newFS(inj)

	var mu sync.Mutex
	_, err := mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, confFile)
		if err != nil {
			return err
		}
		if err := f.SetAggregators(p.aggregators()); err != nil {
			return err
		}
		var opErr error
		for _, round := range p.WriteRounds {
			offs, lens, payload := rankRoundWrite(p, round, c.Rank())
			if opErr = setRoundView(f, offs, lens); opErr != nil {
				break
			}
			if len(offs) == 0 {
				payload = nil
			}
			if opErr = f.WriteAll(payload); opErr != nil {
				break
			}
		}
		mu.Lock()
		out.retries += f.Retries()
		mu.Unlock()
		return opErr
	})
	if err != nil {
		out.writeErr = err.Error()
		out.finish(inj)
		return out
	}
	out.snapshotWritePhase(fs)

	_, err = mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, confFile)
		if err != nil {
			return err
		}
		if err := f.SetAggregators(p.aggregators()); err != nil {
			return err
		}
		for _, round := range p.ReadRounds {
			offs, lens := rankRoundRead(round, c.Rank())
			if err := setRoundView(f, offs, lens); err != nil {
				return err
			}
			var total int64
			for _, n := range lens {
				total += n
			}
			got, err := f.ReadAll(total)
			if err != nil {
				return err
			}
			// Verify every original op against the truth through the
			// fetched union bytes.
			at := int64(0)
			fetched := make(map[int64]byte, total)
			for i := range offs {
				for j := int64(0); j < lens[i]; j++ {
					fetched[offs[i]+j] = got[at]
					at++
				}
			}
			for _, op := range round.Ops {
				if op.Rank != c.Rank() {
					continue
				}
				for i := int64(0); i < op.Len; i++ {
					var want byte
					if op.Off+i < int64(len(truth)) {
						want = truth[op.Off+i]
					}
					if fetched[op.Off+i] != want {
						return fmt.Errorf("collective read-back mismatch: rank %d off=%d len=%d byte %d got %#x want %#x",
							op.Rank, op.Off, op.Len, i, fetched[op.Off+i], want)
					}
				}
			}
		}
		mu.Lock()
		out.retries += f.Retries()
		mu.Unlock()
		return nil
	})
	if err != nil {
		out.readErr = err.Error()
	}
	out.finish(inj)
	return out
}
