package conformance

// The seed-deterministic program generator. One seed fixes everything:
// geometry, knobs, chaos rules, and every op of every round. Seeds cycle
// through eight knob classes so any contiguous seed sweep exercises every
// engine feature (and gives every mutant of the smoke gate something to
// bite on) within a small budget:
//
//	class 0 — baseline: preloaded reads, random drain/pipeline knobs.
//	class 1 — demand-populate reads with prefetch lookahead.
//	class 2 — write-behind, with writes aligned to each rank's own
//	          segments (the configuration whose eager/residue counters
//	          are scheduling-independent; see DESIGN.md §5e).
//	class 3 — chaos: OST and one-sided put fault rules armed.
//	class 4 — node aggregation: several ranks per node, co-located
//	          ranks' shipments merged by per-segment node leaders.
//	class 5 — noncontiguous read engine: read-heavy interleaved rounds
//	          with holes, sweeping the sieve budget (list I/O through
//	          whole-segment covers) and the two-phase collective read.
//	class 6 — delegation tier: dedicated server ranks carved out of the
//	          communicator, several concurrently open files per client,
//	          credit-window admission. Ops span only the client ranks.
//	class 7 — crash consistency: the journaled-epoch tier armed (often
//	          with a segment memory budget small enough to force spills),
//	          then several simulated kill instants replayed from the file
//	          system's write log, each followed by tcio.Recover and a
//	          byte-exact diff against the committed-prefix model.
//
// Cross-rank write disjointness is enforced by construction: bytes are
// dealt to ranks block-cyclically over a random granule, and every write
// op stays inside its rank's territory. Overlaps and rewrites within a
// rank are generated freely — they are well-defined (program order).

import "math/rand"

// Generate builds the program for one seed. The same seed always yields
// the identical program (Go's math/rand generators are stable).
func Generate(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	class := int(((seed % 8) + 8) % 8)

	p := &Program{Seed: seed, Procs: 2 + rng.Intn(4)}
	if class == 0 && rng.Intn(5) == 0 {
		p.Procs = 1 // the degenerate single-rank world stays covered
	}
	segSizes := []int64{16, 24, 32, 48, 64, 96, 128}
	p.SegmentSize = segSizes[rng.Intn(len(segSizes))]
	p.NumSegments = 2 + rng.Intn(5)
	capacity := p.Capacity()
	p.FileBytes = capacity/2 + rng.Int63n(capacity/2+1)
	stripes := []int64{16, 32, 64, 128, 256}
	p.StripeSize = stripes[rng.Intn(len(stripes))]
	p.StripeCount = 1 + rng.Intn(4)
	p.Knobs = genKnobs(rng, class, seed, p.SegmentSize)
	if p.Knobs.Aggregators > p.Procs {
		// The knob is drawn before Procs-dependent shaping; an
		// over-subscribed draw would fail Validate (the engine driver only
		// clamps at run time).
		p.Knobs.Aggregators = p.Procs
	}
	if p.Knobs.ServerRanks >= p.Procs {
		p.Knobs.ServerRanks = p.Procs - 1 // at least one client remains
	}

	territory := genTerritory(rng, class, p)
	nextID := int64(1)
	rounds := 1 + rng.Intn(3)
	if class == 7 {
		rounds = 2 + rng.Intn(3) // several epochs, so kills can split them
	}
	for r := 0; r < rounds; r++ {
		p.WriteRounds = append(p.WriteRounds, genWriteRound(rng, p, territory, &nextID))
	}
	readRounds := 1 + rng.Intn(3)
	if class == 5 {
		readRounds = 2 + rng.Intn(3) // read-heavy
	}
	for r := 0; r < readRounds; r++ {
		if class == 5 {
			p.ReadRounds = append(p.ReadRounds, genHoleReadRound(rng, p, r))
		} else {
			p.ReadRounds = append(p.ReadRounds, genReadRound(rng, p, r == 0))
		}
	}
	return p
}

// genKnobs draws the library configuration for one knob class.
func genKnobs(rng *rand.Rand, class int, seed, segSize int64) Knobs {
	k := Knobs{
		DrainWorkers:  []int{0, 1, 2, 4}[rng.Intn(4)],
		DisableLevel1: rng.Intn(5) == 0,
		FetchBatch:    []int{1, 2, 64}[rng.Intn(3)],
		PipelineDepth: []int{1, 2, 8}[rng.Intn(3)],
		Sieving:       rng.Intn(2) == 0,
	}
	if rng.Intn(4) == 0 {
		k.EmulateTwoSided = true
	}
	k.Aggregators = rng.Intn(3) // clamped to Procs by the engine driver
	switch class {
	case 1: // demand-populate + prefetch
		k.DemandPopulate = true
		k.PrefetchSegments = 1 + rng.Intn(3)
		if rng.Intn(4) == 0 {
			k.PrefetchSegments = 0 // demand without lookahead
		}
		k.MaxCachedSegments = []int{0, k.PrefetchSegments, k.PrefetchSegments + 1}[rng.Intn(3)]
	case 2: // write-behind (rank-aligned territory, see genTerritory)
		k.WriteBehindThreshold = []float64{1, 0.5, 0.25}[rng.Intn(3)]
		k.WriteBehindQueue = []int{1, 2, 32}[rng.Intn(3)]
	case 3: // chaos
		k.ChaosSeed = seed
		if k.ChaosSeed == 0 {
			k.ChaosSeed = 1
		}
		probs := []float64{0, 0.02, 0.05, 0.08}
		k.OSTWriteProb = probs[rng.Intn(4)]
		k.OSTReadProb = probs[rng.Intn(4)]
		k.WinPutProb = probs[rng.Intn(4)]
		if k.OSTWriteProb == 0 && k.OSTReadProb == 0 && k.WinPutProb == 0 {
			k.OSTWriteProb = 0.05
		}
	case 4: // node aggregation (block-cyclic territory interleaves ranks
		// within segments, so co-located ranks' runs genuinely merge)
		k.NodeAggregation = true
		k.CoresPerNode = []int{1, 2, 3, 4}[rng.Intn(4)]
		if rng.Intn(3) == 0 {
			k.DemandPopulate = true
		}
	case 5: // noncontiguous read engine (hole-y rounds, see genHoleReadRound)
		k.DemandPopulate = true
		// Budgets lean large so segments' runs actually join under covers
		// (the scatter mutant only bites on multi-run covers); the
		// occasional 0 keeps the degenerate whole-segment path in rotation.
		k.SieveBuffer = []int64{16, segSize / 2, segSize, 2 * segSize}[rng.Intn(4)]
		if rng.Intn(8) == 0 {
			k.SieveBuffer = 0
		}
		// Lean toward the independent sieve path: it has the most machinery
		// (cover assembly, scatter, waste accounting) for mutants to bite.
		k.CollectiveRead = rng.Intn(3) == 0
		if !k.CollectiveRead && rng.Intn(3) == 0 {
			// Prefetch/sieve interplay — only on the independent path, where
			// the lookahead runs.
			k.PrefetchSegments = 1 + rng.Intn(2)
		}
	case 6: // delegation tier (multi-file, server ranks carved from Procs)
		k.ServerRanks = 1 + rng.Intn(2)
		if rng.Intn(5) == 0 {
			k.ServerRanks = 0 // the pass-through contract stays in rotation
		}
		k.Files = 1 + rng.Intn(3)
		k.QueueDepth = []int{1, 2, 8}[rng.Intn(3)]
		if rng.Intn(3) == 0 {
			k.DemandPopulate = true // pass-through read-path variety
		}
		// Read-path knobs. The cache leans armed (the stale-serve mutant
		// lives behind it) with a capacity above any program's total block
		// count, so the one racy counter — eviction order — never reaches
		// the differential run. The quantum sweeps the DRR scheduler, whose
		// oracle is that nothing but service order may change. Collective
		// reads (delegated intent epochs when ServerRanks > 0, tcio's
		// two-phase exchange in pass-through) pair with DemandPopulate, the
		// read mode the two-phase staging assumes.
		k.ServerCacheBlocks = []int{0, 64, 64, 64}[rng.Intn(4)]
		k.ReadQuantum = []int64{0, 8, 32, 128}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			k.CollectiveRead = true
			k.DemandPopulate = true
		}
	case 7: // crash consistency: journaled epochs, kill-anywhere replay
		k.Journal = true
		k.CrashKills = 2 + rng.Intn(4)
		if rng.Intn(3) != 0 {
			// Budget of one or two segments: small enough that block-cyclic
			// territories spill (and re-fault) mid-run.
			k.SegmentMemoryBudget = segSize * int64(1+rng.Intn(2))
		}
	}
	return k
}

// genTerritory deals every file byte to exactly one rank. Class 2 aligns
// territories with equation (1)'s segment ownership so write-behind's
// eager-drain counters are scheduling-independent; the other classes use a
// random block-cyclic deal over a random granule, which produces the
// cross-rank interleaving within segments that stresses the one-sided
// paths. Returns each rank's territory as maximal contiguous runs.
func genTerritory(rng *rand.Rand, class int, p *Program) [][]Op {
	// Bytes are dealt over the client ranks only — in class 6 the trailing
	// ServerRanks ranks serve and own no territory (elsewhere Clients() is
	// just Procs).
	workers := p.Clients()
	ownerOf := make([]int, p.FileBytes)
	if class == 2 {
		for i := range ownerOf {
			ownerOf[i] = int((int64(i) / p.SegmentSize) % int64(workers))
		}
	} else {
		granules := []int64{4, 8, 16, p.SegmentSize}
		g := granules[rng.Intn(len(granules))] * int64(1+rng.Intn(3))
		perm := rng.Perm(workers)
		for i := range ownerOf {
			ownerOf[i] = perm[(int64(i)/g)%int64(workers)]
		}
	}
	runs := make([][]Op, p.Procs)
	for i := int64(0); i < p.FileBytes; {
		j := i
		for j < p.FileBytes && ownerOf[j] == ownerOf[i] {
			j++
		}
		r := ownerOf[i]
		runs[r] = append(runs[r], Op{Rank: r, Off: i, Len: j - i})
		i = j
	}
	return runs
}

// genWriteRound emits each rank's ops for one round: random sub-runs of
// the rank's territory (rewrites arise naturally across and within
// rounds), occasional bursts of small adjacent pieces (the level-1
// coalescing diet), and rare zero-length writes.
func genWriteRound(rng *rand.Rand, p *Program, territory [][]Op, nextID *int64) Round {
	var round Round
	for rank := 0; rank < p.Procs; rank++ {
		runs := territory[rank]
		if len(runs) == 0 {
			continue
		}
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			run := runs[rng.Intn(len(runs))]
			if rng.Intn(20) == 0 { // zero-length write
				round.Ops = append(round.Ops, Op{Rank: rank, Off: run.Off + rng.Int63n(run.Len), ID: *nextID})
				*nextID++
				continue
			}
			off := run.Off + rng.Int63n(run.Len)
			maxLen := run.End() - off
			length := 1 + rng.Int63n(maxLen)
			if rng.Intn(10) < 3 {
				// Burst: adjacent small pieces covering [off, off+length).
				for at := off; at < off+length; {
					chunk := 3 + rng.Int63n(7)
					if at+chunk > off+length {
						chunk = off + length - at
					}
					round.Ops = append(round.Ops, Op{Rank: rank, Off: at, Len: chunk, ID: *nextID})
					*nextID++
					at += chunk
				}
				continue
			}
			round.Ops = append(round.Ops, Op{Rank: rank, Off: off, Len: length, ID: *nextID})
			*nextID++
		}
	}
	return round
}

// genHoleReadRound emits one class-5 read round: the file is cut into
// granule blocks dealt to ranks round-robin (rotated by the round number,
// so consecutive rounds shift the interleave), and each rank reads only a
// random subset of its blocks — leaving holes between its runs, the
// pattern data sieving trades request count against. Some runs shrink
// within their block, producing sub-granule holes that never align with
// segment boundaries.
func genHoleReadRound(rng *rand.Rand, p *Program, phase int) Round {
	var round Round
	gran := []int64{4, 8, 16}[rng.Intn(3)] * int64(1+rng.Intn(2))
	// Bound the op count: large files read at coarser granules.
	for gran*128 < p.FileBytes {
		gran *= 2
	}
	for b, off := 0, int64(0); off < p.FileBytes; b, off = b+1, off+gran {
		rank := (b + phase) % p.Clients()
		if rng.Intn(10) < 4 { // ~40% of blocks are holes
			continue
		}
		n := gran
		if off+n > p.FileBytes {
			n = p.FileBytes - off
		}
		if rng.Intn(4) == 0 {
			n = 1 + rng.Int63n(n)
		}
		round.Ops = append(round.Ops, Op{Rank: rank, Off: off, Len: n})
	}
	return round
}

// genReadRound emits each rank's read ops for one round. The first round
// leans sequential — contiguous spans walked in segment-sized steps, the
// pattern that drives the prefetch lookahead — and later rounds read
// random (possibly overlapping, possibly never-written) ranges.
func genReadRound(rng *rand.Rand, p *Program, sequential bool) Round {
	var round Round
	for rank := 0; rank < p.Clients(); rank++ {
		if sequential && rng.Intn(10) < 7 {
			off := rng.Int63n(p.FileBytes)
			off -= off % p.SegmentSize
			step := p.SegmentSize
			if rng.Intn(3) == 0 {
				step = p.SegmentSize/2 + 3
			}
			chunks := 2 + rng.Intn(7)
			for i := 0; i < chunks && off < p.FileBytes; i++ {
				n := step
				if off+n > p.FileBytes {
					n = p.FileBytes - off
				}
				round.Ops = append(round.Ops, Op{Rank: rank, Off: off, Len: n})
				off += n
			}
			continue
		}
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			off := rng.Int63n(p.FileBytes)
			if rng.Intn(20) == 0 {
				round.Ops = append(round.Ops, Op{Rank: rank, Off: off})
				continue
			}
			maxLen := p.FileBytes - off
			if cap := 3 * p.SegmentSize; maxLen > cap {
				maxLen = cap
			}
			round.Ops = append(round.Ops, Op{Rank: rank, Off: off, Len: 1 + rng.Int63n(maxLen)})
		}
	}
	return round
}
