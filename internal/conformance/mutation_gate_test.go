//go:build conformance_mutants

package conformance

// The mutation smoke gate: proof that the harness's oracles have teeth.
// Each deliberate bug in internal/mutate is armed in turn, and the
// generated-program sweep must flag a divergence within a bounded seed
// budget. A surviving mutant means a blind spot in the generator or the
// oracles — the gate fails and names it.
//
// Run with: go test -tags conformance_mutants -run TestMutationGate ./internal/conformance
//
// Setting CONFORMANCE_CORPUS_DIR additionally shrinks each caught
// divergence and saves the minimal repro there (how testdata/corpus was
// produced).

import (
	"os"
	"testing"

	"github.com/tcio/tcio/internal/mutate"
)

// gateBudget is the number of generated programs each mutant gets to
// survive; the budget gives each of the eight knob classes six rounds.
const gateBudget = 48

func TestMutationGate(t *testing.T) {
	if !mutate.Built {
		t.Skip("mutant hooks not compiled in")
	}
	defer mutate.Clear()
	for _, id := range mutate.All() {
		id := id
		t.Run(id, func(t *testing.T) {
			mutate.Set(id)
			defer mutate.Clear()
			for seed := int64(1); seed <= gateBudget; seed++ {
				out := Check(Generate(seed))
				if !out.Failed() {
					continue
				}
				t.Logf("caught at seed %d: %s", seed, out.Divergences[0])
				small, stats := Shrink(out.Program, func(c *Program) bool {
					return Check(c).Failed()
				}, shrinkBudget)
				wops, rops := small.Ops()
				t.Logf("shrunk to %d write / %d read ops, %d ranks (%d evals)",
					wops, rops, small.Procs, stats.Evals)
				if dir := os.Getenv("CONFORMANCE_CORPUS_DIR"); dir != "" {
					path, err := Save(dir, small)
					if err != nil {
						t.Fatalf("saving repro: %v", err)
					}
					t.Logf("repro saved: %s", path)
				}
				return
			}
			t.Errorf("mutant %s survived %d generated programs", id, gateBudget)
		})
	}
}

// TestMutantsDisarmedConform double-checks the tagged build is clean when
// no mutant is armed — the gate's failures are attributable to the armed
// mutant alone.
func TestMutantsDisarmedConform(t *testing.T) {
	mutate.Clear()
	for seed := int64(1); seed <= 4; seed++ {
		out := Check(Generate(seed))
		for _, d := range out.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}
