package conformance

// The differential oracles. Check runs one program through all three
// engines and diffs every observable against the in-memory ground truth
// and against the invariants the design guarantees:
//
//   - final file bytes == Truth() for every engine (padded with zeros
//     past the written extent — the file systems are sparse);
//   - every read op observed exactly the truth bytes (verified inside
//     the engine drivers, surfaced here as read-phase errors);
//   - tcio call counters match the program (Writes/Reads/Bytes*);
//   - the write-behind ledger balances: EagerWrites + FlushResidue ==
//     FSWrites on every rank, under any scheduling;
//   - the file system's own write count equals the ranks' FSWrites sum;
//   - prefetch counters satisfy Hits + Wasted <= Issued, and are zero
//     when the feature is disarmed;
//   - population counts match the mode (preload: per-rank slot walk;
//     demand: one population per demanded segment, summed — the split
//     across ranks is scheduling-dependent);
//   - golden-trace causality: no segment drains to the file system
//     before its first level-1 flush arrived.
//
// The Summary line is deliberately built only from scheduling-independent
// quantities, so two runs of the same seed must produce identical lines
// (CI diffs them).

import (
	"fmt"
	"strings"

	"github.com/tcio/tcio/internal/trace"
)

// Divergence is one oracle violation.
type Divergence struct {
	Engine string `json:"engine"` // "tcio", "ocio", "vanilla", or "program"
	Kind   string `json:"kind"`   // short category: "image", "stats", ...
	Detail string `json:"detail"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s/%s: %s", d.Engine, d.Kind, d.Detail)
}

// Outcome is the result of checking one program.
type Outcome struct {
	Program     *Program
	Divergences []Divergence
	// Summary is one deterministic line describing the run — identical
	// across repeated executions of the same seed.
	Summary string
}

// Failed reports whether any oracle flagged a divergence.
func (o *Outcome) Failed() bool { return len(o.Divergences) > 0 }

// Check executes the program on every engine and applies all oracles.
func Check(p *Program) *Outcome {
	o := &Outcome{Program: p}
	if err := p.Validate(); err != nil {
		o.diverge("program", "invalid", err.Error())
		o.Summary = fmt.Sprintf("seed=%d invalid: %v", p.Seed, err)
		return o
	}
	truth := p.Truth()

	tc := runTCIO(p, truth)
	oc := runOCIO(p, truth)
	va := runVanilla(p, truth)

	for _, run := range []*engineRun{tc, oc, va} {
		o.checkCommon(run, truth)
	}
	o.checkTCIOStats(p, tc)
	o.checkTrace(tc)
	var dl *delegateRun
	if p.Knobs.Files > 0 {
		dl = runDelegate(p, truth)
		o.checkDelegate(p, dl, truth)
	}
	var cr *crashRun
	if p.Knobs.CrashKills > 0 {
		cr = runCrash(p)
		o.checkCrash(p, cr)
	}
	o.Summary = p.summarize(tc, oc, va, dl, cr, len(o.Divergences))
	return o
}

func (o *Outcome) diverge(engine, kind, format string, args ...interface{}) {
	o.Divergences = append(o.Divergences, Divergence{
		Engine: engine, Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

// checkCommon applies the engine-independent oracles: clean execution and
// final file bytes.
func (o *Outcome) checkCommon(run *engineRun, truth []byte) {
	if run.writeErr != "" {
		o.diverge(run.name, "write-error", "%s", run.writeErr)
		return // no file image to judge
	}
	if run.readErr != "" {
		o.diverge(run.name, "read-error", "%s", run.readErr)
	}
	if run.fileSize > int64(len(truth)) {
		o.diverge(run.name, "image", "file grew to %d bytes, program writes end at %d",
			run.fileSize, len(truth))
	}
	n := int64(len(truth))
	if int64(len(run.image)) > n {
		n = int64(len(run.image))
	}
	for i := int64(0); i < n; i++ {
		var got, want byte
		if i < int64(len(run.image)) {
			got = run.image[i]
		}
		if i < int64(len(truth)) {
			want = truth[i]
		}
		if got != want {
			o.diverge(run.name, "image", "file byte %d = %#x, truth %#x", i, got, want)
			return
		}
	}
}

// checkTCIOStats applies the counter oracles to the tcio run.
func (o *Outcome) checkTCIOStats(p *Program, run *engineRun) {
	if run.writeErr == "" {
		var fsSum, jrnSum int64
		for rank, s := range run.wStats {
			wantN, wantBytes := countOps(p.WriteRounds, rank)
			if s.Writes != wantN || s.BytesWritten != wantBytes {
				o.diverge("tcio", "stats", "rank %d counted %d writes/%d bytes, program has %d/%d",
					rank, s.Writes, s.BytesWritten, wantN, wantBytes)
			}
			if s.EagerWrites+s.FlushResidue != s.FSWrites {
				o.diverge("tcio", "stats", "rank %d ledger: EagerWrites %d + FlushResidue %d != FSWrites %d",
					rank, s.EagerWrites, s.FlushResidue, s.FSWrites)
			}
			if p.Knobs.WriteBehindThreshold == 0 && (s.EagerDrains != 0 || s.EagerWrites != 0) {
				o.diverge("tcio", "stats", "rank %d eager-drained %d batches with write-behind disarmed",
					rank, s.EagerDrains)
			}
			if !p.Knobs.NodeAggregation && (s.NodeCombines != 0 || s.InterNodePutsSaved != 0) {
				o.diverge("tcio", "stats", "rank %d combined %d puts (saved %d) with node aggregation disarmed",
					rank, s.NodeCombines, s.InterNodePutsSaved)
			}
			journalArmed := p.Knobs.Journal || p.Knobs.SegmentMemoryBudget > 0
			if !journalArmed && (s.JournalEpochs != 0 || s.JournalAppends != 0 ||
				s.JournalBytes != 0 || s.JournalCommits != 0) {
				o.diverge("tcio", "stats", "rank %d journaled %d epochs (%d appends) with the journal disarmed",
					rank, s.JournalEpochs, s.JournalAppends)
			}
			if journalArmed && s.JournalCommits != s.JournalEpochs {
				// Every appended epoch batch is sealed by its own commit
				// marker — the identity the skip-commit-marker mutant breaks.
				o.diverge("tcio", "stats", "rank %d sealed %d of %d journal epochs",
					rank, s.JournalCommits, s.JournalEpochs)
			}
			if p.Knobs.SegmentMemoryBudget == 0 &&
				(s.SpillSegments != 0 || s.CleanDrops != 0 || s.SpillRefaultBytes != 0) {
				o.diverge("tcio", "stats", "rank %d spilled %d/%d segments (%dB refaulted) with no memory budget",
					rank, s.SpillSegments, s.CleanDrops, s.SpillRefaultBytes)
			}
			fsSum += s.FSWrites
			jrnSum += s.JournalAppends
		}
		// Journal appends go through the same charged file system, so the
		// write-count identity gains a journal term (the truncate RPC is
		// control traffic and deliberately uncounted).
		if fsSum+jrnSum != run.fsWrites {
			o.diverge("tcio", "stats", "ranks report %d FSWrites + %d journal appends, file system served %d",
				fsSum, jrnSum, run.fsWrites)
		}
	}
	if run.readErr != "" || run.writeErr != "" || run.rStats == nil {
		return
	}
	var popSum int64
	for rank, s := range run.rStats {
		wantN, wantBytes := countOps(p.ReadRounds, rank)
		if s.Reads != wantN || s.BytesRead != wantBytes {
			o.diverge("tcio", "stats", "rank %d counted %d reads/%d bytes, program has %d/%d",
				rank, s.Reads, s.BytesRead, wantN, wantBytes)
		}
		if s.PrefetchHits+s.PrefetchWasted > s.PrefetchIssued {
			o.diverge("tcio", "stats", "rank %d prefetch: hits %d + wasted %d > issued %d",
				rank, s.PrefetchHits, s.PrefetchWasted, s.PrefetchIssued)
		}
		if p.Knobs.PrefetchSegments == 0 && s.PrefetchIssued != 0 {
			o.diverge("tcio", "stats", "rank %d issued %d prefetches with prefetch disarmed",
				rank, s.PrefetchIssued)
		}
		if (p.Knobs.SieveBuffer == 0 || !p.Knobs.DemandPopulate) &&
			(s.SieveReads != 0 || s.SieveWasteBytes != 0) {
			o.diverge("tcio", "stats", "rank %d issued %d sieve covers (%d waste) with the sieve disarmed",
				rank, s.SieveReads, s.SieveWasteBytes)
		}
		if !p.Knobs.CollectiveRead && s.TwoPhaseExchanges != 0 {
			o.diverge("tcio", "stats", "rank %d counted %d intent exchanges with collective read off",
				rank, s.TwoPhaseExchanges)
		}
		if p.Knobs.CollectiveRead && s.TwoPhaseExchanges != int64(len(p.ReadRounds))+1 {
			// One exchange per explicit Fetch (one per round) plus Close's;
			// implicit batch-overflow fetches stay independent and must not
			// bump the counter.
			o.diverge("tcio", "stats", "rank %d counted %d intent exchanges, want %d (rounds+close)",
				rank, s.TwoPhaseExchanges, len(p.ReadRounds)+1)
		}
		if !p.Knobs.DemandPopulate {
			want := expectedPreload(p, rank, run.fileSize)
			if s.Populations != want {
				o.diverge("tcio", "stats", "rank %d preloaded %d segments, want %d",
					rank, s.Populations, want)
			}
		}
		popSum += s.Populations
	}
	if p.Knobs.DemandPopulate {
		want := expectedDemandPopulations(p, run.fileSize)
		if p.Knobs.SieveBuffer > 0 {
			// Sieved stagings are partial and deliberately not counted as
			// populations, so the exact-count oracle relaxes to an upper
			// bound: only prefetch-cache hits and still-whole populations
			// remain, never more than one per demanded segment.
			if popSum > want {
				o.diverge("tcio", "stats", "ranks populated %d segments with the sieve armed, cap %d", popSum, want)
			}
		} else if popSum != want {
			o.diverge("tcio", "stats", "ranks populated %d segments on demand, want %d", popSum, want)
		}
	}
}

// expectedPreload mirrors preloadAll: rank r loads its slots in order and
// stops at the first whose base offset is at or past the file size.
func expectedPreload(p *Program, rank int, fileSize int64) int64 {
	var n int64
	for slot := 0; slot < p.NumSegments; slot++ {
		base := (int64(slot)*int64(p.Procs) + int64(rank)) * p.SegmentSize
		if base >= fileSize {
			break
		}
		n++
	}
	return n
}

// expectedDemandPopulations counts the distinct segments the read program
// demands that overlap the written file — each is populated exactly once,
// by whichever rank gets there first.
func expectedDemandPopulations(p *Program, fileSize int64) int64 {
	segs := make(map[int64]bool)
	for _, round := range p.ReadRounds {
		for _, op := range round.Ops {
			if op.Len == 0 {
				continue
			}
			for seg := op.Off / p.SegmentSize; seg*p.SegmentSize < op.End(); seg++ {
				if seg*p.SegmentSize < fileSize {
					segs[seg] = true
				}
			}
		}
	}
	return int64(len(segs))
}

// checkTrace verifies drain-after-flush causality on the tcio trace: no
// file system drain of a segment may depart before the segment's first
// level-1 flush arrived at the window.
func (o *Outcome) checkTrace(run *engineRun) {
	if run.writeErr != "" {
		return
	}
	firstFlush := make(map[int64]trace.Event)
	for _, ev := range run.events {
		if ev.Kind != trace.KindFlush {
			continue
		}
		var seg int64
		if _, err := fmt.Sscanf(ev.Detail, "seg=%d", &seg); err != nil {
			continue
		}
		if first, ok := firstFlush[seg]; !ok || ev.Start < first.Start {
			firstFlush[seg] = ev
		}
	}
	for _, ev := range run.events {
		if ev.Kind != trace.KindDrain {
			continue
		}
		var seg int64
		if _, err := fmt.Sscanf(ev.Detail, "seg=%d", &seg); err != nil {
			continue
		}
		first, ok := firstFlush[seg]
		if !ok {
			o.diverge("tcio", "trace", "segment %d drained (%q) but no flush ever shipped to it",
				seg, ev.Detail)
			return
		}
		if ev.Start < first.Start {
			o.diverge("tcio", "trace", "segment %d drain departs at %v, before its first flush at %v",
				seg, ev.Start, first.Start)
			return
		}
	}
}

// summarize renders the deterministic one-line fingerprint of the run.
func (p *Program) summarize(tc, oc, va *engineRun, dl *delegateRun, cr *crashRun, nDiv int) string {
	var b strings.Builder
	writes, reads := p.Ops()
	fmt.Fprintf(&b, "seed=%d class=%d P=%d seg=%dx%d file=%d stripe=%dx%d wops=%d rops=%d truth=%.12s",
		p.Seed, int(((p.Seed%8)+8)%8), p.Procs, p.SegmentSize, p.NumSegments,
		p.FileBytes, p.StripeSize, p.StripeCount, writes, reads, p.TruthSHA())

	var pops, fsw int64
	for _, s := range tc.rStats {
		pops += s.Populations
	}
	for _, s := range tc.wStats {
		fsw += s.FSWrites
	}
	fmt.Fprintf(&b, " tcio[fs=%d pop=%d ret=%d inj=%s%s]",
		fsw, pops, tc.retries, orDash(tc.injected), phaseMark(tc))
	if p.Knobs.WriteBehindThreshold > 0 {
		var eager, residue int64
		for _, s := range tc.wStats {
			eager += s.EagerWrites
			residue += s.FlushResidue
		}
		fmt.Fprintf(&b, " wb[eager=%d residue=%d]", eager, residue)
	}
	if p.Knobs.NodeAggregation {
		// Combine counts are a pure function of the program (leaders are
		// elected deterministically, deposits complete before every sweep),
		// so they belong in the diffable fingerprint.
		var comb, saved int64
		for _, s := range tc.wStats {
			comb += s.NodeCombines
			saved += s.InterNodePutsSaved
		}
		fmt.Fprintf(&b, " agg[cores=%d comb=%d saved=%d]", p.Knobs.CoresPerNode, comb, saved)
	}
	if p.Knobs.SieveBuffer > 0 || p.Knobs.CollectiveRead {
		// Exchange counts are collective structure (one per round plus
		// Close, on every rank), so they diff cleanly; sieve cover counts
		// are deliberately excluded — on the independent path, which rank
		// stages a contended segment's runs is scheduling-dependent.
		var xch int64
		for _, s := range tc.rStats {
			xch += s.TwoPhaseExchanges
		}
		fmt.Fprintf(&b, " sieve[buf=%d coll=%v xch=%d]",
			p.Knobs.SieveBuffer, p.Knobs.CollectiveRead, xch)
	}
	if dl != nil {
		// Staged-record and batched-run totals are sorted-epoch quantities
		// (DESIGN.md §2e): deterministic despite racy request arrival.
		var staged, runs int64
		for _, s := range dl.servers {
			staged += s.StagedWrites
			runs += s.BatchedRuns
		}
		mark := ""
		if dl.err != "" {
			mark = " err"
		}
		fmt.Fprintf(&b, " del[srv=%d files=%d q=%d staged=%d runs=%d fs=%d%s]",
			p.Knobs.ServerRanks, p.Knobs.Files, p.Knobs.QueueDepth, staged, runs, dl.fsWrites, mark)
		if len(dl.rservers) > 0 {
			// Read-phase totals are per-block quantities (first touch fills,
			// epoch unions are program-determined, the generator's cache
			// capacity rules out evictions), so hit/miss sums diff cleanly
			// even though which client triggers a fill races.
			var rreq, repoch, hit, miss, rfs int64
			for _, s := range dl.rservers {
				rreq += s.ReadReqs
				repoch += s.ReadEpochs
				hit += s.CacheHits
				miss += s.CacheMisses
				rfs += s.FSReads
			}
			fmt.Fprintf(&b, " dread[cache=%d quant=%d coll=%v req=%d epoch=%d hit=%d miss=%d fs=%d]",
				p.Knobs.ServerCacheBlocks, p.Knobs.ReadQuantum, p.Knobs.CollectiveRead,
				rreq, repoch, hit, miss, rfs)
		}
	}
	if p.Knobs.Journal || p.Knobs.SegmentMemoryBudget > 0 {
		// Epoch/commit/spill totals are collective-point quantities (journal
		// appends and evictions happen after the flush barrier, on state that
		// is a pure function of the program), so they diff cleanly; the kill
		// verdicts derive from the deterministic virtual-time log.
		var eps, commits, spill, drop, refault int64
		for _, s := range tc.wStats {
			eps += s.JournalEpochs
			commits += s.JournalCommits
			spill += s.SpillSegments
			drop += s.CleanDrops
			refault += s.SpillRefaultBytes
		}
		okKills := 0
		if cr != nil {
			okKills = cr.okKills
		}
		fmt.Fprintf(&b, " crash[kills=%d ok=%d epochs=%d commits=%d spill=%d drop=%d refault=%dB]",
			p.Knobs.CrashKills, okKills, eps, commits, spill, drop, refault)
	}
	fmt.Fprintf(&b, " ocio[ret=%d inj=%s%s] van[ret=%d inj=%s%s]",
		oc.retries, orDash(oc.injected), phaseMark(oc),
		va.retries, orDash(va.injected), phaseMark(va))
	if nDiv == 0 {
		b.WriteString(" verdict=ok")
	} else {
		fmt.Fprintf(&b, " verdict=DIVERGE(%d)", nDiv)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// phaseMark flags failed phases in the summary ("" when both ran clean).
func phaseMark(run *engineRun) string {
	switch {
	case run.writeErr != "":
		return " werr"
	case run.readErr != "":
		return " rerr"
	default:
		return ""
	}
}
